package repro

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	ts := Set{
		{Name: "imu", C: 1, T: 4},
		{Name: "ctrl", C: 2, T: 8},
		{Name: "plan", C: 4, T: 16},
		{Name: "log", C: 6, T: 16},
	}
	plan, err := Partition(ts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(plan.Result); err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Simulate(SimOptions{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
}

func TestFacadeAnalyze(t *testing.T) {
	ts := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 2, T: 8}}
	a := Analyze(ts, 2)
	if !a.Harmonic || a.HarmonicChains != 1 {
		t.Errorf("analysis wrong: %+v", a)
	}
	ok, bound, _ := BoundTest(ts, 2)
	if !ok || bound != 1.0 {
		t.Errorf("bound test: ok=%v bound=%g", ok, bound)
	}
}

func TestFacadeConstants(t *testing.T) {
	if math.Abs(LL(2)-0.8284) > 1e-3 {
		t.Errorf("LL(2) = %g", LL(2))
	}
	if math.Abs(LightThresholdFor(1<<20)-0.4094) > 1e-3 {
		t.Errorf("light threshold = %g", LightThresholdFor(1<<20))
	}
	if math.Abs(RMTSCapFor(1<<20)-0.8188) > 1e-3 {
		t.Errorf("RM-TS cap = %g", RMTSCapFor(1<<20))
	}
}

func TestFacadeAlgorithmsUsable(t *testing.T) {
	ts := Set{{Name: "a", C: 2, T: 10}, {Name: "b", C: 3, T: 15}}
	for _, alg := range []Algorithm{RMTSLight, NewRMTS(HarmonicChainMin), SPA1, SPA2, FirstFitRTA, WorstFitRTA} {
		res := alg.Partition(ts, 2)
		if !res.OK {
			t.Errorf("%s rejected a trivial set: %s", alg.Name(), res.Reason)
		}
	}
}

func TestFacadeBoundsUsable(t *testing.T) {
	ts := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 1, T: 8}}
	for _, b := range []PUB{LiuLayland, HarmonicChainMin, TBound, RBound} {
		v := b.Value(ts)
		if v <= 0 || v > 1 {
			t.Errorf("%s value %g out of range", b.Name(), v)
		}
	}
}

func TestFacadeProcessorSchedulable(t *testing.T) {
	list := []Subtask{
		{TaskIndex: 0, Part: 1, C: 2, T: 4, Deadline: 4, Tail: true},
		{TaskIndex: 1, Part: 1, C: 2, T: 8, Deadline: 8, Tail: true},
	}
	if !ProcessorSchedulable(list) {
		t.Error("harmonic 75% list rejected")
	}
}
