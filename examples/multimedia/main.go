// Multimedia: a soft-real-time media pipeline with CONSTRAINED deadlines
// (D < T) — decode jitter budgets force frames to finish well before the
// next frame arrives. This exercises the repository's extension beyond the
// paper's implicit-deadline model: deadline-monotonic priorities, synthetic
// deadlines carved from D rather than T, and simulation that checks misses
// at release + D.
//
// Run with: go run ./examples/multimedia
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Ticks of 100µs. A 60 fps video pipeline (T≈167), 48 kHz audio in
	// 10 ms batches (T=100), and housekeeping. Deadlines are tighter than
	// periods: a decoded frame must be ready half a period early for the
	// compositor, audio must complete within 4 ms to keep the DAC buffer
	// shallow.
	ts := repro.Set{
		{Name: "audio", C: 12, T: 100, D: 40},      // 12% util, 30% density
		{Name: "decode", C: 70, T: 167, D: 90},     // 42% util
		{Name: "compose", C: 30, T: 167, D: 120},   // 18% util
		{Name: "net", C: 25, T: 200, D: 150},       // 12.5% util
		{Name: "ui", C: 40, T: 500, D: 300},        // 8% util
		{Name: "metrics", C: 60, T: 1000, D: 1000}, // 6% util (implicit)
	}
	m := 1

	a := repro.Analyze(ts, m)
	fmt.Printf("media pipeline: %d tasks, U(τ)=%.3f, implicit=%v\n", a.N, a.TotalU, a.Implicit)
	fmt.Println("utilization bounds do not apply to constrained deadlines —")
	fmt.Println("admission is per-instance exact response-time analysis (DM order).")

	plan, err := repro.Partition(ts, m, repro.Options{})
	if err != nil {
		fmt.Printf("\nnot schedulable on %d core: %v\n", m, err)
		m = 2
		plan, err = repro.Partition(ts, m, repro.Options{})
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nschedulable on %d core(s) via %s\n", m, plan.AlgorithmName)
	fmt.Println(plan.Assignment())

	rep, err := plan.Simulate(repro.SimOptions{StopOnMiss: true, HorizonCap: 2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Ok() {
		log.Fatalf("unexpected miss: %v", rep.Misses)
	}
	fmt.Printf("simulated %d ticks, %d jobs, no deadline misses\n\n", rep.Horizon, rep.Completed)
	fmt.Println("worst observed response vs constrained deadline (and period):")
	for idx, t := range plan.Assignment().Set {
		fmt.Printf("  %-8s R=%4d ≤ D=%4d  (T=%4d)\n", t.Name, rep.WorstResponse[idx], t.Deadline(), t.T)
	}
}
