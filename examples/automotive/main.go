// Automotive: an engine-management workload with heavy tasks (individual
// utilization above Θ/(1+Θ) ≈ 41%), exercising RM-TS's pre-assignment
// phase (§V) — heavy high-priority tasks get dedicated processors, the
// light tasks pack around them with exact RTA, and split tasks bridge the
// remaining capacity. Strict partitioning (no splitting) fails on the same
// workload.
//
// Run with: go run ./examples/automotive
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Ticks of 10µs. Periods follow typical engine/chassis rates
	// (1ms/5ms/10ms/20ms/100ms). Four heavy tasks (> Θ/(1+Θ) ≈ 42%) make
	// the whole-task bin-packing infeasible on three cores.
	ts := repro.Set{
		{Name: "crank", C: 55, T: 100},       // 55% — heavy, highest rate
		{Name: "injection", C: 275, T: 500},  // 55% — heavy
		{Name: "throttle", C: 1100, T: 2000}, // 55% — heavy
		{Name: "gearbox", C: 1040, T: 2000},  // 52% — heavy
		{Name: "knock", C: 100, T: 1000},     // 10%
		{Name: "lambda", C: 120, T: 1000},    // 12%
		{Name: "cooling", C: 500, T: 10000},  // 5%
		{Name: "diag", C: 600, T: 10000},     // 6%
		{Name: "logging", C: 800, T: 10000},  // 8%
	}
	m := 3

	a := repro.Analyze(ts, m)
	fmt.Printf("automotive workload: %d tasks, U_M on %d cores = %.1f%%\n", a.N, m, 100*a.NormalizedU)
	fmt.Printf("four heavy tasks (U > Θ/(1+Θ) = %.1f%%) → light=%v\n\n",
		100*a.LightThreshold, a.Light)

	// Strict partitioning: every task must fit whole on some processor —
	// impossible here, for first-fit and worst-fit alike.
	ff := repro.FirstFitRTA.Partition(ts, m)
	wf := repro.WorstFitRTA.Partition(ts, m)
	fmt.Printf("strict P-RM-FF (no splitting): ok=%v", ff.OK)
	if !ff.OK {
		fmt.Printf("  (failed at τ%d: %s)", ff.FailedTask, ff.Reason)
	}
	fmt.Printf("\nstrict P-RM-WF (no splitting): ok=%v\n", wf.OK)

	// RM-TS: pre-assignment + RTA packing + splitting.
	plan, err := repro.Partition(ts, m, repro.Options{Algorithm: repro.NewRMTS(nil)})
	if err != nil {
		log.Fatalf("RM-TS: %v", err)
	}
	fmt.Printf("RM-TS: schedulable — %d heavy task(s) pre-assigned, %d task(s) split\n\n",
		plan.Result.NumPreAssigned, plan.Result.NumSplit)
	fmt.Println(plan.Assignment())

	rep, err := plan.Simulate(repro.SimOptions{StopOnMiss: true, HorizonCap: 2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	if !rep.Ok() {
		log.Fatalf("unexpected deadline miss: %v", rep.Misses)
	}
	fmt.Printf("simulation: %d ticks, %d jobs, no deadline misses\n", rep.Horizon, rep.Completed)
	fmt.Println("\nworst observed response vs RTA-certified deadline:")
	for idx, t := range plan.Assignment().Set {
		fmt.Printf("  %-10s R=%5d / T=%5d  (%.0f%% of deadline)\n",
			t.Name, rep.WorstResponse[idx], t.T, 100*float64(rep.WorstResponse[idx])/float64(t.T))
	}
}
