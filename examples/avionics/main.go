// Avionics: a harmonic flight-control workload where the paper's headline
// result shines — because the periods form a single harmonic chain, the
// 100% parametric bound applies, and RM-TS/light packs two cores to
// essentially full utilization, far beyond both the 69.3% Liu & Layland
// worst case and what the utilization-threshold baseline SPA1 of [16] can
// accept.
//
// Run with: go run ./examples/avionics
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Classic avionics rate groups: 400/200/100/50/25 Hz → harmonic
	// periods 250, 500, 1000, 2000, 4000 (ticks of 10µs: 2.5ms … 40ms).
	// Every task is "light" (U_i ≤ ~41%), the precondition of Theorem 8,
	// and the total packs two cores to 97% — far beyond the 69.3% L&L
	// worst case.
	ts := repro.Set{
		{Name: "gyro", C: 80, T: 250},        // 32%
		{Name: "accel", C: 70, T: 250},       // 28%
		{Name: "attitude", C: 150, T: 500},   // 30%
		{Name: "rates", C: 140, T: 500},      // 28%
		{Name: "autopilot", C: 220, T: 1000}, // 22%
		{Name: "airdata", C: 190, T: 1000},   // 19%
		{Name: "guidance", C: 300, T: 2000},  // 15%
		{Name: "nav", C: 260, T: 2000},       // 13%
		{Name: "display", C: 180, T: 4000},   // 4.5%
		{Name: "telemetry", C: 120, T: 4000}, // 3%
	}
	m := 2

	a := repro.Analyze(ts, m)
	fmt.Printf("avionics workload: %d tasks, harmonic=%v, light=%v\n", a.N, a.Harmonic, a.Light)
	fmt.Printf("U_M on %d cores = %.1f%%  — Liu&Layland bound Θ(N) = %.1f%%, harmonic bound = %.1f%%\n\n",
		m, 100*a.NormalizedU, 100*a.Theta, 100*a.BestBoundValue)

	// The bound-only admission test already proves schedulability at
	// 95%+ utilization — no packing needed (the §I "efficient analysis for
	// design exploration" use case).
	if ok, bound, _ := repro.BoundTest(ts, m); ok {
		fmt.Printf("bound-only test: U_M=%.1f%% ≤ Λ=%.1f%% → schedulable by Theorem 8\n\n",
			100*a.NormalizedU, 100*bound)
	}

	// The threshold-based baseline SPA1 cannot accept this workload: its
	// admission caps at Θ(N) ≈ 70%, regardless of the harmonic structure.
	spa1 := repro.SPA1.Partition(ts, m)
	fmt.Printf("SPA1 [16]: ok=%v guaranteed=%v — threshold packing caps at Θ=%.1f%%\n",
		spa1.OK, spa1.Guaranteed, 100*a.Theta)

	// RM-TS/light packs it with exact RTA and split tasks.
	plan, err := repro.Partition(ts, m, repro.Options{Algorithm: repro.RMTSLight})
	if err != nil {
		log.Fatalf("RM-TS/light: %v", err)
	}
	fmt.Printf("RM-TS/light: schedulable, %d task(s) split\n\n", plan.Result.NumSplit)
	fmt.Println(plan.Assignment())

	rep, err := plan.Simulate(repro.SimOptions{StopOnMiss: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation over hyperperiod (%d ticks): %d jobs, %d misses\n",
		rep.Horizon, rep.Completed, len(rep.Misses))
	for q, busy := range rep.Busy {
		fmt.Printf("  core %d utilization: %.1f%%\n", q, 100*float64(busy)/float64(rep.Horizon))
	}
}
