// Quickstart: define a task set, partition it onto multiple processors
// with the paper's RM-TS algorithms, inspect the verified assignment, and
// confirm it by simulation.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A Liu & Layland task set: C = worst-case execution time, T = period
	// (= deadline), in integer ticks (here: 100µs ticks, so T=100 is 10ms).
	ts := repro.Set{
		{Name: "sensor", C: 12, T: 100},
		{Name: "control", C: 70, T: 200},
		{Name: "comms", C: 60, T: 250},
		{Name: "camera", C: 120, T: 400},
		{Name: "planner", C: 150, T: 500},
		{Name: "logger", C: 280, T: 1000},
	}

	// Analyze the parameters first: utilizations, harmonic structure, and
	// the parametric utilization bounds of the paper's §III.
	a := repro.Analyze(ts, 2)
	fmt.Printf("N=%d tasks, U(τ)=%.3f, U_M on 2 CPUs = %.3f\n", a.N, a.TotalU, a.NormalizedU)
	fmt.Printf("Θ(N)=%.3f, best parametric bound Λ(τ)=%.3f (%s)\n\n", a.Theta, a.BestBoundValue, a.BestBound)

	// Partition onto 2 processors. The planner picks RM-TS/light for light
	// sets and RM-TS otherwise, packs with exact response-time analysis,
	// and re-verifies the result independently.
	plan, err := repro.Partition(ts, 2, repro.Options{})
	if err != nil {
		log.Fatalf("not schedulable: %v", err)
	}
	fmt.Printf("schedulable via %s (splits: %d)\n", plan.AlgorithmName, plan.Result.NumSplit)
	fmt.Println(plan.Assignment())

	// Execute the plan on the discrete-event simulator over the task set's
	// hyperperiod and confirm that no deadline is missed.
	rep, err := plan.Simulate(repro.SimOptions{StopOnMiss: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated %d ticks: %d jobs completed, misses: %d\n",
		rep.Horizon, rep.Completed, len(rep.Misses))
	for idx, t := range plan.Assignment().Set {
		fmt.Printf("  %-8s observed worst response %4d / deadline %4d\n",
			t.Name, rep.WorstResponse[idx], t.T)
	}
}
