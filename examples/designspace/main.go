// Design-space exploration: the §I motivation for utilization bounds. For
// a growing workload, find the smallest processor count that makes it
// schedulable — first with the O(N²) bound-only test (instant, suitable
// for inner loops of an architecture explorer), then confirmed by the full
// RM-TS packing, and compare with how many processors the Liu & Layland
// bound alone would demand.
//
// Run with: go run ./examples/designspace
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

func main() {
	r := rand.New(rand.NewSource(2012))

	// A synthetic software update: each release adds tasks to a harmonic
	// base (sensor fusion pipeline) plus a few non-harmonic extras.
	base := repro.Set{}
	periods := []repro.Time{50, 100, 200, 400, 800}
	for i := 0; i < 18; i++ {
		T := periods[i%len(periods)]
		u := 0.10 + 0.25*r.Float64()
		base = append(base, repro.Task{
			Name: fmt.Sprintf("pipe%02d", i),
			C:    repro.Time(math.Max(1, u*float64(T))),
			T:    T,
		})
	}

	fmt.Println("release  tasks  U(τ)    minM(bound)  minM(RM-TS)  minM(L&L)")
	ts := repro.Set{}
	for release := 1; release <= 6; release++ {
		ts = append(ts, base[:3*release]...)
		a := repro.Analyze(ts, 1)

		minBound := findMinM(ts, func(m int) bool {
			ok, _, _ := repro.BoundTest(ts, m)
			return ok
		})
		minExact := findMinM(ts, func(m int) bool {
			_, err := repro.Partition(ts, m, repro.Options{})
			return err == nil
		})
		// How many processors the plain L&L bound would require.
		minLL := findMinM(ts, func(m int) bool {
			return ts.NormalizedUtilization(m) <= repro.LL(len(ts))
		})
		fmt.Printf("%7d  %5d  %.3f   %11d  %11d  %9d\n",
			release, a.N, a.TotalU, minBound, minExact, minLL)
		base = append(base, repro.Task{
			Name: fmt.Sprintf("extra%d", release),
			C:    repro.Time(30 + r.Intn(60)),
			T:    repro.Time(300 + 100*r.Intn(5)),
		})
	}

	fmt.Println("\ncolumns: minM(bound) = parametric-bound-only test (Theorem 8 / §V);")
	fmt.Println("         minM(RM-TS) = exact RTA packing; minM(L&L) = classic Θ(N) sizing.")
	fmt.Println("The parametric bounds close most of the gap to the exact packing at a")
	fmt.Println("fraction of its cost — the design-flow role the paper assigns them.")

	// Sanity: the final configuration must actually run.
	m := findMinM(ts, func(m int) bool {
		_, err := repro.Partition(ts, m, repro.Options{})
		return err == nil
	})
	plan, err := repro.Partition(ts, m, repro.Options{})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := plan.Simulate(repro.SimOptions{StopOnMiss: true, HorizonCap: 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal config: %d tasks on %d processors (%s), simulated %d ticks, misses: %d\n",
		len(ts), m, plan.AlgorithmName, rep.Horizon, len(rep.Misses))
}

func findMinM(ts repro.Set, fits func(m int) bool) int {
	for m := 1; m <= 64; m++ {
		if fits(m) {
			return m
		}
	}
	return -1
}
