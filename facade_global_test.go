package repro

import "testing"

func TestFacadeGlobalScheduling(t *testing.T) {
	ts := DhallExample(2, 10)
	rep, err := SimulateGlobal(ts, 2, GlobalOptions{Policy: GlobalRM, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("Dhall witness schedulable under global RM")
	}
	rep, err = SimulateGlobal(ts, 2, GlobalOptions{Policy: GlobalRMUS, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Errorf("RM-US missed: %v", rep.Misses)
	}
	if GlobalUSBound(2) != 0.5 {
		t.Errorf("US bound = %g", GlobalUSBound(2))
	}
}

func TestFacadeOverheadAware(t *testing.T) {
	ts := Set{
		{Name: "a", C: 20, T: 100},
		{Name: "b", C: 30, T: 200},
		{Name: "c", C: 50, T: 400},
	}
	alg := NewRMTSOverheadAware(nil, 2)
	res := alg.Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if err := VerifyWithSurcharge(res, 6); err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(res.Assignment, SimOptions{
		StopOnMiss: true, DispatchOverhead: 2, MigrationOverhead: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses under charges: %v", rep.Misses)
	}
	light := NewRMTSLightOverheadAware(2)
	if res := light.Partition(ts, 2); !res.OK {
		t.Fatalf("light variant failed: %s", res.Reason)
	}
}

func TestFacadeTimeline(t *testing.T) {
	ts := Set{{Name: "a", C: 1, T: 4}, {Name: "b", C: 2, T: 8}}
	plan, err := Partition(ts, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := plan.Simulate(SimOptions{RecordTimeline: true, TimelineCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gantt() == "" {
		t.Error("no Gantt output")
	}
}
