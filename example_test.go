package repro_test

import (
	"fmt"

	"repro"
)

// The basic flow: analyze, partition, simulate.
func ExamplePartition() {
	ts := repro.Set{
		{Name: "imu", C: 1, T: 4},
		{Name: "ctrl", C: 2, T: 8},
		{Name: "plan", C: 4, T: 16},
		{Name: "log", C: 6, T: 16},
	}
	plan, err := repro.Partition(ts, 2, repro.Options{})
	if err != nil {
		fmt.Println("not schedulable:", err)
		return
	}
	rep, _ := plan.Simulate(repro.SimOptions{StopOnMiss: true})
	fmt.Println(plan.AlgorithmName, "misses:", len(rep.Misses))
	// Output:
	// RM-TS/light misses: 0
}

// Parametric bounds: a harmonic set is covered by the 100% bound.
func ExampleAnalyze() {
	ts := repro.Set{
		{Name: "a", C: 1, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
	a := repro.Analyze(ts, 2)
	fmt.Printf("harmonic=%v chains=%d bound=%.0f%%\n", a.Harmonic, a.HarmonicChains, 100*a.BestBoundValue)
	// Output:
	// harmonic=true chains=1 bound=100%
}

// The bound-only admission test: schedulability without packing.
func ExampleBoundTest() {
	ts := repro.Set{
		{Name: "a", C: 1, T: 4}, {Name: "a2", C: 1, T: 4},
		{Name: "b", C: 2, T: 8}, {Name: "b2", C: 2, T: 8},
		{Name: "c", C: 6, T: 16}, {Name: "c2", C: 6, T: 16},
	}
	ok, bound, a := repro.BoundTest(ts, 2)
	fmt.Printf("U_M=%.3f bound=%.3f schedulable=%v\n", a.NormalizedU, bound, ok)
	// Output:
	// U_M=0.875 bound=1.000 schedulable=true
}

// Direct use of a specific algorithm and the verifier.
func ExampleNewRMTS() {
	ts := repro.Set{
		{Name: "heavy", C: 60, T: 100},
		{Name: "l1", C: 30, T: 200},
		{Name: "l2", C: 45, T: 300},
	}
	res := repro.NewRMTS(repro.HarmonicChainMin).Partition(ts, 2)
	fmt.Println("ok:", res.OK, "pre-assigned:", res.NumPreAssigned, "verify:", repro.Verify(res) == nil)
	// Output:
	// ok: true pre-assigned: 1 verify: true
}

// The Dhall effect: global RM fails at low utilization; the paper's
// partitioned approach does not.
func ExampleDhallExample() {
	ts := repro.DhallExample(4, 100)
	grm, _ := repro.SimulateGlobal(ts, 4, repro.GlobalOptions{Policy: repro.GlobalRM, StopOnMiss: true})
	res := repro.NewRMTS(nil).Partition(ts, 4)
	fmt.Printf("U_M=%.3f globalRM=%v partitioned=%v\n",
		ts.NormalizedUtilization(4), grm.Ok(), res.OK)
	// Output:
	// U_M=0.260 globalRM=false partitioned=true
}

// Critical scaling: how much execution-time growth a design tolerates.
func ExampleSensitivity() {
	ts := repro.Set{
		{Name: "a", C: 1, T: 10},
		{Name: "b", C: 2, T: 20},
	}
	rep, _ := repro.Sensitivity(ts, 1, repro.RMTSLight)
	fmt.Printf("global between 5 and 6: %v\n", rep.Global > 5 && rep.Global < 6)
	// Output:
	// global between 5 and 6: true
}
