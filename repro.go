// Package repro is a Go reproduction of "Parametric Utilization Bounds for
// Fixed-Priority Multiprocessor Scheduling" (Guan, Stigge, Yi, Yu —
// IPDPS 2012): rate-monotonic partitioned multiprocessor scheduling with
// task splitting, packed by exact response-time analysis, achieving any
// deflatable parametric utilization bound Λ(τ) for light task sets
// (RM-TS/light, Theorem 8) and min(Λ(τ), 2Θ/(1+Θ)) for arbitrary task sets
// (RM-TS, §V).
//
// This package is the public facade: it re-exports the user-facing types
// and entry points of the internal packages. Typical use:
//
//	ts := repro.Set{
//		{Name: "ctrl", C: 2, T: 10},
//		{Name: "video", C: 7, T: 40},
//	}
//	plan, err := repro.Partition(ts, 4, repro.Options{})
//	if err != nil { ... }                   // not schedulable
//	rep, _ := plan.Simulate(repro.SimOptions{})
//	fmt.Println(plan.AlgorithmName, rep.Ok())
//
// The building blocks are available for direct use as well: the
// partitioning algorithms (RMTSLight, NewRMTS, SPA1, SPA2, FirstFitRTA,
// WorstFitRTA), the parametric bounds (LiuLayland, HarmonicChain, TBound,
// RBound), exact response-time analysis (ProcessorSchedulable), the
// discrete-event simulator (Simulate), and the workload generators used by
// the evaluation harness (see cmd/experiments and EXPERIMENTS.md).
package repro

import (
	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/global"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/task"
)

// Time is a discrete instant or duration in integer ticks.
type Time = task.Time

// Task is a Liu & Layland task (C = WCET, T = period = deadline).
type Task = task.Task

// Set is an ordered task set; index order is RM priority order after
// SortRM.
type Set = task.Set

// Subtask is a fragment of a split task with its synthetic deadline.
type Subtask = task.Subtask

// Assignment maps subtasks to processors.
type Assignment = task.Assignment

// Result is the outcome of a partitioning algorithm.
type Result = partition.Result

// Algorithm is a partitioning algorithm.
type Algorithm = partition.Algorithm

// Plan is a verified partitioning produced by Partition.
type Plan = core.Plan

// Analysis summarizes a task set's parameters and applicable bounds.
type Analysis = core.Analysis

// Options configures the Partition planner.
type Options = core.Options

// PUB is a parametric utilization bound Λ(·) (§III).
type PUB = bounds.PUB

// SimOptions configures a simulation run.
type SimOptions = sim.Options

// SimReport is the outcome of a simulation run.
type SimReport = sim.Report

// Partition analyzes ts, selects a partitioning algorithm (RM-TS/light for
// light sets, RM-TS otherwise, unless overridden), places every task, and
// verifies the result with exact response-time analysis. A non-nil error
// means the set could not be scheduled.
func Partition(ts Set, m int, opt Options) (*Plan, error) {
	return core.Partition(ts, m, opt)
}

// Analyze computes utilization, harmonic structure and the applicable
// parametric bounds of a task set on m processors, without partitioning.
func Analyze(ts Set, m int) Analysis { return core.Analyze(ts, m) }

// BoundTest is the O(N²) bound-only schedulability test: true when the
// set's normalized utilization is within the guarantee of the planner's
// algorithm choice (§I's fast design-space-exploration use case).
func BoundTest(ts Set, m int) (ok bool, bound float64, analysis Analysis) {
	return core.BoundTest(ts, m)
}

// SensitivityReport holds the critical scaling factors of a schedulable
// configuration (global and per task).
type SensitivityReport = core.SensitivityReport

// Sensitivity computes how much execution-time growth the configuration
// tolerates: the largest uniform scaling factor keeping ts schedulable on
// m processors, and per-task individual factors. alg nil lets the planner
// choose per attempt.
func Sensitivity(ts Set, m int, alg Algorithm) (*SensitivityReport, error) {
	return core.Sensitivity(ts, m, alg)
}

// Simulate executes an assignment on the discrete-event multiprocessor
// simulator and reports deadline misses and response-time observations.
func Simulate(a *Assignment, opt SimOptions) (*SimReport, error) {
	return sim.Simulate(a, opt)
}

// Verify independently re-checks a partitioning result with exact RTA.
func Verify(res *Result) error { return partition.Verify(res) }

// ProcessorSchedulable reports whether a priority-sorted subtask list meets
// all (synthetic) deadlines under preemptive fixed-priority scheduling on
// one processor — the exact test at the heart of RM-TS (§IV-A).
func ProcessorSchedulable(list []Subtask) bool { return rta.ProcessorSchedulable(list) }

// Partitioning algorithms (see internal/partition for details).
var (
	// RMTSLight is the paper's algorithm for light task sets (§IV).
	RMTSLight Algorithm = partition.RMTSLight{}
	// SPA1 is the light-task utilization-threshold baseline of [16].
	SPA1 Algorithm = partition.SPA1{}
	// SPA2 is the general utilization-threshold baseline of [16].
	SPA2 Algorithm = partition.SPA2{}
	// FirstFitRTA is strict partitioned RM (no splitting), first-fit.
	FirstFitRTA Algorithm = partition.FirstFitRTA{}
	// WorstFitRTA is strict partitioned RM (no splitting), worst-fit.
	WorstFitRTA Algorithm = partition.WorstFitRTA{}
	// EDFFirstFit is strict partitioned EDF (full-bin packing; implicit
	// deadlines only). Simulate its results with PolicyEDF.
	EDFFirstFit Algorithm = partition.EDFFirstFit{}
	// EDFTS is the EDF-with-splitting comparator (window-based, exact
	// demand-test admission; constrained deadlines supported). Simulate
	// its results with PolicyEDF; verify with VerifyEDF.
	EDFTS Algorithm = partition.EDFTS{}
)

// Simulator scheduling policies.
const (
	// PolicyFP is preemptive fixed-priority per processor (the default).
	PolicyFP = sim.PolicyFP
	// PolicyEDF is preemptive EDF per processor, for the EDF baselines.
	PolicyEDF = sim.PolicyEDF
)

// VerifyEDF independently re-checks a partitioned-EDF result against the
// exact processor-demand criterion (window splits included).
func VerifyEDF(res *Result) error { return partition.VerifyEDF(res) }

// NewRMTS returns the paper's general algorithm RM-TS (§V), configured
// with the deflatable parametric bound used by its pre-assignment
// condition; nil selects the Liu & Layland bound.
func NewRMTS(p PUB) Algorithm { return partition.NewRMTS(p) }

// NewRMTSOverheadAware returns RM-TS with overhead-aware admission: every
// fragment term in the packing analysis is surcharged by 3×dispatchCost,
// so the produced partitions tolerate a runtime that charges dispatchCost
// ticks per context switch and per fragment migration (an extension beyond
// the paper's zero-overhead model; see internal/partition/overhead.go).
func NewRMTSOverheadAware(p PUB, dispatchCost Time) Algorithm {
	return &partition.RMTS{PUB: p, Surcharge: 3 * dispatchCost}
}

// NewRMTSLightOverheadAware is the RM-TS/light counterpart of
// NewRMTSOverheadAware.
func NewRMTSLightOverheadAware(dispatchCost Time) Algorithm {
	return partition.RMTSLight{Surcharge: 3 * dispatchCost}
}

// VerifyWithSurcharge re-checks a result with every RTA term surcharged by
// s per fragment — the independent verification matching overhead-aware
// admission. VerifyWithSurcharge(res, 0) equals Verify(res).
func VerifyWithSurcharge(res *Result, s Time) error {
	return partition.VerifyWithSurcharge(res, s)
}

// Parametric utilization bounds (§III).
var (
	// LiuLayland is Θ(N) = N(2^{1/N}−1).
	LiuLayland PUB = bounds.LiuLayland{}
	// HarmonicChainMin is K(2^{1/K}−1) with K the minimum harmonic chain
	// cover (K = 1 recovers the 100% bound for harmonic sets).
	HarmonicChainMin PUB = bounds.HarmonicChain{Minimal: true}
	// TBound is the scaled-period bound of Lauzac et al.
	TBound PUB = bounds.TBound{}
	// RBound is the period-ratio bound of Lauzac et al.
	RBound PUB = bounds.RBound{}
)

// LL returns the Liu & Layland bound Θ(n) for n tasks.
func LL(n int) float64 { return bounds.LL(n) }

// LightThresholdFor returns Θ/(1+Θ), the per-task utilization limit of a
// "light" task (Definition 1). ≈ 40.9% as n grows.
func LightThresholdFor(n int) float64 { return bounds.LightThresholdFor(n) }

// RMTSCapFor returns 2Θ/(1+Θ), the largest bound RM-TS achieves for
// arbitrary task sets (§V). ≈ 81.8% as n grows.
func RMTSCapFor(n int) float64 { return bounds.RMTSCapFor(n) }

// GlobalOptions configures a global-scheduling simulation (the competing
// paradigm of §I: any job may run on any processor).
type GlobalOptions = global.Options

// GlobalReport is the outcome of a global-scheduling simulation.
type GlobalReport = global.Report

// Global scheduling policies.
const (
	// GlobalRM is plain global rate-monotonic priority — subject to the
	// Dhall effect.
	GlobalRM = global.RM
	// GlobalRMUS is RM-US[m/(3m−2)] of Andersson, Baruah & Jonsson.
	GlobalRMUS = global.RMUS
)

// SimulateGlobal executes the task set under global preemptive
// fixed-priority scheduling on m processors.
func SimulateGlobal(ts Set, m int, opt GlobalOptions) (*GlobalReport, error) {
	return global.Simulate(ts, m, opt)
}

// GlobalUSBound returns the RM-US normalized utilization bound m/(3m−2) —
// the best-of-class global fixed-priority guarantee the paper's
// partitioned bounds (81.8–100%) are contrasted with.
func GlobalUSBound(m int) float64 { return global.USBound(m) }

// DhallExample constructs the classic Dhall-effect witness: m light tasks
// plus one C=T task, unschedulable under global RM at arbitrarily low
// normalized utilization yet trivial for any partitioned algorithm here.
func DhallExample(m int, periodLight Time) Set { return global.DhallExample(m, periodLight) }
