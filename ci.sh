#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, full
# test suite, a race-detector pass over the concurrent packages (the
# experiment harness fans out over workers; the obs counters and the RTA
# warm-start toggle are shared atomics), and a one-iteration bench smoke so
# every benchmark keeps compiling and running. Run from the repository
# root; any failure fails the gate.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrency-sensitive packages) =="
# The experiments race pass exercises the default reuse path: pooled
# per-worker workspaces with arenas and persistent RNGs under -race.
go test -race -short repro/internal/experiments repro/internal/obs repro/internal/partition

echo "== alloc guards (hot paths must stay zero-allocation) =="
go test -run AllocGuard repro/internal/rta repro/internal/split repro/internal/partition repro/internal/gen

echo "== bench smoke (one iteration per benchmark) =="
go test -run '^$' -bench=. -benchtime=1x ./... > /dev/null

echo "== hot-path bench JSON (BENCH_hotpath.json) =="
go test -run TestBenchHotpathJSON -benchjson=BENCH_hotpath.json .

echo "CI gate passed."
