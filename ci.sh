#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, full
# test suite, a race-detector pass over the concurrent packages (the
# experiment harness fans out over workers; the obs counters and the RTA
# warm-start toggle are shared atomics), and a one-iteration bench smoke so
# every benchmark keeps compiling and running. Run from the repository
# root; any failure fails the gate.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrency-sensitive packages) =="
go test -race -short repro/internal/experiments repro/internal/obs repro/internal/partition

echo "== bench smoke (one iteration per benchmark) =="
go test -run '^$' -bench=. -benchtime=1x ./... > /dev/null

echo "CI gate passed."
