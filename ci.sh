#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, full
# test suite, plus a race-detector pass over the concurrent packages (the
# experiment harness fans out over workers; the obs counters are shared
# atomics). Run from the repository root; any failure fails the gate.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrency-sensitive packages) =="
go test -race -short repro/internal/experiments repro/internal/obs

echo "CI gate passed."
