#!/bin/sh
# Tier-1 verification gate (see ROADMAP.md): formatting, vet, build, full
# test suite, a race-detector pass over the concurrent packages (the
# experiment harness fans out over workers; the obs counters and the RTA
# warm-start toggle are shared atomics), a one-iteration bench smoke so
# every benchmark keeps compiling and running, a fault-injection pass over
# the hardened pipeline (DESIGN.md §9), short fuzz smokes for the invariant
# checker, the task-set parser and the warm-state removal invalidation, a
# -paranoid quick table that re-validates every partitioning the harness
# produces, a telemetry smoke that schema-lints a run-event log (including
# the v2 rejection-cause breakdown), an explain-replay golden (a fixed
# recipe must render a byte-identical why-report), an admitd smoke that
# boots the admission service and drives the admit→remove→re-admit cycle
# plus a load run through its -check client, a metrics lint that
# grammar-checks the daemon's live Prometheus exposition and schema-checks
# its JSONL access log (DESIGN.md §15), a crash-recovery smoke that
# churns a journaled admitd, SIGKILLs it and requires the restarted daemon
# to recover a digest-identical canonical state (DESIGN.md §14), and a
# perf-regression gate diffing the regenerated hot-path bench record
# against the committed baseline (DESIGN.md §10) — plus absolute speed
# floors that lock in the batch-kernel win (E2AcceptanceGeneral under
# 700µs/op, AdmitService above ~140k admissions/sec, the journaled service
# under 15µs/op). Run from the repository root; any failure fails
# the gate.
set -eu

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (concurrency-sensitive packages) =="
# The experiments race pass exercises the default reuse path: pooled
# per-worker workspaces with arenas and persistent RNGs under -race.
go test -race -short repro/internal/experiments repro/internal/obs repro/internal/partition repro/internal/admit

echo "== alloc guards (hot paths must stay zero-allocation) =="
go test -run AllocGuard repro/internal/rta repro/internal/split repro/internal/partition repro/internal/gen

echo "== fault injection (every injected fault must surface as a seed-reproducible SampleError) =="
go test repro/internal/faultinject
go test -count=1 -run 'TestInjected|TestCheckpointWriteFailure|TestKillAndResume|TestMidSweepCancellation' repro/internal/experiments

echo "== fuzz smokes (invariant checker, task-set parser round trip, removal invalidation, batch-vs-scalar RTA) =="
go test -run '^$' -fuzz FuzzValidate -fuzztime 5s repro/internal/partition
go test -run '^$' -fuzz FuzzParseRoundTrip -fuzztime 5s repro/internal/taskio
go test -run '^$' -fuzz FuzzProcStateRemove -fuzztime 5s repro/internal/rta
go test -run '^$' -fuzz FuzzBatchVsScalarRTA -fuzztime 5s repro/internal/rta
go test -run '^$' -fuzz FuzzJournalReplay -fuzztime 5s repro/internal/admit

echo "== prefilter / cross-scale equivalence (tables must be byte-identical with the fast paths off) =="
fast_on=$(mktemp /tmp/ci-fast-on.XXXXXX.txt)
fast_off=$(mktemp /tmp/ci-fast-off.XXXXXX.txt)
go run ./cmd/experiments -run acceptance-general -quick -sets 50 -q > "$fast_on"
go run ./cmd/experiments -run acceptance-general -quick -sets 50 -q -prefilter=false -crossscale=false > "$fast_off"
cmp "$fast_on" "$fast_off"
rm -f "$fast_on" "$fast_off"

echo "== paranoid quick table (full invariant re-validation of every partitioning) =="
go run ./cmd/experiments -run acceptance-general -quick -sets 50 -paranoid -q > /dev/null

echo "== bench smoke (one iteration per benchmark) =="
go test -run '^$' -bench=. -benchtime=1x ./... > /dev/null

echo "== telemetry smoke (run-event log must pass strict schema validation) =="
events_log=$(mktemp /tmp/ci-events.XXXXXX.jsonl)
go run ./cmd/experiments -run acceptance-general -quick -sets 16 -q -events "$events_log" > /dev/null
go run ./cmd/perfdiff -validate-events "$events_log"
rm -f "$events_log"

echo "== explain replay golden (fixed recipe must render a byte-identical report) =="
# Exit 1 is the expected verdict here — the fixture recipe replays a sample
# RM-TS rejects; any other status (crash, usage error) fails the gate.
explain_out=$(mktemp /tmp/ci-explain.XXXXXX.txt)
explain_recipe='repro: experiment=acceptance-general point=3 sample=0 base-seed=1871513160099489213 sample-seed=1871513160099489213'
explain_status=0
go run ./cmd/explain -recipe "$explain_recipe" -quick -algo rm-ts > "$explain_out" || explain_status=$?
[ "$explain_status" -eq 1 ]
cmp "$explain_out" cmd/explain/testdata/recipe_rmts.golden
rm -f "$explain_out"

echo "== admitd smoke (boot, admit→remove→re-admit cycle, load run, graceful stop) =="
admitd_bin=$(mktemp /tmp/ci-admitd.XXXXXX)
admitd_addr=$(mktemp /tmp/ci-admitd-addr.XXXXXX)
admitd_access=$(mktemp /tmp/ci-admitd-access.XXXXXX.jsonl)
admitd_prom=$(mktemp /tmp/ci-admitd-prom.XXXXXX.txt)
rm -f "$admitd_addr" "$admitd_access"
go build -o "$admitd_bin" ./cmd/admitd
"$admitd_bin" -listen 127.0.0.1:0 -addr-file "$admitd_addr" -q \
    -access-log "$admitd_access" -slow-ms 0 &
admitd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$admitd_addr" ] && break
    sleep 0.1
done
[ -s "$admitd_addr" ]
# The -check client verifies /healthz, the endpoint index, a full
# admit→reject→remove→re-admit cycle with a typed rejection, a sustained
# admit/remove load over HTTP, request-ID echoing, and both /metrics
# exposition formats plus /debug/requests.
"$admitd_bin" -check "$(cat "$admitd_addr")" -check-load 1000

echo "== metrics lint (Prometheus exposition + access-log JSONL must pass strict validation) =="
# Scrape the live daemon's Prometheus exposition and grammar-check it; then
# stop the daemon and schema-check the access log it wrote — the same
# validators a downstream scraper/shipper would rely on.
"$admitd_bin" -scrape "$(cat "$admitd_addr")" > "$admitd_prom"
go run ./cmd/perfdiff -validate-prom "$admitd_prom"
grep -q '^# TYPE admit_http_admit_latency_us histogram$' "$admitd_prom"
grep -q '^# TYPE admit_journal_fsync_us histogram$' "$admitd_prom"
grep -q '^# TYPE admit_gate_queue_depth gauge$' "$admitd_prom"
kill -TERM "$admitd_pid"
wait "$admitd_pid"
go run ./cmd/perfdiff -validate-access-log "$admitd_access"
rm -f "$admitd_access" "$admitd_prom"

echo "== admitd crash-recovery smoke (churn, SIGKILL, restart, digest compare) =="
# Boot journaled (fsync=always: every acknowledged op durable), drive a
# seeded churn, digest the canonical state, SIGKILL the daemon (no final
# snapshot — recovery must come from the write-ahead log), restart on the
# same directory and require a byte-identical digest.
admitd_data=$(mktemp -d /tmp/ci-admitd-data.XXXXXX)
rm -f "$admitd_addr"
"$admitd_bin" -listen 127.0.0.1:0 -addr-file "$admitd_addr" -q \
    -data "$admitd_data" -fsync always &
admitd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$admitd_addr" ] && break
    sleep 0.1
done
[ -s "$admitd_addr" ]
# The address file appears before recovery finishes and the ready guard
# answers 503 until it does, so wait for the first successful digest.
for _ in $(seq 1 100); do
    "$admitd_bin" -churn "$(cat "$admitd_addr")" -churn-ops 0 2>/dev/null > /dev/null && break
    sleep 0.1
done
"$admitd_bin" -churn "$(cat "$admitd_addr")" -churn-ops 400 -churn-seed 42 \
    2>/dev/null > /tmp/ci-canon-before.txt
kill -KILL "$admitd_pid"
wait "$admitd_pid" 2>/dev/null || true
rm -f "$admitd_addr"
"$admitd_bin" -listen 127.0.0.1:0 -addr-file "$admitd_addr" -q \
    -data "$admitd_data" -fsync always &
admitd_pid=$!
for _ in $(seq 1 100); do
    [ -s "$admitd_addr" ] && break
    sleep 0.1
done
[ -s "$admitd_addr" ]
canon_ok=0
for _ in $(seq 1 100); do
    if "$admitd_bin" -churn "$(cat "$admitd_addr")" -churn-ops 0 \
        2>/dev/null > /tmp/ci-canon-after.txt; then
        canon_ok=1
        break
    fi
    sleep 0.1
done
[ "$canon_ok" -eq 1 ]
cmp /tmp/ci-canon-before.txt /tmp/ci-canon-after.txt
kill -TERM "$admitd_pid"
wait "$admitd_pid"
rm -rf "$admitd_bin" "$admitd_addr" "$admitd_data" /tmp/ci-canon-before.txt /tmp/ci-canon-after.txt

echo "== hot-path bench JSON (BENCH_hotpath.json) =="
baseline=$(mktemp /tmp/ci-bench-baseline.XXXXXX.json)
cp BENCH_hotpath.json "$baseline"
go test -run TestBenchHotpathJSON -benchjson=BENCH_hotpath.json .

echo "== perf-regression gate (new record vs committed baseline) =="
# Timing and bytes are noisy on shared CI hardware, so ns/op and B/op only
# warn; allocs/op and the domain metrics (rta-iters/op, splits/op, ...) are
# deterministic for the fixed bench seeds and gate hard.
go run ./cmd/perfdiff -warn 'ns/op,B/op' -allocs-tol 0.25 -extra-tol 0.25 "$baseline" BENCH_hotpath.json
rm -f "$baseline"

echo "== hot-path speed floors (batch-kernel win must hold) =="
# Absolute ns/op ceilings, deliberately generous against shared-hardware
# noise but far below the pre-batch-kernel numbers: E2AcceptanceGeneral ran
# ~840µs/op before the SoA kernel / cross-scale reuse / HB prefilter wave
# and ~420-460µs/op after, so 700µs only trips on a real regression.
# AdmitService at 7µs/op is ~140k admissions/sec, above the 100k target.
e2_ns=$(awk '/"name": "E2AcceptanceGeneral"/{f=1} f && /"ns_per_op"/{gsub(/[^0-9.]/, ""); print; exit}' BENCH_hotpath.json)
echo "E2AcceptanceGeneral: ${e2_ns} ns/op (ceiling 700000)"
awk -v ns="$e2_ns" 'BEGIN { exit !(ns > 0 && ns <= 700000) }'
admit_ns=$(awk '/"name": "AdmitService"/{f=1} f && /"ns_per_op"/{gsub(/[^0-9.]/, ""); print; exit}' BENCH_hotpath.json)
echo "AdmitService: ${admit_ns} ns/op (ceiling 7000)"
awk -v ns="$admit_ns" 'BEGIN { exit !(ns > 0 && ns <= 7000) }'
# The journaled service (fsync off, snapshots off — pure record-encode cost)
# runs ~7.5µs/op against ~4.4µs unjournaled; 15µs only trips on a real
# regression in the append path.
journal_ns=$(awk '/"name": "AdmitServiceJournaled"/{f=1} f && /"ns_per_op"/{gsub(/[^0-9.]/, ""); print; exit}' BENCH_hotpath.json)
echo "AdmitServiceJournaled: ${journal_ns} ns/op (ceiling 15000)"
awk -v ns="$journal_ns" 'BEGIN { exit !(ns > 0 && ns <= 15000) }'

echo "CI gate passed."
