// Package stats provides the small statistical toolkit the experiment
// harness needs: means, standard deviations, and Wilson score intervals for
// the acceptance-ratio estimates (which are binomial proportions).
package stats

import "math"

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator), or 0 for
// fewer than two samples.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest value, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Wilson returns the Wilson score interval for k successes out of n trials
// at confidence z (1.96 for 95%). It is well-behaved for extreme
// proportions, unlike the normal approximation. Returns (0, 1) for n = 0.
func Wilson(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	den := 1 + z2/nf
	center := (p + z2/(2*nf)) / den
	half := z / den * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs by linear
// interpolation on a sorted copy. Returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	insertionSort(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

func insertionSort(v []float64) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}
