package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %g", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %g, want 2.5", got)
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev(nil); got != 0 {
		t.Errorf("StdDev(nil) = %g", got)
	}
	if got := StdDev([]float64{5}); got != 0 {
		t.Errorf("StdDev(one) = %g", got)
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %g, want %g", got, want)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %g/%g", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestWilson(t *testing.T) {
	lo, hi := Wilson(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson(0,0) = (%g,%g)", lo, hi)
	}
	lo, hi = Wilson(50, 100, 1.96)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("interval (%g,%g) excludes the point estimate", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval (%g,%g) too wide for n=100", lo, hi)
	}
	// Extreme proportions stay within [0,1].
	lo, hi = Wilson(0, 10, 1.96)
	if lo < 0 || hi > 1 || hi < 0.01 {
		t.Errorf("Wilson(0,10) = (%g,%g)", lo, hi)
	}
	lo, hi = Wilson(10, 10, 1.96)
	if hi > 1 || lo > 1 || lo < 0.6 {
		t.Errorf("Wilson(10,10) = (%g,%g)", lo, hi)
	}
}

func TestWilsonShrinksWithN(t *testing.T) {
	lo1, hi1 := Wilson(5, 10, 1.96)
	lo2, hi2 := Wilson(500, 1000, 1.96)
	if hi2-lo2 >= hi1-lo1 {
		t.Errorf("larger n did not shrink interval: %g vs %g", hi2-lo2, hi1-lo1)
	}
}

func TestWilsonContainsTruthProperty(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		n := int(n8%50) + 1
		k := int(k8) % (n + 1)
		lo, hi := Wilson(k, n, 1.96)
		p := float64(k) / float64(n)
		return lo <= p+1e-9 && hi >= p-1e-9 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("q0 = %g", got)
	}
	if got := Quantile(xs, 1); got != 4 {
		t.Errorf("q1 = %g", got)
	}
	if got := Quantile(xs, 0.5); got != 2.5 {
		t.Errorf("median = %g, want 2.5", got)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g", got)
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile sorted its input in place")
	}
}
