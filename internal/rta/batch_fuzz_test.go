package rta

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/task"
)

// FuzzBatchVsScalarRTA pins the struct-of-arrays batch kernel to the scalar
// reference on arbitrary admission streams: every verdict, converged
// response, and slack the ProcState accessors produce must equal the
// from-scratch slice-based evaluation of the equivalent surcharged view.
// Each 4-byte group is one admission attempt; the selector's low bit picks
// a near-MaxInt64 magnitude class so the stream drives both fixpointFast
// (batchSafe accepts) and the checked fallback twins (batchSafe rejects),
// and the warm flag toggles warm starts so cached-response starts are
// compared against cold scalar fixed points.
func FuzzBatchVsScalarRTA(f *testing.F) {
	f.Add([]byte{0, 40, 3, 5, 2, 80, 7, 9, 0, 33, 2, 1}, true)
	f.Add([]byte{1, 200, 250, 3, 3, 255, 255, 255}, false)
	f.Add([]byte{0, 10, 1, 0, 1, 2, 2, 2, 0, 90, 11, 4}, true)
	f.Fuzz(func(t *testing.T, data []byte, warm bool) {
		defer SetWarmStart(true)
		SetWarmStart(warm)
		if len(data) > 120 {
			data = data[:120]
		}
		s := task.Time(len(data) % 3)
		ps := &ProcState{Surcharge: s}
		var list []task.Subtask
		next := 0
		for op := 0; len(data) >= 4; op++ {
			sel, b1, b2, b3 := data[0], data[1], data[2], data[3]
			data = data[4:]
			ctx := fmt.Sprintf("op %d (surcharge %d, warm %v)", op, s, warm)
			var T, c, d task.Time
			if sel&1 == 1 {
				// Near-MaxInt64 magnitudes: interferenceBound overflows, so
				// the probe runs the checked twins instead of the fast path.
				T = math.MaxInt64/2 + task.Time(b1)*(math.MaxInt64/512)
				c = T/4 + task.Time(b2)
				d = T - task.Time(b3)
				if d < c {
					d = c
				}
			} else {
				T = task.Time(20 + int(b1)*8)
				c = task.Time(1 + int(b2)%(int(T)/3+1))
				d = T - task.Time(int(b3)%(int(T)/3+1))
				if d < c {
					d = c
				}
			}
			prio := next
			if sel&2 == 2 && len(list) > 0 {
				prio = list[int(b1)%len(list)].TaskIndex
			}
			next += 2
			want := SchedulableWithExtraAt(surchargedView(list, s), prio, c+s, T, d)
			got := ps.AdmitAt(prio, c, T, d)
			if got != want {
				t.Fatalf("%s: AdmitAt(%d,%d,%d,%d)=%v, from-scratch=%v", ctx, prio, c, T, d, got, want)
			}
			if got {
				sub := task.Subtask{TaskIndex: prio, Part: 1, C: c, T: T, Deadline: d, Tail: true}
				pos := ps.Insert(sub)
				list = insertSub(list, pos, sub)
			}
			sur := surchargedView(list, s)
			for i := range list {
				wantR, wantOK := SubtaskResponse(sur, i)
				gotR, gotOK := ps.ResponseAt(i, list[i].Deadline)
				if gotOK != wantOK || (gotOK && gotR != wantR) {
					t.Fatalf("%s: ResponseAt(%d)=(%d,%v), SubtaskResponse=(%d,%v)",
						ctx, i, gotR, gotOK, wantR, wantOK)
				}
				// The slack scans enumerate ~Σ d/T_j testing points, which is
				// unbounded when a near-MaxInt64 deadline meets small-period
				// interferers — skip the slack cross-check for such pairs
				// (the response/verdict comparisons above still run).
				pts := int64(0)
				for j := 0; j < i && pts < 1<<16; j++ {
					pts += int64(list[i].Deadline / list[j].T)
				}
				if pts+int64(list[i].Deadline/T) >= 1<<16 {
					continue
				}
				exact := ps.SlackAt(i, T)
				if scalar := Slack(sur, i, T); exact != scalar {
					t.Fatalf("%s: SlackAt(%d,%d)=%d, scalar Slack=%d", ctx, i, T, exact, scalar)
				}
				// The capped scan must be exact below its cap and a valid
				// ≥-cap witness at or above it.
				cap := task.Time(1 + int(b2))
				capped := ps.SlackAtMost(i, T, cap)
				if capped < cap && capped != exact {
					t.Fatalf("%s: SlackAtMost(%d,%d,%d)=%d below cap but exact slack is %d",
						ctx, i, T, cap, capped, exact)
				}
				if capped >= cap && exact < cap {
					t.Fatalf("%s: SlackAtMost(%d,%d,%d)=%d claims ≥ cap but exact slack is %d",
						ctx, i, T, cap, capped, exact)
				}
			}
		}
	})
}
