package rta

import (
	"math/rand"
	"testing"

	"repro/internal/task"
)

// randomResidents draws a priority-sorted subtask list whose residents are
// individually plausible (C ≤ Deadline ≤ T); the list as a whole need not
// be schedulable.
func randomResidents(r *rand.Rand, n int) []task.Subtask {
	list := make([]task.Subtask, 0, n)
	for i := 0; i < n; i++ {
		T := task.Time(20 + r.Intn(2000))
		C := task.Time(1 + r.Intn(int(T)/4+1))
		d := T - task.Time(r.Intn(int(T)/4+1))
		if d < C {
			d = C
		}
		list = append(list, task.Subtask{TaskIndex: i * 2, Part: 1, C: C, T: T, Deadline: d, Tail: true})
	}
	return list
}

func mirror(list []task.Subtask, surcharge task.Time) *ProcState {
	ps := &ProcState{Surcharge: surcharge}
	for _, s := range list {
		ps.Insert(s)
	}
	return ps
}

// TestAdmitAtMatchesFromScratch fuzzes AdmitAt in both cache modes against
// SchedulableWithExtraAt on the equivalent (surcharged) list view — the
// decision-equivalence contract of the incremental engine.
func TestAdmitAtMatchesFromScratch(t *testing.T) {
	defer SetWarmStart(true)
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 3000; trial++ {
		n := r.Intn(7)
		list := randomResidents(r, n)
		s := task.Time(r.Intn(3))
		ps := mirror(list, s)

		prio := r.Intn(2*n + 3) // may fall between, before or after residents
		T := task.Time(20 + r.Intn(2000))
		c := task.Time(1 + r.Intn(int(T)/3+1))
		d := T - task.Time(r.Intn(int(T)/3+1))

		sur := make([]task.Subtask, len(list))
		for i, sub := range list {
			sub.C += s
			sur[i] = sub
		}
		// The from-scratch reference only re-checks residents the insertion
		// can affect when they were schedulable beforehand; AdmitAt's skip
		// relies on that processor invariant, so establish it here.
		if !ProcessorSchedulable(sur) {
			continue
		}
		want := SchedulableWithExtraAt(sur, prio, c+s, T, d)

		SetWarmStart(true)
		if got := ps.AdmitAt(prio, c, T, d); got != want {
			t.Fatalf("trial %d (warm): AdmitAt=%v, from-scratch=%v (list=%v s=%d prio=%d c=%d T=%d d=%d)",
				trial, got, want, list, s, prio, c, T, d)
		}
		SetWarmStart(false)
		if got := ps.AdmitAt(prio, c, T, d); got != want {
			t.Fatalf("trial %d (cold): AdmitAt=%v, from-scratch=%v (list=%v s=%d prio=%d c=%d T=%d d=%d)",
				trial, got, want, list, s, prio, c, T, d)
		}
		SetWarmStart(true)
	}
}

// TestInsertAdoptsStagedResponses checks the probe-then-commit staging: a
// successful AdmitAt immediately followed by the matching Insert reuses the
// probe's converged fixed points, and later warm-started evaluations return
// the same responses a cold mirror computes.
func TestInsertAdoptsStagedResponses(t *testing.T) {
	defer SetWarmStart(true)
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 500; trial++ {
		ps := &ProcState{}
		cold := &ProcState{}
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			T := task.Time(50 + r.Intn(1000))
			c := task.Time(1 + r.Intn(int(T)/n+1))
			sub := task.Subtask{TaskIndex: i, Part: 1, C: c, T: T, Deadline: T, Tail: true}
			if ps.AdmitAt(i, c, T, T) {
				ps.Insert(sub)
				cold.Insert(sub)
			}
		}
		if ps.Len() != cold.Len() {
			t.Fatalf("mirrors diverged: %d vs %d", ps.Len(), cold.Len())
		}
		for i := 0; i < ps.Len(); i++ {
			rw, okw := ps.ResponseAt(i, ps.Deadline(i))
			SetWarmStart(false)
			rc, okc := cold.ResponseAt(i, cold.Deadline(i))
			SetWarmStart(true)
			if rw != rc || okw != okc {
				t.Fatalf("trial %d pos %d: warm (%d,%v) vs cold (%d,%v)", trial, i, rw, okw, rc, okc)
			}
		}
	}
}

// TestWarmStartConvergesToSameFixedPoint pins the mathematical invariant
// directly: iterating from any lower bound of the least fixed point returns
// the least fixed point.
func TestWarmStartConvergesToSameFixedPoint(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 2000; trial++ {
		nhp := r.Intn(5)
		hp := make([]Interference, nhp)
		for i := range hp {
			T := task.Time(10 + r.Intn(500))
			hp[i] = Interference{C: task.Time(1 + r.Intn(int(T)/3+1)), T: T}
		}
		c := task.Time(1 + r.Intn(100))
		limit := task.Time(50 + r.Intn(5000))
		rCold, vCold, _ := iterate(c, hp, 0, 0, limit, coldStart(c, hp, 0))
		if vCold != VerdictFits {
			continue
		}
		// Any start in [coldStart, lfp] must converge to the same value.
		for _, start := range []task.Time{rCold, rCold - 1, (coldStart(c, hp, 0) + rCold) / 2} {
			if start < coldStart(c, hp, 0) {
				start = coldStart(c, hp, 0)
			}
			rWarm, vWarm, _ := iterate(c, hp, 0, 0, limit, start)
			if rWarm != rCold || vWarm != VerdictFits {
				t.Fatalf("trial %d: warm from %d gave (%d,%v), cold gave %d", trial, start, rWarm, vWarm, rCold)
			}
		}
	}
}

func TestVerdictAborted(t *testing.T) {
	old := MaxIters
	MaxIters = 4
	defer func() { MaxIters = old }()
	// Slow convergence: interference climbs by one tick per iteration.
	hp := []Interference{{C: 1, T: 1}}
	_, v := ResponseTimeVerdict(1, hp, 1<<40)
	if v != VerdictAborted {
		t.Fatalf("verdict = %v, want aborted", v)
	}
	if v.String() != "aborted" {
		t.Fatalf("String() = %q", v.String())
	}
	// The abort is still treated as unschedulable by the boolean wrapper.
	if _, ok := ResponseTime(1, hp, 1<<40); ok {
		t.Fatal("aborted evaluation reported schedulable")
	}
}

func TestVerdictExceedsLimitIsExact(t *testing.T) {
	// C alone over the limit: exceeds-limit without any iteration.
	if _, v := ResponseTimeVerdict(10, nil, 5); v != VerdictExceedsLimit {
		t.Fatalf("verdict = %v, want exceeds-limit", v)
	}
	// Interference pushes past the limit: still exact.
	hp := []Interference{{C: 5, T: 10}}
	if _, v := ResponseTimeVerdict(6, hp, 10); v != VerdictExceedsLimit {
		t.Fatalf("verdict = %v, want exceeds-limit", v)
	}
	if _, v := ResponseTimeVerdict(4, hp, 10); v != VerdictFits {
		t.Fatalf("verdict = %v, want fits", v)
	}
}

func TestSlackAtMatchesSlack(t *testing.T) {
	r := rand.New(rand.NewSource(14))
	for trial := 0; trial < 1000; trial++ {
		n := 1 + r.Intn(6)
		list := randomResidents(r, n)
		ps := mirror(list, 0)
		i := r.Intn(n)
		tt := task.Time(10 + r.Intn(2000))
		if got, want := ps.SlackAt(i, tt), Slack(list, i, tt); got != want {
			t.Fatalf("trial %d: SlackAt=%d Slack=%d (i=%d t=%d list=%v)", trial, got, want, i, tt, list)
		}
	}
}

func TestPosForMatchesAssignmentOrder(t *testing.T) {
	ps := &ProcState{}
	for _, idx := range []int{4, 8, 2} {
		ps.Insert(task.Subtask{TaskIndex: idx, Part: 1, C: 1, T: 100, Deadline: 100, Tail: true})
	}
	// Mirror order must be 2, 4, 8.
	for want, idx := range []int{2, 4, 8} {
		if ps.idx[want] != idx {
			t.Fatalf("mirror order %v", ps.idx)
		}
	}
	if ps.PosFor(3) != 1 || ps.PosFor(0) != 0 || ps.PosFor(9) != 3 {
		t.Fatalf("PosFor: %d %d %d", ps.PosFor(3), ps.PosFor(0), ps.PosFor(9))
	}
	// Equal index inserts after, matching task.Assignment.Add's sort.Search.
	if ps.PosFor(4) != 2 {
		t.Fatalf("PosFor(equal) = %d, want 2", ps.PosFor(4))
	}
}

func TestSetWarmStartToggle(t *testing.T) {
	defer SetWarmStart(true)
	if !WarmStartEnabled() {
		t.Fatal("warm starts should default to enabled")
	}
	SetWarmStart(false)
	if WarmStartEnabled() {
		t.Fatal("toggle off failed")
	}
	SetWarmStart(true)
	if !WarmStartEnabled() {
		t.Fatal("toggle on failed")
	}
}
