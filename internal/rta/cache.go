// Incremental analysis engine: per-processor warm-start caching for exact
// RTA (the paper's §IV-A admission loop is where all the fixed-point work
// happens, and the E2 metrics show RM-TS spending ~10⁴ iterations per task
// set there).
//
// A ProcState shadows one processor's priority-sorted resident list with
// three things a from-scratch analysis rebuilds on every probe:
//
//  1. the interference mirror — the residents as a struct-of-arrays
//     BatchState (parallel C/T/deadline/response slices, see batch.go), kept
//     in priority order so the higher-priority set of position i is a pair
//     of slice prefixes, with zero allocation per probe; probes run the
//     batch kernel (one overflow precheck per probe, then the unchecked
//     branch-free fast loop) instead of per-term checked arithmetic;
//  2. the response cache — the last converged response time per resident.
//     Partitioners only ever ADD load, and the demand function is monotone
//     in added interference, so an old fixed point is a valid lower bound
//     on the new one; the fixed-point iteration converges to the same
//     least fixed point from any lower bound (see iterate), so warm starts
//     are exact, not approximate;
//  3. the affected-range skip — a candidate inserted at priority position
//     pos adds interference only to residents at positions ≥ pos; the
//     residents before pos keep the exact response they were admitted
//     with, and re-checking them is provably redundant (every resident was
//     schedulable when the last admission committed).
//
// Equivalence contract: with warm starts disabled (SetWarmStart(false))
// ProcState reproduces the from-scratch computation step for step — every
// admission decision, split portion and response value is byte-identical
// either way, because the least fixed point is unique. Only the iteration
// counts (rta.iterations, rta.iters_per_call) differ. The partition
// package's equivalence fuzz test and the experiments golden test pin this
// contract.
package rta

import (
	"sync/atomic"

	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/task"
)

// warmStartOff is the global cache toggle; the zero value means enabled.
// It exists so experiments and tests can prove decision-equivalence of the
// cached and from-scratch paths on identical inputs.
var warmStartOff atomic.Bool

// SetWarmStart enables (true, the default) or disables warm-start caching
// and affected-range skipping in every ProcState. Disabling never changes
// any analysis outcome — only how much work reaching it costs.
func SetWarmStart(on bool) { warmStartOff.Store(!on) }

// WarmStartEnabled reports whether ProcState warm starts are active.
func WarmStartEnabled() bool { return !warmStartOff.Load() }

// Cache-effectiveness instrumentation (no-ops unless obs.SetEnabled):
// warm_starts counts fixed points started from a cached response,
// skipped_residents counts per-probe residents not re-analysed because the
// candidate cannot affect them.
var (
	cWarmStarts   = obs.NewCounter("rta.cache.warm_starts")
	cSkippedHP    = obs.NewCounter("rta.cache.skipped_residents")
	cStagedAdopts = obs.NewCounter("rta.cache.staged_adoptions")
)

// ProcState is the incremental analysis state of one processor. Create one
// per processor at the start of a partitioning run, mirror every committed
// subtask with Insert, and use AdmitAt / SlackAt / MaxOwnLoadAt /
// ResponseAt in place of the from-scratch package functions. The zero
// value is ready to use (empty processor, no surcharge).
//
// A ProcState is not safe for concurrent use; partitioning runs are
// single-goroutine per task set (the experiment harness parallelizes over
// task sets, each with its own states).
type ProcState struct {
	// Surcharge is the per-fragment analysis surcharge (overhead-aware
	// admission, see partition/overhead.go). Every C mirrored into the
	// state — resident and candidate alike — is inflated by it. Zero
	// reproduces the paper's zero-overhead analysis.
	Surcharge task.Time

	idx []int      // resident TaskIndex, priority order
	b   BatchState // SoA mirror: (C+Surcharge, T, deadline, cached response)

	// Probe scratch: the post-insert view of one AdmitAt probe — residents
	// with the candidate spliced in at its priority position — so the whole
	// probe runs over two flat arrays with no per-position extra-interferer
	// special case.
	pcs []task.Time
	pts []task.Time

	// Staging from the last successful AdmitAt probe: if the very next
	// Insert commits exactly that candidate, the responses computed during
	// the probe (which already include the candidate's interference) are
	// adopted as the new cache — they are the true converged fixed points
	// of the post-insert processor.
	staged      []task.Time
	stagedPos   int
	stagedC     task.Time // surcharged
	stagedT     task.Time
	stagedD     task.Time
	stagedValid bool
}

// NewProcStates returns one ProcState per processor, all sharing the given
// analysis surcharge.
func NewProcStates(m int, surcharge task.Time) []ProcState {
	return ResetProcStates(nil, m, surcharge)
}

// ResetProcStates recycles a ProcState slice from a previous partitioning
// run into m empty states with the given surcharge, growing it only when
// the capacity (including buffers of states beyond the previous length) is
// insufficient. The result is observationally identical to
// NewProcStates(m, surcharge); reusing the slice preserves each state's
// mirror/cache buffer capacities so steady-state runs allocate nothing.
func ResetProcStates(states []ProcState, m int, surcharge task.Time) []ProcState {
	if cap(states) < m {
		grown := make([]ProcState, m)
		// Reslice to capacity so buffers owned by states past the previous
		// length survive the grow.
		copy(grown, states[:cap(states)])
		states = grown
	} else {
		states = states[:m]
	}
	for q := range states {
		states[q].Reset(surcharge)
	}
	return states
}

// Reset empties the state for a new partitioning run, keeping the mirror
// and cache buffers for reuse.
func (ps *ProcState) Reset(surcharge task.Time) {
	ps.Surcharge = surcharge
	ps.idx = ps.idx[:0]
	ps.b.reset()
	ps.stagedValid = false
}

// Len returns the number of mirrored residents.
func (ps *ProcState) Len() int { return ps.b.len() }

// PosFor returns the priority position a load with task index prio would
// be inserted at — the first position whose resident has a larger index —
// matching task.Assignment.Add's ordering exactly.
func (ps *ProcState) PosFor(prio int) int {
	pos := 0
	for pos < len(ps.idx) && ps.idx[pos] <= prio {
		pos++
	}
	return pos
}

// Insert mirrors a committed subtask (after the owning task.Assignment.Add)
// and returns its priority position. If the subtask matches the staged
// candidate of the immediately preceding successful AdmitAt, the probe's
// converged responses become the new cache; otherwise the cached responses
// of displaced residents are kept — they remain valid lower bounds, since
// the insertion only added interference.
func (ps *ProcState) Insert(s task.Subtask) int {
	pos := ps.PosFor(s.TaskIndex)
	c := s.C + ps.Surcharge
	ps.idx = insertInt(ps.idx, pos, s.TaskIndex)
	ps.b.insert(pos, c, s.T, s.Deadline)
	if ps.stagedValid && ps.stagedPos == pos && ps.stagedC == c && ps.stagedT == s.T && ps.stagedD == s.Deadline {
		ps.b.resp = append(ps.b.resp[:0], ps.staged[:ps.b.len()]...)
		if obs.On() {
			cStagedAdopts.Inc()
		}
	} else {
		ps.b.resp = insertTime(ps.b.resp, pos, 0)
	}
	ps.stagedValid = false
	return pos
}

// AdmitAt reports whether the processor stays schedulable when a new load
// (c, t) with priority index prio is inserted at its priority position and
// the new load itself meets deadline d. It is the incremental equivalent
// of SchedulableWithExtraAt on the surcharged resident view, with c taken
// as the RAW execution time (the surcharge is added internally).
//
// With warm starts enabled, residents above the insertion position are
// skipped (the candidate cannot interfere with them, and the processor
// invariant — every resident is schedulable in the current configuration,
// whether its admission came from RTA or the sufficient prefilter — makes
// their re-check redundant) and every evaluated fixed point starts from the
// cached response when that beats the cold lower bound. With warm starts
// disabled every resident is re-analysed from a cold start, reproducing
// the from-scratch path. Both modes return identical verdicts.
//
// The probe materializes the post-insert view once — candidate spliced into
// the scratch arrays (pcs, pts) at pos — so position k's interferers are
// plain prefixes and one batchSafe precheck over the whole view licenses
// the unchecked kernel for every fixed point of the probe.
func (ps *ProcState) AdmitAt(prio int, c, t, d task.Time) bool {
	cand := c + ps.Surcharge
	pos := ps.PosFor(prio)
	warm := WarmStartEnabled()
	ps.stagedValid = false
	n := ps.b.len()
	if cap(ps.staged) < n+1 {
		ps.staged = make([]task.Time, n+1)
	}
	staged := ps.staged[:n+1]
	pcs := growTimes(&ps.pcs, n+1)
	pts := growTimes(&ps.pts, n+1)
	copy(pcs, ps.b.cs[:pos])
	pcs[pos] = cand
	copy(pcs[pos+1:], ps.b.cs[pos:])
	copy(pts, ps.b.ts[:pos])
	pts[pos] = t
	copy(pts[pos+1:], ps.b.ts[pos:])

	maxL := d
	maxC := cand
	for _, dl := range ps.b.dls {
		if dl > maxL {
			maxL = dl
		}
	}
	for _, cv := range pcs {
		if cv > maxC {
			maxC = cv
		}
	}
	fast := batchSafe(maxC, pcs, pts, maxL)

	// One pass over the post-insert positions, maintaining the running
	// prefix sum of execution times (the classic cold-start bound for
	// position k is sum(pcs[:k]) + pcs[k]). Warm mode skips positions above
	// the insertion point; limits come from d at pos and the resident
	// deadlines elsewhere.
	kstart := 0
	sum := task.Time(0)
	if warm {
		if obs.On() && pos > 0 {
			cSkippedHP.Add(int64(pos))
		}
		copy(staged[:pos], ps.b.resp[:pos])
		kstart = pos
		for _, cv := range pcs[:pos] {
			sum = mathx.AddSat(sum, cv)
		}
	}
	for k := kstart; k <= n; k++ {
		own := pcs[k]
		limit := d
		switch {
		case k < pos:
			limit = ps.b.dls[k]
		case k > pos:
			limit = ps.b.dls[k-1]
		}
		start := mathx.AddSat(sum, own)
		if k > pos && warm {
			if cached := ps.b.resp[k-1]; cached > start {
				start = cached
				if obs.On() {
					cWarmStarts.Inc()
				}
			}
		}
		r, v, iters := fixpoint(own, pcs[:k], pts[:k], limit, start, fast)
		account(v, iters)
		if v != VerdictFits {
			return false
		}
		staged[k] = r
		sum = mathx.AddSat(sum, own)
	}

	ps.stagedValid = true
	ps.stagedPos = pos
	ps.stagedC = cand
	ps.stagedT = t
	ps.stagedD = d
	return true
}

// Remove deletes the resident at priority position pos from the mirror —
// the online-admission counterpart of Insert (a departing task under churn,
// see internal/admit). Removal is where warm-start soundness needs care:
//
//   - Residents ABOVE pos (positions < pos) never saw the removed load in
//     their interference set, so their cached fixed points remain the exact
//     converged responses and are kept.
//   - Residents AT OR BELOW pos lose an interferer. Their cached responses
//     were converged against the LARGER demand function, so they are upper
//     bounds on the new fixed points — and iterate() requires a LOWER
//     bound to converge to the least fixed point (starting at or above a
//     non-least fixed point would either return it, over-reporting the
//     response, or trip the monotonicity panic). Those entries are
//     therefore dropped to 0 ("unknown"), and the next probe of each
//     resident re-validates it lazily from the classic cold-start bound.
//
// Schedulability itself needs no re-validation: removal only shrinks every
// demand function, so a resident that passed RTA when admitted still
// passes, preserving the processor invariant AdmitAt's affected-range skip
// relies on. The equivalence fuzz tests pin that any insert/remove
// interleaving yields verdicts and response times identical to from-scratch
// analysis of the surviving residents.
func (ps *ProcState) Remove(pos int) {
	if pos < 0 || pos >= ps.b.len() {
		panic("rta: ProcState.Remove position out of range")
	}
	ps.idx = append(ps.idx[:pos], ps.idx[pos+1:]...)
	ps.b.remove(pos)
	ps.b.resp = append(ps.b.resp[:pos], ps.b.resp[pos+1:]...)
	for i := pos; i < len(ps.b.resp); i++ {
		ps.b.resp[i] = 0
	}
	// Staged probe responses include the departed resident's interference
	// (or were positioned relative to it); either way they are stale.
	ps.stagedValid = false
}

// TaskAt returns the priority key (task index) of resident pos.
func (ps *ProcState) TaskAt(pos int) int { return ps.idx[pos] }

// SlackAt returns the testing-point slack of resident i against a new
// period-t interferer (see Slack), evaluated on the mirrored surcharged
// view with zero allocation via the batch kernel.
func (ps *ProcState) SlackAt(i int, t task.Time) task.Time {
	return slackBatch(ps.b.cs[i], ps.b.dls[i], ps.b.cs[:i], ps.b.ts[:i], t)
}

// SlackAtMost is SlackAt for callers that only consume the slack through
// min(cap, slack) — the MaxSplit scan over lower-priority residents. It
// returns the exact slack whenever that is below cap; once the running
// point maximum reaches cap the enumeration stops and the partial maximum
// (some value ≥ cap) is returned, which the min-fold discards. The slack is
// a max over testing points, so any partial maximum is a lower bound and
// the early exit never misrepresents a slack that matters.
func (ps *ProcState) SlackAtMost(i int, t, cap task.Time) task.Time {
	return slackBatchCapped(ps.b.cs[i], ps.b.dls[i], ps.b.cs[:i], ps.b.ts[:i], t, cap, &ps.b.nm)
}

// MaxOwnLoadAt returns the largest execution time a new load inserted at
// priority position pos could have while meeting deadline d (see
// MaxOwnLoad), evaluated on the mirror without allocation.
func (ps *ProcState) MaxOwnLoadAt(pos int, d task.Time) task.Time {
	return maxOwnLoadBatch(ps.b.cs[:pos], ps.b.ts[:pos], d)
}

// ResponseAt computes the response time of resident pos against limit,
// warm-starting from its cached response when enabled, and commits the
// converged value back to the cache. The partitioners use it for the body
// fragment of a fresh split (equation (1)'s R term).
func (ps *ProcState) ResponseAt(pos int, limit task.Time) (task.Time, bool) {
	own := ps.b.cs[pos]
	start := own
	for _, cv := range ps.b.cs[:pos] {
		start = mathx.AddSat(start, cv)
	}
	if WarmStartEnabled() && ps.b.resp[pos] > start {
		start = ps.b.resp[pos]
		if obs.On() {
			cWarmStarts.Inc()
		}
	}
	// Every iterate at demand time satisfies r ≤ limit (over-limit iterates
	// return first), so limit bounds the precheck.
	fast := batchSafe(own, ps.b.cs[:pos], ps.b.ts[:pos], limit)
	r, v, iters := fixpoint(own, ps.b.cs[:pos], ps.b.ts[:pos], limit, start, fast)
	account(v, iters)
	if v != VerdictFits {
		return r, false
	}
	ps.b.resp[pos] = r
	return r, true
}

// DensityProbe supports the sufficient utilization-bound prefilter
// (partition.SetPrefilter): for the post-insert view with a candidate of raw
// execution c and synthetic deadline d at priority position PosFor(prio), it
// returns the deadline-density hyperbolic product Π (1 + (C_i+Surcharge)/Δ_i)
// (candidate included) and whether the post-insert priority order is
// deadline-monotonic (synthetic deadlines non-decreasing by position). Only
// when dmOK may the caller apply a uniprocessor RM utilization bound to the
// densities: treating each subtask as an implicit-deadline task (C_i, Δ_i),
// DM order makes the priority order the RM order of that surrogate set, and
// Δ_i ≤ T_i makes the surrogate's interference ⌈x/Δ_j⌉·C_j an upper bound on
// the real ⌈x/T_j⌉·C_j — so surrogate schedulability implies every subtask
// here meets its deadline. The hyperbolic form (Bini–Buttazzo, prod ≤ 2)
// admits a strict superset of the Liu–Layland sum test at the same cost: one
// multiply per resident instead of one add.
func (ps *ProcState) DensityProbe(prio int, c, d task.Time) (prod float64, dmOK bool) {
	if d <= 0 {
		return 0, false
	}
	pos := ps.PosFor(prio)
	cand := c + ps.Surcharge
	prod = 1 + float64(cand)/float64(d)
	prev := task.Time(0)
	for i, dl := range ps.b.dls {
		if i == pos {
			if d < prev {
				return 0, false
			}
			prev = d
		}
		if dl < prev {
			return 0, false
		}
		prev = dl
		prod *= 1 + float64(ps.b.cs[i])/float64(dl)
	}
	if pos == ps.b.len() && d < prev {
		return 0, false
	}
	return prod, true
}

// Deadline returns the synthetic deadline of resident pos.
func (ps *ProcState) Deadline(pos int) task.Time { return ps.b.dls[pos] }

// OwnC returns the (surcharged) execution time of resident pos.
func (ps *ProcState) OwnC(pos int) task.Time { return ps.b.cs[pos] }

func insertInt(s []int, pos, v int) []int {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

func insertTime(s []task.Time, pos int, v task.Time) []task.Time {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}
