// Incremental analysis engine: per-processor warm-start caching for exact
// RTA (the paper's §IV-A admission loop is where all the fixed-point work
// happens, and the E2 metrics show RM-TS spending ~10⁴ iterations per task
// set there).
//
// A ProcState shadows one processor's priority-sorted resident list with
// three things a from-scratch analysis rebuilds on every probe:
//
//  1. the interference mirror — the residents as []Interference, kept in
//     priority order so the higher-priority set of position i is the slice
//     ints[:i], with zero allocation per probe;
//  2. the response cache — the last converged response time per resident.
//     Partitioners only ever ADD load, and the demand function is monotone
//     in added interference, so an old fixed point is a valid lower bound
//     on the new one; the fixed-point iteration converges to the same
//     least fixed point from any lower bound (see iterate), so warm starts
//     are exact, not approximate;
//  3. the affected-range skip — a candidate inserted at priority position
//     pos adds interference only to residents at positions ≥ pos; the
//     residents before pos keep the exact response they were admitted
//     with, and re-checking them is provably redundant (every resident was
//     schedulable when the last admission committed).
//
// Equivalence contract: with warm starts disabled (SetWarmStart(false))
// ProcState reproduces the from-scratch computation step for step — every
// admission decision, split portion and response value is byte-identical
// either way, because the least fixed point is unique. Only the iteration
// counts (rta.iterations, rta.iters_per_call) differ. The partition
// package's equivalence fuzz test and the experiments golden test pin this
// contract.
package rta

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/task"
)

// warmStartOff is the global cache toggle; the zero value means enabled.
// It exists so experiments and tests can prove decision-equivalence of the
// cached and from-scratch paths on identical inputs.
var warmStartOff atomic.Bool

// SetWarmStart enables (true, the default) or disables warm-start caching
// and affected-range skipping in every ProcState. Disabling never changes
// any analysis outcome — only how much work reaching it costs.
func SetWarmStart(on bool) { warmStartOff.Store(!on) }

// WarmStartEnabled reports whether ProcState warm starts are active.
func WarmStartEnabled() bool { return !warmStartOff.Load() }

// Cache-effectiveness instrumentation (no-ops unless obs.SetEnabled):
// warm_starts counts fixed points started from a cached response,
// skipped_residents counts per-probe residents not re-analysed because the
// candidate cannot affect them.
var (
	cWarmStarts   = obs.NewCounter("rta.cache.warm_starts")
	cSkippedHP    = obs.NewCounter("rta.cache.skipped_residents")
	cStagedAdopts = obs.NewCounter("rta.cache.staged_adoptions")
)

// ProcState is the incremental analysis state of one processor. Create one
// per processor at the start of a partitioning run, mirror every committed
// subtask with Insert, and use AdmitAt / SlackAt / MaxOwnLoadAt /
// ResponseAt in place of the from-scratch package functions. The zero
// value is ready to use (empty processor, no surcharge).
//
// A ProcState is not safe for concurrent use; partitioning runs are
// single-goroutine per task set (the experiment harness parallelizes over
// task sets, each with its own states).
type ProcState struct {
	// Surcharge is the per-fragment analysis surcharge (overhead-aware
	// admission, see partition/overhead.go). Every C mirrored into the
	// state — resident and candidate alike — is inflated by it. Zero
	// reproduces the paper's zero-overhead analysis.
	Surcharge task.Time

	idx  []int          // resident TaskIndex, priority order
	ints []Interference // resident (C+Surcharge, T), priority order
	dls  []task.Time    // resident synthetic deadlines
	resp []task.Time    // last converged response per resident (0 = unknown)

	// Staging from the last successful AdmitAt probe: if the very next
	// Insert commits exactly that candidate, the responses computed during
	// the probe (which already include the candidate's interference) are
	// adopted as the new cache — they are the true converged fixed points
	// of the post-insert processor.
	staged      []task.Time
	stagedPos   int
	stagedC     task.Time // surcharged
	stagedT     task.Time
	stagedD     task.Time
	stagedValid bool
}

// NewProcStates returns one ProcState per processor, all sharing the given
// analysis surcharge.
func NewProcStates(m int, surcharge task.Time) []ProcState {
	return ResetProcStates(nil, m, surcharge)
}

// ResetProcStates recycles a ProcState slice from a previous partitioning
// run into m empty states with the given surcharge, growing it only when
// the capacity (including buffers of states beyond the previous length) is
// insufficient. The result is observationally identical to
// NewProcStates(m, surcharge); reusing the slice preserves each state's
// mirror/cache buffer capacities so steady-state runs allocate nothing.
func ResetProcStates(states []ProcState, m int, surcharge task.Time) []ProcState {
	if cap(states) < m {
		grown := make([]ProcState, m)
		// Reslice to capacity so buffers owned by states past the previous
		// length survive the grow.
		copy(grown, states[:cap(states)])
		states = grown
	} else {
		states = states[:m]
	}
	for q := range states {
		states[q].Reset(surcharge)
	}
	return states
}

// Reset empties the state for a new partitioning run, keeping the mirror
// and cache buffers for reuse.
func (ps *ProcState) Reset(surcharge task.Time) {
	ps.Surcharge = surcharge
	ps.idx = ps.idx[:0]
	ps.ints = ps.ints[:0]
	ps.dls = ps.dls[:0]
	ps.resp = ps.resp[:0]
	ps.stagedValid = false
}

// Len returns the number of mirrored residents.
func (ps *ProcState) Len() int { return len(ps.ints) }

// PosFor returns the priority position a load with task index prio would
// be inserted at — the first position whose resident has a larger index —
// matching task.Assignment.Add's ordering exactly.
func (ps *ProcState) PosFor(prio int) int {
	pos := 0
	for pos < len(ps.idx) && ps.idx[pos] <= prio {
		pos++
	}
	return pos
}

// HP returns the higher-priority interference set of position pos as a
// shared slice of the internal mirror. The caller must not retain or
// mutate it across Insert calls.
func (ps *ProcState) HP(pos int) []Interference { return ps.ints[:pos] }

// Insert mirrors a committed subtask (after the owning task.Assignment.Add)
// and returns its priority position. If the subtask matches the staged
// candidate of the immediately preceding successful AdmitAt, the probe's
// converged responses become the new cache; otherwise the cached responses
// of displaced residents are kept — they remain valid lower bounds, since
// the insertion only added interference.
func (ps *ProcState) Insert(s task.Subtask) int {
	pos := ps.PosFor(s.TaskIndex)
	c := s.C + ps.Surcharge
	ps.idx = insertInt(ps.idx, pos, s.TaskIndex)
	ps.ints = insertInterference(ps.ints, pos, Interference{C: c, T: s.T})
	ps.dls = insertTime(ps.dls, pos, s.Deadline)
	if ps.stagedValid && ps.stagedPos == pos && ps.stagedC == c && ps.stagedT == s.T && ps.stagedD == s.Deadline {
		ps.resp = append(ps.resp[:0], ps.staged[:len(ps.ints)]...)
		if obs.On() {
			cStagedAdopts.Inc()
		}
	} else {
		ps.resp = insertTime(ps.resp, pos, 0)
	}
	ps.stagedValid = false
	return pos
}

// AdmitAt reports whether the processor stays schedulable when a new load
// (c, t) with priority index prio is inserted at its priority position and
// the new load itself meets deadline d. It is the incremental equivalent
// of SchedulableWithExtraAt on the surcharged resident view, with c taken
// as the RAW execution time (the surcharge is added internally).
//
// With warm starts enabled, residents above the insertion position are
// skipped (the candidate cannot interfere with them, and the processor
// invariant — every resident passed RTA when admitted — makes their
// re-check redundant) and every evaluated fixed point starts from the
// cached response when that beats the cold lower bound. With warm starts
// disabled every resident is re-analysed from a cold start, reproducing
// the from-scratch path. Both modes return identical verdicts.
func (ps *ProcState) AdmitAt(prio int, c, t, d task.Time) bool {
	cand := c + ps.Surcharge
	pos := ps.PosFor(prio)
	warm := WarmStartEnabled()
	ps.stagedValid = false
	n := len(ps.ints)
	if cap(ps.staged) < n+1 {
		ps.staged = make([]task.Time, n+1)
	}
	staged := ps.staged[:n+1]

	if warm {
		if obs.On() && pos > 0 {
			cSkippedHP.Add(int64(pos))
		}
		copy(staged[:pos], ps.resp[:pos])
	} else {
		for i := 0; i < pos; i++ {
			r, v, iters := iterate(ps.ints[i].C, ps.ints[:i], 0, 0, ps.dls[i], coldStart(ps.ints[i].C, ps.ints[:i], 0))
			account(v, iters)
			if v != VerdictFits {
				return false
			}
			staged[i] = r
		}
	}

	// The candidate itself: no cached response exists, so both modes cold
	// start. Its higher-priority set is exactly ints[:pos].
	rCand, v, iters := iterate(cand, ps.ints[:pos], 0, 0, d, coldStart(cand, ps.ints[:pos], 0))
	account(v, iters)
	if v != VerdictFits {
		return false
	}
	staged[pos] = rCand

	// Residents at and below the insertion position gain the candidate as
	// one extra interferer; their old fixed points are valid lower bounds.
	for i := pos; i < n; i++ {
		start := coldStart(ps.ints[i].C, ps.ints[:i], cand)
		if warm && ps.resp[i] > start {
			start = ps.resp[i]
			if obs.On() {
				cWarmStarts.Inc()
			}
		}
		r, v, iters := iterate(ps.ints[i].C, ps.ints[:i], cand, t, ps.dls[i], start)
		account(v, iters)
		if v != VerdictFits {
			return false
		}
		staged[i+1] = r
	}

	ps.stagedValid = true
	ps.stagedPos = pos
	ps.stagedC = cand
	ps.stagedT = t
	ps.stagedD = d
	return true
}

// Remove deletes the resident at priority position pos from the mirror —
// the online-admission counterpart of Insert (a departing task under churn,
// see internal/admit). Removal is where warm-start soundness needs care:
//
//   - Residents ABOVE pos (positions < pos) never saw the removed load in
//     their interference set, so their cached fixed points remain the exact
//     converged responses and are kept.
//   - Residents AT OR BELOW pos lose an interferer. Their cached responses
//     were converged against the LARGER demand function, so they are upper
//     bounds on the new fixed points — and iterate() requires a LOWER
//     bound to converge to the least fixed point (starting at or above a
//     non-least fixed point would either return it, over-reporting the
//     response, or trip the monotonicity panic). Those entries are
//     therefore dropped to 0 ("unknown"), and the next probe of each
//     resident re-validates it lazily from the classic cold-start bound.
//
// Schedulability itself needs no re-validation: removal only shrinks every
// demand function, so a resident that passed RTA when admitted still
// passes, preserving the processor invariant AdmitAt's affected-range skip
// relies on. The equivalence fuzz tests pin that any insert/remove
// interleaving yields verdicts and response times identical to from-scratch
// analysis of the surviving residents.
func (ps *ProcState) Remove(pos int) {
	if pos < 0 || pos >= len(ps.ints) {
		panic("rta: ProcState.Remove position out of range")
	}
	ps.idx = append(ps.idx[:pos], ps.idx[pos+1:]...)
	ps.ints = append(ps.ints[:pos], ps.ints[pos+1:]...)
	ps.dls = append(ps.dls[:pos], ps.dls[pos+1:]...)
	ps.resp = append(ps.resp[:pos], ps.resp[pos+1:]...)
	for i := pos; i < len(ps.resp); i++ {
		ps.resp[i] = 0
	}
	// Staged probe responses include the departed resident's interference
	// (or were positioned relative to it); either way they are stale.
	ps.stagedValid = false
}

// TaskAt returns the priority key (task index) of resident pos.
func (ps *ProcState) TaskAt(pos int) int { return ps.idx[pos] }

// SlackAt returns the testing-point slack of resident i against a new
// period-t interferer (see Slack), evaluated on the mirrored surcharged
// view with zero allocation.
func (ps *ProcState) SlackAt(i int, t task.Time) task.Time {
	return slackCore(ps.ints[i].C, ps.dls[i], ps.ints[:i], t)
}

// MaxOwnLoadAt returns the largest execution time a new load inserted at
// priority position pos could have while meeting deadline d (see
// MaxOwnLoad), evaluated on the mirror without allocation.
func (ps *ProcState) MaxOwnLoadAt(pos int, d task.Time) task.Time {
	return MaxOwnLoad(ps.ints[:pos], d)
}

// ResponseAt computes the response time of resident pos against limit,
// warm-starting from its cached response when enabled, and commits the
// converged value back to the cache. The partitioners use it for the body
// fragment of a fresh split (equation (1)'s R term).
func (ps *ProcState) ResponseAt(pos int, limit task.Time) (task.Time, bool) {
	start := coldStart(ps.ints[pos].C, ps.ints[:pos], 0)
	if WarmStartEnabled() && ps.resp[pos] > start {
		start = ps.resp[pos]
		if obs.On() {
			cWarmStarts.Inc()
		}
	}
	r, v, iters := iterate(ps.ints[pos].C, ps.ints[:pos], 0, 0, limit, start)
	account(v, iters)
	if v != VerdictFits {
		return r, false
	}
	ps.resp[pos] = r
	return r, true
}

// Deadline returns the synthetic deadline of resident pos.
func (ps *ProcState) Deadline(pos int) task.Time { return ps.dls[pos] }

// OwnC returns the (surcharged) execution time of resident pos.
func (ps *ProcState) OwnC(pos int) task.Time { return ps.ints[pos].C }

func insertInt(s []int, pos, v int) []int {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

func insertTime(s []task.Time, pos int, v task.Time) []task.Time {
	s = append(s, 0)
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}

func insertInterference(s []Interference, pos int, v Interference) []Interference {
	s = append(s, Interference{})
	copy(s[pos+1:], s[pos:])
	s[pos] = v
	return s
}
