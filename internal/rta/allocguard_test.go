package rta

import (
	"math/rand"
	"testing"

	"repro/internal/task"
)

// Alloc guards: the scratch-taking probe paths must not allocate once their
// buffers are warm. These pins back the zero-allocation hot-path contract —
// a regression here silently reintroduces per-sample garbage across every
// experiment sweep. Run with `go test -run AllocGuard ./...`.

func guardList(seed int64, n int) []task.Subtask {
	r := rand.New(rand.NewSource(seed))
	list := make([]task.Subtask, 0, n)
	for i := 0; i < n; i++ {
		T := task.Time(100 + r.Intn(9900))
		C := task.Time(1 + r.Intn(int(T)/12))
		list = append(list, task.Subtask{TaskIndex: i, Part: 1, C: C, T: T, Deadline: T, Tail: true})
	}
	return list
}

func TestAllocGuardProcessorSchedulableScratch(t *testing.T) {
	list := guardList(2, 12)
	var buf []Interference
	_, buf = ProcessorSchedulableScratch(list, buf) // warm the buffer
	allocs := testing.AllocsPerRun(200, func() {
		_, buf = ProcessorSchedulableScratch(list, buf)
	})
	if allocs != 0 {
		t.Errorf("ProcessorSchedulableScratch with warm buffer: %v allocs/run, want 0", allocs)
	}
}

func TestAllocGuardProcStateAdmitRemoveCycle(t *testing.T) {
	list := guardList(9, 8)
	var states []ProcState
	states = ResetProcStates(states, 1, 0)
	ps := &states[0]
	for _, s := range list {
		if ps.AdmitAt(s.TaskIndex, s.C, s.T, s.Deadline) {
			ps.Insert(s)
		}
	}
	// A mid-priority churn candidate so the cycle exercises both the
	// warm-started probes below the insertion point and Remove's cache
	// invalidation of exactly those positions.
	cand := task.Subtask{TaskIndex: 3, Part: 1, C: 1, T: 5000, Deadline: 5000, Tail: true}
	if !ps.AdmitAt(cand.TaskIndex, cand.C, cand.T, cand.Deadline) {
		t.Fatal("churn candidate unexpectedly rejected; guard would not exercise the cycle")
	}
	ps.Remove(ps.Insert(cand)) // warm the buffers through one full cycle
	cycle := func() {
		if ps.AdmitAt(cand.TaskIndex, cand.C, cand.T, cand.Deadline) {
			ps.Remove(ps.Insert(cand))
		}
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if allocs != 0 {
		t.Errorf("warm ProcState admit/remove cycle: %v allocs/run, want 0", allocs)
	}
}

func TestAllocGuardProcStateProbe(t *testing.T) {
	list := guardList(7, 10)
	var states []ProcState
	states = ResetProcStates(states, 1, 0)
	probe := func() {
		ps := &states[0]
		ps.Reset(0)
		for _, s := range list {
			if ps.AdmitAt(s.TaskIndex, s.C, s.T, s.Deadline) {
				ps.Insert(s)
			}
		}
	}
	probe() // warm the interference/deadline/response arrays
	allocs := testing.AllocsPerRun(200, probe)
	if allocs != 0 {
		t.Errorf("warm ProcState admit/insert cycle: %v allocs/run, want 0", allocs)
	}
}

func TestAllocGuardSlackAtMost(t *testing.T) {
	list := guardList(11, 10)
	var states []ProcState
	states = ResetProcStates(states, 1, 0)
	ps := &states[0]
	for _, s := range list {
		if ps.AdmitAt(s.TaskIndex, s.C, s.T, s.Deadline) {
			ps.Insert(s)
		}
	}
	scan := func() {
		for i := 0; i < ps.Len(); i++ {
			_ = ps.SlackAtMost(i, 777, 50)
		}
	}
	scan() // warm the merged-enumeration frontier buffer
	allocs := testing.AllocsPerRun(200, scan)
	if allocs != 0 {
		t.Errorf("warm SlackAtMost scan: %v allocs/run, want 0", allocs)
	}
}
