package rta

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/task"
)

// Removal-equivalence tests: any interleaving of admits and removals must
// leave the warm mirror observationally identical to from-scratch RTA on the
// surviving residents — same admission verdicts, same response times. This
// is the soundness contract of ProcState.Remove's cache invalidation (keep
// exact fixed points above the removed position, drop the now-stale upper
// bounds at and below it). A bug here surfaces either as a verdict mismatch
// or as iterate's "iteration decreased" panic when a stale value is used as
// a warm start.

func surchargedView(list []task.Subtask, s task.Time) []task.Subtask {
	sur := make([]task.Subtask, len(list))
	for i, sub := range list {
		sub.C += s
		sur[i] = sub
	}
	return sur
}

func insertSub(list []task.Subtask, pos int, s task.Subtask) []task.Subtask {
	list = append(list, task.Subtask{})
	copy(list[pos+1:], list[pos:])
	list[pos] = s
	return list
}

// checkColdEquivalence compares every resident's warm-path response time
// (committing it back to the cache, as the admission service does) against
// from-scratch analysis of the surviving surcharged set.
func checkColdEquivalence(t *testing.T, ps *ProcState, list []task.Subtask, s task.Time, ctx string) {
	t.Helper()
	if ps.Len() != len(list) {
		t.Fatalf("%s: mirror holds %d residents, model %d", ctx, ps.Len(), len(list))
	}
	sur := surchargedView(list, s)
	for i := range sur {
		if ps.TaskAt(i) != sur[i].TaskIndex || ps.OwnC(i) != sur[i].C || ps.Deadline(i) != sur[i].Deadline {
			t.Fatalf("%s: resident %d mirror (%d,%d,%d) model (%d,%d,%d)", ctx, i,
				ps.TaskAt(i), ps.OwnC(i), ps.Deadline(i), sur[i].TaskIndex, sur[i].C, sur[i].Deadline)
		}
		rw, okw := ps.ResponseAt(i, ps.Deadline(i))
		rc, okc := SubtaskResponse(sur, i)
		if rw != rc || okw != okc {
			t.Fatalf("%s: resident %d warm response (%d,%v), from-scratch (%d,%v) [set=%v s=%d]",
				ctx, i, rw, okw, rc, okc, list, s)
		}
	}
}

// stepChurn performs one random admit-or-remove step against both the warm
// mirror and the explicit model list, checking the admission verdict against
// SchedulableWithExtraAt on the surcharged surviving set.
func stepChurn(t *testing.T, r *rand.Rand, ps *ProcState, list []task.Subtask, next *int, ctx string) []task.Subtask {
	t.Helper()
	if len(list) > 0 && r.Intn(3) == 0 {
		pos := r.Intn(len(list))
		ps.Remove(pos)
		return append(list[:pos], list[pos+1:]...)
	}
	prio := *next
	if len(list) > 0 && r.Intn(5) == 0 {
		prio = list[r.Intn(len(list))].TaskIndex // duplicate key: FIFO tie-break
	}
	*next += 1 + r.Intn(3)
	T := task.Time(20 + r.Intn(2000))
	c := task.Time(1 + r.Intn(int(T)/3+1))
	d := T - task.Time(r.Intn(int(T)/3+1))
	if d < c {
		d = c
	}
	want := SchedulableWithExtraAt(surchargedView(list, ps.Surcharge), prio, c+ps.Surcharge, T, d)
	got := ps.AdmitAt(prio, c, T, d)
	if got != want {
		t.Fatalf("%s: AdmitAt(%d,%d,%d,%d)=%v, from-scratch=%v [set=%v s=%d]",
			ctx, prio, c, T, d, got, want, list, ps.Surcharge)
	}
	if got {
		sub := task.Subtask{TaskIndex: prio, Part: 1, C: c, T: T, Deadline: d, Tail: true}
		pos := ps.Insert(sub)
		return insertSub(list, pos, sub)
	}
	return list
}

// TestRemoveMatchesFromScratch drives random insert/remove interleavings
// (with and without an analysis surcharge) and after every operation checks
// the full cold-equivalence contract on the surviving set.
func TestRemoveMatchesFromScratch(t *testing.T) {
	defer SetWarmStart(true)
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 300; trial++ {
		s := task.Time(r.Intn(3))
		ps := &ProcState{Surcharge: s}
		var list []task.Subtask
		next := 0
		for op := 0; op < 25; op++ {
			ctx := fmt.Sprintf("trial %d op %d", trial, op)
			list = stepChurn(t, r, ps, list, &next, ctx)
			checkColdEquivalence(t, ps, list, s, ctx)
		}
	}
}

// FuzzProcStateRemove interprets the fuzz input as an op stream — each
// 4-byte group is either a removal (odd selector) or an admission attempt
// with derived parameters — and checks cold equivalence after every op.
func FuzzProcStateRemove(f *testing.F) {
	f.Add([]byte{0, 40, 3, 5, 0, 80, 7, 9, 1, 0, 0, 0, 0, 40, 3, 5})
	f.Add([]byte{0, 10, 200, 0, 2, 10, 200, 0, 1, 1, 0, 0, 3, 255, 255, 255})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		defer SetWarmStart(true)
		if len(data) > 200 {
			data = data[:200]
		}
		s := task.Time(len(data) % 3)
		ps := &ProcState{Surcharge: s}
		var list []task.Subtask
		next := 0
		for op := 0; len(data) >= 4; op++ {
			sel, b1, b2, b3 := data[0], data[1], data[2], data[3]
			data = data[4:]
			ctx := fmt.Sprintf("op %d", op)
			if sel%2 == 1 {
				if len(list) == 0 {
					continue
				}
				pos := int(b1) % len(list)
				ps.Remove(pos)
				list = append(list[:pos], list[pos+1:]...)
			} else {
				prio := next
				if sel%4 == 2 && len(list) > 0 {
					prio = list[int(b1)%len(list)].TaskIndex
				}
				next += 2
				T := task.Time(20 + int(b1)*8)
				c := task.Time(1 + int(b2)%(int(T)/3+1))
				d := T - task.Time(int(b3)%(int(T)/3+1))
				if d < c {
					d = c
				}
				want := SchedulableWithExtraAt(surchargedView(list, s), prio, c+s, T, d)
				got := ps.AdmitAt(prio, c, T, d)
				if got != want {
					t.Fatalf("%s: AdmitAt(%d,%d,%d,%d)=%v, from-scratch=%v", ctx, prio, c, T, d, got, want)
				}
				if got {
					sub := task.Subtask{TaskIndex: prio, Part: 1, C: c, T: T, Deadline: d, Tail: true}
					pos := ps.Insert(sub)
					list = insertSub(list, pos, sub)
				}
			}
			checkColdEquivalence(t, ps, list, s, ctx)
		}
	})
}

// TestRemoveInvalidatesAtAndBelow pins the invalidation boundary directly:
// cached responses above the removed position survive exactly, entries at
// and below drop to "unknown".
func TestRemoveInvalidatesAtAndBelow(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(6)
		list := randomResidents(r, n)
		ps := mirror(list, task.Time(r.Intn(2)))
		for i := 0; i < n; i++ {
			ps.ResponseAt(i, ps.Deadline(i)) // populate the cache
		}
		saved := append([]task.Time(nil), ps.b.resp...)
		pos := r.Intn(n)
		ps.Remove(pos)
		if ps.Len() != n-1 {
			t.Fatalf("trial %d: Len=%d after removing from %d", trial, ps.Len(), n)
		}
		for i := 0; i < pos; i++ {
			if ps.b.resp[i] != saved[i] {
				t.Fatalf("trial %d: resident %d above removal lost its cache (%d -> %d)",
					trial, i, saved[i], ps.b.resp[i])
			}
		}
		for i := pos; i < ps.Len(); i++ {
			if ps.b.resp[i] != 0 {
				t.Fatalf("trial %d: resident %d at/below removal kept stale cache %d",
					trial, i, ps.b.resp[i])
			}
		}
	}
}

func TestRemoveOutOfRangePanics(t *testing.T) {
	ps := mirror(randomResidents(rand.New(rand.NewSource(23)), 3), 0)
	for _, pos := range []int{-1, 3, 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Remove(%d) on a 3-resident state did not panic", pos)
				}
			}()
			ps.Remove(pos)
		}()
	}
}

// TestRemoveGoldenSequence replays a fixed admit→remove→re-admit script in
// both cache modes and pins the full transcript: warm and cold must be
// byte-identical to each other (the equivalence contract) and to the
// recorded literal (guarding drift across toolchains and refactors).
func TestRemoveGoldenSequence(t *testing.T) {
	defer SetWarmStart(true)
	type op struct {
		remove   bool
		pos      int
		prio     int
		c, tt, d task.Time
	}
	script := []op{
		{prio: 2, c: 2, tt: 10, d: 10},
		{prio: 4, c: 3, tt: 15, d: 14},
		{prio: 6, c: 4, tt: 20, d: 20},
		{remove: true, pos: 1},
		{prio: 4, c: 5, tt: 15, d: 14},
		{prio: 1, c: 9, tt: 12, d: 12}, // rejected: resident idx 2 misses
		{remove: true, pos: 0},
		{prio: 1, c: 9, tt: 12, d: 12}, // still rejected: idx 4 misses
		{prio: 1, c: 3, tt: 12, d: 12},
	}
	run := func(warm bool) string {
		SetWarmStart(warm)
		defer SetWarmStart(true)
		ps := &ProcState{}
		var sb strings.Builder
		for _, o := range script {
			if o.remove {
				fmt.Fprintf(&sb, "remove pos=%d\n", o.pos)
				ps.Remove(o.pos)
			} else {
				ok := ps.AdmitAt(o.prio, o.c, o.tt, o.d)
				fmt.Fprintf(&sb, "admit idx=%d c=%d t=%d d=%d -> %v\n", o.prio, o.c, o.tt, o.d, ok)
				if ok {
					ps.Insert(task.Subtask{TaskIndex: o.prio, Part: 1, C: o.c, T: o.tt, Deadline: o.d, Tail: true})
				}
			}
			sb.WriteString("  state:")
			for i := 0; i < ps.Len(); i++ {
				r, rok := ps.ResponseAt(i, ps.Deadline(i))
				fmt.Fprintf(&sb, " %d:r=%d/%v", ps.TaskAt(i), r, rok)
			}
			sb.WriteString("\n")
		}
		return sb.String()
	}
	warm, cold := run(true), run(false)
	if warm != cold {
		t.Fatalf("warm and cold transcripts differ:\n--- warm\n%s--- cold\n%s", warm, cold)
	}
	const golden = "" +
		"admit idx=2 c=2 t=10 d=10 -> true\n" +
		"  state: 2:r=2/true\n" +
		"admit idx=4 c=3 t=15 d=14 -> true\n" +
		"  state: 2:r=2/true 4:r=5/true\n" +
		"admit idx=6 c=4 t=20 d=20 -> true\n" +
		"  state: 2:r=2/true 4:r=5/true 6:r=9/true\n" +
		"remove pos=1\n" +
		"  state: 2:r=2/true 6:r=6/true\n" +
		"admit idx=4 c=5 t=15 d=14 -> true\n" +
		"  state: 2:r=2/true 4:r=7/true 6:r=13/true\n" +
		"admit idx=1 c=9 t=12 d=12 -> false\n" +
		"  state: 2:r=2/true 4:r=7/true 6:r=13/true\n" +
		"remove pos=0\n" +
		"  state: 4:r=5/true 6:r=9/true\n" +
		"admit idx=1 c=9 t=12 d=12 -> false\n" +
		"  state: 4:r=5/true 6:r=9/true\n" +
		"admit idx=1 c=3 t=12 d=12 -> true\n" +
		"  state: 1:r=3/true 4:r=8/true 6:r=12/true\n"
	if warm != golden {
		t.Errorf("transcript drifted from golden:\n--- want\n%s--- got\n%s", golden, warm)
	}
}
