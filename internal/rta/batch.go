// Struct-of-arrays batch RTA kernel (DESIGN.md §13). The AoS Interference
// mirror of the original ProcState pays a pointer-chasing and checked-math
// tax in the innermost demand loop — every ⌈R/T⌉·C term runs CeilDiv's
// divisor validation plus MulChecked/AddChecked branches, per interferer,
// per iterate, per probe. The batch kernel splits the resident mirror into
// parallel C/T/deadline/response slices and hoists all safety out of the
// loop:
//
//   - one saturating O(n) overflow precheck per probe (interferenceBound)
//     proves that NO demand evaluated during the probe can leave int64; the
//     common case then runs fixpointFast, whose inner loop is branch-free
//     mathx.CeilDivU plus a multiply-accumulate over two flat slices with
//     the bounds check eliminated (cs reslice to len(ts));
//   - the rare unsafe case (deadlines or periods near MaxInt64) falls back
//     to fixpointChecked, which mirrors iterate() operation for operation,
//     so verdicts, response values AND iteration counts are identical on
//     every input — the batch-vs-scalar fuzz test pins this.
//
// The same precheck structure accelerates the slack/max-own-load testing
// point scans used by MaxSplit (slackBatch, maxOwnLoadBatch): the per-point
// demand loses its saturation branches, and the m·T_j point enumeration
// drops the per-point MulChecked by bounding m ≤ d/T_j up front.
package rta

import (
	"math"

	"repro/internal/faultinject"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/task"
)

// BatchState is the struct-of-arrays resident mirror: parallel slices in
// priority order (highest first). Position i's higher-priority interferers
// are the prefixes cs[:i], ts[:i]. ProcState embeds one as its processor
// mirror; the breakdown experiments use a standalone BatchState as a
// cross-scale warm-start carry (EvaluateList).
type BatchState struct {
	cs   []task.Time // execution times (surcharged when owned by a ProcState)
	ts   []task.Time // periods
	dls  []task.Time // synthetic deadlines
	resp []task.Time // last converged response per position (0 = unknown)

	cur []task.Time // EvaluateList scratch: responses of the in-flight scale
	ccs []task.Time // EvaluateList scratch: execution times of the in-flight scale
	nm  []task.Time // slackBatchCapped scratch: next-multiple frontier per source
}

func (b *BatchState) len() int { return len(b.cs) }

func (b *BatchState) reset() {
	b.cs = b.cs[:0]
	b.ts = b.ts[:0]
	b.dls = b.dls[:0]
	b.resp = b.resp[:0]
}

// insert mirrors a committed load at position pos; resp is managed by the
// caller (staged adoption vs 0-fill).
func (b *BatchState) insert(pos int, c, t, d task.Time) {
	b.cs = insertTime(b.cs, pos, c)
	b.ts = insertTime(b.ts, pos, t)
	b.dls = insertTime(b.dls, pos, d)
}

func (b *BatchState) remove(pos int) {
	b.cs = append(b.cs[:pos], b.cs[pos+1:]...)
	b.ts = append(b.ts[:pos], b.ts[pos+1:]...)
	b.dls = append(b.dls[:pos], b.dls[pos+1:]...)
}

// growTimes returns (*buf)[:n], reallocating only when capacity is short —
// the contents are unspecified; callers overwrite every element they read.
func growTimes(buf *[]task.Time, n int) []task.Time {
	if cap(*buf) < n {
		*buf = make([]task.Time, n+n/2+4)
	}
	return (*buf)[:n]
}

// interferenceBound returns a saturating upper bound on the interference
// sum Σ_j ⌈x/T_j⌉·C_j over the given interferer set for ANY x ≤ maxL, and
// whether that bound (and hence every intermediate demand term) fits in
// uint64 without wrapping. ⌈x/T⌉ ≤ x/T + 1 ≤ maxL/T + 1 bounds each term
// with one division, so a single O(n) pass licenses the entire unchecked
// fast path of a probe: every iterate r evaluated by the kernel satisfies
// r ≤ maxL (over-limit iterates return before the next demand evaluation),
// so own + bound ≤ MaxInt64 proves no demand can overflow.
func interferenceBound(cs, ts []task.Time, maxL task.Time) (uint64, bool) {
	var acc uint64
	cs = cs[:len(ts)]
	for k, t := range ts {
		c := uint64(cs[k])
		jobs := uint64(maxL)/uint64(t) + 1
		if c != 0 && jobs > math.MaxUint64/c {
			return 0, false
		}
		term := jobs * c
		if acc+term < acc {
			return 0, false
		}
		acc += term
	}
	return acc, true
}

// batchSafe reports whether fixpointFast may run for a task with execution
// own against interferers (cs, ts) and iterates bounded by maxL.
func batchSafe(own task.Time, cs, ts []task.Time, maxL task.Time) bool {
	bound, ok := interferenceBound(cs, ts, maxL)
	return ok && bound <= uint64(math.MaxInt64)-uint64(own)
}

// fixpointFast is the unchecked struct-of-arrays fixed-point kernel: the
// least fixed point of R = own + Σ ⌈R/T_j⌉·C_j from a valid lower-bound
// start, for inputs proven overflow-free by batchSafe. Control flow —
// including the order of the limit, fault-injection and MaxIters checks and
// the monotonicity panic — replicates iterate() exactly, so the two paths
// return identical (response, verdict, iters) triples on the shared domain.
func fixpointFast(own task.Time, cs, ts []task.Time, limit, start task.Time) (task.Time, Verdict, int64) {
	if own > limit {
		return own, VerdictExceedsLimit, 0
	}
	if faultinject.ShouldAbortRTA() {
		return start, VerdictAborted, 0
	}
	max := MaxIters
	r := start
	iters := int64(0)
	cs = cs[:len(ts)] // hoist the bounds check out of the demand loop
	for {
		if r > limit {
			return r, VerdictExceedsLimit, iters
		}
		if iters >= max {
			return r, VerdictAborted, iters
		}
		next := own
		for k, t := range ts {
			next += mathx.CeilDivU(r, t) * cs[k]
		}
		iters++
		if next == r {
			return r, VerdictFits, iters
		}
		if next < r {
			panic("rta: response-time iteration decreased")
		}
		r = next
	}
}

// fixpointChecked is the checked struct-of-arrays twin of fixpointFast for
// probes whose parameters could overflow int64 — an exact mirror of
// iterate() with the interferer set as parallel slices instead of
// []Interference. Kept separate so the fast kernel's loop stays free of the
// checked-math branches.
func fixpointChecked(own task.Time, cs, ts []task.Time, limit, start task.Time) (task.Time, Verdict, int64) {
	if own > limit {
		return own, VerdictExceedsLimit, 0
	}
	if faultinject.ShouldAbortRTA() {
		return start, VerdictAborted, 0
	}
	r := start
	iters := int64(0)
	cs = cs[:len(ts)]
	for {
		if r > limit {
			return r, VerdictExceedsLimit, iters
		}
		if iters >= MaxIters {
			return r, VerdictAborted, iters
		}
		next := own
		ok := true
		for k, t := range ts {
			var contrib task.Time
			if contrib, ok = mathx.MulChecked(mathx.CeilDiv(r, t), cs[k]); ok {
				next, ok = mathx.AddChecked(next, contrib)
			}
			if !ok {
				break
			}
		}
		iters++
		if !ok {
			// Demand overflow proves the least fixed point exceeds MaxInt64
			// ≥ limit — an exact over-limit verdict (see iterate).
			return task.Time(math.MaxInt64), VerdictExceedsLimit, iters
		}
		if next == r {
			return r, VerdictFits, iters
		}
		if next < r {
			panic("rta: response-time iteration decreased")
		}
		r = next
	}
}

// fixpoint dispatches on the probe-level overflow precheck.
func fixpoint(own task.Time, cs, ts []task.Time, limit, start task.Time, fast bool) (task.Time, Verdict, int64) {
	if fast {
		return fixpointFast(own, cs, ts, limit, start)
	}
	return fixpointChecked(own, cs, ts, limit, start)
}

// EvaluateList reports whether every subtask of the priority-sorted list
// meets its synthetic deadline (the batch equivalent of
// ProcessorSchedulable), using b as a warm-start carry across calls on
// RESCALED VERSIONS OF THE SAME SET — the breakdown bisection's access
// pattern, where only execution times change between calls.
//
// Soundness of the carry (DESIGN.md §13): the cache holds the converged
// responses of the last ACCEPTED evaluation. When the incoming list has the
// same length, periods and deadlines positionally, and no execution time
// decreased (the deflation direction — bisection only re-evaluates above
// the last accepted scale), every demand function only grew, so each cached
// fixed point is a valid lower bound and iterate-from-it converges to the
// same least fixed point a cold start would. Any mismatch (different shape,
// a shrunken C, or carry=false) falls back to cold starts for the whole
// list. The cache is updated only on a fully-accepted evaluation, keeping
// it anchored at the bisection's monotone lo-sequence.
func (b *BatchState) EvaluateList(list []task.Subtask, carry bool) bool {
	n := len(list)
	warm := carry && WarmStartEnabled() && len(b.cs) == n
	if warm {
		for i := range list {
			if b.ts[i] != list[i].T || b.dls[i] != list[i].Deadline || b.cs[i] > list[i].C {
				warm = false
				break
			}
		}
	}
	if !warm {
		// (Re)key the cache to this shape with unknown responses; the C key
		// is zeroed so an immediately following same-shape call passes the
		// monotonicity guard but still cold-starts off resp = 0.
		b.cs = growTimes(&b.cs, n)
		b.ts = growTimes(&b.ts, n)
		b.dls = growTimes(&b.dls, n)
		b.resp = growTimes(&b.resp, n)
		for i := range list {
			b.cs[i] = 0
			b.ts[i] = list[i].T
			b.dls[i] = list[i].Deadline
			b.resp[i] = 0
		}
	}
	// The in-flight scale's execution times live in their own scratch: the
	// cache (b.cs, b.resp) must keep the last ACCEPTED state, or a rejected
	// probe would wipe the carry the next accepted-side probe could use.
	ccs := growTimes(&b.ccs, n)
	cur := growTimes(&b.cur, n)
	maxL := task.Time(0)
	for i := range list {
		ccs[i] = list[i].C
		if b.dls[i] > maxL {
			maxL = b.dls[i]
		}
	}
	fast := true
	if n > 0 {
		bound, ok := interferenceBound(ccs, b.ts, maxL)
		maxC := task.Time(0)
		for _, c := range ccs {
			if c > maxC {
				maxC = c
			}
		}
		fast = ok && bound <= uint64(math.MaxInt64)-uint64(maxC)
	}
	sum := task.Time(0)
	for i := 0; i < n; i++ {
		own := ccs[i]
		start := mathx.AddSat(sum, own)
		if warm && b.resp[i] > start {
			start = b.resp[i]
			if obs.On() {
				cWarmStarts.Inc()
			}
		}
		r, v, iters := fixpoint(own, ccs[:i], b.ts[:i], b.dls[i], start, fast)
		account(v, iters)
		if v != VerdictFits {
			return false
		}
		cur[i] = r
		sum = mathx.AddSat(sum, own)
	}
	copy(b.cs, ccs)
	copy(b.resp, cur)
	return true
}

// slackBatch is the struct-of-arrays twin of slackCore: the testing-point
// slack of a task (c, d) against a period-t interferer over interferers
// (cs, ts). Identical results, identical point enumeration (and hence
// identical rta.slack.points totals): the fast path merely replaces the
// per-point saturating demand with unchecked arithmetic — licensed by the
// same batchSafe precheck as the fixed-point kernel, since every testing
// point x ≤ d — and bounds each m·T_j enumeration by m ≤ d/T_j instead of
// per-point MulChecked.
func slackBatch(c, d task.Time, cs, ts []task.Time, t task.Time) task.Time {
	if !batchSafe(c, cs, ts, d) {
		return slackCheckedBatch(c, d, cs, ts, t)
	}
	best := task.Time(-1)
	cSlackCalls.Inc()
	points := int64(0)
	cs = cs[:len(ts)]
	check := func(x task.Time) {
		points++
		demand := c
		for k, tj := range ts {
			demand += mathx.CeilDivU(x, tj) * cs[k]
		}
		if demand > x {
			return
		}
		jobs := mathx.CeilDivU(x, t)
		e := (x - demand) / jobs
		if e > best {
			best = e
		}
	}
	if d > 0 {
		check(d)
	}
	for _, tj := range ts {
		x := tj
		for m := d / tj; m > 0; m-- {
			check(x)
			x += tj
		}
	}
	x := t
	for m := d / t; m > 0; m-- {
		check(x)
		x += t
	}
	cSlackPoints.Add(points)
	if best < 0 {
		return 0
	}
	if best == math.MaxInt64 {
		return math.MaxInt64
	}
	return best
}

// slackBatchCapped is slackBatch with an early exit for min-fold callers
// (ProcState.SlackAtMost): the slack is a running MAXIMUM over testing
// points, so as soon as that partial maximum reaches cap the final value is
// known to be ≥ cap and enumeration stops. Below cap the result is exactly
// slackBatch's — the point SET is identical (multiples of every T_j and of t
// up to d, plus d itself, here deduplicated), and a maximum is insensitive
// to order and duplicates. At or above cap only the ≥-cap fact is
// meaningful. The overflow fallback ignores the cap (exact is trivially ≥
// any partial).
//
// Unlike slackBatch, which re-derives each point's demand with one CeilDivU
// per interferer, this scan walks the points in ascending merged order and
// maintains the demand incrementally: nm[j] is the smallest multiple of
// source j's period that is ≥ the current point x, so ⌈x/T_j⌉ = nm[j]/T_j,
// and the running demand sum advances by C_j exactly when the walk passes a
// multiple of T_j. The inner loop is then a k-way min scan plus O(1) adds —
// no divisions. scratch holds the nm frontier (len(ts)+1 entries; the last
// tracks t for the jobs divisor) and is grown, never shrunk, by the callee.
func slackBatchCapped(c, d task.Time, cs, ts []task.Time, t, cap task.Time, scratch *[]task.Time) task.Time {
	if !batchSafe(c, cs, ts, d) {
		return slackCheckedBatch(c, d, cs, ts, t)
	}
	cSlackCalls.Inc()
	k := len(ts)
	cs = cs[:k]
	points := int64(0)
	best := task.Time(-1)
	// Point d first: the largest point usually carries the largest slack, so
	// the cap exit tends to fire before the merged walk even starts. Demand
	// here is computed with direct divisions, once.
	if d > 0 {
		points++
		demand := c
		for j, tj := range ts {
			demand += mathx.CeilDivU(d, tj) * cs[j]
		}
		if demand <= d {
			best = (d - demand) / mathx.CeilDivU(d, t)
		}
	}
	if best < cap {
		nm := growTimes(scratch, k+1)
		// Initial frontier: the first multiple of every period. The demand
		// sum starts at one job of every interferer — exact for any x in
		// (0, min T_j], and maintained exact from there by the advances.
		sum := c
		for j, tj := range ts {
			nm[j] = tj
			sum += cs[j]
		}
		nm[k] = t
		jobs := task.Time(1) // invariant: nm[k] = jobs·t, so ⌈x/t⌉ = jobs
		for {
			x := nm[0]
			for _, v := range nm[1:] {
				if v < x {
					x = v
				}
			}
			if x >= d {
				break // ≥-d points are covered by the initial d visit
			}
			points++
			if sum <= x {
				if e := (x - sum) / jobs; e > best {
					best = e
					if best >= cap {
						break
					}
				}
			}
			for j := range nm {
				if nm[j] == x {
					if j < k {
						sum += cs[j]
						nm[j] = mathx.AddSat(x, ts[j])
					} else {
						jobs++
						nm[j] = mathx.AddSat(x, t)
					}
				}
			}
		}
	}
	cSlackPoints.Add(points)
	if best < 0 {
		return 0
	}
	if best == math.MaxInt64 {
		return math.MaxInt64
	}
	return best
}

// slackCheckedBatch mirrors slackCore operation for operation on parallel
// slices — the overflow-capable fallback of slackBatch.
func slackCheckedBatch(c, d task.Time, cs, ts []task.Time, t task.Time) task.Time {
	best := task.Time(-1)
	cSlackCalls.Inc()
	points := int64(0)
	cs = cs[:len(ts)]
	check := func(x task.Time) {
		if x <= 0 || x > d {
			return
		}
		points++
		demand := c
		for k, tj := range ts {
			demand = mathx.AddSat(demand, mathx.MulSat(mathx.CeilDiv(x, tj), cs[k]))
		}
		if demand > x {
			return
		}
		jobs := mathx.CeilDiv(x, t)
		if jobs == 0 {
			jobs = 1
		}
		e := (x - demand) / jobs
		if e > best {
			best = e
		}
	}
	check(d)
	for _, tj := range ts {
		for m := task.Time(1); ; m++ {
			x, ok := mathx.MulChecked(m, tj)
			if !ok || x > d {
				break
			}
			check(x)
		}
	}
	for m := task.Time(1); ; m++ {
		x, ok := mathx.MulChecked(m, t)
		if !ok || x > d {
			break
		}
		check(x)
	}
	cSlackPoints.Add(points)
	if best < 0 {
		return 0
	}
	if best == math.MaxInt64 {
		return math.MaxInt64
	}
	return best
}

// maxOwnLoadBatch is the struct-of-arrays twin of MaxOwnLoad: the largest
// own execution time admissible at deadline d under interferers (cs, ts),
// with the same testing-point enumeration and rta.maxload.points totals.
func maxOwnLoadBatch(cs, ts []task.Time, d task.Time) task.Time {
	if d <= 0 {
		return 0
	}
	bound, ok := interferenceBound(cs, ts, d)
	if !ok || bound > uint64(math.MaxInt64) {
		return maxOwnLoadCheckedBatch(cs, ts, d)
	}
	best := task.Time(0)
	points := int64(0)
	cs = cs[:len(ts)]
	check := func(x task.Time) {
		points++
		interf := task.Time(0)
		for k, tj := range ts {
			interf += mathx.CeilDivU(x, tj) * cs[k]
		}
		if interf >= x {
			return
		}
		if c := x - interf; c > best {
			best = c
		}
	}
	check(d)
	for _, tj := range ts {
		x := tj
		for m := d / tj; m > 0; m-- {
			check(x)
			x += tj
		}
	}
	cLoadPoints.Add(points)
	return best
}

// maxOwnLoadCheckedBatch mirrors MaxOwnLoad on parallel slices — the
// overflow-capable fallback of maxOwnLoadBatch.
func maxOwnLoadCheckedBatch(cs, ts []task.Time, d task.Time) task.Time {
	best := task.Time(0)
	points := int64(0)
	cs = cs[:len(ts)]
	check := func(x task.Time) {
		if x <= 0 || x > d {
			return
		}
		points++
		interf := task.Time(0)
		for k, tj := range ts {
			interf = mathx.AddSat(interf, mathx.MulSat(mathx.CeilDiv(x, tj), cs[k]))
		}
		if interf >= x {
			return
		}
		if c := x - interf; c > best {
			best = c
		}
	}
	check(d)
	for _, tj := range ts {
		for m := task.Time(1); ; m++ {
			x, ok := mathx.MulChecked(m, tj)
			if !ok || x > d {
				break
			}
			check(x)
		}
	}
	cLoadPoints.Add(points)
	return best
}
