// Package rta implements exact response-time analysis (RTA) for preemptive
// fixed-priority scheduling on a single processor with constrained
// (synthetic) deadlines — the schedulability test that the paper's
// partitioning algorithms use in their Assign routine (§IV-A) in place of
// the utilization threshold of [16].
//
// For a (sub)task i with higher-priority interference set hp(i) on the same
// processor, the worst-case response time is the least fixed point of
//
//	R = C_i + Σ_{j ∈ hp(i)} ⌈R/T_j⌉ · C_j
//
// and i is schedulable iff R ≤ Δ_i, its synthetic deadline. Because all
// deadlines are constrained (Δ ≤ T) and releases are synchronous in the
// worst case, checking the first job after the critical instant is exact.
//
// A subtle point from the paper (Lemma 5): a split subtask's *ready time*
// is deferred by its predecessors, but the interference it inflicts on
// lower-priority tasks on its processor is still safely modelled by its
// period, because deferral can only reduce the number of preemptions in any
// window starting at a synchronous critical instant of the analysed task.
// The synthetic deadline absorbs the deferral on the analysed task's side.
package rta

import (
	"math"

	"repro/internal/faultinject"
	"repro/internal/mathx"
	"repro/internal/obs"
	"repro/internal/task"
)

// Instrumentation (see internal/obs): the cost of exact RTA is the quantity
// the paper's average-case argument turns on — RM-TS does more work per
// admission decision than SPA1/SPA2's utilization threshold, and these
// metrics make that work measurable. All hooks are no-ops unless
// obs.SetEnabled(true).
var (
	cCalls       = obs.NewCounter("rta.calls")
	cIters       = obs.NewCounter("rta.iterations")
	cAborts      = obs.NewCounter("rta.limit_exceeded")
	cSlackCalls  = obs.NewCounter("rta.slack.calls")
	cSlackPoints = obs.NewCounter("rta.slack.points")
	cLoadPoints  = obs.NewCounter("rta.maxload.points")
	hItersPer    = obs.NewHistogram("rta.iters_per_call")
)

// IterationsValue returns the running total of response-time fixed-point
// iterations (0 unless metrics are enabled). Decision traces read deltas of
// this between single-goroutine admission checks.
func IterationsValue() int64 { return cIters.Value() }

// AbortsValue returns the running total of iteration-limit aborts (0 unless
// metrics are enabled). Decision traces read deltas of this to mark
// admission decisions whose "no" came from an abort rather than a proven
// deadline miss.
func AbortsValue() int64 { return cAborts.Value() }

// MaxIters caps the number of demand-function evaluations per response-time
// fixed point. Each iterate strictly increases the candidate response by at
// least one tick, so the iteration always terminates on its own; the cap
// exists to bound the worst case on adversarial inputs (huge deadlines over
// tiny periods) and to make the abort path testable. An aborted evaluation
// is reported as VerdictAborted and treated as unschedulable, which is
// sound (the true response may still exceed the limit) but not exact.
//
// Mutate only from single-goroutine setup code (tests); the analysis reads
// it without synchronization.
var MaxIters int64 = 1 << 20

// Verdict classifies the outcome of a response-time evaluation, letting
// callers distinguish a sound "no" (the demand provably exceeds the limit)
// from an iteration-cap abort (unschedulable by fiat, see MaxIters).
type Verdict uint8

const (
	// VerdictFits: the iteration converged to a fixed point R ≤ limit.
	VerdictFits Verdict = iota
	// VerdictExceedsLimit: some iterate exceeded the limit, proving the
	// least fixed point does too — a sound and exact "no".
	VerdictExceedsLimit
	// VerdictAborted: MaxIters demand evaluations elapsed without
	// convergence; treated as unschedulable for soundness.
	VerdictAborted
)

func (v Verdict) String() string {
	switch v {
	case VerdictFits:
		return "fits"
	case VerdictExceedsLimit:
		return "exceeds-limit"
	case VerdictAborted:
		return "aborted"
	default:
		return "verdict(?)"
	}
}

// Interference is a higher-priority load source: a task releasing jobs of
// length C every T ticks.
type Interference struct {
	C task.Time
	T task.Time
}

// ResponseTime computes the least fixed point R of
// R = c + Σ ⌈R/T_j⌉·C_j over the interference set hp, stopping as soon as R
// exceeds limit. It returns the response time and true when R ≤ limit, or
// the first iterate exceeding limit and false otherwise.
//
// The iteration starts at c plus one job of every interferer, which is a
// lower bound on the fixed point, and is guaranteed to terminate because
// each iterate strictly increases until it either stabilizes or passes
// limit.
func ResponseTime(c task.Time, hp []Interference, limit task.Time) (task.Time, bool) {
	r, v := ResponseTimeVerdict(c, hp, limit)
	return r, v == VerdictFits
}

// ResponseTimeVerdict is ResponseTime with the three-way outcome exposed:
// converged within limit, proven over limit, or aborted at the MaxIters cap
// (see Verdict). Both non-fitting verdicts mean "treat as unschedulable",
// but only VerdictExceedsLimit is an exact answer.
func ResponseTimeVerdict(c task.Time, hp []Interference, limit task.Time) (task.Time, Verdict) {
	r, v, iters := iterate(c, hp, 0, 0, limit, coldStart(c, hp, 0))
	account(v, iters)
	return r, v
}

// ResponseTimeExtraVerdict evaluates the fixed point with one additional
// interferer (extraC, extraT) on top of hp — the "what if this fragment were
// forced onto the processor" probe the explain layer uses to show which
// resident subtask's response time breaks and by how much. A zero extraT
// disables the extra term, making it ResponseTimeVerdict.
func ResponseTimeExtraVerdict(c task.Time, hp []Interference, extraC, extraT, limit task.Time) (task.Time, Verdict) {
	r, v, iters := iterate(c, hp, extraC, extraT, limit, coldStart(c, hp, extraC))
	account(v, iters)
	return r, v
}

// account records one response-time evaluation in the obs registry.
func account(v Verdict, iters int64) {
	if obs.On() {
		cCalls.Inc()
		cIters.Add(iters)
		hItersPer.Observe(iters)
		if v == VerdictAborted {
			cAborts.Inc()
		}
	}
}

// coldStart returns the classic lower bound on the least fixed point used
// when no cached response is available: the task's own demand plus one job
// of every interferer (including the optional extra one).
func coldStart(c task.Time, hp []Interference, extraC task.Time) task.Time {
	r := mathx.AddSat(c, extraC)
	for _, j := range hp {
		r = mathx.AddSat(r, j.C)
	}
	return r
}

// iterate is the uninstrumented fixed-point core shared by the from-scratch
// and warm-started paths: it finds the least fixed point of
//
//	R = c + Σ_{j ∈ hp} ⌈R/T_j⌉·C_j [+ ⌈R/extraT⌉·extraC]
//
// starting from start, which MUST be a valid lower bound on the least fixed
// point (any such start converges to the same fixed point: for every
// r < lfp the demand function satisfies f(r) > r by Knaster–Tarski, so the
// iterates increase monotonically towards lfp and never overshoot it).
// A zero extraT disables the extra interferer term. iters counts demand
// evaluations (0 when c alone already exceeds limit or start does).
func iterate(c task.Time, hp []Interference, extraC, extraT, limit, start task.Time) (task.Time, Verdict, int64) {
	if c > limit {
		return c, VerdictExceedsLimit, 0
	}
	if faultinject.ShouldAbortRTA() {
		// Injected iteration-cap abort: report the current iterate exactly
		// as the genuine MaxIters path would, without doing the work.
		return start, VerdictAborted, 0
	}
	r := start
	iters := int64(0)
	for {
		if r > limit {
			return r, VerdictExceedsLimit, iters
		}
		if iters >= MaxIters {
			return r, VerdictAborted, iters
		}
		next := c
		ok := true
		for _, j := range hp {
			var contrib task.Time
			if contrib, ok = mathx.MulChecked(mathx.CeilDiv(r, j.T), j.C); ok {
				next, ok = mathx.AddChecked(next, contrib)
			}
			if !ok {
				break
			}
		}
		if ok && extraT > 0 {
			var contrib task.Time
			if contrib, ok = mathx.MulChecked(mathx.CeilDiv(r, extraT), extraC); ok {
				next, ok = mathx.AddChecked(next, contrib)
			}
		}
		iters++
		if !ok {
			// The demand at iterate r overflows int64, so the true demand —
			// and with it the least fixed point — exceeds MaxInt64 ≥ limit:
			// an exact over-limit verdict, not a silent wrap.
			return task.Time(math.MaxInt64), VerdictExceedsLimit, iters
		}
		if next == r {
			return r, VerdictFits, iters
		}
		if next < r {
			// Only possible if start was not a lower bound on the fixed
			// point — a broken warm-start invariant, not bad input.
			panic("rta: response-time iteration decreased")
		}
		r = next
	}
}

// hpOf returns the interference set for position i in a priority-sorted
// subtask list (everything before position i).
func hpOf(list []task.Subtask, i int) []Interference {
	hp := make([]Interference, i)
	for j := 0; j < i; j++ {
		hp[j] = Interference{C: list[j].C, T: list[j].T}
	}
	return hp
}

// MirrorInto rebuilds the interference mirror of a priority-sorted subtask
// list into buf, growing it in place only when capacity is insufficient.
// Position i's higher-priority set is the prefix mirror[:i], so one mirror
// serves a whole processor scan. The result aliases buf; callers keep it
// for the next call.
func MirrorInto(list []task.Subtask, buf []Interference) []Interference {
	buf = buf[:0]
	for _, s := range list {
		buf = append(buf, Interference{C: s.C, T: s.T})
	}
	return buf
}

// ProcessorSchedulableScratch is ProcessorSchedulable evaluated against a
// caller-provided interference scratch: the mirror is built once with
// MirrorInto and every subtask's higher-priority set is a prefix of it, so
// the whole check allocates nothing once buf has capacity. The (possibly
// grown) buffer is returned for reuse.
func ProcessorSchedulableScratch(list []task.Subtask, buf []Interference) (bool, []Interference) {
	buf = MirrorInto(list, buf)
	for i := range list {
		if _, ok := ResponseTime(list[i].C, buf[:i], list[i].Deadline); !ok {
			return false, buf
		}
	}
	return true, buf
}

// SlackHP is the testing-point slack of a task with execution c and
// deadline d against a period-t interferer, given its higher-priority
// interference set — the scratch-friendly form of Slack for callers that
// hold a shared mirror (see MirrorInto).
func SlackHP(c, d task.Time, hp []Interference, t task.Time) task.Time {
	return slackCore(c, d, hp, t)
}

// SubtaskResponse computes the response time of the subtask at position i of
// the priority-sorted list (highest priority first), and whether it meets
// its synthetic deadline.
func SubtaskResponse(list []task.Subtask, i int) (task.Time, bool) {
	return ResponseTime(list[i].C, hpOf(list, i), list[i].Deadline)
}

// ProcessorSchedulable reports whether every subtask in the priority-sorted
// list meets its synthetic deadline under preemptive fixed-priority
// scheduling.
func ProcessorSchedulable(list []task.Subtask) bool {
	ok, _ := ProcessorSchedulableScratch(list, nil)
	return ok
}

// SchedulableWithExtra reports whether the processor stays schedulable when
// a new highest-priority load (c, t) is added on top of the priority-sorted
// list, and whether the new load itself would meet deadline d.
//
// This is the admission check of Assign (§IV-A): the incoming (sub)task has
// the highest priority on the processor because tasks are assigned in
// increasing priority order, so its own response time is exactly c; every
// existing subtask additionally suffers ⌈R/t⌉·c of interference.
func SchedulableWithExtra(list []task.Subtask, c, t, d task.Time) bool {
	if c > d {
		return false
	}
	for i := range list {
		hp := append(hpOf(list, i), Interference{C: c, T: t})
		if _, ok := ResponseTime(list[i].C, hp, list[i].Deadline); !ok {
			return false
		}
	}
	return true
}

// SchedulableWithExtraAt reports whether the processor stays schedulable
// when a new load (c, t) with priority index prio is inserted into the
// priority-sorted list at its proper position, and the new load itself
// meets deadline d. Unlike SchedulableWithExtra, the new load may have
// lower priority than some existing subtasks (needed for analyses that
// re-check arbitrary insertions, e.g. test harnesses and the simulator
// cross-checks; the paper's algorithms only ever insert at the top).
func SchedulableWithExtraAt(list []task.Subtask, prio int, c, t, d task.Time) bool {
	merged := make([]task.Subtask, 0, len(list)+1)
	inserted := false
	for _, s := range list {
		if !inserted && s.TaskIndex > prio {
			merged = append(merged, task.Subtask{TaskIndex: prio, Part: 1, C: c, T: t, Deadline: d, Offset: t - d, Tail: true})
			inserted = true
		}
		merged = append(merged, s)
	}
	if !inserted {
		merged = append(merged, task.Subtask{TaskIndex: prio, Part: 1, C: c, T: t, Deadline: d, Offset: t - d, Tail: true})
	}
	return ProcessorSchedulable(merged)
}

// Slack returns, for the subtask at position i of the priority-sorted list,
// the largest extra execution budget e such that a new highest-priority
// interferer (e, t) keeps the subtask schedulable — i.e. the per-task
// quantity minimized by the efficient MaxSplit. It evaluates the
// schedulability condition
//
//	∃ x ∈ (0, Δ_i]:  C_i + Σ_{j∈hp} ⌈x/T_j⌉C_j + ⌈x/t⌉·e ≤ x
//
// over the exact testing set {m·T_j ≤ Δ_i} ∪ {m·t ≤ Δ_i} ∪ {Δ_i} and
// returns the maximum feasible e (0 if none; math.MaxInt64 if unbounded,
// which cannot happen for t ≤ Δ_i since ⌈x/t⌉ ≥ 1).
func Slack(list []task.Subtask, i int, t task.Time) task.Time {
	return slackCore(list[i].C, list[i].Deadline, hpOf(list, i), t)
}

// slackCore evaluates the testing-point slack of a task with execution c,
// deadline d and higher-priority set hp against a period-t interferer. It
// is the shared core of Slack (fresh slices) and ProcState.SlackAt (reused
// buffers).
func slackCore(c, d task.Time, hp []Interference, t task.Time) task.Time {
	best := task.Time(-1)
	cSlackCalls.Inc()
	points := int64(0)
	defer func() { cSlackPoints.Add(points) }()
	check := func(x task.Time) {
		if x <= 0 || x > d {
			return
		}
		points++
		demand := c
		for _, j := range hp {
			demand = mathx.AddSat(demand, mathx.MulSat(mathx.CeilDiv(x, j.T), j.C))
		}
		if demand > x {
			return
		}
		jobs := mathx.CeilDiv(x, t)
		if jobs == 0 {
			jobs = 1
		}
		e := (x - demand) / jobs
		if e > best {
			best = e
		}
	}
	check(d)
	for _, j := range hp {
		for m := task.Time(1); ; m++ {
			// Checked multiply: an overflowing testing point m·T lies past
			// every deadline, and with MulSat alone the saturated x never
			// passes a d of MaxInt64, looping forever.
			x, ok := mathx.MulChecked(m, j.T)
			if !ok || x > d {
				break
			}
			check(x)
		}
	}
	for m := task.Time(1); ; m++ {
		x, ok := mathx.MulChecked(m, t)
		if !ok || x > d {
			break
		}
		check(x)
	}
	if best < 0 {
		return 0
	}
	if best == math.MaxInt64 {
		return math.MaxInt64
	}
	return best
}

// MaxOwnLoad returns the largest execution time c such that a task with
// interference set hp has a response time at most d, i.e. the largest c
// with ∃ x ∈ (0, d]: c + Σ_{j∈hp} ⌈x/T_j⌉C_j ≤ x. It evaluates the exact
// testing set {m·T_j ≤ d} ∪ {d}. Returns 0 when even an infinitesimal task
// would miss d.
func MaxOwnLoad(hp []Interference, d task.Time) task.Time {
	if d <= 0 {
		return 0
	}
	best := task.Time(0)
	points := int64(0)
	defer func() { cLoadPoints.Add(points) }()
	check := func(x task.Time) {
		if x <= 0 || x > d {
			return
		}
		points++
		interf := task.Time(0)
		for _, j := range hp {
			interf = mathx.AddSat(interf, mathx.MulSat(mathx.CeilDiv(x, j.T), j.C))
		}
		if interf >= x {
			return
		}
		if c := x - interf; c > best {
			best = c
		}
	}
	check(d)
	for _, j := range hp {
		for m := task.Time(1); ; m++ {
			x, ok := mathx.MulChecked(m, j.T)
			if !ok || x > d {
				break
			}
			check(x)
		}
	}
	return best
}
