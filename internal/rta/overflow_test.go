package rta

import (
	"math"
	"testing"

	"repro/internal/task"
)

// Adversarial near-MaxInt64 parameters (the cmd/schedtest attack surface:
// task files are arbitrary int64s). Before the mathx.CeilDiv hardening,
// ⌈r/T⌉ with r ≥ 2 and T = MaxInt64 wrapped the intermediate sum negative
// and the analysis panicked inside MulSat; these tests pin the repaired
// behaviour: finite, sound verdicts, no panic, no hang.

func TestResponseTimeHugePeriodNoWrap(t *testing.T) {
	// r reaches 2 > 1, so the old (r+T-1)/T intermediate wrapped negative.
	hp := []Interference{{C: 1, T: math.MaxInt64}}
	r, v := ResponseTimeVerdict(1, hp, math.MaxInt64)
	if v != VerdictFits || r != 2 {
		t.Fatalf("got r=%d v=%v, want r=2 fits", r, v)
	}
}

func TestResponseTimeNearMaxParameters(t *testing.T) {
	cases := []struct {
		name  string
		c     task.Time
		hp    []Interference
		limit task.Time
	}{
		{"huge-everything", math.MaxInt64 / 2, []Interference{{C: math.MaxInt64 / 3, T: math.MaxInt64 - 1}}, math.MaxInt64 - 1},
		{"max-limit", math.MaxInt64 / 2, []Interference{{C: math.MaxInt64 / 2, T: math.MaxInt64}}, math.MaxInt64},
		{"overflowing-demand", math.MaxInt64 - 1, []Interference{{C: math.MaxInt64 - 1, T: 1}}, math.MaxInt64},
		{"many-huge", math.MaxInt64 / 4, []Interference{
			{C: math.MaxInt64 / 4, T: math.MaxInt64 / 2},
			{C: math.MaxInt64 / 4, T: math.MaxInt64 / 3},
		}, math.MaxInt64},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			r, v := ResponseTimeVerdict(c.c, c.hp, c.limit)
			if r < 0 {
				t.Fatalf("negative response %d (silent wrap), verdict %v", r, v)
			}
			if v == VerdictFits {
				// A claimed fixed point must actually satisfy the equation
				// within the limit.
				if r > c.limit {
					t.Fatalf("fits with r=%d above limit %d", r, c.limit)
				}
			}
		})
	}
}

// TestOverflowingDemandIsExceedsLimit pins the degradation contract: a
// busy-period sum that no longer fits in int64 is an explicit over-limit
// verdict, not a wrapped small number reported as fitting.
func TestOverflowingDemandIsExceedsLimit(t *testing.T) {
	// Demand at any r ≥ 1: c + ⌈r/1⌉·(MaxInt64-1) overflows immediately,
	// and the limit is MaxInt64, so only the overflow check can reject.
	hp := []Interference{{C: math.MaxInt64 - 1, T: 1}}
	r, v := ResponseTimeVerdict(math.MaxInt64-1, hp, math.MaxInt64)
	if v != VerdictExceedsLimit {
		t.Fatalf("verdict %v (r=%d), want exceeds-limit", v, r)
	}
}

// TestSlackHugePeriodTerminates pins the testing-point loop fix: with a
// deadline of MaxInt64 and a period above MaxInt64/2, the saturated
// multiple m·T never exceeded d and the loop never terminated.
func TestSlackHugePeriodTerminates(t *testing.T) {
	list := []task.Subtask{{TaskIndex: 0, Part: 1, C: 10, T: math.MaxInt64, Deadline: math.MaxInt64, Tail: true}}
	if got := Slack(list, 0, math.MaxInt64/2); got < 0 {
		t.Fatalf("Slack = %d, want non-negative", got)
	}
	list2 := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 5, T: math.MaxInt64 / 2, Deadline: math.MaxInt64 / 2, Tail: true},
		{TaskIndex: 1, Part: 1, C: 10, T: math.MaxInt64, Deadline: math.MaxInt64, Tail: true},
	}
	if got := Slack(list2, 1, math.MaxInt64/3); got < 0 {
		t.Fatalf("Slack with huge hp = %d, want non-negative", got)
	}
}

func TestMaxOwnLoadHugeDeadlineTerminates(t *testing.T) {
	hp := []Interference{{C: 1, T: math.MaxInt64 / 2}}
	got := MaxOwnLoad(hp, math.MaxInt64)
	if got <= 0 {
		t.Fatalf("MaxOwnLoad = %d, want positive", got)
	}
}

// TestProcessorSchedulableAdversarialSet runs the full per-processor check
// on a near-MaxInt64 subtask list, the shape cmd/schedtest would build from
// an adversarial task file.
func TestProcessorSchedulableAdversarialSet(t *testing.T) {
	list := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: math.MaxInt64 / 3, T: math.MaxInt64 / 2, Deadline: math.MaxInt64 / 2, Tail: true},
		{TaskIndex: 1, Part: 1, C: math.MaxInt64 / 3, T: math.MaxInt64 - 1, Deadline: math.MaxInt64 - 1, Tail: true},
	}
	// Must neither panic nor hang; either verdict is acceptable as long as
	// it is reached.
	_ = ProcessorSchedulable(list)
	if !ProcessorSchedulable(list[:1]) {
		t.Error("single task with C < D rejected")
	}
}
