package rta

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/task"
)

func subs(tuples ...[3]task.Time) []task.Subtask {
	// tuples are (C, T, Δ); TaskIndex follows position.
	out := make([]task.Subtask, len(tuples))
	for i, tu := range tuples {
		out[i] = task.Subtask{TaskIndex: i, Part: 1, C: tu[0], T: tu[1], Deadline: tu[2], Offset: tu[1] - tu[2], Tail: true}
	}
	return out
}

func TestResponseTimeClassicExample(t *testing.T) {
	// Classic textbook example: τ1=(1,4), τ2=(2,6), τ3=(3,13).
	// R1=1, R2=3, R3 = 3 + 2·1 + 1·2 ... fixed point: R3=10.
	list := subs([3]task.Time{1, 4, 4}, [3]task.Time{2, 6, 6}, [3]task.Time{3, 13, 13})
	wants := []task.Time{1, 3, 10}
	for i, want := range wants {
		r, ok := SubtaskResponse(list, i)
		if !ok || r != want {
			t.Errorf("R%d = %d (ok=%v), want %d", i+1, r, ok, want)
		}
	}
}

func TestResponseTimeFullUtilizationHarmonic(t *testing.T) {
	// Harmonic set at exactly 100%: C=2/T=4, C=2/T=8, C=2/T=16 → U=0.875,
	// add C=2/T=16 → U=1.0; all must be schedulable under RM.
	list := subs(
		[3]task.Time{2, 4, 4},
		[3]task.Time{2, 8, 8},
		[3]task.Time{2, 16, 16},
		[3]task.Time{2, 16, 16},
	)
	if !ProcessorSchedulable(list) {
		t.Error("harmonic set at 100% rejected")
	}
}

func TestResponseTimeUnschedulable(t *testing.T) {
	// Two tasks of U=0.5 and one more tick anywhere breaks it.
	list := subs([3]task.Time{2, 4, 4}, [3]task.Time{3, 6, 6})
	if ProcessorSchedulable(list) {
		t.Error("overloaded set accepted")
	}
	r, ok := SubtaskResponse(list, 1)
	if ok {
		t.Errorf("lowest-priority response %d reported schedulable", r)
	}
}

func TestSyntheticDeadlineRespected(t *testing.T) {
	// Same demand, but the second subtask has a shortened deadline.
	list := subs([3]task.Time{2, 4, 4}, [3]task.Time{2, 12, 12})
	if !ProcessorSchedulable(list) {
		t.Fatal("baseline should be schedulable")
	}
	list[1].Deadline = 4 // R2 = 2 + 2 = 4 exactly
	list[1].Offset = 8
	if !ProcessorSchedulable(list) {
		t.Error("deadline exactly at response time rejected")
	}
	list[1].Deadline = 3
	list[1].Offset = 9
	if ProcessorSchedulable(list) {
		t.Error("deadline below response time accepted")
	}
}

func TestResponseTimeZeroInterference(t *testing.T) {
	r, ok := ResponseTime(5, nil, 10)
	if !ok || r != 5 {
		t.Errorf("R = %d, ok=%v", r, ok)
	}
	_, ok = ResponseTime(11, nil, 10)
	if ok {
		t.Error("C beyond limit accepted")
	}
}

func TestSchedulableWithExtraMatchesManualInsert(t *testing.T) {
	list := subs([3]task.Time{2, 10, 10}, [3]task.Time{3, 15, 15})
	// Insert a new top-priority load (2, 5): manual check.
	manual := subs([3]task.Time{2, 5, 5}, [3]task.Time{2, 10, 10}, [3]task.Time{3, 15, 15})
	if got, want := SchedulableWithExtra(list, 2, 5, 5), ProcessorSchedulable(manual); got != want {
		t.Errorf("SchedulableWithExtra = %v, manual = %v", got, want)
	}
	// An extra load that breaks the lowest-priority task.
	if SchedulableWithExtra(list, 4, 5, 5) {
		t.Error("overload accepted")
	}
}

func TestSchedulableWithExtraAtInsertsAtPriority(t *testing.T) {
	// Resident: τ0=(2,5), τ2=(2,20). Newcomer has priority 1.
	list := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 2, T: 5, Deadline: 5, Tail: true},
		{TaskIndex: 2, Part: 1, C: 2, T: 20, Deadline: 20, Tail: true},
	}
	// (6, 12): R = 6 + 2·⌈R/5⌉ → R=10 ≤ 12; τ2: R = 2+2·⌈R/5⌉+6·⌈R/12⌉ →
	// iterate: 10 → 2+4+6=12 → 2+2·3+6=14 → 2+2·3+12=20 → 2+2·4+12=22 > 20.
	if SchedulableWithExtraAt(list, 1, 6, 12, 12) {
		t.Error("mid-priority insert that overloads τ2 accepted")
	}
	// (3, 12): new R = 3+2⌈R/5⌉ → 5... iterate: 5 → 3+2=5 ✓; τ2: R =
	// 2+2⌈R/5⌉+3⌈R/12⌉: 7 → 2+4+3=9 → 2+4+3=9 ✓ ≤ 20.
	if !SchedulableWithExtraAt(list, 1, 3, 12, 12) {
		t.Error("feasible mid-priority insert rejected")
	}
}

func TestSlackMatchesBinarySearchOnRandomSets(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 1 + r.Intn(4)
		list := make([]task.Subtask, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(4 + r.Intn(60))
			C := task.Time(1 + r.Intn(int(T)/2))
			d := T - task.Time(r.Intn(int(T)/3+1))
			if d < C {
				d = C
			}
			list = append(list, task.Subtask{TaskIndex: i + 1, Part: 1, C: C, T: T, Deadline: d, Offset: T - d, Tail: true})
		}
		if !ProcessorSchedulable(list) {
			continue
		}
		t0 := task.Time(3 + r.Intn(40))
		for i := range list {
			want := binarySlack(list, i, t0)
			got := Slack(list, i, t0)
			if got != want {
				t.Fatalf("trial %d: Slack(list, %d, t=%d) = %d, want %d; list=%v", trial, i, t0, got, want, list)
			}
		}
	}
}

// binarySlack is an independent reference: the largest e such that subtask
// i stays schedulable with an added top-priority interferer (e, t).
func binarySlack(list []task.Subtask, i int, t task.Time) task.Time {
	feasible := func(e task.Time) bool {
		hp := make([]Interference, 0, i+1)
		for j := 0; j < i; j++ {
			hp = append(hp, Interference{C: list[j].C, T: list[j].T})
		}
		if e > 0 {
			hp = append(hp, Interference{C: e, T: t})
		}
		_, ok := ResponseTime(list[i].C, hp, list[i].Deadline)
		return ok
	}
	if !feasible(0) {
		return 0
	}
	lo, hi := task.Time(0), list[i].Deadline+1
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

func TestMaxOwnLoadMatchesBinarySearch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := r.Intn(4)
		hp := make([]Interference, n)
		for i := range hp {
			T := task.Time(3 + r.Intn(50))
			hp[i] = Interference{C: task.Time(1 + r.Intn(int(T)/2)), T: T}
		}
		d := task.Time(1 + r.Intn(120))
		got := MaxOwnLoad(hp, d)
		// Reference: binary search the largest c with a feasible response.
		feasible := func(c task.Time) bool {
			if c == 0 {
				return true
			}
			_, ok := ResponseTime(c, hp, d)
			return ok
		}
		lo, hi := task.Time(0), d+1
		for hi-lo > 1 {
			mid := lo + (hi-lo)/2
			if feasible(mid) {
				lo = mid
			} else {
				hi = mid
			}
		}
		if got != lo {
			t.Fatalf("trial %d: MaxOwnLoad = %d, want %d (hp=%v, d=%d)", trial, got, lo, hp, d)
		}
	}
}

func TestResponseTimeMonotoneInC(t *testing.T) {
	hp := []Interference{{C: 2, T: 7}, {C: 3, T: 11}}
	f := func(a, b uint8) bool {
		c1, c2 := task.Time(a%50)+1, task.Time(b%50)+1
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		r1, ok1 := ResponseTime(c1, hp, 100000)
		r2, ok2 := ResponseTime(c2, hp, 100000)
		if !ok1 || !ok2 {
			return true
		}
		return r1 <= r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResponseTimeMonotoneInInterference(t *testing.T) {
	f := func(a, b, c uint8) bool {
		base := []Interference{{C: task.Time(a%5) + 1, T: task.Time(b%20) + 6}}
		more := append(append([]Interference(nil), base...), Interference{C: task.Time(c%5) + 1, T: 13})
		r1, ok1 := ResponseTime(4, base, 100000)
		r2, ok2 := ResponseTime(4, more, 100000)
		if !ok1 || !ok2 {
			return true
		}
		return r1 <= r2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLiuLaylandBoundNeverRejected(t *testing.T) {
	// Any set under the L&L bound must pass RTA (RTA is exact, the bound is
	// sufficient). Random sets with ΣU ≤ Θ(n).
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + r.Intn(5)
		theta := float64(n) * (pow2inv(n) - 1)
		list := make([]task.Subtask, n)
		remaining := theta
		ok := true
		for i := 0; i < n; i++ {
			T := task.Time(10 + r.Intn(500))
			maxU := remaining / float64(n-i) * 1.5
			u := r.Float64() * maxU
			if u > remaining {
				u = remaining
			}
			C := task.Time(float64(T) * u)
			if C < 1 {
				C = 1
			}
			remaining -= float64(C) / float64(T)
			if remaining < 0 {
				ok = false
				break
			}
			list[i] = task.Subtask{TaskIndex: i, Part: 1, C: C, T: T, Deadline: T, Tail: true}
		}
		if !ok {
			continue
		}
		sortByPeriod(list)
		for i := range list {
			list[i].TaskIndex = i
		}
		if !ProcessorSchedulable(list) {
			t.Fatalf("trial %d: set under L&L bound rejected: %v", trial, list)
		}
	}
}

func pow2inv(n int) float64 {
	x := 1.0
	// 2^(1/n) via Newton on x^n = 2 — avoids importing math just for a test.
	for iter := 0; iter < 60; iter++ {
		xn := 1.0
		for i := 0; i < n; i++ {
			xn *= x
		}
		x = x - (xn-2)/(float64(n)*xn/x)
	}
	return x
}

func sortByPeriod(list []task.Subtask) {
	for i := 1; i < len(list); i++ {
		x := list[i]
		j := i - 1
		for j >= 0 && list[j].T > x.T {
			list[j+1] = list[j]
			j--
		}
		list[j+1] = x
	}
}
