// Package global implements global fixed-priority multiprocessor
// scheduling — the competing paradigm the paper's introduction positions
// partitioned scheduling against (§I): every task may execute on any
// processor, the M highest-priority ready jobs run at each instant.
//
// It provides:
//
//   - a discrete-event simulator for global preemptive fixed-priority
//     scheduling (no task splitting — jobs migrate freely),
//   - the plain global-RM priority policy, which suffers the Dhall effect
//     [14]: task sets of arbitrarily low utilization can be unschedulable,
//   - the RM-US[ζ] policy of Andersson, Baruah & Jonsson [4], which gives
//     tasks with utilization above ζ = m/(3m−2) the highest priority and
//     orders the rest rate-monotonically, with its utilization bound
//     U(τ) ≤ m²/(3m−2) (i.e. U_M ≤ m/(3m−2) → 1/3 as m grows; the best
//     known global fixed-priority bound the paper quotes is ≈38%),
//
// so the evaluation can place the paper's partitioned algorithms (whose
// bounds reach 81.8–100%) against the global state of the art.
package global

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/task"
)

// Policy selects the priority assignment for global scheduling.
type Policy int

const (
	// RM is plain global rate-monotonic priority (shorter period = higher
	// priority). Subject to the Dhall effect.
	RM Policy = iota
	// RMUS is RM-US[ζ]: tasks with U_i > ζ get the highest priorities
	// (ordered among themselves by period), the rest follow RM order.
	RMUS
)

func (p Policy) String() string {
	switch p {
	case RM:
		return "G-RM"
	case RMUS:
		return "RM-US"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// USThreshold returns ζ = m/(3m−2), the RM-US threshold of [4].
func USThreshold(m int) float64 {
	if m <= 0 {
		panic("global: non-positive processor count")
	}
	return float64(m) / float64(3*m-2)
}

// USBound returns the RM-US[m/(3m−2)] normalized utilization bound
// U_M ≤ m/(3m−2): any task set within it is schedulable by RM-US on m
// processors ([4]). It decreases from 1/2 (m=2) towards 1/3.
func USBound(m int) float64 {
	return USThreshold(m)
}

// Priorities computes the priority order of the RM-sorted set under the
// policy: a permutation perm where perm[k] is the task index with the
// k-th highest priority.
func Priorities(ts task.Set, m int, policy Policy) []int {
	n := len(ts)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	if policy == RMUS {
		zeta := USThreshold(m)
		sort.SliceStable(perm, func(a, b int) bool {
			ha := ts[perm[a]].Utilization() > zeta
			hb := ts[perm[b]].Utilization() > zeta
			if ha != hb {
				return ha // heavy tasks first
			}
			return false // stable: keep RM order within each class
		})
	}
	return perm
}

// Options configures a global-scheduling simulation.
type Options struct {
	// Policy selects the priority assignment (default RM).
	Policy Policy
	// Horizon is the simulated duration; zero means the hyperperiod capped
	// by HorizonCap.
	Horizon task.Time
	// HorizonCap bounds the default horizon (zero: 10,000,000 ticks).
	HorizonCap task.Time
	// StopOnMiss aborts at the first deadline miss.
	StopOnMiss bool
}

// Report summarizes a global-scheduling run.
type Report struct {
	// Horizon is the simulated duration.
	Horizon task.Time
	// Misses lists the detected deadline misses.
	Misses []task.Time // detection times
	// MissedTasks lists the task index of each miss, parallel to Misses.
	MissedTasks []int
	// Released and Completed count jobs.
	Released, Completed int64
	// Preemptions counts running jobs displaced by higher-priority
	// arrivals; Migrations counts resumptions that continue a previously
	// preempted job (in global scheduling these generally move between
	// processors).
	Preemptions, Migrations int64
	// WorstResponse maps task index to the largest observed response time.
	WorstResponse map[int]task.Time
}

// Ok reports whether no deadline was missed.
func (r *Report) Ok() bool { return len(r.Misses) == 0 }

type gjob struct {
	taskIdx   int
	prio      int // position in the priority permutation: lower runs first
	remaining task.Time
	release   task.Time
	preempted bool // has been displaced at least once
	index     int
}

type gqueue []*gjob

func (q gqueue) Len() int            { return len(q) }
func (q gqueue) Less(i, j int) bool  { return q[i].prio < q[j].prio }
func (q gqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *gqueue) Push(x interface{}) { j := x.(*gjob); j.index = len(*q); *q = append(*q, j) }
func (q *gqueue) Pop() interface{} {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

const defaultHorizonCap = 10_000_000

// Simulate runs the RM-sorted task set under global preemptive
// fixed-priority scheduling on m processors.
func Simulate(ts task.Set, m int, opt Options) (*Report, error) {
	if m <= 0 {
		return nil, fmt.Errorf("global: non-positive processor count %d", m)
	}
	sorted := ts.Clone()
	sorted.SortRM()
	if err := sorted.Validate(); err != nil {
		return nil, fmt.Errorf("global: %w", err)
	}
	if !sorted.Implicit() {
		return nil, fmt.Errorf("global: constrained deadlines are not supported (the RM/RM-US theory is implicit-deadline)")
	}
	horizon := opt.Horizon
	if horizon <= 0 {
		hcap := opt.HorizonCap
		if hcap <= 0 {
			hcap = defaultHorizonCap
		}
		horizon = sorted.Hyperperiod()
		if horizon > hcap || horizon == math.MaxInt64 {
			horizon = hcap
		}
	}
	perm := Priorities(sorted, m, opt.Policy)
	prioOf := make([]int, len(sorted))
	for k, idx := range perm {
		prioOf[idx] = k
	}

	rep := &Report{Horizon: horizon, WorstResponse: make(map[int]task.Time, len(sorted))}
	ready := gqueue{}
	active := make([]*gjob, len(sorted))
	nextRelease := make([]task.Time, len(sorted))
	now := task.Time(0)

	running := func() []*gjob {
		// The m highest-priority ready jobs run. Peeling the heap is O(m
		// log n) per event; n and m are small here.
		k := m
		if len(ready) < k {
			k = len(ready)
		}
		out := make([]*gjob, 0, k)
		var tmp []*gjob
		for len(out) < k {
			j := heap.Pop(&ready).(*gjob)
			out = append(out, j)
			tmp = append(tmp, j)
		}
		for _, j := range tmp {
			heap.Push(&ready, j)
		}
		return out
	}

	for now < horizon {
		run := running()
		next := task.Time(math.MaxInt64)
		for idx := range sorted {
			if nextRelease[idx] > now && nextRelease[idx] < next {
				next = nextRelease[idx]
			} else if nextRelease[idx] == now {
				next = now
			}
		}
		for _, j := range run {
			if t := now + j.remaining; t < next {
				next = t
			}
		}
		if next == math.MaxInt64 || next > horizon {
			next = horizon
		}
		delta := next - now
		for _, j := range run {
			j.remaining -= delta
		}
		now = next
		// Completions (before releases at the same instant).
		for _, j := range run {
			if j.remaining > 0 {
				continue
			}
			heap.Remove(&ready, j.index)
			active[j.taskIdx] = nil
			rep.Completed++
			resp := now - j.release
			if resp > rep.WorstResponse[j.taskIdx] {
				rep.WorstResponse[j.taskIdx] = resp
			}
			if deadline := j.release + sorted[j.taskIdx].T; now > deadline {
				rep.Misses = append(rep.Misses, now)
				rep.MissedTasks = append(rep.MissedTasks, j.taskIdx)
				if opt.StopOnMiss {
					return rep, nil
				}
			}
		}
		if now >= horizon {
			break
		}
		// Releases.
		for idx := range sorted {
			if nextRelease[idx] != now {
				continue
			}
			if old := active[idx]; old != nil {
				rep.Misses = append(rep.Misses, now)
				rep.MissedTasks = append(rep.MissedTasks, idx)
				if opt.StopOnMiss {
					return rep, nil
				}
				heap.Remove(&ready, old.index)
				active[idx] = nil
			}
			j := &gjob{taskIdx: idx, prio: prioOf[idx], remaining: sorted[idx].C, release: now}
			active[idx] = j
			heap.Push(&ready, j)
			rep.Released++
			nextRelease[idx] += sorted[idx].T
		}
		// Preemption/migration accounting: jobs that were running but are
		// not in the new top-m were displaced.
		newRun := map[*gjob]bool{}
		for _, j := range running() {
			newRun[j] = true
		}
		for _, j := range run {
			if j.remaining > 0 && !newRun[j] {
				rep.Preemptions++
				j.preempted = true
			}
		}
		for j := range newRun {
			if j.preempted {
				rep.Migrations++
				j.preempted = false
			}
		}
	}
	// Incomplete jobs whose deadline fell inside the horizon.
	for idx, j := range active {
		if j == nil {
			continue
		}
		if deadline := j.release + sorted[idx].T; deadline <= horizon {
			rep.Misses = append(rep.Misses, deadline)
			rep.MissedTasks = append(rep.MissedTasks, idx)
		}
	}
	return rep, nil
}

// SchedulableByUSBound reports whether the set is guaranteed schedulable
// by RM-US[m/(3m−2)] on m processors: U_M(τ) ≤ m/(3m−2) ([4]). This is the
// global fixed-priority guarantee the paper's partitioned bounds are
// measured against.
func SchedulableByUSBound(ts task.Set, m int) bool {
	return ts.NormalizedUtilization(m) <= USBound(m)+1e-9
}

// DhallExample constructs the classic Dhall-effect witness scaled to m
// processors: m light tasks (C=1, T=periodLight) plus one near-100% task
// (C=T=periodLight·k+1 form). Under global RM the big task misses although
// the normalized utilization can be made arbitrarily small by growing m;
// under RM-US (or any partitioned algorithm in this repository) the set is
// trivially schedulable. periodLight must be at least 2.
func DhallExample(m int, periodLight task.Time) task.Set {
	if periodLight < 2 {
		panic("global: periodLight must be ≥ 2")
	}
	ts := make(task.Set, 0, m+1)
	for i := 0; i < m; i++ {
		ts = append(ts, task.Task{Name: fmt.Sprintf("light%d", i), C: 1, T: periodLight})
	}
	big := periodLight + 1
	ts = append(ts, task.Task{Name: "dhall", C: big, T: big})
	return ts
}
