package global

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/task"
)

func TestUSThresholdAndBound(t *testing.T) {
	if got := USThreshold(2); got != 0.5 {
		t.Errorf("ζ(2) = %g, want 0.5", got)
	}
	if got := USThreshold(4); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("ζ(4) = %g, want 0.4", got)
	}
	// Limit → 1/3 (the "best known ≈38%" regime the paper cites is of the
	// same order).
	if got := USThreshold(1000); math.Abs(got-1.0/3) > 1e-3 {
		t.Errorf("ζ(∞) = %g", got)
	}
}

func TestDhallEffect(t *testing.T) {
	// Global RM misses on the Dhall witness although U_M is modest;
	// RM-US and the paper's partitioned RM-TS schedule it.
	for _, m := range []int{2, 4, 8} {
		ts := DhallExample(m, 10)
		um := ts.NormalizedUtilization(m)
		if um > 0.7 {
			t.Fatalf("m=%d: witness too heavy (U_M=%.3f)", m, um)
		}
		grm, err := Simulate(ts, m, Options{Policy: RM, StopOnMiss: true})
		if err != nil {
			t.Fatal(err)
		}
		if grm.Ok() {
			t.Errorf("m=%d: global RM scheduled the Dhall witness (U_M=%.3f)", m, um)
		}
		rmus, err := Simulate(ts, m, Options{Policy: RMUS, StopOnMiss: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rmus.Ok() {
			t.Errorf("m=%d: RM-US missed on the Dhall witness: %v", m, rmus.Misses)
		}
		res := partition.NewRMTS(nil).Partition(ts, m)
		if !res.OK {
			t.Errorf("m=%d: RM-TS failed on the Dhall witness: %s", m, res.Reason)
		}
	}
}

func TestDhallUtilizationShrinksWithM(t *testing.T) {
	// The hallmark of the Dhall effect: the witness's normalized
	// utilization tends to 1/m·(m/T + 1) — arbitrarily low for large m,
	// yet global RM still fails.
	u8 := DhallExample(8, 100).NormalizedUtilization(8)
	u2 := DhallExample(2, 100).NormalizedUtilization(2)
	if u8 >= u2 {
		t.Errorf("U_M did not shrink: m=2 → %.3f, m=8 → %.3f", u2, u8)
	}
	rep, err := Simulate(DhallExample(8, 100), 8, Options{Policy: RM, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("global RM scheduled the m=8 witness")
	}
}

func TestGlobalRMSchedulesTrivialSets(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 10},
		{Name: "b", C: 2, T: 20},
		{Name: "c", C: 3, T: 30},
	}
	rep, err := Simulate(ts, 2, Options{Policy: RM, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	if rep.Completed == 0 || rep.Released == 0 {
		t.Error("nothing happened")
	}
}

func TestGlobalSingleProcessorMatchesRM(t *testing.T) {
	// On one processor, global RM is uniprocessor RM: a harmonic set at
	// 100% is schedulable.
	ts := task.Set{
		{Name: "a", C: 2, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
	rep, err := Simulate(ts, 1, Options{Policy: RM, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
}

func TestUSBoundSetsAreSchedulable(t *testing.T) {
	// [4]'s theorem, checked empirically: random sets under the RM-US
	// bound never miss under the RM-US policy.
	r := rand.New(rand.NewSource(4))
	checked := 0
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(3)
		ts, err := gen.TaskSet(r, gen.Config{
			TargetU: USBound(m) * float64(m) * (0.5 + 0.5*r.Float64()),
			UMin:    0.05, UMax: 0.9,
			Periods: gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !SchedulableByUSBound(ts, m) {
			continue
		}
		rep, err := Simulate(ts, m, Options{Policy: RMUS, StopOnMiss: true, HorizonCap: 500_000})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d: set under the RM-US bound missed: %v (U_M=%.3f, m=%d)",
				trial, rep.Misses, ts.NormalizedUtilization(m), m)
		}
		checked++
	}
	if checked < 20 {
		t.Errorf("only %d sets checked; generator too restrictive", checked)
	}
}

func TestPrioritiesRMUSPutsHeavyFirst(t *testing.T) {
	ts := task.Set{
		{Name: "short", C: 1, T: 10},  // light, highest RM priority
		{Name: "heavy", C: 54, T: 60}, // U=0.9 > ζ
		{Name: "long", C: 1, T: 100},
	}
	ts.SortRM()
	perm := Priorities(ts, 2, RMUS)
	if ts[perm[0]].Name != "heavy" {
		t.Errorf("RM-US priority order %v does not lead with the heavy task", perm)
	}
	rm := Priorities(ts, 2, RM)
	for k, idx := range rm {
		if k != idx {
			t.Errorf("plain RM permuted priorities: %v", rm)
		}
	}
}

func TestSimulateValidation(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 4}}
	if _, err := Simulate(ts, 0, Options{}); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := Simulate(task.Set{{C: 5, T: 4}}, 2, Options{}); err == nil {
		t.Error("C>T accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if RM.String() != "G-RM" || RMUS.String() != "RM-US" {
		t.Error("policy names wrong")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy has empty name")
	}
}

func TestGlobalOverloadDetected(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 9, T: 10},
		{Name: "b", C: 9, T: 10},
		{Name: "c", C: 9, T: 10},
	}
	rep, err := Simulate(ts, 2, Options{Policy: RM, StopOnMiss: false, Horizon: 100})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("U=2.7 on 2 processors did not miss")
	}
}

func TestNoParallelSelfExecution(t *testing.T) {
	// A single job must never run on two processors at once: a C=T task on
	// many processors completes exactly at its deadline, never earlier.
	ts := task.Set{{Name: "solo", C: 50, T: 50}}
	rep, err := Simulate(ts, 4, Options{Policy: RM, StopOnMiss: true, Horizon: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	if rep.WorstResponse[0] != 50 {
		t.Errorf("response %d, want exactly 50 (sequential execution)", rep.WorstResponse[0])
	}
}

func TestDhallExampleValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("periodLight=1 accepted")
		}
	}()
	DhallExample(2, 1)
}

func TestGlobalRejectsConstrainedDeadlines(t *testing.T) {
	ts := task.Set{{Name: "c", C: 1, T: 10, D: 5}}
	if _, err := Simulate(ts, 2, Options{}); err == nil {
		t.Error("constrained set accepted by the global simulator")
	}
}

func TestGlobalMigrationAccounting(t *testing.T) {
	// Two processors, three tasks of equal period: the lowest-priority one
	// is repeatedly preempted and resumed.
	ts := task.Set{
		{Name: "a", C: 3, T: 6},
		{Name: "b", C: 3, T: 6},
		{Name: "c", C: 4, T: 12},
	}
	rep, err := Simulate(ts, 2, Options{Policy: RM, Horizon: 120, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	if rep.Preemptions == 0 {
		t.Error("no preemptions recorded for a contended set")
	}
	if rep.WorstResponse[2] == 0 {
		t.Error("no response recorded for the low-priority task")
	}
}

func TestGlobalHorizonCap(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 1009},
		{Name: "b", C: 1, T: 1013},
	}
	rep, err := Simulate(ts, 2, Options{HorizonCap: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Horizon != 4000 {
		t.Errorf("horizon = %d, want capped 4000", rep.Horizon)
	}
}
