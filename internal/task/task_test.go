package task

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTaskValidate(t *testing.T) {
	cases := []struct {
		tk Task
		ok bool
	}{
		{Task{Name: "a", C: 1, T: 10}, true},
		{Task{Name: "b", C: 10, T: 10}, true},
		{Task{Name: "c", C: 11, T: 10}, false},
		{Task{Name: "d", C: 0, T: 10}, false},
		{Task{Name: "e", C: -1, T: 10}, false},
		{Task{Name: "f", C: 1, T: 0}, false},
		{Task{Name: "g", C: 1, T: -5}, false},
	}
	for _, c := range cases {
		err := c.tk.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%v: Validate() = %v, want ok=%v", c.tk, err, c.ok)
		}
	}
}

func TestTaskUtilization(t *testing.T) {
	if u := (Task{C: 1, T: 4}).Utilization(); u != 0.25 {
		t.Errorf("utilization = %g, want 0.25", u)
	}
	if u := (Task{C: 7, T: 7}).Utilization(); u != 1 {
		t.Errorf("utilization = %g, want 1", u)
	}
}

func TestSetSortRMAndIsSorted(t *testing.T) {
	s := Set{
		{Name: "long", C: 1, T: 100},
		{Name: "short", C: 1, T: 10},
		{Name: "mid", C: 1, T: 50},
	}
	if s.IsSortedRM() {
		t.Fatal("unsorted set reported sorted")
	}
	s.SortRM()
	if !s.IsSortedRM() {
		t.Fatal("sorted set reported unsorted")
	}
	if s[0].Name != "short" || s[1].Name != "mid" || s[2].Name != "long" {
		t.Errorf("wrong order: %v", s)
	}
}

func TestSortRMStableOnTies(t *testing.T) {
	s := Set{
		{Name: "a", C: 1, T: 10},
		{Name: "b", C: 2, T: 10},
		{Name: "c", C: 3, T: 10},
	}
	s.SortRM()
	if s[0].Name != "a" || s[1].Name != "b" || s[2].Name != "c" {
		t.Errorf("tie order not preserved: %v", s)
	}
}

func TestSetValidate(t *testing.T) {
	if err := (Set{}).Validate(); err == nil {
		t.Error("empty set validated")
	}
	s := Set{{Name: "x", C: 5, T: 4}}
	if err := s.Validate(); err == nil {
		t.Error("invalid task validated")
	}
	good := Set{{Name: "x", C: 2, T: 4}, {Name: "y", C: 1, T: 8}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
}

func TestSetUtilizations(t *testing.T) {
	s := Set{{C: 1, T: 4}, {C: 1, T: 2}} // 0.25 + 0.5
	if u := s.TotalUtilization(); math.Abs(u-0.75) > 1e-12 {
		t.Errorf("total = %g, want 0.75", u)
	}
	if u := s.NormalizedUtilization(3); math.Abs(u-0.25) > 1e-12 {
		t.Errorf("normalized = %g, want 0.25", u)
	}
	if u := s.MaxUtilization(); u != 0.5 {
		t.Errorf("max = %g, want 0.5", u)
	}
}

func TestIsLight(t *testing.T) {
	s := Set{{C: 2, T: 10}, {C: 4, T: 10}}
	if !s.IsLight(0.4) {
		t.Error("0.4-light set rejected")
	}
	if s.IsLight(0.39) {
		t.Error("set with a 0.4 task accepted as 0.39-light")
	}
}

func TestHyperperiod(t *testing.T) {
	s := Set{{C: 1, T: 4}, {C: 1, T: 6}, {C: 1, T: 10}}
	if h := s.Hyperperiod(); h != 60 {
		t.Errorf("hyperperiod = %d, want 60", h)
	}
	big := Set{
		{C: 1, T: (1 << 31) - 1},  // Mersenne prime 2147483647
		{C: 1, T: (1 << 31) - 99}, // big and coprime-ish
		{C: 1, T: (1 << 30) + 3},
	}
	if h := big.Hyperperiod(); h != math.MaxInt64 {
		t.Errorf("huge hyperperiod = %d, want saturation", h)
	}
}

func TestIsHarmonic(t *testing.T) {
	harmonic := Set{{C: 1, T: 4}, {C: 1, T: 8}, {C: 1, T: 16}, {C: 1, T: 4}}
	if !harmonic.IsHarmonic() {
		t.Error("harmonic set rejected")
	}
	not := Set{{C: 1, T: 4}, {C: 1, T: 6}}
	if not.IsHarmonic() {
		t.Error("non-harmonic set accepted")
	}
	if !(Set{}).IsHarmonic() {
		t.Error("empty set should be trivially harmonic")
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := Set{{Name: "a", C: 1, T: 2}}
	c := s.Clone()
	c[0].C = 99
	if s[0].C != 1 {
		t.Error("Clone aliases backing array")
	}
}

func TestWhole(t *testing.T) {
	w := Whole(3, Task{Name: "x", C: 5, T: 20})
	if w.TaskIndex != 3 || w.Part != 1 || w.C != 5 || w.T != 20 || w.Deadline != 20 || w.Offset != 0 || !w.Tail {
		t.Errorf("Whole produced %+v", w)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("Whole invalid: %v", err)
	}
}

func TestSubtaskValidate(t *testing.T) {
	good := Subtask{TaskIndex: 0, Part: 2, C: 3, T: 10, Deadline: 7, Offset: 3, Tail: true}
	if err := good.Validate(); err != nil {
		t.Errorf("valid subtask rejected: %v", err)
	}
	bad := []Subtask{
		{TaskIndex: -1, Part: 1, C: 1, T: 10, Deadline: 10},
		{TaskIndex: 0, Part: 0, C: 1, T: 10, Deadline: 10},
		{TaskIndex: 0, Part: 1, C: 0, T: 10, Deadline: 10},
		{TaskIndex: 0, Part: 1, C: 1, T: 0, Deadline: 10},
		{TaskIndex: 0, Part: 1, C: 1, T: 10, Deadline: 0},
		{TaskIndex: 0, Part: 1, C: 1, T: 10, Deadline: 11},
		{TaskIndex: 0, Part: 1, C: 1, T: 10, Deadline: 9, Offset: 2}, // offset ≠ T−Δ
		{TaskIndex: 0, Part: 1, C: 8, T: 10, Deadline: 7, Offset: 3}, // C > Δ
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad subtask %d (%+v) validated", i, s)
		}
	}
}

func TestSubtaskUtilizationProperty(t *testing.T) {
	f := func(c, d uint16) bool {
		cc := Time(c%1000) + 1
		tt := cc + Time(d%1000)
		s := Subtask{TaskIndex: 0, Part: 1, C: cc, T: tt, Deadline: tt, Tail: true}
		return math.Abs(s.Utilization()-float64(cc)/float64(tt)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRenderings(t *testing.T) {
	tk := Task{Name: "cam", C: 2, T: 10}
	if got := tk.String(); got != "cam(2/10)" {
		t.Errorf("Task.String() = %q", got)
	}
	anon := Task{C: 2, T: 10}
	if got := anon.String(); !strings.Contains(got, "2/10") {
		t.Errorf("anonymous Task.String() = %q", got)
	}
	s := Set{tk}
	if got := s.String(); !strings.Contains(got, "cam(2/10)") {
		t.Errorf("Set.String() = %q", got)
	}
	sub := Subtask{TaskIndex: 1, Part: 2, C: 3, T: 12, Deadline: 9, Offset: 3, Tail: true}
	if got := sub.String(); !strings.Contains(got, "τ1.2t") {
		t.Errorf("Subtask.String() = %q", got)
	}
}

func TestNormalizedUtilizationPanicsOnBadM(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for m=0")
		}
	}()
	Set{{C: 1, T: 2}}.NormalizedUtilization(0)
}
