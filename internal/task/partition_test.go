package task

import (
	"strings"
	"testing"
)

func twoTaskSet() Set {
	return Set{{Name: "hi", C: 2, T: 10}, {Name: "lo", C: 5, T: 20}}
}

func TestNewAssignment(t *testing.T) {
	a := NewAssignment(twoTaskSet(), 3)
	if a.M() != 3 {
		t.Fatalf("M = %d", a.M())
	}
	for q := 0; q < 3; q++ {
		if a.PreAssigned[q] != -1 {
			t.Errorf("processor %d pre-assigned %d, want -1", q, a.PreAssigned[q])
		}
		if a.Utilization(q) != 0 {
			t.Errorf("fresh processor %d has utilization %g", q, a.Utilization(q))
		}
	}
}

func TestAddKeepsPriorityOrder(t *testing.T) {
	a := NewAssignment(Set{{C: 1, T: 5}, {C: 1, T: 10}, {C: 1, T: 20}}, 1)
	a.Add(0, Whole(2, a.Set[2]))
	a.Add(0, Whole(0, a.Set[0]))
	a.Add(0, Whole(1, a.Set[1]))
	got := a.Procs[0]
	for i := 1; i < len(got); i++ {
		if got[i-1].TaskIndex >= got[i].TaskIndex {
			t.Fatalf("out of order: %v", got)
		}
	}
}

func TestUtilizationSums(t *testing.T) {
	a := NewAssignment(twoTaskSet(), 2)
	a.Add(0, Whole(0, a.Set[0])) // 0.2
	a.Add(1, Whole(1, a.Set[1])) // 0.25
	if u := a.Utilization(0); u != 0.2 {
		t.Errorf("U(P0) = %g", u)
	}
	if u := a.TotalUtilization(); u != 0.45 {
		t.Errorf("total = %g", u)
	}
}

func TestSubtasksAndSplitTasks(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}, {Name: "b", C: 2, T: 30}}
	a := NewAssignment(set, 2)
	// Split task 0 into body (4 ticks on P0) and tail (2 ticks on P1).
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 20, Offset: 0, Tail: false})
	a.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 16, Offset: 4, Tail: true})
	a.Add(1, Whole(1, set[1]))

	subs, procs := a.Subtasks(0)
	if len(subs) != 2 || subs[0].Part != 1 || subs[1].Part != 2 {
		t.Fatalf("fragments wrong: %v", subs)
	}
	if procs[0] != 0 || procs[1] != 1 {
		t.Fatalf("processors wrong: %v", procs)
	}
	split := a.SplitTasks()
	if len(split) != 1 || split[0] != 0 {
		t.Fatalf("SplitTasks = %v", split)
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
}

func TestValidateCatchesMissingTask(t *testing.T) {
	a := NewAssignment(twoTaskSet(), 1)
	a.Add(0, Whole(0, a.Set[0]))
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "not assigned") {
		t.Errorf("missing task not caught: %v", err)
	}
}

func TestValidateCatchesBadFragmentSum(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 2)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 3, T: 20, Deadline: 20, Offset: 0, Tail: false})
	a.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 17, Offset: 3, Tail: true})
	if err := a.Validate(); err == nil || !strings.Contains(err.Error(), "sum") {
		t.Errorf("wrong C sum not caught: %v", err)
	}
}

func TestValidateCatchesSharedProcessor(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 1)
	a.Procs[0] = []Subtask{
		{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 20, Offset: 0},
		{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 16, Offset: 4, Tail: true},
	}
	err := a.Validate()
	if err == nil {
		t.Error("fragments on one processor not caught")
	}
}

func TestValidateCatchesBadDeadlineBookkeeping(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 2)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 20, Offset: 0, Tail: false})
	// Offset 3 < body's C (4): synthetic deadline too generous — unsafe.
	a.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 17, Offset: 3, Tail: true})
	if err := a.Validate(); err == nil {
		t.Error("too-generous synthetic deadline not caught")
	}
}

func TestValidateAllowsResponseBasedOffsets(t *testing.T) {
	// Offset may exceed the cumulative C when a body fragment's response
	// time exceeds its execution time (RM-TS phase 3).
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 2)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 20, Offset: 0, Tail: false})
	a.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 14, Offset: 6, Tail: true})
	if err := a.Validate(); err != nil {
		t.Errorf("response-based offset rejected: %v", err)
	}
}

func TestValidateCatchesNonzeroFirstOffset(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 1)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 6, T: 20, Deadline: 18, Offset: 2, Tail: true})
	if err := a.Validate(); err == nil {
		t.Error("non-zero first offset not caught")
	}
}

func TestValidateCatchesWrongTailFlag(t *testing.T) {
	set := Set{{Name: "a", C: 6, T: 20}}
	a := NewAssignment(set, 1)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 6, T: 20, Deadline: 20, Offset: 0, Tail: false})
	if err := a.Validate(); err == nil {
		t.Error("missing tail flag not caught")
	}
}

func TestAssignmentString(t *testing.T) {
	a := NewAssignment(twoTaskSet(), 2)
	a.Add(0, Whole(0, a.Set[0]))
	a.PreAssigned[1] = 1
	a.Add(1, Whole(1, a.Set[1]))
	s := a.String()
	if !strings.Contains(s, "P0") || !strings.Contains(s, "[pre τ1]") {
		t.Errorf("String() = %q", s)
	}
}
