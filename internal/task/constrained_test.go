package task

import "testing"

func TestTaskDeadlineAndDensity(t *testing.T) {
	implicit := Task{C: 2, T: 10}
	if implicit.Deadline() != 10 || !implicit.Implicit() {
		t.Error("implicit deadline wrong")
	}
	constrained := Task{C: 2, T: 10, D: 5}
	if constrained.Deadline() != 5 || constrained.Implicit() {
		t.Error("constrained deadline wrong")
	}
	if constrained.Density() != 0.4 {
		t.Errorf("density = %g, want 0.4", constrained.Density())
	}
	if constrained.Utilization() != 0.2 {
		t.Errorf("utilization = %g, want 0.2", constrained.Utilization())
	}
	// D = T counts as implicit.
	if !(Task{C: 2, T: 10, D: 10}).Implicit() {
		t.Error("D=T should be implicit")
	}
}

func TestConstrainedValidate(t *testing.T) {
	good := Task{C: 3, T: 10, D: 5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid constrained task rejected: %v", err)
	}
	bad := []Task{
		{C: 3, T: 10, D: 2},  // C > D
		{C: 3, T: 10, D: 11}, // D > T
		{C: 3, T: 10, D: -1}, // negative D
	}
	for i, tk := range bad {
		if err := tk.Validate(); err == nil {
			t.Errorf("bad constrained task %d validated", i)
		}
	}
}

func TestSortDM(t *testing.T) {
	s := Set{
		{Name: "lateD", C: 1, T: 10, D: 9},
		{Name: "earlyD", C: 1, T: 20, D: 5},
		{Name: "implicit", C: 1, T: 7},
	}
	s.SortDM()
	if s[0].Name != "earlyD" || s[1].Name != "implicit" || s[2].Name != "lateD" {
		t.Errorf("DM order wrong: %v", s)
	}
	if !s.IsSortedDM() {
		t.Error("IsSortedDM false after SortDM")
	}
	// For implicit sets, SortDM equals SortRM.
	a := Set{{C: 1, T: 30}, {C: 1, T: 10}, {C: 1, T: 20}}
	b := a.Clone()
	a.SortRM()
	b.SortDM()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("SortDM ≠ SortRM on implicit set: %v vs %v", a, b)
		}
	}
}

func TestSetImplicit(t *testing.T) {
	if !(Set{{C: 1, T: 4}, {C: 1, T: 8, D: 8}}).Implicit() {
		t.Error("implicit set misclassified")
	}
	if (Set{{C: 1, T: 4}, {C: 1, T: 8, D: 7}}).Implicit() {
		t.Error("constrained set misclassified")
	}
}

func TestWholeConstrained(t *testing.T) {
	w := Whole(0, Task{C: 2, T: 10, D: 6})
	if w.Deadline != 6 || w.Offset != 4 {
		t.Errorf("Whole constrained: Δ=%d offset=%d", w.Deadline, w.Offset)
	}
	if err := w.Validate(); err != nil {
		t.Error(err)
	}
}

func TestConstrainedTaskString(t *testing.T) {
	s := Task{Name: "x", C: 2, T: 10, D: 6}.String()
	if s != "x(2/10,D6)" {
		t.Errorf("String() = %q", s)
	}
}

func TestAssignmentValidateConstrainedWhole(t *testing.T) {
	set := Set{{Name: "c", C: 2, T: 10, D: 6}}
	a := NewAssignment(set, 1)
	a.Add(0, Whole(0, set[0]))
	if err := a.Validate(); err != nil {
		t.Errorf("constrained whole-task assignment rejected: %v", err)
	}
}

func TestAssignmentValidateConstrainedSplit(t *testing.T) {
	// Split of a constrained task: Δ_1 = D, Δ_2 = D − R_1.
	set := Set{{Name: "c", C: 6, T: 20, D: 12}}
	a := NewAssignment(set, 2)
	a.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 12, Offset: 8, Tail: false})
	a.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 8, Offset: 12, Tail: true})
	if err := a.Validate(); err != nil {
		t.Errorf("constrained split rejected: %v", err)
	}
	// First fragment offset must be exactly T − D.
	b := NewAssignment(set, 2)
	b.Add(0, Subtask{TaskIndex: 0, Part: 1, C: 4, T: 20, Deadline: 20, Offset: 0, Tail: false})
	b.Add(1, Subtask{TaskIndex: 0, Part: 2, C: 2, T: 20, Deadline: 16, Offset: 4, Tail: true})
	if err := b.Validate(); err == nil {
		t.Error("split ignoring the constrained deadline accepted")
	}
}
