package task

import (
	"fmt"
	"sort"
	"strings"
)

// Assignment is the outcome of a partitioning algorithm: for each of the M
// processors, the list of subtasks that execute there, kept sorted by
// priority (ascending TaskIndex, i.e. highest priority first).
type Assignment struct {
	// Set is the RM-sorted task set that was partitioned.
	Set Set
	// Procs holds the subtasks hosted by each processor, highest priority
	// first.
	Procs [][]Subtask
	// PreAssigned records, per processor, the task index pre-assigned to it
	// by RM-TS phase 1, or -1 for normal processors.
	PreAssigned []int
}

// NewAssignment returns an empty assignment for set ts on m processors.
func NewAssignment(ts Set, m int) *Assignment {
	a := &Assignment{}
	a.Reset(ts, m)
	return a
}

// Reset re-initialises the assignment for set ts on m processors, recycling
// the per-processor subtask slices and the pre-assignment array from the
// previous use. After Reset the assignment is observationally identical to
// NewAssignment(ts, m); only slice capacities are carried over, so repeated
// Reset/fill cycles on one Assignment allocate nothing once capacities have
// grown to the working-set size.
func (a *Assignment) Reset(ts Set, m int) {
	a.Set = ts
	if cap(a.Procs) < m {
		grown := make([][]Subtask, m)
		// Reslice to capacity so per-processor slices that grew in earlier
		// uses keep their backing arrays.
		copy(grown, a.Procs[:cap(a.Procs)])
		a.Procs = grown
	} else {
		a.Procs = a.Procs[:m]
	}
	for q := range a.Procs {
		a.Procs[q] = a.Procs[q][:0]
	}
	if cap(a.PreAssigned) < m {
		a.PreAssigned = make([]int, m)
	} else {
		a.PreAssigned = a.PreAssigned[:m]
	}
	for i := range a.PreAssigned {
		a.PreAssigned[i] = -1
	}
}

// M returns the number of processors.
func (a *Assignment) M() int { return len(a.Procs) }

// Add places subtask s on processor q, maintaining priority order.
func (a *Assignment) Add(q int, s Subtask) {
	list := a.Procs[q]
	pos := sort.Search(len(list), func(i int) bool {
		return list[i].TaskIndex > s.TaskIndex
	})
	list = append(list, Subtask{})
	copy(list[pos+1:], list[pos:])
	list[pos] = s
	a.Procs[q] = list
}

// Utilization returns the assigned utilization U(P_q) of processor q.
func (a *Assignment) Utilization(q int) float64 {
	sum := 0.0
	for _, s := range a.Procs[q] {
		sum += s.Utilization()
	}
	return sum
}

// TotalUtilization returns the sum of assigned utilizations over all
// processors.
func (a *Assignment) TotalUtilization() float64 {
	sum := 0.0
	for q := range a.Procs {
		sum += a.Utilization(q)
	}
	return sum
}

// Subtasks returns all fragments of task idx across processors, ordered by
// part number, together with their processor indices.
func (a *Assignment) Subtasks(idx int) (subs []Subtask, procs []int) {
	type frag struct {
		s Subtask
		q int
	}
	var frags []frag
	for q, list := range a.Procs {
		for _, s := range list {
			if s.TaskIndex == idx {
				frags = append(frags, frag{s, q})
			}
		}
	}
	sort.Slice(frags, func(i, j int) bool { return frags[i].s.Part < frags[j].s.Part })
	for _, f := range frags {
		subs = append(subs, f.s)
		procs = append(procs, f.q)
	}
	return subs, procs
}

// SplitTasks returns the indices of tasks that were split into two or more
// fragments, in ascending order.
func (a *Assignment) SplitTasks() []int {
	count := map[int]int{}
	for _, list := range a.Procs {
		for _, s := range list {
			count[s.TaskIndex]++
		}
	}
	var out []int
	for idx, n := range count {
		if n > 1 {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// Validate checks the structural invariants of a complete assignment:
// every task appears with fragments summing to its C, fragment part numbers
// are 1..k with exactly one tail (the last), synthetic deadlines follow
// Δ^k = T − Σ_{l<k} R^l with R^l ≥ C^l (equation (1); R^l = C^l when the
// body fragment has the highest priority on its host, Lemma 2), no two
// fragments of a task share a processor, and per-processor lists are
// priority sorted.
func (a *Assignment) Validate() error {
	for q, list := range a.Procs {
		for i, s := range list {
			if err := s.Validate(); err != nil {
				return fmt.Errorf("processor %d: %w", q, err)
			}
			if i > 0 && list[i-1].TaskIndex >= s.TaskIndex {
				return fmt.Errorf("processor %d: subtasks out of priority order at position %d", q, i)
			}
			if s.TaskIndex >= len(a.Set) {
				return fmt.Errorf("processor %d: subtask refers to unknown task %d", q, s.TaskIndex)
			}
		}
	}
	for idx, t := range a.Set {
		subs, procs := a.Subtasks(idx)
		if len(subs) == 0 {
			return fmt.Errorf("task %d (%s) is not assigned to any processor", idx, t)
		}
		seen := map[int]bool{}
		base := t.T - t.Deadline() // 0 for implicit deadlines
		sumC := Time(0)
		minOffset := base
		prevOffset := Time(0)
		for k, s := range subs {
			if s.Part != k+1 {
				return fmt.Errorf("task %d: fragment parts are not contiguous (got part %d at position %d)", idx, s.Part, k)
			}
			if seen[procs[k]] {
				return fmt.Errorf("task %d: two fragments share processor %d", idx, procs[k])
			}
			seen[procs[k]] = true
			if s.T != t.T {
				return fmt.Errorf("task %d: fragment period %d differs from task period %d", idx, s.T, t.T)
			}
			if k == 0 && s.Offset != base {
				return fmt.Errorf("task %d: first fragment offset %d, want T−D = %d", idx, s.Offset, base)
			}
			if s.Offset < minOffset {
				return fmt.Errorf("task %d part %d: offset %d is below the cumulative execution %d of prior fragments", idx, s.Part, s.Offset, minOffset)
			}
			if k > 0 && s.Offset <= prevOffset {
				return fmt.Errorf("task %d part %d: offset %d does not increase past predecessor's %d", idx, s.Part, s.Offset, prevOffset)
			}
			if s.Deadline > t.T-s.Offset {
				// Equality is the fixed-priority chain bookkeeping
				// (Δ = T − offset); window-based EDF splitting assigns
				// strictly tighter per-fragment deadlines, which is always
				// safe. Looser is never allowed.
				return fmt.Errorf("task %d part %d: synthetic deadline %d exceeds chain budget T−offset = %d", idx, s.Part, s.Deadline, t.T-s.Offset)
			}
			wantTail := k == len(subs)-1
			if s.Tail != wantTail {
				return fmt.Errorf("task %d part %d: tail flag %v, want %v", idx, s.Part, s.Tail, wantTail)
			}
			sumC += s.C
			minOffset += s.C
			prevOffset = s.Offset
		}
		if sumC != t.C {
			return fmt.Errorf("task %d: fragment execution times sum to %d, want %d", idx, sumC, t.C)
		}
	}
	return nil
}

// String renders the assignment one processor per line.
func (a *Assignment) String() string {
	var b strings.Builder
	for q, list := range a.Procs {
		fmt.Fprintf(&b, "P%d (U=%.4f)", q, a.Utilization(q))
		if a.PreAssigned[q] >= 0 {
			fmt.Fprintf(&b, " [pre τ%d]", a.PreAssigned[q])
		}
		b.WriteString(":")
		for _, s := range list {
			b.WriteString(" ")
			b.WriteString(s.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}
