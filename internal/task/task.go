// Package task defines the Liu & Layland task model of the paper (§II): a
// task is a pair (C, T) of worst-case execution time and minimal
// inter-release separation (period, which is also the relative deadline), a
// task set is a priority-ordered collection of tasks, and — for partitioned
// scheduling with task splitting — a subtask is a fragment of a task with a
// synthetic deadline that accounts for the synchronization delay of its
// predecessor fragments on other processors.
//
// Time is discrete (int64 ticks). Rate-monotonic priority order is encoded
// positionally: after SortRM, a smaller index means a shorter period and
// therefore a higher priority, exactly as in the paper ("i < j implies τ_i
// has higher priority than τ_j").
package task

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/mathx"
)

// Time is a discrete instant or duration in ticks.
type Time = int64

// Task is a sporadic task: worst-case execution time C, period T, and an
// optional constrained relative deadline D. The paper's model (§II) is the
// implicit-deadline Liu & Layland task (D = T), written by leaving D zero;
// setting 0 < D ≤ T selects the constrained-deadline extension, analysed
// with deadline-monotonic priorities (which coincide with RM when every
// deadline is implicit).
type Task struct {
	// Name is an optional human-readable label. It does not affect any
	// analysis; ties in deadline/period are broken by position.
	Name string
	// C is the worst-case execution time in ticks. Must be positive and at
	// most Deadline().
	C Time
	// T is the period (minimal inter-release separation) in ticks. Must be
	// positive.
	T Time
	// D is the relative deadline in ticks; zero means implicit (D = T).
	// When set it must satisfy C ≤ D ≤ T.
	D Time
}

// Deadline returns the effective relative deadline: D when set, else T.
func (t Task) Deadline() Time {
	if t.D > 0 {
		return t.D
	}
	return t.T
}

// Implicit reports whether the task's deadline equals its period.
func (t Task) Implicit() bool { return t.D == 0 || t.D == t.T }

// Utilization returns C/T.
func (t Task) Utilization() float64 {
	return float64(t.C) / float64(t.T)
}

// Density returns C/D — the constrained-deadline analog of utilization.
func (t Task) Density() float64 {
	return float64(t.C) / float64(t.Deadline())
}

// Validate reports an error if the task parameters are not a valid
// constrained sporadic task (0 < C ≤ D ≤ T, with D = T when unset).
func (t Task) Validate() error {
	switch {
	case t.T <= 0:
		return fmt.Errorf("task %q: period %d is not positive", t.Name, t.T)
	case t.C <= 0:
		return fmt.Errorf("task %q: execution time %d is not positive", t.Name, t.C)
	case t.D < 0:
		return fmt.Errorf("task %q: deadline %d is negative", t.Name, t.D)
	case t.D > t.T:
		return fmt.Errorf("task %q: deadline %d exceeds period %d (arbitrary deadlines unsupported)", t.Name, t.D, t.T)
	case t.C > t.Deadline():
		return fmt.Errorf("task %q: execution time %d exceeds deadline %d", t.Name, t.C, t.Deadline())
	}
	return nil
}

// String renders the task as name(C/T) or name(C/T,D) when constrained.
func (t Task) String() string {
	name := t.Name
	if name == "" {
		name = "τ"
	}
	if !t.Implicit() {
		return fmt.Sprintf("%s(%d/%d,D%d)", name, t.C, t.T, t.D)
	}
	return fmt.Sprintf("%s(%d/%d)", name, t.C, t.T)
}

// Set is an ordered collection of tasks. After SortRM the order is the
// rate-monotonic priority order: index 0 has the highest priority.
type Set []Task

// Clone returns a deep copy of the set.
func (s Set) Clone() Set {
	out := make(Set, len(s))
	copy(out, s)
	return out
}

// SortRM sorts the set into rate-monotonic priority order: non-decreasing
// period, ties broken by original order (the sort is stable).
//
// Stable insertion sort: sets are small (tens of tasks), the hot analysis
// path sorts one per generated sample, and sort.SliceStable allocates for
// its reflection-based swapper. An element moves only past strictly
// greater keys, so the resulting permutation is byte-identical to
// sort.SliceStable with the same less function.
func (s Set) SortRM() {
	for i := 1; i < len(s); i++ {
		t := s[i]
		j := i - 1
		for j >= 0 && s[j].T > t.T {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = t
	}
}

// SortDM sorts the set into deadline-monotonic priority order:
// non-decreasing effective deadline, period as tie-break, then original
// order (stable). For implicit-deadline sets this is exactly SortRM, so
// the partitioning algorithms use it uniformly.
func (s Set) SortDM() {
	for i := 1; i < len(s); i++ {
		t := s[i]
		d := t.Deadline()
		j := i - 1
		for j >= 0 && dmAfter(s[j], d, t.T) {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = t
	}
}

// dmAfter reports whether task a orders strictly after deadline/period key
// (d, p) in deadline-monotonic order — the insertion-sort counterpart of
// SortDM's former sort.SliceStable less function.
func dmAfter(a Task, d, p Time) bool {
	da := a.Deadline()
	if da != d {
		return da > d
	}
	return a.T > p
}

// IsSortedRM reports whether the set is in non-decreasing period order.
func (s Set) IsSortedRM() bool {
	for i := 1; i < len(s); i++ {
		if s[i].T < s[i-1].T {
			return false
		}
	}
	return true
}

// IsSortedDM reports whether the set is in non-decreasing effective
// deadline order.
func (s Set) IsSortedDM() bool {
	for i := 1; i < len(s); i++ {
		if s[i].Deadline() < s[i-1].Deadline() {
			return false
		}
	}
	return true
}

// Implicit reports whether every task has an implicit deadline (D = T) —
// the paper's L&L model, required by the utilization-bound theory (the
// SPA baselines, the PUBs) though not by the RTA-based algorithms.
func (s Set) Implicit() bool {
	for _, t := range s {
		if !t.Implicit() {
			return false
		}
	}
	return true
}

// Validate checks every task and reports the first error found.
func (s Set) Validate() error {
	if len(s) == 0 {
		return errors.New("task set is empty")
	}
	for i, t := range s {
		if err := t.Validate(); err != nil {
			return fmt.Errorf("index %d: %w", i, err)
		}
	}
	return nil
}

// TotalUtilization returns the sum of all task utilizations U(τ).
func (s Set) TotalUtilization() float64 {
	sum := 0.0
	for _, t := range s {
		sum += t.Utilization()
	}
	return sum
}

// NormalizedUtilization returns U_M(τ) = U(τ)/M for an M-processor platform.
func (s Set) NormalizedUtilization(m int) float64 {
	if m <= 0 {
		panic("task: NormalizedUtilization with non-positive processor count")
	}
	return s.TotalUtilization() / float64(m)
}

// MaxUtilization returns the largest individual task utilization, or 0 for
// an empty set.
func (s Set) MaxUtilization() float64 {
	max := 0.0
	for _, t := range s {
		if u := t.Utilization(); u > max {
			max = u
		}
	}
	return max
}

// IsLight reports whether every task's utilization is at most threshold
// (Definition 1 of the paper uses threshold = Θ/(1+Θ) with Θ the L&L bound
// of the set).
func (s Set) IsLight(threshold float64) bool {
	for _, t := range s {
		if t.Utilization() > threshold {
			return false
		}
	}
	return true
}

// Hyperperiod returns the least common multiple of all periods, saturating
// at math.MaxInt64.
func (s Set) Hyperperiod() Time {
	acc := Time(1)
	for _, t := range s {
		acc = mathx.LCM(acc, t.T)
		if acc == math.MaxInt64 {
			return acc
		}
	}
	return acc
}

// IsHarmonic reports whether the periods form a single harmonic chain, i.e.
// when sorted, every period divides the next (and therefore any pair of
// periods is in a divides relation).
func (s Set) IsHarmonic() bool {
	periods := make([]Time, len(s))
	for i, t := range s {
		periods[i] = t.T
	}
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })
	for i := 1; i < len(periods); i++ {
		if periods[i]%periods[i-1] != 0 {
			return false
		}
	}
	return true
}

// String renders the set compactly.
func (s Set) String() string {
	parts := make([]string, len(s))
	for i, t := range s {
		parts[i] = t.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Subtask is one fragment of a (possibly split) task assigned to a single
// processor. A non-split task is represented by a single subtask whose
// Deadline equals its period (§II). Split tasks have body subtasks followed
// by a tail subtask; each carries a synthetic deadline
// Δ_i^k = T_i − Σ_{l<k} C_i^l (equation (1) with Lemma 2's R^l = C^l).
type Subtask struct {
	// TaskIndex is the index of the owning task in the RM-sorted set. It is
	// also the (sub)task's priority: lower index preempts higher index.
	TaskIndex int
	// Part is the 1-based fragment number within the owning task.
	Part int
	// C is the execution time of this fragment.
	C Time
	// T is the period of the owning task.
	T Time
	// Deadline is the synthetic relative deadline Δ. For a non-split task it
	// equals T.
	Deadline Time
	// Offset is the cumulative execution time of the preceding body
	// subtasks, i.e. T − Deadline. It is the worst-case delay before this
	// fragment becomes ready, relative to the owning job's release.
	Offset Time
	// Tail records whether this is the final fragment of its task (true for
	// the single fragment of a non-split task).
	Tail bool
}

// Utilization returns C/T for the fragment.
func (s Subtask) Utilization() float64 {
	return float64(s.C) / float64(s.T)
}

// Validate reports an error if the subtask's bookkeeping is inconsistent.
func (s Subtask) Validate() error {
	switch {
	case s.TaskIndex < 0:
		return fmt.Errorf("subtask %d.%d: negative task index", s.TaskIndex, s.Part)
	case s.Part < 1:
		return fmt.Errorf("subtask %d.%d: parts are 1-based", s.TaskIndex, s.Part)
	case s.C <= 0:
		return fmt.Errorf("subtask %d.%d: execution time %d is not positive", s.TaskIndex, s.Part, s.C)
	case s.T <= 0:
		return fmt.Errorf("subtask %d.%d: period %d is not positive", s.TaskIndex, s.Part, s.T)
	case s.Deadline <= 0:
		return fmt.Errorf("subtask %d.%d: synthetic deadline %d is not positive", s.TaskIndex, s.Part, s.Deadline)
	case s.Deadline > s.T:
		return fmt.Errorf("subtask %d.%d: synthetic deadline %d exceeds period %d", s.TaskIndex, s.Part, s.Deadline, s.T)
	case s.Offset < 0:
		return fmt.Errorf("subtask %d.%d: negative offset %d", s.TaskIndex, s.Part, s.Offset)
	case s.Offset > s.T-s.Deadline:
		return fmt.Errorf("subtask %d.%d: offset %d pushes the window past the period (offset+Δ = %d > T = %d)", s.TaskIndex, s.Part, s.Offset, s.Offset+s.Deadline, s.T)
	case s.C > s.Deadline:
		return fmt.Errorf("subtask %d.%d: execution time %d exceeds synthetic deadline %d", s.TaskIndex, s.Part, s.C, s.Deadline)
	}
	return nil
}

// String renders the subtask as τ<idx>.<part>(C/T,Δ).
func (s Subtask) String() string {
	tail := ""
	if s.Tail && s.Part > 1 {
		tail = "t"
	}
	return fmt.Sprintf("τ%d.%d%s(%d/%d,Δ%d)", s.TaskIndex, s.Part, tail, s.C, s.T, s.Deadline)
}

// Whole returns the single-subtask representation of task t at priority
// index idx (C^1 = C, Δ^1 = the task's effective deadline).
func Whole(idx int, t Task) Subtask {
	d := t.Deadline()
	return Subtask{TaskIndex: idx, Part: 1, C: t.C, T: t.T, Deadline: d, Offset: t.T - d, Tail: true}
}
