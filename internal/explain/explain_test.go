package explain

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/task"
)

var overloaded = task.Set{
	{Name: "a", C: 3, T: 5},
	{Name: "b", C: 3, T: 5},
	{Name: "c", C: 3, T: 5},
	{Name: "d", C: 3, T: 5},
}

func TestRunRejectedRMTSLight(t *testing.T) {
	e := Run(partition.RMTSLight{}, overloaded, 2)
	if e.Verdict != "rejected" {
		t.Fatalf("verdict = %q, want rejected", e.Verdict)
	}
	if e.Cause != partition.CauseMaxSplitExhausted.String() {
		t.Errorf("cause = %q, want %s", e.Cause, partition.CauseMaxSplitExhausted)
	}
	if e.FailedTask == nil || e.Fragment == nil {
		t.Fatal("rejected explanation lacks failed task or fragment")
	}
	if len(e.Processors) != 2 {
		t.Fatalf("processors = %d, want 2", len(e.Processors))
	}
	for _, p := range e.Processors {
		if p.Evidence == nil {
			t.Fatalf("P%d has no evidence", p.Proc)
		}
		if !p.Evidence.HasMaxPortion {
			t.Errorf("P%d evidence lacks the MaxSplit probe", p.Proc)
		}
		if p.Evidence.MaxPortion >= e.Fragment.RemC {
			t.Errorf("P%d MaxPortion %d admits the whole fragment C=%d yet the run failed",
				p.Proc, p.Evidence.MaxPortion, e.Fragment.RemC)
		}
		if p.Evidence.OwnVerdict == "fits" && p.Evidence.Blocked == nil {
			t.Errorf("P%d: fragment fits and nothing blocks — evidence contradicts the rejection", p.Proc)
		}
	}
	// The failure happened mid-split on the last processor, so the final
	// fragment must come from the trace with a shrunken deadline.
	if !e.Fragment.FromTrace {
		t.Error("fragment not recovered from the decision trace")
	}
	if len(e.Events) == 0 {
		t.Error("no decision events recorded")
	}
}

func TestRunAcceptedWithSplits(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 3, T: 5},
		{Name: "b", C: 3, T: 5},
		{Name: "c", C: 3, T: 5},
	}
	e := Run(partition.RMTSLight{}, ts, 2)
	if e.Verdict != "accepted" || e.Cause != "none" {
		t.Fatalf("verdict=%q cause=%q, want accepted/none", e.Verdict, e.Cause)
	}
	if e.NumSplit != 1 || len(e.SplitChains) != 1 {
		t.Fatalf("NumSplit=%d chains=%d, want 1/1", e.NumSplit, len(e.SplitChains))
	}
	if len(e.SplitChains[0].Parts) < 2 {
		t.Fatal("split chain has fewer than 2 parts")
	}
	if e.FailedTask != nil || e.Fragment != nil {
		t.Error("accepted explanation carries failure evidence")
	}
}

func TestRunSPAThresholdEvidence(t *testing.T) {
	e := Run(partition.SPA2{}, overloaded, 2)
	if e.Verdict != "rejected" {
		t.Fatalf("verdict = %q, want rejected", e.Verdict)
	}
	for _, p := range e.Processors {
		if p.Evidence == nil || !p.Evidence.HasThreshold {
			t.Fatalf("P%d lacks threshold evidence", p.Proc)
		}
		need := float64(e.Fragment.RemC) / float64(e.Fragment.T)
		if p.Evidence.ThresholdRoom >= need {
			t.Errorf("P%d has room %.4f ≥ needed %.4f yet SPA2 rejected",
				p.Proc, p.Evidence.ThresholdRoom, need)
		}
	}
}

func TestRunGuaranteeViolated(t *testing.T) {
	heavy := task.Set{{C: 9, T: 10}, {C: 1, T: 100}}
	e := Run(partition.SPA1{}, heavy, 2)
	if e.Verdict != "accepted-unguaranteed" {
		t.Fatalf("verdict = %q, want accepted-unguaranteed", e.Verdict)
	}
	if e.Cause != partition.CauseGuaranteeViolated.String() {
		t.Errorf("cause = %q, want guarantee-violated", e.Cause)
	}
}

func TestRunRMTSLambda(t *testing.T) {
	e := Run(&partition.RMTS{}, overloaded, 2)
	if e.Bound.Lambda <= 0 {
		t.Fatalf("RM-TS explanation lacks the effective Λ bound: %v", e.Bound.Lambda)
	}
	if e.Bound.Lambda > e.Bound.RMTSCap+1e-12 {
		t.Errorf("Λ=%.4f exceeds the RM-TS cap %.4f", e.Bound.Lambda, e.Bound.RMTSCap)
	}
}

func TestRunEDFEvidence(t *testing.T) {
	e := Run(partition.EDFFirstFit{}, overloaded, 2)
	if e.Scheduler != "EDF" {
		t.Fatalf("scheduler = %q, want EDF", e.Scheduler)
	}
	for _, p := range e.Processors {
		if p.Evidence == nil || !p.Evidence.HasUtilization {
			t.Fatalf("P%d lacks EDF utilization evidence", p.Proc)
		}
	}
}

func TestRunInvalidInput(t *testing.T) {
	e := Run(partition.RMTSLight{}, overloaded, 0)
	if e.Verdict != "rejected" || e.Cause != partition.CauseInvalidInput.String() {
		t.Fatalf("verdict=%q cause=%q, want rejected/invalid-input", e.Verdict, e.Cause)
	}
}

func TestWriteTextDeterministic(t *testing.T) {
	e1 := Run(partition.RMTSLight{}, overloaded, 2)
	e2 := Run(partition.RMTSLight{}, overloaded, 2)
	var b1, b2 bytes.Buffer
	e1.WriteText(&b1)
	e2.WriteText(&b2)
	if b1.String() != b2.String() {
		t.Fatal("text reports differ across identical runs")
	}
	out := b1.String()
	for _, want := range []string{"REJECTED", "maxsplit-exhausted", "per-processor evidence", "MaxSplit admissible prefix"} {
		if !strings.Contains(out, want) {
			t.Errorf("report lacks %q:\n%s", want, out)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	e := Run(partition.RMTSLight{}, overloaded, 2)
	data, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Explanation
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || back.Cause != e.Cause || back.Verdict != e.Verdict {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, name := range []string{"auto", "rm-ts", "rm-ts-light", "spa1", "spa2", "ff", "wf", "edf-ff", "edf-ts"} {
		alg, err := AlgorithmByName(name, nil, overloaded)
		if err != nil || alg == nil {
			t.Errorf("AlgorithmByName(%q) = %v, %v", name, alg, err)
		}
	}
	if _, err := AlgorithmByName("nope", nil, overloaded); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
