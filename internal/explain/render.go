package explain

import (
	"fmt"
	"io"
	"strings"
)

// WriteText renders the Explanation as a deterministic human-readable "why"
// report: verdict and cause first, then the bound context, the failed
// fragment, the per-processor evidence, and the split chains. Byte-identical
// output for identical inputs (the cmd/explain golden test pins this).
func (e *Explanation) WriteText(w io.Writer) {
	var b strings.Builder

	switch e.Verdict {
	case "accepted":
		fmt.Fprintf(&b, "verdict: ACCEPTED by %s\n", e.Algorithm)
	case "accepted-unguaranteed":
		fmt.Fprintf(&b, "verdict: PACKED by %s, but NOT GUARANTEED (cause: %s)\n", e.Algorithm, e.Cause)
	default:
		fmt.Fprintf(&b, "verdict: REJECTED by %s (cause: %s)\n", e.Algorithm, e.Cause)
	}
	if e.Verdict != "accepted" && e.CauseDetail != "" {
		fmt.Fprintf(&b, "  %s\n", e.CauseDetail)
	}
	if e.Reason != "" {
		fmt.Fprintf(&b, "reason: %s\n", e.Reason)
	}
	b.WriteByte('\n')

	fmt.Fprintf(&b, "task set: N=%d on M=%d (%s)  U(τ)=%.4f  U_M(τ)=%.4f  max U_i=%.4f\n",
		e.N, e.M, e.Scheduler, e.Bound.TotalU, e.Bound.NormalizedU, e.Bound.MaxU)
	fmt.Fprintf(&b, "model: implicit=%v  light=%v  harmonic=%v\n",
		e.Bound.Implicit, e.Bound.Light, e.Bound.Harmonic)
	fmt.Fprintf(&b, "bounds: Θ(N)=%.4f  light-threshold Θ/(1+Θ)=%.4f  RM-TS cap 2Θ/(1+Θ)=%.4f  best Λ(τ)=%.4f (%s)\n",
		e.Bound.Theta, e.Bound.LightThr, e.Bound.RMTSCap, e.Bound.BestValue, e.Bound.BestBound)
	if e.Bound.Lambda > 0 {
		fmt.Fprintf(&b, "effective RM-TS bound min(Λ(τ), 2Θ/(1+Θ)) = %.4f", e.Bound.Lambda)
		if e.Bound.NormalizedU > e.Bound.Lambda {
			fmt.Fprintf(&b, "  — U_M exceeds it by %.4f", e.Bound.NormalizedU-e.Bound.Lambda)
		}
		b.WriteByte('\n')
	}

	if e.FailedTask != nil {
		t := e.FailedTask
		name := ""
		if t.Name != "" {
			name = fmt.Sprintf(" (%s)", t.Name)
		}
		fmt.Fprintf(&b, "\nfailed task: τ%d%s  C=%d T=%d D=%d U=%.4f\n", t.Index, name, t.C, t.T, t.D, t.U)
	}
	if e.Fragment != nil {
		f := e.Fragment
		src := "whole task (no split happened)"
		if f.FromTrace {
			src = "from the decision trace"
		}
		fmt.Fprintf(&b, "final fragment: part %d, remaining C=%d, synthetic deadline Δ=%d — %s\n",
			f.Part, f.RemC, f.Deadline, src)
	}

	if len(e.Processors) > 0 {
		if e.Verdict == "rejected" && e.Fragment != nil {
			fmt.Fprintf(&b, "\nper-processor evidence (final fragment offered to each):\n")
		} else {
			fmt.Fprintf(&b, "\nprocessors:\n")
		}
		for _, p := range e.Processors {
			fmt.Fprintf(&b, "  P%d: U=%.4f, %d subtasks", p.Proc, p.Utilization, len(p.Residents))
			if p.PreAssigned >= 0 {
				fmt.Fprintf(&b, ", dedicated to pre-assigned τ%d", p.PreAssigned)
			}
			b.WriteByte('\n')
			if ev := p.Evidence; ev != nil {
				if ev.OwnVerdict != "" {
					rel := "≤"
					if ev.OwnVerdict != "fits" {
						rel = ">"
					}
					fmt.Fprintf(&b, "      fragment RTA: R=%d %s Δ=%d (%s)\n",
						ev.OwnResponse, rel, e.Fragment.Deadline, ev.OwnVerdict)
				}
				if ev.Blocked != nil {
					fmt.Fprintf(&b, "      first blocked resident: τ%d.%d  R=%d > Δ=%d (%s)\n",
						ev.Blocked.Task, ev.Blocked.Part, ev.Blocked.Response, ev.Blocked.Deadline, ev.Blocked.Verdict)
				}
				if ev.HasMaxPortion {
					fmt.Fprintf(&b, "      MaxSplit admissible prefix: %d of %d\n", ev.MaxPortion, e.Fragment.RemC)
				}
				if ev.HasThreshold {
					fmt.Fprintf(&b, "      Θ-threshold room: %.4f (fragment needs U=%.4f)\n",
						ev.ThresholdRoom, float64(e.Fragment.RemC)/float64(e.Fragment.T))
				}
				if ev.HasUtilization {
					fmt.Fprintf(&b, "      utilization room: %.4f (fragment needs U=%.4f)\n",
						ev.UtilizationRoom, float64(e.Fragment.RemC)/float64(e.Fragment.T))
				}
			}
		}
	}

	if len(e.SplitChains) > 0 {
		fmt.Fprintf(&b, "\nsplit chains:\n")
		for _, c := range e.SplitChains {
			fmt.Fprintf(&b, "  τ%d:", c.Task)
			for i, p := range c.Parts {
				if i > 0 {
					b.WriteString(" →")
				}
				fmt.Fprintf(&b, " part %d on P%d (C′=%d, Δ=%d)", p.Part, p.Proc, p.C, p.Deadline)
			}
			b.WriteByte('\n')
		}
	}

	fmt.Fprintf(&b, "\ntotals: %d split, %d pre-assigned; %d trace decisions\n",
		e.NumSplit, e.NumPreAssigned, len(e.Events))
	io.WriteString(w, b.String())
}
