// Package explain turns one partitioning run into a typed, self-contained
// provenance record: the terminal verdict plus the causal evidence behind it
// — which admission test fired and the parameter values it saw (Λ(τ), Θ,
// U_M at rejection), the failing fragment's response time against its
// synthetic deadline on every processor, per-processor residency and slack
// at the moment of failure, and the split chains of divided tasks.
//
// The Explanation is derived from three sources: the partition.Result (the
// verdict, cause tag and assignment), the obs.Trace decision events (the
// final fragment's exact shape when the failure happened mid-split), and
// fresh analysis probes (rta.ResponseTimeExtraVerdict, split.MaxPortionAt,
// the bounds package) that recompute the rejected admission on each
// processor so the report can show not just *that* the test said no but
// *what it measured*. Everything is recomputed from the inputs — nothing
// here runs inside the partitioning hot path, so explain costs zero when
// not asked for (the AllocGuard and perfdiff gates pin this).
package explain

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/split"
	"repro/internal/task"
)

// Schema versions the Explanation JSON shape.
const Schema = 1

// Explanation is the provenance record of one partitioning run.
type Explanation struct {
	Schema    int    `json:"schema"`
	Algorithm string `json:"algorithm"`
	// Scheduler is the per-processor runtime policy: "FP" or "EDF".
	Scheduler string `json:"scheduler"`
	N         int    `json:"n"`
	M         int    `json:"m"`
	// Verdict is "accepted" (OK && Guaranteed), "accepted-unguaranteed"
	// (packed but outside the algorithm's bound theorem) or "rejected".
	Verdict    string `json:"verdict"`
	OK         bool   `json:"ok"`
	Guaranteed bool   `json:"guaranteed"`
	// Cause is the rejection-cause tag (partition.Cause.String); "none" on
	// full acceptance.
	Cause string `json:"cause"`
	// CauseDetail is the one-line human reading of Cause.
	CauseDetail string `json:"causeDetail,omitempty"`
	// Reason is the algorithm's own failure message; empty on success.
	Reason string `json:"reason,omitempty"`
	// Bound carries the parametric-bound context of the decision.
	Bound BoundInfo `json:"bound"`
	// FailedTask describes the first task that could not be placed; nil on
	// success or pre-packing failures without a specific task.
	FailedTask *TaskRef `json:"failedTask,omitempty"`
	// Fragment is the final unplaced fragment of the failed task (equal to
	// the whole task when the failure happened before any split).
	Fragment *FragmentInfo `json:"fragment,omitempty"`
	// Processors holds per-processor residency and, on rejection, the
	// recomputed admission evidence for the final fragment.
	Processors []ProcInfo `json:"processors,omitempty"`
	// SplitChains lists the fragment chains of every split task.
	SplitChains    []SplitChain `json:"splitChains,omitempty"`
	NumSplit       int          `json:"numSplit"`
	NumPreAssigned int          `json:"numPreAssigned"`
	// Events is the full decision trace of the run.
	Events []obs.Event `json:"events,omitempty"`
}

// BoundInfo is the parametric-bound context: what the thresholds were and
// where the set's utilization stood relative to them.
type BoundInfo struct {
	TotalU      float64 `json:"totalU"`
	NormalizedU float64 `json:"normalizedU"`
	MaxU        float64 `json:"maxU"`
	Theta       float64 `json:"theta"`
	LightThr    float64 `json:"lightThreshold"`
	RMTSCap     float64 `json:"rmtsCap"`
	Light       bool    `json:"light"`
	Implicit    bool    `json:"implicit"`
	Harmonic    bool    `json:"harmonic"`
	BestBound   string  `json:"bestBound"`
	BestValue   float64 `json:"bestBoundValue"`
	// Lambda is the effective RM-TS bound min(Λ(τ), 2Θ/(1+Θ)) of the
	// configured PUB; only set for RM-TS.
	Lambda float64 `json:"lambda,omitempty"`
}

// TaskRef identifies a task of the RM-sorted working set with its
// parameters.
type TaskRef struct {
	Index int     `json:"index"`
	Name  string  `json:"name,omitempty"`
	C     int64   `json:"c"`
	T     int64   `json:"t"`
	D     int64   `json:"d"`
	U     float64 `json:"u"`
}

// FragmentInfo is the final unplaced fragment at the moment of failure:
// remaining execution RemC with synthetic deadline Deadline (T minus the
// predecessors' accumulated response, equation (1)).
type FragmentInfo struct {
	Part     int   `json:"part"`
	RemC     int64 `json:"remC"`
	T        int64 `json:"t"`
	Deadline int64 `json:"deadline"`
	// FromTrace reports whether the fragment shape was recovered from the
	// decision trace (exact) or reconstructed as the whole task (the failure
	// happened before any split).
	FromTrace bool `json:"fromTrace"`
}

// Resident is one subtask hosted by a processor.
type Resident struct {
	Task     int   `json:"task"`
	Part     int   `json:"part"`
	C        int64 `json:"c"`
	T        int64 `json:"t"`
	Deadline int64 `json:"deadline"`
}

// ProcInfo is one processor's state at the end of the run plus, on
// rejection, the recomputed admission evidence for the final fragment.
type ProcInfo struct {
	Proc        int        `json:"proc"`
	Utilization float64    `json:"u"`
	PreAssigned int        `json:"preAssigned"` // task index or -1
	Residents   []Resident `json:"residents,omitempty"`
	// Evidence is the "what if the fragment were forced here" probe; only
	// present on rejected runs.
	Evidence *ProcEvidence `json:"evidence,omitempty"`
}

// ProcEvidence shows why the final fragment did not fit on one processor,
// in the terms of the algorithm's own admission test.
type ProcEvidence struct {
	// OwnResponse / OwnVerdict: the fragment's RTA fixed point against its
	// synthetic deadline with the processor's higher-priority residents
	// interfering (RTA-admission algorithms only).
	OwnResponse int64  `json:"ownResponse,omitempty"`
	OwnVerdict  string `json:"ownVerdict,omitempty"`
	// Blocked is the highest-priority resident whose own deadline breaks
	// when the fragment is forced on (rta.ResponseTimeExtraVerdict); nil
	// when no resident breaks.
	Blocked *BlockedResident `json:"blocked,omitempty"`
	// MaxPortion is the largest admissible prefix MaxSplit would take
	// (splitting algorithms only; 0 means the processor is full for this
	// fragment).
	MaxPortion int64 `json:"maxPortion,omitempty"`
	// HasMaxPortion distinguishes a genuine 0 portion from "not probed".
	HasMaxPortion bool `json:"hasMaxPortion,omitempty"`
	// ThresholdRoom is Θ − U(P_q), the utilization room under the
	// threshold admission (SPA/bound-based algorithms only).
	ThresholdRoom float64 `json:"thresholdRoom,omitempty"`
	HasThreshold  bool    `json:"hasThreshold,omitempty"`
	// UtilizationRoom is 1 − U(P_q) (EDF algorithms only).
	UtilizationRoom float64 `json:"utilizationRoom,omitempty"`
	HasUtilization  bool    `json:"hasUtilization,omitempty"`
}

// BlockedResident is a resident subtask whose response time exceeds its
// synthetic deadline once the fragment interferes.
type BlockedResident struct {
	Task     int    `json:"task"`
	Part     int    `json:"part"`
	C        int64  `json:"c"`
	Deadline int64  `json:"deadline"`
	Response int64  `json:"response"`
	Verdict  string `json:"verdict"`
}

// SplitChain is the fragment chain of one split task across processors.
type SplitChain struct {
	Task  int         `json:"task"`
	Parts []SplitPart `json:"parts"`
}

// SplitPart is one fragment of a split task.
type SplitPart struct {
	Part     int   `json:"part"`
	Proc     int   `json:"proc"`
	C        int64 `json:"c"`
	Deadline int64 `json:"deadline"`
	Offset   int64 `json:"offset"`
}

// Run executes alg on (ts, m) with a decision trace attached (when the
// algorithm supports one) and assembles the Explanation. The input
// algorithm value is not modified.
func Run(alg partition.Algorithm, ts task.Set, m int) *Explanation {
	tr := obs.NewTrace()
	alg = withTrace(alg, tr)
	res := alg.Partition(ts, m)
	return FromResult(alg, res, tr, ts, m)
}

// withTrace returns a copy of alg with the decision trace attached, or alg
// unchanged when it has no trace support.
func withTrace(alg partition.Algorithm, tr *obs.Trace) partition.Algorithm {
	switch a := alg.(type) {
	case partition.RMTSLight:
		a.Trace = tr
		return a
	case *partition.RMTS:
		c := *a
		c.Trace = tr
		return &c
	case partition.SPA1:
		a.Trace = tr
		return a
	case partition.SPA2:
		a.Trace = tr
		return a
	case partition.FirstFitRTA:
		a.Trace = tr
		return a
	case partition.WorstFitRTA:
		a.Trace = tr
		return a
	case partition.FirstFit:
		a.Trace = tr
		return a
	case partition.EDFTS:
		a.Trace = tr
		return a
	default:
		return alg
	}
}

// FromResult assembles the Explanation of an already-completed run. tr may
// be nil (the fragment shape then falls back to the whole failed task).
func FromResult(alg partition.Algorithm, res *partition.Result, tr *obs.Trace, ts task.Set, m int) *Explanation {
	a := core.Analyze(ts, m)
	e := &Explanation{
		Schema:    Schema,
		Algorithm: alg.Name(),
		Scheduler: "FP",
		N:         a.N,
		M:         a.M,
		Bound: BoundInfo{
			TotalU:      a.TotalU,
			NormalizedU: a.NormalizedU,
			MaxU:        a.MaxU,
			Theta:       a.Theta,
			LightThr:    a.LightThreshold,
			RMTSCap:     a.RMTSCap,
			Light:       a.Light,
			Implicit:    a.Implicit,
			Harmonic:    a.Harmonic,
			BestBound:   a.BestBound,
			BestValue:   a.BestBoundValue,
		},
		Events: tr.Events(),
	}
	if r, ok := alg.(*partition.RMTS); ok {
		e.Bound.Lambda = r.Lambda(ts)
	}
	if res == nil {
		e.Verdict = "rejected"
		e.Cause = partition.CauseInvalidInput.String()
		e.CauseDetail = partition.CauseInvalidInput.Describe()
		return e
	}
	if res.Scheduler == "EDF" {
		e.Scheduler = "EDF"
	}
	e.OK = res.OK
	e.Guaranteed = res.Guaranteed
	e.Reason = res.Reason
	e.NumSplit = res.NumSplit
	e.NumPreAssigned = res.NumPreAssigned
	cause := res.RejectionCause()
	e.Cause = cause.String()
	e.CauseDetail = cause.Describe()
	switch {
	case res.OK && res.Guaranteed:
		e.Verdict = "accepted"
	case res.OK:
		e.Verdict = "accepted-unguaranteed"
	default:
		e.Verdict = "rejected"
	}

	asg := res.Assignment
	if asg == nil {
		return e
	}
	sorted := asg.Set

	if res.FailedTask >= 0 && res.FailedTask < len(sorted) {
		t := sorted[res.FailedTask]
		e.FailedTask = &TaskRef{
			Index: res.FailedTask, Name: t.Name,
			C: t.C, T: t.T, D: t.Deadline(), U: t.Utilization(),
		}
		e.Fragment = finalFragment(tr, res.FailedTask, t)
	}

	e.Processors = make([]ProcInfo, len(asg.Procs))
	for q := range asg.Procs {
		pi := ProcInfo{Proc: q, Utilization: asg.Utilization(q), PreAssigned: -1}
		if q < len(asg.PreAssigned) {
			pi.PreAssigned = asg.PreAssigned[q]
		}
		for _, s := range asg.Procs[q] {
			pi.Residents = append(pi.Residents, Resident{
				Task: s.TaskIndex, Part: s.Part, C: s.C, T: s.T, Deadline: s.Deadline,
			})
		}
		if !res.OK && e.Fragment != nil && e.FailedTask != nil {
			pi.Evidence = probe(alg, asg.Procs[q], pi.Utilization, e.FailedTask.Index, e.Fragment, res.Scheduler, len(sorted))
		}
		e.Processors[q] = pi
	}

	for _, idx := range asg.SplitTasks() {
		subs, procs := asg.Subtasks(idx)
		chain := SplitChain{Task: idx}
		for k, s := range subs {
			chain.Parts = append(chain.Parts, SplitPart{
				Part: s.Part, Proc: procs[k], C: s.C, Deadline: s.Deadline, Offset: s.Offset,
			})
		}
		e.SplitChains = append(e.SplitChains, chain)
	}
	return e
}

// finalFragment recovers the shape of the failed task's last offered
// fragment from the decision trace (the last assign-attempt for that task),
// falling back to the whole task when the trace has no such record.
func finalFragment(tr *obs.Trace, failed int, t task.Task) *FragmentInfo {
	if tr != nil {
		events := tr.Events()
		for i := len(events) - 1; i >= 0; i-- {
			ev := events[i]
			if ev.Kind == obs.EvAssignAttempt && ev.Task == failed {
				return &FragmentInfo{
					Part: ev.Part, RemC: ev.C, T: ev.T, Deadline: ev.Deadline,
					FromTrace: true,
				}
			}
		}
	}
	return &FragmentInfo{Part: 1, RemC: t.C, T: t.T, Deadline: t.Deadline()}
}

// probe recomputes the rejected admission of the final fragment on one
// processor, in the vocabulary of the algorithm's own test: RTA fixed
// points and MaxSplit prefixes for the exact-test algorithms, utilization
// room for the threshold and EDF tests.
func probe(alg partition.Algorithm, list []task.Subtask, u float64, prio int, frag *FragmentInfo, scheduler string, n int) *ProcEvidence {
	if scheduler == "EDF" {
		ev := &ProcEvidence{}
		ev.UtilizationRoom = 1 - u
		ev.HasUtilization = true
		return ev
	}
	splitting := false
	rtaBased := false
	threshold := false
	switch a := alg.(type) {
	case partition.RMTSLight, *partition.RMTS:
		splitting, rtaBased = true, true
	case partition.FirstFitRTA, partition.WorstFitRTA:
		rtaBased = true
	case partition.FirstFit:
		if a.Admission == partition.AdmitRTA {
			rtaBased = true
		} else {
			threshold = true
		}
	case partition.SPA1, partition.SPA2:
		threshold = true
	}
	if threshold {
		return ProbeThreshold(u, bounds.LL(n))
	}
	if !rtaBased {
		return &ProcEvidence{}
	}
	return ProbeRTA(list, prio, frag.RemC, frag.T, frag.Deadline, splitting)
}

// ProbeThreshold builds the evidence of a utilization-threshold admission:
// the room theta − u left on a processor with utilization u. Negative room
// is exactly why the threshold said no.
func ProbeThreshold(u, theta float64) *ProcEvidence {
	return &ProcEvidence{ThresholdRoom: theta - u, HasThreshold: true}
}

// ProbeRTA recomputes the exact-RTA admission of a load (c, t, d) with
// priority key prio on one processor's priority-sorted resident list: the
// load's own fixed point against d, the highest-priority resident whose
// deadline breaks once the load interferes, and — when withMaxPortion is
// set (splitting algorithms) — the largest admissible MaxSplit prefix. The
// list must carry any analysis surcharge already (the batch explain path
// passes assignment lists, which are raw because their surcharge is zero;
// the admission service passes its surcharged resident view).
func ProbeRTA(list []task.Subtask, prio int, c, t, d task.Time, withMaxPortion bool) *ProcEvidence {
	ev := &ProcEvidence{}
	// Position the load at its priority among the residents; hp is every
	// resident that outranks it.
	pos := 0
	for pos < len(list) && list[pos].TaskIndex <= prio {
		pos++
	}
	hp := make([]rta.Interference, pos)
	for j := 0; j < pos; j++ {
		hp[j] = rta.Interference{C: list[j].C, T: list[j].T}
	}
	r, v := rta.ResponseTimeVerdict(c, hp, d)
	ev.OwnResponse = r
	ev.OwnVerdict = v.String()
	// First resident below the load whose deadline breaks once it
	// interferes.
	for i := pos; i < len(list); i++ {
		ihp := make([]rta.Interference, i)
		for j := 0; j < i; j++ {
			ihp[j] = rta.Interference{C: list[j].C, T: list[j].T}
		}
		rr, rv := rta.ResponseTimeExtraVerdict(list[i].C, ihp, c, t, list[i].Deadline)
		if rv != rta.VerdictFits {
			ev.Blocked = &BlockedResident{
				Task: list[i].TaskIndex, Part: list[i].Part,
				C: list[i].C, Deadline: list[i].Deadline,
				Response: rr, Verdict: rv.String(),
			}
			break
		}
	}
	if withMaxPortion {
		ev.MaxPortion = split.MaxPortionAt(list, prio, t, c, d)
		ev.HasMaxPortion = true
	}
	return ev
}

// AlgorithmByName constructs the named algorithm (same vocabulary as
// cmd/partition: rm-ts, rm-ts-light, spa1, spa2, ff, wf, edf-ff, edf-ts)
// using pub for RM-TS's pre-assignment bound. "auto" picks RM-TS/light for
// light sets and RM-TS otherwise, mirroring the core planner.
func AlgorithmByName(name string, pub bounds.PUB, ts task.Set) (partition.Algorithm, error) {
	if pub == nil {
		pub = bounds.Max{Bounds: core.DefaultBounds()}
	}
	switch name {
	case "auto", "":
		if ts.IsLight(bounds.LightThresholdFor(len(ts))) {
			return partition.RMTSLight{}, nil
		}
		return &partition.RMTS{PUB: pub}, nil
	case "rm-ts":
		return &partition.RMTS{PUB: pub}, nil
	case "rm-ts-light":
		return partition.RMTSLight{}, nil
	case "spa1":
		return partition.SPA1{}, nil
	case "spa2":
		return partition.SPA2{}, nil
	case "ff":
		return partition.FirstFitRTA{}, nil
	case "wf":
		return partition.WorstFitRTA{}, nil
	case "edf-ff":
		return partition.EDFFirstFit{}, nil
	case "edf-ts":
		return partition.EDFTS{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q (want auto, rm-ts, rm-ts-light, spa1, spa2, ff, wf, edf-ff, edf-ts)", name)
	}
}
