package perfdiff

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func baseFile() File {
	return File{
		Meta: &Meta{Schema: 1, GoVersion: "go1.24.0", GOMAXPROCS: 8, GitRev: "abc1234"},
		Benchmarks: []Record{
			{Name: "PartitionRMTSArena", Iterations: 80000, NsPerOp: 15866.2, BytesPerOp: 230, AllocsPerOp: 3,
				Extra: map[string]float64{"rta-iters/op": 100, "splits/op": 10}},
			{Name: "RTAProcessor", Iterations: 2e6, NsPerOp: 509.0, BytesPerOp: 403, AllocsPerOp: 4},
		},
	}
}

// TestSelfDiffClean pins the acceptance criterion: diffing a record against
// itself reports zero regressions and warnings.
func TestSelfDiffClean(t *testing.T) {
	f := baseFile()
	rep := Diff(f, f, Tolerances{})
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("self-diff not clean: %+v", rep)
	}
	for _, row := range rep.Rows {
		if row.Status != StatusOK || row.DeltaPct != 0 {
			t.Errorf("row not clean: %+v", row)
		}
	}
}

// TestDetectsAllocRegression pins the other acceptance criterion: a
// synthetic 2× allocs/op regression fails the gate even under a generous
// tolerance, and the offending row is marked FAIL.
func TestDetectsAllocRegression(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[0].AllocsPerOp *= 2
	rep := Diff(oldF, newF, Tolerances{Ns: 0.5, Bytes: 0.5, Allocs: 0.25, Extra: 0.5})
	if !rep.Failed() {
		t.Fatal("2x allocs/op regression not detected")
	}
	var failed *Row
	for i := range rep.Rows {
		if rep.Rows[i].Status == StatusFail {
			if failed != nil {
				t.Fatalf("more than one FAIL row: %+v", rep.Rows)
			}
			failed = &rep.Rows[i]
		}
	}
	if failed == nil || failed.Bench != "PartitionRMTSArena" || failed.Metric != MetricAllocs ||
		failed.DeltaPct != 100 {
		t.Fatalf("wrong FAIL row: %+v", failed)
	}
}

// TestToleranceBoundary checks growth exactly at the allowance passes and
// just beyond fails.
func TestToleranceBoundary(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[1].NsPerOp = 509.0 * 1.10 // exactly +10%
	rep := Diff(oldF, newF, Tolerances{Ns: 0.10})
	if rep.Failed() {
		t.Fatalf("growth at tolerance failed the gate: %+v", rep.Rows)
	}
	newF.Benchmarks[1].NsPerOp = 509.0 * 1.11
	if rep = Diff(oldF, newF, Tolerances{Ns: 0.10}); !rep.Failed() {
		t.Fatal("growth beyond tolerance passed the gate")
	}
}

// TestWarnOnlyDemotesRegression checks that a warn-listed metric reports
// but does not fail, the documented CI treatment of noisy timing.
func TestWarnOnlyDemotesRegression(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[1].NsPerOp *= 3
	rep := Diff(oldF, newF, Tolerances{Ns: 0.5, WarnOnly: map[string]bool{MetricNs: true}})
	if rep.Failed() {
		t.Fatalf("warn-only metric failed the gate: %+v", rep.Rows)
	}
	if rep.Warnings != 1 {
		t.Fatalf("want 1 warning, got %d", rep.Warnings)
	}
}

// TestDomainMetricGate checks the extras: a regression in a domain metric
// (rta-iters/op) fails under the extra tolerance, and a metric appearing
// from zero is flagged as +inf growth.
func TestDomainMetricGate(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[0].Extra["rta-iters/op"] = 200
	if rep := Diff(oldF, newF, Tolerances{Extra: 0.5}); !rep.Failed() {
		t.Fatal("domain metric regression passed")
	}

	oldF, newF = baseFile(), baseFile()
	newF.Benchmarks[0].Extra["bin-probes/op"] = 5
	rep := Diff(oldF, newF, Tolerances{Extra: 0.5})
	if !rep.Failed() {
		t.Fatal("metric appearing from zero passed")
	}
	for _, row := range rep.Rows {
		if row.Metric == "bin-probes/op" && !math.IsInf(row.DeltaPct, 1) {
			t.Errorf("appearing metric delta: %+v", row)
		}
	}
}

// TestMissingBenchmarksWarn checks both directions of benchmark set drift.
func TestMissingBenchmarksWarn(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks = newF.Benchmarks[:1]
	rep := Diff(oldF, newF, Tolerances{})
	if rep.Failed() || rep.Warnings != 1 {
		t.Fatalf("dropped benchmark: regressions=%d warnings=%d", rep.Regressions, rep.Warnings)
	}
	rep = Diff(newF, oldF, Tolerances{})
	if rep.Failed() || rep.Warnings != 1 {
		t.Fatalf("added benchmark: regressions=%d warnings=%d", rep.Regressions, rep.Warnings)
	}
}

// TestImprovementsPass: shrinking metrics never trip the gate.
func TestImprovementsPass(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[0].NsPerOp /= 2
	newF.Benchmarks[0].AllocsPerOp = 0
	newF.Benchmarks[0].Extra["splits/op"] = 1
	if rep := Diff(oldF, newF, Tolerances{}); rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("improvement flagged: %+v", rep)
	}
}

// TestRenderAligned smoke-checks the table: header present, metadata
// attribution, aligned columns, summary line.
func TestRenderAligned(t *testing.T) {
	oldF, newF := baseFile(), baseFile()
	newF.Benchmarks[0].AllocsPerOp = 6
	rep := Diff(oldF, newF, Tolerances{Allocs: 0.1})
	var buf bytes.Buffer
	rep.Render(&buf)
	out := buf.String()
	for _, want := range []string{"benchmark", "allocs/op", "FAIL", "+100.0%",
		"go1.24.0/8cpu @abc1234", "1 regressions"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	status := strings.Index(lines[1], "status")
	if status < 0 {
		t.Fatalf("no header: %s", lines[1])
	}
}

// TestParseCommittedShape checks the parser against both record shapes: the
// pre-metadata committed baseline (benchmarks only) and the new form with
// meta.
func TestParseCommittedShape(t *testing.T) {
	legacy := []byte(`{"benchmarks":[{"name":"X","iterations":10,"ns_per_op":1.5,"bytes_per_op":2,"allocs_per_op":3,"extra":{"splits/op":4}}]}`)
	f, err := Parse(legacy)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta != nil || f.Benchmarks[0].Extra["splits/op"] != 4 {
		t.Fatalf("legacy parse: %+v", f)
	}
	if f.Meta.String() != "" {
		t.Fatalf("nil meta renders %q", f.Meta.String())
	}

	withMeta := []byte(`{"meta":{"schema":1,"go_version":"go1.24.0","gomaxprocs":4,"git_rev":"deadbee"},"benchmarks":[{"name":"X","iterations":1,"ns_per_op":1,"bytes_per_op":1,"allocs_per_op":1}]}`)
	f, err = Parse(withMeta)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta == nil || f.Meta.GitRev != "deadbee" {
		t.Fatalf("meta parse: %+v", f.Meta)
	}

	for name, bad := range map[string]string{
		"empty":     `{}`,
		"no name":   `{"benchmarks":[{"iterations":1}]}`,
		"not json":  `hello`,
		"wrong top": `[1,2,3]`,
	} {
		if _, err := Parse([]byte(bad)); err == nil {
			t.Errorf("%s: parse accepted invalid record", name)
		}
	}
}

// TestLoad round-trips through the filesystem and reports unreadable paths.
func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":[{"name":"X"}]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("Load accepted a missing file")
	}
}
