package perfdiff

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Standard metric names. Domain metrics keep the names the benchmarks
// report them under (always "<something>/op").
const (
	MetricNs     = "ns/op"
	MetricBytes  = "B/op"
	MetricAllocs = "allocs/op"
)

// Tolerances configures the gate: the allowed fractional growth per metric
// class (0.10 = +10% passes, more fails) and the set of metrics demoted to
// warn-only. Timing is inherently noisy in CI, so ns/op typically rides in
// WarnOnly while allocs/op — deterministic for a deterministic workload —
// gates hard at a small tolerance.
type Tolerances struct {
	// Ns, Bytes, Allocs and Extra are the fractional growth allowances for
	// ns/op, B/op, allocs/op and the domain metrics respectively.
	Ns     float64
	Bytes  float64
	Allocs float64
	Extra  float64
	// WarnOnly metrics report regressions as warnings without failing the
	// gate.
	WarnOnly map[string]bool
}

// tolerance returns the growth allowance for a metric name.
func (t Tolerances) tolerance(metric string) float64 {
	switch metric {
	case MetricNs:
		return t.Ns
	case MetricBytes:
		return t.Bytes
	case MetricAllocs:
		return t.Allocs
	default:
		return t.Extra
	}
}

// Row statuses, in increasing severity.
const (
	StatusOK      = "ok"
	StatusMissing = "missing"
	StatusWarn    = "warn"
	StatusFail    = "FAIL"
)

// Row is one compared metric of one benchmark.
type Row struct {
	Bench  string
	Metric string
	Old    float64
	New    float64
	// DeltaPct is the percentage change from Old to New; +Inf when a
	// metric appears from zero.
	DeltaPct float64
	// Tolerance is the fractional allowance the row was judged under.
	Tolerance float64
	Status    string
}

// Report is the outcome of diffing two bench records.
type Report struct {
	OldMeta, NewMeta *Meta
	Rows             []Row
	Regressions      int
	Warnings         int
}

// Failed reports whether the gate should reject (any hard regression).
func (r Report) Failed() bool { return r.Regressions > 0 }

// Diff compares every metric of every benchmark present in both records,
// in the new record's order. Benchmarks present in only one record produce
// a warning row (renames and benchmark additions should not silently
// disable the gate). A metric regresses when new > old·(1+tolerance); a
// regression on a warn-only metric counts as a warning, anything else as a
// hard regression.
func Diff(oldF, newF File, tol Tolerances) Report {
	rep := Report{OldMeta: oldF.Meta, NewMeta: newF.Meta}
	oldBy := make(map[string]Record, len(oldF.Benchmarks))
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	seen := make(map[string]bool, len(newF.Benchmarks))
	for _, nb := range newF.Benchmarks {
		seen[nb.Name] = true
		ob, ok := oldBy[nb.Name]
		if !ok {
			rep.Rows = append(rep.Rows, Row{Bench: nb.Name, Metric: "-", Status: StatusMissing})
			rep.Warnings++
			continue
		}
		for _, m := range metricsOf(ob, nb) {
			row := compare(nb.Name, m.name, m.old, m.new, tol)
			switch row.Status {
			case StatusFail:
				rep.Regressions++
			case StatusWarn:
				rep.Warnings++
			}
			rep.Rows = append(rep.Rows, row)
		}
	}
	for _, ob := range oldF.Benchmarks {
		if !seen[ob.Name] {
			rep.Rows = append(rep.Rows, Row{Bench: ob.Name, Metric: "-", Status: StatusMissing})
			rep.Warnings++
		}
	}
	return rep
}

type metricPair struct {
	name     string
	old, new float64
}

// metricsOf lists the comparable metrics of a benchmark pair: the three
// standard metrics, then the union of the domain metrics sorted by name
// (a metric missing on one side compares against 0, which flags silent
// metric removal as a large negative delta and silent appearance as
// growth from zero).
func metricsOf(ob, nb Record) []metricPair {
	pairs := []metricPair{
		{MetricNs, ob.NsPerOp, nb.NsPerOp},
		{MetricBytes, float64(ob.BytesPerOp), float64(nb.BytesPerOp)},
		{MetricAllocs, float64(ob.AllocsPerOp), float64(nb.AllocsPerOp)},
	}
	names := make(map[string]bool, len(ob.Extra)+len(nb.Extra))
	for k := range ob.Extra {
		names[k] = true
	}
	for k := range nb.Extra {
		names[k] = true
	}
	extras := make([]string, 0, len(names))
	for k := range names {
		extras = append(extras, k)
	}
	sort.Strings(extras)
	for _, k := range extras {
		pairs = append(pairs, metricPair{k, ob.Extra[k], nb.Extra[k]})
	}
	return pairs
}

func compare(bench, metric string, oldV, newV float64, tol Tolerances) Row {
	row := Row{Bench: bench, Metric: metric, Old: oldV, New: newV,
		Tolerance: tol.tolerance(metric), Status: StatusOK}
	switch {
	case oldV == 0 && newV == 0:
		row.DeltaPct = 0
	case oldV == 0:
		row.DeltaPct = math.Inf(1)
	default:
		row.DeltaPct = (newV - oldV) / oldV * 100
	}
	if newV > oldV*(1+row.Tolerance) && newV-oldV > 1e-9 {
		if tol.WarnOnly[metric] {
			row.Status = StatusWarn
		} else {
			row.Status = StatusFail
		}
	}
	return row
}

// Render writes the report as an aligned table plus a one-line summary.
func (r Report) Render(w io.Writer) {
	if s := r.OldMeta.String() + " → " + r.NewMeta.String(); s != " → " {
		fmt.Fprintf(w, "capture: %s\n", s)
	}
	rows := make([][]string, 0, len(r.Rows)+1)
	rows = append(rows, []string{"benchmark", "metric", "old", "new", "delta", "tol", "status"})
	for _, row := range r.Rows {
		if row.Status == StatusMissing {
			rows = append(rows, []string{row.Bench, "-", "-", "-", "-", "-", "missing on one side"})
			continue
		}
		rows = append(rows, []string{
			row.Bench, row.Metric,
			formatValue(row.Old), formatValue(row.New),
			formatDelta(row.DeltaPct),
			fmt.Sprintf("+%.0f%%", row.Tolerance*100),
			row.Status,
		})
	}
	widths := make([]int, len(rows[0]))
	for _, cells := range rows {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	for _, cells := range rows {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	fmt.Fprintf(w, "%d metrics compared, %d regressions, %d warnings\n",
		len(r.Rows), r.Regressions, r.Warnings)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.2f", v)
}

func formatDelta(pct float64) string {
	if math.IsInf(pct, 1) {
		return "+inf"
	}
	return fmt.Sprintf("%+.1f%%", pct)
}
