// Package perfdiff reads the machine-readable hot-path benchmark records
// ci.sh emits (BENCH_hotpath.json) and diffs two of them under per-metric
// tolerances, so a perf regression in the RTA/partitioning hot path fails
// CI instead of landing silently. The comparison covers the three standard
// benchmark metrics (ns/op, B/op, allocs/op) and every domain metric the
// benchmarks report via ReportMetric (rta-iters/op, warm-starts/op,
// splits/op, ...).
package perfdiff

import (
	"encoding/json"
	"fmt"
	"os"
)

// Meta identifies the environment a bench record was captured in, so
// records are attributable when they disagree. Absent in records written
// before the metadata was introduced; every field is optional.
type Meta struct {
	Schema     int    `json:"schema,omitempty"`
	GoVersion  string `json:"go_version,omitempty"`
	GOMAXPROCS int    `json:"gomaxprocs,omitempty"`
	GitRev     string `json:"git_rev,omitempty"`
}

// String renders the metadata as a short attribution suffix, "" when empty.
func (m *Meta) String() string {
	if m == nil {
		return ""
	}
	s := m.GoVersion
	if m.GOMAXPROCS > 0 {
		s += fmt.Sprintf("/%dcpu", m.GOMAXPROCS)
	}
	if m.GitRev != "" {
		s += " @" + m.GitRev
	}
	return s
}

// Record is one benchmark's measurements, mirroring the field names
// bench_json_test.go writes.
type Record struct {
	Name        string             `json:"name"`
	Iterations  int                `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// File is one bench record: optional capture metadata plus the benchmark
// list.
type File struct {
	Meta       *Meta    `json:"meta,omitempty"`
	Benchmarks []Record `json:"benchmarks"`
}

// Parse decodes a bench record, rejecting unknown top-level shapes and
// records without benchmarks.
func Parse(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, err
	}
	if len(f.Benchmarks) == 0 {
		return File{}, fmt.Errorf("no benchmarks in record")
	}
	for i, b := range f.Benchmarks {
		if b.Name == "" {
			return File{}, fmt.Errorf("benchmark %d has no name", i)
		}
	}
	return f, nil
}

// Load reads and parses the bench record at path.
func Load(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	f, err := Parse(data)
	if err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}
