package sim

import (
	"math/rand"
	"testing"

	"repro/internal/rta"
	"repro/internal/task"
)

func uni(tasks ...task.Task) *task.Assignment {
	ts := task.Set(tasks)
	sorted := ts.Clone()
	sorted.SortRM()
	a := task.NewAssignment(sorted, 1)
	for i, t := range sorted {
		a.Add(0, task.Whole(i, t))
	}
	return a
}

func TestSimulateSimpleSchedulable(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 1, T: 4}, task.Task{Name: "b", C: 2, T: 8})
	rep, err := Simulate(a, Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	if rep.Horizon != 8 {
		t.Errorf("horizon = %d, want hyperperiod 8", rep.Horizon)
	}
	// Over one hyperperiod: a runs 2 jobs, b runs 1.
	if rep.Completed != 3 {
		t.Errorf("completed = %d, want 3", rep.Completed)
	}
	if rep.WorstResponse[0] != 1 {
		t.Errorf("R(a) observed = %d, want 1", rep.WorstResponse[0])
	}
	if rep.WorstResponse[1] != 3 {
		t.Errorf("R(b) observed = %d, want 3", rep.WorstResponse[1])
	}
}

func TestSimulateDetectsMiss(t *testing.T) {
	// U = 0.5 + 0.5 + something: make it infeasible: C=3,T=4 and C=2,T=4.
	a := uni(task.Task{Name: "a", C: 3, T: 4}, task.Task{Name: "b", C: 2, T: 4})
	rep, err := Simulate(a, Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Fatal("overload not detected")
	}
	if rep.Misses[0].Task != 1 {
		t.Errorf("missed task = %d, want 1 (lower priority)", rep.Misses[0].Task)
	}
}

func TestSimulateContinueOnMissCountsAll(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 3, T: 4}, task.Task{Name: "b", C: 2, T: 4})
	rep, err := Simulate(a, Options{StopOnMiss: false, Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Misses) < 5 {
		t.Errorf("continue mode found only %d misses", len(rep.Misses))
	}
}

func TestSimulateFullUtilizationHarmonic(t *testing.T) {
	a := uni(
		task.Task{Name: "a", C: 2, T: 4},
		task.Task{Name: "b", C: 2, T: 8},
		task.Task{Name: "c", C: 4, T: 16},
	)
	rep, err := Simulate(a, Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("100%% harmonic set missed: %v", rep.Misses)
	}
	if rep.Busy[0] != rep.Horizon {
		t.Errorf("processor idle %d ticks in a 100%% utilization set", rep.Horizon-rep.Busy[0])
	}
}

func TestSplitTaskPrecedence(t *testing.T) {
	// Task 0 split across P0 (body, 3 ticks) and P1 (tail, 2 ticks); a
	// second task on P1 with higher priority.
	set := task.Set{{Name: "hi", C: 2, T: 5}, {Name: "split", C: 5, T: 10}}
	set.SortRM()
	a := task.NewAssignment(set, 2)
	a.Add(0, task.Subtask{TaskIndex: 1, Part: 1, C: 3, T: 10, Deadline: 10, Offset: 0, Tail: false})
	a.Add(1, task.Subtask{TaskIndex: 1, Part: 2, C: 2, T: 10, Deadline: 7, Offset: 3, Tail: true})
	a.Add(1, task.Whole(0, set[0]))
	rep, err := Simulate(a, Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	// Tail cannot start before its body finishes at t=3; on P1 the
	// higher-priority task runs [0,2] and [5,7]; tail runs [3,5] → job
	// response = 5.
	if rep.WorstResponse[1] != 5 {
		t.Errorf("split job response = %d, want 5", rep.WorstResponse[1])
	}
	// The body alone responds at 3.
	if rep.WorstFragmentResponse[1][0] != 3 {
		t.Errorf("body response = %d, want 3", rep.WorstFragmentResponse[1][0])
	}
}

func TestSplitChainNeverOverlapsItself(t *testing.T) {
	// Three-fragment chain across three processors; verify no miss and a
	// response equal to the serial execution when processors are dedicated.
	set := task.Set{{Name: "w", C: 9, T: 12}}
	a := task.NewAssignment(set, 3)
	a.Add(0, task.Subtask{TaskIndex: 0, Part: 1, C: 3, T: 12, Deadline: 12, Offset: 0})
	a.Add(1, task.Subtask{TaskIndex: 0, Part: 2, C: 3, T: 12, Deadline: 9, Offset: 3})
	a.Add(2, task.Subtask{TaskIndex: 0, Part: 3, C: 3, T: 12, Deadline: 6, Offset: 6, Tail: true})
	rep, err := Simulate(a, Options{Horizon: 120, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
	if rep.WorstResponse[0] != 9 {
		t.Errorf("serial chain response = %d, want 9", rep.WorstResponse[0])
	}
	// Each processor busy exactly 3 of every 12 ticks.
	for q, busy := range rep.Busy {
		if busy != 30 {
			t.Errorf("P%d busy %d, want 30", q, busy)
		}
	}
}

func TestOffsetsDelayFirstRelease(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 1, T: 4})
	rep, err := Simulate(a, Options{Horizon: 8, Offsets: []task.Time{3}})
	if err != nil {
		t.Fatal(err)
	}
	// Releases at 3 and 7 within horizon 8; the job at 7 completes at 8 =
	// horizon boundary, so only the first is guaranteed counted.
	if rep.Released != 2 {
		t.Errorf("released = %d, want 2", rep.Released)
	}
	if rep.Completed < 1 {
		t.Errorf("completed = %d", rep.Completed)
	}
}

func TestBadOffsetsLength(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 1, T: 4})
	if _, err := Simulate(a, Options{Offsets: []task.Time{1, 2}}); err == nil {
		t.Error("offset length mismatch accepted")
	}
}

func TestInvalidAssignmentRejected(t *testing.T) {
	set := task.Set{{Name: "a", C: 2, T: 4}}
	a := task.NewAssignment(set, 1) // task never assigned
	if _, err := Simulate(a, Options{}); err == nil {
		t.Error("invalid assignment accepted")
	}
}

func TestHorizonCapAppliesToHugeHyperperiods(t *testing.T) {
	a := uni(
		task.Task{Name: "a", C: 1, T: 1009},
		task.Task{Name: "b", C: 1, T: 1013},
		task.Task{Name: "c", C: 1, T: 1019},
		task.Task{Name: "d", C: 1, T: 1021},
	)
	rep, err := Simulate(a, Options{HorizonCap: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Horizon != 5000 {
		t.Errorf("horizon = %d, want capped 5000", rep.Horizon)
	}
}

func TestIncompleteJobAtHorizonDeadlineIsMiss(t *testing.T) {
	// Single task with C=T=10 but competing with a same-priority... use
	// two tasks that overload so the second never finishes by its deadline
	// at the horizon edge.
	a := uni(task.Task{Name: "a", C: 8, T: 10}, task.Task{Name: "b", C: 8, T: 10})
	rep, err := Simulate(a, Options{Horizon: 10, StopOnMiss: false})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Ok() {
		t.Error("incomplete job with in-horizon deadline not reported")
	}
}

func TestObservedResponseNeverExceedsRTABound(t *testing.T) {
	// Property: for random RTA-schedulable uniprocessor sets, simulated
	// worst response ≤ RTA response (RTA is a sound upper bound; under
	// synchronous release it is tight for the lowest-priority task).
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(4)
		var ts task.Set
		for i := 0; i < n; i++ {
			T := task.Time(4+r.Intn(12)) * 2
			C := task.Time(1 + r.Intn(int(T)/3))
			ts = append(ts, task.Task{Name: "x", C: C, T: T})
		}
		sorted := ts.Clone()
		sorted.SortRM()
		a := task.NewAssignment(sorted, 1)
		for i, tk := range sorted {
			a.Add(0, task.Whole(i, tk))
		}
		if !rtaSchedulable(a) {
			continue
		}
		rep, err := Simulate(a, Options{HorizonCap: 2_000_000, StopOnMiss: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d: RTA-schedulable set missed in simulation: %v\n%s", trial, rep.Misses, a)
		}
		for i := range sorted {
			bound, ok := rtaResponse(a, i)
			if !ok {
				t.Fatalf("trial %d: inconsistent RTA", trial)
			}
			if rep.WorstResponse[i] > bound {
				t.Fatalf("trial %d: observed R%d=%d exceeds RTA bound %d", trial, i, rep.WorstResponse[i], bound)
			}
		}
		// Synchronous release: the lowest-priority task's RTA bound is
		// attained exactly on the first job.
		last := len(sorted) - 1
		bound, _ := rtaResponse(a, last)
		if rep.WorstResponse[last] != bound {
			t.Fatalf("trial %d: lowest-priority observed %d ≠ exact RTA %d", trial, rep.WorstResponse[last], bound)
		}
	}
}

func rtaSchedulable(a *task.Assignment) bool {
	return rta.ProcessorSchedulable(a.Procs[0])
}

func rtaResponse(a *task.Assignment, idx int) (task.Time, bool) {
	for i, s := range a.Procs[0] {
		if s.TaskIndex == idx {
			return rta.SubtaskResponse(a.Procs[0], i)
		}
	}
	return 0, false
}

func TestSimulateSetWrapper(t *testing.T) {
	ts := task.Set{{Name: "b", C: 2, T: 8}, {Name: "a", C: 1, T: 4}}
	rep, err := SimulateSet(ts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
}

func TestEDFOptimalityOnUniprocessor(t *testing.T) {
	// Property: any implicit-deadline set with U ≤ 1 never misses under
	// EDF on one processor (EDF optimality); above 1 it must miss.
	r := rand.New(rand.NewSource(300))
	under, over := 0, 0
	for trial := 0; trial < 80; trial++ {
		n := 2 + r.Intn(4)
		var ts task.Set
		for i := 0; i < n; i++ {
			T := task.Time(4+r.Intn(12)) * 2
			ts = append(ts, task.Task{Name: "e", C: 1 + task.Time(r.Int63n(int64(T)/2)), T: T})
		}
		sorted := ts.Clone()
		sorted.SortRM()
		a := task.NewAssignment(sorted, 1)
		for i, tk := range sorted {
			a.Add(0, task.Whole(i, tk))
		}
		u := sorted.TotalUtilization()
		rep, err := Simulate(a, Options{Policy: PolicyEDF, StopOnMiss: true, HorizonCap: 2_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if u <= 1.0 {
			under++
			if !rep.Ok() {
				t.Fatalf("trial %d: EDF missed at U=%.4f ≤ 1: %v\n%v", trial, u, rep.Misses, sorted)
			}
		} else {
			over++
			if rep.Ok() {
				t.Fatalf("trial %d: EDF survived U=%.4f > 1 over the hyperperiod", trial, u)
			}
		}
	}
	if under < 15 || over < 15 {
		t.Errorf("weak coverage: %d under, %d over", under, over)
	}
}
