package sim

import (
	"strings"
	"testing"

	"repro/internal/task"
)

func TestDispatchOverheadCharged(t *testing.T) {
	// Two tasks alternating on one processor: every dispatch switch costs
	// 1 tick. Without overhead, (2,8) + (2,8) is trivially schedulable;
	// the overhead shows up in Busy and Overhead.
	a := uni(task.Task{Name: "a", C: 2, T: 8}, task.Task{Name: "b", C: 2, T: 8})
	noOv, err := Simulate(a, Options{Horizon: 80})
	if err != nil {
		t.Fatal(err)
	}
	withOv, err := Simulate(a, Options{Horizon: 80, DispatchOverhead: 1})
	if err != nil {
		t.Fatal(err)
	}
	if withOv.Overhead == 0 {
		t.Fatal("no overhead charged")
	}
	if withOv.Busy[0] <= noOv.Busy[0] {
		t.Errorf("busy with overhead %d not above %d", withOv.Busy[0], noOv.Busy[0])
	}
	if !withOv.Ok() {
		t.Errorf("1-tick overhead should still fit at 50%% base load: %v", withOv.Misses)
	}
	// Per hyperperiod of 8: two dispatches (a then b) → 2 ticks, 10 periods.
	if withOv.Overhead != 20 {
		t.Errorf("overhead = %d, want 20 (2 switches × 10 hyperperiods)", withOv.Overhead)
	}
}

func TestDispatchOverheadCanCauseMisses(t *testing.T) {
	// A set schedulable at zero overhead misses once switches cost enough.
	a := uni(task.Task{Name: "a", C: 4, T: 8}, task.Task{Name: "b", C: 3, T: 8})
	clean, err := Simulate(a, Options{Horizon: 80})
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Ok() {
		t.Fatal("base set should be schedulable")
	}
	loaded, err := Simulate(a, Options{Horizon: 80, DispatchOverhead: 1, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ok() {
		t.Error("87.5% base + 2 ticks overhead per period should miss")
	}
}

func TestMigrationOverheadChargedPerFragment(t *testing.T) {
	set := task.Set{{Name: "w", C: 6, T: 12}}
	a := task.NewAssignment(set, 2)
	a.Add(0, task.Subtask{TaskIndex: 0, Part: 1, C: 3, T: 12, Deadline: 12, Offset: 0})
	a.Add(1, task.Subtask{TaskIndex: 0, Part: 2, C: 3, T: 12, Deadline: 9, Offset: 3, Tail: true})
	rep, err := Simulate(a, Options{Horizon: 120, MigrationOverhead: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 10 jobs, one migration each → 20 ticks.
	if rep.Overhead != 20 {
		t.Errorf("overhead = %d, want 20", rep.Overhead)
	}
	if !rep.Ok() {
		t.Errorf("plenty of slack, but missed: %v", rep.Misses)
	}
}

func TestTimelineRecording(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 2, T: 4}, task.Task{Name: "b", C: 2, T: 8})
	rep, err := Simulate(a, Options{Horizon: 8, RecordTimeline: true, TimelineCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 1, 0, 0, -1, -1}
	if len(rep.Timeline) != 1 {
		t.Fatalf("timeline for %d processors", len(rep.Timeline))
	}
	for i, w := range want {
		if rep.Timeline[0][i] != w {
			t.Fatalf("timeline = %v, want %v", rep.Timeline[0], want)
		}
	}
	g := rep.Gantt()
	if !strings.Contains(g, "0011 00..") && !strings.Contains(g, "001100..") {
		t.Errorf("Gantt rendering unexpected: %q", g)
	}
}

func TestTimelineMultiProcessorSplit(t *testing.T) {
	set := task.Set{{Name: "hi", C: 2, T: 5}, {Name: "split", C: 5, T: 10}}
	set.SortRM()
	a := task.NewAssignment(set, 2)
	a.Add(0, task.Subtask{TaskIndex: 1, Part: 1, C: 3, T: 10, Deadline: 10, Offset: 0, Tail: false})
	a.Add(1, task.Subtask{TaskIndex: 1, Part: 2, C: 2, T: 10, Deadline: 7, Offset: 3, Tail: true})
	a.Add(1, task.Whole(0, set[0]))
	rep, err := Simulate(a, Options{Horizon: 10, RecordTimeline: true, TimelineCap: 10})
	if err != nil {
		t.Fatal(err)
	}
	// P0: body of τ1 in [0,3); P1: τ0 [0,2), tail [3,5) (preempted order:
	// τ0 first, tail arrives at 3 with higher priority... τ1 > τ0 index →
	// tail has LOWER priority than τ0 here; τ0 runs [0,2), tail [3,5),
	// τ0' [5,7).
	if rep.Timeline[0][0] != 1 || rep.Timeline[0][2] != 1 || rep.Timeline[0][3] != -1 {
		t.Errorf("P0 timeline = %v", rep.Timeline[0])
	}
	if rep.Timeline[1][0] != 0 || rep.Timeline[1][3] != 1 {
		t.Errorf("P1 timeline = %v", rep.Timeline[1])
	}
	if rep.Gantt() == "" {
		t.Error("empty Gantt despite recording")
	}
}

func TestGanttEmptyWithoutRecording(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 1, T: 4})
	rep, err := Simulate(a, Options{Horizon: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Gantt() != "" {
		t.Error("Gantt produced without recording")
	}
}

func TestTimelineCapDefaultsAndClamp(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 1, T: 4})
	rep, err := Simulate(a, Options{Horizon: 16, RecordTimeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Timeline[0]); got != 16 {
		t.Errorf("timeline length %d, want clamped to horizon 16", got)
	}
}

func TestOverheadZeroByDefault(t *testing.T) {
	a := uni(task.Task{Name: "a", C: 2, T: 4})
	rep, err := Simulate(a, Options{Horizon: 40})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overhead != 0 {
		t.Errorf("default overhead = %d", rep.Overhead)
	}
}
