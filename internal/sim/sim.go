// Package sim is a discrete-event simulator for the execution model of the
// paper's §II: M processors, each running preemptive fixed-priority (RMS)
// scheduling over the (sub)tasks a partitioning algorithm assigned to it,
// with split tasks executing their fragments in precedence order across
// processors — fragment k+1 becomes ready exactly when fragment k
// completes, on whatever processor hosts it.
//
// The simulator is the repository's empirical oracle: a successful
// partitioning (Lemma 4) must never produce a deadline miss, and observed
// response times must stay below the RTA bounds. Time is integer ticks;
// all jobs of a task are released strictly periodically, synchronously at
// t = 0 by default (per-task offsets are supported for robustness tests).
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"strings"

	"repro/internal/task"
)

// Miss records a deadline miss.
type Miss struct {
	// Task is the RM-sorted index of the task whose job missed.
	Task int
	// Release is the absolute release time of the missed job.
	Release task.Time
	// At is the time the miss was detected (the absolute deadline, or the
	// late completion instant).
	At task.Time
}

func (m Miss) String() string {
	return fmt.Sprintf("task %d released at %d missed at %d", m.Task, m.Release, m.At)
}

// Report summarizes a simulation run.
type Report struct {
	// Horizon is the simulated duration in ticks.
	Horizon task.Time
	// Misses lists detected deadline misses (at most one when
	// StopOnMiss).
	Misses []Miss
	// Completed counts task jobs (full fragment chains) that completed.
	Completed int64
	// Released counts task jobs released.
	Released int64
	// Preemptions counts events where a running fragment was displaced by
	// a higher-priority arrival on its processor.
	Preemptions int64
	// WorstResponse maps task index to the largest observed job response
	// time (completion − release) over completed jobs.
	WorstResponse map[int]task.Time
	// WorstFragmentResponse maps task index to, per fragment part (1-based
	// position in the slice), the largest observed fragment response
	// relative to the *job's* release. Tail entries equal the job response.
	WorstFragmentResponse map[int][]task.Time
	// Busy accumulates executed ticks per processor (including charged
	// overheads).
	Busy []task.Time
	// Overhead accumulates the dispatch/migration overhead ticks charged.
	Overhead task.Time
	// Timeline, when Options.RecordTimeline is set, holds for each
	// processor and tick the index of the running task (-1 when idle), up
	// to Options.TimelineCap ticks.
	Timeline [][]int
}

// Gantt renders the recorded timeline as one text row per processor, one
// character per tick: 0-9 then a-z for task indices (# beyond 35), '.' for
// idle. Returns "" when no timeline was recorded.
func (r *Report) Gantt() string {
	if len(r.Timeline) == 0 {
		return ""
	}
	var b strings.Builder
	for q, row := range r.Timeline {
		fmt.Fprintf(&b, "P%-2d |", q)
		for _, idx := range row {
			b.WriteByte(taskGlyph(idx))
		}
		b.WriteString("|\n")
	}
	return b.String()
}

func taskGlyph(idx int) byte {
	switch {
	case idx < 0:
		return '.'
	case idx < 10:
		return byte('0' + idx)
	case idx < 36:
		return byte('a' + idx - 10)
	default:
		return '#'
	}
}

// Ok reports whether the run saw no deadline miss.
func (r *Report) Ok() bool { return len(r.Misses) == 0 }

// Policy selects the per-processor scheduling policy.
type Policy int

const (
	// PolicyFP is preemptive fixed-priority scheduling (RM order via task
	// indices) — the paper's model.
	PolicyFP Policy = iota
	// PolicyEDF is preemptive earliest-deadline-first per processor, used
	// by the partitioned-EDF baselines. Split tasks are not supported
	// under EDF (the paper's splitting theory is fixed-priority).
	PolicyEDF
)

func (p Policy) String() string {
	switch p {
	case PolicyFP:
		return "FP"
	case PolicyEDF:
		return "EDF"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Options configures a simulation run.
type Options struct {
	// Policy selects the per-processor scheduler (default PolicyFP).
	Policy Policy
	// Horizon is the simulated duration. Zero means the task set's
	// hyperperiod, saturated and then capped by HorizonCap.
	Horizon task.Time
	// HorizonCap bounds the default hyperperiod horizon (ignored when
	// Horizon is set explicitly). Zero means 10_000_000 ticks.
	HorizonCap task.Time
	// Offsets optionally gives each task a first-release offset; nil means
	// synchronous release at 0 (the critical instant for uniprocessor RM).
	Offsets []task.Time
	// StopOnMiss aborts the run at the first detected deadline miss
	// (default behaviour when true). When false, the missed job's
	// remaining fragments are discarded and the simulation continues, so
	// all misses over the horizon are counted.
	StopOnMiss bool
	// DispatchOverhead charges this many ticks whenever a processor
	// switches to a different fragment job than it last dispatched (a
	// context switch). The paper's analysis assumes zero overhead, as is
	// standard; this knob supports the overhead-sensitivity experiment
	// that the related-work debate on splitting overheads motivates.
	DispatchOverhead task.Time
	// MigrationOverhead charges this many ticks when a split task's
	// fragment k ≥ 2 activates (its job state migrates to another
	// processor).
	MigrationOverhead task.Time
	// RecordTimeline enables Report.Timeline: a per-processor, per-tick
	// record of the running task, capped at TimelineCap ticks.
	RecordTimeline bool
	// TimelineCap bounds the recorded timeline length (zero: 512 ticks).
	TimelineCap task.Time
}

const defaultHorizonCap = 10_000_000

// Simulate runs the assignment under the model of §II and returns a report.
// The assignment must be structurally valid (task.Assignment.Validate);
// invalid input returns an error rather than panicking.
func Simulate(asg *task.Assignment, opt Options) (*Report, error) {
	if err := asg.Validate(); err != nil {
		return nil, fmt.Errorf("sim: invalid assignment: %w", err)
	}
	horizon := opt.Horizon
	if horizon <= 0 {
		hcap := opt.HorizonCap
		if hcap <= 0 {
			hcap = defaultHorizonCap
		}
		horizon = asg.Set.Hyperperiod()
		if horizon > hcap || horizon == math.MaxInt64 {
			horizon = hcap
		}
	}
	if opt.Offsets != nil && len(opt.Offsets) != len(asg.Set) {
		return nil, fmt.Errorf("sim: %d offsets for %d tasks", len(opt.Offsets), len(asg.Set))
	}
	// Under EDF, a fragment job's priority key is its own absolute window
	// deadline (release + true ready delay + window budget); see the
	// chainStage key computation below.

	s := newState(asg, opt, horizon)
	s.run()
	return s.report, nil
}

// chainStage locates one fragment of a task: the processor hosting it, its
// execution demand, and (for EDF) its relative window deadline from the
// job's release.
type chainStage struct {
	proc int
	c    task.Time
	part int
	// relDeadline is Offset + Deadline − (T − D_task): the fragment's
	// window end measured from the job's release (equals the task deadline
	// for whole tasks and fixed-priority chains).
	relDeadline task.Time
}

// job is an active fragment-job instance on a processor's ready queue.
type job struct {
	taskIdx   int
	stage     int // position in the fragment chain
	remaining task.Time
	release   task.Time // release time of the owning task job
	key       task.Time // primary ordering key: 0 under FP, absolute deadline under EDF
	index     int       // heap index
}

// procQueue is a priority heap of jobs: ordered by key (0 for every job
// under FP, the absolute deadline under EDF), ties broken by task index
// (RM priority under FP, a deterministic tie-break under EDF).
type procQueue []*job

func (q procQueue) Len() int { return len(q) }
func (q procQueue) Less(i, j int) bool {
	if q[i].key != q[j].key {
		return q[i].key < q[j].key
	}
	return q[i].taskIdx < q[j].taskIdx
}
func (q procQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *procQueue) Push(x interface{}) { j := x.(*job); j.index = len(*q); *q = append(*q, j) }
func (q *procQueue) Pop() interface{} {
	old := *q
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return j
}

type state struct {
	asg     *task.Assignment
	opt     Options
	horizon task.Time
	report  *Report

	chains      [][]chainStage // per task, fragment chain in part order
	nextRelease []task.Time
	active      []*job // per task: the currently pending fragment job, nil if idle
	queues      []procQueue
	lastRunning []*job // per processor, for preemption accounting
	dispatched  []*job // per processor, last job charged a dispatch
	timelineCap task.Time
	now         task.Time
}

func newState(asg *task.Assignment, opt Options, horizon task.Time) *state {
	n := len(asg.Set)
	m := asg.M()
	s := &state{
		asg:     asg,
		opt:     opt,
		horizon: horizon,
		report: &Report{
			Horizon:               horizon,
			WorstResponse:         make(map[int]task.Time, n),
			WorstFragmentResponse: make(map[int][]task.Time, n),
			Busy:                  make([]task.Time, m),
		},
		chains:      make([][]chainStage, n),
		nextRelease: make([]task.Time, n),
		active:      make([]*job, n),
		queues:      make([]procQueue, m),
		lastRunning: make([]*job, m),
		dispatched:  make([]*job, m),
	}
	if opt.RecordTimeline {
		s.timelineCap = opt.TimelineCap
		if s.timelineCap <= 0 {
			s.timelineCap = 512
		}
		if s.timelineCap > horizon {
			s.timelineCap = horizon
		}
		s.report.Timeline = make([][]int, m)
		for q := range s.report.Timeline {
			row := make([]int, s.timelineCap)
			for t := range row {
				row[t] = -1
			}
			s.report.Timeline[q] = row
		}
	}
	for idx := range asg.Set {
		subs, procs := asg.Subtasks(idx)
		chain := make([]chainStage, len(subs))
		for k, sub := range subs {
			base := asg.Set[idx].T - asg.Set[idx].Deadline()
			chain[k] = chainStage{
				proc: procs[k], c: sub.C, part: sub.Part,
				relDeadline: sub.Offset + sub.Deadline - base,
			}
		}
		s.chains[idx] = chain
		if opt.Offsets != nil {
			s.nextRelease[idx] = opt.Offsets[idx]
		}
		s.report.WorstFragmentResponse[idx] = make([]task.Time, len(subs))
	}
	return s
}

func (s *state) run() {
	for s.now < s.horizon {
		s.chargeDispatches()
		next := s.nextEventTime()
		if next > s.horizon {
			next = s.horizon
		}
		s.advance(next - s.now)
		s.now = next
		if s.now >= s.horizon {
			// Completions landing exactly on the horizon still count.
			s.handleCompletions()
			break
		}
		if !s.handleCompletions() {
			return // stopped on miss
		}
		if !s.handleReleases() {
			return
		}
	}
	// Jobs whose absolute deadline falls within the horizon but are still
	// incomplete at the end are misses too.
	for idx, j := range s.active {
		if j == nil {
			continue
		}
		deadline := j.release + s.asg.Set[idx].Deadline()
		if deadline <= s.horizon {
			s.report.Misses = append(s.report.Misses, Miss{Task: idx, Release: j.release, At: deadline})
		}
	}
}

// nextEventTime returns the earliest future instant at which anything can
// change: a task release or the completion of a currently running fragment.
func (s *state) nextEventTime() task.Time {
	next := task.Time(math.MaxInt64)
	for idx := range s.nextRelease {
		if s.nextRelease[idx] > s.now && s.nextRelease[idx] < next {
			next = s.nextRelease[idx]
		}
		// A release exactly at s.now has been handled already.
		if s.nextRelease[idx] == s.now {
			next = s.now
			break
		}
	}
	for q := range s.queues {
		if len(s.queues[q]) == 0 {
			continue
		}
		if t := s.now + s.queues[q][0].remaining; t < next {
			next = t
		}
	}
	if next == math.MaxInt64 {
		return s.horizon
	}
	return next
}

// chargeDispatches applies the dispatch (context-switch) overhead: each
// processor whose highest-priority pending fragment differs from the one
// it last dispatched pays Options.DispatchOverhead, added to the incoming
// fragment's remaining demand.
func (s *state) chargeDispatches() {
	for q := range s.queues {
		if len(s.queues[q]) == 0 {
			continue
		}
		top := s.queues[q][0]
		if top == s.dispatched[q] {
			continue
		}
		s.dispatched[q] = top
		if s.opt.DispatchOverhead > 0 {
			top.remaining += s.opt.DispatchOverhead
			s.report.Overhead += s.opt.DispatchOverhead
		}
	}
}

// advance runs every processor's highest-priority pending fragment for
// delta ticks.
func (s *state) advance(delta task.Time) {
	if delta <= 0 {
		return
	}
	for q := range s.queues {
		if len(s.queues[q]) == 0 {
			continue
		}
		top := s.queues[q][0]
		if top.remaining < delta {
			panic("sim: running fragment overran its completion event")
		}
		top.remaining -= delta
		s.report.Busy[q] += delta
		if s.report.Timeline != nil && s.now < s.timelineCap {
			end := s.now + delta
			if end > s.timelineCap {
				end = s.timelineCap
			}
			for t := s.now; t < end; t++ {
				s.report.Timeline[q][t] = top.taskIdx
			}
		}
	}
}

// handleCompletions pops finished fragments, activating successors or
// completing jobs. Returns false if the run must stop (miss with
// StopOnMiss).
func (s *state) handleCompletions() bool {
	for q := range s.queues {
		for len(s.queues[q]) > 0 && s.queues[q][0].remaining == 0 {
			j := heap.Pop(&s.queues[q]).(*job)
			idx := j.taskIdx
			chain := s.chains[idx]
			resp := s.now - j.release
			if wfr := s.report.WorstFragmentResponse[idx]; resp > wfr[j.stage] {
				wfr[j.stage] = resp
			}
			if j.stage+1 < len(chain) {
				// Activate the successor fragment, possibly on another
				// processor; it may itself complete at this same instant
				// only if it has zero demand, which Validate excludes.
				succ := &job{taskIdx: idx, stage: j.stage + 1, remaining: chain[j.stage+1].c, release: j.release}
				if s.opt.Policy == PolicyEDF {
					succ.key = j.release + chain[j.stage+1].relDeadline
				}
				if s.opt.MigrationOverhead > 0 {
					succ.remaining += s.opt.MigrationOverhead
					s.report.Overhead += s.opt.MigrationOverhead
				}
				s.active[idx] = succ
				sp := chain[j.stage+1].proc
				var prevTop *job
				if len(s.queues[sp]) > 0 {
					prevTop = s.queues[sp][0]
				}
				heap.Push(&s.queues[sp], succ)
				if prevTop != nil && s.queues[sp][0] == succ && prevTop.remaining > 0 {
					s.report.Preemptions++
				}
				continue
			}
			// Whole job done.
			s.active[idx] = nil
			s.report.Completed++
			if resp > s.report.WorstResponse[idx] {
				s.report.WorstResponse[idx] = resp
			}
			deadline := j.release + s.asg.Set[idx].Deadline()
			if s.now > deadline {
				s.report.Misses = append(s.report.Misses, Miss{Task: idx, Release: j.release, At: s.now})
				if s.opt.StopOnMiss {
					return false
				}
			}
		}
	}
	return true
}

// handleReleases releases all jobs due at the current instant. A task whose
// previous job is still pending at its deadline (= this release instant)
// has missed; in continue mode the stale job is discarded. Returns false if
// the run must stop.
func (s *state) handleReleases() bool {
	for idx := range s.nextRelease {
		if s.nextRelease[idx] != s.now {
			continue
		}
		t := s.asg.Set[idx]
		if old := s.active[idx]; old != nil {
			s.report.Misses = append(s.report.Misses, Miss{Task: idx, Release: old.release, At: s.now})
			if s.opt.StopOnMiss {
				return false
			}
			// Discard the stale chain so the new job can run.
			q := s.chains[idx][old.stage].proc
			heap.Remove(&s.queues[q], old.index)
			s.active[idx] = nil
		}
		j := &job{taskIdx: idx, stage: 0, remaining: s.chains[idx][0].c, release: s.now}
		if s.opt.Policy == PolicyEDF {
			j.key = s.now + s.chains[idx][0].relDeadline
		}
		s.active[idx] = j
		proc := s.chains[idx][0].proc
		prevTop := (*job)(nil)
		if len(s.queues[proc]) > 0 {
			prevTop = s.queues[proc][0]
		}
		heap.Push(&s.queues[proc], j)
		if prevTop != nil && s.queues[proc][0] == j && prevTop.remaining > 0 {
			s.report.Preemptions++
		}
		s.report.Released++
		s.nextRelease[idx] += t.T
	}
	return true
}

// SimulateSet is a convenience wrapper: it builds the trivial one-processor
// assignment of the RM-sorted set (every task whole on processor 0) and
// simulates it. Useful for validating uniprocessor RTA and utilization
// bounds against execution.
func SimulateSet(ts task.Set, opt Options) (*Report, error) {
	sorted := ts.Clone()
	sorted.SortRM()
	asg := task.NewAssignment(sorted, 1)
	for i, t := range sorted {
		asg.Add(0, task.Whole(i, t))
	}
	return Simulate(asg, opt)
}
