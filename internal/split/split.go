// Package split implements the MaxSplit routine of the paper (§IV-A,
// Definition 3): given a (sub)task that does not fit entirely on its
// candidate processor, find the largest prefix that can be assigned there
// without making any task on that processor unschedulable — leaving the
// processor with a bottleneck — and return the remainder for the next
// assignment step.
//
// Two interchangeable implementations are provided:
//
//   - MaxPortionBinary: the binary-search reference the paper sketches
//     ("performing a binary search over [0, C^k]").
//   - MaxPortion: the efficient testing-point method the paper cites from
//     [22], which evaluates the RTA slack of each resident subtask at the
//     points where the interference step functions change.
//
// Both are exact on the integer time domain and are cross-checked against
// each other by property tests.
package split

import (
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/task"
)

// Instrumentation (no-ops unless obs.SetEnabled): the testing-point method
// is the paper's efficiency claim over binary search, and these counters
// let the split-ablation experiment quantify the work each does — slack
// evaluations per testing-point call (see rta.slack.*) versus full
// admission probes per binary-search call.
var (
	cTPCalls   = obs.NewCounter("split.tp.calls")
	cBinCalls  = obs.NewCounter("split.bin.calls")
	cBinProbes = obs.NewCounter("split.bin.probes")
)

// MaxPortion returns the largest c' in [0, budget] such that adding a new
// highest-priority load (c', t) to the priority-sorted resident list keeps
// every resident subtask schedulable and c' itself fits within deadline d
// (the synthetic deadline the new body fragment would have).
//
// It minimizes, over the resident subtasks, the exact RTA slack with
// respect to a period-t interferer.
func MaxPortion(list []task.Subtask, t, budget, d task.Time) task.Time {
	portion, _ := MaxPortionScratch(list, t, budget, d, nil)
	return portion
}

// MaxPortionScratch is MaxPortion with a caller-provided interference
// scratch: the resident mirror is built once (rta.MirrorInto) and each
// resident's higher-priority set is a prefix of it, so a call allocates
// nothing once buf has capacity. The (possibly grown) buffer is returned
// for reuse.
func MaxPortionScratch(list []task.Subtask, t, budget, d task.Time, buf []rta.Interference) (task.Time, []rta.Interference) {
	cTPCalls.Inc()
	if budget <= 0 {
		return 0, buf
	}
	best := budget
	if d < best {
		best = d
	}
	if best <= 0 {
		return 0, buf
	}
	buf = rta.MirrorInto(list, buf)
	for i := range list {
		if s := rta.SlackHP(list[i].C, list[i].Deadline, buf[:i], t); s < best {
			best = s
		}
		if best == 0 {
			return 0, buf
		}
	}
	return best, buf
}

// MaxPortionAt generalizes MaxPortion to an arbitrary priority position:
// the new load (c', t) is inserted with priority index prio into the
// priority-sorted resident list (so residents with a smaller task index
// preempt it). It returns the largest c' in [0, budget] such that the new
// fragment's own response time stays within d and every lower-priority
// resident stays schedulable. Residents with higher priority are unaffected
// by construction.
//
// The paper's algorithms only insert at the top (assignment in increasing
// priority order guarantees it, Lemma 2); the general form is needed for
// RM-TS phase 3, where a processor may already host a pre-assigned task of
// either priority relative to the incoming one.
func MaxPortionAt(list []task.Subtask, prio int, t, budget, d task.Time) task.Time {
	cTPCalls.Inc()
	if budget <= 0 || d <= 0 {
		return 0
	}
	pos := 0
	for pos < len(list) && list[pos].TaskIndex < prio {
		pos++
	}
	hp := make([]rta.Interference, pos)
	for i := 0; i < pos; i++ {
		hp[i] = rta.Interference{C: list[i].C, T: list[i].T}
	}
	best := rta.MaxOwnLoad(hp, d)
	if budget < best {
		best = budget
	}
	if best <= 0 {
		return 0
	}
	for i := pos; i < len(list); i++ {
		if s := rta.Slack(list, i, t); s < best {
			best = s
		}
		if best == 0 {
			return 0
		}
	}
	return best
}

// MaxPortionState is MaxPortionAt evaluated on a processor's incremental
// analysis state instead of a fresh subtask slice: the interference view
// (including any analysis surcharge) is the state's reused mirror, so a
// probe allocates nothing. The budget is in the state's surcharged units —
// callers with a per-fragment surcharge s pass budget+s and subtract s from
// the result, exactly as with a surcharged list view.
//
// Decision-equivalent to MaxPortionAt on the equivalent list view; the
// property test in the partition package pins this.
func MaxPortionState(ps *rta.ProcState, prio int, t, budget, d task.Time) task.Time {
	cTPCalls.Inc()
	if budget <= 0 || d <= 0 {
		return 0
	}
	pos := ps.PosFor(prio)
	best := ps.MaxOwnLoadAt(pos, d)
	if budget < best {
		best = budget
	}
	if best <= 0 {
		return 0
	}
	for i := pos; i < ps.Len(); i++ {
		// The fold only keeps slacks below the running minimum, so the capped
		// scan lets each resident stop enumerating testing points as soon as
		// its partial maximum proves it cannot lower that minimum.
		if s := ps.SlackAtMost(i, t, best); s < best {
			best = s
		}
		if best == 0 {
			return 0
		}
	}
	return best
}

// MaxPortionAtBinary is the binary-search reference for MaxPortionAt, used
// to cross-check it in tests.
func MaxPortionAtBinary(list []task.Subtask, prio int, t, budget, d task.Time) task.Time {
	cBinCalls.Inc()
	hi := budget
	if d < hi {
		hi = d
	}
	if hi <= 0 {
		return 0
	}
	feasible := func(c task.Time) bool {
		cBinProbes.Inc()
		if c == 0 {
			return true
		}
		return rta.SchedulableWithExtraAt(list, prio, c, t, d)
	}
	if feasible(hi) {
		return hi
	}
	lo := task.Time(0)
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// MaxPortionBinary is the reference implementation of MaxPortion: it binary
// searches the largest feasible c' in [0, min(budget, d)], using the full
// admission check at each probe. Schedulability is monotone in c' (a larger
// fragment only adds interference), so the search is exact.
func MaxPortionBinary(list []task.Subtask, t, budget, d task.Time) task.Time {
	cBinCalls.Inc()
	hi := budget
	if d < hi {
		hi = d
	}
	if hi <= 0 {
		return 0
	}
	feasible := func(c task.Time) bool {
		cBinProbes.Inc()
		if c == 0 {
			return true
		}
		return rta.SchedulableWithExtra(list, c, t, d)
	}
	if feasible(hi) {
		return hi
	}
	lo := task.Time(0) // feasible
	for hi-lo > 1 {
		mid := lo + (hi-lo)/2
		if feasible(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// HasBottleneck reports whether the priority-sorted resident list has a
// bottleneck in the sense of Definition 2: the processor is schedulable,
// but increasing the execution time of its highest-priority subtask by one
// tick (the smallest positive amount on the integer time domain) makes some
// subtask miss its synthetic deadline.
//
// An empty processor has no bottleneck.
func HasBottleneck(list []task.Subtask) bool {
	if len(list) == 0 {
		return false
	}
	if !rta.ProcessorSchedulable(list) {
		return false
	}
	bumped := make([]task.Subtask, len(list))
	copy(bumped, list)
	bumped[0].C++
	if bumped[0].C > bumped[0].Deadline {
		return true // the highest-priority subtask itself is the bottleneck
	}
	return !rta.ProcessorSchedulable(bumped)
}
