package split

import (
	"math/rand"
	"testing"

	"repro/internal/rta"
	"repro/internal/task"
)

// randomProcessor builds a schedulable priority-sorted resident list with
// task indices starting at base.
func randomProcessor(r *rand.Rand, base int) []task.Subtask {
	for {
		n := 1 + r.Intn(4)
		list := make([]task.Subtask, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(5 + r.Intn(80))
			C := task.Time(1 + r.Intn(int(T)/2))
			d := T - task.Time(r.Intn(int(T)/4+1))
			if d < C {
				d = C
			}
			list = append(list, task.Subtask{TaskIndex: base + i, Part: 1, C: C, T: T, Deadline: d, Offset: T - d, Tail: true})
		}
		if rta.ProcessorSchedulable(list) {
			return list
		}
	}
}

func TestMaxPortionAgainstBinary(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 400; trial++ {
		list := randomProcessor(r, 1)
		T := task.Time(4 + r.Intn(60))
		budget := task.Time(1 + r.Intn(int(T)))
		d := T - task.Time(r.Intn(int(T)/2+1))
		got := MaxPortion(list, T, budget, d)
		want := MaxPortionBinary(list, T, budget, d)
		if got != want {
			t.Fatalf("trial %d: MaxPortion = %d, binary = %d (T=%d budget=%d d=%d list=%v)",
				trial, got, want, T, budget, d, list)
		}
	}
}

func TestMaxPortionAtAgainstBinary(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 400; trial++ {
		list := randomProcessor(r, 0)
		// Re-index residents to leave gaps so the newcomer can take any
		// relative priority.
		for i := range list {
			list[i].TaskIndex = i * 2
		}
		prio := r.Intn(len(list)*2 + 2)
		if prio%2 == 0 {
			prio++ // avoid collisions with resident indices
		}
		T := task.Time(4 + r.Intn(60))
		budget := task.Time(1 + r.Intn(int(T)))
		d := T - task.Time(r.Intn(int(T)/2+1))
		got := MaxPortionAt(list, prio, T, budget, d)
		want := MaxPortionAtBinary(list, prio, T, budget, d)
		if got != want {
			t.Fatalf("trial %d: MaxPortionAt = %d, binary = %d (prio=%d T=%d budget=%d d=%d list=%v)",
				trial, got, want, prio, T, budget, d, list)
		}
	}
}

func TestMaxPortionIsMaximal(t *testing.T) {
	// The returned portion must be feasible, and portion+1 infeasible
	// (unless capped by budget or deadline) — this is the bottleneck
	// property of Definition 3 in integer time.
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		list := randomProcessor(r, 1)
		T := task.Time(4 + r.Intn(60))
		budget := T // uncapped in practice
		d := T
		p := MaxPortion(list, T, budget, d)
		if p > 0 && !rta.SchedulableWithExtra(list, p, T, d) {
			t.Fatalf("trial %d: portion %d reported feasible but RTA rejects it", trial, p)
		}
		if p < budget && p < d {
			if rta.SchedulableWithExtra(list, p+1, T, d) {
				t.Fatalf("trial %d: portion %d not maximal (p+1 feasible)", trial, p)
			}
		}
	}
}

func TestMaxPortionEdgeCases(t *testing.T) {
	list := []task.Subtask{{TaskIndex: 1, Part: 1, C: 2, T: 10, Deadline: 10, Tail: true}}
	if got := MaxPortion(list, 5, 0, 5); got != 0 {
		t.Errorf("zero budget: %d", got)
	}
	if got := MaxPortion(list, 5, 3, 0); got != 0 {
		t.Errorf("zero deadline: %d", got)
	}
	if got := MaxPortion(list, 5, 3, -4); got != 0 {
		t.Errorf("negative deadline: %d", got)
	}
	if got := MaxPortion(nil, 5, 3, 5); got != 3 {
		t.Errorf("empty processor should grant the whole budget: %d", got)
	}
	// Budget larger than deadline is capped by the deadline.
	if got := MaxPortion(nil, 5, 10, 4); got != 4 {
		t.Errorf("deadline cap: %d", got)
	}
}

func TestMaxPortionSaturatedProcessor(t *testing.T) {
	// A processor at 100% with a harmonic resident has no room at all for
	// an interferer whose period does not divide.
	list := []task.Subtask{{TaskIndex: 1, Part: 1, C: 10, T: 10, Deadline: 10, Tail: true}}
	if got := MaxPortion(list, 7, 7, 7); got != 0 {
		t.Errorf("fully loaded processor granted %d", got)
	}
}

func TestMaxPortionHarmonicExact(t *testing.T) {
	// Resident (2,8,Δ8); newcomer period 4. Demand at x=8: 2 + 2·p ≤ 8 →
	// p ≤ 3. At x=4: 2 + p ≤ 4 → p ≤ 2. Best is 3.
	list := []task.Subtask{{TaskIndex: 1, Part: 1, C: 2, T: 8, Deadline: 8, Tail: true}}
	if got := MaxPortion(list, 4, 8, 4); got != 3 {
		t.Errorf("harmonic slack = %d, want 3", got)
	}
}

func TestHasBottleneck(t *testing.T) {
	// Saturated harmonic processor: bumping the top task by 1 breaks it.
	full := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 2, T: 4, Deadline: 4, Tail: true},
		{TaskIndex: 1, Part: 1, C: 4, T: 8, Deadline: 8, Tail: true},
	}
	if !HasBottleneck(full) {
		t.Error("saturated processor has no bottleneck")
	}
	slack := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 1, T: 10, Deadline: 10, Tail: true},
	}
	if HasBottleneck(slack) {
		t.Error("nearly idle processor has a bottleneck")
	}
	if HasBottleneck(nil) {
		t.Error("empty processor has a bottleneck")
	}
	over := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 9, T: 10, Deadline: 10, Tail: true},
		{TaskIndex: 1, Part: 1, C: 9, T: 10, Deadline: 10, Tail: true},
	}
	if HasBottleneck(over) {
		t.Error("unschedulable processor reported a bottleneck")
	}
	// A top task already at C = Δ is its own bottleneck.
	atLimit := []task.Subtask{{TaskIndex: 0, Part: 1, C: 5, T: 10, Deadline: 5, Offset: 5, Tail: true}}
	if !HasBottleneck(atLimit) {
		t.Error("C=Δ top task not recognized as bottleneck")
	}
}

func TestMaxPortionThenBottleneck(t *testing.T) {
	// After assigning the maximal portion as the top-priority subtask, the
	// processor must have a bottleneck (Definition 3 condition 2).
	r := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		list := randomProcessor(r, 1)
		T := task.Time(4 + r.Intn(60))
		d := T
		p := MaxPortion(list, T, T, d)
		if p == 0 || p == T {
			continue // nothing assigned, or no split happened
		}
		with := append([]task.Subtask{{TaskIndex: 0, Part: 1, C: p, T: T, Deadline: d, Tail: false}}, list...)
		if !HasBottleneck(with) {
			t.Fatalf("trial %d: no bottleneck after maximal split (p=%d, T=%d, list=%v)", trial, p, T, list)
		}
	}
}
