package split

import (
	"math/rand"
	"testing"

	"repro/internal/rta"
	"repro/internal/task"
)

// Alloc guards for the splitting hot path: MaxPortionScratch with a warm
// interference buffer and MaxPortionState on a warm ProcState must not
// allocate. Run with `go test -run AllocGuard ./...`.

func TestAllocGuardMaxPortionScratch(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	var list []task.Subtask
	for {
		n := 4 + r.Intn(5)
		list = list[:0]
		for i := 0; i < n; i++ {
			T := task.Time(100 + r.Intn(5000))
			C := task.Time(1 + r.Intn(int(T)/6))
			list = append(list, task.Subtask{TaskIndex: i + 1, Part: 1, C: C, T: T, Deadline: T, Tail: true})
		}
		if rta.ProcessorSchedulable(list) {
			break
		}
	}
	period := task.Time(700)
	var buf []rta.Interference
	_, buf = MaxPortionScratch(list, period, period, period, buf) // warm
	allocs := testing.AllocsPerRun(200, func() {
		_, buf = MaxPortionScratch(list, period, period, period, buf)
	})
	if allocs != 0 {
		t.Errorf("MaxPortionScratch with warm buffer: %v allocs/run, want 0", allocs)
	}
}

func TestAllocGuardMaxPortionState(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	ps := &rta.ProcState{}
	ps.Reset(0)
	for i := 0; i < 6; i++ {
		T := task.Time(200 + r.Intn(4000))
		C := task.Time(1 + r.Intn(int(T)/8))
		ps.Insert(task.Subtask{TaskIndex: i, Part: 1, C: C, T: T, Deadline: T, Tail: true})
	}
	period := task.Time(900)
	prio := ps.Len()                                  // lowest priority: candidate goes below all residents
	MaxPortionState(ps, prio, period, period, period) // warm
	allocs := testing.AllocsPerRun(200, func() {
		MaxPortionState(ps, prio, period, period, period)
	})
	if allocs != 0 {
		t.Errorf("MaxPortionState on warm ProcState: %v allocs/run, want 0", allocs)
	}
}
