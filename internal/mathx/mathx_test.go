package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCeilDiv(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0},
		{1, 5, 1},
		{5, 5, 1},
		{6, 5, 2},
		{10, 5, 2},
		{11, 5, 3},
		{-3, 5, 0},
		{math.MaxInt64, 1, math.MaxInt64},
		// Near-MaxInt64 dividends: the naive (a+b-1)/b form wraps negative
		// here; CeilDiv must stay exact.
		{math.MaxInt64, 2, math.MaxInt64/2 + 1},
		{math.MaxInt64 - 1, math.MaxInt64, 1},
		{math.MaxInt64, math.MaxInt64, 1},
		{math.MaxInt64, math.MaxInt64 - 1, 2},
		{math.MaxInt64, 3, math.MaxInt64/3 + 1},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

// TestCeilDivUBoundaries proves CeilDivU ≡ CeilDiv on the documented domain
// (a ≥ 0, b > 0) at every boundary the branch-free remainder trick could get
// wrong: a ∈ {0, 1, b-1, b, b+1, 2b-1, 2b, MaxInt64-1, MaxInt64} against
// small, large and extreme divisors.
func TestCeilDivUBoundaries(t *testing.T) {
	divisors := []int64{1, 2, 3, 5, 7, 1 << 20, math.MaxInt64/2 + 1, math.MaxInt64 - 1, math.MaxInt64}
	for _, b := range divisors {
		dividends := []int64{0, 1, b - 1, b, math.MaxInt64 - 1, math.MaxInt64}
		if b <= math.MaxInt64/2 {
			dividends = append(dividends, b+1, 2*b-1, 2*b)
		}
		for _, a := range dividends {
			if a < 0 {
				continue // b-1 underflows the domain only for b = 0, excluded
			}
			if got, want := CeilDivU(a, b), CeilDiv(a, b); got != want {
				t.Errorf("CeilDivU(%d,%d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// TestCeilDivUQuick crosschecks CeilDivU against CeilDiv on random valid
// inputs, including dividends drawn near MaxInt64.
func TestCeilDivUQuick(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -(a + 1) // map into [0, MaxInt64]
		}
		if b == math.MinInt64 {
			b = math.MaxInt64
		} else if b < 0 {
			b = -b
		} else if b == 0 {
			b = 1
		}
		return CeilDivU(a, b) == CeilDiv(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestCeilDivPanicsOnBadDivisor(t *testing.T) {
	for _, b := range []int64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("CeilDiv(1,%d) did not panic", b)
				}
			}()
			CeilDiv(1, b)
		}()
	}
}

func TestGCD(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0},
		{0, 7, 7},
		{7, 0, 7},
		{12, 18, 6},
		{18, 12, 6},
		{-12, 18, 6},
		{12, -18, 6},
		{17, 13, 1},
		{100, 100, 100},
	}
	for _, c := range cases {
		if got := GCD(c.a, c.b); got != c.want {
			t.Errorf("GCD(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCM(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 5, 0},
		{5, 0, 0},
		{4, 6, 12},
		{7, 13, 91},
		{10, 10, 10},
		{math.MaxInt64, 2, math.MaxInt64}, // saturates
	}
	for _, c := range cases {
		if got := LCM(c.a, c.b); got != c.want {
			t.Errorf("LCM(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLCMAll(t *testing.T) {
	if got := LCMAll(); got != 1 {
		t.Errorf("LCMAll() = %d, want 1", got)
	}
	if got := LCMAll(4, 6, 10); got != 60 {
		t.Errorf("LCMAll(4,6,10) = %d, want 60", got)
	}
	if got := LCMAll(math.MaxInt64-1, math.MaxInt64-2); got != math.MaxInt64 {
		t.Errorf("LCMAll with huge coprimes = %d, want saturation", got)
	}
}

func TestGCDPropertyDividesBoth(t *testing.T) {
	f := func(a, b int32) bool {
		g := GCD(int64(a), int64(b))
		if g == 0 {
			return a == 0 && b == 0
		}
		return int64(a)%g == 0 && int64(b)%g == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLCMPropertyMultipleOfBoth(t *testing.T) {
	f := func(a, b int16) bool {
		if a <= 0 || b <= 0 {
			return true
		}
		l := LCM(int64(a), int64(b))
		return l%int64(a) == 0 && l%int64(b) == 0 && l >= int64(a) && l >= int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDLCMProduct(t *testing.T) {
	f := func(a, b int16) bool {
		if a <= 0 || b <= 0 {
			return true
		}
		return GCD(int64(a), int64(b))*LCM(int64(a), int64(b)) == int64(a)*int64(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulSat(t *testing.T) {
	if got := MulSat(3, 4); got != 12 {
		t.Errorf("MulSat(3,4) = %d", got)
	}
	if got := MulSat(math.MaxInt64, 2); got != math.MaxInt64 {
		t.Errorf("MulSat overflow = %d, want saturation", got)
	}
	if got := MulSat(0, math.MaxInt64); got != 0 {
		t.Errorf("MulSat(0,max) = %d", got)
	}
}

func TestAddSat(t *testing.T) {
	if got := AddSat(3, 4); got != 7 {
		t.Errorf("AddSat(3,4) = %d", got)
	}
	if got := AddSat(math.MaxInt64, 1); got != math.MaxInt64 {
		t.Errorf("AddSat overflow = %d, want saturation", got)
	}
}

func TestAddChecked(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, 0, 0, true},
		{3, 4, 7, true},
		{math.MaxInt64 - 1, 1, math.MaxInt64, true},
		{math.MaxInt64, 1, math.MaxInt64, false},
		{math.MaxInt64, math.MaxInt64, math.MaxInt64, false},
	}
	for _, c := range cases {
		got, ok := AddChecked(c.a, c.b)
		if got != c.want || ok != c.ok {
			t.Errorf("AddChecked(%d,%d) = %d,%v, want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestMulChecked(t *testing.T) {
	cases := []struct {
		a, b, want int64
		ok         bool
	}{
		{0, math.MaxInt64, 0, true},
		{3, 4, 12, true},
		{math.MaxInt64, 1, math.MaxInt64, true},
		{math.MaxInt64/2 + 1, 2, math.MaxInt64, false},
		{math.MaxInt64, 2, math.MaxInt64, false},
	}
	for _, c := range cases {
		got, ok := MulChecked(c.a, c.b)
		if got != c.want || ok != c.ok {
			t.Errorf("MulChecked(%d,%d) = %d,%v, want %d,%v", c.a, c.b, got, ok, c.want, c.ok)
		}
	}
}

func TestCheckedMatchesSat(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int64(a), int64(b)
		s, ok := AddChecked(x, y)
		if s != AddSat(x, y) || !ok {
			return false
		}
		p, ok := MulChecked(x, y)
		return p == MulSat(x, y) && ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMaxInt64(t *testing.T) {
	if MinInt64(2, 3) != 2 || MinInt64(3, 2) != 2 {
		t.Error("MinInt64 wrong")
	}
	if MaxInt64(2, 3) != 3 || MaxInt64(3, 2) != 3 {
		t.Error("MaxInt64 wrong")
	}
}

func TestCeilDivMatchesFloat(t *testing.T) {
	f := func(a int32, b int16) bool {
		if a < 0 || b <= 0 {
			return true
		}
		want := int64(math.Ceil(float64(a) / float64(b)))
		return CeilDiv(int64(a), int64(b)) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
