// Package mathx provides small integer-math helpers used throughout the
// scheduling analyses: ceiling division, GCD/LCM with overflow saturation,
// and checked arithmetic on the discrete time domain.
//
// All scheduling analysis in this repository runs on int64 "ticks" rather
// than floating point, so that response-time fixed points, hyperperiods and
// simulation timestamps are exact. The helpers here keep that arithmetic
// honest: LCM saturates instead of wrapping, and CeilDiv panics on
// non-positive divisors (which always indicate a corrupted task set).
package mathx

import "math"

// CeilDiv returns ceil(a/b) for a >= 0, b > 0. The quotient is computed as
// a/b plus a remainder correction rather than (a+b-1)/b, so dividends near
// math.MaxInt64 cannot overflow the intermediate sum.
func CeilDiv(a, b int64) int64 {
	if b <= 0 {
		panic("mathx: CeilDiv with non-positive divisor")
	}
	if a <= 0 {
		return 0
	}
	q := a / b
	if a%b != 0 {
		q++
	}
	return q
}

// CeilDivU returns ceil(a/b) under the PRECONDITION a >= 0, b > 0, which it
// does NOT validate — the branch-free fast path for kernel inner loops that
// have already established the precondition once per batch (internal/rta's
// struct-of-arrays kernel proves every period positive when the mirror is
// built, and every dividend is a non-negative response-time iterate).
//
// The remainder correction is arithmetic rather than a branch: for r = a%b,
// the word (r | -r) has its sign bit set iff r != 0, so shifting it right by
// 63 yields -1 exactly when the division was inexact and 0 otherwise.
// Equivalent to CeilDiv on the whole valid domain including a = MaxInt64
// (no (a+b-1)/b style intermediate that could overflow); outside the
// precondition the result is unspecified.
func CeilDivU(a, b int64) int64 {
	q := a / b
	r := a % b
	return q - ((r | -r) >> 63)
}

// GCD returns the greatest common divisor of a and b.
// GCD(0, 0) is 0 by convention; negative inputs use their absolute value.
func GCD(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b, saturating at
// math.MaxInt64 on overflow. LCM(0, x) is 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	g := GCD(a, b)
	a = a / g
	if a > math.MaxInt64/absInt64(b) {
		return math.MaxInt64
	}
	return a * absInt64(b)
}

// LCMAll folds LCM over the values, saturating at math.MaxInt64.
// LCMAll() is 1 (the identity of LCM on positive integers).
func LCMAll(vs ...int64) int64 {
	acc := int64(1)
	for _, v := range vs {
		acc = LCM(acc, v)
		if acc == math.MaxInt64 {
			return acc
		}
	}
	return acc
}

func absInt64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// MulSat returns a*b, saturating at math.MaxInt64 for non-negative inputs.
func MulSat(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("mathx: MulSat requires non-negative operands")
	}
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}

// AddSat returns a+b, saturating at math.MaxInt64 for non-negative inputs.
func AddSat(a, b int64) int64 {
	if a < 0 || b < 0 {
		panic("mathx: AddSat requires non-negative operands")
	}
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// AddChecked returns a+b and true for non-negative inputs whose sum fits in
// int64, or math.MaxInt64 and false on overflow. The analysis hot paths use
// it where a silent wrap would turn an over-limit demand into a small bogus
// one; the false return lets callers degrade to an explicit verdict
// (rta.VerdictExceedsLimit) instead.
func AddChecked(a, b int64) (int64, bool) {
	if a < 0 || b < 0 {
		panic("mathx: AddChecked requires non-negative operands")
	}
	if a > math.MaxInt64-b {
		return math.MaxInt64, false
	}
	return a + b, true
}

// MulChecked returns a*b and true for non-negative inputs whose product fits
// in int64, or math.MaxInt64 and false on overflow.
func MulChecked(a, b int64) (int64, bool) {
	if a < 0 || b < 0 {
		panic("mathx: MulChecked requires non-negative operands")
	}
	if a == 0 || b == 0 {
		return 0, true
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64, false
	}
	return a * b, true
}

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
