package partition

import (
	"math/rand"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
)

// TestFuzzAllAlgorithmsInvariants throws structurally extreme random task
// sets at every algorithm and asserts the cross-cutting invariants:
// no panic, valid assignments on success, Verify agreement for FP results,
// VerifyEDF agreement for EDF results, failure diagnostics on failure, and
// input immutability.
func TestFuzzAllAlgorithmsInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(31337))
	fpAlgos := []Algorithm{
		RMTSLight{},
		RMTSLight{Surcharge: 3},
		NewRMTS(nil),
		&RMTS{Surcharge: 5},
		SPA1{},
		SPA2{},
		FirstFitRTA{},
		FirstFitRTA{Order: IncreasingPriority},
		WorstFitRTA{Order: DecreasingPriority},
		FirstFit{Admission: AdmitHyperbolic},
		FirstFit{Admission: AdmitLL, Order: IncreasingPriority},
	}
	edfAlgos := []Algorithm{EDFFirstFit{}, EDFWorstFit{Order: IncreasingPriority}}

	for trial := 0; trial < 400; trial++ {
		ts := fuzzSet(r)
		orig := ts.Clone()
		m := 1 + r.Intn(6)
		for _, alg := range fpAlgos {
			res := alg.Partition(ts, m)
			checkFuzzResult(t, trial, alg, res, false)
		}
		for _, alg := range edfAlgos {
			res := alg.Partition(ts, m)
			checkFuzzResult(t, trial, alg, res, true)
		}
		for i := range ts {
			if ts[i] != orig[i] {
				t.Fatalf("trial %d: input mutated", trial)
			}
		}
	}
}

func fuzzSet(r *rand.Rand) task.Set {
	shape := r.Intn(6)
	n := 1 + r.Intn(12)
	ts := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		var T task.Time
		switch shape {
		case 0: // tiny periods — heavy quantization
			T = task.Time(1 + r.Intn(8))
		case 1: // one-period monoculture
			T = 12
		case 2: // powers of two — harmonic
			T = task.Time(4 << r.Intn(6))
		case 3: // coprime-ish primes
			primes := []task.Time{7, 11, 13, 17, 19, 23, 29}
			T = primes[r.Intn(len(primes))]
		case 4: // huge spread
			T = task.Time(1 + r.Intn(1_000_000))
		default: // generic
			T = task.Time(10 + r.Intn(1000))
		}
		var C task.Time
		switch r.Intn(4) {
		case 0:
			C = 1
		case 1:
			C = T // full-utilization task
		default:
			C = 1 + task.Time(r.Int63n(int64(T)))
		}
		ts = append(ts, task.Task{Name: "f", C: C, T: T})
	}
	return ts
}

func checkFuzzResult(t *testing.T, trial int, alg Algorithm, res *Result, edf bool) {
	t.Helper()
	if res == nil {
		t.Fatalf("trial %d: %s returned nil", trial, alg.Name())
	}
	if res.OK {
		if err := res.Assignment.Validate(); err != nil {
			t.Fatalf("trial %d: %s produced invalid assignment: %v", trial, alg.Name(), err)
		}
		if edf {
			if err := VerifyEDF(res); err != nil {
				t.Fatalf("trial %d: %s failed VerifyEDF: %v", trial, alg.Name(), err)
			}
		} else if res.Guaranteed {
			// SPA results are only RTA-verifiable when their own theory's
			// preconditions held (Guaranteed); RM-TS/FF results always.
			switch alg.(type) {
			case SPA1, SPA2:
				// Threshold-packed results need not pass exact RTA of the
				// synthetic deadlines in corner cases outside their
				// theorems; skip.
			default:
				s := task.Time(0)
				switch a := alg.(type) {
				case RMTSLight:
					s = a.Surcharge
				case *RMTS:
					s = a.Surcharge
				}
				if err := VerifyWithSurcharge(res, s); err != nil {
					t.Fatalf("trial %d: %s failed verification: %v", trial, alg.Name(), err)
				}
			}
		}
	} else {
		if res.FailedTask < 0 && res.Reason == "" {
			t.Fatalf("trial %d: %s failed without diagnostics", trial, alg.Name())
		}
	}
}

// TestFuzzPartitionThenSimulate is the end-to-end fuzz: small-hyperperiod
// extreme sets, every verified FP partition simulated to completion.
func TestFuzzPartitionThenSimulate(t *testing.T) {
	r := rand.New(rand.NewSource(424242))
	menu := []task.Time{4, 8, 12, 16, 24, 48}
	algos := []Algorithm{RMTSLight{}, NewRMTS(nil), FirstFitRTA{}}
	simulated := 0
	for trial := 0; trial < 250; trial++ {
		n := 1 + r.Intn(8)
		ts := make(task.Set, 0, n)
		for i := 0; i < n; i++ {
			T := menu[r.Intn(len(menu))]
			C := 1 + task.Time(r.Int63n(int64(T)))
			ts = append(ts, task.Task{Name: "z", C: C, T: T})
		}
		m := 1 + r.Intn(4)
		for _, alg := range algos {
			res := alg.Partition(ts, m)
			if !res.OK {
				continue
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true})
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			if !rep.Ok() {
				t.Fatalf("trial %d: %s verified partition missed in simulation: %v\nset=%v\n%s",
					trial, alg.Name(), rep.Misses, ts, res.Assignment)
			}
			simulated++
		}
	}
	if simulated < 150 {
		t.Errorf("only %d partitions simulated", simulated)
	}
}

// TestSingleTaskAllAlgorithms checks the degenerate single-task cases,
// including a C=T task on one processor.
func TestSingleTaskAllAlgorithms(t *testing.T) {
	full := task.Set{{Name: "solo", C: 10, T: 10}}
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), SPA2{}, FirstFitRTA{}, WorstFitRTA{}, EDFFirstFit{}} {
		// Θ(1) = 1, so even the threshold-based SPA2 must accept a single
		// full-utilization task on one processor.
		res := alg.Partition(full, 1)
		if !res.OK {
			t.Errorf("%s rejected a single C=T task on one processor: %s", alg.Name(), res.Reason)
		}
	}
	// Under an overhead surcharge, a C=T task is infeasible by definition
	// and must be rejected with a diagnostic.
	res := (&RMTS{Surcharge: 1}).Partition(full, 1)
	if res.OK {
		t.Error("surcharged RM-TS accepted a C=T task")
	}
	if res.FailedTask != 0 || res.Reason == "" {
		t.Errorf("missing diagnostics: %+v", res)
	}
}

// TestManyProcessorsFewTasks: more processors than tasks must always work
// and leave processors empty.
func TestManyProcessorsFewTasks(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 5}, {Name: "b", C: 2, T: 7}}
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}, FirstFitRTA{}, EDFFirstFit{}} {
		res := alg.Partition(ts, 16)
		if !res.OK {
			t.Errorf("%s failed with 16 processors for 2 tasks: %s", alg.Name(), res.Reason)
			continue
		}
		if err := res.Assignment.Validate(); err != nil {
			t.Errorf("%s: %v", alg.Name(), err)
		}
	}
}
