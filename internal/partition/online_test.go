package partition

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/rta"
	"repro/internal/task"
)

// Online-engine equivalence tests: every admission decision under churn must
// match from-scratch analysis of the surviving residents, and the final
// per-processor response times must be byte-identical to cold RTA on the
// final lists — the service-level face of ProcState.Remove's soundness
// contract (see internal/rta/remove_test.go for the mirror-level version).

func onlineSurView(list []task.Subtask, s task.Time) []task.Subtask {
	out := make([]task.Subtask, len(list))
	for i, sub := range list {
		sub.C += s
		out[i] = sub
	}
	return out
}

// onlineModel shadows an Online cluster with explicit per-processor lists
// and recomputes every decision from scratch — it shares no state with the
// engine beyond the handles Admit returned.
type modelResident struct {
	h   uint64
	sub task.Subtask
}

type onlineModel struct {
	procs  [][]modelResident
	s      task.Time
	policy string
}

func (m *onlineModel) list(q int) []task.Subtask {
	out := make([]task.Subtask, len(m.procs[q]))
	for i, r := range m.procs[q] {
		out[i] = r.sub
	}
	return out
}

func (m *onlineModel) util(q int) float64 {
	u := 0.0
	for _, r := range m.procs[q] {
		u += r.sub.Utilization()
	}
	return u
}

func (m *onlineModel) surUtil(q int) float64 {
	u := 0.0
	for _, r := range m.procs[q] {
		u += float64(r.sub.C+m.s) / float64(r.sub.T)
	}
	return u
}

// admit mirrors Online.Admit's decision from scratch: same candidate order,
// same admission test, no incremental state. Returns the chosen processor
// or -1.
func (m *onlineModel) admit(t task.Task) int {
	if t.Validate() != nil || t.C+m.s > t.T {
		return -1
	}
	d := t.Deadline()
	prio := int(d)
	order := make([]int, len(m.procs))
	for q := range order {
		order[q] = q
	}
	if m.policy == OnlineRTAWorstFit {
		for i := 1; i < len(order); i++ {
			q := order[i]
			u := m.util(q)
			j := i - 1
			for j >= 0 && m.util(order[j]) > u {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = q
		}
	}
	for _, q := range order {
		if m.policy == OnlineThreshold {
			u := float64(t.C+m.s) / float64(t.T)
			if t.Implicit() && m.surUtil(q)+u <= bounds.LL(len(m.procs[q])+1)+utilEps {
				return q
			}
			continue
		}
		if d >= t.C+m.s && rta.SchedulableWithExtraAt(onlineSurView(m.list(q), m.s), prio, t.C+m.s, t.T, d) {
			return q
		}
	}
	return -1
}

func (m *onlineModel) place(q int, h uint64, t task.Task) {
	d := t.Deadline()
	sub := task.Subtask{TaskIndex: int(d), Part: 1, C: t.C, T: t.T, Deadline: d, Offset: t.T - d, Tail: true}
	list := m.procs[q]
	pos := 0
	for pos < len(list) && list[pos].sub.TaskIndex <= sub.TaskIndex {
		pos++
	}
	list = append(list, modelResident{})
	copy(list[pos+1:], list[pos:])
	list[pos] = modelResident{h: h, sub: sub}
	m.procs[q] = list
}

func (m *onlineModel) remove(h uint64) bool {
	for q := range m.procs {
		for pos, r := range m.procs[q] {
			if r.h == h {
				m.procs[q] = append(m.procs[q][:pos], m.procs[q][pos+1:]...)
				return true
			}
		}
	}
	return false
}

// checkOnlineColdEquivalence compares every processor's resident list and
// response times against from-scratch RTA of the surcharged view.
func checkOnlineColdEquivalence(t *testing.T, o *Online, m *onlineModel, ctx string) {
	t.Helper()
	for q := range m.procs {
		got := o.Residents(q)
		want := m.list(q)
		if len(got) != len(want) {
			t.Fatalf("%s: proc %d has %d residents, model %d", ctx, q, len(got), len(want))
		}
		sur := onlineSurView(want, m.s)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: proc %d resident %d = %+v, model %+v", ctx, q, i, got[i], want[i])
			}
			rc, okc := rta.SubtaskResponse(sur, i)
			if !okc {
				t.Fatalf("%s: proc %d resident %d unschedulable in cold re-analysis — invariant broken (r=%d)", ctx, q, i, rc)
			}
		}
	}
}

// randomOnlineTask draws a task; constrained deadlines only when allowed.
func randomOnlineTask(r *rand.Rand, implicitOnly bool) task.Task {
	T := task.Time(20 + r.Intn(2000))
	c := task.Time(1 + r.Intn(int(T)/3+1))
	t := task.Task{C: c, T: T}
	if !implicitOnly && r.Intn(2) == 0 {
		d := T - task.Time(r.Intn(int(T)/3+1))
		if d < c {
			d = c
		}
		t.D = d
	}
	return t
}

// TestOnlineMatchesFromScratch drives random admit/remove churn through all
// three policies and checks every decision and the surviving residents'
// responses against the from-scratch model.
func TestOnlineMatchesFromScratch(t *testing.T) {
	for _, policy := range OnlinePolicies() {
		t.Run(policy, func(t *testing.T) {
			r := rand.New(rand.NewSource(31))
			for trial := 0; trial < 60; trial++ {
				s := task.Time(r.Intn(3))
				mProcs := 1 + r.Intn(3)
				o, err := NewOnline(mProcs, policy, s)
				if err != nil {
					t.Fatal(err)
				}
				model := &onlineModel{
					procs:  make([][]modelResident, mProcs),
					s:      s,
					policy: policy,
				}
				var live []uint64
				for op := 0; op < 40; op++ {
					ctx := fmt.Sprintf("trial %d op %d", trial, op)
					if len(live) > 0 && r.Intn(3) == 0 {
						i := r.Intn(len(live))
						h := live[i]
						if !o.Remove(h) {
							t.Fatalf("%s: Remove(%d) failed for a live handle", ctx, h)
						}
						if !model.remove(h) {
							t.Fatalf("%s: handle %d missing from model", ctx, h)
						}
						live = append(live[:i], live[i+1:]...)
					} else {
						tk := randomOnlineTask(r, policy == OnlineThreshold)
						wantQ := model.admit(tk)
						pl, err := o.Admit(tk)
						if wantQ == -1 {
							var rej *Rejection
							if err == nil || !errors.As(err, &rej) {
								t.Fatalf("%s: Admit(%s) accepted on proc %d, from-scratch rejects", ctx, tk, pl.Proc)
							}
						} else {
							if err != nil {
								t.Fatalf("%s: Admit(%s) rejected (%v), from-scratch places on %d", ctx, tk, err, wantQ)
							}
							if pl.Proc != wantQ {
								t.Fatalf("%s: Admit(%s) chose proc %d, from-scratch %d", ctx, tk, pl.Proc, wantQ)
							}
							if pl.Handle == 0 {
								t.Fatalf("%s: zero handle", ctx)
							}
							model.place(wantQ, pl.Handle, tk)
							live = append(live, pl.Handle)
						}
					}
					checkOnlineColdEquivalence(t, o, model, ctx)
				}
				if o.Len() != len(live) {
					t.Fatalf("trial %d: Len=%d, live=%d", trial, o.Len(), len(live))
				}
			}
		})
	}
}

// TestOnlineAdmitRemoveReadmit pins the churn cycle the admission service is
// built around: fill a cluster to rejection, release a resident, and the
// same task must then be admitted with responses identical to cold analysis.
func TestOnlineAdmitRemoveReadmit(t *testing.T) {
	o, err := NewOnline(1, OnlineRTAFirstFit, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Two tasks that fill the processor: U = 0.5 + 0.5.
	a, err := o.Admit(task.Task{C: 5, T: 10})
	if err != nil {
		t.Fatalf("admit a: %v", err)
	}
	if _, err := o.Admit(task.Task{C: 10, T: 20}); err != nil {
		t.Fatalf("admit b: %v", err)
	}
	// A third cannot fit.
	_, err = o.Admit(task.Task{C: 7, T: 70})
	var rej *Rejection
	if !errors.As(err, &rej) || rej.Cause != CauseRTADeadlineMiss {
		t.Fatalf("overload admit: err=%v, want rta-deadline-miss rejection", err)
	}
	// Release the first task; the rejected one now fits.
	if !o.Remove(a.Handle) {
		t.Fatal("remove a failed")
	}
	pl, err := o.Admit(task.Task{C: 7, T: 70})
	if err != nil {
		t.Fatalf("re-admit after remove: %v", err)
	}
	// Cold re-analysis of the final set: b (10/20) outranks c (7/70).
	want := []task.Subtask{
		{TaskIndex: 20, Part: 1, C: 10, T: 20, Deadline: 20, Tail: true},
		{TaskIndex: 70, Part: 1, C: 7, T: 70, Deadline: 70, Tail: true},
	}
	got := o.Residents(0)
	if len(got) != len(want) {
		t.Fatalf("residents: %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resident %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	// c's response: 7 + one preemption of b — f(17) = 7 + ⌈17/20⌉·10 = 17.
	if pl.Response != 17 {
		t.Fatalf("re-admitted response = %d, want 17", pl.Response)
	}
	if o.Remove(a.Handle) {
		t.Fatal("double remove of a released handle succeeded")
	}
	if o.Remove(12345) {
		t.Fatal("remove of an unknown handle succeeded")
	}
}

// TestOnlineRejectionCauses pins the typed causes of the non-packing
// rejection paths.
func TestOnlineRejectionCauses(t *testing.T) {
	cases := []struct {
		policy string
		sur    task.Time
		tk     task.Task
		want   Cause
	}{
		{OnlineRTAFirstFit, 0, task.Task{C: 0, T: 10}, CauseInvalidInput},
		{OnlineRTAFirstFit, 0, task.Task{C: 5, T: 4}, CauseInvalidInput},
		{OnlineRTAFirstFit, 3, task.Task{C: 8, T: 10}, CauseSurchargeInfeasible},
		{OnlineThreshold, 0, task.Task{C: 2, T: 10, D: 5}, CauseModelMismatch},
		{OnlineThreshold, 0, task.Task{C: 10, T: 10}, CauseThresholdExhausted},
	}
	for _, tc := range cases {
		o, err := NewOnline(1, tc.policy, tc.sur)
		if err != nil {
			t.Fatal(err)
		}
		if tc.want == CauseThresholdExhausted {
			// Preload so the threshold has no room for a full-utilization task.
			if _, err := o.Admit(task.Task{C: 5, T: 10}); err != nil {
				t.Fatal(err)
			}
		}
		_, err = o.Admit(tc.tk)
		var rej *Rejection
		if !errors.As(err, &rej) {
			t.Fatalf("policy %s task %s: err=%v, want Rejection", tc.policy, tc.tk, err)
		}
		if rej.Cause != tc.want {
			t.Errorf("policy %s task %s: cause %s, want %s", tc.policy, tc.tk, rej.Cause, tc.want)
		}
		if rej.Error() == "" {
			t.Errorf("policy %s: empty rejection reason", tc.policy)
		}
	}
}

// TestNewOnlineValidation pins the constructor's input checks.
func TestNewOnlineValidation(t *testing.T) {
	if _, err := NewOnline(0, "", 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := NewOnline(2, "best-fit", 0); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewOnline(2, "", -1); err == nil {
		t.Error("negative surcharge accepted")
	}
	o, err := NewOnline(2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.Policy() != OnlineRTAFirstFit || o.M() != 2 || o.Surcharge() != 0 || o.Len() != 0 {
		t.Errorf("defaults: policy=%s m=%d s=%d len=%d", o.Policy(), o.M(), o.Surcharge(), o.Len())
	}
}

// TestOnlineRestoreEquivalence drives random churn through a live cluster,
// rebuilds a twin from ResidentsSnapshot via RestoreResident (handle order,
// recorded processors, restored handle counter), and checks the twin is
// canonically byte-identical — then keeps churning both with the same ops
// and requires identical placements and verdicts, which proves the restored
// warm-start state is at least sound (a stale cache would flip a verdict).
func TestOnlineRestoreEquivalence(t *testing.T) {
	for _, policy := range OnlinePolicies() {
		t.Run(policy, func(t *testing.T) {
			live, err := NewOnline(3, policy, 1)
			if err != nil {
				t.Fatal(err)
			}
			var handles []uint64
			op := func(o *Online, i int) (Placement, bool, bool) {
				if len(handles) > 0 && i%4 == 3 {
					return Placement{}, o.Remove(handles[0]), false
				}
				T := task.Time(10 * (1 + i%6))
				tk := task.Task{C: 1 + task.Time(i%9), T: T}
				if policy != OnlineThreshold && i%5 == 2 {
					tk.D = tk.C + (T-tk.C)/2
				}
				pl, err := o.Admit(tk)
				return pl, err == nil, true
			}
			for i := 0; i < 300; i++ {
				pl, ok, isAdmit := op(live, i)
				if isAdmit && ok {
					handles = append(handles, pl.Handle)
				} else if !isAdmit && ok {
					handles = handles[1:]
				}
			}

			twin, err := NewOnline(3, policy, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, ri := range live.ResidentsSnapshot() {
				if err := twin.RestoreResident(ri.Proc, ri.Handle, ri.C, ri.T, ri.D); err != nil {
					t.Fatal(err)
				}
			}
			if err := twin.SetHandleSeq(live.HandleSeq()); err != nil {
				t.Fatal(err)
			}
			if a, b := live.AppendCanonical(nil), twin.AppendCanonical(nil); !bytes.Equal(a, b) {
				t.Fatalf("restored canonical state diverged:\nlive %x\ntwin %x", a, b)
			}

			// Joint continuation: run the same literal operations against
			// both clusters side by side; every outcome must agree.
			for i := 0; i < 200; i++ {
				if len(handles) > 0 && i%4 == 3 {
					h := handles[0]
					handles = handles[1:]
					if a, b := live.Remove(h), twin.Remove(h); a != b {
						t.Fatalf("op %d: Remove(%d) diverged: %v vs %v", i, h, a, b)
					}
					continue
				}
				T := task.Time(10 * (1 + i%6))
				tk := task.Task{C: 1 + task.Time(i%9), T: T}
				if policy != OnlineThreshold && i%5 == 2 {
					tk.D = tk.C + (T-tk.C)/2
				}
				pa, ea := live.Admit(tk)
				pb, eb := twin.Admit(tk)
				if (ea == nil) != (eb == nil) || pa != pb {
					t.Fatalf("op %d task %s: live (%+v, %v) vs twin (%+v, %v)", i, tk, pa, ea, pb, eb)
				}
				if ea == nil {
					handles = append(handles, pa.Handle)
				}
			}
			if !bytes.Equal(live.AppendCanonical(nil), twin.AppendCanonical(nil)) {
				t.Fatal("post-continuation canonical state diverged")
			}
		})
	}
}

// TestOnlineRestoreValidation pins RestoreResident/SetHandleSeq input checks.
func TestOnlineRestoreValidation(t *testing.T) {
	o, err := NewOnline(2, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		proc     int
		handle   uint64
		c, tt, d task.Time
	}{
		{-1, 1, 1, 10, 10}, // proc out of range
		{2, 1, 1, 10, 10},  // proc out of range
		{0, 0, 1, 10, 10},  // zero handle
		{0, 1, 0, 10, 10},  // c <= 0
		{0, 1, 5, 10, 4},   // d < c
		{0, 1, 5, 10, 11},  // d > t
		{0, 1, 10, 10, 10}, // infeasible under surcharge 1
	}
	for _, tc := range cases {
		if err := o.RestoreResident(tc.proc, tc.handle, tc.c, tc.tt, tc.d); err == nil {
			t.Errorf("RestoreResident(%+v) accepted", tc)
		}
	}
	if err := o.RestoreResident(1, 7, 3, 10, 10); err != nil {
		t.Fatal(err)
	}
	if err := o.RestoreResident(0, 7, 3, 10, 10); err == nil {
		t.Error("duplicate handle accepted")
	}
	if err := o.SetHandleSeq(6); err == nil {
		t.Error("handle counter moved below restored maximum")
	}
	if err := o.SetHandleSeq(9); err != nil {
		t.Fatal(err)
	}
	if o.HandleSeq() != 9 {
		t.Errorf("HandleSeq = %d, want 9", o.HandleSeq())
	}
	if pl, err := o.Admit(task.Task{C: 1, T: 100}); err != nil || pl.Handle != 10 {
		t.Errorf("post-restore admit: %+v, %v (want handle 10)", pl, err)
	}
}
