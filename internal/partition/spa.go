package partition

import (
	"fmt"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/obs"
	"repro/internal/task"
)

// utilEps absorbs float rounding when comparing utilization sums against
// the Θ threshold; utilizations are ratios of int64s, so accumulated error
// is far below this.
const utilEps = 1e-9

// SPA1 is the light-task algorithm of [16] ("Fixed-Priority Multiprocessor
// Scheduling with Liu & Layland's Utilization Bound"): the same increasing-
// priority, worst-fit, split-on-overflow skeleton as RM-TS/light, but
// admission is the utilization threshold Θ(N) = N(2^{1/N}−1) instead of
// exact RTA — a processor accepts load only while its assigned utilization
// stays at or below Θ, and splitting fills it to exactly Θ.
//
// Its guarantee ([16]) covers light task sets with U_M(τ) ≤ Θ(τ); the
// Result's Guaranteed field reflects that. The consequence the paper
// criticizes (§I) is structural: SPA1 can never utilize a processor beyond
// Θ, no matter how benign the workload.
type SPA1 struct {
	// Trace, when non-nil, records every threshold-admission decision —
	// note the RTAIters field of its events stays 0: threshold packing
	// spends no response-time analysis per decision, which is exactly the
	// cost/benefit contrast the paper draws (§I).
	Trace *obs.Trace
}

// Name implements Algorithm.
func (SPA1) Name() string { return "SPA1" }

// Partition implements Algorithm.
func (a SPA1) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a SPA1) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	tr := a.Trace
	if res := requireImplicit(sorted, asg, "SPA1"); res != nil {
		traceFail(tr, -1, res.Reason)
		return res
	}
	theta := bounds.LL(len(sorted))
	res := ar.result("")
	full := boolBuf(&ar.full, m)
	for i := len(sorted) - 1; i >= 0; i-- {
		f := wholeFragment(i, sorted[i])
		for {
			q := minUtilProcessor(asg, nil, full)
			if q < 0 {
				failWith(res, CauseThresholdExhausted, i,
					"all processors at the Θ threshold while assigning τ"+strconv.Itoa(i))
				traceFail(tr, i, res.Reason)
				return res
			}
			placed, rem, becameFull := thresholdAssign(asg, q, f, sorted, theta, tr)
			if becameFull {
				full[q] = true
			}
			if placed {
				break
			}
			f = rem
		}
		if f.part > 1 {
			res.NumSplit++
		}
	}
	res.OK = true
	lightThr := bounds.LightThresholdFor(len(sorted))
	res.Guaranteed = sorted.IsLight(lightThr) &&
		sorted.NormalizedUtilization(m) <= theta+utilEps
	traceDone(tr, res)
	return res
}

// thresholdAssign is the SPA counterpart of assignOrSplit: admit the
// fragment if U(P_q) + U stays within threshold; otherwise split off
// exactly the utilization that fills the processor to the threshold.
// Synthetic deadlines use the C-based bookkeeping of [16] (body subtasks
// have the highest priority on their hosts in SPA1/SPA2, so R = C).
func thresholdAssign(asg *task.Assignment, q int, f fragment, ts task.Set, threshold float64, tr *obs.Trace) (placed bool, rem fragment, fullQ bool) {
	t := ts[f.idx]
	d := f.deadline(t)
	cAssignAttempts.Inc()
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvAssignAttempt, Task: f.idx, Part: f.part, Proc: q,
			C: f.remC, T: t.T, Deadline: d, Note: "threshold admission"})
	}
	room := threshold - asg.Utilization(q)
	u := float64(f.remC) / float64(t.T)
	if u <= room+utilEps && f.remC <= d {
		asg.Add(q, task.Subtask{
			TaskIndex: f.idx, Part: f.part, C: f.remC, T: t.T,
			Deadline: d, Offset: f.offset, Tail: true,
		})
		cAssignWhole.Inc()
		if tr != nil {
			tr.Add(obs.Event{Kind: obs.EvAssigned, Task: f.idx, Part: f.part, Proc: q,
				C: f.remC, Deadline: d, OK: true,
				Note: fmt.Sprintf("U=%.3f ≤ room %.3f", u, room)})
		}
		return true, fragment{}, false
	}
	portion := task.Time(room * float64(t.T))
	if portion > f.remC-1 {
		portion = f.remC - 1
	}
	if portion > d {
		portion = d
	}
	if portion > 0 {
		asg.Add(q, task.Subtask{
			TaskIndex: f.idx, Part: f.part, C: portion, T: t.T,
			Deadline: d, Offset: f.offset, Tail: false,
		})
		cSplits.Inc()
		if tr != nil {
			tr.Add(obs.Event{Kind: obs.EvSplit, Task: f.idx, Part: f.part, Proc: q,
				C: f.remC, Portion: portion, Remainder: f.remC - portion, Response: portion,
				Note: "split fills the processor to Θ"})
		}
		f = fragment{idx: f.idx, part: f.part + 1, remC: f.remC - portion, offset: f.offset + portion}
	} else if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvReject, Task: f.idx, Part: f.part, Proc: q,
			C: f.remC, Deadline: d, Note: "no room below the Θ threshold"})
	}
	cProcFull.Inc()
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvProcFull, Task: f.idx, Part: f.part, Proc: q})
	}
	return false, f, true
}

// SPA2 is the general algorithm of [16]: SPA1 extended with a
// pre-assignment phase for heavy tasks (U_i > Θ/(1+Θ)) satisfying
// Σ_{j>i} U_j ≤ (|P(τ_i)|−1)·Θ, mirroring RM-TS's structure but with the
// utilization threshold in place of exact RTA everywhere. Guaranteed for
// any task set with U_M(τ) ≤ Θ(τ).
type SPA2 struct {
	// Trace, when non-nil, records every threshold-admission decision (see
	// the SPA1.Trace note on RTAIters staying 0).
	Trace *obs.Trace
}

// Name implements Algorithm.
func (SPA2) Name() string { return "SPA2" }

// Partition implements Algorithm.
func (a SPA2) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a SPA2) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	tr := a.Trace
	if res := requireImplicit(sorted, asg, "SPA2"); res != nil {
		traceFail(tr, -1, res.Reason)
		return res
	}
	n := len(sorted)
	theta := bounds.LL(n)
	lightThr := bounds.LightThresholdFor(n)
	res := ar.result("")

	full := boolBuf(&ar.full, m)
	normal := boolBuf(&ar.normal, m)
	for q := range normal {
		normal[q] = true
	}
	preProcs := ar.preProcs[:0]

	suffix := floatBuf(&ar.suffix, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i].Utilization()
	}

	// Phase 1: pre-assign qualifying heavy tasks, decreasing priority
	// order, lowest-index normal processor.
	tracePhase(tr, "phase 1: pre-assignment of heavy tasks (Θ condition)")
	normalCount := m
	pre := boolBuf(&ar.pre, n)
	for i := 0; i < n; i++ {
		u := sorted[i].Utilization()
		if u <= lightThr || normalCount == 0 {
			continue
		}
		if suffix[i+1] <= float64(normalCount-1)*theta+utilEps {
			q := -1
			for cand := 0; cand < m; cand++ {
				if normal[cand] {
					q = cand
					break
				}
			}
			asg.Add(q, task.Whole(i, sorted[i]))
			asg.PreAssigned[q] = i
			normal[q] = false
			preProcs = append(preProcs, q)
			pre[i] = true
			normalCount--
			res.NumPreAssigned++
			cPreAssign.Inc()
			if tr != nil {
				tr.Add(obs.Event{Kind: obs.EvPreAssign, Task: i, Part: 1, Proc: q,
					C: sorted[i].C, T: sorted[i].T,
					Note: fmt.Sprintf("U_i=%.3f, Θ=%.3f, suffix U=%.3f", u, theta, suffix[i+1])})
			}
		}
	}

	// Phases 2 and 3: threshold packing on normal processors, then
	// first-fit filling of pre-assigned processors from the largest index.
	tracePhase(tr, "phase 2/3: threshold packing (normal, then pre-assigned processors)")
	ar.preProcs = preProcs
	nextPre := len(preProcs) - 1
	for i := n - 1; i >= 0; i-- {
		if pre[i] {
			continue
		}
		f := wholeFragment(i, sorted[i])
		placedWhole := false
		for !placedWhole {
			q := minUtilProcessor(asg, normal, full)
			if q < 0 {
				break
			}
			var becameFull bool
			placedWhole, f, becameFull = spaStep(asg, q, f, sorted, theta, tr)
			if becameFull {
				full[q] = true
			}
		}
		for !placedWhole {
			for nextPre >= 0 && full[preProcs[nextPre]] {
				nextPre--
			}
			if nextPre < 0 {
				cause := CauseThresholdExhausted
				if res.NumPreAssigned == m {
					cause = CausePreAssignExhausted
				}
				failWith(res, cause, i,
					"all processors at the Θ threshold while assigning τ"+strconv.Itoa(i))
				traceFail(tr, i, res.Reason)
				return res
			}
			q := preProcs[nextPre]
			var becameFull bool
			placedWhole, f, becameFull = spaStep(asg, q, f, sorted, theta, tr)
			if becameFull {
				full[q] = true
			}
		}
		if f.part > 1 {
			res.NumSplit++
		}
	}
	res.OK = true
	res.Guaranteed = sorted.NormalizedUtilization(m) <= theta+utilEps
	traceDone(tr, res)
	return res
}

func spaStep(asg *task.Assignment, q int, f fragment, ts task.Set, theta float64, tr *obs.Trace) (bool, fragment, bool) {
	placed, rem, becameFull := thresholdAssign(asg, q, f, ts, theta, tr)
	if placed {
		return true, f, becameFull
	}
	return false, rem, becameFull
}
