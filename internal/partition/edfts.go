package partition

import (
	"fmt"

	"repro/internal/edfa"
	"repro/internal/obs"
	"repro/internal/task"
)

// EDFTS is an EDF counterpart of RM-TS in the spirit of the EDF-based
// splitting algorithms the paper cites as the 65%-bound state of the art
// [17] (window-based semi-partitioning à la EDF-WM): tasks are placed
// whole first-fit under the exact processor-demand test (internal/edfa);
// a task that fits nowhere is split into k fragments with equal deadline
// windows w = D/k, each fragment an independent sporadic demand source
// (C_i, T, w) on its processor, with fragment i released (at the latest)
// at (i−1)·w after the job's release.
//
// Admission is the exact QPA demand test, so — like RM-TS versus SPA —
// this comparator does not stop at a utilization bound; it carries no
// worst-case bound claim (the heuristic window split forfeits the 65%
// analysis) but every accepted set is provably schedulable, which
// VerifyEDF re-establishes and the EDF simulator confirms. Constrained
// deadlines are supported throughout.
type EDFTS struct {
	// Trace, when non-nil, records placement and window-split decisions.
	Trace *obs.Trace
}

// Name implements Algorithm.
func (EDFTS) Name() string { return "EDF-TS" }

// Partition implements Algorithm.
func (a EDFTS) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a EDFTS) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	tr := a.Trace
	res := ar.result("EDF")

	// EDF-WM considers tasks in decreasing utilization order.
	idxs := ar.taskOrder(sorted, DecreasingUtilization)

	// Incremental demand mirror: the per-processor []edfa.Demand view is
	// maintained across placements instead of rebuilt from asg.Procs[q] on
	// every probe (the EDF counterpart of rta.ProcState's interference
	// mirror), and probes run on a single reused scratch buffer.
	demands := ar.demandsBuf(m)

	for _, i := range idxs {
		t := sorted[i]
		d := t.Deadline()
		// Whole placement, first fit.
		placed := false
		for q := 0; q < m; q++ {
			cAssignAttempts.Inc()
			scratch := append(ar.scratch[:0], demands[q]...)
			scratch = append(scratch, edfa.Demand{C: t.C, T: t.T, D: d})
			ar.scratch = scratch
			if edfa.Schedulable(scratch) {
				edfAdd(asg, demands, q, task.Whole(i, t))
				cAssignWhole.Inc()
				if tr != nil {
					tr.Add(obs.Event{Kind: obs.EvAssigned, Task: i, Part: 1, Proc: q,
						C: t.C, Deadline: d, OK: true, Note: "QPA demand test"})
				}
				placed = true
				break
			} else if tr != nil {
				tr.Add(obs.Event{Kind: obs.EvReject, Task: i, Part: 1, Proc: q,
					C: t.C, Deadline: d, Note: "QPA demand test"})
			}
		}
		if placed {
			continue
		}
		// Window split: try k = 2..m equal windows w = D/k; greedily take
		// the largest per-processor budgets until the demand is covered.
		if !splitByWindows(ar, asg, demands, i, t, m, tr) {
			failWith(res, CauseDemandOverload, i,
				fmt.Sprintf("no window split fits τ%d (demand test)", i))
			traceFail(tr, i, res.Reason)
			return res
		}
		res.NumSplit++
		cWindowSplits.Inc()
	}
	res.OK = true
	res.Guaranteed = true
	traceDone(tr, res)
	return res
}

// edfAdd commits a fragment to both the assignment and the incremental
// demand mirror.
func edfAdd(asg *task.Assignment, demands [][]edfa.Demand, q int, s task.Subtask) {
	asg.Add(q, s)
	demands[q] = append(demands[q], edfa.Demand{C: s.C, T: s.T, D: s.Deadline})
}

// splitByWindows attempts the EDF-WM style split of task i; it returns
// whether fragments covering the full demand were assigned. Committed
// fragments update both the assignment and the demand mirror. The candidate
// list lives in the arena and is ordered by (capacity desc, index asc) — a
// total order, so the sort is deterministic.
func splitByWindows(ar *Arena, asg *task.Assignment, demands [][]edfa.Demand, i int, t task.Task, m int, tr *obs.Trace) bool {
	d := t.Deadline()
	base := t.T - d
	for k := task.Time(2); k <= task.Time(m); k++ {
		w := d / k
		if w < 1 {
			break
		}
		caps := ar.caps[:0]
		for q := 0; q < m; q++ {
			c := edfa.MaxAdditionalDemand(demands[q], t.T, w, t.C)
			if c > 0 {
				caps = append(caps, edfCap{q, c})
			}
		}
		ar.caps = caps
		for a := 1; a < len(caps); a++ {
			x := caps[a]
			b := a - 1
			for b >= 0 && (x.c > caps[b].c || (x.c == caps[b].c && x.q < caps[b].q)) {
				caps[b+1] = caps[b]
				b--
			}
			caps[b+1] = x
		}
		var total task.Time
		use := 0
		for use < len(caps) && use < int(k) && total < t.C {
			total += caps[use].c
			use++
		}
		if total < t.C {
			continue // k windows cannot cover the demand; widen the split
		}
		// Assign fragments: part i gets window [(i−1)w, i·w].
		remaining := t.C
		for part := 1; part <= use; part++ {
			c := caps[part-1].c
			if c > remaining {
				c = remaining
			}
			offset := base + task.Time(part-1)*w
			edfAdd(asg, demands, caps[part-1].q, task.Subtask{
				TaskIndex: i, Part: part, C: c, T: t.T,
				Deadline: w, Offset: offset, Tail: part == use || remaining == c,
			})
			if tr != nil {
				tr.Add(obs.Event{Kind: obs.EvSplit, Task: i, Part: part, Proc: caps[part-1].q,
					C: t.C, Portion: c, Remainder: remaining - c, Deadline: w,
					Note: fmt.Sprintf("window %d of %d (w=%d)", part, k, w)})
			}
			remaining -= c
			if remaining == 0 {
				break
			}
		}
		if remaining != 0 {
			panic("partition: EDF-TS window accounting broke")
		}
		return true
	}
	return false
}
