package partition

import (
	"math/rand"
	"testing"

	"repro/internal/task"
)

// Alloc guard for the arena partitioning path: once an Arena has been warmed
// on a task set, repartitioning the same shape must not allocate. This is
// the property that makes per-worker Workspace reuse in the experiment
// harness worthwhile. Run with `go test -run AllocGuard ./...`.
func TestAllocGuardPartitionArena(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	ts := make(task.Set, 0, 10)
	for i := 0; i < 10; i++ {
		T := task.Time(50 + r.Intn(950))
		C := task.Time(1 + r.Intn(int(T)/3))
		ts = append(ts, task.Task{Name: "g", C: C, T: T})
	}
	m := 4
	algos := []struct {
		name string
		alg  ArenaPartitioner
	}{
		{"RM-TS", NewRMTS(nil)},
		{"RM-TS/light", RMTSLight{}},
		{"SPA2", SPA2{}},
		{"FF-RTA", FirstFitRTA{}},
		{"EDF-FF", EDFFirstFit{}},
	}
	for _, a := range algos {
		a := a
		t.Run(a.name, func(t *testing.T) {
			ar := &Arena{}
			a.alg.PartitionArena(ts, m, ar) // warm every buffer
			allocs := testing.AllocsPerRun(100, func() {
				a.alg.PartitionArena(ts, m, ar)
			})
			if allocs != 0 {
				t.Errorf("%s PartitionArena on warm arena: %v allocs/run, want 0", a.name, allocs)
			}
		})
	}
}
