package partition

import (
	"fmt"

	"repro/internal/edfa"
	"repro/internal/task"
)

// Partitioned EDF baselines. The paper's intro positions its fixed-priority
// results against EDF-based approaches: strict partitioned EDF has the same
// 50% bin-packing worst case as any strict partitioning, and the best
// EDF-with-splitting bound it cites is 65% [17]. For implicit-deadline
// tasks, a uniprocessor is EDF-schedulable iff its utilization is at most
// 1, so strict partitioned EDF reduces to pure bin packing with full bins —
// the strongest possible strict partitioner, and therefore the fairest
// non-splitting comparator for RM-TS.
//
// Results produced here carry Scheduler = "EDF"; they must be verified by
// VerifyEDF (per-processor utilization ≤ 1, no splits) and simulated with
// sim.Options{Policy: sim.PolicyEDF}.

// EDFFirstFit is strict partitioned EDF: tasks placed whole, first-fit,
// admission ΣU ≤ 1 per processor (exact for implicit deadlines).
type EDFFirstFit struct {
	// Order picks the task consideration order; zero value is
	// DecreasingUtilization (the classic FFD).
	Order FitOrder
}

// Name implements Algorithm.
func (a EDFFirstFit) Name() string { return "P-EDF-FF(" + a.Order.String() + ")" }

// Partition implements Algorithm.
func (a EDFFirstFit) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a EDFFirstFit) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	return edfFit(ts, m, a.Order, pickFirstFit, ar)
}

// EDFWorstFit is strict partitioned EDF with worst-fit processor choice.
type EDFWorstFit struct {
	// Order picks the task consideration order.
	Order FitOrder
}

// Name implements Algorithm.
func (a EDFWorstFit) Name() string { return "P-EDF-WF(" + a.Order.String() + ")" }

// Partition implements Algorithm.
func (a EDFWorstFit) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a EDFWorstFit) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	return edfFit(ts, m, a.Order, pickWorstFit, ar)
}

func edfFit(ts task.Set, m int, order FitOrder, pick func(*Arena, *task.Assignment) []int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	if res := requireImplicit(sorted, asg, "partitioned EDF (U ≤ 1 test)"); res != nil {
		res.Scheduler = "EDF"
		return res
	}
	res := ar.result("EDF")

	idxs := ar.taskOrder(sorted, order)

	for _, i := range idxs {
		t := sorted[i]
		u := t.Utilization()
		placed := false
		for _, q := range pick(ar, asg) {
			if asg.Utilization(q)+u <= 1+utilEps {
				asg.Add(q, task.Whole(i, t))
				placed = true
				break
			}
		}
		if !placed {
			failWith(res, CauseDemandOverload, i,
				fmt.Sprintf("no processor has utilization room for τ%d (strict EDF partitioning)", i))
			return res
		}
	}
	res.OK = true
	res.Guaranteed = true
	return res
}

// VerifyEDF independently re-checks a partitioned-EDF result (with or
// without window splits): structural invariants, the exact processor-
// demand criterion on every processor (each fragment a sporadic source
// (C, T, Δ)), and — for split tasks — that the fragment windows tile
// without overlap and end by the task's deadline.
func VerifyEDF(res *Result) error {
	if res == nil || res.Assignment == nil {
		return fmt.Errorf("partition: nil result")
	}
	if !res.OK {
		return fmt.Errorf("partition: result reports failure: %s", res.Reason)
	}
	if res.Scheduler != "EDF" {
		return fmt.Errorf("partition: VerifyEDF on a %q result", res.Scheduler)
	}
	asg := res.Assignment
	if err := asg.Validate(); err != nil {
		return fmt.Errorf("partition: structural check failed: %w", err)
	}
	for q, list := range asg.Procs {
		sources := make([]edfa.Demand, len(list))
		for i, s := range list {
			sources[i] = edfa.Demand{C: s.C, T: s.T, D: s.Deadline}
		}
		if !edfa.Schedulable(sources) {
			return fmt.Errorf("partition: processor %d fails the EDF demand criterion", q)
		}
	}
	// Split tasks: windows must be disjoint and end by the deadline.
	for _, idx := range asg.SplitTasks() {
		subs, _ := asg.Subtasks(idx)
		for k := 1; k < len(subs); k++ {
			if subs[k].Offset < subs[k-1].Offset+subs[k-1].Deadline {
				return fmt.Errorf("partition: task %d: window of part %d opens before part %d closes", idx, subs[k].Part, subs[k-1].Part)
			}
		}
		last := subs[len(subs)-1]
		if last.Offset+last.Deadline > asg.Set[idx].T {
			return fmt.Errorf("partition: task %d: final window ends past the deadline", idx)
		}
	}
	return nil
}
