// Invariant guards for partitioning results (the paranoid mode of the
// robustness layer, DESIGN.md §9). Verify and VerifyEDF re-prove
// schedulability of a successful result; Validate layers the remaining
// paper invariants on top — the ones the arena-recycled hot path trusts
// rather than checks:
//
//   - structural soundness (task.Assignment.Validate): split portions sum
//     to C_i, fragment parts contiguous with one tail, no two fragments of
//     a task share a processor, per-processor priority ordering;
//   - per-processor analysis satisfaction: exact RTA of every subtask
//     against its synthetic deadline for fixed-priority results, the
//     processor demand criterion for EDF results;
//   - the splitting budget of the paper's packing argument: each split
//     task closes the processor its body fragment lands on, so a
//     successful partitioning onto M processors has at most M−1 split
//     tasks (fixed-priority splitting algorithms only);
//   - bookkeeping consistency: NumSplit matches the assignment, assigned
//     per-processor utilization never exceeds 1.
//
// ValidateStructural is everything except the exact schedulability
// re-proof; it exists because the threshold-packed SPA results are proven
// schedulable by the utilization-bound theorems of [16], not by exact RTA
// of the synthetic deadlines, and in quantization corner cases outside
// those theorems the RTA re-check can fail on a result the algorithm
// never claimed to certify. ValidateFor picks the strongest level the
// producing algorithm supports.
package partition

import "fmt"

// Validate re-checks every invariant a successful Result promises,
// including the exact schedulability re-proof (Verify or VerifyEDF by
// scheduler). It reruns the analyses from scratch — never touching
// warm-start caches or arenas — so a nil error certifies the partition
// even if the producing hot path was corrupted. Experiments run it behind
// the paranoid flag; a violation there is converted into a
// seed-reproducible SampleError by the panic isolation layer.
func Validate(res *Result) error {
	var err error
	if res != nil && res.Scheduler == "EDF" {
		err = VerifyEDF(res)
	} else {
		err = Verify(res)
	}
	if err != nil {
		return err
	}
	return validateBookkeeping(res)
}

// ValidateStructural checks every Validate invariant except the exact
// schedulability re-proof: structural assignment soundness, utilization
// caps, the split budget, and bookkeeping consistency. It holds for every
// algorithm in the package, threshold-packed or not.
func ValidateStructural(res *Result) error {
	if res == nil || res.Assignment == nil {
		return fmt.Errorf("partition: nil result")
	}
	if !res.OK {
		return fmt.Errorf("partition: result reports failure: %s", res.Reason)
	}
	if err := res.Assignment.Validate(); err != nil {
		return fmt.Errorf("partition: structural check failed: %w", err)
	}
	return validateBookkeeping(res)
}

// ValidateFor validates res at the strongest level alg's theory supports:
// the full exact re-proof for the RTA- and demand-based algorithms, the
// structural level for the threshold-packed ones (whose guarantee comes
// from the utilization-bound theorems of [16], see the package comment).
func ValidateFor(alg Algorithm, res *Result) error {
	switch alg.(type) {
	case SPA1, SPA2, FirstFit:
		return ValidateStructural(res)
	default:
		return Validate(res)
	}
}

// validateBookkeeping holds the invariants shared by Validate and
// ValidateStructural; callers have already established res.OK and a
// structurally valid assignment.
func validateBookkeeping(res *Result) error {
	asg := res.Assignment
	// Per-processor utilization sanity: no admission path may overfill a
	// processor past 1, threshold-based or not. The epsilon absorbs the
	// float rounding of the C/T sums; schedulability itself is certified
	// by the exact integer analyses, not by this check.
	for q := range asg.Procs {
		if u := asg.Utilization(q); u > 1+1e-9 {
			return fmt.Errorf("partition: processor %d utilization %.6f exceeds 1", q, u)
		}
	}
	split := asg.SplitTasks()
	if res.NumSplit != len(split) {
		return fmt.Errorf("partition: NumSplit = %d but the assignment has %d split tasks", res.NumSplit, len(split))
	}
	// The packing argument: a fixed-priority split closes its processor, so
	// M processors admit at most M−1 split tasks. (EDF-TS window splitting
	// spreads a task over several windows and is bounded instead by the
	// no-shared-processor structural rule.)
	if res.Scheduler != "EDF" && len(split) > asg.M()-1 {
		return fmt.Errorf("partition: %d split tasks on %d processors (want ≤ M−1 = %d)", len(split), asg.M(), asg.M()-1)
	}
	return nil
}
