package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestEDFTSWholePlacement(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 2, T: 10},
		{Name: "b", C: 3, T: 15},
		{Name: "c", C: 4, T: 20, D: 12},
	}
	res := (EDFTS{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if res.NumSplit != 0 {
		t.Errorf("unnecessary splits: %d", res.NumSplit)
	}
	if err := VerifyEDF(res); err != nil {
		t.Fatal(err)
	}
}

func TestEDFTSSplitsWhatStrictEDFCannot(t *testing.T) {
	// Three tasks of U = 0.6 on two processors: strict partitioned EDF
	// fails (bin packing), EDF-TS splits.
	ts := task.Set{
		{Name: "a", C: 6, T: 10},
		{Name: "b", C: 6, T: 10},
		{Name: "c", C: 6, T: 10},
	}
	if res := (EDFFirstFit{}).Partition(ts, 2); res.OK {
		t.Fatal("strict EDF fit 3×0.6 on 2 processors")
	}
	res := (EDFTS{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("EDF-TS failed: %s", res.Reason)
	}
	if res.NumSplit == 0 {
		t.Error("no split recorded")
	}
	if err := VerifyEDF(res); err != nil {
		t.Fatalf("%v\n%s", err, res.Assignment)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("simulation missed: %v\n%s", rep.Misses, res.Assignment)
	}
}

func TestEDFTSConstrainedDeadlines(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 4, T: 20, D: 8},
		{Name: "b", C: 6, T: 20, D: 10},
		{Name: "c", C: 9, T: 30, D: 18},
	}
	res := (EDFTS{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if err := VerifyEDF(res); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true, HorizonCap: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
}

func TestEDFTSFuzzVerifyAndSimulate(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}}
	simulated, splits := 0, 0
	for trial := 0; trial < 80; trial++ {
		m := 2 + r.Intn(3)
		base, err := gen.TaskSet(r, gen.Config{
			TargetU: float64(m) * (0.5 + 0.45*r.Float64()),
			UMin:    0.05, UMax: 0.8,
			Periods: menu,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := base
		if r.Intn(2) == 0 {
			ts, err = gen.Constrain(r, base, 0.7, 1.0)
			if err != nil {
				t.Fatal(err)
			}
		}
		res := (EDFTS{}).Partition(ts, m)
		if !res.OK {
			continue
		}
		if err := VerifyEDF(res); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, res.Assignment)
		}
		rep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true, HorizonCap: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d: EDF-TS partition missed: %v\nset=%v\n%s", trial, rep.Misses, ts, res.Assignment)
		}
		simulated++
		splits += res.NumSplit
	}
	if simulated < 40 {
		t.Errorf("only %d partitions simulated", simulated)
	}
	if splits == 0 {
		t.Error("fuzz never exercised a split; workload too easy")
	}
}

func TestEDFTSBeatsStrictEDFOnAverage(t *testing.T) {
	r := rand.New(rand.NewSource(92))
	tsWins, strictWins := 0, 0
	for trial := 0; trial < 60; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.93, UMin: 0.1, UMax: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		a := (EDFTS{}).Partition(ts, 4)
		b := (EDFFirstFit{}).Partition(ts, 4)
		if a.OK && !b.OK {
			tsWins++
		}
		if b.OK && !a.OK {
			strictWins++
		}
	}
	if tsWins <= strictWins {
		t.Errorf("EDF-TS wins %d vs strict EDF wins %d at U_M=0.93", tsWins, strictWins)
	}
}

func TestEDFTSOverloadFails(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 9, T: 10},
		{Name: "b", C: 9, T: 10},
		{Name: "c", C: 9, T: 10},
	}
	res := (EDFTS{}).Partition(ts, 2)
	if res.OK {
		t.Fatal("U=2.7 on 2 processors accepted")
	}
	if res.FailedTask < 0 || res.Reason == "" {
		t.Error("missing diagnostics")
	}
}
