package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestSurchargedView(t *testing.T) {
	list := []task.Subtask{
		{TaskIndex: 0, Part: 1, C: 2, T: 10, Deadline: 10, Tail: true},
		{TaskIndex: 1, Part: 2, C: 3, T: 20, Deadline: 15, Offset: 5, Tail: true},
	}
	same := surcharged(list, 0)
	if &same[0] != &list[0] {
		t.Error("zero surcharge should not copy")
	}
	sur := surcharged(list, 4)
	if sur[0].C != 6 || sur[1].C != 7 {
		t.Errorf("surcharged Cs = %d, %d", sur[0].C, sur[1].C)
	}
	if list[0].C != 2 {
		t.Error("surcharge mutated the original")
	}
}

func TestZeroSurchargeIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 3.2, UMin: 0.05, UMax: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		a := RMTSLight{}.Partition(ts, 4)
		b := RMTSLight{Surcharge: 0}.Partition(ts, 4)
		if a.OK != b.OK {
			t.Fatalf("trial %d: zero-surcharge differs", trial)
		}
		if a.OK && a.Assignment.String() != b.Assignment.String() {
			t.Fatalf("trial %d: assignments differ", trial)
		}
	}
}

func TestSurchargeReducesAcceptance(t *testing.T) {
	r := rand.New(rand.NewSource(51))
	plain, charged := 0, 0
	menu := gen.ChoicePeriods{Values: []task.Time{200, 400, 500, 800, 1000}}
	for trial := 0; trial < 60; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.85, UMin: 0.05, UMax: 0.5, Periods: menu})
		if err != nil {
			t.Fatal(err)
		}
		if res := (&RMTS{}).Partition(ts, 4); res.OK {
			plain++
		}
		if res := (&RMTS{Surcharge: 9}).Partition(ts, 4); res.OK {
			charged++
		}
	}
	if charged >= plain {
		t.Errorf("surcharge 9 did not reduce acceptance: %d vs %d", charged, plain)
	}
	if charged == 0 {
		t.Error("surcharge 9 killed all acceptance; test workload mis-tuned")
	}
}

func TestOverheadAwarePartitionsSurviveCharges(t *testing.T) {
	// The soundness property behind the E13 experiment: partitions
	// admitted with a 3×cost per-fragment surcharge never miss when
	// executed with per-dispatch and per-migration charges of that cost.
	r := rand.New(rand.NewSource(52))
	menu := gen.ChoicePeriods{Values: []task.Time{200, 400, 500, 800, 1000, 2000}}
	for _, ov := range []task.Time{1, 3, 7} {
		aware := &RMTS{Surcharge: 3 * ov}
		survived := 0
		for trial := 0; trial < 25; trial++ {
			ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.75, UMin: 0.05, UMax: 0.5, Periods: menu})
			if err != nil {
				t.Fatal(err)
			}
			res := aware.Partition(ts, 4)
			if !res.OK {
				continue
			}
			if err := VerifyWithSurcharge(res, 3*ov); err != nil {
				t.Fatalf("ov=%d trial %d: %v", ov, trial, err)
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{
				StopOnMiss: true, HorizonCap: 200_000,
				DispatchOverhead: ov, MigrationOverhead: ov,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("ov=%d trial %d: overhead-aware partition missed: %v\n%s",
					ov, trial, rep.Misses, res.Assignment)
			}
			survived++
		}
		if survived < 5 {
			t.Errorf("ov=%d: only %d partitions produced; test too weak", ov, survived)
		}
	}
}

func TestOverheadAwareLightVariant(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	menu := gen.ChoicePeriods{Values: []task.Time{200, 400, 500, 800, 1000}}
	ov := task.Time(2)
	aware := RMTSLight{Surcharge: 3 * ov}
	count := 0
	for trial := 0; trial < 25; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.8, UMin: 0.05, UMax: 0.35, Periods: menu})
		if err != nil {
			t.Fatal(err)
		}
		res := aware.Partition(ts, 4)
		if !res.OK {
			continue
		}
		rep, err := sim.Simulate(res.Assignment, sim.Options{
			StopOnMiss: true, HorizonCap: 200_000,
			DispatchOverhead: ov, MigrationOverhead: ov,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d: missed: %v", trial, rep.Misses)
		}
		count++
	}
	if count < 10 {
		t.Errorf("only %d partitions; test too weak", count)
	}
}

func TestVerifyWithSurchargeCatchesTightPlans(t *testing.T) {
	// A plan packed at zero surcharge generally fails verification under a
	// large surcharge — the margins are simply not there.
	r := rand.New(rand.NewSource(54))
	caught := false
	for trial := 0; trial < 30 && !caught; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.9, UMin: 0.05, UMax: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		res := (&RMTS{}).Partition(ts, 4)
		if !res.OK {
			continue
		}
		if err := VerifyWithSurcharge(res, 0); err != nil {
			t.Fatalf("trial %d: zero-surcharge verify must equal Verify: %v", trial, err)
		}
		if err := VerifyWithSurcharge(res, 50); err != nil {
			caught = true
		}
	}
	if !caught {
		t.Error("no tightly-packed plan failed the surcharged verification")
	}
}
