package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestAdmissionHierarchy(t *testing.T) {
	// RTA accepts ⊇ Hyperbolic accepts ⊇ LL accepts, on random single
	// processors.
	r := rand.New(rand.NewSource(21))
	for trial := 0; trial < 500; trial++ {
		n := 1 + r.Intn(5)
		// Residents sorted by period with RM-consistent indices (the
		// bound-based tests presuppose RM priority order, which the
		// partitioners guarantee by construction).
		periods := make([]task.Time, n+1)
		for i := range periods {
			periods[i] = task.Time(10 + r.Intn(200))
		}
		sortTimes(periods)
		newPos := r.Intn(n + 1)
		list := make([]task.Subtask, 0, n)
		for i, T := range periods {
			if i == newPos {
				continue
			}
			C := task.Time(1 + r.Intn(int(T)/2))
			list = append(list, task.Subtask{TaskIndex: i, Part: 1, C: C, T: T, Deadline: T, Tail: true})
		}
		T := periods[newPos]
		C := task.Time(1 + r.Intn(int(T)))
		prio := newPos
		ll := AdmitLL.admits(list, prio, C, T, T)
		hb := AdmitHyperbolic.admits(list, prio, C, T, T)
		rtaOK := AdmitRTA.admits(list, prio, C, T, T)
		if ll && !hb {
			t.Fatalf("trial %d: LL accepted but hyperbolic rejected", trial)
		}
		if hb && !rtaOK {
			t.Fatalf("trial %d: hyperbolic accepted but RTA rejected (list=%v, C=%d, T=%d)", trial, list, C, T)
		}
	}
}

func sortTimes(v []task.Time) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

func TestAdmissionStrings(t *testing.T) {
	if AdmitRTA.String() != "RTA" || AdmitHyperbolic.String() != "HB" || AdmitLL.String() != "LL" {
		t.Error("admission names wrong")
	}
	if Admission(9).String() == "" {
		t.Error("unknown admission has empty name")
	}
	if (FirstFit{Admission: AdmitHyperbolic}).Name() != "P-RM-FF[HB](DU)" {
		t.Errorf("name = %s", FirstFit{Admission: AdmitHyperbolic}.Name())
	}
}

func TestFirstFitMatchesFirstFitRTA(t *testing.T) {
	r := rand.New(rand.NewSource(22))
	for trial := 0; trial < 30; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 3.0, UMin: 0.05, UMax: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		a := (FirstFit{Admission: AdmitRTA}).Partition(ts, 4)
		b := (FirstFitRTA{}).Partition(ts, 4)
		if a.OK != b.OK {
			t.Fatalf("trial %d: FirstFit[RTA] and FirstFitRTA disagree", trial)
		}
		if a.OK && a.Assignment.String() != b.Assignment.String() {
			t.Fatalf("trial %d: assignments differ", trial)
		}
	}
}

func TestWeakerAdmissionAcceptsFewer(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	counts := map[Admission]int{}
	for trial := 0; trial < 100; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.82, UMin: 0.05, UMax: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		for _, adm := range []Admission{AdmitRTA, AdmitHyperbolic, AdmitLL} {
			if res := (FirstFit{Admission: adm}).Partition(ts, 4); res.OK {
				counts[adm]++
			}
		}
	}
	if !(counts[AdmitRTA] >= counts[AdmitHyperbolic] && counts[AdmitHyperbolic] >= counts[AdmitLL]) {
		t.Errorf("acceptance not ordered RTA ≥ HB ≥ LL: %v", counts)
	}
	if counts[AdmitRTA] == counts[AdmitLL] {
		t.Errorf("no separation between RTA and LL at U_M=0.82: %v", counts)
	}
}

func TestBoundAdmissionPartitionsAreSchedulable(t *testing.T) {
	// Hyperbolic and LL admissions are sufficient tests: their partitions
	// must simulate cleanly too.
	r := rand.New(rand.NewSource(24))
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}}
	simulated := 0
	for trial := 0; trial < 30; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.65, UMin: 0.05, UMax: 0.5, Periods: menu})
		if err != nil {
			t.Fatal(err)
		}
		for _, adm := range []Admission{AdmitHyperbolic, AdmitLL} {
			res := (FirstFit{Admission: adm}).Partition(ts, 4)
			if !res.OK {
				continue
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 200_000})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("trial %d: %s partition missed: %v", trial, adm, rep.Misses)
			}
			simulated++
		}
	}
	if simulated < 20 {
		t.Errorf("only %d partitions simulated", simulated)
	}
}

func TestHanTyanAdmissionTier(t *testing.T) {
	// HT must accept at least what HB accepts, and at most what RTA
	// accepts, across random sets.
	r := rand.New(rand.NewSource(25))
	counts := map[Admission]int{}
	for trial := 0; trial < 120; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.83, UMin: 0.05, UMax: 0.6})
		if err != nil {
			t.Fatal(err)
		}
		for _, adm := range []Admission{AdmitRTA, AdmitHanTyan, AdmitHyperbolic} {
			if res := (FirstFit{Admission: adm}).Partition(ts, 4); res.OK {
				counts[adm]++
			}
		}
	}
	if !(counts[AdmitRTA] >= counts[AdmitHanTyan] && counts[AdmitHanTyan] >= counts[AdmitHyperbolic]) {
		t.Errorf("HT tier out of order: %v", counts)
	}
	if counts[AdmitHanTyan] == counts[AdmitHyperbolic] {
		t.Errorf("no separation between HT and HB at U_M=0.83: %v", counts)
	}
}

func TestHanTyanAdmissionPartitionsSimulateClean(t *testing.T) {
	r := rand.New(rand.NewSource(26))
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}}
	simulated := 0
	for trial := 0; trial < 25; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.8, UMin: 0.05, UMax: 0.5, Periods: menu})
		if err != nil {
			t.Fatal(err)
		}
		res := (FirstFit{Admission: AdmitHanTyan}).Partition(ts, 4)
		if !res.OK {
			continue
		}
		rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 200_000})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("trial %d: Han-Tyan partition missed: %v", trial, rep.Misses)
		}
		simulated++
	}
	if simulated < 10 {
		t.Errorf("only %d partitions simulated", simulated)
	}
}
