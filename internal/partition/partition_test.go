package partition

import (
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestSplittingBeatsStrictPartitioning(t *testing.T) {
	// Three tasks of U=0.6 on two processors: impossible without splitting,
	// trivial with it — the motivating example for task splitting (§I).
	ts := task.Set{
		{Name: "a", C: 3, T: 5},
		{Name: "b", C: 3, T: 5},
		{Name: "c", C: 3, T: 5},
	}
	if res := (FirstFitRTA{}).Partition(ts, 2); res.OK {
		t.Fatal("strict partitioning fit 3×0.6 on 2 processors")
	}
	res := (RMTSLight{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("RM-TS/light failed: %s", res.Reason)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
	if res.NumSplit != 1 {
		t.Errorf("NumSplit = %d, want 1", res.NumSplit)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("simulation missed: %v\n%s", rep.Misses, res.Assignment)
	}
}

func TestRMTSLightHarmonic100Percent(t *testing.T) {
	// Theorem 8 instantiated with the 100% harmonic bound: a light harmonic
	// set with U_M = 1.0 must be schedulable by RM-TS/light.
	ts := task.Set{
		{Name: "a1", C: 1, T: 4}, {Name: "a2", C: 1, T: 4},
		{Name: "b1", C: 2, T: 8}, {Name: "b2", C: 2, T: 8},
		{Name: "c1", C: 4, T: 16}, {Name: "c2", C: 4, T: 16},
		{Name: "c3", C: 4, T: 16}, {Name: "c4", C: 4, T: 16},
	}
	if !ts.IsHarmonic() {
		t.Fatal("test set not harmonic")
	}
	lightThr := bounds.LightThresholdFor(len(ts))
	if !ts.IsLight(lightThr) {
		t.Fatalf("test set not light (thr %.3f)", lightThr)
	}
	if u := ts.NormalizedUtilization(2); u != 1.0 {
		t.Fatalf("U_M = %g, want 1.0", u)
	}
	res := (RMTSLight{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("RM-TS/light rejected a light harmonic set at U_M=1.0: %s\n%s", res.Reason, res.Assignment)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("simulation missed: %v", rep.Misses)
	}
}

func TestTheorem8RandomLightHarmonicSets(t *testing.T) {
	// Property form of Theorem 8 with Λ = 100% (harmonic): random light
	// single-chain sets with U_M(τ) ≤ 1 must always partition.
	//
	// Quantization note: the theorem is proved on the continuous time
	// model, where a bottleneck means "+ε breaks the processor". On the
	// integer tick domain the smallest increment is one tick, so a full
	// processor is only guaranteed to carry Λ − 1/T_min of utilization.
	// The assertion therefore allows a 2/T_min margin (T_min = 64 in this
	// generator).
	r := rand.New(rand.NewSource(20120501))
	for trial := 0; trial < 60; trial++ {
		m := 2 + r.Intn(3)
		ts, err := gen.HarmonicSet(r, gen.HarmonicConfig{
			TargetU: float64(m) * (0.90 + 0.10*r.Float64()),
			UMin:    0.05, UMax: 0.35,
			Chains: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !ts.IsLight(bounds.LightThresholdFor(len(ts))) || !ts.IsHarmonic() {
			continue
		}
		if ts.NormalizedUtilization(m) > 1-2.0/64 {
			continue
		}
		res := (RMTSLight{}).Partition(ts, m)
		if !res.OK {
			t.Fatalf("trial %d: Theorem 8 violated: light harmonic U_M=%.4f on M=%d rejected: %s\nset=%v",
				trial, ts.NormalizedUtilization(m), m, res.Reason, ts)
		}
		if err := Verify(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRMTSBoundKChains(t *testing.T) {
	// §V instantiation: K=2 harmonic chains → bound min(82.8%, 2Θ/(1+Θ)).
	// Random two-chain sets under that bound must partition under RM-TS.
	r := rand.New(rand.NewSource(777))
	alg := NewRMTS(bounds.HarmonicChain{Minimal: true})
	for trial := 0; trial < 40; trial++ {
		m := 2 + r.Intn(3)
		ts, err := gen.HarmonicSet(r, gen.HarmonicConfig{
			TargetU: float64(m) * 0.70, // safely under min(0.828, 2Θ/(1+Θ)) ≈ 0.81-0.84
			UMin:    0.05, UMax: 0.45,
			Chains: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		lambda := alg.Lambda(ts)
		if ts.NormalizedUtilization(m) > lambda || ts.MaxUtilization() > lambda {
			continue
		}
		res := alg.Partition(ts, m)
		if !res.OK {
			t.Fatalf("trial %d: RM-TS bound violated: U_M=%.4f ≤ Λ=%.4f on M=%d rejected: %s",
				trial, ts.NormalizedUtilization(m), lambda, m, res.Reason)
		}
		if err := Verify(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRMTSHandlesHeavyTasks(t *testing.T) {
	// A mix with genuinely heavy tasks (U > Θ/(1+Θ)) that RM-TS must place.
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		m := 4
		ts, err := gen.MixedSet(r, gen.MixedConfig{
			TargetU:    float64(m) * 0.60,
			HeavyShare: 0.5,
			HeavyMin:   0.5, HeavyMax: 0.65,
			LightMin: 0.05, LightMax: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := NewRMTS(nil).Partition(ts, m)
		if !res.OK {
			t.Fatalf("trial %d: RM-TS rejected U_M=%.3f with heavy tasks: %s",
				trial, ts.NormalizedUtilization(m), res.Reason)
		}
		if err := Verify(res); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRMTSPreAssignsQualifyingHeavyTask(t *testing.T) {
	// One heavy high-priority task, few low-priority tasks: condition (8)
	// holds, so it must be pre-assigned.
	ts := task.Set{
		{Name: "heavy", C: 60, T: 100}, // U=0.6, highest priority
		{Name: "l1", C: 30, T: 200},    // U=0.15
		{Name: "l2", C: 45, T: 300},    // U=0.15
	}
	res := NewRMTS(nil).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if res.NumPreAssigned != 1 {
		t.Errorf("NumPreAssigned = %d, want 1", res.NumPreAssigned)
	}
	if res.Assignment.PreAssigned[0] != 0 {
		t.Errorf("pre-assigned processor 0 hosts task %d, want 0", res.Assignment.PreAssigned[0])
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
}

func TestRMTSPhase3GeneralPriorityInsert(t *testing.T) {
	// Force phase 3 to put a LOWER-priority task onto a processor whose
	// pre-assigned task has HIGHER priority: heavy task with short period,
	// leftovers with long periods, M=1... use M=2 with one normal
	// processor saturated.
	ts := task.Set{
		{Name: "heavy", C: 50, T: 100}, // heavy, highest priority
		{Name: "n1", C: 140, T: 200},   // U=0.7
		{Name: "n2", C: 90, T: 300},    // U=0.3
		{Name: "n3", C: 120, T: 400},   // U=0.3
	}
	res := NewRMTS(nil).Partition(ts, 2)
	if res.OK {
		if err := Verify(res); err != nil {
			t.Fatalf("phase-3 result fails verification: %v\n%s", err, res.Assignment)
		}
		rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Ok() {
			t.Fatalf("simulation missed: %v\n%s", rep.Misses, res.Assignment)
		}
	}
	// Whether it fits or not, the run must be internally consistent; a
	// failure must name the culprit task.
	if !res.OK && res.FailedTask < 0 {
		t.Error("failure without a culprit task")
	}
}

func TestSPA2AcceptsUpToLLBoundOnly(t *testing.T) {
	// SPA2's Guaranteed flag caps at Θ(N) even when packing succeeds — the
	// paper's critique of [16].
	r := rand.New(rand.NewSource(8))
	anyAboveGuaranteed := false
	for trial := 0; trial < 40; trial++ {
		m := 4
		target := 0.75 + 0.2*r.Float64() // straddles Θ ≈ 0.70
		ts, err := gen.TaskSet(r, gen.Config{TargetU: float64(m) * target, UMin: 0.05, UMax: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		theta := bounds.LL(len(ts))
		res := (SPA2{}).Partition(ts, m)
		um := ts.NormalizedUtilization(m)
		if res.Guaranteed && um > theta+1e-6 {
			t.Fatalf("trial %d: SPA2 guaranteed above Θ: U_M=%.4f Θ=%.4f", trial, um, theta)
		}
		if res.OK && um > theta {
			anyAboveGuaranteed = true // packs fine, but no guarantee
		}
		if um <= theta && !res.OK {
			t.Fatalf("trial %d: SPA2 failed below its bound: U_M=%.4f Θ=%.4f: %s", trial, um, theta, res.Reason)
		}
	}
	_ = anyAboveGuaranteed
}

func TestSPA1LightGuarantee(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		m := 4
		ts, err := gen.TaskSet(r, gen.Config{TargetU: float64(m) * 0.65, UMin: 0.05, UMax: 0.35})
		if err != nil {
			t.Fatal(err)
		}
		theta := bounds.LL(len(ts))
		if ts.NormalizedUtilization(m) > theta {
			continue
		}
		if !ts.IsLight(bounds.LightThresholdFor(len(ts))) {
			continue
		}
		res := (SPA1{}).Partition(ts, m)
		if !res.OK || !res.Guaranteed {
			t.Fatalf("trial %d: SPA1 rejected a light set under Θ: ok=%v g=%v %s",
				trial, res.OK, res.Guaranteed, res.Reason)
		}
	}
}

func TestRMTSBeatsSPA2OnAverage(t *testing.T) {
	// The paper's average-case claim: with exact RTA packing, RM-TS accepts
	// far more sets between Θ and 1 than SPA2 guarantees.
	r := rand.New(rand.NewSource(10))
	rmts := NewRMTS(nil)
	rmtsWins, spa2Wins := 0, 0
	for trial := 0; trial < 60; trial++ {
		m := 4
		ts, err := gen.TaskSet(r, gen.Config{TargetU: float64(m) * 0.80, UMin: 0.05, UMax: 0.45})
		if err != nil {
			t.Fatal(err)
		}
		a := rmts.Partition(ts, m)
		b := (SPA2{}).Partition(ts, m)
		if a.Guaranteed && !b.Guaranteed {
			rmtsWins++
		}
		if b.Guaranteed && !a.Guaranteed {
			spa2Wins++
		}
		if a.OK {
			if err := Verify(a); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
		}
	}
	if rmtsWins <= spa2Wins {
		t.Errorf("RM-TS wins %d, SPA2 wins %d — expected RM-TS to dominate at U_M=0.80", rmtsWins, spa2Wins)
	}
	if rmtsWins < 20 {
		t.Errorf("RM-TS only won %d/60 at U_M=0.80; expected a clear majority", rmtsWins)
	}
}

func TestPartitionedResultsSimulateClean(t *testing.T) {
	// End-to-end: every successful partition (all algorithms) simulates
	// without a miss over the capped hyperperiod. Small-period menu keeps
	// hyperperiods tiny.
	r := rand.New(rand.NewSource(12))
	pg := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200, 400}}
	algos := []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}, FirstFitRTA{}, WorstFitRTA{}}
	simulated := 0
	for trial := 0; trial < 40; trial++ {
		m := 2 + r.Intn(3)
		ts, err := gen.TaskSet(r, gen.Config{
			TargetU: float64(m) * (0.5 + 0.4*r.Float64()),
			UMin:    0.05, UMax: 0.5,
			Periods: pg,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range algos {
			res := alg.Partition(ts, m)
			if !res.OK || !res.Guaranteed {
				continue
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 500_000})
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, alg.Name(), err)
			}
			if !rep.Ok() {
				t.Fatalf("trial %d: %s produced a deadline miss: %v\nset=%v\n%s",
					trial, alg.Name(), rep.Misses, ts, res.Assignment)
			}
			simulated++
		}
	}
	if simulated < 40 {
		t.Errorf("only %d successful partitions simulated; test too weak", simulated)
	}
}

func TestDeterminism(t *testing.T) {
	ts, err := gen.TaskSet(rand.New(rand.NewSource(5)), gen.Config{TargetU: 3.1, UMin: 0.1, UMax: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}, FirstFitRTA{}, WorstFitRTA{}} {
		a := alg.Partition(ts, 4)
		b := alg.Partition(ts, 4)
		if a.OK != b.OK || a.NumSplit != b.NumSplit || a.NumPreAssigned != b.NumPreAssigned {
			t.Errorf("%s not deterministic", alg.Name())
		}
		if a.OK && a.Assignment.String() != b.Assignment.String() {
			t.Errorf("%s produced different assignments on identical input", alg.Name())
		}
	}
}

func TestInputNotMutated(t *testing.T) {
	ts := task.Set{{Name: "b", C: 5, T: 20}, {Name: "a", C: 2, T: 10}}
	orig := ts.Clone()
	_ = (RMTSLight{}).Partition(ts, 2)
	for i := range ts {
		if ts[i] != orig[i] {
			t.Fatalf("input mutated at %d: %v vs %v", i, ts[i], orig[i])
		}
	}
}

func TestPrepareErrors(t *testing.T) {
	algos := []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}, FirstFitRTA{}, WorstFitRTA{}}
	for _, alg := range algos {
		if res := alg.Partition(task.Set{{C: 1, T: 4}}, 0); res.OK {
			t.Errorf("%s accepted m=0", alg.Name())
		}
		if res := alg.Partition(task.Set{}, 2); res.OK {
			t.Errorf("%s accepted empty set", alg.Name())
		}
		if res := alg.Partition(task.Set{{C: 5, T: 4}}, 2); res.OK {
			t.Errorf("%s accepted C>T", alg.Name())
		}
	}
}

func TestOverloadFailsWithCulprit(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 9, T: 10},
		{Name: "b", C: 9, T: 10},
		{Name: "c", C: 9, T: 10},
	}
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}} {
		res := alg.Partition(ts, 2) // U=2.7 > 2
		if res.OK {
			t.Errorf("%s accepted U=2.7 on M=2", alg.Name())
			continue
		}
		if res.FailedTask < 0 || res.Reason == "" {
			t.Errorf("%s failure lacks diagnostics: %+v", alg.Name(), res)
		}
	}
}

func TestVerifyRejectsFailuresAndNil(t *testing.T) {
	if err := Verify(nil); err == nil {
		t.Error("nil result verified")
	}
	if err := Verify(&Result{}); err == nil {
		t.Error("empty result verified")
	}
	res := (RMTSLight{}).Partition(task.Set{{C: 9, T: 10}, {C: 9, T: 10}, {C: 9, T: 10}}, 2)
	if err := Verify(res); err == nil {
		t.Error("failed partition verified")
	}
}

func TestVerifyCatchesTamperedDeadline(t *testing.T) {
	ts := task.Set{{Name: "a", C: 3, T: 5}, {Name: "b", C: 3, T: 5}, {Name: "c", C: 3, T: 5}}
	res := (RMTSLight{}).Partition(ts, 2)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	// Inflate a split tail's deadline beyond its legitimate value.
	tampered := false
	for q := range res.Assignment.Procs {
		for i := range res.Assignment.Procs[q] {
			s := &res.Assignment.Procs[q][i]
			if s.Part > 1 {
				s.Deadline = s.T
				s.Offset = 0
				tampered = true
			}
		}
	}
	if !tampered {
		t.Skip("no split produced")
	}
	if err := Verify(res); err == nil {
		t.Error("tampered synthetic deadline passed verification")
	}
}

func TestWorstFitSpreadsLoad(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 2, T: 10},
		{Name: "b", C: 2, T: 10},
		{Name: "c", C: 2, T: 10},
		{Name: "d", C: 2, T: 10},
	}
	res := (WorstFitRTA{}).Partition(ts, 4)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	for q := 0; q < 4; q++ {
		if len(res.Assignment.Procs[q]) != 1 {
			t.Fatalf("worst-fit did not spread: %s", res.Assignment)
		}
	}
	res = (FirstFitRTA{}).Partition(ts, 4)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	if len(res.Assignment.Procs[0]) != 4 {
		t.Fatalf("first-fit did not pack P0: %s", res.Assignment)
	}
}

func TestFitOrderNames(t *testing.T) {
	if (FirstFitRTA{Order: IncreasingPriority}).Name() != "P-RM-FF(IP)" {
		t.Error("FF name wrong")
	}
	if (WorstFitRTA{}).Name() != "P-RM-WF(DU)" {
		t.Error("WF name wrong")
	}
	if FitOrder(99).String() == "" {
		t.Error("unknown order has empty name")
	}
}

func TestNamesStable(t *testing.T) {
	names := map[string]bool{}
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), SPA1{}, SPA2{}, FirstFitRTA{}, WorstFitRTA{}} {
		n := alg.Name()
		if n == "" || names[n] {
			t.Errorf("bad or duplicate name %q", n)
		}
		names[n] = true
	}
}
