// Sufficient-PUB admission prefilter (DESIGN.md §13). The exact RTA
// admission probe is the partitioners' hot path; most probes on
// lightly-loaded processors succeed, and many of those successes are already
// provable by a closed-form parametric utilization bound — the paper's own
// currency — without running a single fixed point.
//
// The test: for the post-insert processor view, if the priority order is
// deadline-monotonic and the deadline-density hyperbolic product
// Π (1 + C_i/Δ_i) stays below 2 (minus a float-safety epsilon), the
// processor is schedulable. Soundness chain (see rta.ProcState.DensityProbe):
// the surrogate implicit-deadline set (C_i, Δ_i) is RM-schedulable by the
// Bini–Buttazzo hyperbolic bound (which admits a strict superset of the
// Liu–Layland sum test, by AM–GM); Δ_i ≤ T_i makes real interference no
// larger than the surrogate's; DM order equals the surrogate's RM order.
// Hence prefilter-yes ⟹ exact-RTA-yes, so skipping the RTA probe never
// changes an admission verdict — golden tables are byte-identical with the
// prefilter on or off, only rta.iterations and the probe cost change.
package partition

import (
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/task"
)

// prefilterOff is the global toggle; the zero value means enabled.
var prefilterOff atomic.Bool

// SetPrefilter enables (true, the default) or disables the sufficient
// utilization-bound admission prefilter. Disabling never changes any
// admission verdict — only how much fixed-point work reaching it costs.
func SetPrefilter(on bool) { prefilterOff.Store(!on) }

// PrefilterEnabled reports whether the admission prefilter is active.
func PrefilterEnabled() bool { return !prefilterOff.Load() }

// cPrefilterHits counts admissions decided by the closed-form density test
// alone, with the exact RTA probe skipped entirely.
var cPrefilterHits = obs.NewCounter("partition.prefilter.hits")

// prefilterEps keeps the float comparison strictly inside the hyperbolic
// bound, so rounding can never admit a set the exact bound would not.
const prefilterEps = 1e-9

// prefilterAdmit reports whether the density test alone proves the processor
// schedulable after inserting a candidate with raw execution c and synthetic
// deadline d at priority index prio. False means "unknown — run exact RTA",
// never "rejected".
func prefilterAdmit(ps *rta.ProcState, prio int, c, d task.Time) bool {
	if !PrefilterEnabled() {
		return false
	}
	prod, dmOK := ps.DensityProbe(prio, c, d)
	if !dmOK || prod > 2-prefilterEps {
		return false
	}
	if obs.On() {
		cPrefilterHits.Inc()
	}
	return true
}
