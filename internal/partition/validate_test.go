package partition

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/task"
)

func rmtsResult(t *testing.T) *Result {
	t.Helper()
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		ts := fuzzSet(r)
		m := 2 + r.Intn(4)
		res := NewRMTS(nil).Partition(ts, m)
		if res.OK && res.NumSplit > 0 {
			return res
		}
	}
	t.Fatal("no successful split partition found")
	return nil
}

func TestValidateAcceptsGoodResults(t *testing.T) {
	res := rmtsResult(t)
	if err := Validate(res); err != nil {
		t.Fatalf("Validate rejected a good RM-TS result: %v", err)
	}
	if err := ValidateStructural(res); err != nil {
		t.Fatalf("ValidateStructural rejected a good RM-TS result: %v", err)
	}
}

func TestValidateCatchesTamperedPortionSum(t *testing.T) {
	res := rmtsResult(t)
	// Inflate one fragment's execution: portions no longer sum to C_i.
	res.Assignment.Procs[0][0].C++
	if err := Validate(res); err == nil {
		t.Fatal("Validate accepted a tampered portion sum")
	}
	if err := ValidateStructural(res); err == nil {
		t.Fatal("ValidateStructural accepted a tampered portion sum")
	}
}

func TestValidateCatchesSplitBudgetViolation(t *testing.T) {
	// Build a hand-made 2-processor assignment with 2 split tasks — more
	// than the M−1 = 1 the packing argument allows — that is structurally
	// valid and trivially schedulable.
	ts := task.Set{{Name: "a", C: 2, T: 100}, {Name: "b", C: 2, T: 100}}
	sorted := ts.Clone()
	sorted.SortRM()
	asg := task.NewAssignment(sorted, 2)
	asg.Add(0, task.Subtask{TaskIndex: 0, Part: 1, C: 1, T: 100, Deadline: 100, Offset: 0})
	asg.Add(1, task.Subtask{TaskIndex: 0, Part: 2, C: 1, T: 100, Deadline: 97, Offset: 3, Tail: true})
	asg.Add(1, task.Subtask{TaskIndex: 1, Part: 1, C: 1, T: 100, Deadline: 100, Offset: 0})
	asg.Add(0, task.Subtask{TaskIndex: 1, Part: 2, C: 1, T: 100, Deadline: 97, Offset: 3, Tail: true})
	res := &Result{OK: true, Assignment: asg, FailedTask: -1, NumSplit: 2}
	err := Validate(res)
	if err == nil {
		t.Fatal("Validate accepted 2 split tasks on 2 processors")
	}
	if !strings.Contains(err.Error(), "split tasks") {
		t.Fatalf("wrong failure: %v", err)
	}
}

func TestValidateCatchesNumSplitMismatch(t *testing.T) {
	res := rmtsResult(t)
	res.NumSplit++
	if err := Validate(res); err == nil || !strings.Contains(err.Error(), "NumSplit") {
		t.Fatalf("Validate missed the NumSplit mismatch: %v", err)
	}
}

func TestValidateRejectsFailedAndNil(t *testing.T) {
	if err := Validate(nil); err == nil {
		t.Error("Validate(nil) = nil")
	}
	if err := ValidateStructural(&Result{OK: false, Reason: "x"}); err == nil {
		t.Error("ValidateStructural accepted a failed result")
	}
}

// TestValidateForAllAlgorithms runs every algorithm over random sets and
// requires ValidateFor to accept every successful result — the exact
// property the paranoid experiment mode enforces per sample.
func TestValidateForAllAlgorithms(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	algos := allValidateAlgos()
	for trial := 0; trial < 150; trial++ {
		ts := fuzzSet(r)
		m := 1 + r.Intn(6)
		for _, alg := range algos {
			res := alg.Partition(ts, m)
			if !res.OK {
				continue
			}
			if err := ValidateFor(alg, res); err != nil {
				t.Fatalf("trial %d: %s: ValidateFor rejected its own result: %v\nset=%v\n%s",
					trial, alg.Name(), err, ts, res.Assignment)
			}
		}
	}
}

// allValidateAlgos is the full algorithm inventory the invariant fuzz
// covers: the paper's splitting algorithms, the SPA baselines, strict
// RTA/threshold packing, and the EDF comparators.
func allValidateAlgos() []Algorithm {
	return []Algorithm{
		RMTSLight{},
		NewRMTS(nil),
		SPA1{},
		SPA2{},
		FirstFitRTA{},
		WorstFitRTA{},
		FirstFit{Admission: AdmitHyperbolic},
		FirstFit{Admission: AdmitLL},
		EDFFirstFit{},
		EDFWorstFit{},
		EDFTS{},
	}
}

// FuzzValidate is the native fuzz target over all algorithms: derive a
// task set from the fuzz input, partition it with every algorithm, and
// require every successful result to pass its invariant guard. Crashes
// and guard rejections are both failures.
func FuzzValidate(f *testing.F) {
	f.Add(int64(1), uint8(2))
	f.Add(int64(31337), uint8(4))
	f.Add(int64(-7), uint8(1))
	f.Add(int64(424242), uint8(6))
	algos := allValidateAlgos()
	f.Fuzz(func(t *testing.T, seed int64, mRaw uint8) {
		r := rand.New(rand.NewSource(seed))
		ts := fuzzSet(r)
		m := 1 + int(mRaw%8)
		for _, alg := range algos {
			res := alg.Partition(ts, m)
			if res == nil {
				t.Fatalf("%s returned nil", alg.Name())
			}
			if !res.OK {
				continue
			}
			if err := ValidateFor(alg, res); err != nil {
				t.Fatalf("%s: invariant violation on seed=%d m=%d: %v", alg.Name(), seed, m, err)
			}
		}
	})
}
