package partition

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestEDFFirstFitPacksFullBins(t *testing.T) {
	// Four tasks of U=0.5 fit exactly on two processors under EDF (full
	// bins), whereas RM-based strict partitioning cannot (Θ(2) < 1).
	ts := task.Set{
		{Name: "a", C: 5, T: 10},
		{Name: "b", C: 5, T: 10},
		{Name: "c", C: 5, T: 10},
		{Name: "d", C: 5, T: 10},
	}
	res := (EDFFirstFit{}).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("EDF-FF failed: %s", res.Reason)
	}
	if err := VerifyEDF(res); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("EDF simulation missed at exactly 100%% per processor: %v", rep.Misses)
	}
}

func TestEDFSimulationDiffersFromFP(t *testing.T) {
	// Two tasks at combined U=1.0 with non-harmonic periods: EDF schedules
	// them on one processor, RM does not.
	ts := task.Set{
		{Name: "a", C: 3, T: 6},
		{Name: "b", C: 5, T: 10},
	}
	res := (EDFFirstFit{}).Partition(ts, 1)
	if !res.OK {
		t.Fatalf("EDF rejected U=1.0 on one processor: %s", res.Reason)
	}
	edfRep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !edfRep.Ok() {
		t.Fatalf("EDF missed at U=1.0: %v", edfRep.Misses)
	}
	fpRep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyFP, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if fpRep.Ok() {
		t.Error("RM scheduled a non-harmonic set at U=1.0 — impossible (L&L)")
	}
}

func TestEDFSimulatesWindowSplitFragments(t *testing.T) {
	// A window split (w = 6 each): part 1 due at 6, part 2 ready at 6, due
	// at 12. Each fragment runs on its own processor; responses follow the
	// windows.
	set := task.Set{{Name: "w", C: 6, T: 12}}
	a := task.NewAssignment(set, 2)
	a.Add(0, task.Subtask{TaskIndex: 0, Part: 1, C: 3, T: 12, Deadline: 6, Offset: 0})
	a.Add(1, task.Subtask{TaskIndex: 0, Part: 2, C: 3, T: 12, Deadline: 6, Offset: 6, Tail: true})
	rep, err := sim.Simulate(a, sim.Options{Policy: sim.PolicyEDF, Horizon: 120, StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("window-split fragments missed: %v", rep.Misses)
	}
	// Completion-based chaining lets part 2 start right after part 1, so
	// the job response is the serial execution time.
	if rep.WorstResponse[0] != 6 {
		t.Errorf("job response = %d, want 6", rep.WorstResponse[0])
	}
}

func TestVerifyEDFCatchesWrongScheduler(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 4}}
	res := (FirstFitRTA{}).Partition(ts, 1)
	if err := VerifyEDF(res); err == nil {
		t.Error("VerifyEDF accepted an FP result")
	}
	resEDF := (EDFFirstFit{}).Partition(ts, 1)
	if err := Verify(resEDF); err != nil {
		// FP Verify on an EDF result is allowed to pass or fail; it just
		// must not panic. Nothing to assert.
		_ = err
	}
}

func TestEDFWorstFitSpreads(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 2, T: 10},
		{Name: "b", C: 2, T: 10},
		{Name: "c", C: 2, T: 10},
		{Name: "d", C: 2, T: 10},
	}
	res := (EDFWorstFit{}).Partition(ts, 4)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	for q := 0; q < 4; q++ {
		if len(res.Assignment.Procs[q]) != 1 {
			t.Fatalf("worst-fit did not spread: %s", res.Assignment)
		}
	}
}

func TestEDFBinPackingLimitVsRMTS(t *testing.T) {
	// The §I argument quantified: strict partitioned EDF still fails on
	// workloads that splitting schedules — e.g. 3 × U=0.6 on 2 processors.
	ts := task.Set{
		{Name: "a", C: 3, T: 5},
		{Name: "b", C: 3, T: 5},
		{Name: "c", C: 3, T: 5},
	}
	if res := (EDFFirstFit{}).Partition(ts, 2); res.OK {
		t.Fatal("P-EDF fit 3×0.6 on 2 processors without splitting")
	}
	if res := (RMTSLight{}).Partition(ts, 2); !res.OK {
		t.Fatalf("RM-TS/light failed: %s", res.Reason)
	}
}

func TestEDFPartitionsSimulateClean(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}}
	simulated := 0
	for trial := 0; trial < 30; trial++ {
		ts, err := gen.TaskSet(r, gen.Config{TargetU: 4 * (0.6 + 0.35*r.Float64()), UMin: 0.05, UMax: 0.8, Periods: menu})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []Algorithm{EDFFirstFit{}, EDFWorstFit{}} {
			res := alg.Partition(ts, 4)
			if !res.OK {
				continue
			}
			if err := VerifyEDF(res); err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{Policy: sim.PolicyEDF, StopOnMiss: true, HorizonCap: 200_000})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("trial %d: %s missed: %v\n%s", trial, alg.Name(), rep.Misses, res.Assignment)
			}
			simulated++
		}
	}
	if simulated < 20 {
		t.Errorf("only %d EDF partitions simulated", simulated)
	}
}

func TestEDFNamesAndScheduler(t *testing.T) {
	if (EDFFirstFit{}).Name() != "P-EDF-FF(DU)" {
		t.Error("EDF FF name wrong")
	}
	res := (EDFFirstFit{}).Partition(task.Set{{C: 1, T: 4}}, 1)
	if res.Scheduler != "EDF" {
		t.Errorf("scheduler = %q", res.Scheduler)
	}
}
