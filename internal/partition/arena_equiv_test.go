package partition

import (
	"math/rand"
	"testing"
)

// TestArenaEquivalence is the memory-discipline contract: partitioning into
// a dirty, reused arena must produce byte-identical results to a fresh
// Partition call, for every algorithm, across adversarial task-set shapes
// and varying processor counts (so arena buffers shrink and grow between
// calls). One arena is shared by all algorithms and all trials — maximal
// staleness.
func TestArenaEquivalence(t *testing.T) {
	algos := []ArenaPartitioner{
		NewRMTS(nil),
		&RMTS{Surcharge: 2},
		RMTSLight{},
		RMTSLight{Surcharge: 1},
		SPA1{},
		SPA2{},
		EDFTS{},
		FirstFitRTA{},
		WorstFitRTA{},
		WorstFitRTA{Order: IncreasingPriority},
		FirstFit{Admission: AdmitRTA},
		FirstFit{Admission: AdmitHyperbolic},
		EDFFirstFit{},
		EDFWorstFit{},
	}
	ar := new(Arena)
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		ts := fuzzSet(r)
		m := 1 + r.Intn(6)
		for _, alg := range algos {
			fresh := resultFingerprint(alg.Partition(ts, m))
			reused := resultFingerprint(alg.PartitionArena(ts, m, ar))
			if fresh != reused {
				t.Fatalf("trial %d: %s diverged between fresh and arena-backed runs on %v (m=%d)\n--- fresh ---\n%s--- arena ---\n%s",
					trial, alg.Name(), ts, m, fresh, reused)
			}
		}
	}
}

// TestArenaInputNotRetained pins the ownership rule that PartitionArena
// never modifies or aliases its input set.
func TestArenaInputNotRetained(t *testing.T) {
	r := rand.New(rand.NewSource(78))
	ar := new(Arena)
	ts := fuzzSet(r)
	before := ts.Clone()
	res := RMTSLight{}.PartitionArena(ts, 3, ar)
	if res.Assignment != nil && len(res.Assignment.Set) > 0 && &res.Assignment.Set[0] == &ts[0] {
		t.Fatalf("arena result aliases the input set")
	}
	for i := range ts {
		if ts[i] != before[i] {
			t.Fatalf("input set modified at %d: %v != %v", i, ts[i], before[i])
		}
	}
}
