package partition

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/rta"
	"repro/internal/split"
	"repro/internal/task"
)

// resultFingerprint renders every decision-bearing field of a Result —
// anything here differing between cache modes would change experiment
// tables or assignments.
func resultFingerprint(res *Result) string {
	s := fmt.Sprintf("ok=%v guar=%v failed=%d reason=%q splits=%d pre=%d sched=%q\n",
		res.OK, res.Guaranteed, res.FailedTask, res.Reason, res.NumSplit, res.NumPreAssigned, res.Scheduler)
	if res.Assignment != nil {
		s += fmt.Sprintf("preassigned=%v\n", res.Assignment.PreAssigned)
		for q, procs := range res.Assignment.Procs {
			s += fmt.Sprintf("proc %d: %v (U=%.17g)\n", q, procs, res.Assignment.Utilization(q))
		}
	}
	return s
}

// TestCacheEquivalence is the headline contract of the incremental RTA
// engine: every partitioner must produce byte-identical results with
// warm-start caching on and off, across adversarial task-set shapes. The
// warm path may only change how many iterations each fixed point takes,
// never which fixed point is reached.
func TestCacheEquivalence(t *testing.T) {
	defer rta.SetWarmStart(true)
	algos := []Algorithm{
		NewRMTS(nil),
		&RMTS{Surcharge: 2},
		RMTSLight{},
		RMTSLight{Surcharge: 1},
		SPA1{},
		SPA2{},
		EDFTS{},
		FirstFitRTA{},
		WorstFitRTA{},
		FirstFit{Admission: AdmitRTA},
	}
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 400; trial++ {
		ts := fuzzSet(r)
		m := 1 + r.Intn(6)
		for _, alg := range algos {
			rta.SetWarmStart(true)
			warm := resultFingerprint(alg.Partition(ts, m))
			rta.SetWarmStart(false)
			cold := resultFingerprint(alg.Partition(ts, m))
			rta.SetWarmStart(true)
			if warm != cold {
				t.Fatalf("trial %d: %s diverged between cache modes on %v (m=%d)\n--- warm ---\n%s--- cold ---\n%s",
					trial, alg.Name(), ts, m, warm, cold)
			}
		}
	}
}

// TestMaxPortionStateMatchesMaxPortionAt cross-checks the ProcState-backed
// split search against the slice-based one on processor states an actual
// partitioner run produces, in both cache modes.
func TestMaxPortionStateMatchesMaxPortionAt(t *testing.T) {
	defer rta.SetWarmStart(true)
	r := rand.New(rand.NewSource(100))
	for trial := 0; trial < 300; trial++ {
		ts := fuzzSet(r)
		m := 1 + r.Intn(4)
		res := NewRMTS(nil).Partition(ts, m)
		if res.Assignment == nil {
			continue
		}
		for q, procs := range res.Assignment.Procs {
			if len(procs) == 0 {
				continue
			}
			// Rebuild the mirror the partitioner would hold for this
			// processor and probe a fresh candidate against it.
			ps := &rta.ProcState{}
			for _, sub := range procs {
				ps.Insert(sub)
			}
			// Real probes never share a TaskIndex with a resident of the
			// same processor (a split's remainder moves to a different
			// processor), and MaxPortionAt and PosFor break the never-
			// occurring tie differently — so draw a non-colliding priority.
			prio := r.Intn(len(res.Assignment.Set) + 1)
			for taken := true; taken; {
				taken = false
				for _, sub := range procs {
					if sub.TaskIndex == prio {
						prio = r.Intn(len(res.Assignment.Set) + 1)
						taken = true
						break
					}
				}
			}
			T := task.Time(10 + r.Intn(1000))
			budget := task.Time(1 + r.Intn(200))
			d := task.Time(1 + r.Intn(int(T)))
			want := split.MaxPortionAt(procs, prio, T, budget, d)
			for _, mode := range []bool{true, false} {
				rta.SetWarmStart(mode)
				if got := split.MaxPortionState(ps, prio, T, budget, d); got != want {
					t.Fatalf("trial %d proc %d (warm=%v): MaxPortionState=%d MaxPortionAt=%d (procs=%v prio=%d T=%d budget=%d d=%d)",
						trial, q, mode, got, want, procs, prio, T, budget, d)
				}
			}
			rta.SetWarmStart(true)
		}
	}
}
