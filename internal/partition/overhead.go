package partition

import (
	"fmt"

	"repro/internal/rta"
	"repro/internal/task"
)

// Overhead-aware admission.
//
// The paper's analysis (like all classic RTA) assumes context switches are
// free. On a real platform every dispatch costs time, and a partitioning
// packed to the exact RTA bottleneck (the whole point of MaxSplit) has
// zero slack to absorb it: the overhead-sensitivity experiment shows that
// even one tick of dispatch cost makes naively-packed sets miss.
//
// The remedy implemented here is to model the overhead *inside* the
// admission analysis: every (sub)task term in every RTA evaluation — own
// demand and interference alike — is surcharged by a per-fragment budget
// s. With the simulator's charging model (one charge per dispatch switch,
// one per fragment migration, each costing ov ticks), s = 3·ov is
// sufficient, by attributing every charge in an analysed busy window to
// one fragment job active in it:
//
//   - each fragment job pays its own start dispatch (1·ov) and, for
//     fragments k ≥ 2, its migration activation (1·ov);
//   - each fragment job's arrival displaces at most one running victim,
//     whose later resume dispatch (1·ov) is attributed to the arriving
//     job;
//
// so a fragment job accounts for at most 3·ov of charges, and surcharging
// its term in every response-time recurrence by 3·ov covers them. (2·ov is
// NOT enough: a migrated fragment inflicts start + migration + victim-
// resume. The overhead-sensitivity experiment demonstrates both this and
// the failure of naive task-level provisioning.)
//
// Fragments are stored with their true demand; the surcharge exists only
// in the analysis, so a successful partitioning executes the original
// workload and the runtime charges fit in the reserved margin.

// surcharged returns a view of the resident list with every execution time
// increased by s. For s = 0 it returns the list itself.
func surcharged(list []task.Subtask, s task.Time) []task.Subtask {
	if s == 0 {
		return list
	}
	out := make([]task.Subtask, len(list))
	for i, sub := range list {
		// The surcharge may push a fragment's viewed demand past its
		// synthetic deadline; RTA then reports it unschedulable, which is
		// the correct conservative outcome. The view is never validated.
		sub.C += s
		out[i] = sub
	}
	return out
}

// The per-fragment surcharge rides inside rta.ProcState: assignOrSplit
// mirrors every resident and candidate with C+s, so one code path serves
// both the zero-overhead and overhead-aware analyses (see
// partition.go/assignOrSplit and rta.ProcState.Surcharge).

func hpInterferences(list []task.Subtask, i int) []rta.Interference {
	hp := make([]rta.Interference, i)
	for j := 0; j < i; j++ {
		hp[j] = rta.Interference{C: list[j].C, T: list[j].T}
	}
	return hp
}

// VerifyWithSurcharge re-checks a Result like Verify, but with every RTA
// term surcharged by s per fragment — the independent check matching
// overhead-aware admission. VerifyWithSurcharge(res, 0) equals Verify(res).
func VerifyWithSurcharge(res *Result, s task.Time) error {
	if res == nil || res.Assignment == nil {
		return fmt.Errorf("partition: nil result")
	}
	if !res.OK {
		return fmt.Errorf("partition: result reports failure: %s", res.Reason)
	}
	asg := res.Assignment
	if err := asg.Validate(); err != nil {
		return fmt.Errorf("partition: structural check failed: %w", err)
	}
	for q, list := range asg.Procs {
		sur := surcharged(list, s)
		for i := range sur {
			r, ok := rta.ResponseTime(sur[i].C, hpInterferences(sur, i), sur[i].Deadline)
			if !ok {
				return fmt.Errorf("partition: processor %d: %s has surcharged response %d exceeding synthetic deadline %d", q, list[i], r, list[i].Deadline)
			}
		}
	}
	for idx := range asg.Set {
		subs, procs := asg.Subtasks(idx)
		var acc task.Time
		for k, sub := range subs {
			if sub.Offset < acc {
				return fmt.Errorf("partition: task %d part %d: offset %d is below accumulated surcharged response %d", idx, sub.Part, sub.Offset, acc)
			}
			list := asg.Procs[procs[k]]
			sur := surcharged(list, s)
			pos := -1
			for i, ls := range list {
				if ls.TaskIndex == idx && ls.Part == sub.Part {
					pos = i
					break
				}
			}
			r, ok := rta.ResponseTime(sur[pos].C, hpInterferences(sur, pos), sur[pos].Deadline)
			if !ok {
				return fmt.Errorf("partition: task %d part %d unschedulable on processor %d under surcharge", idx, sub.Part, procs[k])
			}
			acc = sub.Offset + r
		}
		if acc > asg.Set[idx].T {
			return fmt.Errorf("partition: task %d: accumulated surcharged response %d exceeds its deadline %d", idx, acc, asg.Set[idx].T)
		}
	}
	return nil
}
