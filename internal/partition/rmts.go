package partition

import (
	"fmt"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/obs"
	"repro/internal/task"
)

// RMTSLight is the paper's first algorithm (§IV): RM partitioning with task
// splitting, exact RTA admission, worst-fit processor selection (minimal
// assigned utilization), tasks assigned in increasing priority order.
//
// For light task sets (every U_i ≤ Θ/(1+Θ), Definition 1) it achieves any
// deflatable parametric utilization bound Λ(τ) as a normalized utilization
// bound (Theorem 8); for arbitrary sets a successful partitioning is still
// always schedulable (Lemma 4), only the worst-case bound claim is lost.
type RMTSLight struct {
	// Surcharge enables overhead-aware admission: every fragment term in
	// every RTA evaluation is inflated by this many ticks (see
	// overhead.go). Zero reproduces the paper's zero-overhead analysis.
	Surcharge task.Time
	// Trace, when non-nil, records every partitioning decision (assign
	// attempts, RTA outcomes, MaxSplit choices, processors filling up). Nil
	// costs one branch per decision point.
	Trace *obs.Trace
}

// Name implements Algorithm.
func (RMTSLight) Name() string { return "RM-TS/light" }

// Partition implements Algorithm.
func (a RMTSLight) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a RMTSLight) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	full := boolBuf(&ar.full, m)
	states := ar.procStates(m, a.Surcharge)
	res := ar.result("")
	tr := a.Trace
	if i := surchargeFeasible(sorted, a.Surcharge); i >= 0 {
		failWith(res, CauseSurchargeInfeasible, i,
			"τ"+strconv.Itoa(i)+" cannot meet its deadline under the overhead surcharge (C+s > T)")
		traceFail(tr, i, res.Reason)
		return res
	}
	// Increasing priority order: lowest priority (largest index) first.
	for i := len(sorted) - 1; i >= 0; i-- {
		f := wholeFragment(i, sorted[i])
		for {
			q := minUtilProcessor(asg, nil, full)
			if q < 0 {
				failWith(res, CauseMaxSplitExhausted, i,
					"all processors full while assigning τ"+strconv.Itoa(i))
				traceFail(tr, i, res.Reason)
				return res
			}
			placed, rem, becameFull := assignOrSplit(asg, &states[q], q, f, sorted, tr)
			if becameFull {
				full[q] = true
			}
			if placed {
				break
			}
			f = rem
		}
		if f.part > 1 {
			res.NumSplit++
		}
	}
	res.OK = true
	res.Guaranteed = true
	traceDone(tr, res)
	return res
}

// traceFail records a terminal failure event (no-op for nil traces).
func traceFail(tr *obs.Trace, failed int, reason string) {
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvFail, Task: failed, Proc: -1, Note: reason})
	}
}

// traceDone records a terminal success event (no-op for nil traces).
func traceDone(tr *obs.Trace, res *Result) {
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvDone, Task: -1, Proc: -1, OK: true,
			Note: fmt.Sprintf("%d split, %d pre-assigned", res.NumSplit, res.NumPreAssigned)})
	}
}

// tracePhase records a phase boundary (no-op for nil traces).
func tracePhase(tr *obs.Trace, note string) {
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvPhase, Task: -1, Proc: -1, Note: note})
	}
}

// RMTS is the paper's general algorithm (§V): a pre-assignment phase places
// heavy tasks whose lower-priority workload is small enough (condition (8))
// onto dedicated processors; the remaining tasks are packed onto the normal
// processors exactly as in RM-TS/light; leftovers fill the pre-assigned
// processors first-fit, lowest-priority pre-assigned task first.
//
// For any task set it achieves the bound min(Λ(τ), 2Θ/(1+Θ)), where Λ is
// the deflatable PUB the instance is configured with.
type RMTS struct {
	// PUB supplies Λ(τ) for the pre-assignment condition. Nil defaults to
	// the Liu & Layland bound, which makes the pre-assignment identical in
	// spirit to SPA2's while keeping exact-RTA packing.
	PUB bounds.PUB
	// Surcharge enables overhead-aware admission (see overhead.go); zero
	// reproduces the paper's zero-overhead analysis.
	Surcharge task.Time
	// Trace, when non-nil, records every partitioning decision including
	// the pre-assignment phase. Nil costs one branch per decision point.
	Trace *obs.Trace
}

// NewRMTS returns an RM-TS instance using p for the pre-assignment
// condition (nil for the L&L default).
func NewRMTS(p bounds.PUB) *RMTS { return &RMTS{PUB: p} }

// Name implements Algorithm.
func (a *RMTS) Name() string { return "RM-TS" }

// Lambda returns the effective bound min(Λ(τ), 2Θ/(1+Θ)) this instance
// targets for the given set (§V).
func (a *RMTS) Lambda(ts task.Set) float64 {
	p := a.PUB
	if p == nil {
		p = bounds.LiuLayland{}
	}
	return bounds.EffectiveRMTS(p, ts)
}

// Partition implements Algorithm.
func (a *RMTS) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a *RMTS) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	n := len(sorted)
	lightThr := bounds.LightThresholdFor(n)
	p := a.PUB
	if p == nil {
		p = bounds.LiuLayland{}
	}
	lambda := bounds.EffectiveRMTSScratch(p, sorted, &ar.bsc)
	res := ar.result("")
	tr := a.Trace
	if i := surchargeFeasible(sorted, a.Surcharge); i >= 0 {
		failWith(res, CauseSurchargeInfeasible, i,
			"τ"+strconv.Itoa(i)+" cannot meet its deadline under the overhead surcharge (C+s > T)")
		traceFail(tr, i, res.Reason)
		return res
	}

	full := boolBuf(&ar.full, m)
	states := ar.procStates(m, a.Surcharge)
	normal := boolBuf(&ar.normal, m)
	for q := range normal {
		normal[q] = true
	}
	preProcs := ar.preProcs[:0] // pre-assigned processors in assignment order

	// Suffix utilizations: suffix[i] = Σ_{j>i} U_j.
	suffix := floatBuf(&ar.suffix, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + sorted[i].Utilization()
	}

	// Phase 1: pre-assignment, in decreasing priority order (highest
	// priority first). A heavy task is pre-assigned when condition (8)
	// holds: Σ_{j>i} U_j ≤ (|P(τ_i)|−1)·Λ(τ), with P(τ_i) the processors
	// still normal at this point. Tasks with U_i > Λ(τ) are outside the
	// model's assumption (§V, footnote 5: run them on a dedicated processor
	// each), so they are pre-assigned unconditionally while processors
	// remain — with exact-RTA filling in phase 3 this only improves
	// average-case acceptance and never invalidates a successful result.
	tracePhase(tr, "phase 1: pre-assignment of heavy tasks (condition (8))")
	normalCount := m
	pre := boolBuf(&ar.pre, n)
	for i := 0; i < n; i++ {
		u := sorted[i].Utilization()
		if u <= lightThr {
			continue
		}
		if normalCount == 0 {
			break
		}
		if suffix[i+1] <= float64(normalCount-1)*lambda || u > lambda {
			q := -1
			for cand := 0; cand < m; cand++ {
				if normal[cand] {
					q = cand
					break
				}
			}
			asg.Add(q, task.Whole(i, sorted[i]))
			states[q].Insert(task.Whole(i, sorted[i]))
			asg.PreAssigned[q] = i
			normal[q] = false
			preProcs = append(preProcs, q)
			pre[i] = true
			normalCount--
			res.NumPreAssigned++
			cPreAssign.Inc()
			if tr != nil {
				trigger := "condition (8)"
				if u > lambda {
					trigger = "U_i > Λ(τ)"
				}
				tr.Add(obs.Event{Kind: obs.EvPreAssign, Task: i, Part: 1, Proc: q,
					C: sorted[i].C, T: sorted[i].T,
					Note: fmt.Sprintf("%s; U_i=%.3f, Λ=%.3f, suffix U=%.3f", trigger, u, lambda, suffix[i+1])})
			}
		}
	}

	// Phase 2: remaining tasks onto normal processors, exactly as
	// RM-TS/light (increasing priority order, worst fit, split on
	// overflow). A fragment that exhausts the normal processors carries
	// over into phase 3 with its offset state intact.
	tracePhase(tr, "phase 2: worst-fit packing on normal processors")
	ar.preProcs = preProcs
	nextPre := len(preProcs) - 1 // phase 3 cursor: largest index first
	// phase3Assign places the carried fragment first-fit on the
	// pre-assigned processors and reports the final committed fragment's
	// part number (the task's total fragment count).
	phase3Assign := func(f fragment) (bool, int) {
		for {
			for nextPre >= 0 && full[preProcs[nextPre]] {
				nextPre--
			}
			if nextPre < 0 {
				return false, f.part
			}
			q := preProcs[nextPre]
			placed, rem, becameFull := assignOrSplit(asg, &states[q], q, f, sorted, tr)
			if becameFull {
				full[q] = true
			}
			if placed {
				return true, f.part
			}
			f = rem
		}
	}

	for i := n - 1; i >= 0; i-- {
		if pre[i] {
			continue
		}
		f := wholeFragment(i, sorted[i])
		carried := false
		for {
			q := minUtilProcessor(asg, normal, full)
			if q < 0 {
				carried = true
				break
			}
			placed, rem, becameFull := assignOrSplit(asg, &states[q], q, f, sorted, tr)
			if becameFull {
				full[q] = true
			}
			if placed {
				break
			}
			f = rem
		}
		// Phase 3: pre-assigned processors, first-fit from the processor
		// hosting the lowest-priority pre-assigned task (largest index).
		if carried {
			if tr != nil {
				// Format only when tracing: this line is on the hot partition
				// path and the argument would otherwise be built per call.
				tracePhase(tr, fmt.Sprintf("phase 3: τ%d overflows onto pre-assigned processors", i))
			}
			ok, finalPart := phase3Assign(f)
			if !ok {
				cause := CauseMaxSplitExhausted
				if res.NumPreAssigned == m {
					// Every processor hosts a pre-assigned heavy task; the
					// packing never had a normal processor to work with.
					cause = CausePreAssignExhausted
				}
				failWith(res, cause, i,
					"all processors full while assigning τ"+strconv.Itoa(i))
				traceFail(tr, i, res.Reason)
				return res
			}
			f.part = finalPart
		}
		// A fragment's part number increments exactly once per committed
		// body, so the final placed fragment's part is the task's fragment
		// count — the alloc-free equivalent of len(asg.Subtasks(i)) > 1.
		if f.part > 1 {
			res.NumSplit++
		}
	}
	res.OK = true
	res.Guaranteed = true
	traceDone(tr, res)
	return res
}
