package partition

import "repro/internal/obs"

// Cause classifies why a partitioning attempt rejected a task set. The
// paper's algorithms fail for a small number of structurally distinct
// reasons — a utilization-threshold test running out of room, exact RTA
// proving a deadline miss on every candidate processor, MaxSplit finding no
// admissible prefix anywhere, the heavy-task pre-assignment phase consuming
// every processor — and each terminal failure path tags its Result with
// exactly one of them, so sweeps can report cause-resolved acceptance
// curves and the explain layer can name the violated test.
//
// The taxonomy is part of the provenance contract (DESIGN.md §11): values
// are appended, never renumbered, and String() names are the stable
// vocabulary used by the run-event schema and cmd/explain.
type Cause uint8

const (
	// CauseNone: the partitioning succeeded (or no attempt was made).
	CauseNone Cause = iota
	// CauseInvalidInput: the task set failed validation or m ≤ 0.
	CauseInvalidInput
	// CauseModelMismatch: the algorithm's theory does not cover the set
	// (e.g. a threshold/bound-based algorithm given constrained deadlines).
	CauseModelMismatch
	// CauseSurchargeInfeasible: a task cannot meet its deadline under the
	// configured per-fragment overhead surcharge (C + s > T), before any
	// packing was attempted.
	CauseSurchargeInfeasible
	// CauseThresholdExhausted: a utilization-threshold admission (the SPA
	// Θ test, or a bound-based strict admission such as LL/HB/HT) had no
	// room on any processor — the parametric-bound violation the paper's
	// §I criticizes.
	CauseThresholdExhausted
	// CauseRTADeadlineMiss: exact RTA proved a deadline miss on every
	// candidate processor for a whole-task placement (strict partitioning
	// with AdmitRTA).
	CauseRTADeadlineMiss
	// CauseMaxSplitExhausted: the splitting algorithms ran every processor
	// full — the terminal fragment's MaxSplit found no admissible prefix on
	// the last processors and no processor remained.
	CauseMaxSplitExhausted
	// CausePreAssignExhausted: the heavy-task pre-assignment phase placed a
	// dedicated task on every processor, leaving no normal processor for
	// the remaining tasks.
	CausePreAssignExhausted
	// CauseDemandOverload: an EDF demand-based admission (utilization ≤ 1
	// or the exact QPA test) rejected the task on every processor and — for
	// EDF-TS — no window split covered the demand.
	CauseDemandOverload
	// CauseGuaranteeViolated: the packing itself succeeded but the
	// algorithm's utilization-bound theorem does not cover the set (SPA1 on
	// a non-light set, SPA1/SPA2 above Θ), so acceptance in the guaranteed
	// sense fails. Derived by RejectionCause, never set on a Result.
	CauseGuaranteeViolated

	numCauses
)

// String returns the stable kebab-case name of the cause — the vocabulary
// used in run events, metrics counters and explain reports.
func (c Cause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseInvalidInput:
		return "invalid-input"
	case CauseModelMismatch:
		return "model-mismatch"
	case CauseSurchargeInfeasible:
		return "surcharge-infeasible"
	case CauseThresholdExhausted:
		return "threshold-exhausted"
	case CauseRTADeadlineMiss:
		return "rta-deadline-miss"
	case CauseMaxSplitExhausted:
		return "maxsplit-exhausted"
	case CausePreAssignExhausted:
		return "preassign-exhausted"
	case CauseDemandOverload:
		return "demand-overload"
	case CauseGuaranteeViolated:
		return "guarantee-violated"
	default:
		return "cause(?)"
	}
}

// Describe returns a one-line human explanation of the cause, used by the
// explain layer's reports.
func (c Cause) Describe() string {
	switch c {
	case CauseNone:
		return "every task was placed and the result is guaranteed schedulable"
	case CauseInvalidInput:
		return "the input was rejected before partitioning (invalid task set or no processors)"
	case CauseModelMismatch:
		return "the algorithm's guarantee does not cover this task model"
	case CauseSurchargeInfeasible:
		return "a task cannot meet its deadline under the overhead surcharge even alone"
	case CauseThresholdExhausted:
		return "the utilization-threshold admission ran out of room on every processor"
	case CauseRTADeadlineMiss:
		return "exact response-time analysis proved a deadline miss on every candidate processor"
	case CauseMaxSplitExhausted:
		return "every processor filled up and MaxSplit found no admissible prefix for the remaining fragment"
	case CausePreAssignExhausted:
		return "heavy-task pre-assignment consumed every processor before packing could finish"
	case CauseDemandOverload:
		return "the EDF demand test rejected the task on every processor"
	case CauseGuaranteeViolated:
		return "the packing succeeded but the algorithm's utilization-bound guarantee does not apply"
	default:
		return "unknown cause"
	}
}

// RejectionCauses lists every cause a rejection can carry (everything but
// CauseNone), in stable order — the iteration set for cause-resolved
// aggregation.
func RejectionCauses() []Cause {
	out := make([]Cause, 0, numCauses-1)
	for c := CauseNone + 1; c < numCauses; c++ {
		out = append(out, c)
	}
	return out
}

// RejectionCause maps a Result to the cause of its rejection under the
// experiments' acceptance notion (OK && Guaranteed): CauseNone for accepted
// sets, CauseGuaranteeViolated for packings that succeeded without a
// covering guarantee, and the Result's tagged terminal cause otherwise.
func (r *Result) RejectionCause() Cause {
	switch {
	case r == nil:
		return CauseInvalidInput
	case r.OK && r.Guaranteed:
		return CauseNone
	case r.OK:
		return CauseGuaranteeViolated
	default:
		if r.Cause == CauseNone {
			// A failed Result always carries a cause; an untagged one can
			// only come from legacy construction paths.
			return CauseInvalidInput
		}
		return r.Cause
	}
}

// cRejectCauses counts terminal rejections per cause in the obs registry
// ("partition.reject.<cause>"). Like every obs counter they cost one atomic
// load when metrics are off and are never read back by the analysis, so
// tagging cannot alter experiment output.
var cRejectCauses = func() []*obs.Counter {
	cs := make([]*obs.Counter, numCauses)
	for c := CauseNone + 1; c < numCauses; c++ {
		cs[c] = obs.NewCounter("partition.reject." + c.String())
	}
	return cs
}()

// countReject ticks the per-cause rejection counter — the shared chokepoint
// of the batch algorithms' failWith and the online engine's typed
// rejections, so partition.reject.* aggregates both.
func countReject(cause Cause) { cRejectCauses[cause].Inc() }

// failWith tags a Result's terminal failure: cause, failed task and reason,
// plus the per-cause rejection counter. It is the single chokepoint every
// algorithm's failure path funnels through.
func failWith(res *Result, cause Cause, failed int, reason string) *Result {
	res.Cause = cause
	res.FailedTask = failed
	res.Reason = reason
	countReject(cause)
	return res
}
