package partition

import (
	"fmt"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/task"
)

// FitOrder selects the order in which strict (non-splitting) partitioners
// consider tasks.
type FitOrder int

const (
	// DecreasingUtilization considers heavy tasks first — the classic
	// bin-packing heuristic order.
	DecreasingUtilization FitOrder = iota
	// IncreasingPriority considers tasks from the longest period upwards,
	// matching the splitting algorithms' order.
	IncreasingPriority
	// DecreasingPriority considers tasks from the shortest period
	// downwards.
	DecreasingPriority
)

func (o FitOrder) String() string {
	switch o {
	case DecreasingUtilization:
		return "DU"
	case IncreasingPriority:
		return "IP"
	case DecreasingPriority:
		return "DP"
	default:
		return fmt.Sprintf("FitOrder(%d)", int(o))
	}
}

// FirstFitRTA is strict partitioned RM (no task splitting): each task is
// placed whole on the first processor whose resident tasks — and the
// newcomer — all pass exact RTA. It represents the pre-task-splitting state
// of the art the paper contrasts against (its worst-case utilization bound
// cannot exceed 50%, the bin-packing limit, §I), while its average case is
// strong thanks to RTA admission.
type FirstFitRTA struct {
	// Order picks the task consideration order; zero value is
	// DecreasingUtilization.
	Order FitOrder
	// Trace, when non-nil, records every placement decision.
	Trace *obs.Trace
}

// Name implements Algorithm.
func (a FirstFitRTA) Name() string { return "P-RM-FF(" + a.Order.String() + ")" }

// Partition implements Algorithm.
func (a FirstFitRTA) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a FirstFitRTA) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	return fitPartitionAdmit(ts, m, a.Order, pickFirstFit, AdmitRTA, a.Trace, ar)
}

// WorstFitRTA is strict partitioned RM with worst-fit (minimum assigned
// utilization) processor selection and exact RTA admission.
type WorstFitRTA struct {
	// Order picks the task consideration order; zero value is
	// DecreasingUtilization.
	Order FitOrder
	// Trace, when non-nil, records every placement decision.
	Trace *obs.Trace
}

// Name implements Algorithm.
func (a WorstFitRTA) Name() string { return "P-RM-WF(" + a.Order.String() + ")" }

// Partition implements Algorithm.
func (a WorstFitRTA) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a WorstFitRTA) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	return fitPartitionAdmit(ts, m, a.Order, pickWorstFit, AdmitRTA, a.Trace, ar)
}

// pickFirstFit returns candidate processors in index order, in the arena's
// order buffer.
func pickFirstFit(ar *Arena, asg *task.Assignment) []int {
	out := intBuf(&ar.order, asg.M())
	for q := range out {
		out[q] = q
	}
	return out
}

// pickWorstFit returns candidate processors sorted by ascending assigned
// utilization (ties by index). Utilizations are computed once per call and
// sorted with a stable insertion sort — the same permutation the former
// sort.SliceStable produced.
func pickWorstFit(ar *Arena, asg *task.Assignment) []int {
	out := pickFirstFit(ar, asg)
	utils := floatBuf(&ar.utils, len(out))
	for q := range utils {
		utils[q] = asg.Utilization(q)
	}
	for i := 1; i < len(out); i++ {
		q := out[i]
		u := utils[q]
		j := i - 1
		for j >= 0 && utils[out[j]] > u {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = q
	}
	return out
}

// Admission selects the uniprocessor schedulability test a strict
// partitioner uses to accept a whole task on a processor. The three tests
// form a strictness hierarchy — RTA (exact) accepts everything Hyperbolic
// accepts, which accepts everything the L&L utilization test accepts —
// letting the ablation experiment isolate how much of the paper's
// average-case gain comes from the exact test alone (versus splitting).
type Admission int

const (
	// AdmitRTA is exact response-time analysis.
	AdmitRTA Admission = iota
	// AdmitHyperbolic is the hyperbolic bound of Bini & Buttazzo:
	// Π(U_i + 1) ≤ 2.
	AdmitHyperbolic
	// AdmitLL is the Liu & Layland utilization test: ΣU_i ≤ Θ(n).
	AdmitLL
	// AdmitHanTyan is the Han & Tyan DCT test: fold the periods onto a
	// harmonic grid and accept if some folding keeps utilization ≤ 1.
	// Strictly between the hyperbolic bound and exact RTA in strength.
	AdmitHanTyan
)

func (a Admission) String() string {
	switch a {
	case AdmitRTA:
		return "RTA"
	case AdmitHyperbolic:
		return "HB"
	case AdmitLL:
		return "LL"
	case AdmitHanTyan:
		return "HT"
	default:
		return fmt.Sprintf("Admission(%d)", int(a))
	}
}

// admits reports whether task (c, t, d) at priority index prio fits on the
// processor under the admission test.
func (a Admission) admits(list []task.Subtask, prio int, c, t, d task.Time) bool {
	switch a {
	case AdmitRTA:
		return rta.SchedulableWithExtraAt(list, prio, c, t, d)
	case AdmitHyperbolic:
		prod := 1 + float64(c)/float64(t)
		for _, s := range list {
			prod *= 1 + s.Utilization()
		}
		return prod <= 2+utilEps
	case AdmitLL:
		sum := float64(c) / float64(t)
		for _, s := range list {
			sum += s.Utilization()
		}
		return sum <= bounds.LL(len(list)+1)+utilEps
	case AdmitHanTyan:
		ts := make(task.Set, 0, len(list)+1)
		for _, s := range list {
			ts = append(ts, task.Task{C: s.C, T: s.T})
		}
		ts = append(ts, task.Task{C: c, T: t})
		return bounds.HanTyanSchedulable(ts)
	default:
		panic("partition: unknown admission test")
	}
}

// FirstFit is strict partitioned RM with a configurable admission test —
// the ablation family behind the AdmitRTA/AdmitHyperbolic/AdmitLL
// comparison. FirstFitRTA is the Admission = AdmitRTA member.
type FirstFit struct {
	// Order picks the task consideration order.
	Order FitOrder
	// Admission picks the uniprocessor test (zero value: AdmitRTA).
	Admission Admission
	// Trace, when non-nil, records every placement decision.
	Trace *obs.Trace
}

// Name implements Algorithm.
func (a FirstFit) Name() string {
	return fmt.Sprintf("P-RM-FF[%s](%s)", a.Admission, a.Order)
}

// Partition implements Algorithm.
func (a FirstFit) Partition(ts task.Set, m int) *Result {
	return a.PartitionArena(ts, m, nil)
}

// PartitionArena implements ArenaPartitioner.
func (a FirstFit) PartitionArena(ts task.Set, m int, ar *Arena) *Result {
	return fitPartitionAdmit(ts, m, a.Order, pickFirstFit, a.Admission, a.Trace, ar)
}

func fitPartitionAdmit(ts task.Set, m int, order FitOrder, pick func(*Arena, *task.Assignment) []int, admit Admission, tr *obs.Trace, ar *Arena) *Result {
	if ar == nil {
		ar = new(Arena)
	}
	sorted, asg, fail := ar.prepare(ts, m)
	if fail != nil {
		return fail
	}
	if admit != AdmitRTA {
		if res := requireImplicit(sorted, asg, "bound-based admission ("+admit.String()+")"); res != nil {
			return res
		}
	}
	res := ar.result("")

	idxs := ar.taskOrder(sorted, order)

	// Per-processor incremental RTA state; only the exact test consults it
	// (the threshold tests don't run fixed points), but the mirror costs
	// nothing to maintain and keeps one assignment path.
	states := ar.procStates(m, 0)

	for _, i := range idxs {
		t := sorted[i]
		placed := false
		for _, q := range pick(ar, asg) {
			cAssignAttempts.Inc()
			before := traceIters(tr)
			abortsBefore := traceAborts(tr)
			var ok, pre bool
			if admit == AdmitRTA {
				pre = prefilterAdmit(&states[q], i, t.C, t.Deadline())
				ok = pre || states[q].AdmitAt(i, t.C, t.T, t.Deadline())
			} else {
				ok = admit.admits(asg.Procs[q], i, t.C, t.T, t.Deadline())
			}
			if ok {
				asg.Add(q, task.Whole(i, t))
				states[q].Insert(task.Whole(i, t))
				cAssignWhole.Inc()
				if tr != nil {
					note := admit.String() + " admission"
					if pre {
						note = "HB-prefilter admission"
					}
					tr.Add(obs.Event{Kind: obs.EvAssigned, Task: i, Part: 1, Proc: q,
						C: t.C, Deadline: t.Deadline(), RTAIters: traceIters(tr) - before,
						RTAAborted: traceAborts(tr) > abortsBefore,
						OK:         true, Note: note})
				}
				placed = true
				break
			} else if tr != nil {
				tr.Add(obs.Event{Kind: obs.EvReject, Task: i, Part: 1, Proc: q,
					C: t.C, Deadline: t.Deadline(), RTAIters: traceIters(tr) - before,
					RTAAborted: traceAborts(tr) > abortsBefore,
					Note:       admit.String() + " admission"})
			}
		}
		if !placed {
			cause := CauseRTADeadlineMiss
			if admit != AdmitRTA {
				// The bound-based admissions (LL/HB/HT) are utilization
				// thresholds, not deadline-miss proofs.
				cause = CauseThresholdExhausted
			}
			// Concatenation, not Sprintf: this is the common exit of every
			// rejected set in the acceptance and breakdown sweeps.
			failWith(res, cause, i,
				"no processor admits τ"+strconv.Itoa(i)+" whole (strict partitioning)")
			traceFail(tr, i, res.Reason)
			return res
		}
	}
	res.OK = true
	res.Guaranteed = true
	traceDone(tr, res)
	return res
}
