package partition

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/sim"
	"repro/internal/task"
)

func TestConstrainedWholeTaskPartition(t *testing.T) {
	ts := task.Set{
		{Name: "tight", C: 2, T: 20, D: 4},
		{Name: "mid", C: 5, T: 25, D: 15},
		{Name: "loose", C: 8, T: 40},
	}
	res := NewRMTS(nil).Partition(ts, 1)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
	// DM order: tight (D=4) first.
	if res.Assignment.Set[0].Name != "tight" {
		t.Errorf("DM order wrong: %v", res.Assignment.Set)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v", rep.Misses)
	}
}

func TestConstrainedDeadlineRejectsTightOverload(t *testing.T) {
	// Two tasks whose deadlines collide: C=3,D=4 and C=2,D=4 on one
	// processor — the second cannot make its deadline.
	ts := task.Set{
		{Name: "a", C: 3, T: 20, D: 4},
		{Name: "b", C: 2, T: 20, D: 4},
	}
	res := NewRMTS(nil).Partition(ts, 1)
	if res.OK {
		t.Fatal("deadline collision accepted on one processor")
	}
	// Two processors solve it trivially.
	res = NewRMTS(nil).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed on 2 processors: %s", res.Reason)
	}
}

func TestConstrainedSplitting(t *testing.T) {
	// A task too large for the residual capacity of any single processor
	// must split even with a constrained deadline, and simulate cleanly.
	ts := task.Set{
		{Name: "a", C: 3, T: 5},
		{Name: "b", C: 3, T: 5},
		{Name: "big", C: 6, T: 10, D: 8},
	}
	res := NewRMTS(nil).Partition(ts, 2)
	if !res.OK {
		t.Fatalf("failed: %s", res.Reason)
	}
	if err := Verify(res); err != nil {
		t.Fatal(err)
	}
	rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("misses: %v\n%s", rep.Misses, res.Assignment)
	}
}

func TestImplicitOnlyAlgorithmsRejectConstrained(t *testing.T) {
	ts := task.Set{{Name: "c", C: 2, T: 10, D: 6}}
	for _, alg := range []Algorithm{SPA1{}, SPA2{}, EDFFirstFit{}, EDFWorstFit{}, FirstFit{Admission: AdmitLL}, FirstFit{Admission: AdmitHyperbolic}} {
		res := alg.Partition(ts, 2)
		if res.OK {
			t.Errorf("%s accepted a constrained-deadline set", alg.Name())
			continue
		}
		if !strings.Contains(res.Reason, "implicit") {
			t.Errorf("%s rejection reason unhelpful: %q", alg.Name(), res.Reason)
		}
	}
	// The RTA-based algorithms accept it.
	for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), FirstFitRTA{}, WorstFitRTA{}} {
		if res := alg.Partition(ts, 2); !res.OK {
			t.Errorf("%s rejected a trivial constrained task: %s", alg.Name(), res.Reason)
		}
	}
}

func TestConstrainedFuzzPartitionSimulate(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200}}
	simulated := 0
	for trial := 0; trial < 120; trial++ {
		base, err := gen.TaskSet(r, gen.Config{
			TargetU: float64(2+r.Intn(3)) * (0.3 + 0.4*r.Float64()),
			UMin:    0.05, UMax: 0.5,
			Periods: menu,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts, err := gen.Constrain(r, base, 0.5, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		m := 2 + r.Intn(3)
		for _, alg := range []Algorithm{RMTSLight{}, NewRMTS(nil), FirstFitRTA{}} {
			res := alg.Partition(ts, m)
			if !res.OK {
				continue
			}
			if err := Verify(res); err != nil {
				t.Fatalf("trial %d: %s: %v", trial, alg.Name(), err)
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 200_000})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Ok() {
				t.Fatalf("trial %d: %s constrained partition missed: %v\nset=%v\n%s",
					trial, alg.Name(), rep.Misses, ts, res.Assignment)
			}
			simulated++
		}
	}
	if simulated < 100 {
		t.Errorf("only %d constrained partitions simulated", simulated)
	}
}

func TestConstrainedTighteningMonotone(t *testing.T) {
	// Tightening deadlines can only reduce acceptance.
	r := rand.New(rand.NewSource(72))
	counts := map[string]int{}
	fracs := []struct {
		name   string
		lo, hi float64
	}{
		{"loose", 0.9, 1.0},
		{"mid", 0.6, 0.8},
		{"tight", 0.4, 0.5},
	}
	for trial := 0; trial < 60; trial++ {
		base, err := gen.TaskSet(r, gen.Config{TargetU: 4 * 0.6, UMin: 0.05, UMax: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range fracs {
			ts, err := gen.Constrain(rand.New(rand.NewSource(int64(trial))), base, f.lo, f.hi)
			if err != nil {
				t.Fatal(err)
			}
			if res := NewRMTS(nil).Partition(ts, 4); res.OK {
				counts[f.name]++
			}
		}
	}
	if !(counts["loose"] >= counts["mid"] && counts["mid"] >= counts["tight"]) {
		t.Errorf("acceptance not monotone in deadline tightness: %v", counts)
	}
	if counts["loose"] == counts["tight"] {
		t.Errorf("no separation across tightness levels: %v", counts)
	}
}
