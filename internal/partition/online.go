package partition

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/bounds"
	"repro/internal/rta"
	"repro/internal/task"
)

// Online is the incremental admission engine behind the admission-control
// service (internal/admit): one virtual cluster of M processors that admits
// and releases tasks one at a time instead of partitioning a whole set. It
// is the churn-shaped counterpart of the batch algorithms above — the same
// exact RTA admission (or the parametric utilization threshold the paper's
// §I criticizes), run against per-processor rta.ProcState mirrors so each
// decision reuses the warm-start caches, and ProcState.Remove's invalidation
// keeps those caches sound when tasks depart.
//
// Priorities are deadline-monotonic: the priority key of an admitted task is
// its effective deadline (ties broken FIFO by the mirror's insertion order),
// which coincides with rate-monotonic order on the paper's implicit-deadline
// model. Tasks are placed whole — the online service does not split; a
// rejected task leaves no residue.
//
// An Online is not safe for concurrent use; the admission service serializes
// operations per cluster.
type Online struct {
	m         int
	policy    string
	surcharge task.Time

	states []rta.ProcState
	procs  [][]onlineResident // shadows states' priority positions exactly
	loc    map[uint64]int     // handle → hosting processor
	nextH  uint64

	order []int     // worst-fit candidate order scratch
	utils []float64 // worst-fit utilization scratch
}

// Online placement policies. The RTA policies admit with the exact test
// (ProcState.AdmitAt); the threshold policy admits iff the processor's
// surcharged utilization stays under the Liu & Layland bound Θ(n+1) — the
// parametric-bound baseline, implicit deadlines only.
const (
	OnlineRTAFirstFit = "rta-ff"    // processors in index order
	OnlineRTAWorstFit = "rta-wf"    // processors by ascending utilization
	OnlineThreshold   = "threshold" // L&L utilization threshold, first fit
)

// OnlinePolicies lists the valid Online placement policies.
func OnlinePolicies() []string {
	return []string{OnlineRTAFirstFit, OnlineRTAWorstFit, OnlineThreshold}
}

type onlineResident struct {
	handle uint64
	sub    task.Subtask // raw C; the mirror carries the surcharge
}

// Placement reports a successful online admission.
type Placement struct {
	// Handle identifies the admitted task for a later Remove. Never zero.
	Handle uint64
	// Proc is the hosting processor.
	Proc int
	// Response is the admitted task's own RTA fixed point on its processor
	// at admission time (informational; for the threshold policy it is
	// computed the same way even though the admission didn't run RTA).
	Response task.Time
}

// Rejection is a typed online admission rejection, reusing the batch
// taxonomy: the cause names the admission test that fired.
type Rejection struct {
	Cause  Cause
	Reason string
}

// Error implements error.
func (r *Rejection) Error() string { return r.Reason }

// NewOnline creates an empty cluster of m processors under the given policy
// ("" defaults to rta-ff) and per-task analysis surcharge.
func NewOnline(m int, policy string, surcharge task.Time) (*Online, error) {
	switch policy {
	case "":
		policy = OnlineRTAFirstFit
	case OnlineRTAFirstFit, OnlineRTAWorstFit, OnlineThreshold:
	default:
		return nil, fmt.Errorf("partition: unknown online policy %q (want rta-ff, rta-wf or threshold)", policy)
	}
	if m <= 0 {
		return nil, fmt.Errorf("partition: online cluster needs at least one processor, got %d", m)
	}
	if surcharge < 0 {
		return nil, fmt.Errorf("partition: negative surcharge %d", surcharge)
	}
	return &Online{
		m:         m,
		policy:    policy,
		surcharge: surcharge,
		states:    rta.NewProcStates(m, surcharge),
		procs:     make([][]onlineResident, m),
		loc:       make(map[uint64]int),
	}, nil
}

// M returns the cluster's processor count.
func (o *Online) M() int { return o.m }

// Policy returns the cluster's placement policy name.
func (o *Online) Policy() string { return o.policy }

// Surcharge returns the per-task analysis surcharge.
func (o *Online) Surcharge() task.Time { return o.surcharge }

// Len returns the number of resident tasks across all processors.
func (o *Online) Len() int { return len(o.loc) }

// ProcLen returns the number of residents on processor q.
func (o *Online) ProcLen(q int) int { return len(o.procs[q]) }

// Utilization returns processor q's assigned raw utilization (no
// surcharge), summed in priority order for determinism.
func (o *Online) Utilization(q int) float64 {
	u := 0.0
	for _, r := range o.procs[q] {
		u += r.sub.Utilization()
	}
	return u
}

// surchargedUtil is the threshold policy's view: every resident's C
// inflated by the surcharge.
func (o *Online) surchargedUtil(q int) float64 {
	u := 0.0
	for _, r := range o.procs[q] {
		u += float64(r.sub.C+o.surcharge) / float64(r.sub.T)
	}
	return u
}

// Residents returns a copy of processor q's resident subtasks in priority
// order (raw C), for status reporting and rejection evidence.
func (o *Online) Residents(q int) []task.Subtask {
	out := make([]task.Subtask, len(o.procs[q]))
	for i, r := range o.procs[q] {
		out[i] = r.sub
	}
	return out
}

// Admit attempts to place t whole on some processor under the cluster's
// policy. On success it returns the placement; on failure the error is a
// *Rejection carrying the partition.Cause that names the violated test (and
// ticks the partition.reject.* counter, like every batch rejection).
func (o *Online) Admit(t task.Task) (Placement, error) {
	if err := t.Validate(); err != nil {
		return o.reject(CauseInvalidInput, err.Error())
	}
	s := o.surcharge
	if t.C+s > t.T {
		return o.reject(CauseSurchargeInfeasible,
			fmt.Sprintf("%s cannot meet its deadline under surcharge %d even alone", t, s))
	}
	d := t.Deadline()
	prio := int(d) // deadline-monotonic priority key, FIFO tie-break

	if o.policy == OnlineThreshold {
		if !t.Implicit() {
			return o.reject(CauseModelMismatch,
				"threshold admission requires implicit deadlines (D = T); use an rta-* policy for constrained deadlines")
		}
		u := float64(t.C+s) / float64(t.T)
		for q := 0; q < o.m; q++ {
			if o.surchargedUtil(q)+u <= bounds.LL(len(o.procs[q])+1)+utilEps {
				return o.place(q, prio, t), nil
			}
		}
		return o.reject(CauseThresholdExhausted,
			fmt.Sprintf("no processor has %.4f utilization room under the L&L threshold for %s", u, t))
	}

	for _, q := range o.candidates() {
		if d >= t.C+s && (prefilterAdmit(&o.states[q], prio, t.C, d) || o.states[q].AdmitAt(prio, t.C, t.T, d)) {
			return o.place(q, prio, t), nil
		}
	}
	return o.reject(CauseRTADeadlineMiss,
		fmt.Sprintf("exact RTA proves a deadline miss for %s on every processor", t))
}

// candidates returns the processor probe order of the RTA policies:
// index order for first fit, ascending assigned utilization (ties by
// index, same permutation as pickWorstFit) for worst fit.
func (o *Online) candidates() []int {
	if cap(o.order) < o.m {
		o.order = make([]int, o.m)
		o.utils = make([]float64, o.m)
	}
	out := o.order[:o.m]
	for q := range out {
		out[q] = q
	}
	if o.policy != OnlineRTAWorstFit {
		return out
	}
	utils := o.utils[:o.m]
	for q := range utils {
		utils[q] = o.Utilization(q)
	}
	for i := 1; i < len(out); i++ {
		q := out[i]
		u := utils[q]
		j := i - 1
		for j >= 0 && utils[out[j]] > u {
			out[j+1] = out[j]
			j--
		}
		out[j+1] = q
	}
	return out
}

func (o *Online) place(q, prio int, t task.Task) Placement {
	d := t.Deadline()
	sub := task.Subtask{TaskIndex: prio, Part: 1, C: t.C, T: t.T, Deadline: d, Offset: t.T - d, Tail: true}
	o.nextH++
	h := o.nextH
	pos := o.install(q, h, sub)
	r, _ := o.states[q].ResponseAt(pos, d)
	return Placement{Handle: h, Proc: q, Response: r}
}

// install splices an already-admitted resident into processor q at its
// priority position, mirroring it into the warm-start state. It is the
// commit half of place, shared with RestoreResident so that snapshot
// recovery rebuilds exactly the structures an admission would have built.
func (o *Online) install(q int, h uint64, sub task.Subtask) int {
	pos := o.states[q].Insert(sub)
	o.procs[q] = append(o.procs[q], onlineResident{})
	copy(o.procs[q][pos+1:], o.procs[q][pos:])
	o.procs[q][pos] = onlineResident{handle: h, sub: sub}
	o.loc[h] = q
	return pos
}

func (o *Online) reject(cause Cause, reason string) (Placement, error) {
	countReject(cause)
	return Placement{}, &Rejection{Cause: cause, Reason: reason}
}

// ResidentInfo is one resident task in an Online state snapshot: its
// handle, hosting processor and the paper-model parameters needed to
// reinstate it with RestoreResident. D is the effective (constrained)
// deadline — implicit-deadline residents carry D = T.
type ResidentInfo struct {
	Handle uint64
	Proc   int
	C      task.Time
	T      task.Time
	D      task.Time
}

// ResidentsSnapshot returns every resident of the cluster in handle
// (admission) order. Because priority ties break FIFO by insertion order
// and surviving residents were inserted in handle order, replaying the
// returned slice through RestoreResident on an empty twin reproduces the
// cluster's exact per-processor priority layout.
func (o *Online) ResidentsSnapshot() []ResidentInfo {
	out := make([]ResidentInfo, 0, len(o.loc))
	for q := 0; q < o.m; q++ {
		for _, r := range o.procs[q] {
			out = append(out, ResidentInfo{Handle: r.handle, Proc: q, C: r.sub.C, T: r.sub.T, D: r.sub.Deadline})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Handle < out[j].Handle })
	return out
}

// RestoreResident reinstates a previously admitted resident on its recorded
// processor without re-running the admission test — snapshot recovery
// trusts the placement it persisted and rebuilds the engine structures
// directly (re-deciding placement would be unsound: the original decision
// was made against intermediate states that included since-removed tasks).
// Residents must be restored in ascending handle order so FIFO priority
// ties land exactly as the live cluster had them.
func (o *Online) RestoreResident(proc int, handle uint64, c, t, d task.Time) error {
	switch {
	case proc < 0 || proc >= o.m:
		return fmt.Errorf("partition: restore: processor %d out of range [0,%d)", proc, o.m)
	case handle == 0:
		return fmt.Errorf("partition: restore: zero handle")
	case c <= 0 || t <= 0 || d < c || d > t:
		return fmt.Errorf("partition: restore: invalid resident (c=%d t=%d d=%d)", c, t, d)
	case c+o.surcharge > d:
		return fmt.Errorf("partition: restore: resident %d infeasible under surcharge %d", handle, o.surcharge)
	}
	if _, taken := o.loc[handle]; taken {
		return fmt.Errorf("partition: restore: duplicate handle %d", handle)
	}
	sub := task.Subtask{TaskIndex: int(d), Part: 1, C: c, T: t, Deadline: d, Offset: t - d, Tail: true}
	o.install(proc, handle, sub)
	if handle > o.nextH {
		o.nextH = handle
	}
	return nil
}

// Has reports whether handle names a resident task.
func (o *Online) Has(handle uint64) bool {
	_, ok := o.loc[handle]
	return ok
}

// UndoAdmit rolls back the cluster's most recent successful Admit — the
// admission service uses it when the write-ahead journal refuses the
// record, so an acceptance that cannot be made durable is never visible.
// Only the latest acceptance can be undone (its handle must still be the
// handle counter's current value); the handle counter rolls back too, so
// the cluster is canonically byte-identical to its pre-admission state.
func (o *Online) UndoAdmit(handle uint64) error {
	if handle == 0 || handle != o.nextH {
		return fmt.Errorf("partition: undo: handle %d is not the most recent admission (counter %d)", handle, o.nextH)
	}
	if !o.Remove(handle) {
		return fmt.Errorf("partition: undo: handle %d is not resident", handle)
	}
	o.nextH--
	return nil
}

// HandleSeq returns the admission-handle counter: the handle the most
// recent acceptance was assigned (0 before any acceptance).
func (o *Online) HandleSeq() uint64 { return o.nextH }

// SetHandleSeq restores the admission-handle counter from a snapshot so
// replayed post-snapshot admissions are assigned the same handles the live
// cluster handed out. It refuses to move the counter backwards past an
// already-restored handle.
func (o *Online) SetHandleSeq(h uint64) error {
	if h < o.nextH {
		return fmt.Errorf("partition: handle counter %d below restored maximum %d", h, o.nextH)
	}
	o.nextH = h
	return nil
}

// AppendCanonical appends a canonical byte serialization of the cluster's
// durable state to b: configuration, handle counter, and every resident
// (handle, surcharge-free C, T, effective deadline) in per-processor
// priority order with explicit processor boundaries. Two Online values
// with equal canonical bytes are observationally equivalent for every
// future Admit/Remove sequence — placement, handles and verdicts all
// derive from exactly the serialized state. Volatile warm-start cache
// contents are deliberately excluded: they are lower bounds that only
// affect analysis cost, never decisions (DESIGN.md §7).
func (o *Online) AppendCanonical(b []byte) []byte {
	b = binary.AppendUvarint(b, uint64(o.m))
	b = append(b, o.policy...)
	b = append(b, 0x00)
	b = binary.AppendVarint(b, o.surcharge)
	b = binary.AppendUvarint(b, o.nextH)
	for q := 0; q < o.m; q++ {
		for _, r := range o.procs[q] {
			b = binary.AppendUvarint(b, r.handle)
			b = binary.AppendVarint(b, r.sub.C)
			b = binary.AppendVarint(b, r.sub.T)
			b = binary.AppendVarint(b, r.sub.Deadline)
		}
		b = append(b, 0xFF)
	}
	return b
}

// Remove releases the task identified by handle, invalidating exactly the
// warm-start cache entries the departure makes stale (ProcState.Remove).
// It reports whether the handle was resident.
func (o *Online) Remove(handle uint64) bool {
	q, ok := o.loc[handle]
	if !ok {
		return false
	}
	list := o.procs[q]
	pos := 0
	for pos < len(list) && list[pos].handle != handle {
		pos++
	}
	o.states[q].Remove(pos)
	o.procs[q] = append(list[:pos], list[pos+1:]...)
	delete(o.loc, handle)
	return true
}
