package partition

import (
	"bytes"
	"testing"

	"repro/internal/obs"
	"repro/internal/task"
)

// traceSet needs a split on two processors: three tasks of utilization 0.55
// cannot be placed whole on two processors.
func traceSet() task.Set {
	return task.Set{
		{C: 11, T: 20},
		{C: 22, T: 40},
		{C: 44, T: 80},
	}
}

func kinds(ev []obs.Event) map[obs.EventKind]int {
	out := make(map[obs.EventKind]int)
	for _, e := range ev {
		out[e.Kind]++
	}
	return out
}

func TestRMTSTraceRecordsDecisions(t *testing.T) {
	tr := obs.NewTrace()
	alg := &RMTS{Trace: tr}
	res := alg.Partition(traceSet(), 2)
	if !res.OK {
		t.Fatalf("partitioning failed: %s", res.Reason)
	}
	if res.NumSplit == 0 {
		t.Fatal("test set did not force a split; trace coverage lost")
	}
	k := kinds(tr.Events())
	if k[obs.EvAssignAttempt] == 0 || k[obs.EvAssigned] == 0 {
		t.Fatalf("missing assignment events: %v", k)
	}
	if k[obs.EvSplit] == 0 || k[obs.EvProcFull] == 0 {
		t.Fatalf("missing split/proc-full events: %v", k)
	}
	if k[obs.EvPhase] == 0 {
		t.Fatalf("missing phase events: %v", k)
	}
	if k[obs.EvDone] != 1 || k[obs.EvFail] != 0 {
		t.Fatalf("terminal events wrong: %v", k)
	}
	var buf bytes.Buffer
	tr.WriteText(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("split")) {
		t.Fatalf("rendered trace missing split line:\n%s", buf.String())
	}
}

func TestTraceFailureRecorded(t *testing.T) {
	tr := obs.NewTrace()
	// Three tasks of utilization 0.55 cannot fit on one processor.
	res := RMTSLight{Trace: tr}.Partition(traceSet(), 1)
	if res.OK {
		t.Fatal("expected failure on one processor")
	}
	k := kinds(tr.Events())
	if k[obs.EvFail] != 1 || k[obs.EvDone] != 0 {
		t.Fatalf("terminal events wrong: %v", k)
	}
}

func TestNilTraceMatchesTracedResult(t *testing.T) {
	ts := traceSet()
	with := &RMTS{Trace: obs.NewTrace()}
	without := &RMTS{}
	a, b := with.Partition(ts, 2), without.Partition(ts, 2)
	if a.OK != b.OK || a.NumSplit != b.NumSplit || a.NumPreAssigned != b.NumPreAssigned {
		t.Fatalf("tracing changed the result: %+v vs %+v", a, b)
	}
	if a.Assignment.String() != b.Assignment.String() {
		t.Fatalf("tracing changed the assignment:\n%s\nvs\n%s", a.Assignment, b.Assignment)
	}
}

func TestSPA2TraceThresholdAdmission(t *testing.T) {
	tr := obs.NewTrace()
	// Light tasks (U = 0.3 each) go through threshold packing, not
	// pre-assignment.
	ts := task.Set{{C: 6, T: 20}, {C: 12, T: 40}, {C: 24, T: 80}, {C: 6, T: 20}}
	res := SPA2{Trace: tr}.Partition(ts, 2)
	if !res.OK {
		t.Fatalf("SPA2 failed: %s", res.Reason)
	}
	for _, e := range tr.Events() {
		if e.RTAIters != 0 {
			t.Fatalf("SPA2 spent RTA iterations (%+v) — threshold admission should not", e)
		}
	}
	if kinds(tr.Events())[obs.EvAssigned] == 0 {
		t.Fatal("no assigned events recorded")
	}
}
