package partition

import (
	"repro/internal/bounds"
	"repro/internal/edfa"
	"repro/internal/rta"
	"repro/internal/task"
)

// Arena is the reusable scratch state of one partitioning "lane": every
// slice a partitioner needs per call — the sorted working copy of the task
// set, the assignment's per-processor lists, the incremental rta.ProcState
// mirrors, the packing bookkeeping (full/normal/pre-assignment flags,
// suffix utilizations, consideration orders), the PUB evaluation scratch
// and the EDF demand mirrors — lives here and is recycled across calls, so
// a warm arena makes a whole Partition run allocation-free.
//
// Ownership rules (the memory-discipline contract, see DESIGN.md):
//
//   - The *Result returned by PartitionArena, including its Assignment and
//     everything reachable from it, BORROWS the arena: it is valid only
//     until the next PartitionArena call on the same arena. Callers that
//     retain anything past that point must copy it first.
//   - The input task set is never modified and never retained; the arena
//     keeps its own sorted copy.
//   - An Arena is not safe for concurrent use. The experiment harness
//     keeps one per worker (experiments.Workspace); algorithms hold no
//     arena state themselves, so one Algorithm value may be shared across
//     goroutines as long as each passes its own arena.
//
// The zero value is ready to use. A nil *Arena is accepted everywhere and
// means "allocate fresh" — PartitionArena with a nil arena is exactly
// Partition, which is also how every Partition method is implemented.
type Arena struct {
	sorted   task.Set
	asg      task.Assignment
	states   []rta.ProcState
	res      Result
	full     []bool
	normal   []bool
	pre      []bool
	suffix   []float64
	idxs     []int
	order    []int
	utils    []float64
	keys     []float64
	preProcs []int
	bsc      bounds.Scratch
	demands  [][]edfa.Demand
	scratch  []edfa.Demand
	caps     []edfCap
}

// ArenaPartitioner is implemented by every algorithm in this package: a
// Partition that draws all working storage from a caller-owned Arena.
// PartitionArena(ts, m, nil) is identical to Partition(ts, m); with a
// reused arena the verdict, assignment and every Result field are
// byte-identical (the arena only changes where the memory comes from —
// the equivalence fuzz test pins this), and the Result borrows the arena
// per the Arena ownership rules.
type ArenaPartitioner interface {
	Algorithm
	PartitionArena(ts task.Set, m int, ar *Arena) *Result
}

// Compile-time checks: every algorithm supports arena-backed partitioning.
var (
	_ ArenaPartitioner = RMTSLight{}
	_ ArenaPartitioner = (*RMTS)(nil)
	_ ArenaPartitioner = SPA1{}
	_ ArenaPartitioner = SPA2{}
	_ ArenaPartitioner = FirstFitRTA{}
	_ ArenaPartitioner = WorstFitRTA{}
	_ ArenaPartitioner = FirstFit{}
	_ ArenaPartitioner = EDFFirstFit{}
	_ ArenaPartitioner = EDFWorstFit{}
	_ ArenaPartitioner = EDFTS{}
)

// prepare is the arena-backed counterpart of the former package prepare:
// copy the input into the arena's working set, DM-sort it, validate, and
// reset the arena assignment. Observationally identical to clone + sort +
// NewAssignment.
func (ar *Arena) prepare(ts task.Set, m int) (task.Set, *task.Assignment, *Result) {
	if m <= 0 {
		ar.res = Result{}
		return nil, nil, failWith(&ar.res, CauseInvalidInput, -1, "no processors")
	}
	sorted := append(ar.sorted[:0], ts...)
	ar.sorted = sorted
	sorted.SortDM() // identical to RM order for implicit-deadline sets
	ar.asg.Reset(sorted, m)
	if err := sorted.Validate(); err != nil {
		ar.res = Result{Assignment: &ar.asg}
		return nil, nil, failWith(&ar.res, CauseInvalidInput, -1, err.Error())
	}
	return sorted, &ar.asg, nil
}

// result resets and returns the arena's Result, pointing at its assignment.
func (ar *Arena) result(scheduler string) *Result {
	ar.res = Result{Assignment: &ar.asg, FailedTask: -1, Scheduler: scheduler}
	return &ar.res
}

// procStates resets the arena's incremental RTA states for m processors.
func (ar *Arena) procStates(m int, surcharge task.Time) []rta.ProcState {
	ar.states = rta.ResetProcStates(ar.states, m, surcharge)
	return ar.states
}

// boolBuf returns an n-length cleared bool buffer from *buf.
func boolBuf(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = false
		}
	}
	*buf = b
	return b
}

// floatBuf returns an n-length cleared float64 buffer from *buf.
func floatBuf(buf *[]float64, n int) []float64 {
	b := *buf
	if cap(b) < n {
		b = make([]float64, n)
	} else {
		b = b[:n]
		for i := range b {
			b[i] = 0
		}
	}
	*buf = b
	return b
}

// intBuf returns an n-length int buffer from *buf; contents are arbitrary
// (callers overwrite every element).
func intBuf(buf *[]int, n int) []int {
	b := *buf
	if cap(b) < n {
		b = make([]int, n)
	} else {
		b = b[:n]
	}
	*buf = b
	return b
}

// taskOrder fills the arena's index buffer with 0..n-1 permuted per the
// fit order, using sorted's utilizations as sort keys. The DU permutation
// is byte-identical to the former sort.SliceStable (stable insertion sort,
// keys computed once per task).
func (ar *Arena) taskOrder(sorted task.Set, order FitOrder) []int {
	n := len(sorted)
	idxs := intBuf(&ar.idxs, n)
	for i := range idxs {
		idxs[i] = i
	}
	switch order {
	case DecreasingUtilization:
		keys := floatBuf(&ar.keys, n)
		for i := range keys {
			keys[i] = sorted[i].Utilization()
		}
		sortIdxsByKeyDesc(idxs, keys)
	case IncreasingPriority:
		for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
			idxs[i], idxs[j] = idxs[j], idxs[i]
		}
	case DecreasingPriority:
		// already in place
	}
	return idxs
}

// sortIdxsByKeyDesc stably sorts idxs by descending keys[idx] — an
// insertion sort moving elements only past strictly smaller keys, hence
// the same permutation as sort.SliceStable with the matching less.
func sortIdxsByKeyDesc(idxs []int, keys []float64) {
	for i := 1; i < len(idxs); i++ {
		x := idxs[i]
		k := keys[x]
		j := i - 1
		for j >= 0 && keys[idxs[j]] < k {
			idxs[j+1] = idxs[j]
			j--
		}
		idxs[j+1] = x
	}
}

// demandsBuf returns the per-processor EDF demand mirror with m empty
// rows, preserving row capacities across calls.
func (ar *Arena) demandsBuf(m int) [][]edfa.Demand {
	if cap(ar.demands) < m {
		grown := make([][]edfa.Demand, m)
		copy(grown, ar.demands[:cap(ar.demands)])
		ar.demands = grown
	} else {
		ar.demands = ar.demands[:m]
	}
	for q := range ar.demands {
		ar.demands[q] = ar.demands[q][:0]
	}
	return ar.demands
}

// edfCap is one processor's spare window capacity during an EDF-TS window
// split (lifted out of splitByWindows so the candidate list can live in
// the arena).
type edfCap struct {
	q int
	c task.Time
}
