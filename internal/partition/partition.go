// Package partition implements the paper's partitioned multiprocessor
// scheduling algorithms with task splitting — RM-TS/light (§IV) and RM-TS
// (§V) — together with the baselines they are evaluated against: SPA1 and
// SPA2 from [16] (utilization-threshold packing that never exceeds the Liu
// & Layland bound) and strict partitioning without splitting (first-fit /
// worst-fit with exact RTA admission).
//
// All algorithms consume a task set and a processor count and produce a
// Result holding the per-processor subtask assignment. RM-TS and
// RM-TS/light admit (sub)tasks with exact response-time analysis, which is
// what lifts their average-case acceptance far above the worst-case bound;
// the SPA baselines admit by utilization threshold and therefore cannot.
package partition

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/split"
	"repro/internal/task"
)

// Instrumentation (no-ops unless obs.SetEnabled): the packing skeleton's
// decision counters, shared by the RTA-based and threshold-based
// algorithms so experiment snapshots can compare how much admission work
// each acceptance decision buys (§I's exact-test-vs-threshold argument).
var (
	cAssignAttempts = obs.NewCounter("partition.assign.attempts")
	cAssignWhole    = obs.NewCounter("partition.assign.whole")
	cSplits         = obs.NewCounter("partition.splits")
	cProcFull       = obs.NewCounter("partition.proc_full")
	cPreAssign      = obs.NewCounter("partition.preassign")
	cWindowSplits   = obs.NewCounter("partition.edf.window_splits")
)

// traceIters samples the global RTA iteration total for decision traces;
// deltas around an admission check give its cost. Only meaningful when
// metrics are enabled and the traced partitioning runs single-goroutine
// (cmd/partition -trace), which is how traces are produced.
func traceIters(tr *obs.Trace) int64 {
	if tr == nil {
		return 0
	}
	return rta.IterationsValue()
}

// traceAborts samples the global RTA abort total, so decision traces can
// mark admissions whose "no" came from the MaxIters cap rather than a
// proven deadline miss (same single-goroutine caveat as traceIters).
func traceAborts(tr *obs.Trace) int64 {
	if tr == nil {
		return 0
	}
	return rta.AbortsValue()
}

// Result is the outcome of a partitioning attempt.
type Result struct {
	// OK reports whether every task was fully assigned.
	OK bool
	// Guaranteed reports whether the producing algorithm's theory proves
	// the partitioned system schedulable. For the RTA-based algorithms
	// (RM-TS, RM-TS/light, FF/WF-RTA) this equals OK (Lemma 4); for the
	// threshold-based baselines SPA1/SPA2 it additionally requires the
	// preconditions of their utilization-bound theorems from [16], which is
	// exactly why they "never utilize more than the worst-case bound" (§I).
	Guaranteed bool
	// Assignment is the (possibly partial, when !OK) assignment produced.
	// Assignment.Set is the RM-sorted copy of the input; subtask TaskIndex
	// values refer to it.
	Assignment *task.Assignment
	// FailedTask is the RM-sorted index of the first task that could not be
	// (fully) assigned, or -1.
	FailedTask int
	// Reason describes a failure in one line; empty on success.
	Reason string
	// Cause classifies the terminal failure (CauseNone on success). Use
	// RejectionCause to fold in the guarantee dimension.
	Cause Cause
	// NumSplit is the number of tasks divided across processors.
	NumSplit int
	// NumPreAssigned is the number of heavy tasks placed by RM-TS/SPA2
	// phase 1.
	NumPreAssigned int
	// Scheduler names the per-processor runtime policy the result assumes:
	// "" or "FP" for fixed-priority (everything in this package except the
	// EDF baselines), "EDF" for the partitioned-EDF baselines. Verify
	// covers FP results; VerifyEDF covers EDF results, and the simulator
	// must be run with the matching sim.Policy.
	Scheduler string
}

// Algorithm is a partitioning algorithm (with or without task splitting).
type Algorithm interface {
	// Name identifies the algorithm in reports.
	Name() string
	// Partition attempts to place every task of ts onto m processors. The
	// input set is not modified; it is cloned and RM-sorted internally.
	Partition(ts task.Set, m int) *Result
}

// fragment is the not-yet-assigned remainder of the task currently being
// placed: remC ticks of execution, with offset ticks of worst-case
// predecessor delay already accumulated (so its synthetic deadline is
// T − offset, equation (1)).
type fragment struct {
	idx    int
	part   int
	remC   task.Time
	offset task.Time
}

func wholeFragment(idx int, t task.Task) fragment {
	// The starting offset is T − D (zero for implicit deadlines), so the
	// first fragment's synthetic deadline is the task's effective deadline
	// and later fragments shrink from there.
	return fragment{idx: idx, part: 1, remC: t.C, offset: t.T - t.Deadline()}
}

// deadline returns the fragment's synthetic deadline Δ = T − offset.
func (f fragment) deadline(t task.Task) task.Time { return t.T - f.offset }

// assignOrSplit implements the Assign routine of §IV-A on processor q:
// place the fragment entirely if exact RTA admits it; otherwise assign the
// maximal prefix MaxSplit finds (possibly empty) and report the processor
// full. It returns whether the fragment was fully placed and, if not, the
// remainder to continue with.
//
// All analysis runs on the processor's incremental state ps — the warm-
// start response cache and reused interference mirror of internal/rta —
// which must shadow asg.Procs[q] exactly (every Add here is paired with an
// Insert). ps.Surcharge carries the per-fragment overhead surcharge (see
// overhead.go); zero reproduces the paper's zero-overhead analysis.
//
// The new fragment is inserted at its RM priority position. In RM-TS/light
// and RM-TS phase 2 it is always the highest-priority subtask on q (tasks
// arrive in increasing priority order, Lemma 2); in RM-TS phase 3 a
// pre-assigned task may outrank it, which the general-position analysis
// handles, and the synthetic deadline of the next fragment is then advanced
// by the body's actual response time R rather than C (equation (1)).
func assignOrSplit(asg *task.Assignment, ps *rta.ProcState, q int, f fragment, ts task.Set, tr *obs.Trace) (placed bool, rem fragment, full bool) {
	t := ts[f.idx]
	d := f.deadline(t)
	s := ps.Surcharge
	cAssignAttempts.Inc()
	before := traceIters(tr)
	abortsBefore := traceAborts(tr)
	if tr != nil {
		ev := obs.Event{Kind: obs.EvAssignAttempt, Task: f.idx, Part: f.part, Proc: q,
			C: f.remC, T: t.T, Deadline: d}
		if s > 0 {
			ev.Note = fmt.Sprintf("surcharge %d", s)
		}
		tr.Add(ev)
	}
	// The closed-form density prefilter proves the common lightly-loaded
	// admission without any fixed point; a miss is "unknown", not "no", and
	// falls through to the exact probe (see prefilter.go).
	if d >= f.remC+s && (prefilterAdmit(ps, f.idx, f.remC, d) || ps.AdmitAt(f.idx, f.remC, t.T, d)) {
		sub := task.Subtask{
			TaskIndex: f.idx, Part: f.part, C: f.remC, T: t.T,
			Deadline: d, Offset: f.offset, Tail: true,
		}
		asg.Add(q, sub)
		ps.Insert(sub)
		cAssignWhole.Inc()
		if tr != nil {
			tr.Add(obs.Event{Kind: obs.EvAssigned, Task: f.idx, Part: f.part, Proc: q,
				C: f.remC, Deadline: d, RTAIters: traceIters(tr) - before,
				RTAAborted: traceAborts(tr) > abortsBefore, OK: true})
		}
		return true, fragment{}, false
	}
	portion := split.MaxPortionState(ps, f.idx, t.T, f.remC+s, d) - s
	if portion >= f.remC {
		// MaxSplit and AdmitAt implement the same exact criterion;
		// disagreement means a broken analysis, not bad input.
		panic("partition: MaxSplit admits a fragment the full RTA rejected")
	}
	if portion > 0 {
		body := task.Subtask{
			TaskIndex: f.idx, Part: f.part, C: portion, T: t.T,
			Deadline: d, Offset: f.offset, Tail: false,
		}
		asg.Add(q, body)
		pos := ps.Insert(body)
		r, ok := ps.ResponseAt(pos, d)
		if !ok {
			panic("partition: freshly split body fragment is unschedulable")
		}
		cSplits.Inc()
		if tr != nil {
			tr.Add(obs.Event{Kind: obs.EvSplit, Task: f.idx, Part: f.part, Proc: q,
				C: f.remC, Portion: portion, Remainder: f.remC - portion, Response: r,
				RTAIters: traceIters(tr) - before, RTAAborted: traceAborts(tr) > abortsBefore})
		}
		f = fragment{idx: f.idx, part: f.part + 1, remC: f.remC - portion, offset: f.offset + r}
	} else if tr != nil {
		note := "MaxSplit found no admissible prefix"
		if s > 0 {
			note = "surcharged MaxSplit found no admissible prefix"
		}
		tr.Add(obs.Event{Kind: obs.EvReject, Task: f.idx, Part: f.part, Proc: q,
			C: f.remC, Deadline: d, RTAIters: traceIters(tr) - before,
			RTAAborted: traceAborts(tr) > abortsBefore, Note: note})
	}
	cProcFull.Inc()
	if tr != nil {
		tr.Add(obs.Event{Kind: obs.EvProcFull, Task: f.idx, Part: f.part, Proc: q})
	}
	return false, f, true
}

// minUtilProcessor returns the index of the processor with the smallest
// assigned utilization among those with eligible[q] && !full[q], or -1.
// Ties break towards the lowest index, making the packing deterministic.
func minUtilProcessor(asg *task.Assignment, eligible, full []bool) int {
	best := -1
	bestU := 0.0
	for q := range asg.Procs {
		if (eligible != nil && !eligible[q]) || full[q] {
			continue
		}
		u := asg.Utilization(q)
		if best == -1 || u < bestU {
			best, bestU = q, u
		}
	}
	return best
}

// Verify independently re-checks a successful Result: structural invariants
// of the assignment (task.Assignment.Validate), exact RTA of every subtask
// against its synthetic deadline, and consistency of the synthetic
// deadlines with the body fragments' actual response times
// (Δ^{k+1} ≤ T − Σ_{l≤k} R^l). A nil error means the partitioned system
// provably meets all deadlines (Lemma 4's argument).
func Verify(res *Result) error {
	if res == nil || res.Assignment == nil {
		return fmt.Errorf("partition: nil result")
	}
	if !res.OK {
		return fmt.Errorf("partition: result reports failure: %s", res.Reason)
	}
	asg := res.Assignment
	if err := asg.Validate(); err != nil {
		return fmt.Errorf("partition: structural check failed: %w", err)
	}
	// Exact RTA of every subtask on its processor.
	for q, list := range asg.Procs {
		for i := range list {
			r, ok := rta.SubtaskResponse(list, i)
			if !ok {
				return fmt.Errorf("partition: processor %d: %s has response %d exceeding synthetic deadline %d", q, list[i], r, list[i].Deadline)
			}
		}
	}
	// Synthetic deadlines must cover the accumulated response times of the
	// preceding fragments.
	for idx := range asg.Set {
		subs, procs := asg.Subtasks(idx)
		var acc task.Time
		for k, s := range subs {
			if s.Offset < acc {
				return fmt.Errorf("partition: task %d part %d: offset %d is below accumulated response %d", idx, s.Part, s.Offset, acc)
			}
			list := asg.Procs[procs[k]]
			pos := -1
			for i, ls := range list {
				if ls.TaskIndex == idx && ls.Part == s.Part {
					pos = i
					break
				}
			}
			r, ok := rta.SubtaskResponse(list, pos)
			if !ok {
				return fmt.Errorf("partition: task %d part %d unschedulable on processor %d", idx, s.Part, procs[k])
			}
			acc = s.Offset + r
		}
		if acc > asg.Set[idx].T {
			return fmt.Errorf("partition: task %d: accumulated response %d exceeds its deadline %d", idx, acc, asg.Set[idx].T)
		}
	}
	return nil
}

// requireImplicit fails algorithms whose theory only covers the
// implicit-deadline L&L model (the SPA thresholds, the bound-based
// admissions, the EDF utilization test, global scheduling bounds).
func requireImplicit(sorted task.Set, asg *task.Assignment, who string) *Result {
	if sorted.Implicit() {
		return nil
	}
	res := &Result{Assignment: asg}
	return failWith(res, CauseModelMismatch, -1,
		who+" requires implicit deadlines (D = T); use the RTA-based algorithms for constrained deadlines")
}

// surchargeFeasible reports the first task that cannot possibly meet its
// deadline under a per-fragment surcharge s (C + s > T: even alone on a
// processor, its surcharged demand exceeds the deadline, and splitting
// only multiplies the surcharge), or -1 if all are feasible.
func surchargeFeasible(sorted task.Set, s task.Time) int {
	if s <= 0 {
		return -1
	}
	for i, t := range sorted {
		if t.C+s > t.T {
			return i
		}
	}
	return -1
}
