package partition

import (
	"strings"
	"testing"

	"repro/internal/task"
)

// overloaded is a set no algorithm can place on 2 processors (total
// utilization 2.7 > 2), driving every packing to its terminal failure.
var overloaded = task.Set{
	{Name: "a", C: 9, T: 10},
	{Name: "b", C: 9, T: 10},
	{Name: "c", C: 9, T: 10},
}

// lightOverloaded overloads 2 processors with light tasks only (7×0.4 = 2.8;
// U=0.4 is below Θ/(1+Θ) ≈ 0.42 at N=7), so no pre-assignment happens.
var lightOverloaded = task.Set{
	{C: 4, T: 10}, {C: 4, T: 10}, {C: 4, T: 10}, {C: 4, T: 10},
	{C: 4, T: 10}, {C: 4, T: 10}, {C: 4, T: 10},
}

func TestRejectionCauseTagging(t *testing.T) {
	cases := []struct {
		name string
		alg  Algorithm
		ts   task.Set
		m    int
		want Cause
	}{
		{"rmts-light overload", RMTSLight{}, overloaded, 2, CauseMaxSplitExhausted},
		// All-light overload (7×U=0.4 on 2 procs): RM-TS pre-assigns nothing,
		// so the failure is the packing running out of processors.
		{"rmts light-overload", NewRMTS(nil), lightOverloaded, 2, CauseMaxSplitExhausted},
		// Heavy overload: RM-TS dedicates every processor to a heavy task in
		// phase 1 and the rest find no normal processor.
		{"rmts heavy-overload", NewRMTS(nil), overloaded, 2, CausePreAssignExhausted},
		{"spa1 overload", SPA1{}, overloaded, 2, CauseThresholdExhausted},
		{"spa2 overload", SPA2{}, overloaded, 2, CauseThresholdExhausted},
		{"ff-rta overload", FirstFitRTA{}, overloaded, 2, CauseRTADeadlineMiss},
		{"ff-ll overload", FirstFit{Admission: AdmitLL}, overloaded, 2, CauseThresholdExhausted},
		{"edf-ff overload", EDFFirstFit{}, overloaded, 2, CauseDemandOverload},
		{"edf-ts overload", EDFTS{}, overloaded, 2, CauseDemandOverload},
		{"spa1 constrained", SPA1{}, task.Set{{C: 1, T: 10, D: 5}}, 1, CauseModelMismatch},
		{"no processors", RMTSLight{}, overloaded, 0, CauseInvalidInput},
		{"invalid set", RMTSLight{}, task.Set{{C: 5, T: 3}}, 2, CauseInvalidInput},
		{"surcharge infeasible", RMTSLight{Surcharge: 3}, task.Set{{C: 8, T: 10}}, 1, CauseSurchargeInfeasible},
	}
	for _, tc := range cases {
		res := tc.alg.Partition(tc.ts, tc.m)
		if res.OK {
			t.Errorf("%s: unexpectedly OK", tc.name)
			continue
		}
		if res.Cause != tc.want {
			t.Errorf("%s: Cause = %s, want %s (reason: %s)", tc.name, res.Cause, tc.want, res.Reason)
		}
		if got := res.RejectionCause(); got != tc.want {
			t.Errorf("%s: RejectionCause = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestRejectionCauseSuccessAndGuarantee(t *testing.T) {
	ts := task.Set{{C: 1, T: 10}, {C: 1, T: 10}}
	res := (RMTSLight{}).Partition(ts, 2)
	if !res.OK || res.Cause != CauseNone || res.RejectionCause() != CauseNone {
		t.Fatalf("accepted set: Cause=%s RejectionCause=%s", res.Cause, res.RejectionCause())
	}
	// SPA1 packs this non-light set (one heavy task, plenty of room) but its
	// theorem does not cover it: OK && !Guaranteed → guarantee-violated.
	heavy := task.Set{{C: 9, T: 10}, {C: 1, T: 100}}
	hres := (SPA1{}).Partition(heavy, 2)
	if !hres.OK {
		t.Fatalf("SPA1 failed to pack the heavy set: %s", hres.Reason)
	}
	if hres.Guaranteed {
		t.Fatal("SPA1 claims a guarantee on a non-light set")
	}
	if got := hres.RejectionCause(); got != CauseGuaranteeViolated {
		t.Fatalf("RejectionCause = %s, want %s", got, CauseGuaranteeViolated)
	}
}

func TestCauseNamesStableAndUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range RejectionCauses() {
		s := c.String()
		if s == "" || strings.Contains(s, "?") {
			t.Errorf("cause %d has no name", c)
		}
		if seen[s] {
			t.Errorf("duplicate cause name %q", s)
		}
		seen[s] = true
		if c.Describe() == "unknown cause" {
			t.Errorf("cause %s has no description", s)
		}
	}
	if Cause(255).String() != "cause(?)" {
		t.Error("out-of-range cause should render as cause(?)")
	}
	if CauseNone.String() != "none" {
		t.Error("CauseNone should render as none")
	}
}

func TestPreAssignExhaustedCause(t *testing.T) {
	// Two heavy tasks pre-assign onto both processors (U=0.9 > lightThr and
	// condition (8) holds trivially for the suffix), then the remaining load
	// finds every processor occupied by a dedicated heavy task.
	ts := task.Set{
		{Name: "h1", C: 9, T: 10},
		{Name: "h2", C: 9, T: 10},
		{Name: "x1", C: 5, T: 10},
		{Name: "x2", C: 5, T: 10},
	}
	res := (SPA2{}).Partition(ts, 2)
	if res.OK {
		t.Skip("SPA2 unexpectedly packed the set; pre-assign exhaustion not reachable here")
	}
	if res.NumPreAssigned == 2 && res.Cause != CausePreAssignExhausted {
		t.Errorf("Cause = %s with all processors pre-assigned, want %s", res.Cause, CausePreAssignExhausted)
	}
}
