package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/xrand"
)

// ConstrainedDeadlines (E16) evaluates the constrained-deadline extension
// (D ≤ T, deadline-monotonic priorities — beyond the paper's implicit
// model, enabled by the RTA-based admission): acceptance of RM-TS (DM
// order) and strict P-DM-FF as the deadline tightness factor D/T shrinks,
// at fixed U_M. The utilization-bound algorithms (SPA) are inapplicable by
// construction and excluded. Expected: monotone decline with tightness;
// splitting retains an edge over strict partitioning throughout.
func ConstrainedDeadlines(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE16))
	m := 8
	um := 0.85
	fracs := [][2]float64{{1.0, 1.0}, {0.9, 1.0}, {0.8, 0.9}, {0.7, 0.8}, {0.6, 0.7}, {0.5, 0.6}, {0.4, 0.5}}
	if cfg.Quick {
		m = 4
		fracs = [][2]float64{{1.0, 1.0}, {0.8, 0.9}, {0.5, 0.6}}
	}
	algos := []algoSpec{
		{"RM-TS (DM)", partition.NewRMTS(nil)},
		{"RM-TS/light (DM)", partition.RMTSLight{}},
		{"P-DM-FF", partition.FirstFitRTA{}},
		{"EDF-TS", partition.EDFTS{}},
	}
	header := []string{"D/T range"}
	for _, a := range algos {
		header = append(header, a.name)
	}
	t := Table{
		ID:     "constrained-deadlines",
		Title:  fmt.Sprintf("M=%d, U_M=%.2f, U_i∈[0.05,0.4], deadlines tightened to D = f·T, %d sets/point", m, um, cfg.setsPerPoint()),
		Header: header,
		Notes: []string{
			"extension beyond the paper's implicit-deadline model: DM priorities + exact RTA; bounds do not apply",
			"expected: acceptance monotone in f; splitting (RM-TS) ≥ strict partitioning at every tightness",
		},
	}
	mt := cfg.meter("constrained-deadlines", len(fracs))
	for _, f := range fracs {
		f := f
		n := cfg.setsPerPoint()
		perSet := make([][]bool, n)
		errs := make([]error, n)
		parErr := cfg.parEach(r.Int63(), n, func(s int, r *rand.Rand, ws *Workspace) {
			base, err := gen.TaskSetInto(r, gen.Config{TargetU: um * float64(m), UMin: 0.05, UMax: 0.4}, ws.Gen())
			if err != nil {
				errs[s] = err
				return
			}
			ts := base
			if f[0] < 1.0 || f[1] < 1.0 {
				// ConstrainInto writes to the scratch's separate output
				// buffer, so base (which aliases the set buffer) stays valid.
				ts, err = gen.ConstrainInto(r, base, f[0], f[1], ws.Gen())
				if err != nil {
					errs[s] = err
					return
				}
			}
			row := make([]bool, len(algos))
			for i, a := range algos {
				res := ws.Partition(a.alg, ts, m)
				row[i] = res.OK && res.Guaranteed
			}
			perSet[s] = row
		})
		if parErr != nil {
			return nil, fmt.Errorf("constrained-deadlines: %w", parErr)
		}
		if err := firstError(errs); err != nil {
			return nil, fmt.Errorf("constrained-deadlines: %w", err)
		}
		accepted := make([]int, len(algos))
		for _, row := range perSet {
			for i, ok := range row {
				if ok {
					accepted[i]++
				}
			}
		}
		label := fmt.Sprintf("[%.1f,%.1f]", f[0], f[1])
		if f[0] == 1.0 && f[1] == 1.0 {
			label = "1.0 (implicit)"
		}
		row := []string{label}
		for _, k := range accepted {
			row = append(row, fmt.Sprintf("%.3f", float64(k)/float64(n)))
		}
		t.Rows = append(t.Rows, row)
		mt.Tick("f=%s", label)
	}
	return []Table{t}, nil
}
