package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/partition"
	"repro/internal/rta"
)

var updateGolden = flag.Bool("update", false, "rewrite golden experiment tables")

// renderAllQuick renders every registered experiment's tables at the quick
// benchmark scale — the same tables `cmd/experiments -all -quick -sets 10
// -seed 1` prints.
func renderAllQuick(t *testing.T) []byte {
	return renderAllQuickCfg(t, quickCfg())
}

func renderAllQuickCfg(t *testing.T, cfg Config) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, e := range Registry() {
		if e.Key == "split-ablation" {
			// Its table embeds wall-clock timings and cannot be golden;
			// the deterministic half (testing-point vs binary-search
			// agreement) is covered by the split package property tests.
			continue
		}
		tables, err := e.Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", e.Key, err)
		}
		for _, tb := range tables {
			tb.Render(&buf)
		}
	}
	return buf.Bytes()
}

// TestGoldenQuickTables is the regression net for the whole evaluation
// pipeline: the rendered quick-scale tables for a fixed seed must stay byte
// for byte what they were when the golden file was recorded. Run with
// `go test -run TestGoldenQuickTables -update ./internal/experiments` after
// an intentional output change and review the diff.
func TestGoldenQuickTables(t *testing.T) {
	got := renderAllQuick(t)
	path := filepath.Join("testdata", "quick_tables.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("quick tables diverged from %s (rerun with -update if intended)\n--- got %d bytes, want %d bytes ---\n%s",
			path, len(got), len(want), firstDiff(got, want))
	}
}

// TestGoldenQuickTablesCacheOff re-renders the same tables with warm-start
// RTA caching disabled: the experiment pipeline must be byte-identical in
// both cache modes (the cache may only change iteration counts).
func TestGoldenQuickTablesCacheOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: cache-off rerun skipped")
	}
	path := filepath.Join("testdata", "quick_tables.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	rta.SetWarmStart(false)
	defer rta.SetWarmStart(true)
	got := renderAllQuick(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("tables with cache off diverged from golden\n%s", firstDiff(got, want))
	}
}

// TestGoldenQuickTablesReuseOff re-renders the same tables with scratch
// reuse disabled (Config.NoReuse, the `-reuse=false` cold path): arenas and
// workspaces may only change where memory comes from, never a verdict, so
// the rendered tables must match the golden file byte for byte.
func TestGoldenQuickTablesReuseOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: reuse-off rerun skipped")
	}
	path := filepath.Join("testdata", "quick_tables.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	cfg := quickCfg()
	cfg.NoReuse = true
	got := renderAllQuickCfg(t, cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("tables with reuse off diverged from golden\n%s", firstDiff(got, want))
	}
}

// firstDiff returns a short context window around the first differing byte.
func firstDiff(got, want []byte) string {
	i := 0
	for i < len(got) && i < len(want) && got[i] == want[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	clip := func(b []byte) []byte {
		hi := i + 120
		if hi > len(b) {
			hi = len(b)
		}
		if lo > len(b) {
			return nil
		}
		return b[lo:hi]
	}
	return "got:  …" + string(clip(got)) + "…\nwant: …" + string(clip(want)) + "…"
}

// TestGoldenQuickTablesPrefilterOff re-renders the same tables with the
// sufficient-PUB admission prefilter disabled: the prefilter only ever skips
// an exact RTA probe whose verdict it already proved (prefilter-yes ⟹
// exact-yes), so the rendered tables must match the golden file byte for
// byte in both modes.
func TestGoldenQuickTablesPrefilterOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: prefilter-off rerun skipped")
	}
	path := filepath.Join("testdata", "quick_tables.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	partition.SetPrefilter(false)
	defer partition.SetPrefilter(true)
	got := renderAllQuick(t)
	if !bytes.Equal(got, want) {
		t.Fatalf("tables with prefilter off diverged from golden\n%s", firstDiff(got, want))
	}
}

// TestGoldenQuickTablesCrossScaleOff re-renders the same tables with
// cross-scale verdict reuse disabled (Config.NoCrossScale, the
// `-crossscale=false` path): breakdown bisections then re-evaluate every
// scale from cold, which may only change iteration counts, never a verdict
// or a table byte.
func TestGoldenQuickTablesCrossScaleOff(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: cross-scale-off rerun skipped")
	}
	path := filepath.Join("testdata", "quick_tables.golden")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to record): %v", err)
	}
	cfg := quickCfg()
	cfg.NoCrossScale = true
	got := renderAllQuickCfg(t, cfg)
	if !bytes.Equal(got, want) {
		t.Fatalf("tables with cross-scale reuse off diverged from golden\n%s", firstDiff(got, want))
	}
}
