package experiments

import (
	"bytes"
	"testing"

	"repro/internal/obs"
)

// renderE2 runs acceptance-general at quick scale and returns its rendered
// tables byte for byte.
func renderE2(t *testing.T, workers int) []byte {
	t.Helper()
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general not registered")
	}
	var buf bytes.Buffer
	tables, err := e.Run(Config{Seed: 7, SetsPerPoint: 16, Quick: true, Workers: workers})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, tb := range tables {
		tb.Render(&buf)
		tb.CSV(&buf)
	}
	return buf.Bytes()
}

// TestInstrumentationDoesNotAlterOutput is the determinism contract of the
// obs layer: experiment output must be bit-for-bit identical whether
// instrumentation is enabled or disabled, at any worker count.
func TestInstrumentationDoesNotAlterOutput(t *testing.T) {
	obs.SetEnabled(false)
	defer obs.SetEnabled(false)
	baseline := renderE2(t, 1)

	for _, workers := range []int{1, 8} {
		for _, enabled := range []bool{false, true} {
			obs.SetEnabled(enabled)
			obs.Reset()
			got := renderE2(t, workers)
			if !bytes.Equal(got, baseline) {
				t.Errorf("output diverged with obs=%v workers=%d:\n--- baseline ---\n%s\n--- got ---\n%s",
					enabled, workers, baseline, got)
			}
		}
	}
}

// TestCounterTotalsWorkerInvariant checks the second half of the contract:
// with instrumentation on, counter totals and histograms are identical at
// any Workers count, because the same admission work runs regardless of
// goroutine scheduling.
func TestCounterTotalsWorkerInvariant(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	snapshotAt := func(workers int) obs.Snapshot {
		obs.Reset()
		renderE2(t, workers)
		return obs.Default.Snapshot()
	}
	one := snapshotAt(1)
	eight := snapshotAt(8)

	if one.Get("rta.calls") == 0 {
		t.Fatal("no RTA calls recorded — instrumentation not wired")
	}
	if len(one.Counters) != len(eight.Counters) {
		t.Fatalf("counter sets differ: %d vs %d", len(one.Counters), len(eight.Counters))
	}
	for i, c := range one.Counters {
		if eight.Counters[i] != c {
			t.Errorf("counter %s: workers=1 → %d, workers=8 → %d",
				c.Name, c.Value, eight.Counters[i].Value)
		}
	}
	h1, ok1 := one.GetHistogram("rta.iters_per_call")
	h8, ok8 := eight.GetHistogram("rta.iters_per_call")
	if !ok1 || !ok8 {
		t.Fatal("rta.iters_per_call histogram missing")
	}
	if h1.Count != h8.Count || h1.Sum != h8.Sum || h1.Max != h8.Max {
		t.Errorf("histogram diverged across worker counts: %+v vs %+v", h1, h8)
	}
}

// TestRunWithMetricsAttachesSnapshot checks that RunWithMetrics captures the
// run's counters and timing without touching the tables.
func TestRunWithMetricsAttachesSnapshot(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	e, _ := Find("acceptance-general")
	tables, rm, err := RunWithMetrics(e, Config{Seed: 7, SetsPerPoint: 4, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	if rm.Key != "acceptance-general" || rm.Seconds <= 0 {
		t.Fatalf("metrics header wrong: %+v", rm)
	}
	snap := obs.Snapshot{Counters: rm.Counters}
	if snap.Get("rta.calls") == 0 || snap.Get("partition.assign.attempts") == 0 {
		t.Fatalf("expected nonzero analysis counters, got %+v", rm.Counters)
	}
	var buf bytes.Buffer
	rm.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("# metrics acceptance-general")) ||
		!bytes.Contains(buf.Bytes(), []byte("rta.calls")) {
		t.Fatalf("Render output:\n%s", buf.String())
	}
}
