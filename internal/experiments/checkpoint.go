package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
)

// checkpointVersion guards the file format; bump on incompatible changes.
const checkpointVersion = 1

// checkpointFile is the on-disk shape: the run configuration the rows were
// computed under, plus one completed row per finished sweep point, keyed
// "<table id>/<point index>". Rows are stored as raw float64 values —
// encoding/json round-trips float64 exactly, so a restored row renders
// byte-identically to a recomputed one.
type checkpointFile struct {
	Version int                  `json:"version"`
	Seed    int64                `json:"seed"`
	Sets    int                  `json:"sets"`
	Quick   bool                 `json:"quick"`
	Rows    map[string][]float64 `json:"rows"`
}

// Checkpoint persists completed sweep points so a killed run can resume
// without recomputing them. Writes are atomic (temp file + fsync + rename
// in the destination directory), so a crash mid-write leaves the previous
// checkpoint intact, never a corrupt one. A write failure degrades
// gracefully: the sweep keeps computing with checkpointing disabled and a
// warning on the progress stream — checkpointing is an optimization, never
// a correctness dependency.
//
// A Checkpoint is confined to the experiment-driving goroutine (sweep
// points complete sequentially; the fan-out below a point never touches
// it), so it needs no locking.
type Checkpoint struct {
	path     string
	file     checkpointFile
	hits     int
	disabled bool
}

// NewCheckpoint returns an empty checkpoint that will persist to path,
// recording the identity of cfg. Any existing file at path is ignored and
// overwritten on the first completed point.
func NewCheckpoint(path string, cfg Config) *Checkpoint {
	return &Checkpoint{path: path, file: checkpointFile{
		Version: checkpointVersion,
		Seed:    cfg.Seed,
		Sets:    cfg.setsPerPoint(),
		Quick:   cfg.Quick,
		Rows:    map[string][]float64{},
	}}
}

// ResumeCheckpoint loads the checkpoint at path and verifies it was
// written by a run with the same identity as cfg — resuming under a
// different seed, scale or sweep shape would splice rows from a different
// experiment into the tables. A missing file is not an error: it returns
// an empty checkpoint (the run simply starts from the beginning, which is
// what resuming a run killed before its first completed point means).
func ResumeCheckpoint(path string, cfg Config) (*Checkpoint, error) {
	cp := NewCheckpoint(path, cfg)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cp, nil
	}
	if err != nil {
		return nil, fmt.Errorf("experiments: resume: %w", err)
	}
	var f checkpointFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiments: resume: corrupt checkpoint %s: %w", path, err)
	}
	if f.Version != checkpointVersion {
		return nil, fmt.Errorf("experiments: resume: checkpoint %s has version %d, want %d", path, f.Version, checkpointVersion)
	}
	if f.Seed != cfg.Seed || f.Sets != cfg.setsPerPoint() || f.Quick != cfg.Quick {
		return nil, fmt.Errorf("experiments: resume: checkpoint %s was written by seed=%d sets=%d quick=%v, run is seed=%d sets=%d quick=%v",
			path, f.Seed, f.Sets, f.Quick, cfg.Seed, cfg.setsPerPoint(), cfg.Quick)
	}
	if f.Rows == nil {
		f.Rows = map[string][]float64{}
	}
	cp.file = f
	return cp, nil
}

// Hits returns how many sweep points were restored from the checkpoint
// instead of recomputed.
func (cp *Checkpoint) Hits() int {
	if cp == nil {
		return 0
	}
	return cp.hits
}

// Points returns how many completed points the checkpoint currently holds.
func (cp *Checkpoint) Points() int {
	if cp == nil {
		return 0
	}
	return len(cp.file.Rows)
}

// lookup returns the stored row for key, counting a hit. Nil-safe.
func (cp *Checkpoint) lookup(key string) ([]float64, bool) {
	if cp == nil {
		return nil, false
	}
	row, ok := cp.file.Rows[key]
	if ok {
		cp.hits++
	}
	return row, ok
}

// store records a completed point and persists the checkpoint atomically,
// reporting whether the write landed on disk. On a write failure it warns
// once on cfg's progress stream and disables further writes; the sweep
// continues unaffected. Nil-safe.
func (cp *Checkpoint) store(cfg Config, key string, row []float64) bool {
	if cp == nil || cp.disabled {
		return false
	}
	cp.file.Rows[key] = row
	if err := cp.save(); err != nil {
		cp.disabled = true
		cfg.progressf("warning: checkpoint write failed, continuing without checkpoints: %v", err)
		return false
	}
	return true
}

// save writes the checkpoint atomically: marshal, write to a temp file in
// the destination directory, fsync, rename over the target, fsync the
// directory. The injected CheckpointWrite fault fires before any byte is
// written, modelling a full disk or revoked permissions.
func (cp *Checkpoint) save() error {
	if err := faultinject.CheckpointWriteErr(); err != nil {
		return err
	}
	data, err := json.Marshal(cp.file)
	if err != nil {
		return err
	}
	dir := filepath.Dir(cp.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(cp.path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), cp.path); err != nil {
		return err
	}
	// Persist the rename itself; ignore platforms where directories cannot
	// be fsynced.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}
