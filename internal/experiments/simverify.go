package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/xrand"
)

// SimulateVerify (E10) is the empirical soundness experiment backing
// Lemma 4: every task set an algorithm claims schedulable is executed in
// the discrete-event simulator over (a cap of) its hyperperiod, and the
// table reports partitions simulated, deadline misses observed (which must
// be zero for the RTA-backed algorithms), jobs completed, and the worst
// observed job-response-to-deadline margin.
func SimulateVerify(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE10))
	m := 4
	sets := cfg.setsPerPoint()
	if cfg.Quick && sets > 40 {
		sets = 40
	}
	periodMenu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200, 400}}
	algos := []algoSpec{
		{"RM-TS", partition.NewRMTS(nil)},
		{"RM-TS/light", partition.RMTSLight{}},
		{"SPA1", partition.SPA1{}},
		{"SPA2", partition.SPA2{}},
		{"P-RM-FF", partition.FirstFitRTA{}},
	}
	type agg struct {
		simulated int
		misses    int
		jobs      int64
		preempt   int64
	}
	perSet := make([][]agg, sets)
	errs := make([]error, sets)
	parErr := cfg.parEach(r.Int63(), sets, func(s int, r *rand.Rand, ws *Workspace) {
		um := 0.55 + 0.4*r.Float64()
		ts, err := gen.TaskSetInto(r, gen.Config{
			TargetU: um * float64(m),
			UMin:    0.05, UMax: 0.5,
			Periods: periodMenu,
		}, ws.Gen())
		if err != nil {
			errs[s] = err
			return
		}
		row := make([]agg, len(algos))
		for i, a := range algos {
			// The result (and its assignment) borrows the workspace; it is
			// fully consumed by the simulation before the next Partition call.
			res := ws.Partition(a.alg, ts, m)
			if !res.OK || !res.Guaranteed {
				continue
			}
			rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: false, HorizonCap: 200_000})
			if err != nil {
				errs[s] = fmt.Errorf("%s: %v", a.name, err)
				return
			}
			row[i] = agg{simulated: 1, misses: len(rep.Misses), jobs: rep.Completed, preempt: rep.Preemptions}
		}
		perSet[s] = row
	})
	if parErr != nil {
		return nil, fmt.Errorf("simulate-verify: %w", parErr)
	}
	if err := firstError(errs); err != nil {
		return nil, fmt.Errorf("simulate-verify: %w", err)
	}
	result := make(map[string]*agg, len(algos))
	for i, a := range algos {
		g := &agg{}
		for _, row := range perSet {
			if row == nil {
				continue
			}
			g.simulated += row[i].simulated
			g.misses += row[i].misses
			g.jobs += row[i].jobs
			g.preempt += row[i].preempt
		}
		result[a.name] = g
	}
	t := Table{
		ID:     "simulate-verify",
		Title:  fmt.Sprintf("M=%d, %d random sets, hyperperiod-capped simulation of every guaranteed partition", m, sets),
		Header: []string{"algorithm", "partitions simulated", "deadline misses", "jobs completed", "preemptions"},
		Notes: []string{
			"Lemma 4: misses must be 0 for every algorithm whose guarantee held",
		},
	}
	for _, a := range algos {
		g := result[a.name]
		t.Rows = append(t.Rows, []string{
			a.name,
			fmt.Sprintf("%d", g.simulated),
			fmt.Sprintf("%d", g.misses),
			fmt.Sprintf("%d", g.jobs),
			fmt.Sprintf("%d", g.preempt),
		})
	}
	cfg.progressf("simulate-verify: %d sets done", sets)
	return []Table{t}, nil
}
