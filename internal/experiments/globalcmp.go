package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/global"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/xrand"
)

// GlobalCompare (E12) places the paper's partitioned algorithms against
// the global fixed-priority paradigm of §I's related-work discussion:
//
//   - table 1 demonstrates the Dhall effect [14]: the classic witness set
//     has shrinking normalized utilization as M grows, yet global RM
//     always misses, while RM-US and RM-TS schedule it;
//   - table 2 sweeps U_M and compares empirical global-RM / RM-US success
//     (simulation over a capped hyperperiod — necessary-only evidence!)
//     and the RM-US utilization bound m/(3m−2) against RM-TS's guaranteed
//     acceptance. The paper's point: the best global fixed-priority
//     *bound* is ≈33–50%, far below RM-TS's 81.8–100%.
func GlobalCompare(cfg Config) ([]Table, error) {
	t1 := Table{
		ID:     "global-compare/dhall",
		Title:  "Dhall effect: witness sets (m light tasks + one C=T task)",
		Header: []string{"M", "U_M(τ)", "global RM", "RM-US", "RM-TS (partitioned)"},
		Notes: []string{
			"global RM must miss at every M although U_M shrinks — the Dhall effect [14]",
		},
	}
	ms := []int{2, 4, 8, 16}
	if cfg.Quick {
		ms = []int{2, 4}
	}
	for _, m := range ms {
		ts := global.DhallExample(m, 50)
		grm, err := global.Simulate(ts, m, global.Options{Policy: global.RM, StopOnMiss: true})
		if err != nil {
			return nil, fmt.Errorf("global-compare: %w", err)
		}
		rmus, err := global.Simulate(ts, m, global.Options{Policy: global.RMUS, StopOnMiss: true})
		if err != nil {
			return nil, fmt.Errorf("global-compare: %w", err)
		}
		res := partition.NewRMTS(nil).Partition(ts, m)
		t1.Rows = append(t1.Rows, []string{
			fmt.Sprintf("%d", m),
			fmt.Sprintf("%.3f", ts.NormalizedUtilization(m)),
			missLabel(grm.Ok()),
			missLabel(rmus.Ok()),
			missLabel(res.OK && res.Guaranteed),
		})
	}

	r := rand.New(xrand.New(cfg.Seed ^ 0xE12))
	m := 8
	points := []float64{0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	if cfg.Quick {
		m = 4
		points = []float64{0.4, 0.6, 0.8}
	}
	t2 := Table{
		ID:    "global-compare/acceptance",
		Title: fmt.Sprintf("M=%d, U_i∈[0.05,0.9], %d sets/point; G-RM/RM-US = simulation over capped hyperperiod (necessary-only), others = guarantees", m, cfg.setsPerPoint()),
		Header: []string{
			"U_M", "G-RM sim", "RM-US sim", "RM-US bound", "RM-TS guaranteed",
		},
		Notes: []string{
			fmt.Sprintf("RM-US bound here: U_M ≤ m/(3m−2) = %.3f", global.USBound(m)),
			"simulation success is NO schedulability guarantee (synchronous release need not be the global worst case)",
		},
	}
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200, 400}}
	rmts := partition.NewRMTS(nil) // stateless across calls; shareable between workers
	mt := cfg.meter("global-compare", len(points))
	for _, um := range points {
		um := um
		n := cfg.setsPerPoint()
		perSet := make([][4]bool, n)
		errs := make([]error, n)
		parErr := cfg.parEach(r.Int63(), n, func(s int, r *rand.Rand, ws *Workspace) {
			ts, err := gen.TaskSetInto(r, gen.Config{TargetU: um * float64(m), UMin: 0.05, UMax: 0.9, Periods: menu}, ws.Gen())
			if err != nil {
				errs[s] = err
				return
			}
			var o [4]bool
			if rep, err := global.Simulate(ts, m, global.Options{Policy: global.RM, StopOnMiss: true, HorizonCap: 200_000}); err == nil && rep.Ok() {
				o[0] = true
			}
			if rep, err := global.Simulate(ts, m, global.Options{Policy: global.RMUS, StopOnMiss: true, HorizonCap: 200_000}); err == nil && rep.Ok() {
				o[1] = true
			}
			o[2] = global.SchedulableByUSBound(ts, m)
			if res := ws.Partition(rmts, ts, m); res.OK && res.Guaranteed {
				o[3] = true
			}
			perSet[s] = o
		})
		if parErr != nil {
			return nil, fmt.Errorf("global-compare: %w", parErr)
		}
		if err := firstError(errs); err != nil {
			return nil, fmt.Errorf("global-compare: %w", err)
		}
		var grmOK, rmusOK, usBound, rmtsOK int
		for _, o := range perSet {
			if o[0] {
				grmOK++
			}
			if o[1] {
				rmusOK++
			}
			if o[2] {
				usBound++
			}
			if o[3] {
				rmtsOK++
			}
		}
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%.2f", um),
			fmt.Sprintf("%.3f", float64(grmOK)/float64(n)),
			fmt.Sprintf("%.3f", float64(rmusOK)/float64(n)),
			fmt.Sprintf("%.3f", float64(usBound)/float64(n)),
			fmt.Sprintf("%.3f", float64(rmtsOK)/float64(n)),
		})
		mt.Tick("U_M=%.2f", um)
	}
	return []Table{t1, t2}, nil
}

func missLabel(ok bool) string {
	if ok {
		return "schedulable"
	}
	return "MISS"
}
