package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/rta"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/xrand"
)

// UniprocessorBreakdown (E18) reproduces the one evaluation number the
// paper quotes with a citation (§I): "by exact schedulability analysis,
// the average breakdown utilization of RMS is around 88% [24]" (Lehoczky,
// Sha & Ding's classic experiment). Random uniprocessor task sets with
// log-uniform periods are scaled to their breakdown point under exact RTA;
// the mean across sets should land near 0.88 for moderate task counts —
// a digit-level check that this repository's RTA machinery matches the
// literature it builds on.
func UniprocessorBreakdown(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE18))
	sets := cfg.setsPerPoint()
	ns := []int{5, 10, 20, 50}
	if cfg.Quick {
		ns = []int{5, 10}
		if sets > 40 {
			sets = 40
		}
	}
	t := Table{
		ID:     "uni-breakdown",
		Title:  fmt.Sprintf("uniprocessor RMS breakdown utilization, exact RTA, periods uniform [1,100]·100, %d sets per n", sets),
		Header: []string{"n tasks", "mean breakdown U", "min", "p95", "max"},
		Notes: []string{
			"paper §I (citing [24]): \"the average breakdown utilization of RMS is around 88%\"",
		},
	}
	mt := cfg.meter("uni-breakdown", len(ns))
	for _, n := range ns {
		n := n
		samples := make([]float64, sets)
		if err := cfg.parEach(r.Int63(), sets, func(s int, r *rand.Rand, ws *Workspace) {
			samples[s] = uniBreakdown(r, ws, n)
		}); err != nil {
			return nil, fmt.Errorf("uni-breakdown: %w", err)
		}
		var lo float64 = 2
		for _, v := range samples {
			if v < lo {
				lo = v
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.4f", stats.Mean(samples)),
			fmt.Sprintf("%.4f", lo),
			fmt.Sprintf("%.4f", stats.Quantile(samples, 0.95)),
			fmt.Sprintf("%.4f", stats.Max(samples)),
		})
		mt.Tick("n=%d", n)
	}
	return []Table{t}, nil
}

// uniBreakdown draws one task-set shape and bisects its breakdown
// utilization under exact RTA. Periods follow the classic setup
// (log-uniform over two orders of magnitude), scaled ×100 so integer
// quantization stays below the bisection precision; base utilizations are
// uniform shares normalized to 1 and scaled down.
//
// The bisection's probes are rescalings of one fixed shape (periods and
// deadlines never change, SortRM is stable on T so the order is identical at
// every scale, and C is non-decreasing in the scale), which is exactly the
// access pattern rta.BatchState.EvaluateList warm-carries across: each probe
// above the last accepted scale warm-starts every fixed point from that
// scale's converged responses. Disabled by Config.NoCrossScale (and inert
// with a nil workspace), with byte-identical results either way.
func uniBreakdown(r *rand.Rand, ws *Workspace, n int) float64 {
	type shape struct {
		t task.Time
		u float64
	}
	shapes := make([]shape, n)
	sum := 0.0
	for i := range shapes {
		// Period uniform over [1,100]·100, matching the classic experiment
		// (the ×100 scale keeps integer quantization below the bisection
		// precision). Uniform — not log-uniform — period draws concentrate
		// ratios below 2, the regime where RM loses the most to EDF, which
		// is what produces the cited ≈88% average.
		p := task.Time(math.Round(100 * (1 + 99*r.Float64())))
		u := r.Float64()
		shapes[i] = shape{t: p, u: u}
		sum += u
	}
	for i := range shapes {
		shapes[i].u /= sum // total utilization 1 at scale 1
	}
	crossScale := ws != nil && !ws.noCrossScale
	var ts task.Set
	var list []task.Subtask
	if ws != nil && !ws.noReuse {
		ts = growSet(&ws.uniTS, n)
		list = growSubtasks(&ws.uniList, n)
	} else {
		ts = make(task.Set, n)
		list = make([]task.Subtask, n)
	}
	firstProbe := true
	build := func(scale float64) ([]task.Subtask, bool) {
		for i, sh := range shapes {
			c := task.Time(scale * sh.u * float64(sh.t))
			if c < 1 {
				c = 1
			}
			if c > sh.t {
				c = sh.t
			}
			ts[i] = task.Task{Name: "u", C: c, T: sh.t}
		}
		ts.SortRM()
		for i, tk := range ts {
			list[i] = task.Whole(i, tk)
		}
		u := ts.TotalUtilization()
		if u > 1.000001 {
			return list, false
		}
		if !crossScale {
			return list, rta.ProcessorSchedulable(list)
		}
		carry := !firstProbe
		firstProbe = false
		if carry && obs.On() {
			cCrossScaleCarries.Inc()
		}
		return list, ws.carry.EvaluateList(list, carry)
	}
	lo, hi := 0.0, 1.0
	best := 0.0
	for iter := 0; iter < 14; iter++ {
		mid := (lo + hi) / 2
		list, ok := build(mid)
		if ok {
			lo = mid
			u := 0.0
			for _, s := range list {
				u += s.Utilization()
			}
			if u > best {
				best = u
			}
		} else {
			hi = mid
		}
	}
	return best
}

// growSet and growSubtasks return (*buf)[:n], reallocating only when the
// capacity is short; callers overwrite every element.
func growSet(buf *task.Set, n int) task.Set {
	if cap(*buf) < n {
		*buf = make(task.Set, n+n/2+4)
	}
	return (*buf)[:n]
}

func growSubtasks(buf *[]task.Subtask, n int) []task.Subtask {
	if cap(*buf) < n {
		*buf = make([]task.Subtask, n+n/2+4)
	}
	return (*buf)[:n]
}
