package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/xrand"
)

// FPvsEDF (E15) compares the paper's fixed-priority splitting algorithm
// with partitioned EDF, the strongest strict partitioner (per-processor
// EDF packs bins to exactly 100% for implicit deadlines). Expected shape:
// P-EDF ≥ strict P-RM everywhere (strictly better uniprocessor test), and
// RM-TS ≥ P-EDF through the 0.90–0.95 range (splitting defeats bin-packing
// fragmentation). In the extreme tail (U_M ≳ 0.97) partitioned EDF
// overtakes RM-TS: EDF's uniprocessor test is exact at 100% utilization
// while RM's exact test saturates near its ~96% average breakdown on
// random (non-harmonic) processors — splitting cannot recover capacity the
// fixed-priority scheduler itself cannot certify.
func FPvsEDF(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE15))
	m := 8
	points := seq(0.70, 1.00, 0.025)
	if cfg.Quick {
		m = 4
		points = seq(0.75, 0.95, 0.10)
	}
	algos := []algoSpec{
		{"P-RM-FF", partition.FirstFitRTA{}},
		{"P-EDF-FF", partition.EDFFirstFit{}},
		{"RM-TS", partition.NewRMTS(nil)},
		{"EDF-TS", partition.EDFTS{}},
	}
	ratios := make([][]float64, len(points))
	mt := cfg.meter("fp-vs-edf", len(points))
	for i, um := range points {
		target := um * float64(m)
		row, err := cfg.acceptance(r.Int63(), cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.7}, sc)
		}, algos)
		if err != nil {
			return nil, fmt.Errorf("fp-vs-edf: %w", err)
		}
		ratios[i] = row
		mt.Tick("U_M=%.3f", um)
	}
	return []Table{sweepTable("fp-vs-edf",
		fmt.Sprintf("M=%d, U_i∈[0.05,0.7], %d sets/point — splitting vs the best strict partitioner", m, cfg.setsPerPoint()),
		points, algos, ratios,
		"expected: P-EDF ≥ P-RM everywhere; RM-TS ≥ P-EDF through ≈0.95; the EDF-based approaches win the extreme tail (exact 100% uniprocessor test), with EDF-TS (splitting) dominating strict P-EDF there",
	)}, nil
}
