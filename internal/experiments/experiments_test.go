package experiments

import (
	"bytes"
	"math/rand"
	"strconv"
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Seed: 1, SetsPerPoint: 10, Quick: true}
}

func TestRegistryComplete(t *testing.T) {
	keys := map[string]bool{}
	for _, e := range Registry() {
		if e.Key == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete registry entry: %+v", e)
		}
		if keys[e.Key] {
			t.Errorf("duplicate key %q", e.Key)
		}
		keys[e.Key] = true
	}
	// The DESIGN.md experiment index names these keys.
	for _, want := range []string{
		"bounds-table", "acceptance-general", "acceptance-light",
		"acceptance-harmonic", "acceptance-kchains", "breakdown",
		"procs-sweep", "heavy-sweep", "split-ablation", "simulate-verify",
		"utilization-tail",
	} {
		if !keys[want] {
			t.Errorf("missing experiment %q", want)
		}
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("bounds-table"); !ok {
		t.Error("bounds-table not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("bogus key found")
	}
}

func TestEveryExperimentRunsQuick(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.Key, func(t *testing.T) {
			tables, err := e.Run(quickCfg())
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables produced")
			}
			for _, tb := range tables {
				if len(tb.Rows) == 0 {
					t.Errorf("table %s empty", tb.ID)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Header) {
						t.Errorf("table %s: row width %d ≠ header width %d", tb.ID, len(row), len(tb.Header))
					}
				}
				var buf bytes.Buffer
				tb.Render(&buf)
				if !strings.Contains(buf.String(), tb.ID) {
					t.Errorf("render of %s lacks its ID", tb.ID)
				}
				buf.Reset()
				tb.CSV(&buf)
				lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
				if len(lines) != len(tb.Rows)+1 {
					t.Errorf("CSV of %s has %d lines, want %d", tb.ID, len(lines), len(tb.Rows)+1)
				}
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	for _, key := range []string{"acceptance-general", "breakdown"} {
		e, ok := Find(key)
		if !ok {
			t.Fatalf("%s missing", key)
		}
		a := render(mustRun(t, e, quickCfg()))
		b := render(mustRun(t, e, quickCfg()))
		if a != b {
			t.Errorf("%s not deterministic across runs with the same seed", key)
		}
	}
}

func TestParallelDeterminism(t *testing.T) {
	// The same seed must produce identical tables at any worker count.
	for _, key := range []string{"acceptance-general", "fp-vs-edf"} {
		e, _ := Find(key)
		seq := render(mustRun(t, e, Config{Seed: 7, SetsPerPoint: 20, Quick: true, Workers: 1}))
		par := render(mustRun(t, e, Config{Seed: 7, SetsPerPoint: 20, Quick: true, Workers: 8}))
		if seq != par {
			t.Errorf("%s: workers=1 and workers=8 disagree", key)
		}
	}
}

func TestRunValidatesConfig(t *testing.T) {
	e, ok := Find("bounds-table")
	if !ok {
		t.Fatal("bounds-table missing")
	}
	if _, err := Run(e, Config{Seed: 1, SetsPerPoint: 10, Workers: -1}); err == nil || !strings.Contains(err.Error(), "Workers") {
		t.Errorf("Run with Workers=-1: want Workers error, got %v", err)
	}
	if _, err := Run(e, Config{Seed: 1}); err == nil || !strings.Contains(err.Error(), "SetsPerPoint") {
		t.Errorf("Run with SetsPerPoint=0: want SetsPerPoint error, got %v", err)
	}
	if _, _, err := RunWithMetrics(e, Config{Seed: 1, SetsPerPoint: -5}); err == nil || !strings.Contains(err.Error(), "SetsPerPoint") {
		t.Errorf("RunWithMetrics with SetsPerPoint=-5: want SetsPerPoint error, got %v", err)
	}
	if _, err := Run(e, Config{Seed: 1, SetsPerPoint: 10, Quick: true}); err != nil {
		t.Errorf("Run with valid config: %v", err)
	}
}

func TestParEachCoversAllIndices(t *testing.T) {
	cfg := Config{Workers: 4}
	n := 100
	seen := make([]int32, n)
	if err := cfg.parEach(42, n, func(i int, r *rand.Rand, _ *Workspace) {
		seen[i]++
		_ = r.Int63()
	}); err != nil {
		t.Fatalf("parEach: %v", err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestParEachSeedsAreStable(t *testing.T) {
	cfg := Config{Workers: 3}
	n := 16
	a := make([]int64, n)
	b := make([]int64, n)
	if err := cfg.parEach(9, n, func(i int, r *rand.Rand, _ *Workspace) { a[i] = r.Int63() }); err != nil {
		t.Fatalf("parEach: %v", err)
	}
	cfg.Workers = 1
	if err := cfg.parEach(9, n, func(i int, r *rand.Rand, _ *Workspace) { b[i] = r.Int63() }); err != nil {
		t.Fatalf("parEach: %v", err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("index %d: draws differ across worker counts", i)
		}
	}
}

func mustRun(t *testing.T, e Experiment, cfg Config) []Table {
	t.Helper()
	tables, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", e.Key, err)
	}
	return tables
}

func render(tables []Table) string {
	var buf bytes.Buffer
	for _, tb := range tables {
		tb.Render(&buf)
	}
	return buf.String()
}

func TestSimulateVerifyReportsZeroMisses(t *testing.T) {
	tables, err := SimulateVerify(Config{Seed: 5, SetsPerPoint: 15, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	missCol := -1
	for i, h := range tb.Header {
		if h == "deadline misses" {
			missCol = i
		}
	}
	if missCol < 0 {
		t.Fatal("no miss column")
	}
	simulatedAny := false
	for _, row := range tb.Rows {
		if row[missCol] != "0" {
			t.Errorf("%s reported %s misses", row[0], row[missCol])
		}
		if n, _ := strconv.Atoi(row[1]); n > 0 {
			simulatedAny = true
		}
	}
	if !simulatedAny {
		t.Error("no partitions were simulated; experiment vacuous")
	}
}

func TestAcceptanceShapeRMTSDominatesSPA2(t *testing.T) {
	// Core claim of the paper in miniature: over the sweep, RM-TS's summed
	// acceptance strictly exceeds SPA2's.
	tables, err := AcceptanceGeneral(Config{Seed: 2, SetsPerPoint: 25, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	col := func(name string) int {
		for i, h := range tb.Header {
			if h == name {
				return i
			}
		}
		t.Fatalf("column %s missing", name)
		return -1
	}
	rmts, spa2 := col("RM-TS"), col("SPA2")
	var sumA, sumB float64
	for _, row := range tb.Rows {
		a, _ := strconv.ParseFloat(row[rmts], 64)
		b, _ := strconv.ParseFloat(row[spa2], 64)
		sumA += a
		sumB += b
		if a+1e-9 < b {
			t.Errorf("U_M=%s: RM-TS %.3f below SPA2 %.3f", row[0], a, b)
		}
	}
	if sumA <= sumB {
		t.Errorf("RM-TS total %.3f not above SPA2 total %.3f", sumA, sumB)
	}
}

func TestHarmonicShapeNearFullUtilization(t *testing.T) {
	// RM-TS/light must accept harmonic light sets essentially everywhere
	// below U_M = 0.95.
	tables, err := AcceptanceHarmonic(Config{Seed: 3, SetsPerPoint: 20, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	col := -1
	for i, h := range tb.Header {
		if h == "RM-TS/light" {
			col = i
		}
	}
	if col < 0 {
		t.Fatal("RM-TS/light column missing")
	}
	for _, row := range tb.Rows {
		um, _ := strconv.ParseFloat(row[0], 64)
		v, _ := strconv.ParseFloat(row[col], 64)
		if um <= 0.95 && v < 0.95 {
			t.Errorf("harmonic acceptance at U_M=%.3f is %.3f; expected ≈ 1", um, v)
		}
	}
}

func TestSplitAblationAgrees(t *testing.T) {
	tables, err := SplitAblation(Config{Seed: 4, SetsPerPoint: 10, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	agreeCell := tb.Rows[0][len(tb.Rows[0])-1]
	parts := strings.Split(agreeCell, "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("MaxSplit implementations disagree: %s", agreeCell)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}
	if c.setsPerPoint() != 200 {
		t.Errorf("default sets per point = %d", c.setsPerPoint())
	}
	var buf bytes.Buffer
	c.Progress = &buf
	c.progressf("hello %d", 7)
	if !strings.Contains(buf.String(), "hello 7") {
		t.Error("progressf did not write")
	}
}

func TestAnalysisPessimismSound(t *testing.T) {
	tables, err := AnalysisPessimism(Config{Seed: 6, SetsPerPoint: 20, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	maxCol := -1
	for i, h := range tb.Header {
		if h == "max" {
			maxCol = i
		}
	}
	if maxCol < 0 {
		t.Fatal("no max column")
	}
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[maxCol], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[maxCol])
		}
		if v > 1.0+1e-9 {
			t.Errorf("class %s: observed/bound ratio %g exceeds 1 — analysis unsound", row[0], v)
		}
	}
}

func TestAdmissionAblationStaircase(t *testing.T) {
	tables, err := AdmissionAblation(Config{Seed: 7, SetsPerPoint: 25, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		var prev float64 = -1
		for _, cell := range row[1:] {
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				t.Fatalf("bad cell %q", cell)
			}
			if v+0.051 < prev { // small sampling tolerance
				t.Errorf("U_M=%s: staircase violated: %v", row[0], row)
				break
			}
			prev = v
		}
	}
}

func TestUniBreakdownMatchesCited88Percent(t *testing.T) {
	// The one digit the paper quotes with a citation: ≈88% average
	// breakdown utilization of uniprocessor RMS. Our reproduction must
	// bracket it at the classic experiment's scale (small n).
	tables, err := UniprocessorBreakdown(Config{Seed: 9, SetsPerPoint: 60, Quick: true})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	tb := tables[0]
	for _, row := range tb.Rows {
		n, _ := strconv.Atoi(row[0])
		mean, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatalf("bad cell %q", row[1])
		}
		if n == 10 && (mean < 0.83 || mean > 0.91) {
			t.Errorf("n=10 mean breakdown %.4f far from the cited ≈0.88", mean)
		}
		if mean < 0.69 {
			t.Errorf("n=%d mean breakdown %.4f below the L&L bound — impossible for exact RTA", n, mean)
		}
	}
}
