package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/partition"
)

func TestParseRecipe(t *testing.T) {
	want := Recipe{Experiment: "acceptance-general", Point: 3, Sample: 7,
		BaseSeed: 1000, SampleSeed: 1000 + 7*sampleSeedStride}
	for _, in := range []string{
		want.String(),
		"repro: experiment=acceptance-general point=3 sample=7 base-seed=1000",
		fmt.Sprintf("  repro:  experiment=acceptance-general sample-seed=%d point=3 sample=7", want.SampleSeed),
	} {
		got, err := ParseRecipe(in)
		if err != nil {
			t.Errorf("ParseRecipe(%q): %v", in, err)
			continue
		}
		if got.Experiment != want.Experiment || got.Point != want.Point || got.SampleSeed != want.SampleSeed {
			t.Errorf("ParseRecipe(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, in := range []string{
		"",
		"point=3 sample-seed=5",            // no experiment
		"experiment=x sample-seed=5",       // no point
		"experiment=x point=1 base-seed=5", // base without sample
		"experiment=x point=1 sample=2",    // sample without seeds
		"experiment=x point=1 bogus",       // not key=value
		"experiment=x point=1 mystery-field=3 sample-seed=5",        // unknown field
		"experiment=x point=one sample-seed=5",                      // bad int
		"experiment=x point=1 sample=2 base-seed=10 sample-seed=11", // contradiction
		"experiment=x point=1 sample=-2 sample-seed=5",              // negative sample
	} {
		if _, err := ParseRecipe(in); err == nil {
			t.Errorf("ParseRecipe(%q) accepted", in)
		}
	}
}

func TestRecipeStringRoundTrip(t *testing.T) {
	rc, err := RecipeFor("acceptance-harmonic", 42, true, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseRecipe(rc.String())
	if err != nil {
		t.Fatalf("reparsing %q: %v", rc.String(), err)
	}
	if back != rc {
		t.Fatalf("round trip: %+v != %+v", back, rc)
	}
}

func TestReplayUnsupported(t *testing.T) {
	for _, key := range []string{"acceptance-kchains", "breakdown", "nope"} {
		if _, _, err := ReplaySample(key, true, 0, 1); err == nil {
			t.Errorf("ReplaySample(%q) accepted", key)
		}
		if _, err := RecipeFor(key, 7, true, 0, 0); err == nil {
			t.Errorf("RecipeFor(%q) accepted", key)
		}
	}
	if _, _, err := ReplaySample("acceptance-general", true, 99, 1); err == nil {
		t.Error("out-of-range point accepted")
	}
	if _, err := RecipeFor("acceptance-general", 7, true, 0, -1); err == nil {
		t.Error("negative sample accepted")
	}
}

// TestReplayDeterministic pins that every replayable experiment regenerates
// an identical set for identical replay coordinates.
func TestReplayDeterministic(t *testing.T) {
	for _, key := range ReplayableExperiments() {
		rc, err := RecipeFor(key, 11, true, 0, 2)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		a, ma, err := ReplaySample(key, true, rc.Point, rc.SampleSeed)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		b, mb, err := ReplaySample(key, true, rc.Point, rc.SampleSeed)
		if err != nil {
			t.Fatalf("%s: %v", key, err)
		}
		if ma != mb || !reflect.DeepEqual(a, b) {
			t.Errorf("%s: replay not deterministic", key)
		}
		if len(a) == 0 || ma <= 0 {
			t.Errorf("%s: degenerate replay (n=%d m=%d)", key, len(a), ma)
		}
	}
}

// TestReplayReproducesSweepCauses is the end-to-end contract behind
// cmd/explain: replaying every sample of a sweep point via RecipeFor +
// ReplaySample and re-partitioning must reproduce the exact per-point
// rejection-cause breakdown the sweep emitted on its point-done events.
// This crosses every seam at once — the seed derivation (XOR, point bases,
// sample stride), the shared generator parameters, scratch-independence of
// generation, and the tally's aggregation order.
func TestReplayReproducesSweepCauses(t *testing.T) {
	const seed, nSets = 7, 16
	stream := recordE2Events(t, 4, seed)

	var checked int
	for _, line := range bytes.Split(bytes.TrimRight(stream, "\n"), []byte("\n")) {
		var ev obs.RunEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind != obs.EvPointDone {
			continue
		}
		point := ev.Point - 1
		algos := defaultAlgos()
		causes := make([]partition.Cause, nSets*len(algos))
		for s := 0; s < nSets; s++ {
			rc, err := RecipeFor("acceptance-general", seed, true, point, s)
			if err != nil {
				t.Fatal(err)
			}
			ts, m, err := ReplaySample("acceptance-general", true, rc.Point, rc.SampleSeed)
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range algos {
				causes[s*len(algos)+i] = a.alg.Partition(ts, m).RejectionCause()
			}
		}
		var tally causeTally
		tally.add(algos, causes, nSets)
		if !reflect.DeepEqual(tally.rejections, ev.Rejections) {
			t.Errorf("point %d: replayed breakdown %+v != emitted %+v", point, tally.rejections, ev.Rejections)
		}
		if len(ev.Rejections) > 0 {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no point carried a rejection breakdown — sweep too easy to exercise the tally")
	}
}
