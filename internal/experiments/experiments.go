// Package experiments regenerates the paper's evaluation artifacts. Each
// experiment is a named, seeded, deterministic procedure producing one or
// more Tables; the registry maps experiment keys (see DESIGN.md §4) to
// implementations. cmd/experiments renders them to text or CSV, and
// bench_test.go exposes one testing.B benchmark per key.
//
// The supplied source text of the paper truncates before its evaluation
// section, so the experiments here reconstruct it from the claims of
// §§I–V and the methodology of the companion paper [16]: acceptance-ratio
// curves over normalized utilization for randomly generated task sets,
// split by task-set class (general / light / harmonic / K chains), plus
// breakdown-utilization, overhead and verification studies. EXPERIMENTS.md
// records the expected qualitative shape next to the measured output.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
	"unicode/utf8"

	"repro/internal/bounds"
	"repro/internal/faultinject"
	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/stats"
	"repro/internal/task"
)

// Config controls experiment scale and reproducibility.
type Config struct {
	// Seed drives every random draw; the same seed reproduces every table
	// bit-for-bit, regardless of Workers.
	Seed int64
	// SetsPerPoint is the number of random task sets per sweep point.
	// Zero means 200.
	SetsPerPoint int
	// Quick shrinks sweeps (fewer points, smaller M) for benchmarks and
	// smoke tests.
	Quick bool
	// Workers caps the goroutines evaluating task sets concurrently. Zero
	// means GOMAXPROCS. Determinism is preserved at any worker count: each
	// set's generator seed is derived from its index before fan-out.
	Workers int
	// Progress, when non-nil, receives one-line progress notes.
	Progress io.Writer
	// ProgressETA decorates sweep progress lines with point counts, elapsed
	// time and an ETA estimate. Progress output is wall-clock-dependent and
	// only ever goes to the Progress writer, never into tables, so the
	// determinism contract is unaffected.
	ProgressETA bool
	// NoReuse disables the per-worker scratch workspaces: every task set is
	// generated into fresh memory, every partitioner call allocates its own
	// working storage, and each index gets a freshly constructed RNG — the
	// cold path the reuse-off golden test compares against. Tables are
	// byte-identical either way; only the allocation profile changes.
	NoReuse bool
	// NoCrossScale disables cross-scale result reuse in the breakdown
	// bisections: the exact-C-vector verdict memo in breakdownOf and the
	// warm-start response carry in uniBreakdown both fall back to evaluating
	// every probe from scratch. Tables are byte-identical either way (the
	// cross-scale-off golden test pins it); only the work per probe changes.
	NoCrossScale bool
	// Checkpoint, when non-nil, persists each completed sweep point and
	// restores already-completed points on resume. Restored rows are
	// byte-identical to recomputed ones, and the per-point RNG bases are
	// drawn up front, so a resumed run renders exactly the table an
	// uninterrupted run would have.
	Checkpoint *Checkpoint
	// Paranoid re-validates every successful partitioning result against
	// the full invariant set (partition.ValidateFor) before it is counted.
	// A violation panics in the worker and surfaces as a seed-reproducible
	// SampleError through the panic isolation layer.
	Paranoid bool
	// Events, when non-nil, receives the structured run-event stream
	// (obs.RunEvent JSONL): experiment and sweep-point lifecycle, per-point
	// counter deltas, checkpoint writes, and sample errors with their repro
	// seeds. Events are emitted by the sweep-driving goroutine only — never
	// from inside the per-sample fan-out — and apart from the wall-clock ms
	// stamp the stream is deterministic for a fixed seed at any worker
	// count. A nil recorder costs nothing.
	Events *obs.Recorder

	// ctx carries the cancellation signal (set via WithContext); nil means
	// context.Background(). Cancellation is observed between samples and
	// between sweep points: completed rows are still returned alongside the
	// context error.
	ctx context.Context
	// expKey is the registry key of the running experiment, stamped by
	// Run/RunWithMetrics so SampleErrors and checkpoint keys can name it.
	expKey string
	// point1 is the 1-based sweep point index the current parEach fan-out
	// belongs to (0 = not inside a point sweep); sweepRows maintains it.
	point1 int
	// causes, when non-nil, collects the current point's rejection-cause
	// breakdown. sweepRows installs a fresh tally per point only when Events
	// is configured, so cause attribution is structurally absent — not merely
	// skipped — on the benchmarked hot path; acceptance() records into it.
	causes *causeTally
}

// causeTally accumulates one sweep point's rejection-cause breakdown, emitted
// on the point-done event as obs.RejectCount cells.
type causeTally struct {
	rejections []obs.RejectCount
}

// add folds one acceptance fan-out's per-sample causes (index-addressed,
// sample-major like the verdict array) into the tally. Aggregation iterates
// algorithms in spec order and causes in taxonomy declaration order, so the
// emitted breakdown is deterministic at any worker count.
func (t *causeTally) add(algos []algoSpec, causes []partition.Cause, nSets int) {
	counts := make(map[partition.Cause]int64, len(causes))
	for i, a := range algos {
		for k := range counts {
			delete(counts, k)
		}
		for s := 0; s < nSets; s++ {
			if cz := causes[s*len(algos)+i]; cz != partition.CauseNone {
				counts[cz]++
			}
		}
		for _, cz := range partition.RejectionCauses() {
			if n := counts[cz]; n > 0 {
				t.rejections = append(t.rejections, obs.RejectCount{Algo: a.name, Cause: cz.String(), N: n})
			}
		}
	}
}

// WithContext returns a copy of c whose experiment run observes ctx:
// cancellation or deadline expiry stops the run between samples, returning
// the rows completed so far together with the context's error.
func (c Config) WithContext(ctx context.Context) Config {
	c.ctx = ctx
	return c
}

// cSamplePanics counts recovered per-sample panics (injected or real);
// like all obs counters it is never read back by the analysis itself.
var cSamplePanics = obs.NewCounter("experiments.sample_panics")

// Cross-scale reuse instrumentation: memo_hits counts breakdownOf probes
// answered from the exact-C-vector memo without running the partitioner,
// carries counts uniBreakdown probes evaluated with a warm response carry.
var (
	cCrossScaleMemoHits = obs.NewCounter("experiments.crossscale.memo_hits")
	cCrossScaleCarries  = obs.NewCounter("experiments.crossscale.carries")
)

func (c Config) context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// Validate reports configuration errors an experiment run cannot recover
// from. The zero value of SetsPerPoint is NOT valid here: entry points that
// accept a Config directly (Run, RunWithMetrics) require an explicit
// positive count, while the setsPerPoint default remains for internal
// callers constructing sweeps.
func (c Config) Validate() error {
	if c.Workers < 0 {
		return fmt.Errorf("experiments: Workers must be non-negative (got %d); zero means GOMAXPROCS", c.Workers)
	}
	if c.SetsPerPoint <= 0 {
		return fmt.Errorf("experiments: SetsPerPoint must be positive (got %d)", c.SetsPerPoint)
	}
	return nil
}

func (c Config) setsPerPoint() int {
	if c.SetsPerPoint <= 0 {
		return 200
	}
	return c.SetsPerPoint
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parEach evaluates fn for every index in [0, n) using the configured
// worker count. Each index receives a *rand.Rand seeded from base and the
// index, so results are independent of scheduling order; fn must only write
// to index-addressed storage (no shared mutable state). Each worker holds
// one pooled Workspace for its whole lifetime and reseeds one persistent
// RNG per index ((*rand.Rand).Seed(s) restores exactly the state of
// rand.New(rand.NewSource(s))), so the steady state allocates nothing per
// index; with NoReuse the RNG is constructed fresh per index and the
// workspace degrades to the cold path.
//
// Robustness: each sample runs under recover — a panic in fn (a bug, a
// paranoid-mode invariant violation, or an injected fault) is converted to
// a *SampleError carrying the sample's derived seed, and sibling samples
// and workers keep running. Cancellation of the configured context is
// observed between indices; workers drain and the already-computed
// index-addressed results remain valid. The returned error is the first
// SampleError in index order, the context's error, or nil.
func (c Config) parEach(base int64, n int, fn func(i int, r *rand.Rand, ws *Workspace)) error {
	ctx := c.context()
	workers := c.workers()
	if workers > n {
		workers = n
	}
	panics := make([]error, n)
	run := func(i int, ws *Workspace) {
		defer func() {
			if v := recover(); v != nil {
				cSamplePanics.Inc()
				panics[i] = &SampleError{
					Experiment: c.expKey,
					Point:      c.point1 - 1,
					Index:      i,
					BaseSeed:   base,
					Seed:       base + int64(i)*sampleSeedStride,
					PanicValue: fmt.Sprint(v),
					Stack:      string(debug.Stack()),
				}
			}
		}()
		faultinject.MaybePanic()
		seed := base + int64(i)*sampleSeedStride
		if c.NoReuse {
			fn(i, rand.New(rand.NewSource(seed)), ws)
			return
		}
		ws.rng.Seed(seed)
		fn(i, ws.rng, ws)
	}
	if workers <= 1 {
		ws := getWorkspace(c)
		defer putWorkspace(ws)
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			run(i, ws)
		}
		return firstError(panics)
	}
	var wg sync.WaitGroup
	next := int64(0)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := getWorkspace(c)
			defer putWorkspace(ws)
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				run(i, ws)
			}
		}()
	}
	wg.Wait()
	if err := firstError(panics); err != nil {
		return err
	}
	return ctx.Err()
}

func (c Config) progressf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// meter returns a per-point progress meter for a sweep with total points.
// With a nil Progress writer the meter is inert.
func (c Config) meter(label string, total int) *obs.Meter {
	return obs.NewMeter(c.Progress, label, total, c.ProgressETA)
}

// Table is a rendered experiment artifact.
type Table struct {
	// ID is the experiment key plus an optional suffix for multi-table
	// experiments.
	ID string
	// Title is a human-readable caption.
	Title string
	// Header names the columns.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes are free-form footnotes (expected shape, caveats).
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	// One builder reused across rows; every cell (including the last) is
	// left-justified to its column width, exactly as %-*s padded it.
	var sb strings.Builder
	line := func(cells []string) {
		sb.Reset()
		sb.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				// fmt's %-*s measures width in runes, not bytes; the Θ-bearing
				// headers depend on that, so the hand padding must too.
				for p := utf8.RuneCountInString(cell); p < widths[i]; p++ {
					sb.WriteByte(' ')
				}
			}
		}
		sb.WriteByte('\n')
		io.WriteString(w, sb.String())
	}
	line(t.Header)
	total := 2
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintln(w, "  "+strings.Repeat("-", total-2))
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// CSV writes the table as comma-separated values (quotes are not needed for
// the cell vocabulary these tables use).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Experiment is a registry entry.
type Experiment struct {
	// Key is the stable identifier (DESIGN.md §4).
	Key string
	// Title is a one-line description.
	Title string
	// Run executes the experiment and returns its tables. A non-nil error
	// means the run could not produce its artifact (generator failure,
	// infeasible configuration); sweeps propagate it instead of panicking,
	// and cmd/experiments exits non-zero with the message.
	Run func(cfg Config) ([]Table, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Experiment {
	return []Experiment{
		{Key: "bounds-table", Title: "Parametric bound instantiations (§III/§V examples)", Run: BoundsTable},
		{Key: "acceptance-general", Title: "Acceptance ratio vs U_M, general task sets", Run: AcceptanceGeneral},
		{Key: "acceptance-light", Title: "Acceptance ratio vs U_M, light task sets", Run: AcceptanceLight},
		{Key: "acceptance-harmonic", Title: "Acceptance ratio vs U_M, harmonic task sets (Λ = 100%)", Run: AcceptanceHarmonic},
		{Key: "acceptance-kchains", Title: "K harmonic chains: bounds 82.8% (K=2) and 77.9% (K=3)", Run: AcceptanceKChains},
		{Key: "breakdown", Title: "Breakdown utilization per algorithm", Run: Breakdown},
		{Key: "procs-sweep", Title: "Acceptance vs processor count at fixed U_M", Run: ProcsSweep},
		{Key: "heavy-sweep", Title: "Acceptance vs heavy-task share (pre-assignment at work)", Run: HeavySweep},
		{Key: "split-ablation", Title: "MaxSplit: efficient testing-point vs binary search", Run: SplitAblation},
		{Key: "simulate-verify", Title: "Simulation oracle: zero misses across partitioned sets", Run: SimulateVerify},
		{Key: "utilization-tail", Title: "Schedulable sets beyond the L&L bound per algorithm", Run: UtilizationTail},
		{Key: "global-compare", Title: "Global fixed-priority (Dhall effect, RM-US) vs partitioned RM-TS", Run: GlobalCompare},
		{Key: "overhead-sensitivity", Title: "Dispatch/migration overhead sensitivity of RM-TS partitions", Run: OverheadSensitivity},
		{Key: "admission-ablation", Title: "Admission-test ablation: LL vs hyperbolic vs RTA vs RTA+splitting", Run: AdmissionAblation},
		{Key: "fp-vs-edf", Title: "Splitting FP (RM-TS) vs strict partitioned EDF", Run: FPvsEDF},
		{Key: "constrained-deadlines", Title: "Constrained deadlines (DM order) — acceptance vs tightness", Run: ConstrainedDeadlines},
		{Key: "analysis-pessimism", Title: "Observed response vs certified RTA bound (tightness of the analysis)", Run: AnalysisPessimism},
		{Key: "uni-breakdown", Title: "Classic uniprocessor RMS breakdown utilization (the cited ≈88%)", Run: UniprocessorBreakdown},
	}
}

// Find returns the experiment with the given key.
func Find(key string) (Experiment, bool) {
	for _, e := range Registry() {
		if e.Key == key {
			return e, true
		}
	}
	return Experiment{}, false
}

// SuggestKeys returns registry keys resembling the (unknown) key — exact
// prefixes and substring matches — for CLI "did you mean" diagnostics.
func SuggestKeys(key string) []string {
	var out []string
	lower := strings.ToLower(key)
	for _, e := range Registry() {
		if strings.Contains(e.Key, lower) || strings.Contains(lower, e.Key) ||
			strings.HasPrefix(e.Key, firstField(lower)) {
			out = append(out, e.Key)
		}
	}
	return out
}

func firstField(s string) string {
	if i := strings.IndexAny(s, "-_ "); i > 0 {
		return s[:i]
	}
	return s
}

// RunMetrics is the instrumentation record of one experiment run: the
// wall-clock duration plus the analysis-cost counters and histograms the
// run accumulated in the obs.Default registry (empty unless obs.SetEnabled
// was called). Counters are deterministic — identical totals for the same
// seed at any Workers count — while Seconds and Spans are wall-clock.
type RunMetrics struct {
	Key        string               `json:"key"`
	Seconds    float64              `json:"seconds"`
	Counters   []obs.CounterValue   `json:"counters"`
	Histograms []obs.HistogramValue `json:"histograms,omitempty"`
	Spans      []obs.SpanValue      `json:"spans,omitempty"`
}

// Run validates cfg and executes e. It is the checked entry point CLI-style
// callers should use; e.Run remains available for internal callers that
// construct configs programmatically.
func Run(e Experiment, cfg Config) ([]Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.expKey = e.Key
	return cfg.runTraced(e)
}

// RunWithMetrics runs e with the obs.Default registry rearmed, attaching
// the resulting counter snapshot and timing to the returned RunMetrics.
// Tables are produced exactly as by e.Run — instrumentation never alters
// experiment output, only observes it. Like Run, it validates cfg first.
func RunWithMetrics(e Experiment, cfg Config) ([]Table, RunMetrics, error) {
	if err := cfg.Validate(); err != nil {
		return nil, RunMetrics{}, err
	}
	cfg.expKey = e.Key
	obs.Reset()
	span := obs.StartSpan("experiment/" + e.Key)
	start := time.Now()
	tables, err := cfg.runTraced(e)
	span.End()
	snap := obs.Default.Snapshot()
	return tables, RunMetrics{
		Key:        e.Key,
		Seconds:    time.Since(start).Seconds(),
		Counters:   snap.Counters,
		Histograms: snap.Histograms,
		Spans:      snap.Spans,
	}, err
}

// runTraced brackets e.Run with experiment lifecycle events on the
// configured recorder; a SampleError additionally gets its own record
// carrying the repro seeds. With a nil recorder this is exactly e.Run.
func (c Config) runTraced(e Experiment) ([]Table, error) {
	c.Events.Emit(obs.RunEvent{Kind: obs.EvExperimentStart, Experiment: e.Key})
	tables, err := e.Run(c)
	end := obs.RunEvent{Kind: obs.EvExperimentEnd, Experiment: e.Key, Tables: len(tables)}
	if err != nil {
		end.Err = err.Error()
		var se *SampleError
		if errors.As(err, &se) {
			c.Events.Emit(obs.RunEvent{
				Kind:       obs.EvSampleError,
				Experiment: e.Key,
				Point:      se.Point + 1,
				Sample:     se.Index + 1,
				BaseSeed:   se.BaseSeed,
				SampleSeed: se.Seed,
				Panic:      se.PanicValue,
			})
		}
	}
	c.Events.Emit(end)
	return tables, err
}

// Render writes the metrics as comment-prefixed lines, safe to interleave
// with table or CSV output without breaking parsers.
func (m RunMetrics) Render(w io.Writer) {
	fmt.Fprintf(w, "# metrics %s (%.3fs wall)\n", m.Key, m.Seconds)
	for _, c := range m.Counters {
		fmt.Fprintf(w, "#   %-26s %d\n", c.Name, c.Value)
	}
	for _, h := range m.Histograms {
		fmt.Fprintf(w, "#   %-26s count=%d mean=%.2f max=%d\n", h.Name, h.Count, h.Mean(), h.Max)
	}
	for _, s := range m.Spans {
		fmt.Fprintf(w, "#   span %-21s %.3fs\n", s.Name, s.Seconds)
	}
}

// algoSpec couples an algorithm with the acceptance notion the comparison
// uses: a set counts as accepted when the partitioning succeeds AND the
// algorithm's theory guarantees schedulability (Result.Guaranteed). For the
// RTA-based algorithms the two coincide; for SPA1/SPA2 Guaranteed caps at
// the L&L bound, which is precisely the behaviour the paper criticizes.
type algoSpec struct {
	name string
	alg  partition.Algorithm
}

func defaultAlgos() []algoSpec {
	return []algoSpec{
		{"RM-TS", partition.NewRMTS(bounds.Max{Bounds: []bounds.PUB{
			bounds.LiuLayland{}, bounds.HarmonicChain{Minimal: true}, bounds.TBound{}, bounds.RBound{},
		}})},
		{"SPA2", partition.SPA2{}},
		{"P-RM-FF", partition.FirstFitRTA{}},
	}
}

func lightAlgos() []algoSpec {
	return []algoSpec{
		{"RM-TS/light", partition.RMTSLight{}},
		{"RM-TS", partition.NewRMTS(nil)},
		{"SPA1", partition.SPA1{}},
		{"SPA2", partition.SPA2{}},
	}
}

// acceptance runs one sweep point: nSets random sets from genSet (each set
// drawn from its own index-derived generator into the worker's scratch,
// evaluated across the configured workers), each offered to every
// algorithm; returns the acceptance ratio per algorithm. Verdicts land in
// one flat index-addressed array, so the per-sample loop itself is
// allocation-free.
func (c Config) acceptance(base int64, nSets, m int, genSet func(*rand.Rand, *gen.Scratch) (task.Set, error), algos []algoSpec) ([]float64, error) {
	results := make([]bool, nSets*len(algos))
	var causes []partition.Cause
	if c.causes != nil {
		causes = make([]partition.Cause, nSets*len(algos))
	}
	errs := make([]error, nSets)
	if err := c.parEach(base, nSets, func(s int, r *rand.Rand, ws *Workspace) {
		ts, err := genSet(r, ws.Gen())
		if err != nil {
			errs[s] = err
			return
		}
		row := results[s*len(algos) : (s+1)*len(algos)]
		for i, a := range algos {
			res := ws.Partition(a.alg, ts, m)
			row[i] = res.OK && res.Guaranteed
			if causes != nil {
				causes[s*len(algos)+i] = res.RejectionCause()
			}
		}
	}); err != nil {
		return nil, err
	}
	if err := firstError(errs); err != nil {
		return nil, err
	}
	if c.causes != nil {
		c.causes.add(algos, causes, nSets)
	}
	out := make([]float64, len(algos))
	for s := 0; s < nSets; s++ {
		for i := range algos {
			if results[s*len(algos)+i] {
				out[i]++
			}
		}
	}
	for i := range out {
		out[i] /= float64(nSets)
	}
	return out, nil
}

// sweepRows drives a point sweep robustly: it checks cancellation before
// every point, restores completed points from the configured checkpoint,
// computes the rest via compute (run under a Config whose point1 marks the
// point for SampleError attribution), and checkpoints each freshly
// completed row. On cancellation or a sample failure it returns the rows
// completed so far together with the error, so callers can still render a
// partial table.
//
// compute receives the per-point Config pc and must thread it into parEach
// (not the captured outer cfg) or point attribution and cancellation are
// lost. Checkpoint keys embed id and the point index; resume correctness
// additionally requires callers to draw all per-point RNG bases before the
// sweep, so the generator stream is identical whether a point is restored
// or recomputed.
func (c Config) sweepRows(id string, n int, compute func(pc Config, i int) ([]float64, error)) ([][]float64, error) {
	rows := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		if err := c.context().Err(); err != nil {
			return rows, err
		}
		key := id + "/" + strconv.Itoa(i)
		if row, ok := c.Checkpoint.lookup(key); ok {
			rows = append(rows, row)
			c.Events.Emit(obs.RunEvent{Kind: obs.EvPointRestored,
				Experiment: c.expKey, Label: id, Point: i + 1, Points: n})
			continue
		}
		pc := c
		pc.point1 = i + 1
		// Per-point counter attribution for the event stream: the registry
		// delta across the point's fan-out (RTA iterations, warm-starts,
		// splits, ...) is worker-invariant, so the recorded stream is
		// deterministic apart from wall-clock stamps. Snapshots happen only
		// here, between points, never inside the fan-out.
		var before obs.Snapshot
		if c.Events != nil {
			before = obs.Default.Snapshot()
			pc.causes = &causeTally{}
		}
		row, err := compute(pc, i)
		if err != nil {
			return rows, err
		}
		if c.Events != nil {
			c.Events.Emit(obs.RunEvent{Kind: obs.EvPointDone,
				Experiment: c.expKey, Label: id, Point: i + 1, Points: n,
				Counters:   obs.DiffCounters(before, obs.Default.Snapshot()),
				Rejections: pc.causes.rejections})
		}
		rows = append(rows, row)
		if c.Checkpoint.store(c, key, row) {
			c.Events.Emit(obs.RunEvent{Kind: obs.EvCheckpoint,
				Experiment: c.expKey, Label: id, Points: c.Checkpoint.Points()})
		}
	}
	return rows, nil
}

// pointBases pre-draws one parEach base seed per sweep point from r. Sweeps
// that checkpoint must draw every base up front: the draws advance r, and a
// resumed run skips computing restored points, so drawing lazily inside the
// sweep would shift the generator stream of every later point and break the
// byte-identical-resume contract.
func pointBases(r *rand.Rand, n int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = r.Int63()
	}
	return out
}

// sweepTable renders a U_M sweep as a table: one row per utilization point,
// one column per algorithm.
func sweepTable(id, title string, points []float64, algos []algoSpec, ratios [][]float64, notes ...string) Table {
	header := []string{"U_M"}
	for _, a := range algos {
		header = append(header, a.name)
	}
	t := Table{ID: id, Title: title, Header: header, Notes: notes}
	for i, p := range points {
		// strconv.FormatFloat is what fmt's %.3f verb bottoms out in; calling
		// it directly skips the format-string parse and interface boxing on
		// the one cell shape every sweep table renders thousands of times.
		row := make([]string, 0, 1+len(ratios[i]))
		row = append(row, strconv.FormatFloat(p, 'f', 3, 64))
		for _, v := range ratios[i] {
			row = append(row, strconv.FormatFloat(v, 'f', 3, 64))
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// seq returns the sweep points from, from+step, …, up to and including to
// (within 1e-9 tolerance). Points are generated as from + i·step with an
// integer count rather than by accumulation: repeated `v += step` builds up
// float error, and for ranges like seq(0.65, 0.95, 0.10) the accumulated
// last point lands above to+1e-9 and silently drops from the sweep.
func seq(from, to, step float64) []float64 {
	k := int((to-from)/step + 1e-9)
	out := make([]float64, 0, k+1)
	for i := 0; i <= k; i++ {
		out = append(out, from+float64(i)*step)
	}
	return out
}

func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// firstError returns the first non-nil entry of a per-index error slice
// (the race-free way for parEach workers to report failures: each worker
// writes only its own index, and the scan happens after the barrier).
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// meanAndRange formats mean (min–max) of a sample.
func meanAndRange(xs []float64) string {
	if len(xs) == 0 {
		return "-"
	}
	sort.Float64s(xs)
	return fmt.Sprintf("%.3f (%.3f–%.3f)", stats.Mean(xs), xs[0], xs[len(xs)-1])
}
