package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/task"
	"repro/internal/xrand"
)

// sampleSeedStride is the per-index seed offset of the parEach fan-out:
// sample i of a point with base seed b is generated from b + i·stride (the
// 32-bit golden-ratio constant keeps neighbouring streams uncorrelated).
// ReplaySample and SampleError.Repro both lean on this derivation.
const sampleSeedStride = 0x9E3779B9

// Recipe identifies one sweep sample — the parse of the recipe line printed
// by SampleError.Repro and accepted by cmd/explain. Point and Sample are
// 0-based, matching SampleError's fields (the event stream shifts both to
// 1-based; Repro lines do not).
type Recipe struct {
	Experiment string
	Point      int
	Sample     int
	BaseSeed   int64
	SampleSeed int64
}

// String renders the recipe in SampleError.Repro format.
func (rc Recipe) String() string {
	return fmt.Sprintf("repro: experiment=%s point=%d sample=%d base-seed=%d sample-seed=%d",
		rc.Experiment, rc.Point, rc.Sample, rc.BaseSeed, rc.SampleSeed)
}

// ParseRecipe parses a SampleError.Repro line. The leading "repro:" marker is
// optional, fields may come in any order, and the seed may be given either
// directly (sample-seed) or derivably (base-seed plus sample); when both
// forms are present they must agree.
func ParseRecipe(s string) (Recipe, error) {
	rc := Recipe{Point: -1, Sample: -1}
	s = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(s), "repro:"))
	var haveBase, haveSample, haveSeed bool
	for _, f := range strings.Fields(s) {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return Recipe{}, fmt.Errorf("recipe: %q is not key=value", f)
		}
		var err error
		switch k {
		case "experiment":
			rc.Experiment = v
		case "point":
			rc.Point, err = strconv.Atoi(v)
		case "sample":
			rc.Sample, err = strconv.Atoi(v)
			haveSample = err == nil
		case "base-seed":
			rc.BaseSeed, err = strconv.ParseInt(v, 10, 64)
			haveBase = err == nil
		case "sample-seed":
			rc.SampleSeed, err = strconv.ParseInt(v, 10, 64)
			haveSeed = err == nil
		default:
			return Recipe{}, fmt.Errorf("recipe: unknown field %q", k)
		}
		if err != nil {
			return Recipe{}, fmt.Errorf("recipe: bad %s: %w", k, err)
		}
	}
	if rc.Experiment == "" {
		return Recipe{}, fmt.Errorf("recipe: missing experiment")
	}
	if rc.Point < 0 {
		return Recipe{}, fmt.Errorf("recipe: missing or negative point")
	}
	if haveSample && rc.Sample < 0 {
		return Recipe{}, fmt.Errorf("recipe: negative sample %d", rc.Sample)
	}
	switch {
	case haveSeed && haveBase && haveSample:
		if want := rc.BaseSeed + int64(rc.Sample)*sampleSeedStride; rc.SampleSeed != want {
			return Recipe{}, fmt.Errorf("recipe: sample-seed %d contradicts base-seed+sample (want %d)", rc.SampleSeed, want)
		}
	case haveSeed:
	case haveBase && haveSample:
		rc.SampleSeed = rc.BaseSeed + int64(rc.Sample)*sampleSeedStride
	default:
		return Recipe{}, fmt.Errorf("recipe: need sample-seed, or base-seed plus sample")
	}
	return rc, nil
}

// replaySpec ties one replayable sweep's seed derivation to its per-point
// generator parameters (which live in the shared param helpers the sweep
// itself uses — see acceptance.go).
type replaySpec struct {
	// seedXor is XORed into the run seed before drawing the point bases.
	seedXor int64
	// points returns the sweep length.
	points func(quick bool) int
	// sample regenerates the task set and processor count of one sample of
	// 0-based point p from r. The point index is pre-validated.
	sample func(r *rand.Rand, quick bool, p int) (task.Set, int, error)
}

func replaySpecs() map[string]replaySpec {
	return map[string]replaySpec{
		"acceptance-general": {
			seedXor: 0xE2,
			points:  func(q bool) int { _, pts := generalParams(q); return len(pts) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m, pts := generalParams(q)
				ts, err := generalSet(r, nil, pts[p]*float64(m))
				return ts, m, err
			},
		},
		"acceptance-light": {
			seedXor: 0xE3,
			points:  func(q bool) int { _, pts := lightParams(q); return len(pts) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m, pts := lightParams(q)
				ts, err := lightSet(r, nil, pts[p]*float64(m))
				return ts, m, err
			},
		},
		"acceptance-harmonic": {
			seedXor: 0xE4,
			points:  func(q bool) int { _, pts := harmonicParams(q); return len(pts) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m, pts := harmonicParams(q)
				ts, err := harmonicSet(r, nil, pts[p]*float64(m))
				return ts, m, err
			},
		},
		"procs-sweep": {
			seedXor: 0xE7,
			points:  func(q bool) int { return len(procsParams(q)) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m := procsParams(q)[p]
				ts, err := procsSet(r, nil, procsSweepUM*float64(m))
				return ts, m, err
			},
		},
		"heavy-sweep": {
			seedXor: 0xE8,
			points:  func(q bool) int { _, _, shares := heavyParams(q); return len(shares) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m, um, shares := heavyParams(q)
				ts, err := heavySet(r, nil, um*float64(m), shares[p])
				return ts, m, err
			},
		},
		"utilization-tail": {
			seedXor: 0xE11,
			points:  func(q bool) int { _, ums := tailParams(q); return len(ums) },
			sample: func(r *rand.Rand, q bool, p int) (task.Set, int, error) {
				m, ums := tailParams(q)
				ts, err := tailSet(r, nil, ums[p]*float64(m))
				return ts, m, err
			},
		},
	}
}

// ReplayableExperiments lists the registry keys ReplaySample supports, in
// registry order. acceptance-kchains is deliberately absent: it runs two
// tables (K=2, 3) under one point counter, so a point index alone does not
// identify the generator parameters.
func ReplayableExperiments() []string {
	specs := replaySpecs()
	var out []string
	for _, e := range Registry() {
		if _, ok := specs[e.Key]; ok {
			out = append(out, e.Key)
		}
	}
	return out
}

// RecipeFor derives the replay recipe of sample (point, sample) of a
// replayable experiment under the given run seed and quick flag — the exact
// derivation the sweep itself uses (per-experiment seed XOR, point bases
// pre-drawn in order, golden-ratio sample stride). It lets tools name any
// sample, not just the crashed ones SampleError reports.
func RecipeFor(experiment string, runSeed int64, quick bool, point, sample int) (Recipe, error) {
	spec, ok := replaySpecs()[experiment]
	if !ok {
		return Recipe{}, fmt.Errorf("experiment %q is not replayable (replayable: %s)",
			experiment, strings.Join(ReplayableExperiments(), ", "))
	}
	n := spec.points(quick)
	if point < 0 || point >= n {
		return Recipe{}, fmt.Errorf("%s: point %d out of range [0,%d)", experiment, point, n)
	}
	if sample < 0 {
		return Recipe{}, fmt.Errorf("%s: negative sample %d", experiment, sample)
	}
	bases := pointBases(rand.New(xrand.New(runSeed^spec.seedXor)), n)
	return Recipe{
		Experiment: experiment,
		Point:      point,
		Sample:     sample,
		BaseSeed:   bases[point],
		SampleSeed: bases[point] + int64(sample)*sampleSeedStride,
	}, nil
}

// ReplaySample regenerates the task set of one sweep sample bit for bit from
// its replay seeds: the experiment key, the Quick flag the run used, the
// 0-based sweep point, and the sample's derived seed. It returns the set and
// the processor count the sweep offered it to. Generation uses a fresh RNG
// and fresh scratch; sweeps produce identical sets either way (the reuse-off
// golden test pins scratch-independence).
func ReplaySample(experiment string, quick bool, point int, sampleSeed int64) (task.Set, int, error) {
	spec, ok := replaySpecs()[experiment]
	if !ok {
		return nil, 0, fmt.Errorf("experiment %q is not replayable (replayable: %s)",
			experiment, strings.Join(ReplayableExperiments(), ", "))
	}
	if n := spec.points(quick); point < 0 || point >= n {
		return nil, 0, fmt.Errorf("%s: point %d out of range [0,%d)", experiment, point, n)
	}
	return spec.sample(rand.New(xrand.New(sampleSeed)), quick, point)
}
