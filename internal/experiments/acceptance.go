package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/xrand"
)

// Per-sweep parameter helpers. Each sweep's processor count, point grid and
// task-set generator live here — and ONLY here — so that ReplaySample (see
// replay.go) regenerates a sample under exactly the parameters the sweep
// used; the sweep bodies and the replay registry can never drift apart.

func generalParams(quick bool) (m int, points []float64) {
	if quick {
		return 4, seq(0.65, 0.95, 0.10)
	}
	return 8, seq(0.60, 1.00, 0.025)
}

func generalSet(r *rand.Rand, sc *gen.Scratch, target float64) (task.Set, error) {
	return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.95}, sc)
}

func lightParams(quick bool) (m int, points []float64) {
	if quick {
		return 4, seq(0.65, 0.95, 0.10)
	}
	return 8, seq(0.60, 1.00, 0.025)
}

func lightSet(r *rand.Rand, sc *gen.Scratch, target float64) (task.Set, error) {
	return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.40}, sc)
}

func harmonicParams(quick bool) (m int, points []float64) {
	if quick {
		return 4, seq(0.75, 1.00, 0.125)
	}
	return 8, seq(0.70, 1.00, 0.02)
}

func harmonicSet(r *rand.Rand, sc *gen.Scratch, target float64) (task.Set, error) {
	return gen.HarmonicSetInto(r, gen.HarmonicConfig{
		TargetU: target, UMin: 0.05, UMax: 0.35, Chains: 1,
		BasePeriods: []task.Time{256},
	}, sc)
}

// procsSweepUM is the fixed normalized utilization of procs-sweep (E7).
const procsSweepUM = 0.93

func procsParams(quick bool) (ms []int) {
	if quick {
		return []int{2, 4, 8}
	}
	return []int{2, 4, 8, 16, 32}
}

func procsSet(r *rand.Rand, sc *gen.Scratch, target float64) (task.Set, error) {
	return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.60}, sc)
}

func heavyParams(quick bool) (m int, um float64, shares []float64) {
	if quick {
		return 4, 0.90, []float64{0, 0.4, 0.8}
	}
	return 8, 0.94, []float64{0, 0.2, 0.4, 0.6, 0.8}
}

func heavySet(r *rand.Rand, sc *gen.Scratch, target, share float64) (task.Set, error) {
	return gen.MixedSetInto(r, gen.MixedConfig{
		TargetU:    target,
		HeavyShare: share,
		HeavyMin:   0.5, HeavyMax: 0.95,
		LightMin: 0.05, LightMax: 0.30,
	}, sc)
}

func tailParams(quick bool) (m int, ums []float64) {
	m = 8
	if quick {
		m = 4
	}
	return m, []float64{0.72, 0.78, 0.84, 0.90}
}

func tailSet(r *rand.Rand, sc *gen.Scratch, target float64) (task.Set, error) {
	return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.5}, sc)
}

// AcceptanceGeneral (E2) sweeps normalized utilization for general task
// sets (individual utilizations up to 0.95) on M processors, comparing
// RM-TS against SPA2 and strict first-fit partitioning. Expected shape:
// SPA2's curve collapses right after the L&L bound (≈70%); RM-TS stays
// high well beyond it; strict partitioning trails both at high U_M.
func AcceptanceGeneral(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE2))
	m, points := generalParams(cfg.Quick)
	algos := defaultAlgos()
	bases := pointBases(r, len(points))
	mt := cfg.meter("acceptance-general", len(points))
	ratios, err := cfg.sweepRows("acceptance-general", len(points), func(pc Config, i int) ([]float64, error) {
		target := points[i] * float64(m)
		row, err := pc.acceptance(bases[i], cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return generalSet(r, sc, target)
		}, algos)
		if err != nil {
			return nil, err
		}
		mt.Tick("U_M=%.3f", points[i])
		return row, nil
	})
	tbl := sweepTable("acceptance-general", fmt.Sprintf("M=%d, U_i∈[0.05,0.95], periods log-uniform [100,10000], %d sets/point", m, cfg.setsPerPoint()),
		points[:len(ratios)], algos, ratios,
		"expected: RM-TS ≥ SPA2 everywhere; SPA2 ≈ 0 above Θ≈0.70; RM-TS degrades gracefully towards 1.0",
	)
	if err != nil {
		return []Table{tbl}, fmt.Errorf("acceptance-general: %w", err)
	}
	return []Table{tbl}, nil
}

// AcceptanceLight (E3) is the light-task-set comparison: every U_i ≤ 0.40
// (≈ Θ/(1+Θ)), where RM-TS/light's Theorem 8 applies. Expected shape:
// RM-TS/light ≈ RM-TS, both far above SPA1/SPA2 past the L&L bound.
func AcceptanceLight(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE3))
	m, points := lightParams(cfg.Quick)
	algos := lightAlgos()
	bases := pointBases(r, len(points))
	mt := cfg.meter("acceptance-light", len(points))
	ratios, err := cfg.sweepRows("acceptance-light", len(points), func(pc Config, i int) ([]float64, error) {
		target := points[i] * float64(m)
		row, err := pc.acceptance(bases[i], cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return lightSet(r, sc, target)
		}, algos)
		if err != nil {
			return nil, err
		}
		mt.Tick("U_M=%.3f", points[i])
		return row, nil
	})
	tbl := sweepTable("acceptance-light", fmt.Sprintf("M=%d, U_i∈[0.05,0.40] (light), %d sets/point", m, cfg.setsPerPoint()),
		points[:len(ratios)], algos, ratios,
		"expected: RM-TS/light ≈ RM-TS; SPA1/SPA2 cap at Θ≈0.70",
	)
	if err != nil {
		return []Table{tbl}, fmt.Errorf("acceptance-light: %w", err)
	}
	return []Table{tbl}, nil
}

// AcceptanceHarmonic (E4) instantiates the 100% bound: light harmonic task
// sets swept up to U_M = 1. Expected shape: RM-TS/light accepts essentially
// everything up to ≈ 1 − 1/T_min (integer-time quantization), while the
// SPA baselines still cap at the L&L bound — they cannot exploit the
// harmonic structure.
func AcceptanceHarmonic(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE4))
	m, points := harmonicParams(cfg.Quick)
	algos := lightAlgos()
	bases := pointBases(r, len(points))
	mt := cfg.meter("acceptance-harmonic", len(points))
	ratios, err := cfg.sweepRows("acceptance-harmonic", len(points), func(pc Config, i int) ([]float64, error) {
		target := points[i] * float64(m)
		row, err := pc.acceptance(bases[i], cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return harmonicSet(r, sc, target)
		}, algos)
		if err != nil {
			return nil, err
		}
		mt.Tick("U_M=%.3f", points[i])
		return row, nil
	})
	tbl := sweepTable("acceptance-harmonic", fmt.Sprintf("M=%d, harmonic single chain (base 256), light tasks, %d sets/point", m, cfg.setsPerPoint()),
		points[:len(ratios)], algos, ratios,
		"Λ(τ) = 100% (harmonic bound); Theorem 8 guarantees RM-TS/light ≈ 1.0 up to U_M ≈ 1 − 1/T_min",
		"SPA1/SPA2 cannot exploit harmonicity: they cap at Θ ≈ 0.70",
	)
	if err != nil {
		return []Table{tbl}, fmt.Errorf("acceptance-harmonic: %w", err)
	}
	return []Table{tbl}, nil
}

// AcceptanceKChains (E5) evaluates the §V instantiations: task sets whose
// periods form exactly K ∈ {2, 3} harmonic chains. The effective RM-TS
// bound is min(K(2^{1/K}−1), 2Θ/(1+Θ)): ≈81.8% for K=2 (capped) and 77.9%
// for K=3. Expected: 100% acceptance at or below the bound (minus the
// integer-time margin), graceful decay above; SPA2 still capped at Θ.
func AcceptanceKChains(cfg Config) ([]Table, error) {
	var tables []Table
	for _, k := range []int{2, 3} {
		r := rand.New(xrand.New(cfg.Seed ^ int64(0xE5+k)))
		m := 8
		points := seq(0.70, 0.95, 0.025)
		if cfg.Quick {
			m = 4
			points = seq(0.70, 0.90, 0.10)
		}
		algos := []algoSpec{
			{"RM-TS(HC)", partition.NewRMTS(bounds.HarmonicChain{Minimal: true})},
			{"SPA2", partition.SPA2{}},
		}
		id := fmt.Sprintf("acceptance-kchains/K=%d", k)
		bases := pointBases(r, len(points))
		mt := cfg.meter(fmt.Sprintf("acceptance-kchains K=%d", k), len(points))
		// Each checkpointed row carries the point's effective bound as a
		// trailing extra column, so the table footnote survives a resume in
		// which every point was restored and no generator ran.
		rows, err := cfg.sweepRows(id, len(points), func(pc Config, i int) ([]float64, error) {
			target := points[i] * float64(m)
			var boundVal float64
			row, err := pc.acceptance(bases[i], cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
				ts, err := gen.HarmonicSetInto(r, gen.HarmonicConfig{
					TargetU: target, UMin: 0.05, UMax: 0.40, Chains: k,
				}, sc)
				if err != nil {
					return nil, err
				}
				boundVal = bounds.EffectiveRMTS(bounds.HarmonicChain{Minimal: true}, ts)
				return ts, nil
			}, algos)
			if err != nil {
				return nil, err
			}
			mt.Tick("U_M=%.3f", points[i])
			return append(row, boundVal), nil
		})
		ratios := make([][]float64, len(rows))
		var boundVal float64
		for i, row := range rows {
			ratios[i] = row[:len(row)-1]
			boundVal = row[len(row)-1]
		}
		tables = append(tables, sweepTable(
			id,
			fmt.Sprintf("M=%d, %d harmonic chains, light tasks, %d sets/point", m, k, cfg.setsPerPoint()),
			points[:len(ratios)], algos, ratios,
			fmt.Sprintf("effective RM-TS bound min(K-bound, 2Θ/(1+Θ)) ≈ %s for this set size", fmtPct(boundVal)),
		))
		if err != nil {
			return tables, fmt.Errorf("acceptance-kchains: %w", err)
		}
	}
	return tables, nil
}

// ProcsSweep (E7) fixes U_M = 0.93 (well above the L&L bound, near the
// packing limit) and sweeps the processor count. Expected: RM-TS's
// acceptance grows with M (more processors smooth the bin-packing), SPA2
// stays at zero (0.93 > Θ), strict first-fit trails RM-TS at every M.
func ProcsSweep(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE7))
	um := procsSweepUM
	ms := procsParams(cfg.Quick)
	algos := defaultAlgos()
	header := []string{"M"}
	for _, a := range algos {
		header = append(header, a.name)
	}
	t := Table{
		ID:     "procs-sweep",
		Title:  fmt.Sprintf("U_M=%.2f, U_i∈[0.05,0.6], %d sets/point", um, cfg.setsPerPoint()),
		Header: header,
		Notes:  []string{"expected: RM-TS improves with M; SPA2 pinned at 0 (0.93 > Θ); P-RM-FF trails RM-TS"},
	}
	bases := pointBases(r, len(ms))
	mt := cfg.meter("procs-sweep", len(ms))
	rows, err := cfg.sweepRows("procs-sweep", len(ms), func(pc Config, i int) ([]float64, error) {
		m := ms[i]
		row, err := pc.acceptance(bases[i], cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return procsSet(r, sc, um*float64(m))
		}, algos)
		if err != nil {
			return nil, err
		}
		mt.Tick("M=%d", m)
		return row, nil
	})
	for i, row := range rows {
		cells := []string{fmt.Sprintf("%d", ms[i])}
		for _, v := range row {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		t.Rows = append(t.Rows, cells)
	}
	if err != nil {
		return []Table{t}, fmt.Errorf("procs-sweep: %w", err)
	}
	return []Table{t}, nil
}

// HeavySweep (E8) varies the share of total utilization carried by heavy
// tasks (U > Θ/(1+Θ)) at fixed U_M, exercising RM-TS's pre-assignment
// phase. It also reports the mean number of pre-assigned tasks. Expected:
// RM-TS stays robust as the heavy share grows; strict first-fit suffers.
func HeavySweep(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE8))
	m, um, shares := heavyParams(cfg.Quick)
	rmts := partition.NewRMTS(nil)
	algos := []algoSpec{
		{"RM-TS", rmts},
		{"SPA2", partition.SPA2{}},
		{"P-RM-FF", partition.FirstFitRTA{}},
	}
	header := []string{"heavy share"}
	for _, a := range algos {
		header = append(header, a.name)
	}
	header = append(header, "mean #pre-assigned (RM-TS)")
	t := Table{
		ID:     "heavy-sweep",
		Title:  fmt.Sprintf("M=%d, U_M=%.2f, heavy U∈[0.5,0.95], light U∈[0.05,0.3], %d sets/point", m, um, cfg.setsPerPoint()),
		Header: header,
		Notes:  []string{"expected: RM-TS robust across shares; pre-assignment count grows with the share"},
	}
	bases := pointBases(r, len(shares))
	mt := cfg.meter("heavy-sweep", len(shares))
	rows, err := cfg.sweepRows("heavy-sweep", len(shares), func(pc Config, p int) ([]float64, error) {
		share := shares[p]
		n := cfg.setsPerPoint()
		type outcome struct {
			ok  []bool
			pre int
		}
		perSet := make([]outcome, n)
		errs := make([]error, n)
		if err := pc.parEach(bases[p], n, func(s int, r *rand.Rand, ws *Workspace) {
			ts, err := heavySet(r, ws.Gen(), um*float64(m), share)
			if err != nil {
				errs[s] = err
				return
			}
			o := outcome{ok: make([]bool, len(algos))}
			for i, a := range algos {
				res := ws.Partition(a.alg, ts, m)
				o.ok[i] = res.OK && res.Guaranteed
				if i == 0 {
					o.pre = res.NumPreAssigned
				}
			}
			perSet[s] = o
		}); err != nil {
			return nil, err
		}
		if err := firstError(errs); err != nil {
			return nil, err
		}
		accepted := make([]int, len(algos))
		preSum := 0
		for _, o := range perSet {
			if o.ok == nil {
				continue
			}
			for i, ok := range o.ok {
				if ok {
					accepted[i]++
				}
			}
			preSum += o.pre
		}
		row := make([]float64, 0, len(algos)+1)
		for _, k := range accepted {
			row = append(row, float64(k)/float64(n))
		}
		row = append(row, float64(preSum)/float64(n))
		mt.Tick("share=%.1f", share)
		return row, nil
	})
	for i, row := range rows {
		cells := []string{fmt.Sprintf("%.1f", shares[i])}
		for _, v := range row[:len(row)-1] {
			cells = append(cells, fmt.Sprintf("%.3f", v))
		}
		cells = append(cells, fmt.Sprintf("%.2f", row[len(row)-1]))
		t.Rows = append(t.Rows, cells)
	}
	if err != nil {
		return []Table{t}, fmt.Errorf("heavy-sweep: %w", err)
	}
	return []Table{t}, nil
}

// UtilizationTail (E11) quantifies the paper's §I claim that the
// threshold-based algorithm of [16] "never utilizes more than the
// worst-case bound": among sets with U_M above Θ, it counts how many each
// algorithm schedules with a guarantee.
func UtilizationTail(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE11))
	m, ums := tailParams(cfg.Quick)
	algos := defaultAlgos()
	header := []string{"U_M"}
	for _, a := range algos {
		header = append(header, a.name+" accepted")
	}
	t := Table{
		ID:     "utilization-tail",
		Title:  fmt.Sprintf("guaranteed-schedulable sets above the L&L bound, M=%d, %d sets/point", m, cfg.setsPerPoint()),
		Header: header,
		Notes:  []string{"expected: SPA2 = 0 everywhere (its guarantee caps at Θ); RM-TS > 0 well past Θ"},
	}
	bases := pointBases(r, len(ums))
	mt := cfg.meter("utilization-tail", len(ums))
	rows, err := cfg.sweepRows("utilization-tail", len(ums), func(pc Config, p int) ([]float64, error) {
		um := ums[p]
		n := cfg.setsPerPoint()
		perSet := make([][]bool, n)
		errs := make([]error, n)
		if err := pc.parEach(bases[p], n, func(s int, r *rand.Rand, ws *Workspace) {
			ts, err := tailSet(r, ws.Gen(), um*float64(m))
			if err != nil {
				errs[s] = err
				return
			}
			theta := bounds.LL(len(ts))
			if ts.NormalizedUtilization(m) <= theta {
				return // only count sets genuinely above the bound
			}
			row := make([]bool, len(algos))
			for i, a := range algos {
				res := ws.Partition(a.alg, ts, m)
				row[i] = res.OK && res.Guaranteed
			}
			perSet[s] = row
		}); err != nil {
			return nil, err
		}
		if err := firstError(errs); err != nil {
			return nil, err
		}
		row := make([]float64, len(algos))
		for _, ok := range perSet {
			for i, v := range ok {
				if v {
					row[i]++
				}
			}
		}
		mt.Tick("U_M=%.2f", um)
		return row, nil
	})
	for i, row := range rows {
		cells := []string{fmt.Sprintf("%.2f", ums[i])}
		for _, k := range row {
			cells = append(cells, fmt.Sprintf("%d/%d", int(k), cfg.setsPerPoint()))
		}
		t.Rows = append(t.Rows, cells)
	}
	if err != nil {
		return []Table{t}, fmt.Errorf("utilization-tail: %w", err)
	}
	return []Table{t}, nil
}
