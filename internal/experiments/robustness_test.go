package experiments

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// cancelAfterWriter cancels a context on its nth Write. Hooked up as the
// Progress writer it cancels deterministically between sweep points: the
// meter's Tick emits exactly one write per completed point.
type cancelAfterWriter struct {
	cancel context.CancelFunc
	after  int
	n      int
}

func (w *cancelAfterWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n == w.after {
		w.cancel()
	}
	return len(p), nil
}

func TestParEachIsolatesPanics(t *testing.T) {
	cfg := Config{Workers: 4}
	n := 50
	done := make([]bool, n)
	err := cfg.parEach(123, n, func(i int, r *rand.Rand, _ *Workspace) {
		if i == 17 {
			panic("boom")
		}
		done[i] = true
	})
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("want *SampleError, got %v (%T)", err, err)
	}
	if se.Index != 17 || se.BaseSeed != 123 {
		t.Errorf("bad attribution: index=%d base=%d", se.Index, se.BaseSeed)
	}
	if se.Seed != 123+17*0x9E3779B9 {
		t.Errorf("seed %d does not match the derivation rule", se.Seed)
	}
	if se.PanicValue != "boom" {
		t.Errorf("panic value %q", se.PanicValue)
	}
	if !strings.Contains(se.Stack, "robustness_test") {
		t.Errorf("stack does not point at the panic site:\n%s", se.Stack)
	}
	for i, d := range done {
		if i != 17 && !d {
			t.Fatalf("sibling sample %d did not run", i)
		}
	}
}

func TestMidSweepCancellationReturnsPartialRows(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Seed: 7, SetsPerPoint: 25, Quick: true, Workers: 2,
		Progress: &cancelAfterWriter{cancel: cancel, after: 1}}.WithContext(ctx)
	before := runtime.NumGoroutine()
	tables, err := AcceptanceGeneral(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(tables) != 1 {
		t.Fatalf("want 1 partial table, got %d", len(tables))
	}
	// The quick sweep has 4 points; cancelling after the first completed
	// point must keep it and drop the rest.
	if got := len(tables[0].Rows); got < 1 || got >= 4 {
		t.Fatalf("partial table has %d rows, want 1..3", got)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines leaked across cancellation: %d before, %d after", before, n)
	}
}

func TestCancelledBeforeStartComputesNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Seed: 7, SetsPerPoint: 10, Quick: true, Workers: 2}.WithContext(ctx)
	tables, err := AcceptanceGeneral(cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 0 {
		t.Fatalf("pre-cancelled run produced rows: %+v", tables)
	}
}

// TestKillAndResumeByteIdentical is the in-package half of the
// kill-and-resume contract: interrupt a checkpointed sweep mid-run, resume
// it under a fresh Config, and require the rendered output to be
// byte-identical to an uninterrupted run. (cmd/experiments has the
// process-level SIGINT version.)
func TestKillAndResumeByteIdentical(t *testing.T) {
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general missing")
	}
	base := Config{Seed: 11, SetsPerPoint: 25, Quick: true, Workers: 3}
	want := render(mustRun(t, e, base))

	path := filepath.Join(t.TempDir(), "cp.json")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	interrupted := base
	interrupted.Progress = &cancelAfterWriter{cancel: cancel, after: 1}
	interrupted.Checkpoint = NewCheckpoint(path, interrupted)
	interrupted = interrupted.WithContext(ctx)
	if _, err := Run(e, interrupted); !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v, want context.Canceled", err)
	}
	if interrupted.Checkpoint.Points() == 0 {
		t.Fatal("interrupted run checkpointed no points")
	}

	resumed := base
	cp, err := ResumeCheckpoint(path, resumed)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if cp.Points() == 0 {
		t.Fatal("checkpoint file restored no points")
	}
	resumed.Checkpoint = cp
	got := render(mustRun(t, e, resumed))
	if got != want {
		t.Fatalf("resumed output differs from uninterrupted run\n--- want\n%s--- got\n%s", want, got)
	}
	if cp.Hits() == 0 {
		t.Fatal("resume recomputed every point instead of restoring")
	}
}

func TestResumeRejectsMismatchedConfig(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := NewCheckpoint(path, Config{Seed: 1, SetsPerPoint: 10})
	cp.store(Config{}, "x/0", []float64{1, 2})
	if cp.Points() != 1 {
		t.Fatal("store failed")
	}
	if _, err := ResumeCheckpoint(path, Config{Seed: 2, SetsPerPoint: 10}); err == nil {
		t.Error("resume under a different seed was accepted")
	}
	if _, err := ResumeCheckpoint(path, Config{Seed: 1, SetsPerPoint: 20}); err == nil {
		t.Error("resume under a different scale was accepted")
	}
	if _, err := ResumeCheckpoint(path, Config{Seed: 1, SetsPerPoint: 10, Quick: true}); err == nil {
		t.Error("resume under a different sweep shape was accepted")
	}
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeCheckpoint(path, Config{Seed: 1, SetsPerPoint: 10}); err == nil {
		t.Error("corrupt checkpoint was accepted")
	}
	// A missing file is a fresh start, not an error.
	if cp, err := ResumeCheckpoint(filepath.Join(t.TempDir(), "absent.json"), Config{Seed: 1, SetsPerPoint: 10}); err != nil || cp.Points() != 0 {
		t.Errorf("missing checkpoint: cp=%v err=%v", cp, err)
	}
}

func TestInjectedSamplePanicIsSeedReproducible(t *testing.T) {
	defer faultinject.Disarm()
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general missing")
	}
	// Single worker: fault-site ordinals are deterministic (package caveat),
	// so two runs must fail at the identical sample.
	cfg := Config{Seed: 3, SetsPerPoint: 10, Quick: true, Workers: 1}
	run := func() *SampleError {
		t.Helper()
		faultinject.Arm(faultinject.Plan{Seed: 99, SamplePanicEvery: 7})
		tables, err := Run(e, cfg)
		if err == nil {
			t.Fatal("injected panics produced no error")
		}
		var se *SampleError
		if !errors.As(err, &se) {
			t.Fatalf("err = %v (%T), want *SampleError", err, err)
		}
		if len(tables) != 1 {
			t.Fatalf("failing run returned no partial table")
		}
		return se
	}
	a := run()
	b := run()
	if a.Point != b.Point || a.Index != b.Index || a.BaseSeed != b.BaseSeed || a.Seed != b.Seed {
		t.Fatalf("injected failure is not reproducible:\n%+v\n%+v", a, b)
	}
	if a.Experiment != "acceptance-general" {
		t.Errorf("experiment attribution %q", a.Experiment)
	}
	if a.Point < 0 {
		t.Errorf("sweep point not attributed: %d", a.Point)
	}
	if a.Seed != a.BaseSeed+int64(a.Index)*0x9E3779B9 {
		t.Errorf("seed %d does not match the derivation rule", a.Seed)
	}
	if a.PanicValue != faultinject.PanicValue {
		t.Errorf("panic value %q", a.PanicValue)
	}
	if a.Repro() == "" || a.Stack == "" {
		t.Error("missing repro recipe or stack")
	}
}

func TestInjectedRTAAbortNeverCrashes(t *testing.T) {
	defer faultinject.Disarm()
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general missing")
	}
	faultinject.Arm(faultinject.Plan{Seed: 5, RTAAbortEvery: 20})
	cfg := Config{Seed: 3, SetsPerPoint: 10, Quick: true, Workers: 2}
	_, err := Run(e, cfg)
	// Forced iteration-cap aborts degrade to "not schedulable" verdicts; if
	// a cross-check trips on the inconsistency it must surface as an
	// isolated SampleError, never as an unrecovered panic.
	if err != nil {
		var se *SampleError
		if !errors.As(err, &se) {
			t.Fatalf("rta aborts surfaced as a non-sample error: %v", err)
		}
	}
	if faultinject.Fired(faultinject.RTAAbort) == 0 {
		t.Fatal("no rta aborts fired — the injection site is dead")
	}
}

func TestCheckpointWriteFailureDegradesGracefully(t *testing.T) {
	defer faultinject.Disarm()
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general missing")
	}
	base := Config{Seed: 11, SetsPerPoint: 25, Quick: true, Workers: 2}
	want := render(mustRun(t, e, base))

	faultinject.Arm(faultinject.Plan{CheckpointWriteEvery: 1})
	var progress bytes.Buffer
	cfg := base
	cfg.Progress = &progress
	path := filepath.Join(t.TempDir(), "cp.json")
	cfg.Checkpoint = NewCheckpoint(path, cfg)
	got := render(mustRun(t, e, cfg))
	if got != want {
		t.Fatal("checkpoint write failure altered the table output")
	}
	if !strings.Contains(progress.String(), "checkpoint write failed") {
		t.Fatalf("no degradation warning on the progress stream:\n%s", progress.String())
	}
	// The first failure disables checkpointing; the site is not consulted
	// again.
	if fired := faultinject.Fired(faultinject.CheckpointWrite); fired != 1 {
		t.Errorf("checkpointing not disabled after the first failure: fired %d times", fired)
	}
	if _, err := os.Stat(path); err == nil {
		t.Error("a checkpoint file appeared despite every write failing")
	}
}

// TestParanoidRunMatchesDefault pins that the paranoid re-validation is
// observation-only: it never alters experiment output, it only panics (into
// a SampleError) when an invariant is broken.
func TestParanoidRunMatchesDefault(t *testing.T) {
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general missing")
	}
	base := Config{Seed: 5, SetsPerPoint: 10, Quick: true, Workers: 2}
	want := render(mustRun(t, e, base))
	p := base
	p.Paranoid = true
	if got := render(mustRun(t, e, p)); got != want {
		t.Fatal("paranoid validation altered the table output")
	}
}
