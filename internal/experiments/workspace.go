package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/task"
	"repro/internal/xrand"
)

// Workspace is one worker's persistent scratch state for the per-sample
// pipeline (generate → partition → analyze): a generator scratch, a
// partitioning arena and a reusable RNG. parEach hands each worker one
// workspace and reuses it across every index the worker steals, so the
// steady-state sweep loop allocates nothing per task set.
//
// Ownership follows the arena contract (partition.Arena): anything returned
// by Gen-backed generators or Partition borrows the workspace and is valid
// only until the next generate/Partition call on the same workspace. A
// Workspace is not safe for concurrent use; workspaces are pooled and
// recycled across parEach calls.
type Workspace struct {
	gen      gen.Scratch
	arena    partition.Arena
	rng      *rand.Rand
	noReuse  bool
	paranoid bool

	// noCrossScale disables the cross-scale verdict and warm-start reuse in
	// the breakdown bisections (Config.NoCrossScale) — the ablation knob the
	// cross-scale-off golden test compares against.
	noCrossScale bool
	// carry is the breakdown bisections' cross-scale warm-start state: the
	// converged responses of the last accepted scale of the CURRENT sample
	// (see rta.BatchState.EvaluateList). Reset at the start of each sample.
	carry rta.BatchState
	// uniTS/uniList are uniBreakdown's per-probe build buffers, hoisted so a
	// 14-probe bisection reuses one pair instead of allocating per probe.
	uniTS   task.Set
	uniList []task.Subtask
	// memoC/memoEnt memoize breakdownOf acceptance verdicts on the exact
	// scaled C-vector (memoC holds the keys flattened n-at-a-time).
	memoC   []task.Time
	memoEnt []memoEntry
}

// memoEntry is one breakdownOf memo hit target: the verdict and achieved
// utilization of the scaled set whose C-vector is memoC[i*n : (i+1)*n].
type memoEntry struct {
	ok bool
	u  float64
}

// Gen returns the workspace's generator scratch, or nil in no-reuse mode —
// a nil scratch makes every gen.*Into call allocate fresh, reproducing the
// cold path exactly.
func (ws *Workspace) Gen() *gen.Scratch {
	if ws == nil || ws.noReuse {
		return nil
	}
	return &ws.gen
}

// Partition runs alg on (ts, m) drawing all working storage from the
// workspace arena. The result borrows the workspace. In no-reuse mode — or
// for an algorithm without arena support — it is a plain cold Partition
// call; the verdict and every Result field are identical either way (the
// arena equivalence tests pin this).
func (ws *Workspace) Partition(alg partition.Algorithm, ts task.Set, m int) *partition.Result {
	var res *partition.Result
	if ws != nil && !ws.noReuse {
		if ap, ok := alg.(partition.ArenaPartitioner); ok {
			res = ap.PartitionArena(ts, m, &ws.arena)
		}
	}
	if res == nil {
		res = alg.Partition(ts, m)
	}
	// Paranoid mode: re-prove every successful result from scratch. The
	// panic is deliberate — parEach's isolation converts it into a
	// seed-reproducible SampleError naming this exact sample.
	if ws != nil && ws.paranoid && res != nil && res.OK {
		if err := partition.ValidateFor(alg, res); err != nil {
			panic(fmt.Sprintf("paranoid: invariant violation in %s on m=%d: %v", alg.Name(), m, err))
		}
	}
	return res
}

// wsPool recycles workspaces across parEach calls (and across benchmark
// iterations), so buffer capacities survive the whole process lifetime.
// The pooled RNG rides xrand.Source — bit-identical to rand.NewSource but
// with the ~3× cheaper reseed the per-sample loop actually pays for (the
// cold NoReuse path keeps constructing stdlib sources, pinning the contract).
var wsPool = sync.Pool{New: func() interface{} {
	return &Workspace{rng: rand.New(xrand.New(0))}
}}

func getWorkspace(c Config) *Workspace {
	ws := wsPool.Get().(*Workspace)
	ws.noReuse = c.NoReuse
	ws.paranoid = c.Paranoid
	ws.noCrossScale = c.NoCrossScale
	return ws
}

func putWorkspace(ws *Workspace) { wsPool.Put(ws) }
