package experiments

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/task"
)

// BoundsTable (E1) tabulates the closed-form bound instantiations quoted in
// §§I, III and V: the Liu & Layland bound Θ(N) and the derived thresholds
// Θ/(1+Θ) (light-task limit) and 2Θ/(1+Θ) (RM-TS cap), the harmonic-chain
// bounds K(2^{1/K}−1), and T-/R-bound values on example period sets.
func BoundsTable(cfg Config) ([]Table, error) {
	t1 := Table{
		ID:     "bounds-table/theta",
		Title:  "L&L bound and derived thresholds by task count",
		Header: []string{"N", "Θ(N)", "light limit Θ/(1+Θ)", "RM-TS cap 2Θ/(1+Θ)"},
		Notes: []string{
			"paper quotes the N→∞ values: Θ≈69.3%, Θ/(1+Θ)≈40.9%, 2Θ/(1+Θ)≈81.8%",
		},
	}
	for _, n := range []int{1, 2, 3, 4, 5, 8, 10, 16, 32, 64, 1 << 20} {
		label := fmt.Sprintf("%d", n)
		if n == 1<<20 {
			label = "∞"
		}
		t1.Rows = append(t1.Rows, []string{
			label,
			fmtPct(bounds.LL(n)),
			fmtPct(bounds.LightThresholdFor(n)),
			fmtPct(bounds.RMTSCapFor(n)),
		})
	}

	t2 := Table{
		ID:     "bounds-table/kchains",
		Title:  "Harmonic chain bound K(2^{1/K}−1) and its RM-TS instantiation (§V examples)",
		Header: []string{"K", "HC bound", "min(HC, 2Θ/(1+Θ)) for N→∞", "usable as RM-TS bound?"},
		Notes: []string{
			"§V: K=3 → 77.9% < 81.8% usable directly; K=2 → 82.8% > 81.8% capped to 81.8%",
		},
	}
	asympCap := bounds.RMTSCapFor(1 << 20)
	for k := 1; k <= 6; k++ {
		hc := bounds.LL(k)
		eff := hc
		capped := "yes"
		if eff > asympCap {
			eff = asympCap
			capped = "capped"
		}
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%d", k), fmtPct(hc), fmtPct(eff), capped,
		})
	}

	t3 := Table{
		ID:     "bounds-table/examples",
		Title:  "All implemented D-PUBs on example period sets",
		Header: []string{"periods", "L&L", "HC-min", "T-bound", "R-bound", "best"},
	}
	examples := []struct {
		name    string
		periods []task.Time
	}{
		{"harmonic {4,8,16,32}", []task.Time{4, 8, 16, 32}},
		{"2 chains {4,8,9,27}", []task.Time{4, 8, 9, 27}},
		{"3 chains {4,8,9,27,25}", []task.Time{4, 8, 9, 27, 25}},
		{"near-harmonic {100,199,401}", []task.Time{100, 199, 401}},
		{"generic {7,11,13,17}", []task.Time{7, 11, 13, 17}},
		{"generic {120,150,180,600}", []task.Time{120, 150, 180, 600}},
	}
	pubs := []bounds.PUB{bounds.LiuLayland{}, bounds.HarmonicChain{Minimal: true}, bounds.TBound{}, bounds.RBound{}}
	for _, ex := range examples {
		ts := make(task.Set, len(ex.periods))
		for i, p := range ex.periods {
			ts[i] = task.Task{C: 1, T: p}
		}
		row := []string{ex.name}
		best := 0.0
		for _, p := range pubs {
			v := p.Value(ts)
			if v > best {
				best = v
			}
			row = append(row, fmtPct(v))
		}
		row = append(row, fmtPct(best))
		t3.Rows = append(t3.Rows, row)
	}
	cfg.progressf("bounds-table: %d+%d+%d rows", len(t1.Rows), len(t2.Rows), len(t3.Rows))
	return []Table{t1, t2, t3}, nil
}
