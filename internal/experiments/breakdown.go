package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
	"repro/internal/xrand"
)

// Breakdown (E6) measures breakdown utilization: for each random task-set
// *shape* (fixed utilization proportions and periods), the largest U_M at
// which the algorithm still accepts, found by bisection on a global
// execution-time scale factor. The paper's motivation (§I): on
// uniprocessors, exact-analysis RMS breaks down around 88% on average
// versus the 69% worst-case bound; RM-TS inherits that gap on
// multiprocessors, while SPA2's breakdown pins at the bound.
func Breakdown(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE6))
	ms := []int{4, 8, 16}
	sets := cfg.setsPerPoint() / 2
	if sets < 8 {
		sets = 8
	}
	if cfg.Quick {
		ms = []int{4}
		if sets > 20 {
			sets = 20
		}
	}
	algos := []algoSpec{
		{"RM-TS", partition.NewRMTS(nil)},
		{"RM-TS/light", partition.RMTSLight{}},
		{"SPA2", partition.SPA2{}},
		{"P-RM-FF", partition.FirstFitRTA{}},
	}
	t := Table{
		ID:     "breakdown",
		Title:  fmt.Sprintf("mean breakdown U_M over %d set shapes (U_i∈[0.05,0.4] at full scale)", sets),
		Header: []string{"M", "algorithm", "breakdown U_M mean (min–max)"},
		Notes: []string{
			"bisection on a global C scale factor, 12 iterations, acceptance = OK ∧ Guaranteed",
			"expected: RM-TS ≫ Θ≈0.70 (uniprocessor analogy: ≈88%); SPA2 pinned at ≈Θ",
		},
	}
	mt := cfg.meter("breakdown", len(ms))
	for _, m := range ms {
		m := m
		perSet := make([][]float64, sets)
		errs := make([]error, sets)
		parErr := cfg.parEach(r.Int63(), sets, func(s int, r *rand.Rand, ws *Workspace) {
			shape, err := gen.TaskSetInto(r, gen.Config{
				TargetU: float64(m), // full scale = U_M 1.0
				UMin:    0.05, UMax: 0.40,
			}, ws.Gen())
			if err != nil {
				errs[s] = err
				return
			}
			row := make([]float64, len(algos))
			for i, a := range algos {
				row[i] = breakdownOf(ws, a.alg, shape, m)
			}
			perSet[s] = row
		})
		if parErr != nil {
			return nil, fmt.Errorf("breakdown: %w", parErr)
		}
		if err := firstError(errs); err != nil {
			return nil, fmt.Errorf("breakdown: %w", err)
		}
		for i, a := range algos {
			samples := make([]float64, 0, sets)
			for _, row := range perSet {
				if row != nil {
					samples = append(samples, row[i])
				}
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", m), a.name, meanAndRange(samples),
			})
		}
		mt.Tick("M=%d", m)
	}
	return []Table{t}, nil
}

// breakdownOf bisects the largest scale λ ∈ (0, 1] at which alg accepts the
// scaled shape (C_i ← max(1, round(λ·C_i))) and returns the achieved U_M.
// Acceptance is not perfectly monotone in λ because of integer rounding and
// packing heuristics, so the bisection brackets the last accepted scale and
// the achieved utilization is recomputed from the accepted integer set.
//
// Cross-scale reuse: integer rounding makes nearby λ probes collide on the
// exact same scaled C-vector, and the partitioners are deterministic
// functions of (set, m), so identical vectors have identical verdicts. The
// ≤13 probes of one bisection are memoized on the exact C-vector (the memo
// is per-(shape, alg) call, so algorithm and m never mix); a hit skips the
// whole partitioning run. Disabled by Config.NoCrossScale.
func breakdownOf(ws *Workspace, alg partition.Algorithm, shape task.Set, m int) float64 {
	n := len(shape)
	scaled := make(task.Set, n)
	memo := ws != nil && !ws.noCrossScale
	if memo {
		ws.memoC = ws.memoC[:0]
		ws.memoEnt = ws.memoEnt[:0]
	}
	accepts := func(lambda float64) (bool, float64) {
		for i, tk := range shape {
			c := task.Time(float64(tk.C)*lambda + 0.5)
			if c < 1 {
				c = 1
			}
			if c > tk.T {
				c = tk.T
			}
			scaled[i] = task.Task{Name: tk.Name, C: c, T: tk.T}
		}
		if memo {
			for e := range ws.memoEnt {
				key := ws.memoC[e*n : (e+1)*n]
				hit := true
				for i := range key {
					if key[i] != scaled[i].C {
						hit = false
						break
					}
				}
				if hit {
					if obs.On() {
						cCrossScaleMemoHits.Inc()
					}
					return ws.memoEnt[e].ok, ws.memoEnt[e].u
				}
			}
		}
		res := ws.Partition(alg, scaled, m)
		ok, u := res.OK && res.Guaranteed, scaled.NormalizedUtilization(m)
		if memo {
			for i := range scaled {
				ws.memoC = append(ws.memoC, scaled[i].C)
			}
			ws.memoEnt = append(ws.memoEnt, memoEntry{ok: ok, u: u})
		}
		return ok, u
	}
	lo, hi := 0.0, 1.0
	best := 0.0
	if ok, u := accepts(1.0); ok {
		return u
	}
	for iter := 0; iter < 12; iter++ {
		mid := (lo + hi) / 2
		if ok, u := accepts(mid); ok {
			lo = mid
			if u > best {
				best = u
			}
		} else {
			hi = mid
		}
	}
	return best
}
