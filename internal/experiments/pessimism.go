package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/rta"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/xrand"
)

// AnalysisPessimism (E17) measures how tight the certified response-time
// bounds are in practice: for RM-TS partitions, every task's worst
// observed response over the (capped) hyperperiod is divided by its
// RTA-certified bound (tail fragments: offset + R against the deadline).
// Values near 1 mean the analysis margin is consumed; low values mean the
// synchronous critical instant rarely materializes across processors.
// Expected: the LOWEST-priority task per processor sits near 1 (its
// critical instant is the synchronous release, which the simulation
// reproduces), while higher-priority tasks retain margin; non-split tasks
// are tighter than split ones (cross-processor phasing rarely aligns).
func AnalysisPessimism(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE17))
	m := 4
	sets := cfg.setsPerPoint()
	if cfg.Quick && sets > 30 {
		sets = 30
	}
	menu := gen.ChoicePeriods{Values: []task.Time{20, 40, 50, 80, 100, 200, 400}}
	alg := partition.NewRMTS(nil)

	type sample struct {
		ratio float64
		split bool
		last  bool // lowest priority on its processor
	}
	perSet := make([][]sample, sets)
	errs := make([]error, sets)
	parErr := cfg.parEach(r.Int63(), sets, func(s int, r *rand.Rand, ws *Workspace) {
		um := 0.6 + 0.3*r.Float64()
		ts, err := gen.TaskSetInto(r, gen.Config{TargetU: um * float64(m), UMin: 0.05, UMax: 0.5, Periods: menu}, ws.Gen())
		if err != nil {
			errs[s] = err
			return
		}
		res := ws.Partition(alg, ts, m)
		if !res.OK {
			return
		}
		rep, err := sim.Simulate(res.Assignment, sim.Options{StopOnMiss: true, HorizonCap: 200_000})
		if err != nil || !rep.Ok() {
			errs[s] = fmt.Errorf("verified partition missed in simulation")
			return
		}
		var out []sample
		asg := res.Assignment
		for idx := range asg.Set {
			subs, procs := asg.Subtasks(idx)
			// Certified job-response bound: offsets of the tail plus its
			// RTA response on its processor.
			tail := subs[len(subs)-1]
			list := asg.Procs[procs[len(subs)-1]]
			pos := -1
			for i, ls := range list {
				if ls.TaskIndex == idx && ls.Part == tail.Part {
					pos = i
				}
			}
			rt, ok := rta.SubtaskResponse(list, pos)
			if !ok {
				errs[s] = fmt.Errorf("verified partition fails RTA re-check")
				return
			}
			base := asg.Set[idx].T - asg.Set[idx].Deadline()
			bound := tail.Offset - base + rt // certified worst job response
			observed := rep.WorstResponse[idx]
			if bound <= 0 || observed <= 0 {
				continue
			}
			out = append(out, sample{
				ratio: float64(observed) / float64(bound),
				split: len(subs) > 1,
				last:  pos == len(list)-1,
			})
		}
		perSet[s] = out
	})
	if parErr != nil {
		return nil, fmt.Errorf("analysis-pessimism: %w", parErr)
	}
	if err := firstError(errs); err != nil {
		return nil, fmt.Errorf("analysis-pessimism: %w", err)
	}

	groups := map[string][]float64{}
	for _, row := range perSet {
		for _, smp := range row {
			key := "non-split"
			if smp.split {
				key = "split"
			}
			groups[key] = append(groups[key], smp.ratio)
			if smp.last {
				groups["lowest-priority"] = append(groups["lowest-priority"], smp.ratio)
			}
			groups["all"] = append(groups["all"], smp.ratio)
		}
	}
	t := Table{
		ID:     "analysis-pessimism",
		Title:  fmt.Sprintf("observed worst response ÷ certified bound, RM-TS on M=%d, %d sets", m, sets),
		Header: []string{"task class", "n", "mean", "median", "p95", "max"},
		Notes: []string{
			"ratios must never exceed 1 (the bound is sound); lowest-priority tasks approach 1 (synchronous critical instant)",
		},
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		xs := groups[k]
		t.Rows = append(t.Rows, []string{
			k,
			fmt.Sprintf("%d", len(xs)),
			fmt.Sprintf("%.3f", stats.Mean(xs)),
			fmt.Sprintf("%.3f", stats.Quantile(xs, 0.5)),
			fmt.Sprintf("%.3f", stats.Quantile(xs, 0.95)),
			fmt.Sprintf("%.3f", stats.Max(xs)),
		})
	}
	cfg.progressf("analysis-pessimism: %d sets done", sets)
	return []Table{t}, nil
}
