package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/rta"
	"repro/internal/split"
	"repro/internal/task"
	"repro/internal/xrand"
)

// SplitAblation (E9) compares the two MaxSplit implementations (§IV-A):
// the binary-search reference the paper sketches and the efficient
// testing-point method it cites from [22]. Both must agree exactly on
// every instance; the table reports agreement and the speedup.
func SplitAblation(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE9))
	instances := cfg.setsPerPoint() * 5
	if cfg.Quick && instances > 200 {
		instances = 200
	}

	type inst struct {
		list   []task.Subtask
		t, d   task.Time
		budget task.Time
	}
	cases := make([]inst, 0, instances)
	for len(cases) < instances {
		n := 2 + r.Intn(6)
		list := make([]task.Subtask, 0, n)
		for i := 0; i < n; i++ {
			T := task.Time(50 + r.Intn(5000))
			C := task.Time(1 + r.Intn(int(T)/3))
			d := T - task.Time(r.Intn(int(T)/4+1))
			if d < C {
				d = C
			}
			list = append(list, task.Subtask{TaskIndex: i + 1, Part: 1, C: C, T: T, Deadline: d, Offset: T - d, Tail: true})
		}
		if !rta.ProcessorSchedulable(list) {
			continue
		}
		T := task.Time(30 + r.Intn(3000))
		cases = append(cases, inst{list: list, t: T, budget: T, d: T})
	}

	// Agreement pass (also warms both paths).
	agree := 0
	for _, c := range cases {
		a := split.MaxPortion(c.list, c.t, c.budget, c.d)
		b := split.MaxPortionBinary(c.list, c.t, c.budget, c.d)
		if a == b {
			agree++
		}
	}

	start := time.Now()
	var sinkA task.Time
	for _, c := range cases {
		sinkA += split.MaxPortion(c.list, c.t, c.budget, c.d)
	}
	effTime := time.Since(start)

	start = time.Now()
	var sinkB task.Time
	for _, c := range cases {
		sinkB += split.MaxPortionBinary(c.list, c.t, c.budget, c.d)
	}
	binTime := time.Since(start)

	speedup := float64(binTime) / float64(effTime)
	t := Table{
		ID:     "split-ablation",
		Title:  fmt.Sprintf("MaxSplit implementations over %d random near-capacity instances", instances),
		Header: []string{"implementation", "total time", "ns/op", "agreement"},
		Notes: []string{
			fmt.Sprintf("speedup of testing-point over binary search: %.2f×", speedup),
			"both are exact on the integer domain; agreement must be 100%",
		},
	}
	t.Rows = append(t.Rows,
		[]string{"testing-point ([22])", effTime.String(), fmt.Sprintf("%d", effTime.Nanoseconds()/int64(instances)), fmt.Sprintf("%d/%d", agree, instances)},
		[]string{"binary search (reference)", binTime.String(), fmt.Sprintf("%d", binTime.Nanoseconds()/int64(instances)), "-"},
	)
	if sinkA != sinkB {
		t.Notes = append(t.Notes, "WARNING: implementations disagree — investigate")
	}
	cfg.progressf("split-ablation: %d instances, speedup %.2fx", instances, speedup)
	return []Table{t}, nil
}
