package experiments

import "fmt"

// SampleError is the repro bundle of a failed experiment sample: a panic
// raised while generating, partitioning or analysing one task set, caught
// by the per-sample isolation in parEach and converted into an error that
// carries everything needed to replay the exact sample deterministically.
// Sibling samples and workers are unaffected; the experiment run reports
// the first SampleError after completing the rest of the point.
//
// To replay: the task set that failed is the one drawn from
// rand.New(rand.NewSource(Seed)) by the failing experiment's generator at
// sweep point Point — i.e. rerun the experiment with the same -seed and
// -sets and the same code revision, and the identical sample is
// regenerated bit for bit (sample seeds are derived from BaseSeed and
// Index before fan-out, so worker count and scheduling are irrelevant).
type SampleError struct {
	// Experiment is the registry key of the running experiment, when known
	// (empty for direct e.Run calls that bypass Run/RunWithMetrics).
	Experiment string
	// Point is the sweep point index the sample belonged to, or -1 when
	// the failure was outside a point sweep.
	Point int
	// Index is the sample index within the point's parEach fan-out.
	Index int
	// BaseSeed is the point's fan-out base seed.
	BaseSeed int64
	// Seed is the derived RNG seed of the failing sample: the generator
	// state that reproduces its task set.
	Seed int64
	// PanicValue is the stringified recovered panic value.
	PanicValue string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

func (e *SampleError) Error() string {
	where := ""
	if e.Experiment != "" {
		where = e.Experiment + ": "
	}
	point := ""
	if e.Point >= 0 {
		point = fmt.Sprintf(" point %d", e.Point)
	}
	return fmt.Sprintf("%ssample panic at%s sample %d (base seed %d, sample seed %d): %s",
		where, point, e.Index, e.BaseSeed, e.Seed, e.PanicValue)
}

// Repro returns a multi-line replay recipe for the failed sample, suitable
// for CLI diagnostics.
func (e *SampleError) Repro() string {
	exp := e.Experiment
	if exp == "" {
		exp = "<experiment>"
	}
	return fmt.Sprintf(
		"repro: experiment=%s point=%d sample=%d base-seed=%d sample-seed=%d\n"+
			"       the failing task set is regenerated bit-for-bit by rerunning the\n"+
			"       experiment with the same -seed/-sets at this revision (sample seeds\n"+
			"       are index-derived, so -workers does not matter)",
		exp, e.Point, e.Index, e.BaseSeed, e.Seed)
}
