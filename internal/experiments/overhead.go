package experiments

import (
	"fmt"
	"math/rand"

	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/xrand"
)

// OverheadSensitivity (E13) probes the cost the related-work debate
// attributes to migration-based schemes (§I: Pfair/LLREF/EKG "incur much
// higher context-switch overhead"): RM-TS partitions are executed with
// per-dispatch and per-migration charges under three provisioning
// strategies:
//
//  1. naive — partition at zero overhead (the paper's model). Because
//     MaxSplit packs to exact bottlenecks, even 1 tick of charge causes
//     misses.
//  2. task-inflated — the folklore mitigation: inflate every C by a
//     per-job budget before packing, execute the original demand. This
//     FAILS: MaxSplit re-absorbs the inflation into bottleneck-tight
//     fragments, leaving no margin where the charges land.
//  3. overhead-aware — the sound fix implemented in
//     partition/overhead.go: surcharge every fragment term inside the
//     admission RTA by 3×cost. Misses must be zero.
func OverheadSensitivity(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE13))
	m := 4
	um := 0.85
	sets := cfg.setsPerPoint()
	if cfg.Quick && sets > 30 {
		sets = 30
	}
	overheads := []task.Time{0, 1, 2, 5, 10}
	if cfg.Quick {
		overheads = []task.Time{0, 2, 10}
	}
	menu := gen.ChoicePeriods{Values: []task.Time{200, 400, 500, 800, 1000, 2000, 4000}}
	alg := partition.NewRMTS(nil)

	t := Table{
		ID:     "overhead-sensitivity",
		Title:  fmt.Sprintf("M=%d, U_M=%.2f, periods 200–4000 ticks, %d sets; dispatch+migration overhead in ticks", m, um, sets),
		Header: []string{"overhead", "naive miss-sets", "task-inflated: accepted / miss-sets", "overhead-aware: accepted / miss-sets"},
		Notes: []string{
			"naive = zero-overhead packing; task-inflated = C += 2×ov per job before packing, original demand executed",
			"overhead-aware = per-fragment 3×ov surcharge inside the admission RTA (partition/overhead.go); its miss count must be 0",
		},
	}
	mt := cfg.meter("overhead-sensitivity", len(overheads))
	for _, ov := range overheads {
		ov := ov
		aware := &partition.RMTS{Surcharge: 3 * ov}
		type outcome struct {
			naiveMiss           bool
			inflAcc, inflMiss   bool
			awareAcc, awareMiss bool
		}
		perSet := make([]outcome, sets)
		errs := make([]error, sets)
		parErr := cfg.parEach(r.Int63(), sets, func(s int, r *rand.Rand, ws *Workspace) {
			ts, err := gen.TaskSetInto(r, gen.Config{TargetU: um * float64(m), UMin: 0.05, UMax: 0.5, Periods: menu}, ws.Gen())
			if err != nil {
				errs[s] = err
				return
			}
			simWithCharges := func(asg *task.Assignment) bool {
				rep, err := sim.Simulate(asg, sim.Options{
					StopOnMiss: true, HorizonCap: 200_000,
					DispatchOverhead: ov, MigrationOverhead: ov,
				})
				if err != nil {
					errs[s] = err
					return true
				}
				return rep.Ok()
			}
			// Each partitioning result borrows the workspace and is fully
			// consumed (simulated or deflated) before the next Partition call.
			var o outcome
			if res := ws.Partition(alg, ts, m); res.OK && !simWithCharges(res.Assignment) {
				o.naiveMiss = true
			}
			// Task-level inflation (the folklore mitigation).
			inflated := ts.Clone()
			for i := range inflated {
				inflated[i].C += 2 * ov
				if inflated[i].C > inflated[i].T {
					inflated[i].C = inflated[i].T
				}
			}
			if resP := ws.Partition(alg, inflated, m); resP.OK {
				o.inflAcc = true
				if !simWithCharges(deflateAssignment(resP.Assignment, ts)) {
					o.inflMiss = true
				}
			}
			// Overhead-aware admission.
			if resA := ws.Partition(aware, ts, m); resA.OK {
				o.awareAcc = true
				if !simWithCharges(resA.Assignment) {
					o.awareMiss = true
				}
			}
			perSet[s] = o
		})
		if parErr != nil {
			return nil, fmt.Errorf("overhead-sensitivity: %w", parErr)
		}
		if err := firstError(errs); err != nil {
			return nil, fmt.Errorf("overhead-sensitivity: %w", err)
		}
		naiveMissSets := 0
		inflAccepted, inflMissSets := 0, 0
		awareAccepted, awareMissSets := 0, 0
		for _, o := range perSet {
			if o.naiveMiss {
				naiveMissSets++
			}
			if o.inflAcc {
				inflAccepted++
			}
			if o.inflMiss {
				inflMissSets++
			}
			if o.awareAcc {
				awareAccepted++
			}
			if o.awareMiss {
				awareMissSets++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ov),
			fmt.Sprintf("%d/%d", naiveMissSets, sets),
			fmt.Sprintf("%d/%d / %d", inflAccepted, sets, inflMissSets),
			fmt.Sprintf("%d/%d / %d", awareAccepted, sets, awareMissSets),
		})
		mt.Tick("overhead=%d", ov)
	}
	return []Table{t}, nil
}

// deflateAssignment rebuilds the provisioned assignment with each task's
// execution restored to its original (smaller) demand: the difference is
// removed from the task's fragments starting at the tail, never dropping a
// fragment below 1 tick. Synthetic deadlines and offsets stay as
// provisioned (conservative). The input assignment is not modified.
func deflateAssignment(asg *task.Assignment, original task.Set) *task.Assignment {
	sortedOrig := original.Clone()
	sortedOrig.SortDM()
	newSet := asg.Set.Clone()
	out := task.NewAssignment(newSet, asg.M())
	copy(out.PreAssigned, asg.PreAssigned)
	for idx := range asg.Set {
		// Positions align: both sets were RM-sorted with stable ties from
		// the same base order, and inflation does not change periods.
		reduce := asg.Set[idx].C - sortedOrig[idx].C
		if reduce < 0 {
			reduce = 0
		}
		subs, procs := asg.Subtasks(idx)
		var sum task.Time
		for k := len(subs) - 1; k >= 0; k-- {
			s := subs[k]
			cut := reduce
			if limit := s.C - 1; cut > limit {
				cut = limit
			}
			s.C -= cut
			reduce -= cut
			sum += s.C
			out.Add(procs[k], s)
		}
		// If fragments could not absorb the whole reduction (each is
		// already at 1 tick), keep the residual demand: the simulation is
		// then conservatively over-loaded for that task.
		newSet[idx].C = sum
	}
	return out
}

// AdmissionAblation (E14) isolates the two ingredients of the paper's
// average-case gain: the exact schedulability test and task splitting.
// Strict first-fit partitioning is run with three admission tests of
// increasing precision (L&L utilization ≤ Θ, hyperbolic bound, exact RTA),
// and RM-TS adds splitting on top of exact RTA. Expected ordering at high
// U_M: LL < HB < RTA < RTA+splitting — each mechanism buys a visible slice
// of the gap, with splitting decisive near 100%.
func AdmissionAblation(cfg Config) ([]Table, error) {
	r := rand.New(xrand.New(cfg.Seed ^ 0xE14))
	m := 8
	points := seq(0.60, 1.00, 0.05)
	if cfg.Quick {
		m = 4
		points = seq(0.65, 0.95, 0.15)
	}
	algos := []algoSpec{
		{"FF[LL]", partition.FirstFit{Admission: partition.AdmitLL}},
		{"FF[HB]", partition.FirstFit{Admission: partition.AdmitHyperbolic}},
		{"FF[HT]", partition.FirstFit{Admission: partition.AdmitHanTyan}},
		{"FF[RTA]", partition.FirstFit{Admission: partition.AdmitRTA}},
		{"RM-TS (RTA+split)", partition.NewRMTS(nil)},
	}
	ratios := make([][]float64, len(points))
	mt := cfg.meter("admission-ablation", len(points))
	for i, um := range points {
		target := um * float64(m)
		row, err := cfg.acceptance(r.Int63(), cfg.setsPerPoint(), m, func(r *rand.Rand, sc *gen.Scratch) (task.Set, error) {
			return gen.TaskSetInto(r, gen.Config{TargetU: target, UMin: 0.05, UMax: 0.6}, sc)
		}, algos)
		if err != nil {
			return nil, fmt.Errorf("admission-ablation: %w", err)
		}
		ratios[i] = row
		mt.Tick("U_M=%.2f", um)
	}
	return []Table{sweepTable("admission-ablation",
		fmt.Sprintf("M=%d, U_i∈[0.05,0.6], %d sets/point — what exactness and splitting each contribute", m, cfg.setsPerPoint()),
		points, algos, ratios,
		"expected ordering: FF[LL] ≤ FF[HB] ≤ FF[RTA] ≤ RM-TS at every point; Han-Tyan (HT) sits between HB and RTA on average",
	)}, nil
}
