package experiments

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// recordE2Events runs acceptance-general at quick scale with an event
// recorder attached and returns the JSONL stream (bracketed by the
// run-start/run-end records cmd/experiments would emit).
func recordE2Events(t *testing.T, workers int, seed int64) []byte {
	t.Helper()
	e, ok := Find("acceptance-general")
	if !ok {
		t.Fatal("acceptance-general not registered")
	}
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	rec.Emit(obs.RunEvent{Kind: obs.EvRunStart, Schema: obs.EventSchemaVersion,
		Seed: seed, Sets: 16, Quick: true, Workers: workers})
	obs.Reset()
	_, _, err := RunWithMetrics(e, Config{Seed: seed, SetsPerPoint: 16, Quick: true,
		Workers: workers, Events: rec})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rec.Emit(obs.RunEvent{Kind: obs.EvRunEnd})
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// stripMs zeroes the fields the determinism contract excludes: the
// wall-clock ms stamp, and the worker count the run-start record documents
// (it reflects the actual configuration, which this test varies on
// purpose).
func stripMs(t *testing.T, stream []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	for _, line := range bytes.Split(bytes.TrimRight(stream, "\n"), []byte("\n")) {
		var e obs.RunEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatalf("bad event line %s: %v", line, err)
		}
		e.Ms = 0
		e.Workers = 0
		data, err := json.Marshal(e)
		if err != nil {
			t.Fatal(err)
		}
		out.Write(data)
		out.WriteByte('\n')
	}
	return out.Bytes()
}

// TestEventStreamGolden pins the event-stream schema and its determinism:
// the stream validates, and with the ms stamp zeroed it is byte-identical
// across runs and across worker counts at a fixed seed — including the
// per-point counter deltas, which inherit the worker-invariance of the obs
// counters.
func TestEventStreamGolden(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	first := recordE2Events(t, 1, 7)
	if n, err := obs.ValidateEventLog(bytes.NewReader(first)); err != nil {
		t.Fatalf("stream does not validate: %v\n%s", err, first)
	} else if n < 6 { // run-start, experiment-start, ≥4 points (quick sweep is 4 points at minimum), experiment-end, run-end
		t.Fatalf("suspiciously short stream (%d events):\n%s", n, first)
	}

	base := stripMs(t, first)
	for _, workers := range []int{1, 8} {
		got := stripMs(t, recordE2Events(t, workers, 7))
		if !bytes.Equal(got, base) {
			t.Errorf("event stream diverged at workers=%d:\n--- base\n%s--- got\n%s", workers, base, got)
		}
	}

	// Spot-check the content: every sweep point appears as point-done with
	// nonzero RTA-iteration attribution.
	var points, withRTA int
	for _, line := range bytes.Split(bytes.TrimRight(first, "\n"), []byte("\n")) {
		var e obs.RunEvent
		if err := json.Unmarshal(line, &e); err != nil {
			t.Fatal(err)
		}
		if e.Kind == obs.EvPointDone {
			points++
			if (obs.Snapshot{Counters: e.Counters}).Get("rta.iterations") > 0 {
				withRTA++
			}
		}
	}
	if points == 0 || points != withRTA {
		t.Errorf("point-done events: %d total, %d with rta.iters deltas", points, withRTA)
	}
}

// TestEventStreamDisabledObs checks the -events-without--metrics shape:
// the stream still validates, points are still recorded, counter deltas are
// simply absent.
func TestEventStreamDisabledObs(t *testing.T) {
	obs.SetEnabled(false)
	stream := recordE2Events(t, 2, 3)
	if _, err := obs.ValidateEventLog(bytes.NewReader(stream)); err != nil {
		t.Fatalf("validate: %v", err)
	}
	if !bytes.Contains(stream, []byte(`"kind":"point-done"`)) {
		t.Fatalf("no point-done events:\n%s", stream)
	}
	if bytes.Contains(stream, []byte(`"counters"`)) {
		t.Fatalf("counter deltas present with obs disabled:\n%s", stream)
	}
}

// TestEventStreamSampleError arms the sample-panic fault site and requires
// the stream to carry a sample-error record whose seeds match the
// SampleError returned by the run.
func TestEventStreamSampleError(t *testing.T) {
	defer faultinject.Disarm()
	e, _ := Find("acceptance-general")
	var buf bytes.Buffer
	rec := obs.NewRecorder(&buf)
	faultinject.Arm(faultinject.Plan{Seed: 99, SamplePanicEvery: 7})
	_, err := Run(e, Config{Seed: 7, SetsPerPoint: 16, Quick: true, Workers: 1, Events: rec})
	faultinject.Disarm()
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("expected SampleError, got %v", err)
	}
	var found bool
	for _, line := range bytes.Split(bytes.TrimRight(buf.Bytes(), "\n"), []byte("\n")) {
		var ev obs.RunEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatal(err)
		}
		if ev.Kind == obs.EvSampleError {
			found = true
			if ev.Point != se.Point+1 || ev.Sample != se.Index+1 ||
				ev.BaseSeed != se.BaseSeed || ev.SampleSeed != se.Seed || ev.Panic == "" {
				t.Errorf("sample-error event %+v does not match %+v", ev, se)
			}
		}
	}
	if !found {
		t.Fatalf("no sample-error event in stream:\n%s", buf.Bytes())
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"kind":"experiment-end"`)) ||
		!bytes.Contains(buf.Bytes(), []byte(`"err"`)) {
		t.Errorf("experiment-end with err missing:\n%s", buf.Bytes())
	}
}

// TestEventStreamCheckpoint checks checkpoint-write and point-restored
// records: a checkpointed run emits one checkpoint event per stored point,
// and a resumed run replays restored points as point-restored.
func TestEventStreamCheckpoint(t *testing.T) {
	e, _ := Find("acceptance-general")
	cp := t.TempDir() + "/cp.json"
	cfg := Config{Seed: 7, SetsPerPoint: 8, Quick: true, Workers: 2}

	var first bytes.Buffer
	rec := obs.NewRecorder(&first)
	cfg1 := cfg
	cfg1.Checkpoint = NewCheckpoint(cp, cfg)
	cfg1.Events = rec
	if _, err := Run(e, cfg1); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	rec.Close()
	if !bytes.Contains(first.Bytes(), []byte(`"kind":"checkpoint"`)) {
		t.Fatalf("no checkpoint events:\n%s", first.Bytes())
	}

	restored, err := ResumeCheckpoint(cp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	rec2 := obs.NewRecorder(&second)
	cfg2 := cfg
	cfg2.Checkpoint = restored
	cfg2.Events = rec2
	if _, err := Run(e, cfg2); err != nil {
		t.Fatalf("resumed run: %v", err)
	}
	rec2.Close()
	if !bytes.Contains(second.Bytes(), []byte(`"kind":"point-restored"`)) {
		t.Fatalf("no point-restored events on resume:\n%s", second.Bytes())
	}
	if bytes.Contains(second.Bytes(), []byte(`"kind":"point-done"`)) {
		t.Errorf("fully restored run recomputed points:\n%s", second.Bytes())
	}
}

// TestStatusEndpointsDuringRun serves the obs status handler while a
// quick-scale experiment runs and checks that /progress reports the sweep
// and /metrics parses as a schema-versioned snapshot. The endpoints are
// polled concurrently with the run; whatever interleaving occurs, the final
// state must show the completed sweep.
func TestStatusEndpointsDuringRun(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	obs.ResetProgress()
	defer obs.ResetProgress()

	srv := httptest.NewServer(obs.StatusHandler(obs.Default))
	defer srv.Close()

	e, _ := Find("acceptance-general")
	done := make(chan error, 1)
	go func() {
		_, err := Run(e, Config{Seed: 7, SetsPerPoint: 16, Quick: true, Workers: 2})
		done <- err
	}()
	// Poll once mid-run (best effort — the run may already be over) and
	// then assert on the settled state.
	pollProgress(t, srv)
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}

	states := fetchProgress(t, srv)
	var e2 *obs.MeterState
	for i := range states {
		if states[i].Label == "acceptance-general" {
			e2 = &states[i]
		}
	}
	if e2 == nil || e2.Done != e2.Total || e2.Done == 0 {
		t.Fatalf("settled /progress missing completed sweep: %+v", states)
	}

	req, _ := http.NewRequest("GET", srv.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/json")
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var exp obs.SnapshotExport
	if err := json.Unmarshal(body, &exp); err != nil {
		t.Fatalf("/metrics: %v\n%s", err, body)
	}
	if exp.Schema != obs.SnapshotSchemaVersion ||
		(obs.Snapshot{Counters: exp.Counters}).Get("rta.calls") == 0 {
		t.Fatalf("/metrics snapshot wrong:\n%s", body)
	}
}

func pollProgress(t *testing.T, srv *httptest.Server) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

func fetchProgress(t *testing.T, srv *httptest.Server) []obs.MeterState {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/progress")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var prog struct {
		Sweeps []obs.MeterState `json:"sweeps"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&prog); err != nil {
		t.Fatal(err)
	}
	return prog.Sweeps
}
