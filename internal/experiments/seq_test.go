package experiments

import (
	"math"
	"testing"
)

// TestSeqPointCounts pins the exact point count and endpoints of every
// sweep range the experiments use. The old accumulating implementation
// (`for v := from; v <= to+1e-9; v += step`) silently dropped the last
// point of ranges whose step is not exactly representable — most visibly
// seq(0.65, 0.95, 0.10), whose accumulated 0.95 lands above the tolerance
// and vanished from every quick acceptance sweep.
func TestSeqPointCounts(t *testing.T) {
	cases := []struct {
		from, to, step float64
		want           int
	}{
		// Every range used by the experiments package, full and quick scale.
		{0.60, 1.00, 0.025, 17},
		{0.65, 0.95, 0.10, 4},
		{0.70, 1.00, 0.02, 16},
		{0.75, 1.00, 0.125, 3},
		{0.70, 0.95, 0.025, 11},
		{0.70, 0.90, 0.10, 3},
		{0.60, 1.00, 0.05, 9},
		{0.65, 0.95, 0.15, 3},
		{0.70, 1.00, 0.025, 13},
		{0.75, 0.95, 0.10, 3},
	}
	for _, c := range cases {
		got := seq(c.from, c.to, c.step)
		if len(got) != c.want {
			t.Errorf("seq(%g, %g, %g): %d points %v, want %d",
				c.from, c.to, c.step, len(got), got, c.want)
			continue
		}
		if got[0] != c.from {
			t.Errorf("seq(%g, %g, %g): first point %g", c.from, c.to, c.step, got[0])
		}
		if math.Abs(got[len(got)-1]-c.to) > 1e-9 {
			t.Errorf("seq(%g, %g, %g): last point %g, want %g (endpoint dropped)",
				c.from, c.to, c.step, got[len(got)-1], c.to)
		}
		for i := 1; i < len(got); i++ {
			if d := got[i] - got[i-1]; math.Abs(d-c.step) > 1e-9 {
				t.Errorf("seq(%g, %g, %g): spacing %g at %d", c.from, c.to, c.step, d, i)
			}
		}
	}
}
