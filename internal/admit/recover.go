package admit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
)

// Startup recovery (DESIGN.md §14). Per shard, the durable state is the
// last atomic snapshot (a quiescent cut at journal sequence snap.Seq) plus
// the journal tail. Recovery:
//
//  1. rebuilds every snapshotted cluster by restoring each resident's
//     *recorded* placement via Online.RestoreResident in handle order —
//     never by re-deciding placement, which would be unsound (the original
//     decisions saw intermediate states containing since-removed tasks) —
//     and re-derives the warm rta.ProcState caches as a side effect;
//  2. scans the journal, tolerating exactly one torn record at the tail —
//     a final line missing its newline terminator, the signature of a
//     crash mid-append: the torn bytes are truncated away and counted. A
//     malformed newline-terminated record anywhere (including the final
//     line: it was written whole, so an unparseable one is in-place
//     corruption, possibly of an fsync-acknowledged mutation), a sequence
//     gap, or a schema-version mismatch is corruption, and recovery
//     refuses to start rather than serve silently wrong state;
//  3. replays records with seq > snap.Seq through the real engine. Replayed
//     admissions re-run Online.Admit and must reproduce the journaled
//     handle and processor exactly — a free end-to-end integrity check that
//     the recovered snapshot state is the state the journal was written
//     against;
//  4. folds the replayed tail into a fresh snapshot, so the next crash
//     replays from here instead of accumulating history.
//
// Counter semantics after recovery: the durable counters (accepted,
// removed, and one request per replayed acceptance) are exact; the
// volatile traffic counters (rejections, cache hits, and the requests that
// carried them) restart from the last snapshot, because rejections are
// deliberately not journaled. A clean Close writes a final snapshot, so a
// clean restart restores Status byte-identically.

// ErrCorrupt wraps journal/snapshot states that recovery refuses to load.
var ErrCorrupt = errors.New("admit: corrupt journal state")

// Recovery gauges: what the last AttachJournal rebuilt and how long it
// took. Gauges (not counters) because they describe the most recent
// recovery, which a scraper reads as current state, not accumulation.
// Registered in the Default registry at package init — safe because the
// batch harness never imports internal/admit, so its metric exports are
// unchanged.
var (
	gRecoverClusters  = obs.NewGauge("admit.recover.clusters")
	gRecoverResidents = obs.NewGauge("admit.recover.residents")
	gRecoverReplayed  = obs.NewGauge("admit.recover.replayed")
	gRecoverTornTails = obs.NewGauge("admit.recover.torn_tails")
	gRecoverDurUS     = obs.NewGauge("admit.recover.duration_us")
)

// RecoveryStats summarizes what AttachJournal rebuilt.
type RecoveryStats struct {
	// Clusters and Residents count the recovered registry contents.
	Clusters  int `json:"clusters"`
	Residents int `json:"residents"`
	// Replayed counts journal records applied on top of snapshots.
	Replayed int `json:"replayed"`
	// TornTails counts shards whose journal ended in a truncated-away
	// partial record (at most one per shard by construction).
	TornTails int `json:"tornTails"`
}

// AttachJournal makes the service durable: it recovers any prior state from
// cfg.Dir (created if missing), then journals every later mutation. It must
// be called on a fresh, empty service before any traffic; on error the
// service is unusable and the process should exit rather than serve
// unrecovered state.
func (s *Service) AttachJournal(cfg JournalConfig) (RecoveryStats, error) {
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	var rs RecoveryStats
	if s.j != nil {
		return rs, errors.New("admit: journal already attached")
	}
	if len(s.Names()) != 0 {
		return rs, errors.New("admit: AttachJournal requires an empty service")
	}
	if cfg.Dir == "" {
		return rs, errors.New("admit: journal directory must not be empty")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return rs, err
	}
	if err := s.checkMeta(cfg.Dir); err != nil {
		return rs, err
	}

	j := &Journal{
		cfg:    cfg,
		svc:    s,
		shards: make([]*shardJournal, len(s.shards)),
		stop:   make(chan struct{}),
		kick:   make(chan struct{}, 1),
	}
	needFold := make([]bool, len(s.shards))
	for i := range s.shards {
		sh := &shardJournal{idx: i, dir: cfg.Dir}
		fold, err := s.recoverShard(sh, &rs)
		if err != nil {
			for _, prev := range j.shards {
				if prev != nil && prev.file != nil {
					prev.file.Close()
				}
			}
			return rs, fmt.Errorf("shard %d: %w", i, err)
		}
		j.shards[i] = sh
		needFold[i] = fold
	}
	for _, c := range rs.countClusters(s) {
		c.j, c.jr = j, j.shards[s.shardIndex(c.name)]
	}
	s.j = j
	// Fold any replayed or torn tail into a fresh snapshot before taking
	// traffic, so the recovered state is durable at rest immediately. A
	// failure here (e.g. an injected rename fault) is not fatal: the WAL
	// that just recovered us is still on disk and still recovers us.
	for i, sh := range j.shards {
		if needFold[i] {
			_ = j.snapshotShard(sh)
		}
	}
	j.flusherWG.Add(1)
	go j.flusher()
	gRecoverClusters.Set(int64(rs.Clusters))
	gRecoverResidents.Set(int64(rs.Residents))
	gRecoverReplayed.Set(int64(rs.Replayed))
	gRecoverTornTails.Set(int64(rs.TornTails))
	if !t0.IsZero() {
		gRecoverDurUS.Set(time.Since(t0).Microseconds())
	}
	return rs, nil
}

// countClusters fills the cluster/resident totals and returns every
// recovered cluster so AttachJournal can wire its journal pointers.
func (rs *RecoveryStats) countClusters(s *Service) []*Cluster {
	var all []*Cluster
	for i := range s.shards {
		for _, c := range s.shards[i].clusters {
			all = append(all, c)
			rs.Clusters++
			rs.Residents += c.eng.Len()
		}
	}
	return all
}

// checkMeta verifies (or stamps) the data directory's shard-count meta
// file: the cluster→shard mapping is part of the on-disk layout, so
// reopening with a different shard count would scatter clusters into the
// wrong journals.
func (s *Service) checkMeta(dir string) error {
	path := filepath.Join(dir, "meta.json")
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return writeFileAtomic(path, metaFile{Version: metaSchemaVersion, Shards: len(s.shards)})
	}
	if err != nil {
		return err
	}
	var meta metaFile
	if err := json.Unmarshal(data, &meta); err != nil {
		return fmt.Errorf("%w: meta.json: %v", ErrCorrupt, err)
	}
	if meta.Version != metaSchemaVersion {
		return fmt.Errorf("%w: meta.json schema v%d, want v%d", ErrCorrupt, meta.Version, metaSchemaVersion)
	}
	if meta.Shards != len(s.shards) {
		return fmt.Errorf("admit: data dir %s was written with %d shards, service has %d (shard count is part of the on-disk layout)",
			dir, meta.Shards, len(s.shards))
	}
	return nil
}

// recoverShard loads one shard's snapshot, replays its journal tail, and
// leaves sh.file open for appends. It reports whether the shard has WAL
// history worth folding into a fresh snapshot.
func (s *Service) recoverShard(sh *shardJournal, rs *RecoveryStats) (bool, error) {
	snapSeq, err := s.loadSnapshot(sh.dir, sh.idx)
	if err != nil {
		return false, err
	}
	sh.seq = snapSeq

	wal, err := os.ReadFile(walPath(sh.dir, sh.idx))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return false, err
	}
	goodLen, err := s.replayWAL(sh, wal, snapSeq, rs)
	if err != nil {
		return false, err
	}

	f, err := os.OpenFile(walPath(sh.dir, sh.idx), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return false, err
	}
	if err := f.Truncate(int64(goodLen)); err != nil {
		f.Close()
		return false, err
	}
	if _, err := f.Seek(int64(goodLen), io.SeekStart); err != nil {
		f.Close()
		return false, err
	}
	sh.file = f
	sh.off = int64(goodLen)
	return len(wal) > 0, nil
}

// loadSnapshot rebuilds a shard's clusters from its snapshot file (if any)
// and returns the snapshot's journal sequence high-water.
func (s *Service) loadSnapshot(dir string, idx int) (uint64, error) {
	data, err := os.ReadFile(snapPath(dir, idx))
	if errors.Is(err, os.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	var snap snapshotFile
	if err := json.Unmarshal(data, &snap); err != nil {
		return 0, fmt.Errorf("%w: snapshot: %v", ErrCorrupt, err)
	}
	if snap.Version != snapshotSchemaVersion {
		return 0, fmt.Errorf("%w: snapshot schema v%d, want v%d", ErrCorrupt, snap.Version, snapshotSchemaVersion)
	}
	if snap.Shard != idx {
		return 0, fmt.Errorf("%w: snapshot labeled shard %d in file of shard %d", ErrCorrupt, snap.Shard, idx)
	}
	reg := &s.shards[idx]
	for _, cs := range snap.Clusters {
		if s.shardIndex(cs.Name) != idx {
			return 0, fmt.Errorf("%w: snapshot carries cluster %q that hashes to another shard", ErrCorrupt, cs.Name)
		}
		if _, ok := reg.clusters[cs.Name]; ok {
			return 0, fmt.Errorf("%w: duplicate cluster %q in snapshot", ErrCorrupt, cs.Name)
		}
		eng, err := partition.NewOnline(cs.M, cs.Policy, cs.Surcharge)
		if err != nil {
			return 0, fmt.Errorf("%w: cluster %q: %v", ErrCorrupt, cs.Name, err)
		}
		for _, r := range cs.Residents {
			if err := eng.RestoreResident(r.P, r.H, r.C, r.T, r.D); err != nil {
				return 0, fmt.Errorf("%w: cluster %q handle %d: %v", ErrCorrupt, cs.Name, r.H, err)
			}
		}
		if err := eng.SetHandleSeq(cs.NextHandle); err != nil {
			return 0, fmt.Errorf("%w: cluster %q: %v", ErrCorrupt, cs.Name, err)
		}
		c := &Cluster{name: cs.Name, eng: eng, cacheCap: defaultCacheCap}
		c.restoreStats(cs.Stats)
		reg.clusters[cs.Name] = c
	}
	return snap.Seq, nil
}

// replayWAL applies one shard's journal tail on top of its snapshot state.
// It returns the byte length of the valid prefix (the torn tail, if any, is
// excluded and will be truncated by the caller).
func (s *Service) replayWAL(sh *shardJournal, wal []byte, snapSeq uint64, rs *RecoveryStats) (int, error) {
	goodLen := 0
	prevSeq := uint64(0)
	for off := 0; off < len(wal); {
		nl := bytes.IndexByte(wal[off:], '\n')
		if nl < 0 {
			// No terminator: a crash mid-append left a partial record.
			cJournalTornTails.Inc()
			rs.TornTails++
			break
		}
		line := wal[off : off+nl]
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn append persists a prefix of record+'\n', and the record
			// bytes never contain a raw newline — so a newline-terminated
			// line was written whole, and failing to parse it means the
			// record was corrupted after the append (bit rot, partial page
			// persist). That may be an fsync-acknowledged mutation: refuse to
			// start rather than silently drop it. Only a tail with no
			// terminator (the break above the loop exit) is auto-repaired.
			return 0, fmt.Errorf("%w: malformed record at byte %d: %v", ErrCorrupt, off, err)
		}
		if rec.V != walSchemaVersion {
			return 0, fmt.Errorf("%w: record schema v%d, want v%d", ErrCorrupt, rec.V, walSchemaVersion)
		}
		if prevSeq == 0 {
			if rec.Seq == 0 || rec.Seq > snapSeq+1 {
				return 0, fmt.Errorf("%w: journal starts at seq %d but snapshot covers through %d (gap)", ErrCorrupt, rec.Seq, snapSeq)
			}
		} else if rec.Seq != prevSeq+1 {
			return 0, fmt.Errorf("%w: sequence gap %d → %d", ErrCorrupt, prevSeq, rec.Seq)
		}
		if rec.Seq > snapSeq {
			if err := s.applyRecord(sh.idx, rec); err != nil {
				return 0, err
			}
			cJournalReplayed.Inc()
			rs.Replayed++
		}
		if rec.Seq > sh.seq {
			sh.seq = rec.Seq
		}
		prevSeq = rec.Seq
		off += nl + 1
		goodLen = off
	}
	return goodLen, nil
}

// applyRecord replays one journal record through the real engine. Every
// replay is checked against what the journal recorded: a journaled
// admission must be re-accepted onto the same processor with the same
// handle, a journaled removal must find its resident, a journaled create
// must not collide — any disagreement means the on-disk state is not the
// state this journal was written against.
func (s *Service) applyRecord(shardIdx int, rec walRecord) error {
	if s.shardIndex(rec.Cluster) != shardIdx {
		return fmt.Errorf("%w: record for cluster %q in journal of shard %d", ErrCorrupt, rec.Cluster, shardIdx)
	}
	reg := &s.shards[shardIdx]
	switch rec.Op {
	case opCreate:
		if _, ok := reg.clusters[rec.Cluster]; ok {
			return fmt.Errorf("%w: replayed create of existing cluster %q", ErrCorrupt, rec.Cluster)
		}
		eng, err := partition.NewOnline(rec.M, rec.Policy, task.Time(rec.Surcharge))
		if err != nil {
			return fmt.Errorf("%w: replayed create of %q: %v", ErrCorrupt, rec.Cluster, err)
		}
		reg.clusters[rec.Cluster] = &Cluster{name: rec.Cluster, eng: eng, cacheCap: defaultCacheCap}
	case opAdmit:
		c, ok := reg.clusters[rec.Cluster]
		if !ok {
			return fmt.Errorf("%w: replayed admit into unknown cluster %q", ErrCorrupt, rec.Cluster)
		}
		pl, err := c.eng.Admit(task.Task{Name: rec.Task, C: rec.C, T: rec.T, D: rec.D})
		if err != nil {
			return fmt.Errorf("%w: journaled admission (cluster %q, handle %d) re-rejected on replay: %v", ErrCorrupt, rec.Cluster, rec.Handle, err)
		}
		if pl.Handle != rec.Handle || pl.Proc != rec.Proc1-1 {
			return fmt.Errorf("%w: replayed admission diverged: journal says handle %d proc %d, engine says handle %d proc %d",
				ErrCorrupt, rec.Handle, rec.Proc1-1, pl.Handle, pl.Proc)
		}
		c.stats.Requests.Add(1)
		c.stats.Accepted.Add(1)
	case opRemove:
		c, ok := reg.clusters[rec.Cluster]
		if !ok {
			return fmt.Errorf("%w: replayed remove in unknown cluster %q", ErrCorrupt, rec.Cluster)
		}
		if !c.eng.Remove(rec.Handle) {
			return fmt.Errorf("%w: replayed remove of absent handle %d in cluster %q", ErrCorrupt, rec.Handle, rec.Cluster)
		}
		c.stats.Removed.Add(1)
	case opDelete:
		if _, ok := reg.clusters[rec.Cluster]; !ok {
			return fmt.Errorf("%w: replayed delete of unknown cluster %q", ErrCorrupt, rec.Cluster)
		}
		delete(reg.clusters, rec.Cluster)
	default:
		return fmt.Errorf("%w: unknown op %q", ErrCorrupt, rec.Op)
	}
	return nil
}
