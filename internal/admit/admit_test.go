package admit

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/partition"
	"repro/internal/task"
)

// admitNow and removeNow are the no-context, must-not-error call shapes:
// on an unjournaled cluster with a background context the error return is
// structurally nil, so any error here is a test bug worth failing loudly.
func admitNow(tb testing.TB, c *Cluster, tk task.Task) Result {
	tb.Helper()
	res, err := c.Admit(context.Background(), tk)
	if err != nil {
		tb.Fatalf("Admit(%v): %v", tk, err)
	}
	return res
}

func removeNow(tb testing.TB, c *Cluster, h uint64) bool {
	tb.Helper()
	ok, err := c.Remove(context.Background(), h)
	if err != nil {
		tb.Fatalf("Remove(%d): %v", h, err)
	}
	return ok
}

func deleteNow(tb testing.TB, s *Service, name string) bool {
	tb.Helper()
	ok, err := s.Delete(context.Background(), name)
	if err != nil {
		tb.Fatalf("Delete(%q): %v", name, err)
	}
	return ok
}

func TestServiceRegistry(t *testing.T) {
	s := NewService(4)
	if _, err := s.Create(context.Background(), "", 2, "", 0); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.Create(context.Background(), "a", 0, "", 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := s.Create(context.Background(), "a", 2, "nope", 0); err == nil {
		t.Error("bad policy accepted")
	}
	c, err := s.Create(context.Background(), "a", 2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "a" {
		t.Errorf("Name() = %q", c.Name())
	}
	if _, err := s.Create(context.Background(), "a", 2, "", 0); err == nil {
		t.Error("duplicate name accepted")
	}
	if got, ok := s.Get("a"); !ok || got != c {
		t.Error("Get(a) did not return the created cluster")
	}
	if _, ok := s.Get("b"); ok {
		t.Error("Get(b) found a ghost")
	}
	// Names across shards, sorted.
	for _, n := range []string{"z", "m", "b"} {
		if _, err := s.Create(context.Background(), n, 1, "", 0); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Names(); !reflect.DeepEqual(got, []string{"a", "b", "m", "z"}) {
		t.Errorf("Names() = %v", got)
	}
	if !deleteNow(t, s, "m") || deleteNow(t, s, "m") {
		t.Error("Delete semantics broken")
	}
	if _, ok := s.Get("m"); ok {
		t.Error("deleted cluster still reachable")
	}
}

// TestDeletedClusterRefusesMutations pins the stale-handle contract:
// once Delete returns, a *Cluster obtained before the delete can no longer
// mutate — Admit and Remove fail with ErrDeleted instead of silently
// operating on unregistered (and, when journaled, undurable) state.
func TestDeletedClusterRefusesMutations(t *testing.T) {
	s := NewService(4)
	c, err := s.Create(context.Background(), "victim", 2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	res := admitNow(t, c, task.Task{C: 1, T: 10})
	if !res.Accepted {
		t.Fatalf("setup admit rejected: %+v", res)
	}
	if !deleteNow(t, s, "victim") {
		t.Fatal("delete missed")
	}
	if _, err := c.Admit(context.Background(), task.Task{C: 1, T: 10}); !errors.Is(err, ErrDeleted) {
		t.Errorf("stale Admit err = %v, want ErrDeleted", err)
	}
	if _, err := c.Remove(context.Background(), res.Handle); !errors.Is(err, ErrDeleted) {
		t.Errorf("stale Remove err = %v, want ErrDeleted", err)
	}
	// A recreated same-name cluster is a fresh tenant, unaffected by the
	// old handle's fate.
	c2, err := s.Create(context.Background(), "victim", 2, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res := admitNow(t, c2, task.Task{C: 1, T: 10}); !res.Accepted {
		t.Errorf("recreated cluster rejected a fresh admit: %+v", res)
	}
}

// TestClusterCacheEquivalence drives identical random churn through a
// cached cluster and a twin with the cache disabled (cap 0), checking every
// Result is identical modulo the CacheHit marker — the soundness contract
// of the canonical-key memo.
func TestClusterCacheEquivalence(t *testing.T) {
	for _, policy := range partition.OnlinePolicies() {
		t.Run(policy, func(t *testing.T) {
			s := NewService(1)
			cached, err := s.Create(context.Background(), "cached-"+policy, 2, policy, 1)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := s.Create(context.Background(), "plain-"+policy, 2, policy, 1)
			if err != nil {
				t.Fatal(err)
			}
			plain.cacheCap = 0 // cleared before every insert: no hit can survive

			r := rand.New(rand.NewSource(41))
			var live []uint64
			hits := 0
			for op := 0; op < 600; op++ {
				if len(live) > 0 && r.Intn(3) == 0 {
					h := live[r.Intn(len(live))]
					a, b := removeNow(t, cached, h), removeNow(t, plain, h)
					if a != b {
						t.Fatalf("op %d: Remove(%d) diverged: %v vs %v", op, h, a, b)
					}
					if a {
						for i, x := range live {
							if x == h {
								live = append(live[:i], live[i+1:]...)
								break
							}
						}
					}
					continue
				}
				// A small parameter space so repeats (and thus cache hits) occur.
				T := task.Time(10 * (1 + r.Intn(6)))
				tk := task.Task{C: 1 + task.Time(r.Intn(int(T)/2)), T: T}
				if policy != partition.OnlineThreshold && r.Intn(3) == 0 {
					tk.D = tk.C + task.Time(r.Intn(int(T-tk.C)+1))
				}
				a := admitNow(t, cached, tk)
				b := admitNow(t, plain, tk)
				if a.CacheHit {
					hits++
				}
				a.CacheHit, b.CacheHit = false, false
				if !reflect.DeepEqual(a, b) {
					t.Fatalf("op %d task %s: cached %+v vs plain %+v", op, tk, a, b)
				}
				if a.Accepted {
					live = append(live, a.Handle)
				}
			}
			if hits == 0 {
				t.Error("cache never hit; the equivalence run proved nothing")
			}
		})
	}
}

// TestClusterAdmitRejectShapes pins the Result surface: evidence on
// analyzed rejections, none on input errors, handles usable for Remove.
func TestClusterAdmitRejectShapes(t *testing.T) {
	s := NewService(0)
	c, err := s.Create(context.Background(), "t", 1, partition.OnlineRTAFirstFit, 0)
	if err != nil {
		t.Fatal(err)
	}
	ok := admitNow(t, c, task.Task{C: 5, T: 10})
	if !ok.Accepted || ok.Handle == 0 || ok.Proc != 0 || ok.Response != 5 {
		t.Fatalf("accept result: %+v", ok)
	}
	full := admitNow(t, c, task.Task{Name: "big", C: 8, T: 10})
	if full.Accepted || full.Cause != "rta-deadline-miss" || full.Proc != -1 {
		t.Fatalf("reject result: %+v", full)
	}
	if len(full.Evidence) != 1 || full.Evidence[0].Detail == nil || full.Evidence[0].Detail.OwnVerdict == "" {
		t.Fatalf("analyzed rejection lacks evidence: %+v", full.Evidence)
	}
	if full.CauseDetail == "" || full.Reason == "" {
		t.Fatalf("rejection lacks prose: %+v", full)
	}
	bad := admitNow(t, c, task.Task{C: 0, T: 10})
	if bad.Accepted || bad.Cause != "invalid-input" || bad.Evidence != nil {
		t.Fatalf("invalid-input result: %+v", bad)
	}
	if !removeNow(t, c, ok.Handle) || removeNow(t, c, ok.Handle) {
		t.Error("Remove semantics broken")
	}
	st := c.Status()
	if st.Tasks != 0 || st.M != 1 || len(st.Procs) != 1 || st.Stats.Requests != 3 ||
		st.Stats.Accepted != 1 || st.Stats.Rejected != 2 || st.Stats.Removed != 1 {
		t.Errorf("status: %+v", st)
	}
}

// TestClusterStatsConcurrent hammers one cluster and several tenants from
// many goroutines; run under -race this pins the striped-lock and atomic
// stats design.
func TestClusterStatsConcurrent(t *testing.T) {
	s := NewService(8)
	shared, err := s.Create(context.Background(), "shared", 4, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("tenant-%d", w)
			own, err := s.Create(context.Background(), name, 2, partition.OnlineRTAWorstFit, 0)
			if err != nil {
				t.Error(err)
				return
			}
			r := rand.New(rand.NewSource(int64(w)))
			var mine []uint64
			for i := 0; i < 200; i++ {
				for _, c := range []*Cluster{shared, own} {
					T := task.Time(10 + r.Intn(100))
					res, err := c.Admit(context.Background(), task.Task{C: 1 + task.Time(r.Intn(5)), T: T})
					if err != nil {
						t.Error(err)
						return
					}
					if res.Accepted && c == own {
						mine = append(mine, res.Handle)
					}
					c.StatsSnapshot() // lock-free read while others write
					c.Status()
				}
				if len(mine) > 4 {
					own.Remove(context.Background(), mine[0])
					mine = mine[1:]
				}
				s.Get("shared")
			}
		}(w)
	}
	wg.Wait()
	snap := shared.StatsSnapshot()
	if snap.Requests != 8*200 {
		t.Errorf("shared requests = %d, want %d", snap.Requests, 8*200)
	}
	if snap.Accepted+snap.Rejected != snap.Requests {
		t.Errorf("accepted %d + rejected %d != requests %d", snap.Accepted, snap.Rejected, snap.Requests)
	}
}

// TestCacheCapClears pins the bounded-cache policy: outgrowing the cap
// clears the map rather than evicting piecemeal.
func TestCacheCapClears(t *testing.T) {
	s := NewService(1)
	c, err := s.Create(context.Background(), "small", 1, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	c.cacheCap = 2
	// Saturate the processor so every distinct oversized task is rejected
	// and cached.
	if res := admitNow(t, c, task.Task{C: 9, T: 10}); !res.Accepted {
		t.Fatalf("setup admit failed: %+v", res)
	}
	for i := 0; i < 5; i++ {
		admitNow(t, c, task.Task{C: 50 + task.Time(i), T: 100})
	}
	c.mu.Lock()
	n := len(c.cache)
	c.mu.Unlock()
	if n > 2 {
		t.Errorf("cache grew to %d entries past its cap of 2", n)
	}
	// A repeat of the last rejection must still hit.
	if res := admitNow(t, c, task.Task{C: 54, T: 100}); !res.CacheHit {
		t.Error("repeat rejection missed the cache after a clear cycle")
	}
}
