package admit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"repro/internal/obs"
	"repro/internal/task"
)

// HTTP/JSON surface of the service (mounted by cmd/admitd, typically next
// to the obs status routes):
//
//	POST   /v1/clusters               {"name","m","policy","surcharge"}  → 201 Status
//	GET    /v1/clusters                                                  → 200 {"clusters":[Status...]}
//	GET    /v1/clusters/{name}                                           → 200 Status
//	DELETE /v1/clusters/{name}                                           → 204
//	POST   /v1/clusters/{name}/admit  {"name","c","t","d"}               → 200 Result
//	POST   /v1/clusters/{name}/remove {"handle"}                         → 200 {"removed":true}
//
// Both admission verdicts are 200s — a rejection is an analyzed answer, not
// a transport error (mirroring cmd/explain's exit-code contract, where only
// usage errors are distinguished from verdicts). Malformed requests are
// 400, unknown clusters and handles 404, duplicate cluster names 409.

// encBufs pools response-encoding buffers across requests, the service's
// per-request workspace (the same recycle-don't-reallocate discipline as
// experiments.Workspace on the batch side).
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxBodyBytes caps request bodies; admission requests are tiny.
const maxBodyBytes = 1 << 20

// CreateRequest is the POST /v1/clusters body.
type CreateRequest struct {
	Name      string `json:"name"`
	M         int    `json:"m"`
	Policy    string `json:"policy,omitempty"`
	Surcharge int64  `json:"surcharge,omitempty"`
}

// AdmitRequest is the POST /v1/clusters/{name}/admit body: one task in the
// paper's model (c, t, optional constrained deadline d, optional label).
type AdmitRequest struct {
	Name string `json:"name,omitempty"`
	C    int64  `json:"c"`
	T    int64  `json:"t"`
	D    int64  `json:"d,omitempty"`
}

// RemoveRequest is the POST /v1/clusters/{name}/remove body.
type RemoveRequest struct {
	Handle uint64 `json:"handle"`
}

// Handler returns the service's HTTP mux. The routes are also exported via
// Routes for mounting beside other handlers (the obs status server).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.Routes() {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Routes lists the service's endpoints (Go 1.22 method+path patterns) as
// obs routes, so cmd/admitd can mount them beside the status routes with
// obs.ServeWith and the "/" index names them.
func (s *Service) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "POST /v1/clusters", Handler: http.HandlerFunc(s.handleCreate)},
		{Pattern: "GET /v1/clusters", Handler: http.HandlerFunc(s.handleList)},
		{Pattern: "GET /v1/clusters/{name}", Handler: http.HandlerFunc(s.handleStatus)},
		{Pattern: "DELETE /v1/clusters/{name}", Handler: http.HandlerFunc(s.handleDelete)},
		{Pattern: "POST /v1/clusters/{name}/admit", Handler: http.HandlerFunc(s.handleAdmit)},
		{Pattern: "POST /v1/clusters/{name}/remove", Handler: http.HandlerFunc(s.handleRemove)},
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encBufs.Get().(*bytes.Buffer)
	defer encBufs.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes one JSON object into v.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: trailing data")
		return false
	}
	return true
}

func (s *Service) cluster(w http.ResponseWriter, r *http.Request) (*Cluster, bool) {
	name := r.PathValue("name")
	c, ok := s.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown cluster %q", name)
		return nil, false
	}
	return c, true
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c, err := s.Create(req.Name, req.M, req.Policy, task.Time(req.Surcharge))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrExists) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, c.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.Names()
	statuses := make([]Status, 0, len(names))
	for _, name := range names {
		if c, ok := s.Get(name); ok {
			statuses = append(statuses, c.Status())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"clusters": statuses})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	if !s.Delete(r.PathValue("name")) {
		writeError(w, http.StatusNotFound, "unknown cluster %q", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleAdmit(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	var req AdmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res := c.Admit(task.Task{Name: req.Name, C: req.C, T: req.T, D: req.D})
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleRemove(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	var req RemoveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if !c.Remove(req.Handle) {
		writeError(w, http.StatusNotFound, "no resident task with handle %d", req.Handle)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}
