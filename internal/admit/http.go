package admit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/task"
)

// HTTP/JSON surface of the service (mounted by cmd/admitd, typically next
// to the obs status routes):
//
//	POST   /v1/clusters               {"name","m","policy","surcharge"}  → 201 Status
//	GET    /v1/clusters                                                  → 200 {"clusters":[Status...]}
//	GET    /v1/clusters/{name}                                           → 200 Status
//	DELETE /v1/clusters/{name}                                           → 204
//	POST   /v1/clusters/{name}/admit  {"name","c","t","d"}               → 200 Result
//	POST   /v1/clusters/{name}/remove {"handle"}                         → 200 {"removed":true}
//
// Both admission verdicts are 200s — a rejection is an analyzed answer, not
// a transport error (mirroring cmd/explain's exit-code contract, where only
// usage errors are distinguished from verdicts). Malformed requests are
// 400, oversized bodies 413, unknown clusters and handles 404, duplicate
// cluster names 409. When a Gate is installed, a full wait queue on the
// admit and remove endpoints sheds with 429 + Retry-After; a journaled
// mutation that cannot be made durable — or a request whose deadline
// expires, whether queued at the gate or inside the handler — is 503.
//
// GET /v1/canon returns a digest-friendly hex dump of the registry's
// canonical state (Service.CanonicalState) — the crash-recovery smoke
// compares this across a SIGKILL/restart cycle.

// encBufs pools response-encoding buffers across requests, the service's
// per-request workspace (the same recycle-don't-reallocate discipline as
// experiments.Workspace on the batch side).
var encBufs = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// maxBodyBytes caps request bodies; admission requests are tiny.
const maxBodyBytes = 1 << 20

// CreateRequest is the POST /v1/clusters body.
type CreateRequest struct {
	Name      string `json:"name"`
	M         int    `json:"m"`
	Policy    string `json:"policy,omitempty"`
	Surcharge int64  `json:"surcharge,omitempty"`
}

// AdmitRequest is the POST /v1/clusters/{name}/admit body: one task in the
// paper's model (c, t, optional constrained deadline d, optional label).
type AdmitRequest struct {
	Name string `json:"name,omitempty"`
	C    int64  `json:"c"`
	T    int64  `json:"t"`
	D    int64  `json:"d,omitempty"`
}

// RemoveRequest is the POST /v1/clusters/{name}/remove body.
type RemoveRequest struct {
	Handle uint64 `json:"handle"`
}

// Handler returns the service's HTTP mux. The routes are also exported via
// Routes for mounting beside other handlers (the obs status server).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, r := range s.Routes() {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Routes lists the service's endpoints (Go 1.22 method+path patterns) as
// obs routes, so cmd/admitd can mount them beside the status routes with
// obs.ServeWith and the "/" index names them. Every route is wrapped in the
// tracing layer (trace.go), with the tracer *outside* the gate on the
// admission routes — a 429 shed must still echo the request ID and count in
// the route's RED metrics.
func (s *Service) Routes() []obs.Route {
	return []obs.Route{
		{Pattern: "POST /v1/clusters", Handler: s.traced("create", http.HandlerFunc(s.handleCreate))},
		{Pattern: "GET /v1/clusters", Handler: s.traced("list", http.HandlerFunc(s.handleList))},
		{Pattern: "GET /v1/clusters/{name}", Handler: s.traced("status", http.HandlerFunc(s.handleStatus))},
		{Pattern: "DELETE /v1/clusters/{name}", Handler: s.traced("delete", http.HandlerFunc(s.handleDelete))},
		{Pattern: "POST /v1/clusters/{name}/admit", Handler: s.traced("admit", s.gated(s.handleAdmit))},
		{Pattern: "POST /v1/clusters/{name}/remove", Handler: s.traced("remove", s.gated(s.handleRemove))},
		{Pattern: "GET /v1/canon", Handler: s.traced("canon", http.HandlerFunc(s.handleCanon))},
	}
}

// gated wraps an admission-path handler with the backpressure gate: derive
// the per-request deadline, claim an execution slot (bounded queue, 429 +
// Retry-After when shed), and thread the deadline context to the handler.
// With no gate installed the handler runs bare. The injected
// HandlerLatency fault runs inside the held slot, so tests can saturate
// the gate deterministically.
func (s *Service) gated(h func(http.ResponseWriter, *http.Request)) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		g := s.gate
		if g == nil {
			h(w, r)
			return
		}
		ctx, cancel := g.requestContext(r.Context())
		defer cancel()
		if err := g.Acquire(ctx); err != nil {
			if errors.Is(err, ErrShed) {
				w.Header().Set("Retry-After", g.retryAfterSeconds())
				writeError(w, http.StatusTooManyRequests, "overloaded: admission gate saturated, retry later")
				return
			}
			// Deadline expired while queued: same 503 as expiring inside
			// the handler — the status depends on what happened, not where
			// the clock ran out.
			writeOpError(w, err)
			return
		}
		defer g.Release()
		if d := faultinject.HandlerLatencyDelay(); d > 0 {
			t := time.NewTimer(d)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		h(w, r.WithContext(ctx))
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	buf := encBufs.Get().(*bytes.Buffer)
	defer encBufs.Put(buf)
	buf.Reset()
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		http.Error(w, `{"error":"encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(buf.Bytes())
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decodeBody strictly decodes one JSON object into v. Oversized bodies are
// a clean 413 (http.MaxBytesReader both enforces the cap and tells the
// server to close the connection, the slow-client-safe behavior), not the
// truncation-induced 400 a bare LimitReader would produce.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, "bad request body: trailing data")
		return false
	}
	return true
}

func (s *Service) cluster(w http.ResponseWriter, r *http.Request) (*Cluster, bool) {
	name := r.PathValue("name")
	c, ok := s.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown cluster %q", name)
		return nil, false
	}
	return c, true
}

func (s *Service) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if !decodeBody(w, r, &req) {
		return
	}
	c, err := s.Create(r.Context(), req.Name, req.M, req.Policy, task.Time(req.Surcharge))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrExists) {
			code = http.StatusConflict
		}
		writeError(w, code, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, c.Status())
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	names := s.Names()
	statuses := make([]Status, 0, len(names))
	for _, name := range names {
		if c, ok := s.Get(name); ok {
			statuses = append(statuses, c.Status())
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"clusters": statuses})
}

func (s *Service) handleStatus(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Service) handleDelete(w http.ResponseWriter, r *http.Request) {
	ok, err := s.Delete(r.Context(), r.PathValue("name"))
	if err != nil {
		writeOpError(w, err)
		return
	}
	if !ok {
		writeError(w, http.StatusNotFound, "unknown cluster %q", r.PathValue("name"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Service) handleAdmit(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	var req AdmitRequest
	if !decodeBody(w, r, &req) {
		return
	}
	res, err := c.Admit(r.Context(), task.Task{Name: req.Name, C: req.C, T: req.T, D: req.D})
	if err != nil {
		writeOpError(w, err)
		return
	}
	// Attribute the verdict on the trace info so the access log and the
	// slow-request ring can tell a slow rejection from a slow acceptance.
	if ri, ok := r.Context().Value(reqInfoKey{}).(*ReqInfo); ok {
		if res.Accepted {
			ri.Verdict = "accepted"
		} else {
			ri.Verdict, ri.Cause = "rejected", res.Cause
		}
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleRemove(w http.ResponseWriter, r *http.Request) {
	c, ok := s.cluster(w, r)
	if !ok {
		return
	}
	var req RemoveRequest
	if !decodeBody(w, r, &req) {
		return
	}
	removed, err := c.Remove(r.Context(), req.Handle)
	if err != nil {
		writeOpError(w, err)
		return
	}
	if !removed {
		writeError(w, http.StatusNotFound, "no resident task with handle %d", req.Handle)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"removed": true})
}

// writeOpError maps service-level operation failures: durability failures
// and expired request deadlines are both 503 — the request may well
// succeed on retry, nothing about it was invalid. A cluster deleted
// between lookup and operation is 404, exactly as if the lookup had
// missed.
func writeOpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrDeleted):
		writeError(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, ErrDurability):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeError(w, http.StatusServiceUnavailable, "request deadline expired before admission ran")
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Service) handleCanon(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"canon": fmt.Sprintf("%x", s.CanonicalState())})
}
