package admit

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Backpressure (DESIGN.md §14): the admission endpoints are guarded by a
// concurrency gate — a fixed pool of execution slots plus a bounded wait
// queue. A request either gets a slot, waits its turn in the queue, or is
// shed immediately with 429 and a Retry-After hint when the queue is full.
// Shedding at the door is the point: under overload the server stays at
// its best-throughput concurrency and answers every excess request
// cheaply, instead of degrading everyone behind an unbounded pile-up.
//
// Deadlines compose with the gate: the HTTP layer derives a per-request
// context deadline (Gate timeout flag), the queue wait honors it, and the
// same context threads through Cluster.Admit so a request whose client has
// given up stops consuming the cluster lock.

// Gate instrumentation (no-ops unless obs.SetEnabled).
var (
	cGateAdmitted = obs.NewCounter("admit.gate.admitted")
	cGateQueued   = obs.NewCounter("admit.gate.queued")
	cGateShed     = obs.NewCounter("admit.gate.shed")
	cGateExpired  = obs.NewCounter("admit.gate.expired")
)

// ErrShed is returned by Gate.Acquire when the wait queue is full — the
// gate genuinely shed load, and the HTTP layer answers 429 + Retry-After.
// A deadline expiring while queued returns ctx.Err() instead, mapped to
// 503 like every other deadline expiry, so one client timeout never
// splits into two different statuses by where it struck.
var ErrShed = errors.New("admit: overloaded, request shed")

// GateConfig sizes the admission gate. The zero value gets sensible
// defaults; explicit values are validated by NewGate.
type GateConfig struct {
	// MaxConcurrent is the number of execution slots. Zero means
	// 2×GOMAXPROCS — admissions are CPU-bound analysis, so slots beyond
	// the core count only add lock convoying.
	MaxConcurrent int
	// MaxQueue bounds how many requests may wait for a slot before the
	// gate sheds. Zero means 4×MaxConcurrent.
	MaxQueue int
	// Timeout is the per-request deadline the HTTP layer derives (queue
	// wait plus handler). Zero means 1s; negative disables deadlines.
	Timeout time.Duration
	// RetryAfter is the hint shed responses carry. Zero means 1s.
	RetryAfter time.Duration
}

func (cfg *GateConfig) maxConcurrent() int {
	if cfg.MaxConcurrent <= 0 {
		return 2 * runtime.GOMAXPROCS(0)
	}
	return cfg.MaxConcurrent
}

func (cfg *GateConfig) maxQueue() int {
	if cfg.MaxQueue <= 0 {
		return 4 * cfg.maxConcurrent()
	}
	return cfg.MaxQueue
}

func (cfg *GateConfig) timeout() time.Duration {
	switch {
	case cfg.Timeout == 0:
		return time.Second
	case cfg.Timeout < 0:
		return 0
	}
	return cfg.Timeout
}

func (cfg *GateConfig) retryAfter() time.Duration {
	if cfg.RetryAfter <= 0 {
		return time.Second
	}
	return cfg.RetryAfter
}

// Gate is the concurrency-limited admission gate.
type Gate struct {
	cfg     GateConfig
	slots   chan struct{}
	waiters atomic.Int64
}

// NewGate builds a gate from cfg (zero fields defaulted).
func NewGate(cfg GateConfig) *Gate {
	return &Gate{cfg: cfg, slots: make(chan struct{}, cfg.maxConcurrent())}
}

// SetGate installs g in front of the service's admission endpoints
// (admit and remove). Pass nil to remove it. Not safe to call while
// requests are in flight — wire the gate at startup.
func (s *Service) SetGate(g *Gate) { s.gate = g }

// Gate returns the installed admission gate, if any.
func (s *Service) Gate() *Gate { return s.gate }

// Acquire claims an execution slot, queuing (bounded) if none is free. It
// returns ErrShed when the queue is full and ctx.Err() when the context
// expires while waiting; on success the caller must Release.
func (g *Gate) Acquire(ctx context.Context) error {
	select {
	case g.slots <- struct{}{}:
		cGateAdmitted.Inc()
		return nil
	default:
	}
	if g.waiters.Add(1) > int64(g.cfg.maxQueue()) {
		g.waiters.Add(-1)
		cGateShed.Inc()
		return ErrShed
	}
	defer g.waiters.Add(-1)
	cGateQueued.Inc()
	select {
	case g.slots <- struct{}{}:
		cGateAdmitted.Inc()
		return nil
	case <-ctx.Done():
		cGateExpired.Inc()
		return ctx.Err()
	}
}

// Release returns a slot claimed by Acquire.
func (g *Gate) Release() { <-g.slots }

// retryAfterSeconds renders the Retry-After header value (whole seconds,
// rounded up — the header has one-second resolution).
func (g *Gate) retryAfterSeconds() string {
	secs := int64((g.cfg.retryAfter() + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// requestContext derives the per-request deadline context (identity when
// deadlines are disabled).
func (g *Gate) requestContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if d := g.cfg.timeout(); d > 0 {
		return context.WithTimeout(ctx, d)
	}
	return ctx, func() {}
}
