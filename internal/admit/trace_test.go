package admit

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
)

// doTraced issues one request with an optional inbound X-Request-Id and
// returns the recorder.
func doTraced(h http.Handler, method, path, body, reqID string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

// TestRequestIDPropagation pins the ID contract: a usable client ID is
// echoed verbatim, a missing or unusable one is replaced with a generated
// process-unique ID, and generated IDs are distinct across requests.
func TestRequestIDPropagation(t *testing.T) {
	h := NewService(4).Handler()
	if w := doTraced(h, "POST", "/v1/clusters", `{"name":"edge","m":2}`, "client-abc-123"); w.Header().Get(RequestIDHeader) != "client-abc-123" {
		t.Fatalf("usable client ID not echoed: %q", w.Header().Get(RequestIDHeader))
	}
	w1 := doTraced(h, "GET", "/v1/clusters", "", "")
	w2 := doTraced(h, "GET", "/v1/clusters", "", "")
	id1, id2 := w1.Header().Get(RequestIDHeader), w2.Header().Get(RequestIDHeader)
	if id1 == "" || id2 == "" || id1 == id2 {
		t.Fatalf("generated IDs bad: %q / %q", id1, id2)
	}
	for name, bad := range map[string]string{
		"control chars": "evil\nid",
		"non-ascii":     "idé",
		"too long":      strings.Repeat("x", maxRequestIDLen+1),
	} {
		w := doTraced(h, "GET", "/v1/clusters", "", bad)
		if got := w.Header().Get(RequestIDHeader); got == bad || got == "" {
			t.Errorf("%s: unusable client ID %q propagated as %q", name, bad, got)
		}
	}
}

// TestTracedREDMetrics drives a mix of successes and errors through one
// route and checks the per-route request/error counters, the latency
// histogram, and the per-cause rejection counters.
func TestTracedREDMetrics(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	s := NewService(4)
	h := s.Handler()
	if w := doTraced(h, "POST", "/v1/clusters", `{"name":"edge","m":1}`, ""); w.Code != 201 {
		t.Fatalf("setup: %d", w.Code)
	}
	// 2 accepted, saturate, then rejections; plus one 404 error.
	for i := 0; i < 4; i++ {
		if w := doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`, ""); w.Code != 200 {
			t.Fatalf("admit %d: %d", i, w.Code)
		}
	}
	if w := doTraced(h, "POST", "/v1/clusters/ghost/admit", `{"c":1,"t":10}`, ""); w.Code != 404 {
		t.Fatalf("ghost: %d", w.Code)
	}

	if got := obs.Value("admit.http.admit.requests"); got != 5 {
		t.Errorf("admit.requests = %d, want 5", got)
	}
	if got := obs.Value("admit.http.admit.errors"); got != 1 {
		t.Errorf("admit.errors = %d, want 1", got)
	}
	hv, ok := obs.Default.Snapshot().GetHistogram("admit.http.admit.latency_us")
	if !ok || hv.Count != 5 {
		t.Errorf("latency histogram = %+v ok=%v, want count 5", hv, ok)
	}
	// One processor at full utilization: admits 2..4 are analyzed rejections
	// attributed per partition cause.
	var total int64
	for _, cause := range partition.RejectionCauses() {
		total += obs.Value("admit.reject." + cause.String())
	}
	if total != 3 {
		t.Errorf("per-cause rejection counters sum %d, want 3", total)
	}
}

// TestTracedRingAndAccessLog wires both sinks and checks attribution: the
// ring retains errored and slow requests with verdicts, the access log gets
// one record per request with the cause on rejections.
func TestTracedRingAndAccessLog(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	s := NewService(4)
	ring := obs.NewRequestRing(16)
	var buf bytes.Buffer
	alog := obs.NewAccessLog(&buf, 1)
	s.SetTracing(TraceConfig{Ring: ring, SlowThreshold: time.Nanosecond, AccessLog: alog})
	h := s.Handler()

	if w := doTraced(h, "POST", "/v1/clusters", `{"name":"edge","m":1}`, "boot-1"); w.Code != 201 {
		t.Fatalf("setup: %d", w.Code)
	}
	if w := doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`, "ok-1"); w.Code != 200 {
		t.Fatalf("admit: %d", w.Code)
	}
	if w := doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`, "rej-1"); w.Code != 200 {
		t.Fatalf("reject: %d", w.Code)
	}
	if w := doTraced(h, "GET", "/v1/clusters/ghost", "", "err-1"); w.Code != 404 {
		t.Fatalf("ghost: %d", w.Code)
	}
	if err := alog.Close(); err != nil {
		t.Fatal(err)
	}

	recs := ring.Snapshot()
	if len(recs) != 4 { // SlowThreshold 1ns makes everything ring-worthy
		t.Fatalf("ring holds %d records: %+v", len(recs), recs)
	}
	byID := map[string]obs.RequestRecord{}
	for _, r := range recs {
		byID[r.ID] = r
	}
	if r := byID["rej-1"]; r.Verdict != "rejected" || r.Cause == "" || r.Tenant != "edge" || r.Route != "admit" {
		t.Errorf("rejection ring record = %+v", r)
	}
	if r := byID["ok-1"]; r.Verdict != "accepted" || r.Status != 200 {
		t.Errorf("acceptance ring record = %+v", r)
	}
	if r := byID["err-1"]; r.Status != 404 || r.Route != "status" {
		t.Errorf("error ring record = %+v", r)
	}

	n, err := obs.ValidateAccessLog(bytes.NewReader(buf.Bytes()))
	if err != nil || n != 4 {
		t.Fatalf("access log: %d records, err %v\n%s", n, err, buf.String())
	}
	if !strings.Contains(buf.String(), `"id":"rej-1"`) || !strings.Contains(buf.String(), `"verdict":"rejected"`) {
		t.Errorf("access log lacks rejection attribution:\n%s", buf.String())
	}
}

// TestRequestIDReachesJournal pins the trace→WAL join: an admission carrying
// a client request ID must produce a WAL record with that rid, and replay of
// such a journal must still succeed (rid is audit-only).
func TestRequestIDReachesJournal(t *testing.T) {
	dir := t.TempDir()
	s := NewService(0)
	// FsyncAlways puts every record on disk immediately; the WAL is read
	// below *before* Close, which folds it into snapshots (dropping the
	// audit-only rid) — exactly what a crash would leave behind.
	if _, err := s.AttachJournal(JournalConfig{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	if w := doTraced(h, "POST", "/v1/clusters", `{"name":"edge","m":2}`, "create-rid-7"); w.Code != 201 {
		t.Fatalf("create: %d", w.Code)
	}
	if w := doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":10}`, "admit-rid-9"); w.Code != 200 {
		t.Fatalf("admit: %d", w.Code)
	}
	var wal []byte
	matches, _ := filepath.Glob(filepath.Join(dir, "shard-*.wal"))
	for _, m := range matches {
		b, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		wal = append(wal, b...)
	}
	for _, want := range []string{`"rid":"create-rid-7"`, `"rid":"admit-rid-9"`} {
		if !bytes.Contains(wal, []byte(want)) {
			t.Errorf("WAL lacks %s:\n%s", want, wal)
		}
	}
	// The rid-bearing journal must replay cleanly on a fresh service — the
	// crash-recovery view of the same directory, first service abandoned.
	s2 := NewService(0)
	rs, err := s2.AttachJournal(JournalConfig{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("recovery over rid-bearing journal: %v", err)
	}
	if rs.Clusters != 1 || rs.Residents != 1 {
		t.Fatalf("recovered %d clusters / %d residents, want 1/1", rs.Clusters, rs.Residents)
	}
	s2.Close()
}

// TestGateQueueDepthGauge saturates the gate and scrapes the queue-depth and
// in-flight gauges live, alongside the shed counter — under -race this also
// pins that scraping during traffic is safe.
func TestGateQueueDepthGauge(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	s := NewService(4)
	gate := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 2, Timeout: 5 * time.Second, RetryAfter: time.Second})
	s.SetGate(gate)
	s.RegisterMetrics(nil)
	h := s.Handler()
	if w := doTraced(h, "POST", "/v1/clusters", `{"name":"edge","m":2}`, ""); w.Code != 201 {
		t.Fatalf("setup: %d", w.Code)
	}

	// Hold the only slot, then park two waiters in the queue.
	if err := gate.Acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":10}`, "")
		}()
	}
	deadline := time.Now().Add(time.Second)
	for gate.waiters.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}

	snap := obs.Default.Snapshot()
	if got := snap.GetGauge("admit.gate.queue_depth"); got != 2 {
		t.Errorf("queue_depth gauge = %d, want 2", got)
	}
	if got := snap.GetGauge("admit.gate.in_flight"); got != 1 {
		t.Errorf("in_flight gauge = %d, want 1", got)
	}

	// Queue full: the next request sheds, counted both by the gate counter
	// and the route's RED error counter.
	if w := doTraced(h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":10}`, "shed-1"); w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated admit: %d", w.Code)
	} else if w.Header().Get(RequestIDHeader) != "shed-1" {
		t.Errorf("shed response lost request ID: %q", w.Header().Get(RequestIDHeader))
	}
	if got := obs.Value("admit.gate.shed"); got != 1 {
		t.Errorf("gate.shed = %d, want 1", got)
	}
	if got := obs.Value("admit.http.admit.errors"); got < 1 {
		t.Errorf("admit route errors = %d, want ≥1 (the shed)", got)
	}

	gate.Release()
	wg.Wait()
	if got := obs.Default.Snapshot().GetGauge("admit.gate.queue_depth"); got != 0 {
		t.Errorf("queue_depth after drain = %d, want 0", got)
	}
	if got := obs.Default.Snapshot().GetGauge("admit.clusters"); got != 1 {
		t.Errorf("admit.clusters gauge = %d, want 1", got)
	}
}

// TestJournalDurabilityHistograms attaches a synchronous journal and checks
// the append/fsync latency and batch-size histograms fill, including under
// an injected fsync fault — the 503 path must not corrupt the telemetry.
func TestJournalDurabilityHistograms(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	s := NewService(0)
	if _, err := s.AttachJournal(JournalConfig{Dir: t.TempDir(), Fsync: FsyncAlways, SnapshotEvery: -1}); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := s.Create(context.Background(), "edge", 4, partition.OnlineRTAFirstFit, 0)
	if err != nil {
		t.Fatal(err)
	}
	const admits = 8
	for i := 0; i < admits; i++ {
		if _, err := c.Admit(context.Background(), task.Task{C: 1, T: task.Time(10 * (1 + i%3))}); err != nil {
			t.Fatal(err)
		}
	}
	snap := obs.Default.Snapshot()
	app, _ := snap.GetHistogram("admit.journal.append_us")
	fs, _ := snap.GetHistogram("admit.journal.fsync_us")
	batch, _ := snap.GetHistogram("admit.journal.flush_batch")
	if app.Count < admits {
		t.Errorf("append_us count = %d, want ≥%d", app.Count, admits)
	}
	if fs.Count < admits {
		t.Errorf("fsync_us count = %d, want ≥%d", fs.Count, admits)
	}
	if batch.Count != fs.Count || batch.Sum < admits {
		t.Errorf("flush_batch count=%d sum=%d vs fsync count=%d", batch.Count, batch.Sum, fs.Count)
	}

	// Injected fsync failure: the admission fails with ErrDurability and the
	// fsync histogram does not record the failed flush as a success.
	before, _ := obs.Default.Snapshot().GetHistogram("admit.journal.fsync_us")
	faultinject.Arm(faultinject.Plan{Seed: 1, JournalFsyncEvery: 1})
	_, err = c.Admit(context.Background(), task.Task{C: 1, T: 20})
	faultinject.Disarm()
	if err == nil {
		t.Fatal("admission survived injected fsync failure")
	}
	after, _ := obs.Default.Snapshot().GetHistogram("admit.journal.fsync_us")
	if after.Count != before.Count {
		t.Errorf("failed fsync recorded as success: %d → %d", before.Count, after.Count)
	}
}

// TestRecoveryGauges pins the AttachJournal telemetry: after a recovery the
// admit.recover.* gauges report what was rebuilt.
func TestRecoveryGauges(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	obs.Reset()
	dir := t.TempDir()
	s := NewService(0)
	if _, err := s.AttachJournal(JournalConfig{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1}); err != nil {
		t.Fatal(err)
	}
	c, err := s.Create(context.Background(), "edge", 4, partition.OnlineRTAFirstFit, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := c.Admit(context.Background(), task.Task{C: 1, T: task.Time(10 + 10*i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := NewService(0)
	rs, err := s2.AttachJournal(JournalConfig{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap := obs.Default.Snapshot()
	if got := snap.GetGauge("admit.recover.clusters"); got != int64(rs.Clusters) || got != 1 {
		t.Errorf("recover.clusters gauge = %d, stats %d", got, rs.Clusters)
	}
	if got := snap.GetGauge("admit.recover.residents"); got != int64(rs.Residents) || got != 3 {
		t.Errorf("recover.residents gauge = %d, stats %d", got, rs.Residents)
	}
	if got := snap.GetGauge("admit.recover.replayed"); got != int64(rs.Replayed) {
		t.Errorf("recover.replayed gauge = %d, stats %d", got, rs.Replayed)
	}
	if got := snap.GetGauge("admit.recover.duration_us"); got <= 0 {
		t.Errorf("recover.duration_us gauge = %d, want > 0", got)
	}
}

// TestErrorResponsesCarryRequestID sweeps representative error statuses and
// asserts each response still carries the request ID (generated or echoed) —
// fmt'd here as a loop over the error table's routes rather than duplicating
// it; the full per-status sweep lives in TestHTTPErrorTable.
func TestErrorResponsesCarryRequestID(t *testing.T) {
	h := NewService(4).Handler()
	for _, tc := range []struct{ method, path, body string }{
		{"GET", "/v1/clusters/ghost", ""},
		{"POST", "/v1/clusters", `{"nope":1}`},
		{"POST", "/v1/clusters/ghost/admit", `{"c":1,"t":2}`},
	} {
		w := doTraced(h, tc.method, tc.path, tc.body, fmt.Sprintf("err-%s", tc.method))
		if got := w.Header().Get(RequestIDHeader); got != fmt.Sprintf("err-%s", tc.method) {
			t.Errorf("%s %s: request ID %q not echoed on error", tc.method, tc.path, got)
		}
	}
}
