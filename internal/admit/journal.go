package admit

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
)

// Durability layer (DESIGN.md §14): every state mutation — cluster
// create/delete, accepted admission, removal — is appended to a per-shard
// write-ahead journal (JSONL, schema-versioned like obs.RunEvent) before it
// is acknowledged, and each shard periodically folds its journal into an
// atomic snapshot (the temp+fsync+rename pattern proven by the batch
// checkpointer, experiments.Checkpoint). Startup recovery loads the
// snapshot, replays the journal tail through the real engine, and tolerates
// exactly one torn record at the tail (a crash mid-append); anything else
// malformed refuses to start rather than serve silently wrong state.
//
// Write-ahead discipline per op:
//
//   - create/delete/remove: the record is appended (and fsynced per
//     policy) before the registry or engine is touched — an append failure
//     leaves state untouched and the client gets a durability error.
//   - admit: the engine decides first (the record must carry the assigned
//     handle and processor), then the record is appended; an append
//     failure rolls the acceptance back via Online.UndoAdmit, so an
//     admission that cannot be made durable is never acknowledged and
//     never visible — canonically, it never happened.
//
// Rejections are deliberately not journaled: they do not mutate state, and
// under retry storms they are the overwhelmingly common case (the memo
// cache exists for the same reason). The cost is that the volatile traffic
// counters (requests, rejected, cacheHits) recovered after a crash only
// reflect the last snapshot plus replayed acceptances; the durable
// counters (accepted, removed) and the entire engine state are exact.
//
// Lock order (outermost first): shardJournal.freeze → Service shard map →
// Cluster.mu → shardJournal.mu. Mutating ops hold freeze as readers for
// their whole critical section; the snapshotter takes it as a writer, so a
// snapshot is a quiescent, shard-consistent cut — which is what makes the
// "replay records with seq > snapshot seq" recovery rule sound.
const (
	// walSchemaVersion stamps every journal record; recovery refuses other
	// versions. Bump on incompatible record-shape changes.
	walSchemaVersion = 1
	// snapshotSchemaVersion stamps shard snapshot files.
	snapshotSchemaVersion = 1
	// metaSchemaVersion stamps the data directory's meta file.
	metaSchemaVersion = 1
)

// Journal-layer instrumentation (no-ops unless obs.SetEnabled).
var (
	cJournalAppends    = obs.NewCounter("admit.journal.appends")
	cJournalAppendErrs = obs.NewCounter("admit.journal.append_errors")
	cJournalFsyncs     = obs.NewCounter("admit.journal.fsyncs")
	cJournalFsyncErrs  = obs.NewCounter("admit.journal.fsync_errors")
	cJournalSnapshots  = obs.NewCounter("admit.journal.snapshots")
	cJournalSnapErrs   = obs.NewCounter("admit.journal.snapshot_errors")
	cJournalReplayed   = obs.NewCounter("admit.journal.replayed_records")
	cJournalTornTails  = obs.NewCounter("admit.journal.torn_tails")
)

// Durability latency/size distributions (DESIGN.md §15). Bounds in µs for
// the latency histograms: appends are a buffered write (single-digit µs
// warm), fsyncs are the device round-trip (hundreds of µs to tens of ms on
// spinning or contended storage), snapshots serialize whole shards.
var (
	hJournalAppendUS = obs.NewHistogram("admit.journal.append_us",
		1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000)
	hJournalFsyncUS = obs.NewHistogram("admit.journal.fsync_us",
		10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000)
	hJournalFlushBatch = obs.NewHistogram("admit.journal.flush_batch",
		1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
	hJournalSnapshotUS = obs.NewHistogram("admit.journal.snapshot_us",
		50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000, 250000)
	hJournalSnapFolds = obs.NewHistogram("admit.journal.snapshot_fold_records",
		1, 16, 64, 256, 1024, 4096, 16384, 65536)
)

// ErrDurability wraps journal failures surfaced to clients: the requested
// mutation was not applied because it could not be made durable. The HTTP
// layer maps it to 503 Service Unavailable.
var ErrDurability = errors.New("admit: durability failure")

// FsyncPolicy selects when journal appends are flushed to stable storage.
type FsyncPolicy int8

const (
	// FsyncAlways fsyncs every record before the op is acknowledged: an
	// acknowledged mutation survives any crash.
	FsyncAlways FsyncPolicy = iota
	// FsyncBatch group-commits: a background flusher fsyncs dirty journals
	// every FsyncInterval, bounding data loss to the interval.
	FsyncBatch
	// FsyncOff never fsyncs; durability is whatever the OS page cache
	// provides. Survives process crashes (the data is in the kernel), not
	// power loss.
	FsyncOff
)

// ParseFsyncPolicy parses the -fsync flag vocabulary.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "batch":
		return FsyncBatch, nil
	case "off":
		return FsyncOff, nil
	}
	return 0, fmt.Errorf("admit: unknown fsync policy %q (want always, batch or off)", s)
}

func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncBatch:
		return "batch"
	case FsyncOff:
		return "off"
	default:
		return fmt.Sprintf("fsync(%d)", int8(p))
	}
}

// JournalConfig configures the durability layer.
type JournalConfig struct {
	// Dir is the data directory holding meta.json plus one .wal and .snap
	// file per registry shard. Created if missing.
	Dir string
	// Fsync is the append flush policy.
	Fsync FsyncPolicy
	// FsyncInterval is the FsyncBatch group-commit period (also the
	// snapshot-trigger poll period). Zero means 5ms.
	FsyncInterval time.Duration
	// SnapshotEvery folds a shard's journal into a snapshot after this many
	// appended records. Zero means 4096; negative disables periodic
	// snapshots (Close still writes a final one).
	SnapshotEvery int
}

func (cfg *JournalConfig) fsyncInterval() time.Duration {
	if cfg.FsyncInterval <= 0 {
		return 5 * time.Millisecond
	}
	return cfg.FsyncInterval
}

func (cfg *JournalConfig) snapshotEvery() int {
	if cfg.SnapshotEvery == 0 {
		return 4096
	}
	return cfg.SnapshotEvery
}

// walRecord is one journal line. Field presence by op:
//
//	create: cluster, m, policy, surcharge
//	admit:  cluster, task (label), c, t, d (raw request deadline, 0 =
//	        implicit), h (assigned handle), p (assigned processor + 1, so
//	        omitempty never hides processor 0)
//	remove: cluster, h
//	delete: cluster
type walRecord struct {
	V       int    `json:"v"`
	Seq     uint64 `json:"seq"`
	Op      string `json:"op"`
	Cluster string `json:"cluster"`

	M         int    `json:"m,omitempty"`
	Policy    string `json:"policy,omitempty"`
	Surcharge int64  `json:"surcharge,omitempty"`

	Task string `json:"task,omitempty"`
	C    int64  `json:"c,omitempty"`
	T    int64  `json:"t,omitempty"`
	D    int64  `json:"d,omitempty"`

	Handle uint64 `json:"h,omitempty"`
	Proc1  int    `json:"p,omitempty"`

	// RID is the request ID of the HTTP request that produced the record
	// (empty for untraced callers). Additive-optional — replay's plain
	// Unmarshal tolerates journals written before it existed, so it did not
	// bump walSchemaVersion. It is audit metadata only: replay ignores it.
	RID string `json:"rid,omitempty"`
}

const (
	opCreate = "create"
	opAdmit  = "admit"
	opRemove = "remove"
	opDelete = "delete"
)

// snapshotFile is one shard's atomic snapshot: a quiescent cut of every
// cluster on the shard at journal sequence Seq. Journal records with seq ≤
// Seq are already reflected and are skipped on replay.
type snapshotFile struct {
	Version  int           `json:"version"`
	Shard    int           `json:"shard"`
	Seq      uint64        `json:"seq"`
	Clusters []clusterSnap `json:"clusters"`
}

type clusterSnap struct {
	Name       string         `json:"name"`
	M          int            `json:"m"`
	Policy     string         `json:"policy"`
	Surcharge  int64          `json:"surcharge"`
	NextHandle uint64         `json:"nextHandle"`
	Stats      StatsSnapshot  `json:"stats"`
	Residents  []residentSnap `json:"residents"`
}

// residentSnap is one resident in handle (admission) order: the recorded
// placement is restored directly — re-deciding placement at recovery would
// be unsound, because the original decision saw intermediate states that
// included since-removed tasks.
type residentSnap struct {
	H uint64 `json:"h"`
	P int    `json:"p"`
	C int64  `json:"c"`
	T int64  `json:"t"`
	D int64  `json:"d"`
}

// metaFile guards the data directory against being reopened with a
// different shard count (the cluster→shard mapping is part of the layout).
type metaFile struct {
	Version int `json:"version"`
	Shards  int `json:"shards"`
}

// Journal is the service's durability engine: one write-ahead log and
// snapshot pair per registry shard, plus the background flusher that
// group-commits fsyncs and folds journals into snapshots.
type Journal struct {
	cfg    JournalConfig
	svc    *Service
	shards []*shardJournal

	stop      chan struct{}
	kick      chan struct{}
	flusherWG sync.WaitGroup
	closeOnce sync.Once
	closeErr  error
}

type shardJournal struct {
	idx int
	dir string

	// freeze is the shard's outermost lock: mutating ops hold it shared for
	// their whole critical section; the snapshotter holds it exclusively,
	// making every snapshot a quiescent consistent cut.
	freeze sync.RWMutex

	mu        sync.Mutex // file, off, seq, sinceSnap, pending, dirty, broken
	file      *os.File
	off       int64
	seq       uint64
	sinceSnap int
	pending   int // appends since the last successful fsync (batch size)
	dirty     bool
	broken    error
}

func walPath(dir string, i int) string  { return filepath.Join(dir, fmt.Sprintf("shard-%03d.wal", i)) }
func snapPath(dir string, i int) string { return filepath.Join(dir, fmt.Sprintf("shard-%03d.snap", i)) }

// errJournalBroken is the sticky state after an unrepairable append: the
// file tail is in an unknown state, so further appends would risk feeding
// recovery a mid-file corruption instead of a clean torn tail.
var errJournalBroken = errors.New("journal wedged by an unrepaired torn append; restart to recover")

// append writes one record (WAL line) and applies the fsync policy. On any
// failure the journal's visible state is unchanged: the sequence number is
// not consumed and the file is truncated back to the last good offset (if
// even that fails, the journal wedges and every later durable op errors
// until a restart recovers the tail).
func (sh *shardJournal) append(rec walRecord, cfg *JournalConfig) error {
	// Timing is gated on obs.On() so the disabled path never calls
	// time.Now() — the zero-overhead-when-off contract extends to clocks.
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.broken != nil {
		cJournalAppendErrs.Inc()
		return sh.broken
	}
	rec.V = walSchemaVersion
	rec.Seq = sh.seq + 1
	data, err := json.Marshal(rec)
	if err != nil {
		cJournalAppendErrs.Inc()
		return err
	}
	data = append(data, '\n')
	if err := faultinject.JournalAppendErr(); err != nil {
		cJournalAppendErrs.Inc()
		return err
	}
	if faultinject.ShouldTearJournal() {
		// A crash mid-write: half the record reaches the file and the
		// process "dies" — in-process, that means the journal wedges until
		// the next startup truncates the torn tail.
		_, _ = sh.file.Write(data[:len(data)/2])
		sh.broken = errJournalBroken
		cJournalAppendErrs.Inc()
		return sh.broken
	}
	n, err := sh.file.Write(data)
	if err != nil {
		cJournalAppendErrs.Inc()
		sh.rewindLocked(sh.off)
		return err
	}
	sh.off += int64(n)
	sh.pending++
	if cfg.Fsync == FsyncAlways {
		if err := sh.fsyncLocked(); err != nil {
			// The record reached the file but its durability cannot be
			// confirmed; scrub it so recovery never replays an op the
			// client was told failed.
			cJournalAppendErrs.Inc()
			sh.pending--
			sh.rewindLocked(sh.off - int64(n))
			return err
		}
	} else {
		sh.dirty = true
	}
	sh.seq = rec.Seq
	sh.sinceSnap++
	cJournalAppends.Inc()
	if !t0.IsZero() {
		hJournalAppendUS.Observe(time.Since(t0).Microseconds())
	}
	return nil
}

// rewindLocked truncates the WAL back to off after a failed append. Caller
// holds sh.mu.
func (sh *shardJournal) rewindLocked(off int64) {
	if err := sh.file.Truncate(off); err != nil {
		sh.broken = fmt.Errorf("journal tail unrepairable after failed append: %w", err)
		return
	}
	if _, err := sh.file.Seek(off, io.SeekStart); err != nil {
		sh.broken = fmt.Errorf("journal tail unrepairable after failed append: %w", err)
		return
	}
	sh.off = off
}

// fsyncLocked flushes the WAL file, recording the sync latency and how many
// appends the sync made durable (the group-commit batch size; always 1
// under FsyncAlways). Caller holds sh.mu.
func (sh *shardJournal) fsyncLocked() error {
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	if err := faultinject.JournalFsyncErr(); err != nil {
		cJournalFsyncErrs.Inc()
		return err
	}
	if err := sh.file.Sync(); err != nil {
		cJournalFsyncErrs.Inc()
		return err
	}
	cJournalFsyncs.Inc()
	if !t0.IsZero() {
		hJournalFsyncUS.Observe(time.Since(t0).Microseconds())
		hJournalFlushBatch.Observe(int64(sh.pending))
	}
	sh.pending = 0
	sh.dirty = false
	return nil
}

// record builders.

func createRecord(name string, m int, policy string, surcharge task.Time, rid string) walRecord {
	return walRecord{Op: opCreate, Cluster: name, M: m, Policy: policy, Surcharge: surcharge, RID: rid}
}

func admitRecord(cluster string, t task.Task, pl partition.Placement, rid string) walRecord {
	return walRecord{Op: opAdmit, Cluster: cluster, Task: t.Name, C: t.C, T: t.T, D: t.D,
		Handle: pl.Handle, Proc1: pl.Proc + 1, RID: rid}
}

func removeRecord(cluster string, handle uint64, rid string) walRecord {
	return walRecord{Op: opRemove, Cluster: cluster, Handle: handle, RID: rid}
}

func deleteRecord(cluster string, rid string) walRecord {
	return walRecord{Op: opDelete, Cluster: cluster, RID: rid}
}

// maybeKickSnapshot nudges the background flusher when a shard's journal
// has outgrown the snapshot threshold. Non-blocking: a pending kick is
// enough, the flusher re-scans every shard anyway.
func (j *Journal) maybeKickSnapshot(sh *shardJournal) {
	if j.cfg.snapshotEvery() < 0 {
		return
	}
	sh.mu.Lock()
	due := sh.sinceSnap >= j.cfg.snapshotEvery()
	sh.mu.Unlock()
	if due {
		select {
		case j.kick <- struct{}{}:
		default:
		}
	}
}

// flusher is the Journal's background goroutine: group-commits fsyncs under
// FsyncBatch and folds overgrown journals into snapshots.
func (j *Journal) flusher() {
	defer j.flusherWG.Done()
	interval := j.cfg.fsyncInterval()
	if j.cfg.Fsync != FsyncBatch && interval < 50*time.Millisecond {
		// Only snapshot triggers need the timer; don't spin at fsync pace.
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-j.stop:
			return
		case <-tick.C:
			if j.cfg.Fsync == FsyncBatch {
				j.flushDirty()
			}
			j.snapshotDue()
		case <-j.kick:
			j.snapshotDue()
		}
	}
}

// flushDirty fsyncs every journal with unflushed appends (FsyncBatch group
// commit). A background fsync failure cannot un-acknowledge the ops it
// covered; it is counted and retried on the next tick.
func (j *Journal) flushDirty() {
	for _, sh := range j.shards {
		sh.mu.Lock()
		if sh.dirty && sh.broken == nil {
			_ = sh.fsyncLocked()
		}
		sh.mu.Unlock()
	}
}

// snapshotDue folds any journal past the snapshot threshold.
func (j *Journal) snapshotDue() {
	every := j.cfg.snapshotEvery()
	if every < 0 {
		return
	}
	for _, sh := range j.shards {
		sh.mu.Lock()
		due := sh.sinceSnap >= every
		sh.mu.Unlock()
		if due {
			_ = j.snapshotShard(sh)
		}
	}
}

// snapshotShard writes one shard's snapshot atomically and, on success,
// resets its journal. It is the only writer that takes freeze exclusively:
// while it runs, no mutation is in flight anywhere on the shard, so the
// snapshot is a consistent cut at the shard's current journal seq and the
// journal reset cannot lose a record.
//
// On failure (including an injected SnapshotRename fault) the journal is
// left untouched: recovery then replays the full WAL on top of the
// previous snapshot — durability is never reduced, the journal merely
// keeps growing until a snapshot lands.
func (j *Journal) snapshotShard(sh *shardJournal) error {
	var t0 time.Time
	if obs.On() {
		t0 = time.Now()
	}
	sh.freeze.Lock()
	defer sh.freeze.Unlock()

	snap := snapshotFile{Version: snapshotSchemaVersion, Shard: sh.idx}
	sh.mu.Lock()
	snap.Seq = sh.seq
	folded := sh.sinceSnap
	sh.mu.Unlock()

	reg := &j.svc.shards[sh.idx]
	reg.mu.RLock()
	names := make([]string, 0, len(reg.clusters))
	for name := range reg.clusters {
		names = append(names, name)
	}
	reg.mu.RUnlock()
	sortStrings(names)
	for _, name := range names {
		reg.mu.RLock()
		c := reg.clusters[name]
		reg.mu.RUnlock()
		if c == nil {
			continue
		}
		c.mu.Lock()
		cs := clusterSnap{
			Name:       c.name,
			M:          c.eng.M(),
			Policy:     c.eng.Policy(),
			Surcharge:  c.eng.Surcharge(),
			NextHandle: c.eng.HandleSeq(),
			Residents:  make([]residentSnap, 0, c.eng.Len()),
		}
		for _, ri := range c.eng.ResidentsSnapshot() {
			cs.Residents = append(cs.Residents, residentSnap{H: ri.Handle, P: ri.Proc, C: ri.C, T: ri.T, D: ri.D})
		}
		c.mu.Unlock()
		cs.Stats = c.StatsSnapshot()
		snap.Clusters = append(snap.Clusters, cs)
	}

	if err := writeFileAtomic(snapPath(sh.dir, sh.idx), snap); err != nil {
		cJournalSnapErrs.Inc()
		return fmt.Errorf("admit: snapshot shard %d: %w", sh.idx, err)
	}

	// The snapshot covers every journaled record (quiescent cut at
	// snap.Seq); reset the WAL. A crash between the rename above and this
	// truncate is benign: every WAL record has seq ≤ snap.Seq and is
	// skipped on replay.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.broken == nil {
		sh.rewindLocked(0)
	}
	sh.sinceSnap = 0
	cJournalSnapshots.Inc()
	if !t0.IsZero() {
		hJournalSnapshotUS.Observe(time.Since(t0).Microseconds())
		hJournalSnapFolds.Observe(int64(folded))
	}
	return nil
}

// writeFileAtomic persists v as JSON via the checkpointer's temp + fsync +
// rename + directory-fsync pattern, with the SnapshotRename fault injected
// between the write and the rename.
func writeFileAtomic(path string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(append(data, '\n')); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := faultinject.SnapshotRenameErr(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// SnapshotNow synchronously folds every shard's journal into a fresh
// snapshot (regardless of thresholds) and returns the first error.
func (s *Service) SnapshotNow() error {
	if s.j == nil {
		return errors.New("admit: service has no journal attached")
	}
	var first error
	for _, sh := range s.j.shards {
		if err := s.j.snapshotShard(sh); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Journaled reports whether the service has a durability layer attached.
func (s *Service) Journaled() bool { return s.j != nil }

// Close makes the service durable at rest and releases the journal: it
// stops the flusher, writes a final snapshot of every shard (which also
// captures the volatile traffic counters, so a clean restart restores
// Status byte-identically), and closes the files. A service without a
// journal closes as a no-op. Close is idempotent; the service must not be
// used afterwards.
func (s *Service) Close() error {
	if s.j == nil {
		return nil
	}
	s.j.closeOnce.Do(func() {
		close(s.j.stop)
		s.j.flusherWG.Wait()
		var first error
		for _, sh := range s.j.shards {
			if err := s.j.snapshotShard(sh); err != nil && first == nil {
				first = err
			}
		}
		for _, sh := range s.j.shards {
			sh.mu.Lock()
			if err := sh.file.Close(); err != nil && first == nil {
				first = err
			}
			sh.broken = errors.New("admit: journal closed")
			sh.mu.Unlock()
		}
		s.j.closeErr = first
	})
	return s.j.closeErr
}

// crash abandons the journal without a final snapshot or any flush — the
// in-process stand-in for SIGKILL that the recovery-equivalence tests use
// (the process-level torture test in cmd/admitd delivers the real signal).
func (s *Service) crash() {
	if s.j == nil {
		return
	}
	s.j.closeOnce.Do(func() {
		close(s.j.stop)
		s.j.flusherWG.Wait()
		for _, sh := range s.j.shards {
			sh.mu.Lock()
			_ = sh.file.Close()
			sh.broken = errors.New("admit: journal crashed")
			sh.mu.Unlock()
		}
	})
}

// sortStrings is a tiny local sort to keep snapshot cluster order (and so
// snapshot bytes) deterministic.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
