package admit

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var v map[string]any
	if len(w.Body.Bytes()) > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, path, w.Body.String())
		}
	}
	return w, v
}

func TestHTTPLifecycle(t *testing.T) {
	h := NewService(4).Handler()

	// Create.
	w, v := doJSON(t, h, "POST", "/v1/clusters", `{"name":"edge","m":2,"policy":"rta-ff"}`)
	if w.Code != http.StatusCreated || v["name"] != "edge" || v["m"] != 2.0 {
		t.Fatalf("create: %d %v", w.Code, v)
	}
	// Duplicate name → 409; invalid params → 400.
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"name":"edge","m":2}`); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"name":"bad","m":0}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid create: %d", w.Code)
	}
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"nope":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", w.Code)
	}

	// Admit accepted.
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"name":"cam","c":5,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] != true {
		t.Fatalf("admit: %d %v", w.Code, v)
	}
	handle := v["handle"].(float64)
	if handle == 0 {
		t.Fatal("zero handle")
	}

	// Fill the second processor, then a third full-utilization task is an
	// analyzed rejection — still a 200 with a typed cause and evidence.
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] != true {
		t.Fatalf("second admit: %d %v", w.Code, v)
	}
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] == true {
		t.Fatalf("overload admit: %d %v", w.Code, v)
	}
	if v["cause"] != "rta-deadline-miss" || v["evidence"] == nil {
		t.Fatalf("rejection shape: %v", v)
	}

	// Status and list.
	w, v = doJSON(t, h, "GET", "/v1/clusters/edge", "")
	if w.Code != http.StatusOK || v["tasks"].(float64) != 2 || v["policy"] != "rta-ff" {
		t.Fatalf("status: %d %v", w.Code, v)
	}
	stats := v["stats"].(map[string]any)
	if stats["requests"].(float64) != 3 || stats["rejected"].(float64) != 1 {
		t.Fatalf("stats: %v", stats)
	}
	w, v = doJSON(t, h, "GET", "/v1/clusters", "")
	if w.Code != http.StatusOK || len(v["clusters"].([]any)) != 1 {
		t.Fatalf("list: %d %v", w.Code, v)
	}

	// Remove: live handle succeeds once, then 404s.
	body := fmt.Sprintf(`{"handle":%d}`, int64(handle))
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/remove", body)
	if w.Code != http.StatusOK || v["removed"] != true {
		t.Fatalf("remove: %d %v", w.Code, v)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/remove", body); w.Code != http.StatusNotFound {
		t.Fatalf("double remove: %d", w.Code)
	}

	// Unknown cluster and bad bodies.
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/ghost/admit", `{"c":1,"t":2}`); w.Code != http.StatusNotFound {
		t.Fatalf("ghost admit: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `not json`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":2}{"c":1,"t":2}`); w.Code != http.StatusBadRequest {
		t.Fatalf("trailing data: %d", w.Code)
	}

	// Delete.
	if w, _ = doJSON(t, h, "DELETE", "/v1/clusters/edge", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "DELETE", "/v1/clusters/edge", ""); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", w.Code)
	}
}
