package admit

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func doJSON(t *testing.T, h http.Handler, method, path, body string) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var rd *strings.Reader
	if body == "" {
		rd = strings.NewReader("")
	} else {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, rd)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	var v map[string]any
	if len(w.Body.Bytes()) > 0 {
		if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
			t.Fatalf("%s %s: non-JSON body %q", method, path, w.Body.String())
		}
	}
	return w, v
}

func TestHTTPLifecycle(t *testing.T) {
	h := NewService(4).Handler()

	// Create.
	w, v := doJSON(t, h, "POST", "/v1/clusters", `{"name":"edge","m":2,"policy":"rta-ff"}`)
	if w.Code != http.StatusCreated || v["name"] != "edge" || v["m"] != 2.0 {
		t.Fatalf("create: %d %v", w.Code, v)
	}
	// Duplicate name → 409; invalid params → 400.
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"name":"edge","m":2}`); w.Code != http.StatusConflict {
		t.Fatalf("duplicate create: %d", w.Code)
	}
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"name":"bad","m":0}`); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid create: %d", w.Code)
	}
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"nope":1}`); w.Code != http.StatusBadRequest {
		t.Fatalf("unknown field: %d", w.Code)
	}

	// Admit accepted.
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"name":"cam","c":5,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] != true {
		t.Fatalf("admit: %d %v", w.Code, v)
	}
	handle := v["handle"].(float64)
	if handle == 0 {
		t.Fatal("zero handle")
	}

	// Fill the second processor, then a third full-utilization task is an
	// analyzed rejection — still a 200 with a typed cause and evidence.
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] != true {
		t.Fatalf("second admit: %d %v", w.Code, v)
	}
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":10,"t":10}`)
	if w.Code != http.StatusOK || v["accepted"] == true {
		t.Fatalf("overload admit: %d %v", w.Code, v)
	}
	if v["cause"] != "rta-deadline-miss" || v["evidence"] == nil {
		t.Fatalf("rejection shape: %v", v)
	}

	// Status and list.
	w, v = doJSON(t, h, "GET", "/v1/clusters/edge", "")
	if w.Code != http.StatusOK || v["tasks"].(float64) != 2 || v["policy"] != "rta-ff" {
		t.Fatalf("status: %d %v", w.Code, v)
	}
	stats := v["stats"].(map[string]any)
	if stats["requests"].(float64) != 3 || stats["rejected"].(float64) != 1 {
		t.Fatalf("stats: %v", stats)
	}
	w, v = doJSON(t, h, "GET", "/v1/clusters", "")
	if w.Code != http.StatusOK || len(v["clusters"].([]any)) != 1 {
		t.Fatalf("list: %d %v", w.Code, v)
	}

	// Remove: live handle succeeds once, then 404s.
	body := fmt.Sprintf(`{"handle":%d}`, int64(handle))
	w, v = doJSON(t, h, "POST", "/v1/clusters/edge/remove", body)
	if w.Code != http.StatusOK || v["removed"] != true {
		t.Fatalf("remove: %d %v", w.Code, v)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/remove", body); w.Code != http.StatusNotFound {
		t.Fatalf("double remove: %d", w.Code)
	}

	// Unknown cluster and bad bodies.
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/ghost/admit", `{"c":1,"t":2}`); w.Code != http.StatusNotFound {
		t.Fatalf("ghost admit: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `not json`); w.Code != http.StatusBadRequest {
		t.Fatalf("bad body: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":2}{"c":1,"t":2}`); w.Code != http.StatusBadRequest {
		t.Fatalf("trailing data: %d", w.Code)
	}

	// Delete.
	if w, _ = doJSON(t, h, "DELETE", "/v1/clusters/edge", ""); w.Code != http.StatusNoContent {
		t.Fatalf("delete: %d", w.Code)
	}
	if w, _ = doJSON(t, h, "DELETE", "/v1/clusters/edge", ""); w.Code != http.StatusNotFound {
		t.Fatalf("double delete: %d", w.Code)
	}
}

// TestHTTPErrorTable pins every error-path status code of the API surface,
// including the overload and slow-client protections.
func TestHTTPErrorTable(t *testing.T) {
	s := NewService(4)
	gate := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 1, Timeout: 30 * time.Millisecond, RetryAfter: 2 * time.Second})
	s.SetGate(gate)
	h := s.Handler()
	if w, _ := doJSON(t, h, "POST", "/v1/clusters", `{"name":"edge","m":2}`); w.Code != http.StatusCreated {
		t.Fatalf("setup create: %d", w.Code)
	}

	oversized := `{"name":"` + strings.Repeat("x", maxBodyBytes) + `","c":1,"t":10}`
	cases := []struct {
		name         string
		method, path string
		body         string
		want         int
	}{
		{"oversized body", "POST", "/v1/clusters/edge/admit", oversized, http.StatusRequestEntityTooLarge},
		{"unknown field", "POST", "/v1/clusters", `{"nope":1}`, http.StatusBadRequest},
		{"trailing data", "POST", "/v1/clusters/edge/admit", `{"c":1,"t":2}{"c":1,"t":2}`, http.StatusBadRequest},
		{"not json", "POST", "/v1/clusters/edge/admit", `not json`, http.StatusBadRequest},
		{"unknown cluster status", "GET", "/v1/clusters/ghost", "", http.StatusNotFound},
		{"unknown cluster admit", "POST", "/v1/clusters/ghost/admit", `{"c":1,"t":2}`, http.StatusNotFound},
		{"unknown handle", "POST", "/v1/clusters/edge/remove", `{"handle":999}`, http.StatusNotFound},
		{"duplicate create", "POST", "/v1/clusters", `{"name":"edge","m":2}`, http.StatusConflict},
		{"invalid params", "POST", "/v1/clusters", `{"name":"bad","m":0}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w, v := doJSON(t, h, tc.method, tc.path, tc.body)
			if w.Code != tc.want {
				t.Fatalf("%s %s: code %d (%v), want %d", tc.method, tc.path, w.Code, v, tc.want)
			}
			if tc.want >= 400 && v["error"] == "" {
				t.Fatalf("error response without error message: %v", v)
			}
			// Every response — 4xx included — must carry a request ID so the
			// client can quote it back at the operator.
			if w.Header().Get(RequestIDHeader) == "" {
				t.Fatalf("%s %s: %d response without %s header", tc.method, tc.path, w.Code, RequestIDHeader)
			}
		})
	}

	// Saturate the gate: hold its only slot, fill the one-deep queue with a
	// waiter, then every further admission sheds immediately with 429 and a
	// Retry-After hint; the queued waiter itself expires into a 503 when
	// its deadline passes — the same status a deadline expiring inside the
	// handler gets.
	t.Run("gate saturated", func(t *testing.T) {
		if err := gate.Acquire(context.Background()); err != nil {
			t.Fatal(err)
		}
		defer gate.Release()
		queued := make(chan *httptest.ResponseRecorder, 1)
		go func() {
			w := httptest.NewRecorder()
			req := httptest.NewRequest("POST", "/v1/clusters/edge/admit", strings.NewReader(`{"c":1,"t":10}`))
			req.Header.Set(RequestIDHeader, "queued-then-expired")
			h.ServeHTTP(w, req)
			queued <- w
		}()
		deadline := time.Now().Add(time.Second)
		for gate.waiters.Load() == 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if gate.waiters.Load() == 0 {
			t.Fatal("queued request never registered as a waiter")
		}
		w, _ := doJSON(t, h, "POST", "/v1/clusters/edge/admit", `{"c":1,"t":10}`)
		if w.Code != http.StatusTooManyRequests {
			t.Fatalf("saturated admit: code %d, want 429", w.Code)
		}
		if w.Header().Get("Retry-After") != "2" {
			t.Fatalf("Retry-After = %q, want %q", w.Header().Get("Retry-After"), "2")
		}
		// The tracer sits outside the gate: even a shed that never reached the
		// handler carries a request ID.
		if w.Header().Get(RequestIDHeader) == "" {
			t.Fatalf("429 shed without %s header", RequestIDHeader)
		}
		qw := <-queued
		if qw.Code != http.StatusServiceUnavailable {
			t.Fatalf("queued request expired with code %d, want 503", qw.Code)
		}
		if got := qw.Header().Get(RequestIDHeader); got != "queued-then-expired" {
			t.Fatalf("503 expiry lost the client request ID: %q", got)
		}
	})
}

// TestHTTPConcurrentStress hammers the full HTTP surface — create, delete,
// admit, remove, status — from many goroutines through the gate, with
// injected handler latency stirring the queue. Run under -race this pins
// the locking design end to end; every response must come from the known
// status-code vocabulary.
func TestHTTPConcurrentStress(t *testing.T) {
	s := NewService(8)
	s.SetGate(NewGate(GateConfig{MaxConcurrent: 4, MaxQueue: 8, Timeout: 200 * time.Millisecond}))
	h := s.Handler()
	faultinject.Arm(faultinject.Plan{Seed: 3, HandlerLatencyEvery: 20, HandlerDelay: time.Millisecond})
	defer faultinject.Disarm()

	valid := map[int]bool{200: true, 201: true, 204: true, 404: true, 409: true, 429: true, 503: true}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			names := []string{"s0", "s1", "s2"}
			var handles []int64
			for i := 0; i < 150; i++ {
				name := names[r.Intn(len(names))]
				var rec *httptest.ResponseRecorder
				switch k := r.Intn(10); {
				case k == 0:
					rec, _ = doJSON(t, h, "POST", "/v1/clusters", fmt.Sprintf(`{"name":%q,"m":2}`, name))
				case k == 1:
					rec, _ = doJSON(t, h, "DELETE", "/v1/clusters/"+name, "")
					if rec.Code == http.StatusNoContent || rec.Code == http.StatusNotFound {
						// fine either way under concurrency
					}
				case k == 2 && len(handles) > 0:
					hnd := handles[0]
					handles = handles[1:]
					rec, _ = doJSON(t, h, "POST", "/v1/clusters/"+name+"/remove", fmt.Sprintf(`{"handle":%d}`, hnd))
				case k == 3:
					rec, _ = doJSON(t, h, "GET", "/v1/clusters/"+name, "")
				default:
					var v map[string]any
					rec, v = doJSON(t, h, "POST", "/v1/clusters/"+name+"/admit",
						fmt.Sprintf(`{"c":%d,"t":%d}`, 1+r.Intn(4), 10+r.Intn(5)*10))
					if rec.Code == http.StatusOK && v["accepted"] == true {
						handles = append(handles, int64(v["handle"].(float64)))
					}
				}
				if rec != nil && !valid[rec.Code] {
					t.Errorf("worker %d op %d: unexpected status %d: %s", w, i, rec.Code, rec.Body.String())
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
