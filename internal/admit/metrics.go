package admit

import (
	"fmt"

	"repro/internal/obs"
)

// RegisterMetrics publishes the service's level gauges in reg (nil means
// the Default registry) as snapshot-time callbacks, so the instrumented
// paths pay nothing per update:
//
//	admit.gate.queue_depth      requests waiting for an execution slot
//	admit.gate.in_flight        execution slots currently held
//	admit.clusters              registered clusters, all shards
//	admit.tasks                 resident tasks, all shards
//	admit.shard.NNN.clusters    per-shard cluster count
//	admit.shard.NNN.tasks       per-shard resident-task count
//
// Callbacks run at scrape time under the registry's snapshot (which holds
// no registry lock while evaluating them — see Registry.Snapshot) and take
// sh.mu.RLock then c.mu, the same order every mutating path uses, so a
// scrape can never deadlock against traffic. Like SetGate/SetTracing, call
// it at startup; re-registration re-points the callbacks at this service.
func (s *Service) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		reg = obs.Default
	}
	reg.GaugeFunc("admit.gate.queue_depth", func() int64 {
		if g := s.gate; g != nil {
			return g.waiters.Load()
		}
		return 0
	})
	reg.GaugeFunc("admit.gate.in_flight", func() int64 {
		if g := s.gate; g != nil {
			return int64(len(g.slots))
		}
		return 0
	})
	for i := range s.shards {
		idx := i
		reg.GaugeFunc(fmt.Sprintf("admit.shard.%03d.clusters", idx), func() int64 {
			c, _ := s.shardCounts(idx)
			return c
		})
		reg.GaugeFunc(fmt.Sprintf("admit.shard.%03d.tasks", idx), func() int64 {
			_, t := s.shardCounts(idx)
			return t
		})
	}
	reg.GaugeFunc("admit.clusters", func() int64 {
		var total int64
		for i := range s.shards {
			c, _ := s.shardCounts(i)
			total += c
		}
		return total
	})
	reg.GaugeFunc("admit.tasks", func() int64 {
		var total int64
		for i := range s.shards {
			_, t := s.shardCounts(i)
			total += t
		}
		return total
	})
}

// shardCounts reads one shard's cluster and resident-task counts under the
// standard lock order (shard read lock, then each cluster's mutex).
func (s *Service) shardCounts(i int) (clusters, tasks int64) {
	sh := &s.shards[i]
	sh.mu.RLock()
	cs := make([]*Cluster, 0, len(sh.clusters))
	for _, c := range sh.clusters {
		cs = append(cs, c)
	}
	sh.mu.RUnlock()
	clusters = int64(len(cs))
	for _, c := range cs {
		c.mu.Lock()
		tasks += int64(c.eng.Len())
		c.mu.Unlock()
	}
	return clusters, tasks
}
