package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAcquireRelease(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 2, MaxQueue: 1})
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slots full; the bounded queue takes one waiter, the next is shed.
	ctxShort, cancel := context.WithTimeout(ctx, 10*time.Millisecond)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- g.Acquire(ctxShort) }()
	// Give the waiter time to enqueue, then overflow the queue.
	deadline := time.Now().Add(time.Second)
	for g.waiters.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if err := g.Acquire(ctxShort); !errors.Is(err, ErrShed) {
		t.Fatalf("queue overflow err = %v, want ErrShed", err)
	}
	// The queued waiter expires with its context — reported as the
	// deadline error, not ErrShed, so the HTTP layer can answer 503
	// instead of 429.
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued waiter err = %v, want context.DeadlineExceeded", err)
	}
	// Releasing a slot makes acquisition immediate again.
	g.Release()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestGateQueueHandoff(t *testing.T) {
	g := NewGate(GateConfig{MaxConcurrent: 1, MaxQueue: 8})
	ctx := context.Background()
	if err := g.Acquire(ctx); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	got := make(chan struct{}, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := g.Acquire(ctx); err != nil {
				t.Errorf("queued acquire: %v", err)
				return
			}
			got <- struct{}{}
			g.Release()
		}()
	}
	// Drain: each release lets exactly one waiter through.
	g.Release()
	wg.Wait()
	if len(got) != 4 {
		t.Fatalf("%d waiters got slots, want 4", len(got))
	}
}

func TestGateDefaults(t *testing.T) {
	cfg := GateConfig{}
	if cfg.maxConcurrent() <= 0 || cfg.maxQueue() < cfg.maxConcurrent() {
		t.Errorf("defaults: concurrent %d queue %d", cfg.maxConcurrent(), cfg.maxQueue())
	}
	if cfg.timeout() != time.Second {
		t.Errorf("default timeout %v", cfg.timeout())
	}
	neg := GateConfig{Timeout: -1}
	if neg.timeout() != 0 {
		t.Errorf("negative timeout should disable, got %v", neg.timeout())
	}
	g := NewGate(GateConfig{RetryAfter: 1500 * time.Millisecond})
	if s := g.retryAfterSeconds(); s != "2" {
		t.Errorf("Retry-After rounds up whole seconds: got %q", s)
	}
}
