// Package admit is the multi-tenant online admission-control service over
// the partition.Online engine (ROADMAP item 1): clients create named
// virtual clusters (M processors, a placement policy, an optional analysis
// surcharge) and then admit and remove tasks one at a time, getting back a
// placement or a typed rejection that reuses the partition.Cause taxonomy
// and the internal/explain evidence vocabulary.
//
// Concurrency model: clusters live in a fixed array of RWMutex-striped
// shards keyed by an FNV hash of the cluster name, so lookups on the hot
// admit path take only a read lock on one stripe. Each cluster serializes
// its own engine operations behind a per-cluster mutex (the Online engine
// is single-writer by design); per-tenant statistics are plain atomics,
// readable lock-free while admissions are in flight.
//
// Rejection caching: admission is deterministic in (cluster state,
// candidate), so each cluster memoizes rejected verdicts under an exact
// canonical byte key of every resident plus the candidate — no hashing in
// the key, hence no collision unsoundness. Only rejections are cached:
// they are the expensive repeated case under churn (retry storms re-ask
// the same question against the same state), while an acceptance mutates
// the state and so can never repeat. Any successful admit or remove
// changes the canonical state and thereby orphans stale entries; the map
// is cleared wholesale when it outgrows its cap.
package admit

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/bounds"
	"repro/internal/explain"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/task"
)

// Service-wide instrumentation (no-ops unless obs.SetEnabled), aggregated
// across every tenant; the per-cluster Stats atomics are always live.
var (
	cRequests        = obs.NewCounter("admit.requests")
	cAccepted        = obs.NewCounter("admit.accepted")
	cRejected        = obs.NewCounter("admit.rejected")
	cRemoved         = obs.NewCounter("admit.removed")
	cCacheHits       = obs.NewCounter("admit.cache_hits")
	cClustersCreated = obs.NewCounter("admit.clusters_created")
	cClustersDeleted = obs.NewCounter("admit.clusters_deleted")
)

// cRejectByCause breaks admit.rejected down by partition cause
// (admit.reject.<cause>). The map is built once at init over the closed
// cause taxonomy and keyed by the interned String() values the rejection
// path already produces, so attributing a rejection is one map lookup — no
// registry mutex, no allocation — and the memo cache can attribute its hits
// from the cached Result's Cause string.
var cRejectByCause = func() map[string]*obs.Counter {
	m := make(map[string]*obs.Counter)
	for _, c := range partition.RejectionCauses() {
		m[c.String()] = obs.NewCounter("admit.reject." + c.String())
	}
	return m
}()

// countRejection attributes one rejection to its cause counter. Unknown
// cause strings (impossible through the engine, conceivable through a
// hand-built cached Result in tests) simply go unattributed — the aggregate
// cRejected already counted them.
func countRejection(cause string) {
	if c, ok := cRejectByCause[cause]; ok {
		c.Inc()
	}
}

// defaultCacheCap bounds each cluster's rejection cache; outgrowing it
// clears the map (the entries are all orphaned by state drift eventually,
// and wholesale clearing keeps the policy deterministic).
const defaultCacheCap = 1024

// ErrExists is returned by Create when the cluster name is already taken.
var ErrExists = errors.New("admit: cluster name already taken")

// ErrDeleted is returned by Cluster.Admit and Cluster.Remove when the
// cluster was deleted after the caller looked it up: a stale *Cluster can
// never mutate (or journal) again once its delete record is durable. The
// HTTP layer maps it to 404, same as a lookup that missed.
var ErrDeleted = errors.New("admit: cluster deleted")

// Service is the sharded cluster registry, optionally backed by a
// write-ahead journal (AttachJournal) that makes every mutation durable.
type Service struct {
	shards []shard
	j      *Journal    // nil when the service is not journaled
	gate   *Gate       // nil when admission is ungated
	trace  TraceConfig // per-request sinks; zero value traces IDs only
}

type shard struct {
	mu       sync.RWMutex
	clusters map[string]*Cluster
}

// NewService creates a registry striped over the given number of shards
// (clamped to [1, 256]; pass 0 for the default of 16).
func NewService(shards int) *Service {
	switch {
	case shards <= 0:
		shards = 16
	case shards > 256:
		shards = 256
	}
	s := &Service{shards: make([]shard, shards)}
	for i := range s.shards {
		s.shards[i].clusters = make(map[string]*Cluster)
	}
	return s
}

func (s *Service) shardIndex(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(len(s.shards)))
}

func (s *Service) shardFor(name string) *shard {
	return &s.shards[s.shardIndex(name)]
}

// Create registers a new cluster. It fails if the name is empty or taken,
// the engine parameters are invalid, or (on a journaled service) the
// creation could not be made durable. The context carries the request ID
// into the journal record (nil is fine for untraced callers).
func (s *Service) Create(ctx context.Context, name string, m int, policy string, surcharge task.Time) (*Cluster, error) {
	if name == "" {
		return nil, errors.New("admit: cluster name must not be empty")
	}
	eng, err := partition.NewOnline(m, policy, surcharge)
	if err != nil {
		return nil, err
	}
	c := &Cluster{name: name, eng: eng, cacheCap: defaultCacheCap}
	idx := s.shardIndex(name)
	sh := &s.shards[idx]
	var jr *shardJournal
	if s.j != nil {
		c.j, c.jr = s.j, s.j.shards[idx]
		jr = c.jr
		jr.freeze.RLock()
		defer jr.freeze.RUnlock()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.clusters[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	if jr != nil {
		// Journal before insert: a creation that cannot be made durable is
		// never visible.
		if err := jr.append(createRecord(name, m, policy, surcharge, RequestIDFrom(ctx)), &s.j.cfg); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDurability, err)
		}
		s.j.maybeKickSnapshot(jr)
	}
	sh.clusters[name] = c
	cClustersCreated.Inc()
	return c, nil
}

// Get returns the named cluster, if registered.
func (s *Service) Get(name string) (*Cluster, bool) {
	sh := s.shardFor(name)
	sh.mu.RLock()
	c, ok := sh.clusters[name]
	sh.mu.RUnlock()
	return c, ok
}

// Delete unregisters the named cluster, reporting whether it existed.
// Operations already inside the cluster's critical section finish first
// (their journal records precede the delete record); operations that
// looked the cluster up but had not yet entered it fail with ErrDeleted.
// On a journaled service a deletion that cannot be made durable fails
// without unregistering anything. The context carries the request ID into
// the journal record.
func (s *Service) Delete(ctx context.Context, name string) (bool, error) {
	idx := s.shardIndex(name)
	sh := &s.shards[idx]
	var jr *shardJournal
	if s.j != nil {
		jr = s.j.shards[idx]
		jr.freeze.RLock()
		defer jr.freeze.RUnlock()
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c, ok := sh.clusters[name]
	if !ok {
		return false, nil
	}
	// Take the victim's own lock before journaling the delete: Admit and
	// Remove append their records under c.mu, so holding it here guarantees
	// no per-cluster record can land after the delete record (replay refuses
	// a journal that mutates a deleted cluster), and marking the cluster
	// deleted under the same lock turns every later Admit/Remove through a
	// stale *Cluster into ErrDeleted instead of a stray append.
	c.mu.Lock()
	if jr != nil {
		if err := jr.append(deleteRecord(name, RequestIDFrom(ctx)), &s.j.cfg); err != nil {
			c.mu.Unlock()
			return false, fmt.Errorf("%w: %v", ErrDurability, err)
		}
		s.j.maybeKickSnapshot(jr)
	}
	c.deleted = true
	c.mu.Unlock()
	delete(sh.clusters, name)
	cClustersDeleted.Inc()
	return true, nil
}

// Names returns every registered cluster name, sorted.
func (s *Service) Names() []string {
	var out []string
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for name := range sh.clusters {
			out = append(out, name)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Stats is a cluster's per-tenant operation counters. All fields are
// written with atomics and may be read lock-free via StatsSnapshot.
type Stats struct {
	Requests  atomic.Int64
	Accepted  atomic.Int64
	Rejected  atomic.Int64
	Removed   atomic.Int64
	CacheHits atomic.Int64
}

// StatsSnapshot is a point-in-time copy of a cluster's Stats.
type StatsSnapshot struct {
	Requests  int64 `json:"requests"`
	Accepted  int64 `json:"accepted"`
	Rejected  int64 `json:"rejected"`
	Removed   int64 `json:"removed"`
	CacheHits int64 `json:"cacheHits"`
}

// Cluster is one tenant's virtual cluster: the engine, its rejection
// cache, and the tenant's stats.
type Cluster struct {
	name  string
	stats Stats

	// j/jr point at the service journal and this cluster's shard journal;
	// both nil on an unjournaled service.
	j  *Journal
	jr *shardJournal

	mu       sync.Mutex // serializes eng, cache, keyBuf and deleted
	eng      *partition.Online
	cache    map[string]Result
	cacheCap int
	keyBuf   []byte
	deleted  bool // set by Service.Delete; mutations through stale handles fail
}

// Name returns the cluster's registered name.
func (c *Cluster) Name() string { return c.name }

// StatsSnapshot reads the per-tenant counters without taking the cluster
// lock.
func (c *Cluster) StatsSnapshot() StatsSnapshot {
	return StatsSnapshot{
		Requests:  c.stats.Requests.Load(),
		Accepted:  c.stats.Accepted.Load(),
		Rejected:  c.stats.Rejected.Load(),
		Removed:   c.stats.Removed.Load(),
		CacheHits: c.stats.CacheHits.Load(),
	}
}

// ProcEvidence is one processor's rejection evidence: its load at the
// moment of rejection plus the recomputed admission probe in the cluster
// policy's own vocabulary (internal/explain).
type ProcEvidence struct {
	Proc        int                   `json:"proc"`
	Utilization float64               `json:"u"`
	Residents   int                   `json:"residents"`
	Detail      *explain.ProcEvidence `json:"detail,omitempty"`
}

// Result is the outcome of one admission attempt. On acceptance, Handle
// names the placement for a later Remove; on rejection, Cause/Reason carry
// the partition taxonomy and Evidence the per-processor probes (analyzed
// rejections only — input errors carry none).
type Result struct {
	Accepted bool   `json:"accepted"`
	Handle   uint64 `json:"handle,omitempty"`
	Proc     int    `json:"proc"`
	Response int64  `json:"response,omitempty"`

	Cause       string         `json:"cause,omitempty"`
	CauseDetail string         `json:"causeDetail,omitempty"`
	Reason      string         `json:"reason,omitempty"`
	Evidence    []ProcEvidence `json:"evidence,omitempty"`

	// CacheHit reports that a memoized rejection answered the request. It
	// is the only field allowed to differ from the uncached computation.
	CacheHit bool `json:"cacheHit,omitempty"`
}

// Admit runs one admission attempt against the cluster. The context's
// deadline is honored at the serialization point: a request whose deadline
// expired while it waited for the cluster lock returns ctx.Err() without
// consulting the engine. On a journaled service an acceptance that cannot
// be journaled is rolled back and reported as ErrDurability — it never
// happened, durably or otherwise. A cluster concurrently deleted returns
// ErrDeleted. Both verdicts (accept and reject) return a nil error.
func (c *Cluster) Admit(ctx context.Context, t task.Task) (Result, error) {
	if c.jr != nil {
		c.jr.freeze.RLock()
		defer c.jr.freeze.RUnlock()
	}
	// Count the request inside the frozen section: a snapshot cut either
	// sees both this increment and the op's journal record or neither, so
	// replay's one-request-per-acceptance accounting never double-counts.
	cRequests.Inc()
	c.stats.Requests.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.deleted {
		return Result{}, ErrDeleted
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
	}

	var key []byte
	if c.cacheCap > 0 {
		key = c.canonicalKey(t)
		if res, ok := c.cache[string(key)]; ok {
			cCacheHits.Inc()
			cRejected.Inc()
			countRejection(res.Cause)
			c.stats.CacheHits.Add(1)
			c.stats.Rejected.Add(1)
			res.CacheHit = true
			return res, nil
		}
	}

	pl, err := c.eng.Admit(t)
	if err == nil {
		if c.jr != nil {
			if jerr := c.jr.append(admitRecord(c.name, t, pl, RequestIDFrom(ctx)), &c.j.cfg); jerr != nil {
				// The engine accepted but the journal did not: undo the
				// placement so the acknowledged state and the durable state
				// agree that this admission never happened.
				if uerr := c.eng.UndoAdmit(pl.Handle); uerr != nil {
					panic("admit: cannot undo unjournaled admission: " + uerr.Error())
				}
				return Result{}, fmt.Errorf("%w: %v", ErrDurability, jerr)
			}
			c.j.maybeKickSnapshot(c.jr)
		}
		cAccepted.Inc()
		c.stats.Accepted.Add(1)
		return Result{Accepted: true, Handle: pl.Handle, Proc: pl.Proc, Response: pl.Response}, nil
	}
	var rej *partition.Rejection
	if !errors.As(err, &rej) {
		// The engine only returns *Rejection; anything else is a bug.
		panic("admit: online engine returned an untyped error: " + err.Error())
	}
	cRejected.Inc()
	countRejection(rej.Cause.String())
	c.stats.Rejected.Add(1)
	res := Result{
		Proc:        -1,
		Cause:       rej.Cause.String(),
		CauseDetail: rej.Cause.Describe(),
		Reason:      rej.Reason,
		Evidence:    c.evidence(rej.Cause, t),
	}
	if c.cacheCap > 0 {
		if len(c.cache) >= c.cacheCap {
			clear(c.cache)
		}
		if c.cache == nil {
			c.cache = make(map[string]Result)
		}
		c.cache[string(key)] = res
	}
	return res, nil
}

// Remove releases a previously admitted task, reporting whether the handle
// was resident. The context's deadline is honored at the serialization
// point, exactly as in Admit: a removal whose deadline expired while it
// waited for the cluster lock returns ctx.Err() without touching the
// engine. On a journaled service the removal is journaled before the
// engine applies it; a removal that cannot be made durable fails with
// ErrDurability and leaves the task resident. A cluster concurrently
// deleted returns ErrDeleted.
func (c *Cluster) Remove(ctx context.Context, handle uint64) (bool, error) {
	if c.jr != nil {
		c.jr.freeze.RLock()
		defer c.jr.freeze.RUnlock()
	}
	c.mu.Lock()
	if c.deleted {
		c.mu.Unlock()
		return false, ErrDeleted
	}
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			c.mu.Unlock()
			return false, err
		}
	}
	if !c.eng.Has(handle) {
		c.mu.Unlock()
		return false, nil
	}
	if c.jr != nil {
		if err := c.jr.append(removeRecord(c.name, handle, RequestIDFrom(ctx)), &c.j.cfg); err != nil {
			c.mu.Unlock()
			return false, fmt.Errorf("%w: %v", ErrDurability, err)
		}
		c.j.maybeKickSnapshot(c.jr)
	}
	ok := c.eng.Remove(handle)
	c.mu.Unlock()
	if !ok {
		panic("admit: resident handle vanished under the cluster lock")
	}
	cRemoved.Inc()
	c.stats.Removed.Add(1)
	return true, nil
}

// restoreStats reinstates a snapshotted counter state (recovery only).
func (c *Cluster) restoreStats(st StatsSnapshot) {
	c.stats.Requests.Store(st.Requests)
	c.stats.Accepted.Store(st.Accepted)
	c.stats.Rejected.Store(st.Rejected)
	c.stats.Removed.Store(st.Removed)
	c.stats.CacheHits.Store(st.CacheHits)
}

// appendCanonical appends the cluster's canonical engine state (see
// Online.AppendCanonical: byte equality implies observational equivalence
// for every future operation sequence).
func (c *Cluster) appendCanonical(b []byte) []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.eng.AppendCanonical(b)
}

// CanonicalState serializes the whole registry — every cluster's name and
// canonical engine state, in sorted name order. Two services with equal
// CanonicalState are observationally equivalent; the recovery tests and
// the crash-recovery smoke compare digests of exactly this.
func (s *Service) CanonicalState() []byte {
	var b []byte
	for _, name := range s.Names() {
		if c, ok := s.Get(name); ok {
			b = append(b, name...)
			b = append(b, 0x00)
			b = c.appendCanonical(b)
		}
	}
	return b
}

// canonicalKey serializes the full admission question — every resident of
// every processor (surcharge and policy are cluster constants) plus the
// candidate — into the reused key buffer. Byte-exact equality of keys is
// byte-exact equality of questions.
func (c *Cluster) canonicalKey(t task.Task) []byte {
	b := c.keyBuf[:0]
	for q := 0; q < c.eng.M(); q++ {
		for _, sub := range c.eng.Residents(q) {
			b = binary.AppendVarint(b, sub.C)
			b = binary.AppendVarint(b, sub.T)
			b = binary.AppendVarint(b, sub.Deadline)
		}
		b = append(b, 0xFF) // processor boundary
	}
	b = binary.AppendVarint(b, t.C)
	b = binary.AppendVarint(b, t.T)
	b = binary.AppendVarint(b, t.D)
	b = append(b, t.Name...)
	c.keyBuf = b
	return b
}

// evidence assembles the per-processor rejection probes for analyzed
// rejections; input-shaped causes (invalid input, surcharge infeasibility,
// model mismatch) get none — no processor was consulted.
func (c *Cluster) evidence(cause partition.Cause, t task.Task) []ProcEvidence {
	switch cause {
	case partition.CauseThresholdExhausted, partition.CauseRTADeadlineMiss:
	default:
		return nil
	}
	s := c.eng.Surcharge()
	d := t.Deadline()
	prio := int(d)
	out := make([]ProcEvidence, c.eng.M())
	for q := range out {
		res := c.eng.Residents(q)
		pe := ProcEvidence{Proc: q, Utilization: c.eng.Utilization(q), Residents: len(res)}
		if cause == partition.CauseThresholdExhausted {
			u := 0.0
			for _, sub := range res {
				u += float64(sub.C+s) / float64(sub.T)
			}
			pe.Detail = explain.ProbeThreshold(u, bounds.LL(len(res)+1))
		} else {
			for i := range res {
				res[i].C += s
			}
			pe.Detail = explain.ProbeRTA(res, prio, t.C+s, t.T, d, false)
		}
		out[q] = pe
	}
	return out
}

// ProcStatus is one processor's live load.
type ProcStatus struct {
	Proc        int     `json:"proc"`
	Residents   int     `json:"residents"`
	Utilization float64 `json:"u"`
}

// Status is a cluster's live state snapshot.
type Status struct {
	Name      string        `json:"name"`
	M         int           `json:"m"`
	Policy    string        `json:"policy"`
	Surcharge int64         `json:"surcharge"`
	Tasks     int           `json:"tasks"`
	Procs     []ProcStatus  `json:"procs"`
	Stats     StatsSnapshot `json:"stats"`
}

// Status snapshots the cluster's configuration and per-processor load.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	st := Status{
		Name:      c.name,
		M:         c.eng.M(),
		Policy:    c.eng.Policy(),
		Surcharge: c.eng.Surcharge(),
		Tasks:     c.eng.Len(),
		Procs:     make([]ProcStatus, c.eng.M()),
	}
	for q := range st.Procs {
		st.Procs[q] = ProcStatus{Proc: q, Residents: c.eng.ProcLen(q), Utilization: c.eng.Utilization(q)}
	}
	c.mu.Unlock()
	st.Stats = c.StatsSnapshot()
	return st
}
