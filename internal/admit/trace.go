package admit

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Request tracing (DESIGN.md §15): every request gets an ID — the client's
// X-Request-Id when it sent a usable one, a generated one otherwise — echoed
// on every response (including 4xx/5xx and gate sheds), threaded through the
// engine into journal records, and stamped on the access log and the
// slow/errored-request ring. The ID is the join key across all four views:
// an operator holding one from a client report can grep the access log, pull
// the ring entry, and find the exact WAL record the request produced.

// RequestIDHeader is the request-ID header, accepted inbound and always set
// outbound.
const RequestIDHeader = "X-Request-Id"

// maxRequestIDLen bounds accepted client-supplied IDs; longer (or
// non-printable) values are replaced with a generated ID rather than
// laundered into logs.
const maxRequestIDLen = 128

// idPrefix is a per-process random prefix so IDs from different admitd
// instances (or restarts) never collide; idSeq makes them unique within the
// process. Format: 8 hex chars, '-', decimal sequence.
var (
	idPrefix = func() string {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// Entropy exhaustion at init is effectively fatal elsewhere;
			// a fixed prefix only weakens cross-process uniqueness.
			return "admitd00"
		}
		return hex.EncodeToString(b[:])
	}()
	idSeq atomic.Uint64
)

// newRequestID mints a process-unique request ID.
func newRequestID() string {
	seq := idSeq.Add(1)
	// Hand-rolled append keeps this a single small allocation.
	buf := make([]byte, 0, len(idPrefix)+1+20)
	buf = append(buf, idPrefix...)
	buf = append(buf, '-')
	var tmp [20]byte
	i := len(tmp)
	for {
		i--
		tmp[i] = byte('0' + seq%10)
		seq /= 10
		if seq == 0 {
			break
		}
	}
	buf = append(buf, tmp[i:]...)
	return string(buf)
}

// usableRequestID reports whether a client-supplied ID is safe to propagate
// into headers and JSONL logs: non-empty, bounded, printable ASCII.
func usableRequestID(id string) bool {
	if id == "" || len(id) > maxRequestIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] < 0x21 || id[i] > 0x7e {
			return false
		}
	}
	return true
}

// reqInfoKey is the context key for the per-request trace info.
type reqInfoKey struct{}

// ReqInfo is the per-request trace state. The handler chain mutates it in
// place (handleAdmit fills Verdict/Cause), so it travels by pointer.
type ReqInfo struct {
	ID      string
	Verdict string // "accepted" / "rejected" on admit routes
	Cause   string // partition cause on rejections
}

// RequestIDFrom returns the request ID threaded through ctx, or "" outside a
// traced request. Cluster mutations pass it into journal records.
func RequestIDFrom(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	if ri, ok := ctx.Value(reqInfoKey{}).(*ReqInfo); ok {
		return ri.ID
	}
	return ""
}

// EnsureRequestID resolves the request's ID (inbound header or generated)
// and sets it on the response. It is for handlers outside the traced route
// set — cmd/admitd's ready guard uses it so even a 503 "not ready yet"
// carries the ID the client can quote.
func EnsureRequestID(w http.ResponseWriter, r *http.Request) string {
	id := r.Header.Get(RequestIDHeader)
	if !usableRequestID(id) {
		id = newRequestID()
	}
	w.Header().Set(RequestIDHeader, id)
	return id
}

// statusWriter captures the response status for metrics/log attribution.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.code, sw.wrote = code, true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.code, sw.wrote = http.StatusOK, true
	}
	return sw.ResponseWriter.Write(b)
}

// TraceConfig wires the optional per-request sinks. All fields are optional:
// a zero config still assigns/echoes request IDs and records RED metrics.
type TraceConfig struct {
	// Ring retains recent slow/errored requests for GET /debug/requests.
	Ring *obs.RequestRing
	// SlowThreshold marks a successful request as ring-worthy. Zero means
	// only errored requests enter the ring.
	SlowThreshold time.Duration
	// AccessLog receives one JSONL record per (sampled) request.
	AccessLog *obs.AccessLog
}

// SetTracing installs the per-request sinks. Like SetGate, wire it at
// startup — it is not safe to call with requests in flight.
func (s *Service) SetTracing(cfg TraceConfig) { s.trace = cfg }

// httpLatencyBounds is the route-latency bucket layout in microseconds:
// 25µs–1s, covering the warm cache-hit admit (tens of µs) through a gate
// queue wait at the default 1s deadline.
var httpLatencyBounds = []int64{
	25, 50, 100, 250, 500,
	1000, 2500, 5000, 10000, 25000,
	50000, 100000, 250000, 500000, 1000000,
}

// routeMetrics is one route's RED instruments, pre-registered at package
// init so the hot path never touches the registry mutex.
type routeMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

func newRouteMetrics(route string) *routeMetrics {
	return &routeMetrics{
		requests: obs.NewCounter("admit.http." + route + ".requests"),
		errors:   obs.NewCounter("admit.http." + route + ".errors"),
		latency:  obs.NewHistogram("admit.http."+route+".latency_us", httpLatencyBounds...),
	}
}

// Route keys, one per endpoint. Metrics are per-route-key, not per-URL, so
// tenant names never explode the metric namespace.
var httpRouteMetrics = map[string]*routeMetrics{
	"create": newRouteMetrics("create"),
	"list":   newRouteMetrics("list"),
	"status": newRouteMetrics("status"),
	"delete": newRouteMetrics("delete"),
	"admit":  newRouteMetrics("admit"),
	"remove": newRouteMetrics("remove"),
	"canon":  newRouteMetrics("canon"),
}

// traced wraps a route handler with the tracing/RED layer: resolve the
// request ID, set the response header before the handler runs (so every
// error path — including a gate shed that never reaches the handler —
// carries it), time the request, and fan the outcome out to metrics, the
// ring, and the access log. It wraps *outside* the gate on admission routes:
// a 429 shed is precisely the response an operator most wants attributable.
func (s *Service) traced(route string, h http.Handler) http.Handler {
	rm := httpRouteMetrics[route]
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ri := &ReqInfo{ID: EnsureRequestID(w, r)}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		dur := time.Since(start)
		durUS := dur.Microseconds()

		status := sw.code
		if !sw.wrote {
			status = http.StatusOK // handler wrote nothing: implicit 200
		}
		rm.requests.Inc()
		if status >= 400 {
			rm.errors.Inc()
		}
		rm.latency.Observe(durUS)

		cfg := &s.trace
		if cfg.Ring == nil && cfg.AccessLog == nil {
			return
		}
		tenant := r.PathValue("name")
		if cfg.Ring != nil && (status >= 400 || (cfg.SlowThreshold > 0 && dur >= cfg.SlowThreshold)) {
			cfg.Ring.Record(obs.RequestRecord{
				ID: ri.ID, Time: start, Method: r.Method, Route: route,
				Path: r.URL.Path, Tenant: tenant, Status: status,
				DurUS: durUS, Verdict: ri.Verdict, Cause: ri.Cause,
			})
		}
		cfg.AccessLog.Log(obs.AccessRecord{
			ID: ri.ID, Method: r.Method, Route: route, Tenant: tenant,
			Status: status, Verdict: ri.Verdict, Cause: ri.Cause, DurUS: durUS,
		})
	})
}
