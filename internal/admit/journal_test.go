package admit

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/partition"
	"repro/internal/task"
)

// The recovery-equivalence harness: drive one op sequence through a
// journaled service and an in-memory mirror, applying to the mirror only
// the ops the journaled service acknowledged. After a crash, the recovered
// service must match the mirror's canonical state exactly — acknowledged
// ops survive, failed ops leave no trace — and must keep behaving
// identically under continued churn (which exercises the re-derived
// rta.ProcState warm-start caches: a stale cache would change verdicts).

// churner drives the paired op sequence.
type churner struct {
	t       *testing.T
	r       *rand.Rand
	durable *Service
	mirror  *Service
	names   []string
	handles map[string][]uint64 // acknowledged residents per cluster
	acked   int                 // acknowledged mutations
	failed  int                 // durability-failed mutations
}

func newChurner(t *testing.T, seed int64, durable, mirror *Service) *churner {
	return &churner{
		t: t, r: rand.New(rand.NewSource(seed)),
		durable: durable, mirror: mirror,
		names:   []string{"alpha", "beta", "gamma", "delta"},
		handles: make(map[string][]uint64),
	}
}

func (ch *churner) step(op int) {
	t, r := ch.t, ch.r
	name := ch.names[r.Intn(len(ch.names))]
	switch k := r.Intn(12); {
	case k == 0: // create
		pols := partition.OnlinePolicies()
		m, pol, sur := 1+r.Intn(3), pols[r.Intn(len(pols))], task.Time(r.Intn(2))
		_, derr := ch.durable.Create(context.Background(), name, m, pol, sur)
		if errors.Is(derr, ErrDurability) {
			ch.failed++
			return
		}
		_, merr := ch.mirror.Create(context.Background(), name, m, pol, sur)
		if (derr == nil) != (merr == nil) {
			t.Fatalf("op %d: create %q diverged: durable %v, mirror %v", op, name, derr, merr)
		}
		if derr == nil {
			ch.acked++
		}
	case k == 1: // delete
		dok, derr := ch.durable.Delete(context.Background(), name)
		if errors.Is(derr, ErrDurability) {
			ch.failed++
			return
		}
		if derr != nil {
			t.Fatalf("op %d: delete %q: %v", op, name, derr)
		}
		mok, _ := ch.mirror.Delete(context.Background(), name)
		if dok != mok {
			t.Fatalf("op %d: delete %q diverged: durable %v, mirror %v", op, name, dok, mok)
		}
		if dok {
			delete(ch.handles, name)
			ch.acked++
		}
	case k < 4 && len(ch.handles[name]) > 0: // remove
		hs := ch.handles[name]
		h := hs[r.Intn(len(hs))]
		dc, _ := ch.durable.Get(name)
		mc, _ := ch.mirror.Get(name)
		dok, derr := dc.Remove(context.Background(), h)
		if errors.Is(derr, ErrDurability) {
			ch.failed++
			return
		}
		if derr != nil {
			t.Fatalf("op %d: remove %d: %v", op, h, derr)
		}
		mok, _ := mc.Remove(context.Background(), h)
		if !dok || !mok {
			t.Fatalf("op %d: tracked handle %d not resident (durable %v, mirror %v)", op, h, dok, mok)
		}
		for i, x := range hs {
			if x == h {
				ch.handles[name] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
		ch.acked++
	default: // admit
		dc, dok := ch.durable.Get(name)
		mc, mok := ch.mirror.Get(name)
		if dok != mok {
			t.Fatalf("op %d: registry diverged on %q", op, name)
		}
		T := task.Time(10 * (1 + r.Intn(6)))
		tk := task.Task{C: 1 + task.Time(r.Intn(int(T)/2)), T: T}
		if r.Intn(3) == 0 {
			tk.D = tk.C + task.Time(r.Intn(int(T-tk.C)+1))
		}
		if !dok {
			return
		}
		dres, derr := dc.Admit(context.Background(), tk)
		if errors.Is(derr, ErrDurability) {
			ch.failed++
			return
		}
		if derr != nil {
			t.Fatalf("op %d: admit: %v", op, derr)
		}
		mres, merr := mc.Admit(context.Background(), tk)
		if merr != nil {
			t.Fatalf("op %d: mirror admit: %v", op, merr)
		}
		dres.CacheHit, mres.CacheHit = false, false
		if !reflect.DeepEqual(dres, mres) {
			t.Fatalf("op %d: admit verdicts diverged:\ndurable %+v\nmirror  %+v", op, dres, mres)
		}
		if dres.Accepted {
			ch.handles[name] = append(ch.handles[name], dres.Handle)
			ch.acked++
		}
	}
}

func canonEqual(t *testing.T, got, want *Service, label string) {
	t.Helper()
	g, w := got.CanonicalState(), want.CanonicalState()
	if !bytes.Equal(g, w) {
		t.Fatalf("%s: canonical state diverged\nrecovered: %x\nmirror:    %x", label, g, w)
	}
}

// runCrashRecovery is the shared skeleton: churn with a mirror under cfg
// (and optional fault plan), crash, recover, verify canonical equality and
// behavioral continuation.
func runCrashRecovery(t *testing.T, seed int64, ops int, cfg JournalConfig, plan *faultinject.Plan) RecoveryStats {
	t.Helper()
	durable := NewService(4)
	if _, err := durable.AttachJournal(cfg); err != nil {
		t.Fatal(err)
	}
	mirror := NewService(4)
	ch := newChurner(t, seed, durable, mirror)
	if plan != nil {
		faultinject.Arm(*plan)
		defer faultinject.Disarm()
	}
	for op := 0; op < ops; op++ {
		ch.step(op)
	}
	faultinject.Disarm()
	if ch.acked == 0 {
		t.Fatal("churn acknowledged nothing; the run proves nothing")
	}
	durable.crash()

	recovered := NewService(4)
	rs, err := recovered.AttachJournal(cfg)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer recovered.Close()
	canonEqual(t, recovered, mirror, "post-crash")

	// Behavioral continuation: the recovered service (with its re-derived
	// warm-start caches) and the mirror must keep agreeing verdict for
	// verdict. Swap the recovered service in as the churner's durable side.
	cont := newChurner(t, seed+1, recovered, mirror)
	for name, hs := range ch.handles {
		cont.handles[name] = append([]uint64(nil), hs...)
	}
	for op := 0; op < 150; op++ {
		cont.step(op)
	}
	canonEqual(t, recovered, mirror, "post-continuation")
	return rs
}

func TestCrashRecoveryEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  JournalConfig
	}{
		{"fsync-always", JournalConfig{Fsync: FsyncAlways}},
		{"fsync-batch", JournalConfig{Fsync: FsyncBatch, FsyncInterval: time.Millisecond}},
		{"fsync-off", JournalConfig{Fsync: FsyncOff}},
		{"snapshot-heavy", JournalConfig{Fsync: FsyncOff, SnapshotEvery: 8}},
		{"snapshot-disabled", JournalConfig{Fsync: FsyncAlways, SnapshotEvery: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := tc.cfg
			cfg.Dir = t.TempDir()
			runCrashRecovery(t, 11, 400, cfg, nil)
		})
	}
}

// TestCrashRecoveryUnderFaults churns with journal appends, fsyncs, and
// snapshot renames failing at injected rates: failed ops surface
// ErrDurability and must leave no trace, failed snapshots must degrade to
// longer WAL replay, and recovery must still match the mirror exactly.
func TestCrashRecoveryUnderFaults(t *testing.T) {
	cfg := JournalConfig{Dir: t.TempDir(), Fsync: FsyncAlways, SnapshotEvery: 16}
	plan := &faultinject.Plan{
		Seed:                7,
		JournalAppendEvery:  11,
		JournalFsyncEvery:   13,
		SnapshotRenameEvery: 2,
	}
	runCrashRecovery(t, 23, 500, cfg, plan)
	if faultinject.Fired(faultinject.JournalAppend) == 0 || faultinject.Fired(faultinject.JournalFsync) == 0 {
		t.Fatal("fault plan never fired; the run proves nothing")
	}
}

// TestCleanCloseByteIdenticalStatus pins the stronger clean-shutdown
// contract: Close writes a final snapshot including the volatile traffic
// counters, so a reopened service reports byte-identical Status() for
// every cluster, not just equal canonical engine state.
func TestCleanCloseByteIdenticalStatus(t *testing.T) {
	cfg := JournalConfig{Dir: t.TempDir(), Fsync: FsyncBatch, FsyncInterval: time.Millisecond}
	svc := NewService(4)
	if _, err := svc.AttachJournal(cfg); err != nil {
		t.Fatal(err)
	}
	ch := newChurner(t, 5, svc, NewService(4))
	for op := 0; op < 300; op++ {
		ch.step(op)
	}
	statusOf := func(s *Service) []byte {
		var all []Status
		for _, name := range s.Names() {
			c, _ := s.Get(name)
			all = append(all, c.Status())
		}
		b, err := json.Marshal(all)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	before := statusOf(svc)
	if err := svc.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	reopened := NewService(4)
	rs, err := reopened.AttachJournal(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer reopened.Close()
	if rs.Replayed != 0 {
		t.Errorf("clean close left %d journal records to replay, want 0", rs.Replayed)
	}
	if after := statusOf(reopened); !bytes.Equal(before, after) {
		t.Errorf("Status not byte-identical across clean close:\nbefore %s\nafter  %s", before, after)
	}
}

// TestTornTailRecovery pins the crash-mid-append path: a torn append is
// never acknowledged, wedges the journal (fail-stop, no silent repair in
// flight), and on restart the torn bytes are truncated away with the
// acknowledged prefix intact.
func TestTornTailRecovery(t *testing.T) {
	cfg := JournalConfig{Dir: t.TempDir(), Fsync: FsyncAlways}
	durable := NewService(4)
	if _, err := durable.AttachJournal(cfg); err != nil {
		t.Fatal(err)
	}
	mirror := NewService(4)
	ch := newChurner(t, 31, durable, mirror)
	for op := 0; op < 120; op++ {
		ch.step(op)
	}

	// A dedicated target cluster (the churn may have deleted any of its
	// own), created on both sides before the tear.
	if _, err := durable.Create(context.Background(), "torn-target", 2, "", 0); err != nil {
		t.Fatal(err)
	}
	if _, err := mirror.Create(context.Background(), "torn-target", 2, "", 0); err != nil {
		t.Fatal(err)
	}
	c, _ := durable.Get("torn-target")

	faultinject.Arm(faultinject.Plan{JournalTearEvery: 1})
	defer faultinject.Disarm()
	if _, err := c.Admit(context.Background(), task.Task{C: 1, T: 100}); !errors.Is(err, ErrDurability) {
		t.Fatalf("torn admit err = %v, want ErrDurability", err)
	}
	faultinject.Disarm()
	// The journal is wedged fail-stop: later mutations on the same shard
	// also refuse rather than appending after an unrepaired tear.
	if _, err := c.Admit(context.Background(), task.Task{C: 1, T: 100}); !errors.Is(err, ErrDurability) {
		t.Fatalf("post-tear admit err = %v, want ErrDurability (wedged journal)", err)
	}
	durable.crash()

	recovered := NewService(4)
	rs, err := recovered.AttachJournal(cfg)
	if err != nil {
		t.Fatalf("recovery after tear: %v", err)
	}
	defer recovered.Close()
	if rs.TornTails != 1 {
		t.Errorf("TornTails = %d, want 1", rs.TornTails)
	}
	canonEqual(t, recovered, mirror, "post-tear")
}

// TestDeleteAdmitRaceStaysReplayable races Admit/Remove through stale
// cluster handles against Service.Delete and then recovers from the WAL.
// Delete journals its record while holding the victim's own lock and marks
// it deleted, so no per-cluster record can land after the delete record;
// without that exclusion an admit record could follow the delete and
// replay would refuse startup ("replayed admit into unknown cluster") —
// permanently, until manual WAL surgery.
func TestDeleteAdmitRaceStaysReplayable(t *testing.T) {
	dir := t.TempDir()
	cfg := JournalConfig{Dir: dir, Fsync: FsyncOff, SnapshotEvery: -1}
	svc := NewService(2)
	if _, err := svc.AttachJournal(cfg); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 40; round++ {
		if _, err := svc.Create(context.Background(), "racer", 2, "", 0); err != nil {
			t.Fatal(err)
		}
		c, _ := svc.Get("racer")
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					res, err := c.Admit(context.Background(), task.Task{C: 1, T: task.Time(10 + w)})
					if errors.Is(err, ErrDeleted) {
						return
					}
					if err != nil {
						t.Errorf("racing admit: %v", err)
						return
					}
					if res.Accepted && i%2 == 0 {
						if _, err := c.Remove(context.Background(), res.Handle); err != nil && !errors.Is(err, ErrDeleted) {
							t.Errorf("racing remove: %v", err)
							return
						}
					}
				}
			}(w)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := svc.Delete(context.Background(), "racer"); err != nil {
				t.Errorf("racing delete: %v", err)
			}
		}()
		wg.Wait()
		if t.Failed() {
			break
		}
	}
	svc.crash()
	recovered := NewService(2)
	if _, err := recovered.AttachJournal(cfg); err != nil {
		t.Fatalf("recovery after delete/admit races: %v", err)
	}
	recovered.Close()
	if _, ok := recovered.Get("racer"); ok {
		t.Error("deleted cluster survived recovery")
	}
}

// TestRecoveryRefusesCorruption pins the fail-stop contract for anything
// beyond a torn tail: mid-journal garbage, sequence gaps, schema drift,
// and shard-count changes refuse startup instead of guessing.
func TestRecoveryRefusesCorruption(t *testing.T) {
	seedDir := func(t *testing.T) string {
		dir := t.TempDir()
		svc := NewService(4)
		if _, err := svc.AttachJournal(JournalConfig{Dir: dir, Fsync: FsyncAlways, SnapshotEvery: -1}); err != nil {
			t.Fatal(err)
		}
		if _, err := svc.Create(context.Background(), "alpha", 2, "", 0); err != nil {
			t.Fatal(err)
		}
		c, _ := svc.Get("alpha")
		for i := 0; i < 5; i++ {
			if _, err := c.Admit(context.Background(), task.Task{C: 1, T: 10}); err != nil {
				t.Fatal(err)
			}
		}
		svc.crash()
		return dir
	}
	shardOf := func(dir string) string {
		return walPath(dir, NewService(4).shardIndex("alpha"))
	}

	t.Run("mid-journal-garbage", func(t *testing.T) {
		dir := seedDir(t)
		p := shardOf(dir)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		lines[1] = []byte("not json\n")
		if err := os.WriteFile(p, bytes.Join(lines, nil), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewService(4).AttachJournal(JournalConfig{Dir: dir}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("sequence-gap", func(t *testing.T) {
		dir := seedDir(t)
		p := shardOf(dir)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		copy(lines[2:], lines[3:]) // drop a mid-journal record
		if err := os.WriteFile(p, bytes.Join(lines[:len(lines)-1], nil), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewService(4).AttachJournal(JournalConfig{Dir: dir}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("terminated-final-record-corruption", func(t *testing.T) {
		// A newline-terminated final line was written whole — failing to
		// parse it is in-place corruption of a possibly fsync-acknowledged
		// record, not a torn append, and must refuse startup instead of
		// silently truncating an acknowledged mutation away.
		dir := seedDir(t)
		p := shardOf(dir)
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		lines := bytes.SplitAfter(data, []byte("\n"))
		lines[len(lines)-2] = []byte("{\"v\":1,#rot}\n")
		if err := os.WriteFile(p, bytes.Join(lines, nil), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := NewService(4).AttachJournal(JournalConfig{Dir: dir}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("torn-tail-is-not-corruption", func(t *testing.T) {
		dir := seedDir(t)
		f, err := os.OpenFile(shardOf(dir), os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteString(`{"v":1,"seq":`); err != nil {
			t.Fatal(err)
		}
		f.Close()
		svc := NewService(4)
		rs, err := svc.AttachJournal(JournalConfig{Dir: dir})
		if err != nil || rs.TornTails != 1 {
			t.Fatalf("rs %+v err %v, want TornTails 1 and nil error", rs, err)
		}
		svc.Close()
	})
	t.Run("shard-count-mismatch", func(t *testing.T) {
		dir := seedDir(t)
		_, err := NewService(8).AttachJournal(JournalConfig{Dir: dir})
		if err == nil {
			t.Fatal("8-shard service opened a 4-shard data dir")
		}
	})
}

// TestSnapshotNow pins the explicit snapshot path: after SnapshotNow the
// WAL is empty, and a crash immediately after recovers entirely from the
// snapshot (zero replayed records).
func TestSnapshotNow(t *testing.T) {
	cfg := JournalConfig{Dir: t.TempDir(), Fsync: FsyncAlways, SnapshotEvery: -1}
	svc := NewService(4)
	if _, err := svc.AttachJournal(cfg); err != nil {
		t.Fatal(err)
	}
	mirror := NewService(4)
	ch := newChurner(t, 13, svc, mirror)
	for op := 0; op < 150; op++ {
		ch.step(op)
	}
	if err := svc.SnapshotNow(); err != nil {
		t.Fatal(err)
	}
	svc.crash()
	recovered := NewService(4)
	rs, err := recovered.AttachJournal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer recovered.Close()
	if rs.Replayed != 0 {
		t.Errorf("Replayed = %d after SnapshotNow, want 0", rs.Replayed)
	}
	canonEqual(t, recovered, mirror, "post-snapshot crash")
}

// FuzzJournalReplay is the randomized end-to-end equivalence check: any
// (seed, ops) pair must survive crash and recovery with canonical state
// equal to the acknowledged-ops mirror.
func FuzzJournalReplay(f *testing.F) {
	f.Add(int64(1), uint16(50), uint8(0))
	f.Add(int64(42), uint16(300), uint8(1))
	f.Add(int64(-7), uint16(120), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, ops uint16, mode uint8) {
		cfg := JournalConfig{Dir: t.TempDir()}
		switch mode % 3 {
		case 0:
			cfg.Fsync = FsyncAlways
		case 1:
			cfg.Fsync, cfg.FsyncInterval = FsyncBatch, time.Millisecond
		case 2:
			cfg.Fsync, cfg.SnapshotEvery = FsyncOff, 8
		}
		n := int(ops%500) + 20
		durable := NewService(4)
		if _, err := durable.AttachJournal(cfg); err != nil {
			t.Fatal(err)
		}
		mirror := NewService(4)
		ch := newChurner(t, seed, durable, mirror)
		for op := 0; op < n; op++ {
			ch.step(op)
		}
		durable.crash()
		recovered := NewService(4)
		if _, err := recovered.AttachJournal(cfg); err != nil {
			t.Fatalf("recovery: %v", err)
		}
		defer recovered.Close()
		canonEqual(t, recovered, mirror, "fuzz post-crash")
	})
}
