package taskio

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/task"
)

// PlanFile is the JSON representation of a partitioning plan: the task set
// plus the per-processor subtask assignment, so a verified plan can be
// saved by cmd/partition and replayed by cmd/simulate (or shipped to a
// target system's configuration pipeline).
type PlanFile struct {
	// Scheduler names the runtime policy the plan assumes ("FP" or "EDF").
	Scheduler string `json:"scheduler,omitempty"`
	// Tasks is the DM-sorted task set; subtask task indices refer to it.
	Tasks []JSONTask `json:"tasks"`
	// Processors lists each processor's subtasks, highest priority first.
	Processors [][]JSONSubtask `json:"processors"`
	// PreAssigned holds, per processor, the pre-assigned task index or -1.
	PreAssigned []int `json:"preAssigned,omitempty"`
}

// JSONSubtask is one fragment in the JSON representation.
type JSONSubtask struct {
	Task     int       `json:"task"`
	Part     int       `json:"part"`
	C        task.Time `json:"c"`
	T        task.Time `json:"t"`
	Deadline task.Time `json:"deadline"`
	Offset   task.Time `json:"offset"`
	Tail     bool      `json:"tail,omitempty"`
}

// SavePlan writes an assignment (with its scheduler tag) as indented JSON.
func SavePlan(w io.Writer, asg *task.Assignment, scheduler string) error {
	if err := asg.Validate(); err != nil {
		return fmt.Errorf("taskio: refusing to save invalid plan: %w", err)
	}
	pf := PlanFile{
		Scheduler:   scheduler,
		Tasks:       make([]JSONTask, len(asg.Set)),
		Processors:  make([][]JSONSubtask, asg.M()),
		PreAssigned: append([]int(nil), asg.PreAssigned...),
	}
	for i, t := range asg.Set {
		pf.Tasks[i] = JSONTask{Name: t.Name, C: t.C, T: t.T, D: t.D}
	}
	for q, list := range asg.Procs {
		subs := make([]JSONSubtask, len(list))
		for i, s := range list {
			subs[i] = JSONSubtask{
				Task: s.TaskIndex, Part: s.Part, C: s.C, T: s.T,
				Deadline: s.Deadline, Offset: s.Offset, Tail: s.Tail,
			}
		}
		pf.Processors[q] = subs
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pf)
}

// ParsePlan decodes and validates a plan produced by SavePlan.
func ParsePlan(data []byte) (*task.Assignment, string, error) {
	var pf PlanFile
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pf); err != nil {
		return nil, "", fmt.Errorf("taskio: bad plan JSON: %w", err)
	}
	ts := make(task.Set, len(pf.Tasks))
	for i, jt := range pf.Tasks {
		name := jt.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		ts[i] = task.Task{Name: name, C: jt.C, T: jt.T, D: jt.D}
	}
	if err := ts.Validate(); err != nil {
		return nil, "", fmt.Errorf("taskio: plan task set invalid: %w", err)
	}
	asg := task.NewAssignment(ts, len(pf.Processors))
	if pf.PreAssigned != nil {
		if len(pf.PreAssigned) != asg.M() {
			return nil, "", fmt.Errorf("taskio: %d preAssigned entries for %d processors", len(pf.PreAssigned), asg.M())
		}
		copy(asg.PreAssigned, pf.PreAssigned)
	}
	for q, subs := range pf.Processors {
		for _, js := range subs {
			asg.Add(q, task.Subtask{
				TaskIndex: js.Task, Part: js.Part, C: js.C, T: js.T,
				Deadline: js.Deadline, Offset: js.Offset, Tail: js.Tail,
			})
		}
	}
	if err := asg.Validate(); err != nil {
		return nil, "", fmt.Errorf("taskio: plan fails validation: %w", err)
	}
	return asg, pf.Scheduler, nil
}

// LoadPlan reads a plan file from disk.
func LoadPlan(path string) (*task.Assignment, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", fmt.Errorf("taskio: %w", err)
	}
	return ParsePlan(data)
}
