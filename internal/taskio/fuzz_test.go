package taskio

import (
	"bytes"
	"testing"
)

// FuzzParseRoundTrip feeds Parse arbitrary bytes (it must never panic) and
// requires every set it accepts to survive a Save → Parse round trip
// unchanged — the property the CLI pipeline (genset | partition | simulate)
// depends on.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add([]byte("1 10\n2 20\n"))
	f.Add([]byte("# comment\nctrl 2 10\nio 3 30 25\n"))
	f.Add([]byte(`{"tasks":[{"name":"a","c":2,"t":10},{"c":1,"t":5,"d":4}]}`))
	f.Add([]byte("{"))
	f.Add([]byte("9223372036854775807 9223372036854775807\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		ts, err := Parse(data)
		if err != nil {
			return // rejected input: only the no-panic property applies
		}
		var buf bytes.Buffer
		if err := Save(&buf, ts); err != nil {
			t.Fatalf("Save of an accepted set failed: %v\ninput: %q", err, data)
		}
		ts2, err := Parse(buf.Bytes())
		if err != nil {
			t.Fatalf("re-Parse of saved set failed: %v\nsaved: %s", err, buf.Bytes())
		}
		if len(ts2) != len(ts) {
			t.Fatalf("round trip changed task count: %d → %d", len(ts), len(ts2))
		}
		for i := range ts {
			if ts[i] != ts2[i] {
				t.Fatalf("task %d changed in round trip: %+v → %+v", i, ts[i], ts2[i])
			}
		}
	})
}
