package taskio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/task"
)

func TestParseText(t *testing.T) {
	in := `
# avionics demo
imu   1 4
ctrl  2 8

10 40
`
	ts, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 {
		t.Fatalf("got %d tasks", len(ts))
	}
	if ts[0].Name != "imu" || ts[0].C != 1 || ts[0].T != 4 {
		t.Errorf("task 0 = %v", ts[0])
	}
	if ts[2].Name != "t2" || ts[2].C != 10 || ts[2].T != 40 {
		t.Errorf("anonymous task = %v", ts[2])
	}
}

func TestParseJSON(t *testing.T) {
	in := `{"tasks": [{"name": "a", "c": 2, "t": 10}, {"c": 1, "t": 5}]}`
	ts, err := Parse([]byte(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 || ts[0].Name != "a" || ts[1].Name != "t1" {
		t.Fatalf("parsed %v", ts)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"1 2 3 4",                               // too many fields
		"a x 10",                                // bad C
		"a 1 y",                                 // bad T
		"a 5 4",                                 // C > T
		`{"tasks": [{"c": 0, "t": 5}]}`,         // invalid task
		`{"tasks": [{"c": 1, "t": 5}], "x": 1}`, // unknown field
		"",                                      // empty set
	}
	for _, in := range bad {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	ts := task.Set{{Name: "a", C: 2, T: 10}, {Name: "b", C: 3, T: 20}}
	var buf bytes.Buffer
	if err := Save(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := Parse(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip lost tasks: %v", got)
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Errorf("task %d: %v vs %v", i, got[i], ts[i])
		}
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.txt")
	if err := os.WriteFile(path, []byte("a 1 4\nb 2 8\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %v", ts)
	}
	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file loaded")
	}
}

func TestParseJSONWhitespace(t *testing.T) {
	in := "\n\t {\"tasks\": [{\"c\": 1, \"t\": 5}]}\n"
	if _, err := Parse([]byte(in)); err != nil {
		t.Fatal(err)
	}
}

func TestSaveIsIndented(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, task.Set{{Name: "a", C: 1, T: 2}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\n  ") {
		t.Error("output not indented")
	}
}
