package taskio

import (
	"bytes"
	"testing"

	"repro/internal/partition"
	"repro/internal/task"
)

func planFixture(t *testing.T) *task.Assignment {
	t.Helper()
	ts := task.Set{
		{Name: "a", C: 3, T: 5},
		{Name: "b", C: 3, T: 5},
		{Name: "c", C: 3, T: 5},
	}
	res := (partition.RMTSLight{}).Partition(ts, 2)
	if !res.OK {
		t.Fatal(res.Reason)
	}
	return res.Assignment
}

func TestPlanRoundTrip(t *testing.T) {
	asg := planFixture(t)
	var buf bytes.Buffer
	if err := SavePlan(&buf, asg, "FP"); err != nil {
		t.Fatal(err)
	}
	got, sched, err := ParsePlan(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if sched != "FP" {
		t.Errorf("scheduler = %q", sched)
	}
	if got.String() != asg.String() {
		t.Errorf("round trip changed the plan:\n%s\nvs\n%s", got, asg)
	}
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSavePlanRejectsInvalid(t *testing.T) {
	ts := task.Set{{Name: "a", C: 1, T: 4}}
	asg := task.NewAssignment(ts, 1) // task never assigned
	var buf bytes.Buffer
	if err := SavePlan(&buf, asg, "FP"); err == nil {
		t.Error("invalid plan saved")
	}
}

func TestParsePlanRejectsGarbage(t *testing.T) {
	bad := []string{
		`{"tasks": [], "processors": []}`, // empty set invalid
		`{"tasks": [{"c":1,"t":4}], "processors": [[]], "bogus": 1}`,
		`{"tasks": [{"c":1,"t":4}], "processors": [[{"task":0,"part":1,"c":2,"t":4,"deadline":4,"offset":0,"tail":true}]]}`, // C mismatch
		`not json`,
	}
	for i, in := range bad {
		if _, _, err := ParsePlan([]byte(in)); err == nil {
			t.Errorf("garbage plan %d accepted", i)
		}
	}
}

func TestParsePlanPreAssignedLengthCheck(t *testing.T) {
	in := `{"tasks": [{"c":1,"t":4}], "processors": [[{"task":0,"part":1,"c":1,"t":4,"deadline":4,"offset":0,"tail":true}]], "preAssigned": [0, 1]}`
	if _, _, err := ParsePlan([]byte(in)); err == nil {
		t.Error("mismatched preAssigned accepted")
	}
}
