// Package taskio loads and saves task sets for the command-line tools. Two
// formats are supported and auto-detected:
//
//   - JSON: {"tasks": [{"name": "ctrl", "c": 2, "t": 10}, ...]}
//   - plain text: one task per line, "name C T" or "C T", with '#'
//     comments and blank lines ignored.
package taskio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"unicode/utf8"

	"repro/internal/task"
)

// File is the JSON representation of a task set.
type File struct {
	// Tasks lists the tasks.
	Tasks []JSONTask `json:"tasks"`
}

// JSONTask is one task in the JSON representation.
type JSONTask struct {
	Name string    `json:"name,omitempty"`
	C    task.Time `json:"c"`
	T    task.Time `json:"t"`
	// D is the optional constrained relative deadline; omitted or zero
	// means implicit (D = T).
	D task.Time `json:"d,omitempty"`
}

// Load reads a task set from the named file, auto-detecting the format.
func Load(path string) (task.Set, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("taskio: %w", err)
	}
	return Parse(data)
}

// Parse decodes a task set from bytes, auto-detecting JSON versus text.
func Parse(data []byte) (task.Set, error) {
	trimmed := bytes.TrimSpace(data)
	if len(trimmed) > 0 && trimmed[0] == '{' {
		return parseJSON(trimmed)
	}
	return parseText(trimmed)
}

func parseJSON(data []byte) (task.Set, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("taskio: bad JSON: %w", err)
	}
	ts := make(task.Set, 0, len(f.Tasks))
	for i, jt := range f.Tasks {
		name := jt.Name
		if name == "" {
			name = fmt.Sprintf("t%d", i)
		}
		ts = append(ts, task.Task{Name: name, C: jt.C, T: jt.T, D: jt.D})
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("taskio: %w", err)
	}
	return ts, nil
}

func parseText(data []byte) (task.Set, error) {
	var ts task.Set
	sc := bufio.NewScanner(bytes.NewReader(data))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !utf8.ValidString(line) {
			// JSON output (Save) cannot carry invalid UTF-8 faithfully — the
			// encoder would silently substitute U+FFFD, breaking the
			// parse/save round trip — so reject it here with a position.
			return nil, fmt.Errorf("taskio: line %d: not valid UTF-8", lineNo)
		}
		fields := strings.Fields(line)
		var name string
		var nums []string
		switch len(fields) {
		case 2:
			name = fmt.Sprintf("t%d", len(ts))
			nums = fields
		case 3:
			// "name C T" or "C T D": numeric first field selects the latter.
			if _, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
				name = fmt.Sprintf("t%d", len(ts))
				nums = fields
			} else {
				name = fields[0]
				nums = fields[1:]
			}
		case 4:
			name = fields[0]
			nums = fields[1:]
		default:
			return nil, fmt.Errorf("taskio: line %d: want \"[name] C T [D]\", got %q", lineNo, line)
		}
		c, err := strconv.ParseInt(nums[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("taskio: line %d: bad C %q", lineNo, nums[0])
		}
		t, err := strconv.ParseInt(nums[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("taskio: line %d: bad T %q", lineNo, nums[1])
		}
		var d int64
		if len(nums) == 3 {
			d, err = strconv.ParseInt(nums[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("taskio: line %d: bad D %q", lineNo, nums[2])
			}
		}
		ts = append(ts, task.Task{Name: name, C: c, T: t, D: d})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("taskio: %w", err)
	}
	if err := ts.Validate(); err != nil {
		return nil, fmt.Errorf("taskio: %w", err)
	}
	return ts, nil
}

// Save writes the task set as indented JSON.
func Save(w io.Writer, ts task.Set) error {
	f := File{Tasks: make([]JSONTask, len(ts))}
	for i, t := range ts {
		f.Tasks[i] = JSONTask{Name: t.Name, C: t.C, T: t.T, D: t.D}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}
