// Package obs is the instrumentation layer of the reproduction: atomic
// counters and bounded histograms behind a global enable switch, a
// structured decision-trace recorder for the partitioning algorithms, and
// wall-clock spans for experiment phases. It is stdlib-only and built for
// two hard requirements:
//
//  1. Zero overhead when disabled. Every Counter.Add / Histogram.Observe
//     checks one atomic bool and returns; the decision-trace hooks in
//     internal/partition cost a single nil check.
//  2. Determinism. Counters only ever accumulate — no analysis code reads
//     them back — so enabling or disabling instrumentation can never change
//     experiment output, and because the instrumented work itself is
//     deterministic, counter totals are identical at any worker count.
//     Wall-clock data (spans, meter ETAs) is kept strictly separate from
//     counter data so deterministic snapshots stay comparable.
//
// The Default registry collects every metric created via NewCounter /
// NewHistogram; Default.Snapshot() returns a name-sorted, render-ready view
// and Reset() rearms it between experiments.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"
)

var on atomic.Bool

// SetEnabled turns metric collection on or off globally. Disabled is the
// default; analysis hot paths then pay one atomic load per hook.
func SetEnabled(v bool) { on.Store(v) }

// On reports whether metric collection is enabled.
func On() bool { return on.Load() }

// numStripes is the per-metric stripe count. Hot counters are hammered by
// every experiment worker at once; a single atomic word then ping-pongs its
// cache line between cores and the contention dominates the hook cost.
// Striping the word numStripes ways (each stripe on its own cache line)
// keeps Add wait-free and totals exact — reads just sum the stripes.
const numStripes = 16

// stripe is one cache-line-isolated accumulator cell.
type stripe struct {
	v atomic.Int64
	_ [56]byte // pad to 64 bytes so neighboring stripes never false-share
}

// stripeIdx picks the calling goroutine's stripe. Concurrently live
// goroutines occupy distinct stacks, so the address of a stack variable is a
// free quasi-goroutine-ID; a golden-ratio multiply diffuses whichever bits
// distinguish the stacks into the top bits. Collisions only cost contention,
// never correctness, and the value need not be stable across calls.
func stripeIdx() int {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b)) >> 4)
	return int((h*0x9e3779b97f4a7c15)>>60) & (numStripes - 1)
}

// Counter is a monotonically increasing striped atomic counter. The zero
// value is unusable; obtain counters from a Registry (or NewCounter for
// Default).
type Counter struct {
	name    string
	stripes [numStripes]stripe
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Inc adds 1 when instrumentation is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n when instrumentation is enabled.
func (c *Counter) Add(n int64) {
	if on.Load() {
		c.stripes[stripeIdx()].v.Add(n)
	}
}

// Value returns the current total: the sum over stripes. It is exact
// whenever no Add is concurrently in flight (every reader in the repo
// snapshots after the instrumented work has joined).
func (c *Counter) Value() int64 {
	var t int64
	for i := range c.stripes {
		t += c.stripes[i].v.Load()
	}
	return t
}

// defaultBounds is the bucket layout used when a histogram is created
// without explicit bounds — tuned for "iterations per call" style counts.
var defaultBounds = []int64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}

// histStripe is one worker-stripe of a Histogram: its own bucket array and
// sum, each allocation private to the stripe so concurrent observers on
// different stripes never share cache lines.
type histStripe struct {
	counts []atomic.Int64 // len(bounds)+1; last is overflow
	sum    atomic.Int64
	_      [48]byte
}

// Histogram is a bounded histogram over int64 observations: a fixed set of
// ascending upper bounds plus one overflow bucket, with total count, sum
// and max tracked atomically (counts and sum striped like Counter). The
// bucket layout is fixed at creation, so memory use is bounded regardless
// of observation volume.
type Histogram struct {
	name    string
	bounds  []int64
	stripes [numStripes]histStripe
	max     atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records v when instrumentation is enabled. v is placed in the
// first bucket whose upper bound is ≥ v, or in the overflow bucket. The
// bucket scan is linear: layouts are a dozen or so buckets, where the scan
// beats sort.Search's closure-calling binary search on the hot path.
func (h *Histogram) Observe(v int64) {
	if !on.Load() {
		return
	}
	i := 0
	for i < len(h.bounds) && h.bounds[i] < v {
		i++
	}
	st := &h.stripes[stripeIdx()]
	st.counts[i].Add(1)
	st.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// bucketCount returns bucket i's total across stripes.
func (h *Histogram) bucketCount(i int) int64 {
	var t int64
	for s := range h.stripes {
		t += h.stripes[s].counts[i].Load()
	}
	return t
}

// sumTotal returns the observation sum across stripes.
func (h *Histogram) sumTotal() int64 {
	var t int64
	for s := range h.stripes {
		t += h.stripes[s].sum.Load()
	}
	return t
}

// Gauge is a point-in-time level metric: unlike a Counter it can go down
// (queue depth, resident tasks) or be a pure view over state owned
// elsewhere (a GaugeFunc reading an atomic the instrumented code already
// maintains). Settable gauges follow the global enable switch like every
// other metric; func gauges are evaluated at snapshot time and cost the
// instrumented code nothing at all.
type Gauge struct {
	name string
	v    atomic.Int64
	fn   atomic.Pointer[func() int64]
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores v when instrumentation is enabled.
func (g *Gauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrease) when instrumentation is
// enabled.
func (g *Gauge) Add(d int64) {
	if on.Load() {
		g.v.Add(d)
	}
}

// Value returns the gauge's current level: the callback's answer for a
// func gauge, the stored value otherwise.
func (g *Gauge) Value() int64 {
	if p := g.fn.Load(); p != nil {
		return (*p)()
	}
	return g.v.Load()
}

// GaugeValue is one gauge in a Snapshot.
type GaugeValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// CounterValue is one counter in a Snapshot.
type CounterValue struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// BucketValue is one histogram bucket in a Snapshot. Upper = -1 marks the
// overflow (+Inf) bucket.
type BucketValue struct {
	Upper int64 `json:"upper"`
	Count int64 `json:"count"`
}

// HistogramValue is one histogram in a Snapshot.
type HistogramValue struct {
	Name    string        `json:"name"`
	Count   int64         `json:"count"`
	Sum     int64         `json:"sum"`
	Max     int64         `json:"max"`
	Buckets []BucketValue `json:"buckets"`
}

// Mean returns the average observation, or 0 for an empty histogram.
func (h HistogramValue) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// SpanValue is one completed wall-clock span in a Snapshot. Spans are
// inherently nondeterministic; they are reported apart from counters so the
// deterministic part of a snapshot stays comparable across runs.
type SpanValue struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Snapshot is a point-in-time view of a registry, with counters, gauges
// and histograms sorted by name.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges,omitempty"`
	Histograms []HistogramValue `json:"histograms,omitempty"`
	Spans      []SpanValue      `json:"spans,omitempty"`
}

// GetGauge returns the value of the named gauge, or 0 if absent.
func (s Snapshot) GetGauge(name string) int64 {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	return 0
}

// Get returns the value of the named counter, or 0 if absent.
func (s Snapshot) Get(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// GetHistogram returns the named histogram view and whether it exists.
func (s Snapshot) GetHistogram(name string) (HistogramValue, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramValue{}, false
}

// WriteText renders the snapshot as aligned "name value" lines, histograms
// with count/mean/max and per-bucket tallies, and spans with seconds.
func (s Snapshot) WriteText(w io.Writer) {
	width := 0
	for _, c := range s.Counters {
		if len(c.Name) > width {
			width = len(c.Name)
		}
	}
	for _, c := range s.Counters {
		fmt.Fprintf(w, "%-*s %d\n", width, c.Name, c.Value)
	}
	for _, g := range s.Gauges {
		fmt.Fprintf(w, "gauge %s %d\n", g.Name, g.Value)
	}
	for _, h := range s.Histograms {
		fmt.Fprintf(w, "%s count=%d mean=%.2f max=%d\n", h.Name, h.Count, h.Mean(), h.Max)
		for _, b := range h.Buckets {
			if b.Count == 0 {
				continue
			}
			if b.Upper < 0 {
				fmt.Fprintf(w, "  ≤+Inf %d\n", b.Count)
			} else {
				fmt.Fprintf(w, "  ≤%-4d %d\n", b.Upper, b.Count)
			}
		}
	}
	for _, sp := range s.Spans {
		fmt.Fprintf(w, "span %s %.3fs\n", sp.Name, sp.Seconds)
	}
}

// Registry holds a named set of counters and histograms plus completed
// spans. The zero value is not usable; use NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	spans    []SpanValue
}

// Default is the process-wide registry the analysis packages register
// their metrics in.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge returns the settable gauge registered under name, creating it on
// first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{name: name}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers (or re-points) a callback gauge: fn is evaluated at
// snapshot time, so the instrumented code pays nothing per update. Re-
// registration replaces the callback — the latest owner of the name wins,
// which is what lets a restarted service (or a test building services in a
// loop) re-bind instance state without leaking dead closures into scrapes.
// fn must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	g.fn.Store(&fn)
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given ascending bucket upper bounds on first use (defaultBounds when
// none are given). Bounds are fixed by the first creation.
func (r *Registry) Histogram(name string, bounds ...int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[name]; ok {
		return h
	}
	if len(bounds) == 0 {
		bounds = defaultBounds
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	h := &Histogram{name: name, bounds: b}
	for s := range h.stripes {
		h.stripes[s].counts = make([]atomic.Int64, len(b)+1)
	}
	r.hists[name] = h
	return h
}

// Snapshot returns the registry's current state, name-sorted. Func gauges
// are evaluated after the registry lock is released: callbacks reach into
// instrumented code (shard maps, gate internals) that takes its own locks,
// and evaluating them under r.mu would couple those lock orders to the
// registry's.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	var s Snapshot
	for _, c := range r.counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(a, b int) bool { return s.Counters[a].Name < s.Counters[b].Name })
	gauges := make([]*Gauge, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	for _, h := range r.hists {
		hv := HistogramValue{Name: h.name, Sum: h.sumTotal(), Max: h.max.Load()}
		for i := 0; i <= len(h.bounds); i++ {
			upper := int64(-1)
			if i < len(h.bounds) {
				upper = h.bounds[i]
			}
			n := h.bucketCount(i)
			hv.Count += n
			hv.Buckets = append(hv.Buckets, BucketValue{Upper: upper, Count: n})
		}
		s.Histograms = append(s.Histograms, hv)
	}
	sort.Slice(s.Histograms, func(a, b int) bool { return s.Histograms[a].Name < s.Histograms[b].Name })
	s.Spans = append(s.Spans, r.spans...)
	r.mu.Unlock()

	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(a, b int) bool { return s.Gauges[a].Name < s.Gauges[b].Name })
	return s
}

// Value returns the named counter's current total (0 if absent).
func (r *Registry) Value(name string) int64 {
	r.mu.Lock()
	c, ok := r.counters[name]
	r.mu.Unlock()
	if !ok {
		return 0
	}
	return c.Value()
}

// Reset zeroes every counter and histogram and discards completed spans.
// Registered metric objects stay valid.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		for i := range c.stripes {
			c.stripes[i].v.Store(0)
		}
	}
	for _, g := range r.gauges {
		g.v.Store(0) // func gauges keep their callback: they mirror live state
	}
	for _, h := range r.hists {
		for s := range h.stripes {
			st := &h.stripes[s]
			for i := range st.counts {
				st.counts[i].Store(0)
			}
			st.sum.Store(0)
		}
		h.max.Store(0)
	}
	r.spans = nil
}

// NewCounter registers (or fetches) a counter in the Default registry.
func NewCounter(name string) *Counter { return Default.Counter(name) }

// NewGauge registers (or fetches) a settable gauge in the Default registry.
func NewGauge(name string) *Gauge { return Default.Gauge(name) }

// NewHistogram registers (or fetches) a histogram in the Default registry.
func NewHistogram(name string, bounds ...int64) *Histogram {
	return Default.Histogram(name, bounds...)
}

// Value returns the named Default-registry counter total.
func Value(name string) int64 { return Default.Value(name) }

// Reset rearms the Default registry.
func Reset() { Default.Reset() }
