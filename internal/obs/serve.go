package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// StatusServer is the read-only live view of a running harness: current
// metrics, sweep progress, and the stdlib pprof handlers. It never mutates
// observability state — every endpoint renders a mutex-guarded snapshot —
// so serving cannot perturb experiment output (wall-clock perturbation from
// profiling aside, which is exactly what pprof is for).
//
//	GET /metrics   — registry snapshot; JSON (schema-versioned
//	                 SnapshotExport) when the Accept header prefers
//	                 application/json, aligned text otherwise
//	GET /progress  — per-sweep point completion and ETA as JSON
//	                 (text with ?format=text)
//	GET /healthz   — liveness probe: 200 with the build identity (go
//	                 version, GOMAXPROCS, git revision) under the same
//	                 field names the perfdiff bench records carry, so a
//	                 live harness is attributable to a bench capture
//	GET /readyz    — readiness probe: 200 only in the serving state, 503
//	                 while recovering (journal replay) or draining
//	                 (shutdown), so balancers stop routing at both edges
//	GET /debug/pprof/ — net/http/pprof index, profiles, symbolization
type StatusServer struct {
	reg     *Registry
	lis     net.Listener
	srv     *http.Server
	handler http.Handler
}

// Serve listens on addr (host:port; :0 picks a free port) and starts the
// status server over reg in a background goroutine. The returned server
// reports its bound address via Addr and is shut down with Close.
func Serve(addr string, reg *Registry) (*StatusServer, error) {
	return ServeWith(addr, reg)
}

// ServeWith is Serve with extra routes mounted beside the status routes —
// cmd/admitd uses it to serve the admission API and the observability
// surface from one listener. Extra routes appear on the "/" index alongside
// the built-in ones.
func ServeWith(addr string, reg *Registry, extra ...Route) (*StatusServer, error) {
	return ServeOpts(addr, reg, ServeOptions{}, extra...)
}

// ServeOptions carries the HTTP server's slow-client protections. The
// zero value gets the defaults below; set a field negative to disable that
// timeout explicitly (for long-lived pprof profile captures, say).
type ServeOptions struct {
	// ReadHeaderTimeout bounds header receipt (the classic Slowloris
	// exposure). Default 5s.
	ReadHeaderTimeout time.Duration
	// ReadTimeout bounds receipt of the whole request. Default 30s.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing the whole response. Default 0
	// (disabled): /debug/pprof/profile and /debug/pprof/trace stream for
	// their requested duration, which a write deadline would sever.
	WriteTimeout time.Duration
	// IdleTimeout bounds keep-alive idleness. Default 2m.
	IdleTimeout time.Duration
}

func timeoutOr(v, def time.Duration) time.Duration {
	switch {
	case v == 0:
		return def
	case v < 0:
		return 0
	}
	return v
}

// ServeOpts is ServeWith with explicit server timeout options.
func ServeOpts(addr string, reg *Registry, opts ServeOptions, extra ...Route) (*StatusServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &StatusServer{reg: reg, lis: lis, handler: StatusHandlerWith(reg, extra...)}
	s.srv = &http.Server{
		Handler:           s.handler,
		ReadHeaderTimeout: timeoutOr(opts.ReadHeaderTimeout, 5*time.Second),
		ReadTimeout:       timeoutOr(opts.ReadTimeout, 30*time.Second),
		WriteTimeout:      timeoutOr(opts.WriteTimeout, 0),
		IdleTimeout:       timeoutOr(opts.IdleTimeout, 2*time.Minute),
	}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the server's bound listen address.
func (s *StatusServer) Addr() string { return s.lis.Addr().String() }

// closeGrace bounds how long Close waits for in-flight responses. Scrapes
// are snapshot renders that finish in microseconds; the grace only matters
// for a pprof profile capture caught mid-flight, and two seconds keeps
// harness teardown prompt even then.
const closeGrace = 2 * time.Second

// Close stops accepting connections and waits briefly for in-flight
// responses to finish, so a scrape racing harness teardown still gets its
// complete body instead of a reset connection. If the grace period expires
// (or shutdown fails) the remaining connections are torn down hard.
func (s *StatusServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), closeGrace)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// Handler returns the server's routes as a plain http.Handler, so tests can
// drive them through httptest without opening a socket.
func (s *StatusServer) Handler() http.Handler {
	return s.handler
}

// Route is one mountable endpoint. Pattern is a net/http mux pattern and
// may carry a Go 1.22 method prefix ("POST /v1/clusters"); the "/" index
// lists the path of every registered route.
type Route struct {
	Pattern string
	Handler http.Handler
}

// StatusHandler builds the read-only status mux over reg (nil means the
// Default registry).
func StatusHandler(reg *Registry) http.Handler {
	return StatusHandlerWith(reg)
}

// StatusHandlerWith builds the status mux with extra routes mounted beside
// the built-in ones. The "/" index is generated from the full route list,
// so it stays truthful no matter what is mounted.
func StatusHandlerWith(reg *Registry, extra ...Route) http.Handler {
	routes := append(statusRoutes(reg), extra...)
	mux := http.NewServeMux()
	for _, rt := range routes {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	index := "endpoints: " + strings.Join(routePaths(routes), " ")
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, index)
	})
	return mux
}

// routePaths extracts the deduplicated path list for the "/" index,
// dropping any method prefix (GET and DELETE on one path list it once).
func routePaths(routes []Route) []string {
	paths := make([]string, 0, len(routes))
	seen := make(map[string]bool, len(routes))
	for _, rt := range routes {
		p := rt.Pattern
		if i := strings.IndexByte(p, ' '); i >= 0 {
			p = p[i+1:]
		}
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	return paths
}

// statusRoutes lists the built-in read-only endpoints over reg (nil means
// the Default registry).
func statusRoutes(reg *Registry) []Route {
	if reg == nil {
		reg = Default
	}
	metrics := func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		switch {
		case wantsJSON(r):
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
		case wantsPrometheus(r):
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			snap.WritePrometheus(w)
		default:
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			snap.WriteText(w)
		}
	}
	progress := func(w http.ResponseWriter, r *http.Request) {
		states := ProgressStates()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, st := range states {
				fmt.Fprintf(w, "%-24s %d/%d %3d%%", st.Label, st.Done, st.Total, st.Percent)
				if st.LastPoint != "" {
					fmt.Fprintf(w, "  last %s", st.LastPoint)
				}
				if st.EtaSeconds > 0 {
					fmt.Fprintf(w, "  eta %s", roundDuration(time.Duration(st.EtaSeconds*float64(time.Second))))
				}
				fmt.Fprintln(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema int          `json:"schema"`
			Sweeps []MeterState `json:"sweeps"`
		}{Schema: SnapshotSchemaVersion, Sweeps: states})
	}
	healthz := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(healthInfo())
	}
	return []Route{
		{"/metrics", http.HandlerFunc(metrics)},
		{"/progress", http.HandlerFunc(progress)},
		{"/healthz", http.HandlerFunc(healthz)},
		{"/readyz", http.HandlerFunc(readyzHandler)},
		{"/debug/pprof/", http.HandlerFunc(pprof.Index)},
		{"/debug/pprof/cmdline", http.HandlerFunc(pprof.Cmdline)},
		{"/debug/pprof/profile", http.HandlerFunc(pprof.Profile)},
		{"/debug/pprof/symbol", http.HandlerFunc(pprof.Symbol)},
		{"/debug/pprof/trace", http.HandlerFunc(pprof.Trace)},
	}
}

// wantsJSON implements the /metrics content negotiation: JSON when the
// Accept header mentions application/json, text otherwise. A missing
// Accept header means text, so a bare curl prints human-readable output.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json")
}

// wantsPrometheus selects the Prometheus text exposition: an explicit
// ?format=prometheus, or an Accept header asking for text/plain (what the
// Prometheus scraper sends, with a version parameter) or an openmetrics
// type. A bare curl sends Accept: */* and still gets the aligned
// human-readable text.
func wantsPrometheus(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// Health is the /healthz body. The identity fields deliberately use the
// perfdiff.Meta JSON names (go_version, gomaxprocs, git_rev), so a live
// harness can be matched against the BENCH_hotpath.json capture metadata.
type Health struct {
	OK         bool   `json:"ok"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitRev     string `json:"git_rev"`
}

var (
	healthOnce sync.Once
	health     Health
)

// healthInfo resolves the build identity once per process: the git revision
// comes from the binary's embedded VCS stamp when present (release builds),
// falling back to asking git directly (go test / go run builds have no
// stamp), then to "unknown" — the same fallback chain the bench-record
// capture uses, so the two agree on any given checkout.
func healthInfo() Health {
	healthOnce.Do(func() {
		health = Health{
			OK:         true,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GitRev:     "unknown",
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 7 {
					health.GitRev = s.Value[:7]
					return
				}
			}
		}
		if rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			if v := strings.TrimSpace(string(rev)); v != "" {
				health.GitRev = v
			}
		}
	})
	return health
}
