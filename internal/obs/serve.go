package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"
)

// StatusServer is the read-only live view of a running harness: current
// metrics, sweep progress, and the stdlib pprof handlers. It never mutates
// observability state — every endpoint renders a mutex-guarded snapshot —
// so serving cannot perturb experiment output (wall-clock perturbation from
// profiling aside, which is exactly what pprof is for).
//
//	GET /metrics   — registry snapshot; JSON (schema-versioned
//	                 SnapshotExport) when the Accept header prefers
//	                 application/json, aligned text otherwise
//	GET /progress  — per-sweep point completion and ETA as JSON
//	                 (text with ?format=text)
//	GET /healthz   — liveness probe: 200 with the build identity (go
//	                 version, GOMAXPROCS, git revision) under the same
//	                 field names the perfdiff bench records carry, so a
//	                 live harness is attributable to a bench capture
//	GET /debug/pprof/ — net/http/pprof index, profiles, symbolization
type StatusServer struct {
	reg *Registry
	lis net.Listener
	srv *http.Server
}

// Serve listens on addr (host:port; :0 picks a free port) and starts the
// status server over reg in a background goroutine. The returned server
// reports its bound address via Addr and is shut down with Close.
func Serve(addr string, reg *Registry) (*StatusServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &StatusServer{reg: reg, lis: lis}
	s.srv = &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(lis) }()
	return s, nil
}

// Addr returns the server's bound listen address.
func (s *StatusServer) Addr() string { return s.lis.Addr().String() }

// Close stops accepting connections and closes the listener.
func (s *StatusServer) Close() error { return s.srv.Close() }

// Handler returns the status routes as a plain http.Handler, so tests can
// drive them through httptest without opening a socket.
func (s *StatusServer) Handler() http.Handler {
	return StatusHandler(s.reg)
}

// StatusHandler builds the read-only status mux over reg (nil means the
// Default registry).
func StatusHandler(reg *Registry) http.Handler {
	if reg == nil {
		reg = Default
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "endpoints: /metrics /progress /debug/pprof/")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := reg.Snapshot()
		if wantsJSON(r) {
			w.Header().Set("Content-Type", "application/json")
			_ = snap.WriteJSON(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		snap.WriteText(w)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, r *http.Request) {
		states := ProgressStates()
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, st := range states {
				fmt.Fprintf(w, "%-24s %d/%d %3d%%", st.Label, st.Done, st.Total, st.Percent)
				if st.LastPoint != "" {
					fmt.Fprintf(w, "  last %s", st.LastPoint)
				}
				if st.EtaSeconds > 0 {
					fmt.Fprintf(w, "  eta %s", roundDuration(time.Duration(st.EtaSeconds*float64(time.Second))))
				}
				fmt.Fprintln(w)
			}
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema int          `json:"schema"`
			Sweeps []MeterState `json:"sweeps"`
		}{Schema: SnapshotSchemaVersion, Sweeps: states})
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(healthInfo())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// wantsJSON implements the /metrics content negotiation: JSON when the
// Accept header mentions application/json, text otherwise. A missing
// Accept header means text, so a bare curl prints human-readable output.
func wantsJSON(r *http.Request) bool {
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "application/json")
}

// Health is the /healthz body. The identity fields deliberately use the
// perfdiff.Meta JSON names (go_version, gomaxprocs, git_rev), so a live
// harness can be matched against the BENCH_hotpath.json capture metadata.
type Health struct {
	OK         bool   `json:"ok"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GitRev     string `json:"git_rev"`
}

var (
	healthOnce sync.Once
	health     Health
)

// healthInfo resolves the build identity once per process: the git revision
// comes from the binary's embedded VCS stamp when present (release builds),
// falling back to asking git directly (go test / go run builds have no
// stamp), then to "unknown" — the same fallback chain the bench-record
// capture uses, so the two agree on any given checkout.
func healthInfo() Health {
	healthOnce.Do(func() {
		health = Health{
			OK:         true,
			GoVersion:  runtime.Version(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GitRev:     "unknown",
		}
		if bi, ok := debug.ReadBuildInfo(); ok {
			for _, s := range bi.Settings {
				if s.Key == "vcs.revision" && len(s.Value) >= 7 {
					health.GitRev = s.Value[:7]
					return
				}
			}
		}
		if rev, err := exec.Command("git", "rev-parse", "--short", "HEAD").Output(); err == nil {
			if v := strings.TrimSpace(string(rev)); v != "" {
				health.GitRev = v
			}
		}
	})
	return health
}
