package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// EventSchemaVersion stamps the run-start record of every event log. The
// bump policy matches SnapshotSchemaVersion: renames/retypes/removals bump,
// additive optional fields do not. ValidateEventLog rejects logs whose
// run-start carries a different schema.
//
// v2: point-done events gained the Rejections cause breakdown (per-algorithm
// rejection-cause counters from the partition cause taxonomy). The bump is
// deliberate despite the field being additive: v2 validators enforce the
// rejections vocabulary, and consumers keying analytics off the breakdown
// must not silently read v1 logs that predate cause attribution.
const EventSchemaVersion = 2

// Run-event vocabulary. One run (a cmd/experiments invocation) brackets the
// stream with run-start/run-end; each experiment brackets its points with
// experiment-start/experiment-end; point-done and point-restored record
// sweep-point lifecycle (restored = replayed from a checkpoint instead of
// computed); sample-error carries the repro seeds of an isolated sample
// failure; checkpoint records a completed atomic checkpoint write; error is
// a non-sample run failure (generator misconfiguration, cancellation).
const (
	EvRunStart        = "run-start"
	EvRunEnd          = "run-end"
	EvExperimentStart = "experiment-start"
	EvExperimentEnd   = "experiment-end"
	EvPointDone       = "point-done"
	EvPointRestored   = "point-restored"
	EvSampleError     = "sample-error"
	EvCheckpoint      = "checkpoint"
	EvError           = "error"
)

// knownEventKinds is the closed vocabulary ValidateEventLog accepts.
var knownEventKinds = map[string]bool{
	EvRunStart: true, EvRunEnd: true,
	EvExperimentStart: true, EvExperimentEnd: true,
	EvPointDone: true, EvPointRestored: true,
	EvSampleError: true, EvCheckpoint: true, EvError: true,
}

// RunEvent is one flight-recorder record. Seq is the 0-based position in
// the stream; Ms is wall-clock milliseconds since the recorder was opened
// and is the only nondeterministic field — every other populated field of a
// fixed-seed run is byte-identical across runs and worker counts (the
// experiments event-stream golden test pins this). Point and Sample are
// 1-based so that zero always means "not applicable" under omitempty.
type RunEvent struct {
	Seq  int64  `json:"seq"`
	Ms   int64  `json:"ms"`
	Kind string `json:"kind"`

	// run-start fields.
	Schema    int    `json:"schema,omitempty"`
	GoVersion string `json:"go,omitempty"`
	Seed      int64  `json:"seed,omitempty"`
	Sets      int    `json:"sets,omitempty"`
	Quick     bool   `json:"quick,omitempty"`
	Workers   int    `json:"workers,omitempty"`

	// Experiment names the registry key; Label the sweep/table id (they
	// differ for multi-table experiments such as acceptance-kchains).
	Experiment string `json:"experiment,omitempty"`
	Label      string `json:"label,omitempty"`
	// Point is the 1-based sweep point; Points the sweep length (on point
	// events) or the checkpoint's completed-point count (on checkpoint
	// events).
	Point  int `json:"point,omitempty"`
	Points int `json:"points,omitempty"`
	// Tables is the number of tables an experiment produced.
	Tables int `json:"tables,omitempty"`

	// Counters holds the per-point deltas of the deterministic analysis
	// counters (RTA iterations, warm-starts, splits, arena recycling, ...)
	// accumulated while the point was computed; only counters that moved
	// are listed. Empty when metric collection is disabled.
	Counters []CounterValue `json:"counters,omitempty"`

	// Rejections breaks the point's rejected samples down by algorithm and
	// cause (the partition cause taxonomy, kebab-case names). Only causes
	// that occurred are listed, in (algorithm, cause) declaration order, so
	// the stream stays deterministic. Present on point-done events of sweeps
	// that attribute causes; empty otherwise.
	Rejections []RejectCount `json:"rejections,omitempty"`

	// sample-error fields: the 1-based failing sample plus the seeds that
	// regenerate it bit for bit (see experiments.SampleError).
	Sample     int    `json:"sample,omitempty"`
	BaseSeed   int64  `json:"base_seed,omitempty"`
	SampleSeed int64  `json:"sample_seed,omitempty"`
	Panic      string `json:"panic,omitempty"`

	// Err carries the message of experiment-end/error events.
	Err string `json:"err,omitempty"`
}

// RejectCount is one cell of a point's rejection-cause breakdown: within
// one algorithm's column, N samples were rejected for Cause.
type RejectCount struct {
	Algo  string `json:"algo"`
	Cause string `json:"cause"`
	N     int64  `json:"n"`
}

// Recorder writes RunEvents as one JSON object per line (JSONL). It is
// safe for concurrent use and buffered: events are encoded under a mutex
// into a bufio.Writer and flushed on Close (and after every event bearing
// an error, so a crash loses at most trailing non-error records). Emission
// happens only at sweep-point and run granularity — never per sample — so
// the recorder is structurally off the analysis hot path.
//
// A nil *Recorder is a valid no-op, mirroring *Trace: harness code holds an
// optional recorder and calls it unconditionally.
type Recorder struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	c     io.Closer
	start time.Time
	seq   int64
	err   error
}

// NewRecorder returns a recorder writing JSONL to w. If w is also an
// io.Closer, Close closes it after the final flush.
func NewRecorder(w io.Writer) *Recorder {
	r := &Recorder{bw: bufio.NewWriter(w), start: time.Now()}
	if c, ok := w.(io.Closer); ok {
		r.c = c
	}
	return r
}

// Emit stamps e's Seq and Ms and appends it to the stream. Encoding errors
// are sticky: the first one is kept (see Err) and later events are dropped.
// No-op on a nil recorder.
func (r *Recorder) Emit(e RunEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.err != nil {
		return
	}
	e.Seq = r.seq
	e.Ms = time.Since(r.start).Milliseconds()
	data, err := json.Marshal(e)
	if err != nil {
		r.err = err
		return
	}
	r.seq++
	data = append(data, '\n')
	if _, err := r.bw.Write(data); err != nil {
		r.err = err
		return
	}
	// Error-bearing events are the ones a post-mortem needs; push them to
	// the OS immediately.
	if e.Kind == EvSampleError || e.Kind == EvError || e.Err != "" {
		r.err = r.bw.Flush()
	}
}

// Err returns the first write or encoding error, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.err
}

// Close flushes the stream and closes the underlying writer when it is
// closable. It returns the first error seen over the recorder's lifetime.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
	if r.c != nil {
		if err := r.c.Close(); err != nil && r.err == nil {
			r.err = err
		}
	}
	return r.err
}

// DiffCounters returns after-minus-before for every counter that moved (or
// appeared) between two snapshots, preserving after's name order. It is the
// per-point delta attribution used by point-done events.
func DiffCounters(before, after Snapshot) []CounterValue {
	prev := make(map[string]int64, len(before.Counters))
	for _, c := range before.Counters {
		prev[c.Name] = c.Value
	}
	var out []CounterValue
	for _, c := range after.Counters {
		if d := c.Value - prev[c.Name]; d != 0 {
			out = append(out, CounterValue{Name: c.Name, Value: d})
		}
	}
	return out
}

// ValidateEventLog strictly parses a JSONL event stream: every line must be
// a RunEvent with no unknown fields, the first record must be run-start
// carrying the supported schema version, Seq must equal the line position,
// and every Kind must belong to the known vocabulary. It returns the number
// of validated events. An empty stream is an error — even an aborted run
// writes its run-start.
func ValidateEventLog(rd io.Reader) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			return n, fmt.Errorf("event %d: empty line", n)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var e RunEvent
		if err := dec.Decode(&e); err != nil {
			return n, fmt.Errorf("event %d: %w", n, err)
		}
		if e.Seq != int64(n) {
			return n, fmt.Errorf("event %d: seq %d out of order", n, e.Seq)
		}
		if !knownEventKinds[e.Kind] {
			return n, fmt.Errorf("event %d: unknown kind %q", n, e.Kind)
		}
		if n == 0 {
			if e.Kind != EvRunStart {
				return n, fmt.Errorf("event 0: stream must open with %s, got %s", EvRunStart, e.Kind)
			}
			if e.Schema != EventSchemaVersion {
				return n, fmt.Errorf("event 0: schema %d, supported %d", e.Schema, EventSchemaVersion)
			}
		}
		for j, rc := range e.Rejections {
			switch {
			case e.Kind != EvPointDone:
				return n, fmt.Errorf("event %d: rejections on a %s event (only %s carries them)", n, e.Kind, EvPointDone)
			case rc.Algo == "":
				return n, fmt.Errorf("event %d: rejections[%d] has no algorithm", n, j)
			case rc.Cause == "":
				return n, fmt.Errorf("event %d: rejections[%d] has no cause", n, j)
			case rc.N <= 0:
				return n, fmt.Errorf("event %d: rejections[%d] (%s/%s) has non-positive count %d", n, j, rc.Algo, rc.Cause, rc.N)
			}
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("empty event log")
	}
	return n, nil
}
