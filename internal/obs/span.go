package obs

import "time"

// Span measures the wall-clock duration of a phase (an experiment, a sweep,
// a CLI run). Spans are recorded in their registry on End and reported in
// Snapshot.Spans, apart from the deterministic counter data.
type Span struct {
	name  string
	start time.Time
	r     *Registry
}

// StartSpan begins a span in the registry. When instrumentation is
// disabled it returns an inert span whose End is a no-op, keeping the
// disabled path allocation-light.
func (r *Registry) StartSpan(name string) *Span {
	if !on.Load() {
		return &Span{}
	}
	return &Span{name: name, start: time.Now(), r: r}
}

// StartSpan begins a span in the Default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// End records the span's duration in its registry and returns it. Calling
// End on an inert span returns 0.
func (s *Span) End() time.Duration {
	if s.r == nil {
		return 0
	}
	d := time.Since(s.start)
	s.r.mu.Lock()
	s.r.spans = append(s.r.spans, SpanValue{Name: s.name, Seconds: d.Seconds()})
	s.r.mu.Unlock()
	return d
}
