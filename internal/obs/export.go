package obs

import (
	"encoding/json"
	"io"
	"math"
)

// SnapshotSchemaVersion stamps every exported metrics document. Bump it on
// any change that renames, retypes or removes a field; purely additive
// fields (new optional keys) do not require a bump. Consumers must reject
// documents with a schema they do not know. See DESIGN.md §10 for the
// policy and the determinism argument.
const SnapshotSchemaVersion = 1

// HistogramExport is the JSON form of one histogram: the raw bucket data of
// HistogramValue plus derived statistics (mean and bucket-resolution
// quantile estimates) so consumers do not have to re-implement the bucket
// walk. Everything here is a pure function of the counter data, so exports
// of deterministic runs are byte-identical.
type HistogramExport struct {
	HistogramValue
	MeanValue float64 `json:"mean"`
	P50       float64 `json:"p50"`
	P90       float64 `json:"p90"`
	P99       float64 `json:"p99"`
}

// Quantile returns a bucket-resolution estimate of the q-th quantile
// (0 < q ≤ 1): the upper bound of the first bucket whose cumulative count
// reaches q·Count, or Max for ranks landing in the overflow bucket. For an
// empty histogram it returns 0.
func (h HistogramValue) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		if cum >= rank {
			if b.Upper < 0 {
				return float64(h.Max)
			}
			return float64(b.Upper)
		}
	}
	return float64(h.Max)
}

// ExportHistograms derives the JSON export form of a histogram list.
func ExportHistograms(hs []HistogramValue) []HistogramExport {
	if len(hs) == 0 {
		return nil
	}
	out := make([]HistogramExport, len(hs))
	for i, h := range hs {
		out[i] = HistogramExport{
			HistogramValue: h,
			MeanValue:      h.Mean(),
			P50:            h.Quantile(0.50),
			P90:            h.Quantile(0.90),
			P99:            h.Quantile(0.99),
		}
	}
	return out
}

// SnapshotExport is the schema-versioned JSON document for one metrics
// snapshot. Counters and histograms are deterministic for a fixed seed;
// spans are wall-clock and kept in their own field so consumers can ignore
// them when comparing runs.
type SnapshotExport struct {
	Schema     int               `json:"schema"`
	Counters   []CounterValue    `json:"counters"`
	Gauges     []GaugeValue      `json:"gauges,omitempty"`
	Histograms []HistogramExport `json:"histograms,omitempty"`
	Spans      []SpanValue       `json:"spans,omitempty"`
}

// Export derives the schema-versioned JSON form of the snapshot. Gauges are
// additive-optional (omitted when none are registered), so their arrival did
// not bump SnapshotSchemaVersion.
func (s Snapshot) Export() SnapshotExport {
	return SnapshotExport{
		Schema:     SnapshotSchemaVersion,
		Counters:   s.Counters,
		Gauges:     s.Gauges,
		Histograms: ExportHistograms(s.Histograms),
		Spans:      s.Spans,
	}
}

// WriteJSON writes the snapshot as an indented, schema-versioned JSON
// document followed by a newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.Export())
}
