package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, srv *httptest.Server, path, accept string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", srv.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := srv.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// TestStatusHandlerEndpoints drives /metrics (both content types),
// /progress and the pprof index through httptest against a registry with
// live data and a ticking meter.
func TestStatusHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	SetEnabled(true)
	reg.Counter("rta.calls").Add(11)
	reg.Histogram("rta.iters", 1, 2, 4).Observe(3)
	SetEnabled(false)
	ResetProgress()
	defer ResetProgress()
	mt := NewMeter(nil, "acceptance-general", 4, false)
	mt.Tick("U_M=%.3f", 0.65)
	mt.Tick("U_M=%.3f", 0.75)

	srv := httptest.NewServer(StatusHandler(reg))
	defer srv.Close()

	code, text := get(t, srv, "/metrics", "")
	if code != 200 || !strings.Contains(text, "rta.calls 11") {
		t.Errorf("/metrics text: code %d body %q", code, text)
	}

	code, body := get(t, srv, "/metrics", "application/json")
	if code != 200 {
		t.Fatalf("/metrics json: code %d", code)
	}
	var exp SnapshotExport
	if err := json.Unmarshal([]byte(body), &exp); err != nil {
		t.Fatalf("/metrics json: %v\n%s", err, body)
	}
	if exp.Schema != SnapshotSchemaVersion {
		t.Errorf("/metrics schema %d, want %d", exp.Schema, SnapshotSchemaVersion)
	}
	if (Snapshot{Counters: exp.Counters}).Get("rta.calls") != 11 {
		t.Errorf("/metrics json counters wrong: %s", body)
	}
	if len(exp.Histograms) != 1 || exp.Histograms[0].P99 != 4 {
		t.Errorf("/metrics json histograms wrong: %s", body)
	}

	// Prometheus negotiation: Accept: text/plain (a stock scraper) and
	// ?format=prometheus both select the exposition format; bare curls
	// (Accept */*) keep the human-aligned text above.
	code, prom := get(t, srv, "/metrics", "text/plain")
	if code != 200 || !strings.Contains(prom, "# TYPE rta_calls counter\nrta_calls 11") {
		t.Errorf("/metrics prometheus: code %d body %q", code, prom)
	}
	if !strings.Contains(prom, `rta_iters_bucket{le="+Inf"} 1`) {
		t.Errorf("/metrics prometheus lacks histogram buckets: %q", prom)
	}
	if n, err := ValidatePrometheusText(strings.NewReader(prom)); err != nil || n < 2 {
		t.Errorf("/metrics prometheus invalid (%d families): %v", n, err)
	}
	code, prom2 := get(t, srv, "/metrics?format=prometheus", "")
	if code != 200 || prom2 != prom {
		t.Errorf("?format=prometheus differs from Accept negotiation: %q vs %q", prom2, prom)
	}

	code, body = get(t, srv, "/progress", "")
	if code != 200 {
		t.Fatalf("/progress: code %d", code)
	}
	var prog struct {
		Schema int          `json:"schema"`
		Sweeps []MeterState `json:"sweeps"`
	}
	if err := json.Unmarshal([]byte(body), &prog); err != nil {
		t.Fatalf("/progress: %v\n%s", err, body)
	}
	if len(prog.Sweeps) != 1 {
		t.Fatalf("/progress sweeps: %s", body)
	}
	st := prog.Sweeps[0]
	if st.Label != "acceptance-general" || st.Done != 2 || st.Total != 4 ||
		st.Percent != 50 || st.LastPoint != "U_M=0.750" {
		t.Errorf("/progress state wrong: %+v", st)
	}
	if st.EtaSeconds <= 0 || st.ElapsedSeconds < 0 {
		t.Errorf("/progress timing wrong: %+v", st)
	}

	code, body = get(t, srv, "/progress?format=text", "")
	if code != 200 || !strings.Contains(body, "acceptance-general") || !strings.Contains(body, "2/4") {
		t.Errorf("/progress text: code %d body %q", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/", "")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/: code %d", code)
	}

	code, body = get(t, srv, "/healthz", "")
	if code != 200 {
		t.Fatalf("/healthz: code %d", code)
	}
	var h Health
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("/healthz: %v\n%s", err, body)
	}
	if !h.OK || h.GoVersion == "" || h.GOMAXPROCS < 1 || h.GitRev == "" {
		t.Errorf("/healthz body incomplete: %+v", h)
	}
	// The identity must use the perfdiff.Meta field names, so a live harness
	// can be matched against BENCH_hotpath.json capture metadata.
	for _, key := range []string{`"go_version"`, `"gomaxprocs"`, `"git_rev"`} {
		if !strings.Contains(body, key) {
			t.Errorf("/healthz lacks %s: %s", key, body)
		}
	}

	if code, _ = get(t, srv, "/nope", ""); code != 404 {
		t.Errorf("unknown path: code %d, want 404", code)
	}
}

// TestServeBindsAndCloses covers the socket path: Serve on :0, hit the
// bound address, Close tears it down.
func TestServeBindsAndCloses(t *testing.T) {
	reg := NewRegistry()
	s, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + s.Addr() + "/metrics")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + s.Addr() + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestStatusIndexNamesEveryRoute pins the "/" index against the route
// list it is generated from: every registered path — including /healthz,
// which the index used to omit — and any extra mounted route must appear.
func TestStatusIndexNamesEveryRoute(t *testing.T) {
	reg := NewRegistry()
	extra := Route{"POST /v1/clusters/{name}/admit", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})}
	srv := httptest.NewServer(StatusHandlerWith(reg, extra))
	defer srv.Close()

	code, index := get(t, srv, "/", "")
	if code != 200 {
		t.Fatalf("index: code %d", code)
	}
	for _, rt := range append(statusRoutes(reg), extra) {
		path := rt.Pattern
		if i := strings.IndexByte(path, ' '); i >= 0 {
			path = path[i+1:]
		}
		if !strings.Contains(index, path) {
			t.Errorf("index omits registered route %s: %q", path, index)
		}
	}
}

// TestCloseWaitsForInflightResponse is the graceful-shutdown regression
// test: a response in flight when Close is called must still reach the
// client complete. The old Close (http.Server.Close) reset the connection
// mid-body.
func TestCloseWaitsForInflightResponse(t *testing.T) {
	reg := NewRegistry()
	inHandler := make(chan struct{})
	release := make(chan struct{})
	slow := Route{"/slow", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		io.WriteString(w, "head...")
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		close(inHandler)
		<-release
		io.WriteString(w, "tail")
	})}
	s, err := ServeWith("127.0.0.1:0", reg, slow)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		body string
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + s.Addr() + "/slow")
		if err != nil {
			done <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		done <- result{body: string(body), err: err}
	}()

	<-inHandler // the scrape is mid-body; now tear the server down
	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	// Close must be waiting on the in-flight response, not done already.
	release <- struct{}{}
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	res := <-done
	if res.err != nil {
		t.Fatalf("in-flight request failed across Close: %v", res.err)
	}
	if res.body != "head...tail" {
		t.Fatalf("in-flight body truncated across Close: %q", res.body)
	}
	if _, err := http.Get("http://" + s.Addr() + "/slow"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestMeterTracksWithNilWriter pins the -listen-without--progress path: an
// inert meter (nil writer) still publishes tracker state, and
// re-registering a label restarts its entry.
func TestMeterTracksWithNilWriter(t *testing.T) {
	ResetProgress()
	defer ResetProgress()
	mt := NewMeter(nil, "sweep", 3, true)
	mt.Tick("p%d", 1)
	states := ProgressStates()
	if len(states) != 1 || states[0].Done != 1 || states[0].Total != 3 {
		t.Fatalf("states: %+v", states)
	}
	NewMeter(nil, "sweep", 5, false)
	states = ProgressStates()
	if len(states) != 1 || states[0].Done != 0 || states[0].Total != 5 {
		t.Fatalf("re-registered states: %+v", states)
	}
}
