package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Meter emits per-point progress lines for a sweep with a known number of
// points, optionally decorated with percentage, elapsed time and an ETA
// estimate (elapsed/done scaled to the remainder). A Meter created with a
// nil writer is inert on the text side, so callers can construct one
// unconditionally; every Meter — inert or not — additionally publishes its
// state to the process-wide progress tracker, which the live status
// endpoint (serve.go) reads for /progress.
//
// Progress output is wall-clock-dependent by nature; it must only ever go
// to a side channel (stderr or the status server), never into experiment
// artifacts, to preserve the bit-for-bit determinism contract of the
// harness.
type Meter struct {
	w     io.Writer
	label string
	total int
	done  int
	eta   bool
	start time.Time
	state *meterState
}

// NewMeter returns a progress meter for total points, printing lines
// prefixed with label to w. When eta is false the lines match the
// harness's classic "<label>: <point> done" format; when true each line
// appends "(<done>/<total> <pct>%, elapsed <e>, eta <r>)".
func NewMeter(w io.Writer, label string, total int, eta bool) *Meter {
	return &Meter{w: w, label: label, total: total, eta: eta,
		start: time.Now(), state: trackMeter(label, total)}
}

// Tick marks one point done and prints its progress line; format/args
// describe the point (e.g. "U_M=%.3f"). With a nil writer nothing is
// printed, but the point still counts toward the published MeterState.
func (m *Meter) Tick(format string, args ...interface{}) {
	if m == nil {
		return
	}
	m.done++
	point := fmt.Sprintf(format, args...)
	m.state.tick(point)
	if m.w == nil {
		return
	}
	if !m.eta || m.total <= 0 {
		fmt.Fprintf(m.w, "%s: %s done\n", m.label, point)
		return
	}
	elapsed := time.Since(m.start)
	remaining := time.Duration(0)
	if m.done > 0 && m.done < m.total {
		remaining = elapsed / time.Duration(m.done) * time.Duration(m.total-m.done)
	}
	fmt.Fprintf(m.w, "%s: %s done (%d/%d %d%%, elapsed %s, eta %s)\n",
		m.label, point, m.done, m.total, 100*m.done/m.total,
		roundDuration(elapsed), roundDuration(remaining))
}

func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}

// MeterState is a point-in-time view of one sweep's progress, as served by
// the /progress endpoint. Done/Total are sweep points; EtaSeconds is the
// same elapsed/done extrapolation the stderr meter prints, 0 when the sweep
// is finished or has not completed a point yet.
type MeterState struct {
	Label          string  `json:"label"`
	Done           int     `json:"done"`
	Total          int     `json:"total"`
	Percent        int     `json:"percent"`
	LastPoint      string  `json:"last_point,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	EtaSeconds     float64 `json:"eta_seconds,omitempty"`
}

// meterState is the tracker-side record behind one Meter. All fields are
// guarded by progressMu.
type meterState struct {
	label string
	total int
	done  int
	last  string
	start time.Time
}

var (
	progressMu     sync.Mutex
	progressMeters []*meterState
)

// trackMeter registers a sweep with the progress tracker. Re-registering a
// label (the same experiment run again in one process) restarts its entry
// rather than appending a duplicate.
func trackMeter(label string, total int) *meterState {
	progressMu.Lock()
	defer progressMu.Unlock()
	for i, st := range progressMeters {
		if st.label == label {
			fresh := &meterState{label: label, total: total, start: time.Now()}
			progressMeters[i] = fresh
			return fresh
		}
	}
	st := &meterState{label: label, total: total, start: time.Now()}
	progressMeters = append(progressMeters, st)
	return st
}

func (st *meterState) tick(point string) {
	progressMu.Lock()
	st.done++
	st.last = point
	progressMu.Unlock()
}

// ProgressStates returns a snapshot of every tracked sweep in registration
// order. Safe to call concurrently with running sweeps.
func ProgressStates() []MeterState {
	progressMu.Lock()
	defer progressMu.Unlock()
	out := make([]MeterState, 0, len(progressMeters))
	for _, st := range progressMeters {
		ms := MeterState{
			Label:          st.label,
			Done:           st.done,
			Total:          st.total,
			LastPoint:      st.last,
			ElapsedSeconds: time.Since(st.start).Seconds(),
		}
		if st.total > 0 {
			ms.Percent = 100 * st.done / st.total
		}
		if st.done > 0 && st.done < st.total {
			ms.EtaSeconds = ms.ElapsedSeconds / float64(st.done) * float64(st.total-st.done)
		}
		out = append(out, ms)
	}
	return out
}

// ResetProgress clears the progress tracker (tests, or between independent
// runs sharing one process).
func ResetProgress() {
	progressMu.Lock()
	progressMeters = nil
	progressMu.Unlock()
}
