package obs

import (
	"fmt"
	"io"
	"time"
)

// Meter emits per-point progress lines for a sweep with a known number of
// points, optionally decorated with percentage, elapsed time and an ETA
// estimate (elapsed/done scaled to the remainder). A Meter created with a
// nil writer is inert, so callers can construct one unconditionally.
//
// Progress output is wall-clock-dependent by nature; it must only ever go
// to a side channel (stderr), never into experiment artifacts, to preserve
// the bit-for-bit determinism contract of the harness.
type Meter struct {
	w     io.Writer
	label string
	total int
	done  int
	eta   bool
	start time.Time
}

// NewMeter returns a progress meter for total points, printing lines
// prefixed with label to w. When eta is false the lines match the
// harness's classic "<label>: <point> done" format; when true each line
// appends "(<done>/<total> <pct>%, elapsed <e>, eta <r>)".
func NewMeter(w io.Writer, label string, total int, eta bool) *Meter {
	return &Meter{w: w, label: label, total: total, eta: eta, start: time.Now()}
}

// Tick marks one point done and prints its progress line; format/args
// describe the point (e.g. "U_M=%.3f"). No-op when the writer is nil.
func (m *Meter) Tick(format string, args ...interface{}) {
	if m == nil || m.w == nil {
		return
	}
	m.done++
	point := fmt.Sprintf(format, args...)
	if !m.eta || m.total <= 0 {
		fmt.Fprintf(m.w, "%s: %s done\n", m.label, point)
		return
	}
	elapsed := time.Since(m.start)
	remaining := time.Duration(0)
	if m.done > 0 && m.done < m.total {
		remaining = elapsed / time.Duration(m.done) * time.Duration(m.total-m.done)
	}
	fmt.Fprintf(m.w, "%s: %s done (%d/%d %d%%, elapsed %s, eta %s)\n",
		m.label, point, m.done, m.total, 100*m.done/m.total,
		roundDuration(elapsed), roundDuration(remaining))
}

func roundDuration(d time.Duration) time.Duration {
	switch {
	case d >= time.Minute:
		return d.Round(time.Second)
	case d >= time.Second:
		return d.Round(100 * time.Millisecond)
	default:
		return d.Round(time.Millisecond)
	}
}
