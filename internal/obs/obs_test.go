package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// withEnabled runs f with instrumentation globally enabled and restores the
// disabled default afterwards.
func withEnabled(t *testing.T, f func()) {
	t.Helper()
	SetEnabled(true)
	defer SetEnabled(false)
	f()
}

func TestCounterDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	SetEnabled(false)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 0 {
		t.Fatalf("disabled counter accumulated %d", got)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	withEnabled(t, func() {
		const workers, per = 8, 10_000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					c.Inc()
				}
			}()
		}
		wg.Wait()
		if got := c.Value(); got != workers*per {
			t.Fatalf("concurrent count = %d, want %d", got, workers*per)
		}
	})
}

func TestRegistryCounterIsIdempotent(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name returned distinct counters")
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", 1, 2, 4, 8)
	withEnabled(t, func() {
		for _, v := range []int64{1, 2, 2, 3, 8, 9, 100} {
			h.Observe(v)
		}
	})
	s := r.Snapshot()
	hv, ok := s.GetHistogram("h")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	if hv.Count != 7 {
		t.Fatalf("count = %d, want 7", hv.Count)
	}
	if hv.Sum != 1+2+2+3+8+9+100 {
		t.Fatalf("sum = %d", hv.Sum)
	}
	if hv.Max != 100 {
		t.Fatalf("max = %d, want 100", hv.Max)
	}
	if got := hv.Mean(); got != float64(hv.Sum)/7 {
		t.Fatalf("mean = %v", got)
	}
	// Buckets: ≤1:1, ≤2:2, ≤4:1, ≤8:1, overflow:2.
	want := []struct {
		upper, count int64
	}{{1, 1}, {2, 2}, {4, 1}, {8, 1}, {-1, 2}}
	if len(hv.Buckets) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(hv.Buckets), len(want))
	}
	for i, w := range want {
		if hv.Buckets[i].Upper != w.upper || hv.Buckets[i].Count != w.count {
			t.Fatalf("bucket %d = %+v, want %+v", i, hv.Buckets[i], w)
		}
	}
}

func TestHistogramDisabledIsNoOp(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	SetEnabled(false)
	h.Observe(5)
	if hv, _ := r.Snapshot().GetHistogram("h"); hv.Count != 0 {
		t.Fatalf("disabled histogram observed %d values", hv.Count)
	}
}

func TestSnapshotSortedAndReset(t *testing.T) {
	r := NewRegistry()
	b := r.Counter("b")
	a := r.Counter("a")
	withEnabled(t, func() {
		a.Add(1)
		b.Add(2)
	})
	s := r.Snapshot()
	if len(s.Counters) != 2 || s.Counters[0].Name != "a" || s.Counters[1].Name != "b" {
		t.Fatalf("snapshot not name-sorted: %+v", s.Counters)
	}
	if s.Get("b") != 2 || s.Get("missing") != 0 {
		t.Fatalf("Get mismatch: %+v", s.Counters)
	}
	r.Reset()
	if r.Value("a") != 0 || r.Value("b") != 0 {
		t.Fatal("Reset did not zero counters")
	}
	if a != r.Counter("a") {
		t.Fatal("Reset invalidated registered counter objects")
	}
}

func TestSnapshotWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("calls")
	h := r.Histogram("iters", 2, 4)
	withEnabled(t, func() {
		c.Add(3)
		h.Observe(3)
	})
	var buf bytes.Buffer
	r.Snapshot().WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"calls 3", "iters count=1 mean=3.00 max=3", "≤4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	SetEnabled(false)
	if d := r.StartSpan("off").End(); d != 0 {
		t.Fatalf("disabled span measured %v", d)
	}
	withEnabled(t, func() {
		sp := r.StartSpan("phase")
		time.Sleep(time.Millisecond)
		if sp.End() <= 0 {
			t.Fatal("enabled span measured nothing")
		}
	})
	s := r.Snapshot()
	if len(s.Spans) != 1 || s.Spans[0].Name != "phase" || s.Spans[0].Seconds <= 0 {
		t.Fatalf("spans = %+v", s.Spans)
	}
	r.Reset()
	if len(r.Snapshot().Spans) != 0 {
		t.Fatal("Reset kept completed spans")
	}
}

func TestMeterNilWriterIsInert(t *testing.T) {
	var m *Meter
	m.Tick("dead %d", 1) // nil receiver
	NewMeter(nil, "x", 3, true).Tick("point %d", 1)
}

func TestMeterClassicFormat(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf, "sweep", 2, false)
	m.Tick("U_M=%.2f", 0.75)
	if got := buf.String(); got != "sweep: U_M=0.75 done\n" {
		t.Fatalf("classic line = %q", got)
	}
}

func TestMeterETAFormat(t *testing.T) {
	var buf bytes.Buffer
	m := NewMeter(&buf, "sweep", 4, true)
	m.Tick("p1")
	line := buf.String()
	for _, want := range []string{"sweep: p1 done (1/4 25%", "elapsed ", "eta "} {
		if !strings.Contains(line, want) {
			t.Fatalf("ETA line %q missing %q", line, want)
		}
	}
}
