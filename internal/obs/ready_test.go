package obs

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

// TestReadyzFollowsReadiness walks the readiness state machine and checks
// /readyz reports each transition: liveness (/healthz) stays 200 throughout
// while readiness flips — the split that lets a balancer park traffic during
// journal replay without the process looking dead.
func TestReadyzFollowsReadiness(t *testing.T) {
	defer SetReadiness(ReadyServing)
	srv := httptest.NewServer(StatusHandler(NewRegistry()))
	defer srv.Close()

	cases := []struct {
		state Readiness
		name  string
		code  int
	}{
		{ReadyServing, "serving", 200},
		{ReadyStarting, "starting", 503},
		{ReadyRecovering, "recovering", 503},
		{ReadyDraining, "draining", 503},
	}
	for _, tc := range cases {
		SetReadiness(tc.state)
		if got := CurrentReadiness(); got != tc.state || got.String() != tc.name {
			t.Fatalf("state round-trip: got %v (%q), want %v (%q)", got, got, tc.state, tc.name)
		}
		code, body := get(t, srv, "/readyz", "")
		if code != tc.code {
			t.Errorf("%s: /readyz code %d, want %d", tc.name, code, tc.code)
		}
		var r struct {
			Ready bool   `json:"ready"`
			State string `json:"state"`
		}
		if err := json.Unmarshal([]byte(body), &r); err != nil {
			t.Fatalf("%s: /readyz body: %v\n%s", tc.name, err, body)
		}
		if r.Ready != (tc.code == 200) || r.State != tc.name {
			t.Errorf("%s: /readyz body %+v", tc.name, r)
		}
		if code, _ := get(t, srv, "/healthz", ""); code != 200 {
			t.Errorf("%s: liveness flipped with readiness: /healthz code %d", tc.name, code)
		}
	}
}

// TestServeOptionsDefaults pins the zero-value/negative semantics of the
// timeout knobs: zero means the documented default, negative means disabled.
func TestServeOptionsDefaults(t *testing.T) {
	cases := []struct {
		v, def, want time.Duration
	}{
		{0, 5 * time.Second, 5 * time.Second},
		{0, 0, 0},
		{-1, 30 * time.Second, 0},
		{7 * time.Second, 5 * time.Second, 7 * time.Second},
	}
	for _, tc := range cases {
		if got := timeoutOr(tc.v, tc.def); got != tc.want {
			t.Errorf("timeoutOr(%v, %v) = %v, want %v", tc.v, tc.def, got, tc.want)
		}
	}

	s, err := ServeOpts("127.0.0.1:0", NewRegistry(), ServeOptions{
		ReadHeaderTimeout: time.Second,
		WriteTimeout:      -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.srv.ReadHeaderTimeout != time.Second {
		t.Errorf("ReadHeaderTimeout = %v", s.srv.ReadHeaderTimeout)
	}
	if s.srv.ReadTimeout != 30*time.Second {
		t.Errorf("ReadTimeout default = %v", s.srv.ReadTimeout)
	}
	if s.srv.WriteTimeout != 0 {
		t.Errorf("negative WriteTimeout should disable, got %v", s.srv.WriteTimeout)
	}
	if s.srv.IdleTimeout != 2*time.Minute {
		t.Errorf("IdleTimeout default = %v", s.srv.IdleTimeout)
	}
}

// TestRegisterReadinessGauge pins satellite (a): the /readyz state is also a
// numeric gauge (process.ready_state) that tracks every transition, so state
// flaps survive in scrape history.
func TestRegisterReadinessGauge(t *testing.T) {
	defer SetReadiness(ReadyServing)
	reg := NewRegistry()
	RegisterReadinessGauge(reg)
	for _, st := range []Readiness{ReadyStarting, ReadyRecovering, ReadyServing, ReadyDraining} {
		SetReadiness(st)
		if got := reg.Snapshot().GetGauge("process.ready_state"); got != int64(st) {
			t.Errorf("ready_state gauge = %d in state %v, want %d", got, st, int64(st))
		}
	}
	// Nil registry means Default — the cmd/admitd wiring.
	RegisterReadinessGauge(nil)
	SetReadiness(ReadyDraining)
	if got := Default.Snapshot().GetGauge("process.ready_state"); got != int64(ReadyDraining) {
		t.Errorf("Default ready_state gauge = %d, want %d", got, int64(ReadyDraining))
	}
}
