package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// exportRegistry builds a registry with fixed contents so the export golden
// is stable.
func exportRegistry() *Registry {
	r := NewRegistry()
	SetEnabled(true)
	r.Counter("rta.calls").Add(42)
	r.Counter("partition.splits").Add(7)
	h := r.Histogram("rta.iters", 1, 2, 4, 8)
	for _, v := range []int64{1, 1, 2, 3, 5, 9, 30} {
		h.Observe(v)
	}
	SetEnabled(false)
	return r
}

// TestSnapshotExportGolden pins the exported JSON document byte for byte:
// the schema stamp, field names, ordering and derived statistics. Any
// change here is a schema change and must follow the DESIGN.md §10 version
// policy.
func TestSnapshotExportGolden(t *testing.T) {
	defer SetEnabled(false)
	var buf bytes.Buffer
	if err := exportRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": 1,
  "counters": [
    {
      "name": "partition.splits",
      "value": 7
    },
    {
      "name": "rta.calls",
      "value": 42
    }
  ],
  "histograms": [
    {
      "name": "rta.iters",
      "count": 7,
      "sum": 51,
      "max": 30,
      "buckets": [
        {
          "upper": 1,
          "count": 2
        },
        {
          "upper": 2,
          "count": 1
        },
        {
          "upper": 4,
          "count": 1
        },
        {
          "upper": 8,
          "count": 1
        },
        {
          "upper": -1,
          "count": 2
        }
      ],
      "mean": 7.285714285714286,
      "p50": 4,
      "p90": 30,
      "p99": 30
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("export drifted from golden:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestQuantileEstimates checks the bucket-walk quantiles against hand
// computation, including the overflow bucket falling back to Max.
func TestQuantileEstimates(t *testing.T) {
	h := HistogramValue{
		Count: 10, Sum: 100, Max: 99,
		Buckets: []BucketValue{{Upper: 1, Count: 5}, {Upper: 4, Count: 4}, {Upper: -1, Count: 1}},
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 1}, {0.90, 4}, {0.99, 99}, {1.0, 99}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := (HistogramValue{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

// TestExportDeterministic re-exports an identical registry and requires
// byte equality — the determinism half of the schema contract.
func TestExportDeterministic(t *testing.T) {
	defer SetEnabled(false)
	var a, b bytes.Buffer
	if err := exportRegistry().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := exportRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestExportOmitsEmptySections checks that a counters-only snapshot leaves
// the optional histogram/span sections out entirely instead of emitting
// null or empty arrays with unstable presence.
func TestExportOmitsEmptySections(t *testing.T) {
	r := NewRegistry()
	SetEnabled(true)
	r.Counter("x").Inc()
	SetEnabled(false)
	data, err := json.Marshal(r.Snapshot().Export())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, "histograms") || strings.Contains(s, "spans") {
		t.Errorf("empty sections serialized: %s", s)
	}
}
