package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// exportRegistry builds a registry with fixed contents so the export golden
// is stable.
func exportRegistry() *Registry {
	r := NewRegistry()
	SetEnabled(true)
	r.Counter("rta.calls").Add(42)
	r.Counter("partition.splits").Add(7)
	h := r.Histogram("rta.iters", 1, 2, 4, 8)
	for _, v := range []int64{1, 1, 2, 3, 5, 9, 30} {
		h.Observe(v)
	}
	SetEnabled(false)
	return r
}

// TestSnapshotExportGolden pins the exported JSON document byte for byte:
// the schema stamp, field names, ordering and derived statistics. Any
// change here is a schema change and must follow the DESIGN.md §10 version
// policy.
func TestSnapshotExportGolden(t *testing.T) {
	defer SetEnabled(false)
	var buf bytes.Buffer
	if err := exportRegistry().Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	want := `{
  "schema": 1,
  "counters": [
    {
      "name": "partition.splits",
      "value": 7
    },
    {
      "name": "rta.calls",
      "value": 42
    }
  ],
  "histograms": [
    {
      "name": "rta.iters",
      "count": 7,
      "sum": 51,
      "max": 30,
      "buckets": [
        {
          "upper": 1,
          "count": 2
        },
        {
          "upper": 2,
          "count": 1
        },
        {
          "upper": 4,
          "count": 1
        },
        {
          "upper": 8,
          "count": 1
        },
        {
          "upper": -1,
          "count": 2
        }
      ],
      "mean": 7.285714285714286,
      "p50": 4,
      "p90": 30,
      "p99": 30
    }
  ]
}
`
	if got := buf.String(); got != want {
		t.Errorf("export drifted from golden:\n--- want\n%s\n--- got\n%s", want, got)
	}
}

// TestQuantileEstimates checks the bucket-walk quantiles against hand
// computation, including the overflow bucket falling back to Max.
func TestQuantileEstimates(t *testing.T) {
	h := HistogramValue{
		Count: 10, Sum: 100, Max: 99,
		Buckets: []BucketValue{{Upper: 1, Count: 5}, {Upper: 4, Count: 4}, {Upper: -1, Count: 1}},
	}
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 1}, {0.90, 4}, {0.99, 99}, {1.0, 99}} {
		if got := h.Quantile(tc.q); got != tc.want {
			t.Errorf("Quantile(%.2f) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := (HistogramValue{}).Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
}

// TestQuantileEdgeCases covers the degenerate shapes the bucket walk must
// handle: an empty histogram, one single observation, every observation in
// one bucket, and p99 resolving across two buckets. Live histograms (not
// hand-built values) so the Observe → snapshot path is the thing tested.
func TestQuantileEdgeCases(t *testing.T) {
	SetEnabled(true)
	defer SetEnabled(false)
	snap := func(observe func(*Histogram)) HistogramValue {
		r := NewRegistry()
		h := r.Histogram("h", 1, 2, 4)
		observe(h)
		s := r.Snapshot()
		if len(s.Histograms) != 1 {
			t.Fatalf("snapshot has %d histograms", len(s.Histograms))
		}
		return s.Histograms[0]
	}

	empty := snap(func(h *Histogram) {})
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := empty.Quantile(q); got != 0 {
			t.Errorf("empty histogram: Quantile(%v) = %v, want 0", q, got)
		}
	}

	// A single sample is every quantile at once — including ranks that
	// round down to zero (q·Count < 1 must still pick rank 1).
	single := snap(func(h *Histogram) { h.Observe(3) })
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := single.Quantile(q); got != 4 {
			t.Errorf("single sample: Quantile(%v) = %v, want bucket upper 4", q, got)
		}
	}

	// All observations land in one bucket: every quantile is that bucket's
	// upper bound regardless of rank.
	oneBucket := snap(func(h *Histogram) {
		for i := 0; i < 100; i++ {
			h.Observe(2)
		}
	})
	for _, q := range []float64{0.01, 0.5, 0.99, 1} {
		if got := oneBucket.Quantile(q); got != 2 {
			t.Errorf("one bucket: Quantile(%v) = %v, want 2", q, got)
		}
	}

	// Two buckets, 99 low + 1 high: p50/p90 resolve to the low bucket, the
	// p99 rank (99 of 100) is exactly the last low observation, and only
	// p100 crosses into the high bucket.
	twoBuckets := snap(func(h *Histogram) {
		for i := 0; i < 99; i++ {
			h.Observe(1)
		}
		h.Observe(4)
	})
	for _, tc := range []struct {
		q    float64
		want float64
	}{{0.50, 1}, {0.90, 1}, {0.99, 1}, {1.0, 4}} {
		if got := twoBuckets.Quantile(tc.q); got != tc.want {
			t.Errorf("two buckets: Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
}

// TestExportDeterministic re-exports an identical registry and requires
// byte equality — the determinism half of the schema contract.
func TestExportDeterministic(t *testing.T) {
	defer SetEnabled(false)
	var a, b bytes.Buffer
	if err := exportRegistry().Snapshot().WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := exportRegistry().Snapshot().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("export not deterministic:\n%s\nvs\n%s", a.String(), b.String())
	}
}

// TestExportOmitsEmptySections checks that a counters-only snapshot leaves
// the optional histogram/span sections out entirely instead of emitting
// null or empty arrays with unstable presence.
func TestExportOmitsEmptySections(t *testing.T) {
	r := NewRegistry()
	SetEnabled(true)
	r.Counter("x").Inc()
	SetEnabled(false)
	data, err := json.Marshal(r.Snapshot().Export())
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if strings.Contains(s, "histograms") || strings.Contains(s, "spans") {
		t.Errorf("empty sections serialized: %s", s)
	}
}
