package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusRoundTrip renders a registry with all three metric
// kinds and feeds the output back through the strict validator — the writer
// and the linter must agree on the grammar, or ci.sh's metrics-lint step
// would reject what the server actually serves.
func TestWritePrometheusRoundTrip(t *testing.T) {
	reg := NewRegistry()
	SetEnabled(true)
	defer SetEnabled(false)
	reg.Counter("admit.requests").Add(7)
	reg.Gauge("admit.gate.queue_depth").Set(3)
	h := reg.Histogram("admit.journal.fsync_us", 10, 100, 1000)
	h.Observe(5)
	h.Observe(50)
	h.Observe(5000) // overflow bucket

	var sb strings.Builder
	reg.Snapshot().WritePrometheus(&sb)
	text := sb.String()

	for _, want := range []string{
		"# TYPE admit_requests counter\nadmit_requests 7\n",
		"# TYPE admit_gate_queue_depth gauge\nadmit_gate_queue_depth 3\n",
		"# TYPE admit_journal_fsync_us histogram\n",
		`admit_journal_fsync_us_bucket{le="10"} 1`,
		`admit_journal_fsync_us_bucket{le="100"} 2`,
		`admit_journal_fsync_us_bucket{le="1000"} 2`,
		`admit_journal_fsync_us_bucket{le="+Inf"} 3`,
		"admit_journal_fsync_us_sum 5055",
		"admit_journal_fsync_us_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition lacks %q:\n%s", want, text)
		}
	}

	n, err := ValidatePrometheusText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("own exposition fails validation: %v\n%s", err, text)
	}
	if n != 3 {
		t.Errorf("validated %d families, want 3", n)
	}
}

// TestSanitizeMetricName pins the dotted-name → Prometheus-alphabet mapping.
func TestSanitizeMetricName(t *testing.T) {
	for _, tc := range []struct{ in, want string }{
		{"admit.journal.fsync_us", "admit_journal_fsync_us"},
		{"admit.shard.007.tasks", "admit_shard_007_tasks"},
		{"already_fine:ok", "already_fine:ok"},
		{"9starts-with-digit", "_9starts_with_digit"},
		{"", "_"},
	} {
		if got := sanitizeMetricName(tc.in); got != tc.want {
			t.Errorf("sanitizeMetricName(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

// TestValidatePrometheusTextRejects walks the validator's error table: each
// malformed exposition must be refused with a diagnostic, not silently
// accepted.
func TestValidatePrometheusTextRejects(t *testing.T) {
	cases := []struct {
		name, text, wantErr string
	}{
		{"empty", "", "no metric families"},
		{"sample without TYPE", "loose_metric 1\n", "no preceding # TYPE"},
		{"duplicate TYPE", "# TYPE a counter\na 1\n# TYPE a counter\na 2\n", "duplicate TYPE"},
		{"unknown type", "# TYPE a widget\na 1\n", "unknown metric type"},
		{"bad name", "# TYPE 0a-b counter\n", "invalid metric name"},
		{"non-numeric value", "# TYPE a counter\na xyz\n", "non-numeric value"},
		{"TYPE with no samples", "# TYPE a counter\n", "no samples"},
		{"histogram missing +Inf", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_sum 1\nh_count 1\n", `missing le="+Inf"`},
		{"histogram missing count", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\n", "missing _count"},
		{"count != Inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 1\n", "_count 1"},
		{"le not ascending", "# TYPE h histogram\nh_bucket{le=\"10\"} 1\nh_bucket{le=\"5\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 0\nh_count 2\n", "not ascending"},
		{"cumulative decreases", "# TYPE h histogram\nh_bucket{le=\"10\"} 3\nh_bucket{le=\"20\"} 1\nh_bucket{le=\"+Inf\"} 3\nh_sum 0\nh_count 3\n", "decreased"},
		{"bucket without le", "# TYPE h histogram\nh_bucket{foo=\"1\"} 1\n", "without le label"},
		{"bare sample in histogram", "# TYPE h histogram\nh 1\n", "bare sample"},
		{"bucket after Inf", "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_bucket{le=\"10\"} 1\n", "after le=\"+Inf\""},
	}
	for _, tc := range cases {
		_, err := ValidatePrometheusText(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestValidatePrometheusTextAccepts covers the grammar corners a stock
// exporter may produce and which must not be rejected: HELP lines, comments,
// trailing timestamps, and non-histogram families whose names end in
// _count/_sum.
func TestValidatePrometheusTextAccepts(t *testing.T) {
	text := strings.Join([]string{
		"# HELP a helpful words here",
		"# a freestanding comment",
		"# TYPE a counter",
		"a 12 1700000000000",
		"# TYPE thing_count gauge",
		"thing_count 3",
		"# TYPE x_sum counter",
		"x_sum 1",
		"",
	}, "\n")
	n, err := ValidatePrometheusText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
	if n != 3 {
		t.Errorf("validated %d families, want 3", n)
	}
}
