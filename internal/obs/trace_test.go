package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	tr.Add(Event{Kind: EvAssigned})
	tr.Reset()
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil trace is not empty")
	}
	var buf bytes.Buffer
	tr.WriteText(&buf)
	if buf.Len() != 0 {
		t.Fatalf("nil trace rendered %q", buf.String())
	}
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Fatalf("nil trace JSON = %q, want []", buf.String())
	}
}

func TestTraceSequencing(t *testing.T) {
	tr := NewTrace()
	tr.Add(Event{Kind: EvPhase, Note: "one"})
	tr.Add(Event{Kind: EvDone})
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Seq != 0 || ev[1].Seq != 1 {
		t.Fatalf("sequence numbers wrong: %+v", ev)
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset kept events")
	}
	tr.Add(Event{Kind: EvFail})
	if tr.Events()[0].Seq != 0 {
		t.Fatal("Seq did not restart after Reset")
	}
}

func TestEventRendering(t *testing.T) {
	cases := []struct {
		e    Event
		want []string
	}{
		{Event{Kind: EvAssignAttempt, Task: 3, Part: 1, Proc: 2, C: 7, T: 20, Deadline: 20},
			[]string{"assign-attempt", "τ3.1 → P2", "C=7 T=20 Δ=20"}},
		{Event{Kind: EvAssigned, Task: 1, Part: 2, Proc: 0, C: 4, Deadline: 9, RTAIters: 5, OK: true},
			[]string{"assigned", "τ1.2 → P0", "RTA iters 5"}},
		{Event{Kind: EvSplit, Task: 2, Part: 1, Proc: 1, C: 8, Portion: 6, Remainder: 2, Response: 6, RTAIters: 3},
			[]string{"split", "C′=6 of 8", "remainder 2", "body R=6"}},
		{Event{Kind: EvProcFull, Task: 2, Part: 2, Proc: 1},
			[]string{"proc-full", "P1", "τ2.2"}},
		{Event{Kind: EvPreAssign, Task: 0, Part: 1, Proc: 3, Note: "condition (8)"},
			[]string{"pre-assign", "τ0.1 → P3 dedicated", "condition (8)"}},
		{Event{Kind: EvReject, Task: 4, Part: 1, Proc: 0, Note: "no room"},
			[]string{"reject", "τ4.1 by P0", "no room"}},
		{Event{Kind: EvPhase, Task: -1, Proc: -1, Note: "phase 1"}, []string{"phase", "phase 1"}},
		{Event{Kind: EvDone, Task: -1, Proc: -1, Note: "2 split"}, []string{"done", "2 split"}},
		{Event{Kind: EvFail, Task: -1, Proc: -1, Note: "all full"}, []string{"fail", "all full"}},
	}
	for _, c := range cases {
		line := c.e.String()
		for _, w := range c.want {
			if !strings.Contains(line, w) {
				t.Errorf("%s line %q missing %q", c.e.Kind, line, w)
			}
		}
	}
}

func TestTraceWriteTextAndJSON(t *testing.T) {
	tr := NewTrace()
	tr.Add(Event{Kind: EvAssigned, Task: 1, Part: 1, Proc: 0, C: 3, Deadline: 10, OK: true})
	tr.Add(Event{Kind: EvDone, Task: -1, Proc: -1, OK: true})

	var text bytes.Buffer
	tr.WriteText(&text)
	lines := strings.Split(strings.TrimRight(text.String(), "\n"), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "#0") || !strings.HasPrefix(lines[1], "#1") {
		t.Fatalf("text rendering:\n%s", text.String())
	}

	var js bytes.Buffer
	if err := tr.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var back []Event
	if err := json.Unmarshal(js.Bytes(), &back); err != nil {
		t.Fatalf("trace JSON does not round-trip: %v", err)
	}
	if len(back) != 2 || back[0].Kind != EvAssigned || back[0].C != 3 || !back[1].OK {
		t.Fatalf("round-tripped events: %+v", back)
	}
}
