package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
)

// EventKind classifies a partitioning decision-trace record.
type EventKind string

// The event vocabulary of the partitioning algorithms (§IV-A/§V structure):
// every admission attempt, its RTA outcome, MaxSplit results, heavy-task
// pre-assignment, processors filling up, and terminal success/failure.
const (
	// EvAssignAttempt: fragment (Task, Part) offered to processor Proc with
	// demand C, period T and synthetic deadline Deadline.
	EvAssignAttempt EventKind = "assign-attempt"
	// EvAssigned: the fragment was placed whole; RTAIters is the number of
	// response-time fixed-point iterations the admission check spent (0 when
	// metrics are disabled or admission was by utilization threshold).
	EvAssigned EventKind = "assigned"
	// EvSplit: MaxSplit chose prefix C′ = Portion, leaving Remainder;
	// Response is the body's worst-case response time, which advances the
	// successor's synthetic deadline (equation (1)).
	EvSplit EventKind = "split"
	// EvProcFull: processor Proc is full (a split or an empty MaxSplit
	// happened there); it takes no further load.
	EvProcFull EventKind = "proc-full"
	// EvPreAssign: heavy task pre-assigned to a dedicated processor
	// (condition (8) or U_i > Λ(τ); Note carries the trigger).
	EvPreAssign EventKind = "pre-assign"
	// EvReject: the processor admitted nothing of the fragment (MaxSplit
	// returned 0) or threshold admission had no room.
	EvReject EventKind = "reject"
	// EvPhase: an algorithm phase boundary (Note names the phase).
	EvPhase EventKind = "phase"
	// EvDone: partitioning succeeded.
	EvDone EventKind = "done"
	// EvFail: partitioning failed; Note carries the reason.
	EvFail EventKind = "fail"
)

// Event is one typed decision-trace record. Integer fields use the task
// package's integer time domain (task.Time = int64). Proc is -1 when the
// event is not bound to a processor.
type Event struct {
	Seq       int       `json:"seq"`
	Kind      EventKind `json:"kind"`
	Task      int       `json:"task"`
	Part      int       `json:"part,omitempty"`
	Proc      int       `json:"proc"`
	C         int64     `json:"c,omitempty"`
	T         int64     `json:"t,omitempty"`
	Deadline  int64     `json:"deadline,omitempty"`
	Portion   int64     `json:"portion,omitempty"`
	Remainder int64     `json:"remainder,omitempty"`
	Response  int64     `json:"response,omitempty"`
	RTAIters  int64     `json:"rtaIters,omitempty"`
	// RTAAborted marks a decision whose RTA evaluation hit the MaxIters
	// cap: the recorded "no" is sound but unproven (see rta.VerdictAborted).
	RTAAborted bool   `json:"rtaAborted,omitempty"`
	OK         bool   `json:"ok,omitempty"`
	Note       string `json:"note,omitempty"`
}

func (e Event) frag() string {
	if e.Part > 0 {
		return fmt.Sprintf("τ%d.%d", e.Task, e.Part)
	}
	return fmt.Sprintf("τ%d", e.Task)
}

// String renders the event as one trace line.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%-4d %-14s", e.Seq, e.Kind)
	switch e.Kind {
	case EvAssignAttempt:
		fmt.Fprintf(&b, " %s → P%d (C=%d T=%d Δ=%d)", e.frag(), e.Proc, e.C, e.T, e.Deadline)
	case EvAssigned:
		fmt.Fprintf(&b, " %s → P%d (C=%d Δ=%d, RTA iters %d)", e.frag(), e.Proc, e.C, e.Deadline, e.RTAIters)
	case EvSplit:
		fmt.Fprintf(&b, " %s on P%d: C′=%d of %d, remainder %d, body R=%d (RTA iters %d)",
			e.frag(), e.Proc, e.Portion, e.C, e.Remainder, e.Response, e.RTAIters)
	case EvProcFull:
		fmt.Fprintf(&b, " P%d (while placing %s)", e.Proc, e.frag())
	case EvPreAssign:
		fmt.Fprintf(&b, " %s → P%d dedicated", e.frag(), e.Proc)
	case EvReject:
		fmt.Fprintf(&b, " %s by P%d", e.frag(), e.Proc)
	case EvPhase, EvDone, EvFail:
		// Note carries the substance.
	}
	if e.RTAAborted {
		b.WriteString(" [RTA aborted at iteration cap]")
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " — %s", e.Note)
	}
	return b.String()
}

// Trace records partitioning decision events. A nil *Trace is a valid
// no-op recorder: every method nil-checks the receiver, so algorithm hot
// paths hold an untyped nil field and pay a single branch when tracing is
// off. Add is safe for concurrent use (experiment harnesses run many
// partitionings at once), though traces are normally per-run.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty recorder.
func NewTrace() *Trace { return &Trace{} }

// Add appends an event, stamping its sequence number. No-op on nil.
func (t *Trace) Add(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e.Seq = len(t.events)
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Len returns the number of recorded events (0 on nil).
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events (nil on nil receiver).
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset discards all recorded events.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = t.events[:0]
	t.mu.Unlock()
}

// WriteText renders the trace one event per line.
func (t *Trace) WriteText(w io.Writer) {
	for _, e := range t.Events() {
		fmt.Fprintln(w, e.String())
	}
}

// WriteJSON renders the trace as a JSON array of typed records.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	events := t.Events()
	if events == nil {
		events = []Event{}
	}
	return enc.Encode(events)
}
