package obs

import (
	"sort"
	"testing"
)

// TestGaugeSetAddGated pins the settable-gauge contract: Set/Add are
// no-ops while instrumentation is off (matching Counter/Histogram), and a
// gauge can go down.
func TestGaugeSetAddGated(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("queue.depth")
	g.Set(5)
	if got := g.Value(); got != 0 {
		t.Fatalf("disabled Set leaked: %d", got)
	}
	SetEnabled(true)
	defer SetEnabled(false)
	g.Set(5)
	g.Add(3)
	g.Add(-7)
	if got := g.Value(); got != 1 {
		t.Fatalf("gauge = %d, want 1", got)
	}
	if again := reg.Gauge("queue.depth"); again != g {
		t.Error("re-registering a gauge name returned a different instance")
	}
}

// TestGaugeFunc pins func gauges: evaluated live at read time (no Set
// needed, not gated), and re-registration re-points the callback — the
// SetGate/RegisterMetrics "latest service wins" behavior.
func TestGaugeFunc(t *testing.T) {
	reg := NewRegistry()
	level := int64(7)
	reg.GaugeFunc("live.level", func() int64 { return level })
	if got := reg.Snapshot().GetGauge("live.level"); got != 7 {
		t.Fatalf("func gauge = %d, want 7", got)
	}
	level = 9
	if got := reg.Snapshot().GetGauge("live.level"); got != 9 {
		t.Fatalf("func gauge after change = %d, want 9", got)
	}
	reg.GaugeFunc("live.level", func() int64 { return -1 })
	if got := reg.Snapshot().GetGauge("live.level"); got != -1 {
		t.Fatalf("re-registered func gauge = %d, want -1", got)
	}
}

// TestGaugeSnapshotSortedAndReset checks that snapshots list gauges
// name-sorted, that Reset zeroes settable gauges but keeps func-gauge
// callbacks alive (they mirror live state, not accumulation), and that the
// JSON export carries them.
func TestGaugeSnapshotSortedAndReset(t *testing.T) {
	reg := NewRegistry()
	SetEnabled(true)
	defer SetEnabled(false)
	reg.Gauge("zz.last").Set(1)
	reg.Gauge("aa.first").Set(2)
	reg.GaugeFunc("mm.live", func() int64 { return 42 })

	s := reg.Snapshot()
	if len(s.Gauges) != 3 {
		t.Fatalf("gauges = %+v", s.Gauges)
	}
	if !sort.SliceIsSorted(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name }) {
		t.Errorf("gauges not name-sorted: %+v", s.Gauges)
	}

	reg.Reset()
	s = reg.Snapshot()
	if got := s.GetGauge("zz.last"); got != 0 {
		t.Errorf("settable gauge survived Reset: %d", got)
	}
	if got := s.GetGauge("mm.live"); got != 42 {
		t.Errorf("func gauge lost across Reset: %d", got)
	}

	exp := s.Export()
	if got := (Snapshot{Gauges: exp.Gauges}).GetGauge("mm.live"); got != 42 {
		t.Errorf("export gauges = %+v", exp.Gauges)
	}
}
