package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestAccessLogRoundTrip writes a mixed request sequence and re-validates
// it: the writer and ValidateAccessLog must agree, seq must be dense, and
// every field must survive the trip.
func TestAccessLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 1)
	l.Log(AccessRecord{ID: "r1", Method: "POST", Route: "admit", Tenant: "prod", Status: 200, Verdict: "accepted", DurUS: 42})
	l.Log(AccessRecord{ID: "r2", Method: "POST", Route: "admit", Tenant: "prod", Status: 200, Verdict: "rejected", Cause: "no feasible assignment", DurUS: 55})
	l.Log(AccessRecord{ID: "r3", Method: "GET", Route: "status", Status: 404, DurUS: 3})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateAccessLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("own log fails validation: %v\n%s", err, buf.String())
	}
	if n != 3 {
		t.Fatalf("validated %d records, want 3", n)
	}
	var rec AccessRecord
	if err := json.Unmarshal([]byte(strings.SplitN(buf.String(), "\n", 2)[0]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.V != AccessSchemaVersion || rec.Seq != 0 || rec.ID != "r1" || rec.Verdict != "accepted" || rec.DurUS != 42 {
		t.Errorf("first record = %+v", rec)
	}
}

// TestAccessLogSampling pins the deterministic 1-in-N success sampling with
// errors always written: with sampleN=3, successes 3,6,9 are kept while
// every ≥400 goes through, and Seq stays dense over what was written.
func TestAccessLogSampling(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 3)
	for i := 1; i <= 9; i++ {
		l.Log(AccessRecord{ID: fmt.Sprintf("ok-%d", i), Method: "POST", Route: "admit", Status: 200})
	}
	l.Log(AccessRecord{ID: "err-1", Method: "POST", Route: "admit", Status: 503})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	n, err := ValidateAccessLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("sampled log fails validation: %v\n%s", err, buf.String())
	}
	if n != 4 {
		t.Fatalf("kept %d records, want 4 (3 sampled successes + 1 error)", n)
	}
	var ids []string
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec AccessRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, rec.ID)
	}
	want := []string{"ok-3", "ok-6", "ok-9", "err-1"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("kept ids %v, want %v", ids, want)
		}
	}
}

// TestAccessLogErrorFlushed checks the crash-affordance: a ≥400 record is
// flushed to the underlying writer immediately, without waiting for Close.
func TestAccessLogErrorFlushed(t *testing.T) {
	var buf bytes.Buffer
	l := NewAccessLog(&buf, 1)
	l.Log(AccessRecord{Method: "POST", Route: "admit", Status: 200})
	l.Log(AccessRecord{Method: "POST", Route: "admit", Status: 429})
	if got := buf.String(); !strings.Contains(got, `"status":429`) {
		t.Fatalf("error record not flushed before Close: %q", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestAccessLogNilSafe pins that a nil log absorbs everything.
func TestAccessLogNilSafe(t *testing.T) {
	var l *AccessLog
	l.Log(AccessRecord{Method: "GET", Route: "status", Status: 200})
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestValidateAccessLogRejects walks the validator's error table.
func TestValidateAccessLogRejects(t *testing.T) {
	line := func(mut func(*AccessRecord)) string {
		rec := AccessRecord{V: AccessSchemaVersion, Method: "POST", Route: "admit", Status: 200}
		mut(&rec)
		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		return string(b) + "\n"
	}
	cases := []struct{ name, text, wantErr string }{
		{"empty", "", "empty access log"},
		{"blank line", "\n", "empty line"},
		{"not json", "not json\n", "invalid character"},
		{"unknown field", `{"v":1,"seq":0,"ms":0,"method":"GET","route":"x","status":200,"dur_us":0,"extra":1}` + "\n", "unknown field"},
		{"wrong schema", line(func(r *AccessRecord) { r.V = 99 }), "schema 99"},
		{"seq gap", line(func(r *AccessRecord) { r.Seq = 5 }), "seq 5 out of order"},
		{"missing method", line(func(r *AccessRecord) { r.Method = "" }), "missing method"},
		{"missing route", line(func(r *AccessRecord) { r.Route = "" }), "missing route"},
		{"bad status", line(func(r *AccessRecord) { r.Status = 42 }), "implausible status"},
		{"negative duration", line(func(r *AccessRecord) { r.DurUS = -1 }), "negative duration"},
		{"negative timestamp", line(func(r *AccessRecord) { r.Ms = -1 }), "negative timestamp"},
		{"unknown verdict", line(func(r *AccessRecord) { r.Verdict = "maybe" }), "unknown verdict"},
		{"cause without verdict", line(func(r *AccessRecord) { r.Cause = "util" }), "without rejected verdict"},
	}
	for _, tc := range cases {
		_, err := ValidateAccessLog(strings.NewReader(tc.text))
		if err == nil {
			t.Errorf("%s: accepted invalid log %q", tc.name, tc.text)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q lacks %q", tc.name, err, tc.wantErr)
		}
	}
}
