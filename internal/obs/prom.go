package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4) and validates that grammar, so admitd is scrapable by
// stock tooling and ci.sh can lint what the server actually serves. The
// mapping from the registry's dotted names is mechanical:
//
//	counters    → "# TYPE n counter" + one sample
//	gauges      → "# TYPE n gauge" + one sample
//	histograms  → "# TYPE n histogram" + cumulative n_bucket{le="..."}
//	              samples ending in le="+Inf", plus n_sum and n_count
//	spans       → skipped (wall-clock one-shots, not scrapeable series)
//
// Dots (and any other character outside the Prometheus name alphabet) become
// underscores: admit.journal.fsync_us → admit_journal_fsync_us.

// sanitizeMetricName maps a registry name into the Prometheus metric-name
// alphabet [a-zA-Z_:][a-zA-Z0-9_:]*.
func sanitizeMetricName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format. Histogram buckets are cumulative per the format (the registry
// stores them disjoint), and every family gets a # TYPE line.
func (s Snapshot) WritePrometheus(w io.Writer) {
	for _, c := range s.Counters {
		n := sanitizeMetricName(c.Name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := sanitizeMetricName(g.Name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := sanitizeMetricName(h.Name)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			if b.Upper < 0 {
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
			} else {
				fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", n, b.Upper, cum)
			}
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", n, h.Sum, n, h.Count)
	}
}

// promTypes is the # TYPE vocabulary of the 0.0.4 text format.
var promTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// promFamily tracks per-family validation state while scanning.
type promFamily struct {
	typ     string
	samples int
	// histogram bookkeeping
	lastLE      float64
	lastLERaw   string
	lastBucket  float64
	sawInf      bool
	infValue    float64
	countValue  float64
	sawCount    bool
	bucketCount int
}

// splitPromSample splits a sample line into metric identifier (name plus
// optional {labels}) and value, tolerating the optional trailing timestamp.
func splitPromSample(line string) (ident, value string, ok bool) {
	// The identifier ends at the first space outside a label block.
	depth := 0
	cut := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '{':
			depth++
		case '}':
			depth--
		case ' ':
			if depth == 0 {
				cut = i
			}
		}
		if cut >= 0 {
			break
		}
	}
	if cut <= 0 {
		return "", "", false
	}
	rest := strings.Fields(line[cut+1:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", "", false
	}
	return line[:cut], rest[0], true
}

// familyOf reduces a sample identifier to its metric family: labels are
// stripped, and the histogram/summary suffixes _bucket/_sum/_count fold into
// the base name.
func familyOf(ident string) (family, suffix, labels string) {
	name := ident
	if i := strings.IndexByte(ident, '{'); i >= 0 {
		name = ident[:i]
		labels = ident[i:]
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf, labels
		}
	}
	return name, "", labels
}

// leOf extracts the le label value from a label block like {le="250"}.
func leOf(labels string) (string, bool) {
	const key = `le="`
	i := strings.Index(labels, key)
	if i < 0 {
		return "", false
	}
	rest := labels[i+len(key):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// validMetricName reports whether name fits [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		ok := c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// ValidatePrometheusText is the strict grammar check for the exposition this
// package writes, mirroring ValidateEventLog's role for the flight recorder:
// every sample must belong to a family announced by a preceding # TYPE line,
// TYPE lines must not repeat, values must parse as floats, and histogram
// families must carry ascending le buckets with non-decreasing cumulative
// counts, a closing le="+Inf" bucket, and a _count equal to it. Returns the
// number of metric families seen; zero families is an error (an empty
// exposition from a live server means the wiring is broken).
func ValidatePrometheusText(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	fams := make(map[string]*promFamily)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "HELP" {
				continue
			}
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) != 4 {
					return 0, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
				}
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, name)
				}
				if !promTypes[typ] {
					return 0, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if _, dup := fams[name]; dup {
					return 0, fmt.Errorf("line %d: duplicate TYPE for family %q", lineNo, name)
				}
				fams[name] = &promFamily{typ: typ}
				continue
			}
			continue // other comments are legal and ignored
		}
		ident, valStr, ok := splitPromSample(line)
		if !ok {
			return 0, fmt.Errorf("line %d: malformed sample %q", lineNo, line)
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return 0, fmt.Errorf("line %d: non-numeric value %q", lineNo, valStr)
		}
		family, suffix, labels := familyOf(ident)
		fam, known := fams[family]
		if !known {
			// _bucket/_sum/_count may be stripped from a non-histogram name
			// that legitimately ends that way; fall back to the full name.
			if i := strings.IndexByte(ident, '{'); i >= 0 {
				ident = ident[:i]
			}
			fam, known = fams[ident]
			if !known {
				return 0, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, ident)
			}
			family, suffix = ident, ""
		}
		if !validMetricName(family) {
			return 0, fmt.Errorf("line %d: invalid metric name %q", lineNo, family)
		}
		fam.samples++
		if fam.typ != "histogram" {
			continue
		}
		switch suffix {
		case "_bucket":
			leRaw, ok := leOf(labels)
			if !ok {
				return 0, fmt.Errorf("line %d: histogram bucket without le label: %q", lineNo, line)
			}
			var le float64
			if leRaw == "+Inf" {
				if fam.sawInf {
					return 0, fmt.Errorf("line %d: family %q has duplicate le=\"+Inf\"", lineNo, family)
				}
				fam.sawInf = true
				fam.infValue = val
			} else {
				le, err = strconv.ParseFloat(leRaw, 64)
				if err != nil {
					return 0, fmt.Errorf("line %d: unparseable le %q", lineNo, leRaw)
				}
				if fam.sawInf {
					return 0, fmt.Errorf("line %d: family %q has bucket after le=\"+Inf\"", lineNo, family)
				}
				if fam.bucketCount > 0 && le <= fam.lastLE {
					return 0, fmt.Errorf("line %d: family %q le %q not ascending after %q", lineNo, family, leRaw, fam.lastLERaw)
				}
				fam.lastLE, fam.lastLERaw = le, leRaw
			}
			if fam.bucketCount > 0 && val < fam.lastBucket {
				return 0, fmt.Errorf("line %d: family %q cumulative bucket count decreased (%g < %g)", lineNo, family, val, fam.lastBucket)
			}
			fam.lastBucket = val
			fam.bucketCount++
		case "_count":
			fam.sawCount = true
			fam.countValue = val
		case "_sum":
			// any float is fine
		default:
			return 0, fmt.Errorf("line %d: bare sample %q in histogram family %q", lineNo, ident, family)
		}
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	// Close out per-family invariants.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fam := fams[n]
		if fam.samples == 0 {
			return 0, fmt.Errorf("family %q: TYPE line with no samples", n)
		}
		if fam.typ != "histogram" {
			continue
		}
		if !fam.sawInf {
			return 0, fmt.Errorf("family %q: histogram missing le=\"+Inf\" bucket", n)
		}
		if !fam.sawCount {
			return 0, fmt.Errorf("family %q: histogram missing _count sample", n)
		}
		if fam.countValue != fam.infValue {
			return 0, fmt.Errorf("family %q: _count %g != le=\"+Inf\" bucket %g", n, fam.countValue, fam.infValue)
		}
	}
	if len(fams) == 0 {
		return 0, fmt.Errorf("no metric families found")
	}
	return len(fams), nil
}
