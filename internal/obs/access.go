package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// AccessSchemaVersion stamps every access-log record. Bump policy matches
// EventSchemaVersion: renames/retypes/removals bump, additive optional
// fields do not. ValidateAccessLog rejects records carrying a different
// version.
const AccessSchemaVersion = 1

// AccessRecord is one JSONL access-log line: the per-request facts an
// operator needs to audit admission decisions after the fact (who asked,
// what happened, how long it took), keyed by the request ID so a line can be
// joined against the slow-request ring and the journal. Ms is wall-clock
// milliseconds since the log was opened — the only nondeterministic field
// besides the duration.
type AccessRecord struct {
	V      int    `json:"v"`
	Seq    int64  `json:"seq"`
	Ms     int64  `json:"ms"`
	ID     string `json:"id,omitempty"`
	Method string `json:"method"`
	Route  string `json:"route"`
	Tenant string `json:"tenant,omitempty"`
	Status int    `json:"status"`
	// Verdict/Cause attribute admission outcomes; empty on non-admit routes.
	Verdict string `json:"verdict,omitempty"`
	Cause   string `json:"cause,omitempty"`
	DurUS   int64  `json:"dur_us"`
}

// AccessLog writes AccessRecords as JSONL, mirroring Recorder: buffered
// writes under a mutex, sticky first error, flush on Close (and after every
// error-status record, so a crash loses at most trailing success lines). A
// nil *AccessLog is a valid no-op.
//
// Sampling keeps the log affordable under load: with SampleN = n, every n-th
// success is written while every record with Status ≥ 400 is always written.
// The counter is deterministic (no random drops), so a fixed request
// sequence yields a fixed log.
type AccessLog struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	c       io.Closer
	start   time.Time
	seq     int64
	sampleN int64
	nth     int64
	err     error
}

// NewAccessLog returns an access log writing JSONL to w, keeping one in
// every sampleN successful requests (sampleN ≤ 1 keeps all). If w is also an
// io.Closer, Close closes it after the final flush.
func NewAccessLog(w io.Writer, sampleN int) *AccessLog {
	if sampleN < 1 {
		sampleN = 1
	}
	l := &AccessLog{bw: bufio.NewWriter(w), start: time.Now(), sampleN: int64(sampleN)}
	if c, ok := w.(io.Closer); ok {
		l.c = c
	}
	return l
}

// Log stamps rec's V, Seq and Ms and appends it, subject to sampling.
// No-op on a nil log.
func (l *AccessLog) Log(rec AccessRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if rec.Status < 400 {
		l.nth++
		if l.nth%l.sampleN != 0 {
			return
		}
	}
	rec.V = AccessSchemaVersion
	rec.Seq = l.seq
	rec.Ms = time.Since(l.start).Milliseconds()
	data, err := json.Marshal(rec)
	if err != nil {
		l.err = err
		return
	}
	l.seq++
	data = append(data, '\n')
	if _, err := l.bw.Write(data); err != nil {
		l.err = err
		return
	}
	if rec.Status >= 400 {
		l.err = l.bw.Flush()
	}
}

// Err returns the first write or encoding error, if any.
func (l *AccessLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes the stream and closes the underlying writer when it is
// closable, returning the first error seen over the log's lifetime.
func (l *AccessLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.bw.Flush(); err != nil && l.err == nil {
		l.err = err
	}
	if l.c != nil {
		if err := l.c.Close(); err != nil && l.err == nil {
			l.err = err
		}
	}
	return l.err
}

// accessVerdicts is the closed verdict vocabulary ValidateAccessLog accepts.
var accessVerdicts = map[string]bool{"": true, "accepted": true, "rejected": true}

// ValidateAccessLog strictly parses a JSONL access log, mirroring
// ValidateEventLog: every line must be an AccessRecord with no unknown
// fields and the supported schema version, Seq must equal the line position,
// method and route must be present, the status must be a plausible HTTP
// code, durations must be non-negative and verdicts in-vocabulary. Returns
// the number of validated records; an empty log is an error (the smoke boot
// that produced it served requests).
func ValidateAccessLog(rd io.Reader) (int, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			return n, fmt.Errorf("record %d: empty line", n)
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		var rec AccessRecord
		if err := dec.Decode(&rec); err != nil {
			return n, fmt.Errorf("record %d: %w", n, err)
		}
		switch {
		case rec.V != AccessSchemaVersion:
			return n, fmt.Errorf("record %d: schema %d, supported %d", n, rec.V, AccessSchemaVersion)
		case rec.Seq != int64(n):
			return n, fmt.Errorf("record %d: seq %d out of order", n, rec.Seq)
		case rec.Method == "":
			return n, fmt.Errorf("record %d: missing method", n)
		case rec.Route == "":
			return n, fmt.Errorf("record %d: missing route", n)
		case rec.Status < 100 || rec.Status >= 600:
			return n, fmt.Errorf("record %d: implausible status %d", n, rec.Status)
		case rec.DurUS < 0:
			return n, fmt.Errorf("record %d: negative duration %d", n, rec.DurUS)
		case rec.Ms < 0:
			return n, fmt.Errorf("record %d: negative timestamp %d", n, rec.Ms)
		case !accessVerdicts[rec.Verdict]:
			return n, fmt.Errorf("record %d: unknown verdict %q", n, rec.Verdict)
		case rec.Cause != "" && rec.Verdict != "rejected":
			return n, fmt.Errorf("record %d: cause %q without rejected verdict", n, rec.Cause)
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, err
	}
	if n == 0 {
		return 0, fmt.Errorf("empty access log")
	}
	return n, nil
}
