package obs

import (
	"encoding/json"
	"net/http"
	"sync"
	"time"
)

// RequestRecord is one entry of the slow/errored-request ring: enough to
// answer "what went wrong with request X" (correlating with the access log
// and journal via the request ID) without shipping a tracing stack.
type RequestRecord struct {
	ID     string    `json:"id"`
	Time   time.Time `json:"time"`
	Method string    `json:"method"`
	Route  string    `json:"route"`
	Path   string    `json:"path"`
	Tenant string    `json:"tenant,omitempty"`
	Status int       `json:"status"`
	DurUS  int64     `json:"dur_us"`
	// Verdict/Cause carry admission outcomes ("accepted"/"rejected" and the
	// partition cause) so a slow rejection is distinguishable from a slow
	// acceptance at a glance.
	Verdict string `json:"verdict,omitempty"`
	Cause   string `json:"cause,omitempty"`
}

// DefaultRequestRingSize is the ring capacity when none is given.
const DefaultRequestRingSize = 256

// RequestRing is a fixed-capacity ring of recent interesting requests
// (errored or slower than the caller's threshold — the caller decides what
// to Record). It is safe for concurrent use; a nil ring is a valid no-op so
// tracing can be wired unconditionally and disabled by configuration.
type RequestRing struct {
	mu    sync.Mutex
	buf   []RequestRecord
	next  int
	total int64
}

// NewRequestRing returns a ring holding the last capacity records
// (DefaultRequestRingSize when capacity ≤ 0).
func NewRequestRing(capacity int) *RequestRing {
	if capacity <= 0 {
		capacity = DefaultRequestRingSize
	}
	return &RequestRing{buf: make([]RequestRecord, 0, capacity)}
}

// Record appends rec, evicting the oldest entry once the ring is full.
// No-op on a nil ring.
func (rr *RequestRing) Record(rec RequestRecord) {
	if rr == nil {
		return
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	rr.total++
	if len(rr.buf) < cap(rr.buf) {
		rr.buf = append(rr.buf, rec)
		return
	}
	rr.buf[rr.next] = rec
	rr.next = (rr.next + 1) % len(rr.buf)
}

// Snapshot returns the ring's records newest-first. Nil ring → nil.
func (rr *RequestRing) Snapshot() []RequestRecord {
	if rr == nil {
		return nil
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	out := make([]RequestRecord, 0, len(rr.buf))
	// Entries are oldest at rr.next (once wrapped); walk backwards from the
	// newest so the HTTP view leads with the most recent incident.
	for i := 0; i < len(rr.buf); i++ {
		idx := (rr.next - 1 - i + 2*len(rr.buf)) % len(rr.buf)
		out = append(out, rr.buf[idx])
	}
	return out
}

// Handler serves the ring as JSON for GET /debug/requests: capacity, the
// lifetime count of recorded (not just retained) requests, and the retained
// records newest-first.
func (rr *RequestRing) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var (
			recs     = rr.Snapshot()
			capacity int
			total    int64
		)
		if rr != nil {
			rr.mu.Lock()
			capacity = cap(rr.buf)
			total = rr.total
			rr.mu.Unlock()
		}
		if recs == nil {
			recs = []RequestRecord{} // render [] rather than null
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(struct {
			Schema   int             `json:"schema"`
			Capacity int             `json:"capacity"`
			Total    int64           `json:"total"`
			Requests []RequestRecord `json:"requests"`
		}{Schema: SnapshotSchemaVersion, Capacity: capacity, Total: total, Requests: recs})
	})
}
