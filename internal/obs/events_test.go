package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// record writes a small but fully populated event stream and returns the
// JSONL bytes.
func record(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Emit(RunEvent{Kind: EvRunStart, Schema: EventSchemaVersion, GoVersion: "go1.24.0",
		Seed: 7, Sets: 16, Quick: true, Workers: 4})
	rec.Emit(RunEvent{Kind: EvExperimentStart, Experiment: "acceptance-general"})
	rec.Emit(RunEvent{Kind: EvPointDone, Experiment: "acceptance-general",
		Label: "acceptance-general", Point: 1, Points: 4,
		Counters: []CounterValue{{Name: "rta.iters", Value: 123}},
		Rejections: []RejectCount{
			{Algo: "SPA2", Cause: "threshold-exhausted", N: 9},
			{Algo: "RM-TS", Cause: "maxsplit-exhausted", N: 2},
		}})
	rec.Emit(RunEvent{Kind: EvPointRestored, Experiment: "acceptance-general",
		Label: "acceptance-general", Point: 2, Points: 4})
	rec.Emit(RunEvent{Kind: EvCheckpoint, Experiment: "acceptance-general", Points: 2})
	rec.Emit(RunEvent{Kind: EvSampleError, Experiment: "acceptance-general", Point: 3,
		Sample: 5, BaseSeed: 99, SampleSeed: 99 + 4*0x9E3779B9, Panic: "boom"})
	rec.Emit(RunEvent{Kind: EvExperimentEnd, Experiment: "acceptance-general", Tables: 1})
	rec.Emit(RunEvent{Kind: EvRunEnd})
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// TestEventLogRoundTrip validates a recorded stream and pins the JSONL
// schema: one object per line, sequential seq stamps, and exactly the
// expected key sets per event kind (field-stable golden).
func TestEventLogRoundTrip(t *testing.T) {
	data := record(t)
	n, err := ValidateEventLog(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, data)
	}
	if n != 8 {
		t.Fatalf("validated %d events, want 8", n)
	}

	// Golden key sets: a new field on an event kind must be added here
	// deliberately (and the schema policy consulted).
	wantKeys := []string{
		"seq ms kind schema go seed sets quick workers",
		"seq ms kind experiment",
		"seq ms kind experiment label point points counters rejections",
		"seq ms kind experiment label point points",
		"seq ms kind experiment points",
		"seq ms kind experiment point sample base_seed sample_seed panic",
		"seq ms kind experiment tables",
		"seq ms kind",
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(wantKeys) {
		t.Fatalf("%d lines, want %d", len(lines), len(wantKeys))
	}
	for i, line := range lines {
		// Key order in the marshalled struct is declaration order; rebuild
		// it from the raw line to compare stably. Each top-level value is
		// skipped as a unit — dec.More() tracks the innermost container, so
		// a naive walk would stop at the first nested array's end and miss
		// every key after it.
		var keys []string
		dec := json.NewDecoder(strings.NewReader(line))
		if _, err := dec.Token(); err != nil { // {
			t.Fatalf("line %d: %v", i, err)
		}
		for dec.More() {
			tok, err := dec.Token()
			if err != nil {
				t.Fatalf("line %d: %v", i, err)
			}
			keys = append(keys, tok.(string))
			if err := skipValue(dec); err != nil {
				t.Fatalf("line %d: %v", i, err)
			}
		}
		if got := strings.Join(keys, " "); got != wantKeys[i] {
			t.Errorf("line %d keys drifted:\n  want %q\n  got  %q", i, wantKeys[i], got)
		}
	}
}

// skipValue consumes one complete JSON value (scalar or nested structure)
// from dec.
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err != nil {
		return err
	}
	if d, ok := tok.(json.Delim); ok && (d == '{' || d == '[') {
		depth := 1
		for depth > 0 {
			tok, err := dec.Token()
			if err != nil {
				return err
			}
			if d, ok := tok.(json.Delim); ok {
				switch d {
				case '{', '[':
					depth++
				case '}', ']':
					depth--
				}
			}
		}
	}
	return nil
}

// TestValidateEventLogRejections exercises the validator's failure modes.
func TestValidateEventLogRejections(t *testing.T) {
	good := string(record(t))
	start := fmt.Sprintf(`{"seq":0,"ms":0,"kind":"run-start","schema":%d}`+"\n", EventSchemaVersion)
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"unknown field":  fmt.Sprintf(`{"seq":0,"ms":0,"kind":"run-start","schema":%d,"bogus":1}`+"\n", EventSchemaVersion),
		"unknown kind":   start + `{"seq":1,"ms":0,"kind":"mystery"}` + "\n",
		"no run-start":   `{"seq":0,"ms":0,"kind":"run-end"}` + "\n",
		"wrong schema":   `{"seq":0,"ms":0,"kind":"run-start","schema":99}` + "\n",
		"seq regression": strings.Replace(good, `"seq":3`, `"seq":7`, 1),

		"rejections off point-done": start +
			`{"seq":1,"ms":0,"kind":"checkpoint","rejections":[{"algo":"A","cause":"c","n":1}]}` + "\n",
		"rejection no algo": start +
			`{"seq":1,"ms":0,"kind":"point-done","rejections":[{"algo":"","cause":"c","n":1}]}` + "\n",
		"rejection no cause": start +
			`{"seq":1,"ms":0,"kind":"point-done","rejections":[{"algo":"A","cause":"","n":1}]}` + "\n",
		"rejection zero count": start +
			`{"seq":1,"ms":0,"kind":"point-done","rejections":[{"algo":"A","cause":"c","n":0}]}` + "\n",
	}
	for name, in := range cases {
		if _, err := ValidateEventLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted invalid log", name)
		}
	}
}

// TestRecorderNilSafe mirrors the Trace contract: a nil recorder is a
// usable no-op.
func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Emit(RunEvent{Kind: EvRunStart})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffCounters checks delta attribution: moved and newly appearing
// counters are reported, unchanged ones suppressed.
func TestDiffCounters(t *testing.T) {
	before := Snapshot{Counters: []CounterValue{{"a", 10}, {"b", 5}}}
	after := Snapshot{Counters: []CounterValue{{"a", 10}, {"b", 9}, {"c", 3}}}
	got := DiffCounters(before, after)
	want := []CounterValue{{"b", 4}, {"c", 3}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delta %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
