package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// record writes a small but fully populated event stream and returns the
// JSONL bytes.
func record(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	rec := NewRecorder(&buf)
	rec.Emit(RunEvent{Kind: EvRunStart, Schema: EventSchemaVersion, GoVersion: "go1.24.0",
		Seed: 7, Sets: 16, Quick: true, Workers: 4})
	rec.Emit(RunEvent{Kind: EvExperimentStart, Experiment: "acceptance-general"})
	rec.Emit(RunEvent{Kind: EvPointDone, Experiment: "acceptance-general",
		Label: "acceptance-general", Point: 1, Points: 4,
		Counters: []CounterValue{{Name: "rta.iters", Value: 123}}})
	rec.Emit(RunEvent{Kind: EvPointRestored, Experiment: "acceptance-general",
		Label: "acceptance-general", Point: 2, Points: 4})
	rec.Emit(RunEvent{Kind: EvCheckpoint, Experiment: "acceptance-general", Points: 2})
	rec.Emit(RunEvent{Kind: EvSampleError, Experiment: "acceptance-general", Point: 3,
		Sample: 5, BaseSeed: 99, SampleSeed: 99 + 4*0x9E3779B9, Panic: "boom"})
	rec.Emit(RunEvent{Kind: EvExperimentEnd, Experiment: "acceptance-general", Tables: 1})
	rec.Emit(RunEvent{Kind: EvRunEnd})
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	return buf.Bytes()
}

// TestEventLogRoundTrip validates a recorded stream and pins the JSONL
// schema: one object per line, sequential seq stamps, and exactly the
// expected key sets per event kind (field-stable golden).
func TestEventLogRoundTrip(t *testing.T) {
	data := record(t)
	n, err := ValidateEventLog(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("validate: %v\n%s", err, data)
	}
	if n != 8 {
		t.Fatalf("validated %d events, want 8", n)
	}

	// Golden key sets: a new field on an event kind must be added here
	// deliberately (and the schema policy consulted).
	wantKeys := []string{
		"seq ms kind schema go seed sets quick workers",
		"seq ms kind experiment",
		"seq ms kind experiment label point points counters",
		"seq ms kind experiment label point points",
		"seq ms kind experiment points",
		"seq ms kind experiment point sample base_seed sample_seed panic",
		"seq ms kind experiment tables",
		"seq ms kind",
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != len(wantKeys) {
		t.Fatalf("%d lines, want %d", len(lines), len(wantKeys))
	}
	for i, line := range lines {
		var obj map[string]interface{}
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		// Key order in the marshalled struct is declaration order; rebuild
		// it from the raw line to compare stably.
		var keys []string
		dec := json.NewDecoder(strings.NewReader(line))
		dec.Token() // {
		for dec.More() {
			tok, err := dec.Token()
			if err != nil {
				t.Fatalf("line %d: %v", i, err)
			}
			if k, ok := tok.(string); ok {
				if _, present := obj[k]; present {
					keys = append(keys, k)
					delete(obj, k)
				}
			}
		}
		if got := strings.Join(keys, " "); got != wantKeys[i] {
			t.Errorf("line %d keys drifted:\n  want %q\n  got  %q", i, wantKeys[i], got)
		}
	}
}

// TestValidateEventLogRejections exercises the validator's failure modes.
func TestValidateEventLogRejections(t *testing.T) {
	good := string(record(t))
	cases := map[string]string{
		"empty":          "",
		"not json":       "hello\n",
		"unknown field":  `{"seq":0,"ms":0,"kind":"run-start","schema":1,"bogus":1}` + "\n",
		"unknown kind":   `{"seq":0,"ms":0,"kind":"run-start","schema":1}` + "\n" + `{"seq":1,"ms":0,"kind":"mystery"}` + "\n",
		"no run-start":   `{"seq":0,"ms":0,"kind":"run-end"}` + "\n",
		"wrong schema":   `{"seq":0,"ms":0,"kind":"run-start","schema":99}` + "\n",
		"seq regression": strings.Replace(good, `"seq":3`, `"seq":7`, 1),
	}
	for name, in := range cases {
		if _, err := ValidateEventLog(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validator accepted invalid log", name)
		}
	}
}

// TestRecorderNilSafe mirrors the Trace contract: a nil recorder is a
// usable no-op.
func TestRecorderNilSafe(t *testing.T) {
	var rec *Recorder
	rec.Emit(RunEvent{Kind: EvRunStart})
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestDiffCounters checks delta attribution: moved and newly appearing
// counters are reported, unchanged ones suppressed.
func TestDiffCounters(t *testing.T) {
	before := Snapshot{Counters: []CounterValue{{"a", 10}, {"b", 5}}}
	after := Snapshot{Counters: []CounterValue{{"a", 10}, {"b", 9}, {"c", 3}}}
	got := DiffCounters(before, after)
	want := []CounterValue{{"b", 4}, {"c", 3}}
	if len(got) != len(want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("delta %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
