package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
)

// TestRequestRingEvictionOrder fills a small ring past capacity and checks
// that Snapshot returns the retained records newest-first with the oldest
// evicted — the /debug/requests contract.
func TestRequestRingEvictionOrder(t *testing.T) {
	rr := NewRequestRing(3)
	for i := 0; i < 5; i++ {
		rr.Record(RequestRecord{ID: fmt.Sprintf("req-%d", i), Status: 500})
	}
	got := rr.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained %d records, want 3", len(got))
	}
	for i, want := range []string{"req-4", "req-3", "req-2"} {
		if got[i].ID != want {
			t.Errorf("snapshot[%d] = %q, want %q", i, got[i].ID, want)
		}
	}
}

// TestRequestRingPartial checks newest-first ordering before the ring has
// wrapped (the append-path branch of Record).
func TestRequestRingPartial(t *testing.T) {
	rr := NewRequestRing(8)
	rr.Record(RequestRecord{ID: "a"})
	rr.Record(RequestRecord{ID: "b"})
	got := rr.Snapshot()
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("snapshot = %+v, want [b a]", got)
	}
}

// TestRequestRingNilSafe pins the disabled-tracing path: a nil ring must
// absorb records, snapshot to nil, and still serve a well-formed handler
// response.
func TestRequestRingNilSafe(t *testing.T) {
	var rr *RequestRing
	rr.Record(RequestRecord{ID: "dropped"}) // must not panic
	if s := rr.Snapshot(); s != nil {
		t.Errorf("nil ring snapshot = %v, want nil", s)
	}
	w := httptest.NewRecorder()
	rr.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 200 {
		t.Fatalf("nil ring handler: code %d", w.Code)
	}
	var body struct {
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("nil ring handler body: %v\n%s", err, w.Body.String())
	}
	if body.Requests == nil || len(body.Requests) != 0 {
		t.Errorf("nil ring handler requests = %v, want []", body.Requests)
	}
}

// TestRequestRingHandler checks the JSON envelope: schema, capacity, the
// lifetime total (which outlives eviction), and the records themselves.
func TestRequestRingHandler(t *testing.T) {
	rr := NewRequestRing(2)
	for i := 0; i < 3; i++ {
		rr.Record(RequestRecord{ID: fmt.Sprintf("r%d", i), Method: "POST", Route: "admit", Status: 429, DurUS: 12})
	}
	w := httptest.NewRecorder()
	rr.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 200 || w.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("handler: code %d type %q", w.Code, w.Header().Get("Content-Type"))
	}
	var body struct {
		Schema   int             `json:"schema"`
		Capacity int             `json:"capacity"`
		Total    int64           `json:"total"`
		Requests []RequestRecord `json:"requests"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("handler body: %v\n%s", err, w.Body.String())
	}
	if body.Schema != SnapshotSchemaVersion || body.Capacity != 2 || body.Total != 3 {
		t.Errorf("envelope = %+v, want schema %d cap 2 total 3", body, SnapshotSchemaVersion)
	}
	if len(body.Requests) != 2 || body.Requests[0].ID != "r2" || body.Requests[0].Status != 429 {
		t.Errorf("requests = %+v", body.Requests)
	}
}

// TestRequestRingConcurrent hammers Record and Snapshot from many
// goroutines; run under -race this pins the locking discipline.
func TestRequestRingConcurrent(t *testing.T) {
	rr := NewRequestRing(16)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				rr.Record(RequestRecord{ID: fmt.Sprintf("g%d-%d", g, i)})
				if i%16 == 0 {
					rr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := rr.Snapshot(); len(got) != 16 {
		t.Fatalf("retained %d, want 16", len(got))
	}
}
