package obs

import (
	"encoding/json"
	"net/http"
	"sync/atomic"
)

// Readiness is the process's load-balancer-facing state, distinct from
// liveness: /healthz answers "is the process up" (always 200 while the
// server runs), /readyz answers "should traffic be routed here" (503
// during journal replay and during shutdown drain, so a fronting balancer
// stops routing before state is consistent or while connections wind
// down). Batch harnesses never touch this and stay ready by default;
// cmd/admitd drives the transitions.
type Readiness int32

const (
	// ReadyServing is the default: traffic welcome.
	ReadyServing Readiness = iota
	// ReadyStarting means the process booted but has not begun recovery.
	ReadyStarting
	// ReadyRecovering means journal replay is in progress.
	ReadyRecovering
	// ReadyDraining means shutdown began; in-flight requests finish but
	// new traffic should go elsewhere.
	ReadyDraining
)

func (r Readiness) String() string {
	switch r {
	case ReadyServing:
		return "serving"
	case ReadyStarting:
		return "starting"
	case ReadyRecovering:
		return "recovering"
	case ReadyDraining:
		return "draining"
	default:
		return "readiness(?)"
	}
}

var readiness atomic.Int32

// SetReadiness publishes the process readiness state (read by /readyz).
func SetReadiness(r Readiness) { readiness.Store(int32(r)) }

// CurrentReadiness returns the published readiness state.
func CurrentReadiness() Readiness { return Readiness(readiness.Load()) }

// RegisterReadinessGauge publishes the readiness state as the numeric gauge
// process.ready_state in reg (nil means Default), so state flaps survive in
// scrape history rather than only in probe logs. The values follow the
// Readiness constants (0=serving, 1=starting, 2=recovering, 3=draining).
// Registration is deliberately explicit rather than done in init(): batch
// harnesses export deterministic metric documents and must not grow a
// wall-clock-adjacent gauge unasked; cmd/admitd opts in at boot.
func RegisterReadinessGauge(reg *Registry) {
	if reg == nil {
		reg = Default
	}
	reg.GaugeFunc("process.ready_state", func() int64 {
		return int64(CurrentReadiness())
	})
}

// readyzHandler serves GET /readyz: 200 {"ready":true,...} only in the
// serving state, 503 otherwise, always naming the state so an operator
// curling the endpoint sees *why* traffic is parked.
func readyzHandler(w http.ResponseWriter, r *http.Request) {
	st := CurrentReadiness()
	code := http.StatusOK
	if st != ReadyServing {
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Ready bool   `json:"ready"`
		State string `json:"state"`
	}{Ready: st == ReadyServing, State: st.String()})
}
