package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/rta"
	"repro/internal/task"
)

// The decisive check on every implemented PUB formula: a bound is only
// correct if EVERY task set with U(τ) ≤ Λ(τ) passes exact uniprocessor
// RTA. Transcription errors in the formulas would show up here as concrete
// counterexamples.

func rmSchedulable(ts task.Set) bool {
	sorted := ts.Clone()
	sorted.SortRM()
	list := make([]task.Subtask, len(sorted))
	for i, t := range sorted {
		list[i] = task.Whole(i, t)
	}
	return rta.ProcessorSchedulable(list)
}

// scaleToBound rescales execution times so the total utilization lands
// just under target (floored to integers, so the realized total is ≤
// target plus one-tick noise; sets that overshoot are discarded by the
// caller).
func scaleToBound(r *rand.Rand, ts task.Set, target float64) (task.Set, bool) {
	u := ts.TotalUtilization()
	if u <= 0 {
		return nil, false
	}
	f := target / u * (0.90 + 0.099*r.Float64()) // land in [0.90, 0.999]·target
	out := ts.Clone()
	for i := range out {
		c := task.Time(float64(out[i].C) * f)
		if c < 1 {
			c = 1
		}
		if c > out[i].T {
			c = out[i].T
		}
		out[i].C = c
	}
	if out.TotalUtilization() > target {
		return nil, false
	}
	return out, true
}

func checkBoundSoundness(t *testing.T, b PUB, mkPeriods func(r *rand.Rand, n int) []task.Time, trials int, seed int64) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tested := 0
	for trial := 0; trial < trials; trial++ {
		n := 2 + r.Intn(8)
		periods := mkPeriods(r, n)
		ts := make(task.Set, n)
		for i, p := range periods {
			c := task.Time(1 + r.Int63n(int64(p)))
			ts[i] = task.Task{Name: "s", C: c, T: p}
		}
		bound := b.Value(ts)
		if bound <= 0 || bound > 1 {
			t.Fatalf("%s produced out-of-range bound %g for periods %v", b.Name(), bound, periods)
		}
		scaled, ok := scaleToBound(r, ts, bound)
		if !ok {
			continue
		}
		if !rmSchedulable(scaled) {
			t.Fatalf("%s UNSOUND: set %v has U=%.6f ≤ Λ=%.6f but fails exact RTA",
				b.Name(), scaled, scaled.TotalUtilization(), bound)
		}
		tested++
	}
	if tested < trials/2 {
		t.Errorf("%s: only %d/%d trials landed under the bound", b.Name(), tested, trials)
	}
}

func genericPeriods(r *rand.Rand, n int) []task.Time {
	out := make([]task.Time, n)
	for i := range out {
		out[i] = task.Time(20 + r.Intn(2000))
	}
	return out
}

func harmonicPeriods(r *rand.Rand, n int) []task.Time {
	out := make([]task.Time, n)
	p := task.Time(8 + r.Intn(20))
	for i := range out {
		out[i] = p
		p *= task.Time(1 + r.Intn(3))
	}
	return out
}

func chainyPeriods(r *rand.Rand, n int) []task.Time {
	// A few harmonic chains with coprime bases.
	bases := []task.Time{16, 81, 125}
	out := make([]task.Time, n)
	for i := range out {
		b := bases[r.Intn(len(bases))]
		out[i] = b << uint(r.Intn(4))
	}
	return out
}

func TestLiuLaylandSound(t *testing.T) {
	checkBoundSoundness(t, LiuLayland{}, genericPeriods, 300, 1001)
}

func TestHarmonicChainMinSoundOnHarmonic(t *testing.T) {
	checkBoundSoundness(t, HarmonicChain{Minimal: true}, harmonicPeriods, 300, 1002)
}

func TestHarmonicChainMinSoundOnChains(t *testing.T) {
	checkBoundSoundness(t, HarmonicChain{Minimal: true}, chainyPeriods, 300, 1003)
}

func TestHarmonicChainGreedySound(t *testing.T) {
	checkBoundSoundness(t, HarmonicChain{}, chainyPeriods, 300, 1004)
}

func TestTBoundSound(t *testing.T) {
	checkBoundSoundness(t, TBound{}, genericPeriods, 300, 1005)
	checkBoundSoundness(t, TBound{}, harmonicPeriods, 200, 1006)
}

func TestRBoundSound(t *testing.T) {
	checkBoundSoundness(t, RBound{}, genericPeriods, 300, 1007)
	checkBoundSoundness(t, RBound{}, harmonicPeriods, 200, 1008)
}

func TestMaxCombinatorSound(t *testing.T) {
	best := Max{Bounds: []PUB{LiuLayland{}, HarmonicChain{Minimal: true}, TBound{}, RBound{}}}
	checkBoundSoundness(t, best, genericPeriods, 200, 1009)
	checkBoundSoundness(t, best, harmonicPeriods, 200, 1010)
	checkBoundSoundness(t, best, chainyPeriods, 200, 1011)
}

func TestBoundsAreNotVacuouslyTight(t *testing.T) {
	// Sanity in the other direction: slightly ABOVE the harmonic bound
	// there must exist unschedulable sets — otherwise the test harness is
	// broken and accepts everything.
	ts := task.Set{
		{Name: "a", C: 3, T: 4},
		{Name: "b", C: 2, T: 8},
	}
	if u := ts.TotalUtilization(); u != 1.0 {
		t.Fatalf("setup: U=%g", u)
	}
	over := task.Set{
		{Name: "a", C: 3, T: 4},
		{Name: "b", C: 3, T: 8},
	}
	if rmSchedulable(over) {
		t.Error("U=1.125 set passed RTA")
	}
	if !rmSchedulable(ts) {
		t.Error("harmonic U=1.0 set failed RTA")
	}
}
