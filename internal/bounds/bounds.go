// Package bounds implements the parametric utilization bounds (PUBs) of the
// paper's §III for rate-monotonic scheduling, together with the harmonic
// chain machinery they need:
//
//   - the Liu & Layland bound Θ(N) = N(2^{1/N}−1),
//   - the harmonic chain bound K(2^{1/K}−1) of Kuo & Mok [21], with both
//     the classic greedy chain grouping and an optimal minimum chain cover
//     (computed by maximum bipartite matching on the divisibility poset;
//     K = 1 recovers the 100% bound for harmonic sets [26]),
//   - the T-bound and R-bound of Lauzac, Melhem & Mossé [23] based on
//     scaled periods.
//
// Every bound here is *deflatable* (a D-PUB, Lemma 1): its value depends
// only on task periods and count, never on execution times, so decreasing
// execution times cannot invalidate it. Deflatable returns that statically.
//
// The package also exposes the derived thresholds the algorithms use:
// LightThreshold = Θ/(1+Θ) (Definition 1) and RMTSCap = 2Θ/(1+Θ) (§V).
package bounds

import (
	"math"

	"repro/internal/task"
)

// PUB is a parametric utilization bound Λ(·): applying it to a task set's
// parameters yields a per-processor utilization threshold under which RMS
// meets all deadlines on a uniprocessor (§III).
type PUB interface {
	// Name identifies the bound in reports.
	Name() string
	// Value computes Λ(τ) from the task set's parameters. The set need not
	// satisfy U(τ) ≤ Λ(τ); the value is simply a function of parameters
	// (see the paper's footnote 2).
	Value(ts task.Set) float64
	// Deflatable reports whether the bound satisfies Lemma 1. All bounds in
	// this package do.
	Deflatable() bool
}

// llTable caches LL(n) for small n: admission-time callers (the partition
// prefilter, threshold admissions) evaluate the bound once per probe, and a
// table lookup replaces the math.Pow on that hot path. Entries hold exactly
// the value the closed form computes, so cached and computed results are
// bit-identical.
var llTable = func() [257]float64 {
	var t [257]float64
	t[0] = 1
	for n := 1; n < len(t); n++ {
		t[n] = float64(n) * (math.Pow(2, 1/float64(n)) - 1)
	}
	return t
}()

// LL returns the Liu & Layland bound Θ(n) = n(2^{1/n}−1) for n tasks.
// LL(0) is defined as 1 (an empty set is trivially schedulable at full
// utilization); as n → ∞ the bound decreases towards ln 2 ≈ 0.6931.
func LL(n int) float64 {
	if n <= 0 {
		return 1
	}
	if n < len(llTable) {
		return llTable[n]
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// LLInf is the limit of the Liu & Layland bound, ln 2 ≈ 69.31%.
const LLInf = math.Ln2

// LightThresholdFor returns Θ/(1+Θ) for Θ = LL(n): the maximum individual
// utilization of a "light" task (Definition 1). It tends to
// ln2/(1+ln2) ≈ 40.94% as n grows.
func LightThresholdFor(n int) float64 {
	theta := LL(n)
	return theta / (1 + theta)
}

// RMTSCapFor returns 2Θ/(1+Θ) for Θ = LL(n): the largest D-PUB value that
// RM-TS can achieve for arbitrary task sets (§V). It tends to
// 2ln2/(1+ln2) ≈ 81.87% as n grows.
func RMTSCapFor(n int) float64 {
	theta := LL(n)
	return 2 * theta / (1 + theta)
}

// LiuLayland is the classic L&L bound as a PUB: Λ(τ) = Θ(|τ|).
type LiuLayland struct{}

// Name implements PUB.
func (LiuLayland) Name() string { return "L&L" }

// Value implements PUB.
func (LiuLayland) Value(ts task.Set) float64 { return LL(len(ts)) }

// Deflatable implements PUB.
func (LiuLayland) Deflatable() bool { return true }

// HarmonicChain is the Kuo & Mok bound Λ(τ) = K(2^{1/K}−1), where K is the
// number of harmonic chains covering the task set's periods. With
// Minimal=true, K is the optimal minimum chain cover (highest bound);
// otherwise the classic greedy grouping is used.
type HarmonicChain struct {
	// Minimal selects the optimal minimum chain cover instead of the greedy
	// grouping.
	Minimal bool
}

// Name implements PUB.
func (h HarmonicChain) Name() string {
	if h.Minimal {
		return "HC-min"
	}
	return "HC"
}

// Value implements PUB.
func (h HarmonicChain) Value(ts task.Set) float64 {
	periods := Periods(ts)
	var k int
	if h.Minimal {
		k = HarmonicChainsMin(periods)
	} else {
		k = HarmonicChainsGreedy(periods)
	}
	return LL(k) // K(2^{1/K}−1) is the L&L expression evaluated at K
}

// Deflatable implements PUB.
func (HarmonicChain) Deflatable() bool { return true }

// Periods extracts the period vector of a task set.
func Periods(ts task.Set) []task.Time {
	ps := make([]task.Time, len(ts))
	for i, t := range ts {
		ps[i] = t.T
	}
	return ps
}

// TBound is the period-aware bound of [23]:
//
//	Λ(τ) = Σ_{i=1}^{N−1} T'_{i+1}/T'_i + 2·T'_1/T'_N − N
//
// over the scaled periods T' (ScaledPeriods), sorted ascending.
type TBound struct{}

// Name implements PUB.
func (TBound) Name() string { return "T-bound" }

// Value implements PUB.
func (TBound) Value(ts task.Set) float64 {
	sp := ScaledPeriods(Periods(ts))
	n := len(sp)
	if n == 0 {
		return 1
	}
	if n == 1 {
		return 1
	}
	sum := 0.0
	for i := 0; i+1 < n; i++ {
		sum += sp[i+1] / sp[i]
	}
	sum += 2*sp[0]/sp[n-1] - float64(n)
	return sum
}

// Deflatable implements PUB.
func (TBound) Deflatable() bool { return true }

// RBound is the ratio-based relaxation of the T-bound [23]:
//
//	Λ(τ) = (N−1)(r^{1/(N−1)} − 1) + 2/r − 1
//
// where r ∈ [1, 2) is the ratio between the maximum and minimum scaled
// period. r = 1 recovers the 100% harmonic bound; r → 2 recovers the L&L
// bound of N−1 tasks.
type RBound struct{}

// Name implements PUB.
func (RBound) Name() string { return "R-bound" }

// Value implements PUB.
func (RBound) Value(ts task.Set) float64 {
	sp := ScaledPeriods(Periods(ts))
	n := len(sp)
	if n <= 1 {
		return 1
	}
	r := sp[n-1] / sp[0]
	return float64(n-1)*(math.Pow(r, 1/float64(n-1))-1) + 2/r - 1
}

// Deflatable implements PUB.
func (RBound) Deflatable() bool { return true }

// ScaledPeriods maps each period T_i to T_i·2^{k_i} with the unique
// k_i ≥ 0 such that the result lies in (T_max/2, T_max], where T_max is the
// largest period. The returned slice is sorted ascending. This is the
// ScaleTaskSet transformation of [23]; it preserves RM schedulability
// analysis structure while exposing how "close to harmonic" the set is.
func ScaledPeriods(periods []task.Time) []float64 {
	if len(periods) == 0 {
		return nil
	}
	tmax := periods[0]
	for _, p := range periods {
		if p > tmax {
			tmax = p
		}
	}
	out := make([]float64, len(periods))
	for i, p := range periods {
		v := float64(p)
		for v*2 <= float64(tmax) {
			v *= 2
		}
		out[i] = v
	}
	sortFloats(out)
	return out
}

func sortFloats(v []float64) {
	// Insertion sort: period vectors are small and this avoids pulling in
	// sort for a hot path used inside generators' rejection loops.
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// EffectiveRMTS returns the utilization bound RM-TS guarantees for the set
// when instantiated with PUB p: min(Λ(τ), 2Θ/(1+Θ)) (§V).
func EffectiveRMTS(p PUB, ts task.Set) float64 {
	v := p.Value(ts)
	if limit := RMTSCapFor(len(ts)); v > limit {
		return limit
	}
	return v
}

// Min is a PUB combinator taking the pointwise minimum of its children —
// useful to instantiate RM-TS with "the best bound known for this set,
// capped". The minimum of deflatable bounds is deflatable.
type Min struct {
	Bounds []PUB
}

// Name implements PUB.
func (m Min) Name() string {
	name := "min("
	for i, b := range m.Bounds {
		if i > 0 {
			name += ","
		}
		name += b.Name()
	}
	return name + ")"
}

// Value implements PUB.
func (m Min) Value(ts task.Set) float64 {
	if len(m.Bounds) == 0 {
		return 1
	}
	v := m.Bounds[0].Value(ts)
	for _, b := range m.Bounds[1:] {
		if w := b.Value(ts); w < v {
			v = w
		}
	}
	return v
}

// Deflatable implements PUB.
func (m Min) Deflatable() bool {
	for _, b := range m.Bounds {
		if !b.Deflatable() {
			return false
		}
	}
	return true
}

// Max is the pointwise maximum PUB combinator: valid because each child is
// individually a sufficient bound, so the largest still guarantees
// schedulability. The maximum of deflatable bounds is deflatable.
type Max struct {
	Bounds []PUB
}

// Name implements PUB.
func (m Max) Name() string {
	name := "max("
	for i, b := range m.Bounds {
		if i > 0 {
			name += ","
		}
		name += b.Name()
	}
	return name + ")"
}

// Value implements PUB.
func (m Max) Value(ts task.Set) float64 {
	v := 0.0
	for _, b := range m.Bounds {
		if w := b.Value(ts); w > v {
			v = w
		}
	}
	return v
}

// Deflatable implements PUB.
func (m Max) Deflatable() bool {
	for _, b := range m.Bounds {
		if !b.Deflatable() {
			return false
		}
	}
	return true
}
