package bounds

import (
	"math/rand"
	"testing"

	"repro/internal/task"
)

func TestHanTyanHarmonicFullUtilization(t *testing.T) {
	ts := task.Set{
		{C: 2, T: 4},
		{C: 2, T: 8},
		{C: 4, T: 16},
	}
	if !HanTyanSchedulable(ts) {
		t.Error("harmonic set at 100% rejected")
	}
}

func TestHanTyanBeatsLLBound(t *testing.T) {
	// Periods 4 and 7: LL(2)=82.8%. Folding 7 → 4 gives U' = C1/4 + C2/4;
	// with C=(1,2): U = 0.25+0.286 = 0.536, folded 0.25+0.5 = 0.75 ≤ 1 ✓.
	// Nearly-but-not-harmonic sets above LL should often pass.
	ts := task.Set{
		{C: 2, T: 4}, // 0.5
		{C: 3, T: 9}, // 0.333 → folded to 8: 0.375; or base from 9: 9/2=4.5...
	}
	// U = 0.833 > LL(2) = 0.828, yet Han-Tyan folding base 4: h2 = 8 →
	// 0.5 + 0.375 = 0.875 ≤ 1.
	if sum := ts.TotalUtilization(); sum <= LL(2) {
		t.Fatalf("setup: U=%.4f not above LL", sum)
	}
	if !HanTyanSchedulable(ts) {
		t.Error("Han-Tyan rejected a set its folding accepts")
	}
}

func TestHanTyanRejectsOverload(t *testing.T) {
	if HanTyanSchedulable(task.Set{{C: 3, T: 4}, {C: 3, T: 8}}) {
		t.Error("U=1.125 accepted")
	}
	if HanTyanSchedulable(task.Set{{C: 0, T: 4}}) {
		t.Error("invalid task accepted")
	}
}

func TestHanTyanSound(t *testing.T) {
	// Every set Han-Tyan accepts must pass exact RTA (it is a sufficient
	// test).
	r := rand.New(rand.NewSource(1101))
	accepted := 0
	for trial := 0; trial < 500; trial++ {
		n := 2 + r.Intn(6)
		ts := make(task.Set, n)
		for i := range ts {
			T := task.Time(4 + r.Intn(500))
			ts[i] = task.Task{Name: "h", C: 1 + task.Time(r.Int63n(int64(T))), T: T}
		}
		// Scale to a borderline utilization.
		u := ts.TotalUtilization()
		f := (0.6 + 0.45*r.Float64()) / u
		for i := range ts {
			c := task.Time(float64(ts[i].C) * f)
			if c < 1 {
				c = 1
			}
			if c > ts[i].T {
				c = ts[i].T
			}
			ts[i].C = c
		}
		if !HanTyanSchedulable(ts) {
			continue
		}
		accepted++
		if !rmSchedulable(ts) {
			t.Fatalf("trial %d: Han-Tyan UNSOUND on %v (U=%.4f)", trial, ts, ts.TotalUtilization())
		}
	}
	if accepted < 50 {
		t.Errorf("only %d sets accepted; test too weak", accepted)
	}
}

func TestHanTyanDominatesLLOnAverage(t *testing.T) {
	// Counting acceptance at U just above the LL bound: Han-Tyan must
	// accept strictly more sets than the LL utilization test.
	r := rand.New(rand.NewSource(1102))
	ht, ll := 0, 0
	for trial := 0; trial < 300; trial++ {
		n := 3 + r.Intn(5)
		ts := make(task.Set, n)
		for i := range ts {
			T := task.Time(8 + r.Intn(300))
			ts[i] = task.Task{Name: "x", C: 1, T: T}
		}
		target := LL(n) + 0.05 + 0.1*r.Float64()
		u := ts.TotalUtilization()
		f := target / u
		for i := range ts {
			c := task.Time(float64(ts[i].C) * f)
			if c < 1 {
				c = 1
			}
			if c > ts[i].T {
				c = ts[i].T
			}
			ts[i].C = c
		}
		if ts.TotalUtilization() <= LL(n) {
			ll++
		}
		if HanTyanSchedulable(ts) {
			ht++
		}
	}
	if ht <= ll {
		t.Errorf("Han-Tyan accepted %d vs LL %d above the LL bound", ht, ll)
	}
}
