package bounds

import (
	"sort"

	"repro/internal/task"
)

// HarmonicChainsGreedy computes the number of harmonic chains covering the
// period multiset using the classic greedy grouping: scan periods in
// ascending order and append each to the first existing chain whose largest
// element divides it, opening a new chain otherwise. This mirrors the chain
// construction of Kuo & Mok [21]; it is a valid (but not always minimal)
// chain cover. Returns 0 for an empty input.
func HarmonicChainsGreedy(periods []task.Time) int {
	ps := append([]task.Time(nil), periods...)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	var tails []task.Time // largest element per chain
	for _, p := range ps {
		placed := false
		for i, tail := range tails {
			if p%tail == 0 {
				tails[i] = p
				placed = true
				break
			}
		}
		if !placed {
			tails = append(tails, p)
		}
	}
	return len(tails)
}

// HarmonicChainsMin computes the minimum number of harmonic chains needed
// to cover the period multiset. Two periods can share a chain iff one
// divides the other; since divisibility is transitive, this is a minimum
// chain partition of a poset, which equals n minus the size of a maximum
// matching in the bipartite "successor" graph (the classical minimum path
// cover reduction on a transitively closed DAG). Returns 0 for an empty
// input.
func HarmonicChainsMin(periods []task.Time) int {
	n := len(periods)
	if n == 0 {
		return 0
	}
	ps := append([]task.Time(nil), periods...)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	// adj[i] lists j > i with ps[i] | ps[j]. Index order breaks ties between
	// equal periods, keeping the relation antisymmetric.
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps[j]%ps[i] == 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	return n - maxBipartiteMatching(n, adj)
}

// HarmonicChainCover returns an explicit minimum chain cover of the period
// multiset: each chain is a list of indices into the *sorted* period slice
// (ascending), with every element dividing the next. The number of chains
// equals HarmonicChainsMin. The sorted periods are returned alongside so
// callers can map indices back to values.
func HarmonicChainCover(periods []task.Time) (chains [][]int, sorted []task.Time) {
	n := len(periods)
	if n == 0 {
		return nil, nil
	}
	ps := append([]task.Time(nil), periods...)
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if ps[j]%ps[i] == 0 {
				adj[i] = append(adj[i], j)
			}
		}
	}
	matchL := make([]int, n) // successor of left node i, or -1
	matchR := make([]int, n) // predecessor of right node j, or -1
	for i := range matchL {
		matchL[i] = -1
		matchR[i] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchR[j] == -1 || try(matchR[j], seen) {
				matchL[i] = j
				matchR[j] = i
				return true
			}
		}
		return false
	}
	for i := 0; i < n; i++ {
		seen := make([]bool, n)
		try(i, seen)
	}
	// Chains start at nodes with no predecessor and follow successor links.
	for j := 0; j < n; j++ {
		if matchR[j] != -1 {
			continue
		}
		chain := []int{j}
		for cur := j; matchL[cur] != -1; cur = matchL[cur] {
			chain = append(chain, matchL[cur])
		}
		chains = append(chains, chain)
	}
	return chains, ps
}

// maxBipartiteMatching runs Kuhn's augmenting-path algorithm on the
// successor graph (left and right node sets are both 0..n-1) and returns
// the matching size. O(V·E), which is ample for task-set sizes.
func maxBipartiteMatching(n int, adj [][]int) int {
	matchR := make([]int, n)
	for i := range matchR {
		matchR[i] = -1
	}
	var try func(i int, seen []bool) bool
	try = func(i int, seen []bool) bool {
		for _, j := range adj[i] {
			if seen[j] {
				continue
			}
			seen[j] = true
			if matchR[j] == -1 || try(matchR[j], seen) {
				matchR[j] = i
				return true
			}
		}
		return false
	}
	size := 0
	for i := 0; i < n; i++ {
		seen := make([]bool, n)
		if try(i, seen) {
			size++
		}
	}
	return size
}
