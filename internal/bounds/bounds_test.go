package bounds

import (
	"math"
	"testing"

	"repro/internal/task"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.6f, want %.6f", what, got, want)
	}
}

func TestLLValues(t *testing.T) {
	approx(t, LL(1), 1.0, 1e-12, "Θ(1)")
	approx(t, LL(2), 0.828427, 1e-6, "Θ(2)")
	approx(t, LL(3), 0.779763, 1e-6, "Θ(3)")
	approx(t, LL(10), 0.717735, 1e-6, "Θ(10)")
	approx(t, LL(1000000), math.Ln2, 1e-6, "Θ(∞)")
	approx(t, LL(0), 1.0, 1e-12, "Θ(0)")
	approx(t, LL(-3), 1.0, 1e-12, "Θ(negative)")
}

func TestLLMonotoneDecreasing(t *testing.T) {
	prev := LL(1)
	for n := 2; n <= 200; n++ {
		cur := LL(n)
		if cur >= prev {
			t.Fatalf("Θ(%d)=%.9f not below Θ(%d)=%.9f", n, cur, n-1, prev)
		}
		if cur < math.Ln2 {
			t.Fatalf("Θ(%d)=%.9f below ln2", n, cur)
		}
		prev = cur
	}
}

func TestPaperThresholdConstants(t *testing.T) {
	// §I footnote: as N → ∞, Θ ≈ 69.3%, Θ/(1+Θ) ≈ 40.9%, 2Θ/(1+Θ) ≈ 81.8%.
	n := 10000000
	approx(t, LL(n), 0.6931, 1e-3, "Θ(∞)")
	approx(t, LightThresholdFor(n), 0.4094, 1e-3, "Θ/(1+Θ)")
	approx(t, RMTSCapFor(n), 0.8188, 1e-3, "2Θ/(1+Θ)")
}

func TestHarmonicChainBoundExamples(t *testing.T) {
	// §V: K=3 → 3(2^{1/3}−1) ≈ 77.9%; K=2 → 2(2^{1/2}−1) ≈ 82.8%.
	approx(t, LL(3), 0.7798, 1e-3, "K=3 bound")
	approx(t, LL(2), 0.8284, 1e-3, "K=2 bound")
	approx(t, LL(1), 1.0, 1e-12, "K=1 (harmonic 100%) bound")
}

func set(periods ...task.Time) task.Set {
	ts := make(task.Set, len(periods))
	for i, p := range periods {
		ts[i] = task.Task{C: 1, T: p}
	}
	return ts
}

func TestHarmonicChainPUB(t *testing.T) {
	harmonic := set(4, 8, 16, 32)
	hc := HarmonicChain{Minimal: true}
	approx(t, hc.Value(harmonic), 1.0, 1e-12, "harmonic set bound")

	two := set(4, 8, 9, 27) // chains {4,8} and {9,27}
	approx(t, hc.Value(two), LL(2), 1e-12, "two-chain bound")

	if !hc.Deflatable() {
		t.Error("HC bound must be deflatable")
	}
}

func TestHarmonicChainsGreedyVsMin(t *testing.T) {
	cases := []struct {
		periods []task.Time
		min     int
	}{
		{[]task.Time{2, 4, 8}, 1},
		{[]task.Time{2, 3}, 2},
		{[]task.Time{2, 4, 3, 9}, 2},
		{[]task.Time{2, 3, 5, 7}, 4},
		{[]task.Time{6, 2, 3}, 2},        // 2|6 or 3|6, one chain absorbs 6
		{[]task.Time{10, 10, 10}, 1},     // equal periods chain together
		{[]task.Time{2, 4, 6, 12, 3}, 2}, // {2,4,12|2,6,12...} optimal 2
		{[]task.Time{1, 2, 3, 4, 6, 12}, 2},
		{[]task.Time{}, 0},
		{[]task.Time{7}, 1},
	}
	for _, c := range cases {
		got := HarmonicChainsMin(c.periods)
		if got != c.min {
			t.Errorf("HarmonicChainsMin(%v) = %d, want %d", c.periods, got, c.min)
		}
		greedy := HarmonicChainsGreedy(c.periods)
		if greedy < got {
			t.Errorf("greedy %d beat optimal %d on %v", greedy, got, c.periods)
		}
	}
}

func TestHarmonicChainsMinMatchesBruteForce(t *testing.T) {
	// Exhaustive check on small random multisets: minimum chain partition
	// by brute force over set partitions.
	periodsList := [][]task.Time{
		{2, 3, 4, 6},
		{2, 5, 10, 3},
		{4, 4, 8, 6},
		{3, 9, 27, 2, 4},
		{5, 7, 35, 2},
		{2, 6, 10, 30},
		{8, 12, 24, 36},
	}
	for _, ps := range periodsList {
		want := bruteForceChains(ps)
		got := HarmonicChainsMin(ps)
		if got != want {
			t.Errorf("HarmonicChainsMin(%v) = %d, brute force = %d", ps, got, want)
		}
	}
}

// bruteForceChains enumerates all partitions of the index set (Bell-number
// small) and returns the fewest blocks that are all chains under
// divisibility.
func bruteForceChains(ps []task.Time) int {
	n := len(ps)
	best := n
	assign := make([]int, n)
	var rec func(i, blocks int)
	isChainOK := func(blocks int) bool {
		for b := 0; b < blocks; b++ {
			var members []task.Time
			for i, a := range assign {
				if a == b {
					members = append(members, ps[i])
				}
			}
			// sort and check pairwise divisibility along the chain
			for i := 1; i < len(members); i++ {
				x := members[i]
				j := i - 1
				for j >= 0 && members[j] > x {
					members[j+1] = members[j]
					j--
				}
				members[j+1] = x
			}
			for i := 1; i < len(members); i++ {
				if members[i]%members[i-1] != 0 {
					return false
				}
			}
		}
		return true
	}
	rec = func(i, blocks int) {
		if blocks >= best {
			return
		}
		if i == n {
			if isChainOK(blocks) && blocks < best {
				best = blocks
			}
			return
		}
		for b := 0; b <= blocks; b++ {
			assign[i] = b
			nb := blocks
			if b == blocks {
				nb++
			}
			rec(i+1, nb)
		}
	}
	rec(0, 0)
	return best
}

func TestHarmonicChainCoverIsValid(t *testing.T) {
	ps := []task.Time{2, 3, 4, 6, 12, 5, 25}
	chains, sorted := HarmonicChainCover(ps)
	if len(chains) != HarmonicChainsMin(ps) {
		t.Fatalf("cover has %d chains, min is %d", len(chains), HarmonicChainsMin(ps))
	}
	seen := make([]bool, len(ps))
	for _, chain := range chains {
		for k, idx := range chain {
			if seen[idx] {
				t.Fatalf("index %d in two chains", idx)
			}
			seen[idx] = true
			if k > 0 && sorted[idx]%sorted[chain[k-1]] != 0 {
				t.Fatalf("chain %v not harmonic over %v", chain, sorted)
			}
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestScaledPeriods(t *testing.T) {
	sp := ScaledPeriods([]task.Time{3, 5, 8})
	// Tmax = 8: 3→6, 5→5, 8→8; all in (4, 8].
	want := []float64{5, 6, 8}
	for i := range want {
		approx(t, sp[i], want[i], 1e-12, "scaled period")
	}
	for _, v := range sp {
		if v <= 4 || v > 8 {
			t.Errorf("scaled period %g outside (Tmax/2, Tmax]", v)
		}
	}
	if got := ScaledPeriods(nil); got != nil {
		t.Errorf("empty input gave %v", got)
	}
}

func TestRBoundProperties(t *testing.T) {
	rb := RBound{}
	// Harmonic set: r = 1 → bound 1.
	approx(t, rb.Value(set(4, 8, 16)), 1.0, 1e-12, "R-bound harmonic")
	// r → 2 worst case approaches LL(n−1).
	nearTwo := set(500, 999) // scaled: 999, 1000... r≈1.998
	v := rb.Value(nearTwo)
	if v < LL(1)*0.82 || v > 1 {
		t.Errorf("R-bound near r=2: %g", v)
	}
	// Must never fall below the asymptotic L&L bound... (it can dip to
	// LL(n−1) ≥ ln 2) and never exceed 1 for n ≥ 1.
	for _, s := range []task.Set{set(3, 5, 8), set(100, 150, 170, 390), set(7)} {
		v := rb.Value(s)
		if v < math.Ln2-1e-9 || v > 1+1e-12 {
			t.Errorf("R-bound out of range for %v: %g", s, v)
		}
	}
}

func TestTBoundProperties(t *testing.T) {
	tb := TBound{}
	approx(t, tb.Value(set(4, 8, 16)), 1.0, 1e-12, "T-bound harmonic")
	approx(t, tb.Value(set(10)), 1.0, 1e-12, "T-bound single")
	// T-bound dominates the R-bound (it uses full period information).
	rb := RBound{}
	for _, s := range []task.Set{set(3, 5, 8), set(100, 150, 170, 390), set(12, 18, 30)} {
		if tb.Value(s) < rb.Value(s)-1e-9 {
			t.Errorf("T-bound %g below R-bound %g for %v", tb.Value(s), rb.Value(s), s)
		}
	}
}

func TestMinMaxCombinators(t *testing.T) {
	s := set(4, 8, 9) // HC-min: {4,8},{9} → K=2
	m := Min{Bounds: []PUB{LiuLayland{}, HarmonicChain{Minimal: true}}}
	x := Max{Bounds: []PUB{LiuLayland{}, HarmonicChain{Minimal: true}}}
	lo, hi := m.Value(s), x.Value(s)
	if lo > hi {
		t.Errorf("min %g > max %g", lo, hi)
	}
	approx(t, lo, LL(3), 1e-12, "min value")
	approx(t, hi, LL(2), 1e-12, "max value")
	if !m.Deflatable() || !x.Deflatable() {
		t.Error("combinators of deflatable bounds must be deflatable")
	}
	if m.Name() == "" || x.Name() == "" {
		t.Error("combinator names empty")
	}
}

func TestEffectiveRMTS(t *testing.T) {
	s := set(4, 8, 16) // harmonic, HC bound = 1
	hc := HarmonicChain{Minimal: true}
	v := EffectiveRMTS(hc, s)
	approx(t, v, RMTSCapFor(3), 1e-12, "capped at 2Θ/(1+Θ)")
	// A low bound passes through uncapped.
	v2 := EffectiveRMTS(LiuLayland{}, s)
	approx(t, v2, LL(3), 1e-12, "uncapped L&L")
}

func TestDeflatabilityMetadata(t *testing.T) {
	for _, b := range []PUB{LiuLayland{}, HarmonicChain{}, HarmonicChain{Minimal: true}, TBound{}, RBound{}} {
		if !b.Deflatable() {
			t.Errorf("%s not deflatable", b.Name())
		}
		if b.Name() == "" {
			t.Error("empty bound name")
		}
	}
}

func TestBoundsAreParametricNotExecutionDependent(t *testing.T) {
	// Lemma 1 machinery: deflating C must not change any bound's value
	// (all implemented bounds depend only on periods and count).
	base := task.Set{{C: 5, T: 10}, {C: 9, T: 18}, {C: 2, T: 27}}
	deflated := task.Set{{C: 1, T: 10}, {C: 3, T: 18}, {C: 1, T: 27}}
	for _, b := range []PUB{LiuLayland{}, HarmonicChain{}, HarmonicChain{Minimal: true}, TBound{}, RBound{}} {
		if v1, v2 := b.Value(base), b.Value(deflated); v1 != v2 {
			t.Errorf("%s changed under deflation: %g vs %g", b.Name(), v1, v2)
		}
	}
}
