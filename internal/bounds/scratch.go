// Scratch-threaded PUB evaluation. RM-TS evaluates its parametric bound
// Λ(τ) once per partitioning call, which on the acceptance-sweep hot path
// means once per generated sample: the slice-based implementations in
// bounds.go and chains.go (period copies, sort.Slice's reflection swapper,
// one visited-set per matching round) dominate the partitioner's allocation
// profile once the analysis itself runs arena-backed. ScratchValuer is the
// allocation-free counterpart: all working storage comes from a
// caller-owned Scratch that grows to the working-set size and is then
// reused forever.
//
// Equivalence: every ValueScratch returns exactly the float64 its Value
// counterpart returns (same sort permutations — the insertion sorts are
// stable, and the sort keys here are total orders anyway — and the same
// matching, since candidate successors are scanned in the same ascending
// order). The bounds property tests pin this.
package bounds

import (
	"math"

	"repro/internal/task"
)

// Scratch holds the reusable working storage for scratch-threaded PUB
// evaluation. The zero value is ready to use; a Scratch is not safe for
// concurrent use.
type Scratch struct {
	periods []task.Time // sorted period vector
	scaled  []float64   // ScaledPeriods output
	matchR  []int       // Kuhn matching: predecessor per right node
	seen    []bool      // visited set, cleared per augmenting round
	tails   []task.Time // greedy grouping: largest element per chain
	spKey   []task.Time // scaledPeriods memo: period vector the cache is for
}

// ScratchValuer is implemented by PUBs that can evaluate with caller-owned
// scratch instead of fresh allocations. ValueScratch(ts, sc) returns
// exactly Value(ts).
type ScratchValuer interface {
	ValueScratch(ts task.Set, sc *Scratch) float64
}

// ValueWith evaluates p on ts, threading sc through when p (or, for the
// combinators, its children) supports it and falling back to p.Value
// otherwise. sc may be nil.
func ValueWith(p PUB, ts task.Set, sc *Scratch) float64 {
	if sc != nil {
		if sv, ok := p.(ScratchValuer); ok {
			return sv.ValueScratch(ts, sc)
		}
	}
	return p.Value(ts)
}

// EffectiveRMTSScratch is EffectiveRMTS with scratch-threaded bound
// evaluation; sc may be nil.
func EffectiveRMTSScratch(p PUB, ts task.Set, sc *Scratch) float64 {
	v := ValueWith(p, ts, sc)
	if limit := RMTSCapFor(len(ts)); v > limit {
		return limit
	}
	return v
}

// ValueScratch implements ScratchValuer (LL depends only on the count).
func (l LiuLayland) ValueScratch(ts task.Set, _ *Scratch) float64 { return l.Value(ts) }

// ValueScratch implements ScratchValuer.
func (h HarmonicChain) ValueScratch(ts task.Set, sc *Scratch) float64 {
	ps := sc.sortedPeriods(ts)
	var k int
	if h.Minimal {
		k = sc.chainsMin(ps)
	} else {
		k = sc.chainsGreedy(ps)
	}
	return LL(k)
}

// ValueScratch implements ScratchValuer.
func (b TBound) ValueScratch(ts task.Set, sc *Scratch) float64 {
	sp := sc.scaledPeriods(ts)
	return tBoundOf(sp)
}

// ValueScratch implements ScratchValuer.
func (b RBound) ValueScratch(ts task.Set, sc *Scratch) float64 {
	sp := sc.scaledPeriods(ts)
	return rBoundOf(sp)
}

// ValueScratch implements ScratchValuer: the minimum over children, each
// evaluated with the shared scratch when it supports one.
func (m Min) ValueScratch(ts task.Set, sc *Scratch) float64 {
	if len(m.Bounds) == 0 {
		return 1
	}
	v := ValueWith(m.Bounds[0], ts, sc)
	for _, b := range m.Bounds[1:] {
		if w := ValueWith(b, ts, sc); w < v {
			v = w
		}
	}
	return v
}

// ValueScratch implements ScratchValuer: the maximum over children, each
// evaluated with the shared scratch when it supports one.
func (m Max) ValueScratch(ts task.Set, sc *Scratch) float64 {
	v := 0.0
	for _, b := range m.Bounds {
		if w := ValueWith(b, ts, sc); w > v {
			v = w
		}
	}
	return v
}

// sortedPeriods fills the scratch period buffer with the set's periods in
// ascending order (insertion sort: identical permutation of values to the
// sort.Slice in chains.go, whose comparison key is a total preorder on
// values, so equal elements are interchangeable).
func (sc *Scratch) sortedPeriods(ts task.Set) []task.Time {
	ps := sc.periods[:0]
	for _, t := range ts {
		ps = append(ps, t.T)
	}
	sc.periods = ps
	for i := 1; i < len(ps); i++ {
		x := ps[i]
		j := i - 1
		for j >= 0 && ps[j] > x {
			ps[j+1] = ps[j]
			j--
		}
		ps[j+1] = x
	}
	return ps
}

// scaledPeriods computes ScaledPeriods into the scratch float buffer,
// memoized on the full period vector: TBound and RBound both consume it, so
// under a Max/Min combinator the second child reuses the first child's
// scale+sort. The memo key is compared element for element — an O(n) check
// against the O(n log n + n·log(Tmax/Tmin)) recompute — so a caller mutating
// the set between evaluations (arena reuse across samples) can never see a
// stale vector.
func (sc *Scratch) scaledPeriods(ts task.Set) []float64 {
	if len(ts) == 0 {
		return nil
	}
	if len(sc.spKey) == len(ts) && len(sc.scaled) == len(ts) {
		hit := true
		for i := range ts {
			if sc.spKey[i] != ts[i].T {
				hit = false
				break
			}
		}
		if hit {
			return sc.scaled
		}
	}
	key := sc.spKey[:0]
	for _, t := range ts {
		key = append(key, t.T)
	}
	sc.spKey = key
	tmax := ts[0].T
	for _, t := range ts {
		if t.T > tmax {
			tmax = t.T
		}
	}
	out := sc.scaled[:0]
	for _, t := range ts {
		v := float64(t.T)
		for v*2 <= float64(tmax) {
			v *= 2
		}
		out = append(out, v)
	}
	sc.scaled = out
	sortFloats(out)
	return out
}

// chainsGreedy is HarmonicChainsGreedy on an already-sorted period vector,
// with the chain-tail list drawn from scratch.
func (sc *Scratch) chainsGreedy(ps []task.Time) int {
	tails := sc.tails[:0]
	for _, p := range ps {
		placed := false
		for i, tail := range tails {
			if p%tail == 0 {
				tails[i] = p
				placed = true
				break
			}
		}
		if !placed {
			tails = append(tails, p)
		}
	}
	sc.tails = tails
	return len(tails)
}

// chainsMin is HarmonicChainsMin on an already-sorted period vector: n
// minus a maximum matching of the successor graph, computed by Kuhn's
// algorithm with scratch-backed matching state and no materialised
// adjacency — adj[i] in chains.go lists exactly the j > i with ps[i] |
// ps[j] in ascending order, which tryAugment re-derives on the fly.
func (sc *Scratch) chainsMin(ps []task.Time) int {
	n := len(ps)
	if n == 0 {
		return 0
	}
	matchR := growInts(&sc.matchR, n)
	for i := range matchR {
		matchR[i] = -1
	}
	seen := growBools(&sc.seen, n)
	size := 0
	for i := 0; i < n; i++ {
		for j := range seen {
			seen[j] = false
		}
		if tryAugment(ps, matchR, seen, i) {
			size++
		}
	}
	return n - size
}

// tryAugment is one augmenting-path round of Kuhn's algorithm over the
// implicit successor graph of the sorted period vector.
func tryAugment(ps []task.Time, matchR []int, seen []bool, i int) bool {
	for j := i + 1; j < len(ps); j++ {
		if ps[j]%ps[i] != 0 || seen[j] {
			continue
		}
		seen[j] = true
		if matchR[j] == -1 || tryAugment(ps, matchR, seen, matchR[j]) {
			matchR[j] = i
			return true
		}
	}
	return false
}

// tBoundOf evaluates the T-bound expression on sorted scaled periods.
func tBoundOf(sp []float64) float64 {
	n := len(sp)
	if n <= 1 {
		return 1
	}
	sum := 0.0
	for i := 0; i+1 < n; i++ {
		sum += sp[i+1] / sp[i]
	}
	sum += 2*sp[0]/sp[n-1] - float64(n)
	return sum
}

// rBoundOf evaluates the R-bound expression on sorted scaled periods.
func rBoundOf(sp []float64) float64 {
	n := len(sp)
	if n <= 1 {
		return 1
	}
	r := sp[n-1] / sp[0]
	return float64(n-1)*(math.Pow(r, 1/float64(n-1))-1) + 2/r - 1
}

func growInts(buf *[]int, n int) []int {
	if cap(*buf) < n {
		*buf = make([]int, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

func growBools(buf *[]bool, n int) []bool {
	if cap(*buf) < n {
		*buf = make([]bool, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
