package bounds

import (
	"sort"

	"repro/internal/task"
)

// HanTyanSchedulable implements the classic polynomial-time test of Han &
// Tyan ("A better polynomial-time schedulability test for real-time
// fixed-priority scheduling algorithms"): fold the periods onto a harmonic
// grid derived from each candidate base period and accept if any folding
// keeps total utilization at most 1.
//
// For every task i, consider the base b obtained by halving T_i until it
// is at most the smallest period; fold every period onto the grid
// h_j = b·2^⌊log2(T_j/b)⌋ ≤ T_j (a harmonic set), and compute
// U' = Σ C_j/h_j. Since {h_j} is harmonic and h_j ≤ T_j, U' ≤ 1 proves RM
// schedulability of the original set. The test is tighter than the
// hyperbolic bound on most period patterns while remaining O(N² + N log N).
//
// It is exposed as a PUB-like admission (partition.AdmitHanTyan) and
// sits strictly between the closed-form bounds and exact RTA in the
// admission-ablation experiment.
func HanTyanSchedulable(ts task.Set) bool {
	n := len(ts)
	if n == 0 {
		return true
	}
	periods := make([]task.Time, n)
	tmin := ts[0].T
	for i, t := range ts {
		if t.C <= 0 || t.T <= 0 || t.C > t.T {
			return false
		}
		periods[i] = t.T
		if t.T < tmin {
			tmin = t.T
		}
	}
	sort.Slice(periods, func(i, j int) bool { return periods[i] < periods[j] })
	for _, base := range periods {
		b := base
		for b > tmin {
			b /= 2
		}
		if b <= 0 {
			continue
		}
		u := 0.0
		for _, t := range ts {
			h := b
			for h*2 <= t.T {
				h *= 2
			}
			u += float64(t.C) / float64(h)
			if u > 1 {
				break
			}
		}
		if u <= 1 {
			return true
		}
	}
	return false
}
