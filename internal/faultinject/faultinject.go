// Package faultinject is the fault-injection harness of the analysis
// pipeline: a small set of named fault sites that production code queries
// on its hot paths and that tests arm with a deterministic, seeded plan.
// Like internal/obs it is built to cost nothing when idle — every hook is a
// single atomic bool load when no plan is armed — and to never allocate, so
// the zero-allocation guarantees of the analysis hot paths hold with the
// harness compiled in.
//
// Three sites cover the failure modes the batch robustness layer must
// survive (see DESIGN.md §9):
//
//   - RTAAbort: the response-time iteration reports an iteration-cap abort
//     (rta.VerdictAborted) without doing the work, exercising the
//     treat-as-unschedulable degradation path and the cross-checks built on
//     it (e.g. the MaxSplit/AdmitAt agreement panic).
//   - SamplePanic: a panic out of an experiment sample, exercising the
//     per-sample recover() isolation in experiments.parEach.
//   - CheckpointWrite: a write failure in the sweep checkpointer,
//     exercising its keep-going-without-checkpoints degradation.
//
// Five more cover the serving path's durability and overload machinery
// (DESIGN.md §14):
//
//   - JournalAppend: a write failure appending to an admission journal,
//     exercising the mutation-abort-and-undo path (the op is never
//     acknowledged and the journal stays usable via tail repair).
//   - JournalFsync: an fsync failure on the journal file, exercising the
//     durability-degraded error path under -fsync always.
//   - JournalTear: a torn append — only a prefix of the record reaches the
//     file, as in a crash mid-write — exercising startup torn-tail
//     recovery deterministically without killing the process.
//   - SnapshotRename: the atomic-rename step of a snapshot write fails,
//     exercising keep-the-WAL degradation (durability is unaffected; the
//     journal simply keeps growing until a snapshot lands).
//   - HandlerLatency: injected latency inside the HTTP admission gate,
//     making gate saturation and 429 shedding reproducible in tests.
//
// Firing decisions are pseudo-random but fully determined by (plan seed,
// site, per-site call ordinal): run the same single-worker workload under
// the same plan and the same calls fire. Under concurrent workers the
// ordinal assignment depends on goroutine interleaving, so multi-worker
// runs are stochastic (still seed-bounded in rate); tests that assert exact
// fire sites run with one worker, mirroring the obs trace caveat.
package faultinject

import (
	"errors"
	"sync/atomic"
	"time"
)

// Site names one fault-injection point.
type Site uint8

const (
	// RTAAbort forces rta response-time evaluations to report an
	// iteration-cap abort.
	RTAAbort Site = iota
	// SamplePanic panics out of an experiment sample.
	SamplePanic
	// CheckpointWrite fails checkpoint file writes.
	CheckpointWrite
	// JournalAppend fails admission-journal appends.
	JournalAppend
	// JournalFsync fails admission-journal fsyncs.
	JournalFsync
	// JournalTear tears an admission-journal append mid-record.
	JournalTear
	// SnapshotRename fails the atomic-rename step of a snapshot write.
	SnapshotRename
	// HandlerLatency delays a gated HTTP handler.
	HandlerLatency
	numSites
)

func (s Site) String() string {
	switch s {
	case RTAAbort:
		return "rta-abort"
	case SamplePanic:
		return "sample-panic"
	case CheckpointWrite:
		return "checkpoint-write"
	case JournalAppend:
		return "journal-append"
	case JournalFsync:
		return "journal-fsync"
	case JournalTear:
		return "journal-tear"
	case SnapshotRename:
		return "snapshot-rename"
	case HandlerLatency:
		return "handler-latency"
	default:
		return "site(?)"
	}
}

// Plan configures the harness: a seed and, per site, a firing denominator.
// A site with Every n > 0 fires on roughly one in n calls (chosen by a
// seeded hash of the call ordinal, so the firing pattern is aperiodic);
// Every 1 fires on every call; Every 0 never fires.
type Plan struct {
	// Seed drives the per-call firing hash. Two plans with the same seed
	// and rates fire at exactly the same call ordinals.
	Seed int64
	// RTAAbortEvery is the firing denominator of the RTAAbort site.
	RTAAbortEvery int64
	// SamplePanicEvery is the firing denominator of the SamplePanic site.
	SamplePanicEvery int64
	// CheckpointWriteEvery is the firing denominator of the CheckpointWrite
	// site.
	CheckpointWriteEvery int64
	// JournalAppendEvery is the firing denominator of the JournalAppend site.
	JournalAppendEvery int64
	// JournalFsyncEvery is the firing denominator of the JournalFsync site.
	JournalFsyncEvery int64
	// JournalTearEvery is the firing denominator of the JournalTear site.
	JournalTearEvery int64
	// SnapshotRenameEvery is the firing denominator of the SnapshotRename
	// site.
	SnapshotRenameEvery int64
	// HandlerLatencyEvery is the firing denominator of the HandlerLatency
	// site; HandlerDelay is the latency injected when it fires.
	HandlerLatencyEvery int64
	HandlerDelay        time.Duration
}

var (
	armed atomic.Bool
	plan  Plan
	calls [numSites]atomic.Int64
	fired [numSites]atomic.Int64
)

// Arm installs the plan and enables the harness. Call only from
// single-goroutine setup code (tests, CLI main) — the running analysis
// reads the plan without synchronization beyond the armed flag.
func Arm(p Plan) {
	armed.Store(false)
	plan = p
	for i := range calls {
		calls[i].Store(0)
		fired[i].Store(0)
	}
	armed.Store(true)
}

// Disarm disables the harness; every hook returns to its single-atomic-load
// idle cost.
func Disarm() { armed.Store(false) }

// On reports whether a plan is armed.
func On() bool { return armed.Load() }

// Fired returns how many times the site has fired since the last Arm.
func Fired(s Site) int64 { return fired[s].Load() }

// Calls returns how many times the site has been consulted since the last
// Arm.
func Calls(s Site) int64 { return calls[s].Load() }

// splitmix64 is the SplitMix64 mixing function — a cheap, well-distributed
// hash of the (seed, site, ordinal) triple.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// should decides whether site s fires on this call under denominator every.
func should(s Site, every int64) bool {
	if every <= 0 {
		return false
	}
	n := calls[s].Add(1)
	if every == 1 || splitmix64(uint64(plan.Seed)^uint64(s)<<56^uint64(n))%uint64(every) == 0 {
		fired[s].Add(1)
		return true
	}
	return false
}

// ShouldAbortRTA reports whether the current response-time evaluation must
// simulate an iteration-cap abort. Idle cost: one atomic load.
func ShouldAbortRTA() bool {
	return armed.Load() && should(RTAAbort, plan.RTAAbortEvery)
}

// PanicValue is the value injected panics carry, so recovery layers can
// recognise them in tests.
const PanicValue = "faultinject: injected sample panic"

// MaybePanic panics with PanicValue when the SamplePanic site fires. Idle
// cost: one atomic load.
func MaybePanic() {
	if armed.Load() && should(SamplePanic, plan.SamplePanicEvery) {
		panic(PanicValue)
	}
}

// ErrCheckpointWrite is the error injected checkpoint-write failures
// surface.
var ErrCheckpointWrite = errors.New("faultinject: injected checkpoint write failure")

// CheckpointWriteErr returns ErrCheckpointWrite when the CheckpointWrite
// site fires, nil otherwise. Idle cost: one atomic load.
func CheckpointWriteErr() error {
	if armed.Load() && should(CheckpointWrite, plan.CheckpointWriteEvery) {
		return ErrCheckpointWrite
	}
	return nil
}

// Injected serving-path errors, distinguishable by errors.Is in tests and
// degradation messages.
var (
	// ErrJournalAppend is the error injected journal-append failures surface.
	ErrJournalAppend = errors.New("faultinject: injected journal append failure")
	// ErrJournalFsync is the error injected journal-fsync failures surface.
	ErrJournalFsync = errors.New("faultinject: injected journal fsync failure")
	// ErrSnapshotRename is the error injected snapshot-rename failures
	// surface.
	ErrSnapshotRename = errors.New("faultinject: injected snapshot rename failure")
)

// JournalAppendErr returns ErrJournalAppend when the JournalAppend site
// fires, nil otherwise. Idle cost: one atomic load.
func JournalAppendErr() error {
	if armed.Load() && should(JournalAppend, plan.JournalAppendEvery) {
		return ErrJournalAppend
	}
	return nil
}

// JournalFsyncErr returns ErrJournalFsync when the JournalFsync site fires,
// nil otherwise. Idle cost: one atomic load.
func JournalFsyncErr() error {
	if armed.Load() && should(JournalFsync, plan.JournalFsyncEvery) {
		return ErrJournalFsync
	}
	return nil
}

// ShouldTearJournal reports whether the current journal append must be torn
// mid-record, as if the process died between the two halves of the write.
// Idle cost: one atomic load.
func ShouldTearJournal() bool {
	return armed.Load() && should(JournalTear, plan.JournalTearEvery)
}

// SnapshotRenameErr returns ErrSnapshotRename when the SnapshotRename site
// fires, nil otherwise. Idle cost: one atomic load.
func SnapshotRenameErr() error {
	if armed.Load() && should(SnapshotRename, plan.SnapshotRenameEvery) {
		return ErrSnapshotRename
	}
	return nil
}

// HandlerLatencyDelay returns the latency to inject into the current gated
// HTTP request: the plan's HandlerDelay when the HandlerLatency site fires,
// zero otherwise. Idle cost: one atomic load.
func HandlerLatencyDelay() time.Duration {
	if armed.Load() && should(HandlerLatency, plan.HandlerLatencyEvery) {
		return plan.HandlerDelay
	}
	return 0
}
