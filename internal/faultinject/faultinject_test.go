package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestDisarmedHooksAreInert(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if ShouldAbortRTA() {
			t.Fatal("disarmed ShouldAbortRTA fired")
		}
		MaybePanic()
		if err := CheckpointWriteErr(); err != nil {
			t.Fatalf("disarmed CheckpointWriteErr = %v", err)
		}
	}
}

func TestEveryOneFiresAlways(t *testing.T) {
	Arm(Plan{Seed: 42, RTAAbortEvery: 1, CheckpointWriteEvery: 1})
	defer Disarm()
	for i := 0; i < 10; i++ {
		if !ShouldAbortRTA() {
			t.Fatal("Every=1 RTAAbort did not fire")
		}
		if CheckpointWriteErr() == nil {
			t.Fatal("Every=1 CheckpointWrite did not fire")
		}
	}
	if Fired(RTAAbort) != 10 || Calls(RTAAbort) != 10 {
		t.Fatalf("RTAAbort fired=%d calls=%d, want 10/10", Fired(RTAAbort), Calls(RTAAbort))
	}
}

func TestFiringPatternIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		Arm(Plan{Seed: seed, RTAAbortEvery: 3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = ShouldAbortRTA()
		}
		Disarm()
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns (suspicious hash)")
	}
}

func TestRateIsRoughlyOneInN(t *testing.T) {
	Arm(Plan{Seed: 1, SamplePanicEvery: 4})
	defer Disarm()
	panics := 0
	for i := 0; i < 4000; i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					if p != PanicValue {
						t.Fatalf("unexpected panic value %v", p)
					}
					panics++
				}
			}()
			MaybePanic()
		}()
	}
	if panics < 700 || panics > 1300 {
		t.Errorf("Every=4 fired %d/4000 times, want ≈1000", panics)
	}
}

func TestRearmResetsCounters(t *testing.T) {
	Arm(Plan{Seed: 1, RTAAbortEvery: 1})
	ShouldAbortRTA()
	Arm(Plan{Seed: 1, RTAAbortEvery: 1})
	defer Disarm()
	if Calls(RTAAbort) != 0 || Fired(RTAAbort) != 0 {
		t.Errorf("re-Arm kept counters: calls=%d fired=%d", Calls(RTAAbort), Fired(RTAAbort))
	}
}

// TestServiceSitesFireAndReport covers the serving-path sites added for the
// crash-safe admission daemon: each hook is inert when disarmed, fires on
// Every=1, and surfaces its distinguishable error (or delay).
func TestServiceSitesFireAndReport(t *testing.T) {
	Disarm()
	if JournalAppendErr() != nil || JournalFsyncErr() != nil || ShouldTearJournal() ||
		SnapshotRenameErr() != nil || HandlerLatencyDelay() != 0 {
		t.Fatal("disarmed service hooks fired")
	}
	Arm(Plan{
		Seed:                9,
		JournalAppendEvery:  1,
		JournalFsyncEvery:   1,
		JournalTearEvery:    1,
		SnapshotRenameEvery: 1,
		HandlerLatencyEvery: 1,
		HandlerDelay:        3 * time.Millisecond,
	})
	defer Disarm()
	if err := JournalAppendErr(); !errors.Is(err, ErrJournalAppend) {
		t.Errorf("JournalAppendErr = %v", err)
	}
	if err := JournalFsyncErr(); !errors.Is(err, ErrJournalFsync) {
		t.Errorf("JournalFsyncErr = %v", err)
	}
	if !ShouldTearJournal() {
		t.Error("JournalTear did not fire")
	}
	if err := SnapshotRenameErr(); !errors.Is(err, ErrSnapshotRename) {
		t.Errorf("SnapshotRenameErr = %v", err)
	}
	if d := HandlerLatencyDelay(); d != 3*time.Millisecond {
		t.Errorf("HandlerLatencyDelay = %v", d)
	}
	for _, s := range []Site{JournalAppend, JournalFsync, JournalTear, SnapshotRename, HandlerLatency} {
		if Fired(s) != 1 || Calls(s) != 1 {
			t.Errorf("%v fired=%d calls=%d, want 1/1", s, Fired(s), Calls(s))
		}
		if s.String() == "site(?)" {
			t.Errorf("site %d has no name", s)
		}
	}
}

// TestServiceSitesAreIndependent pins that arming one serving-path site
// does not make the others fire.
func TestServiceSitesAreIndependent(t *testing.T) {
	Arm(Plan{Seed: 3, JournalAppendEvery: 1})
	defer Disarm()
	if JournalFsyncErr() != nil || ShouldTearJournal() || SnapshotRenameErr() != nil ||
		HandlerLatencyDelay() != 0 {
		t.Error("unarmed sibling site fired")
	}
	if JournalAppendErr() == nil {
		t.Error("armed JournalAppend did not fire")
	}
}
