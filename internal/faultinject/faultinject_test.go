package faultinject

import "testing"

func TestDisarmedHooksAreInert(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if ShouldAbortRTA() {
			t.Fatal("disarmed ShouldAbortRTA fired")
		}
		MaybePanic()
		if err := CheckpointWriteErr(); err != nil {
			t.Fatalf("disarmed CheckpointWriteErr = %v", err)
		}
	}
}

func TestEveryOneFiresAlways(t *testing.T) {
	Arm(Plan{Seed: 42, RTAAbortEvery: 1, CheckpointWriteEvery: 1})
	defer Disarm()
	for i := 0; i < 10; i++ {
		if !ShouldAbortRTA() {
			t.Fatal("Every=1 RTAAbort did not fire")
		}
		if CheckpointWriteErr() == nil {
			t.Fatal("Every=1 CheckpointWrite did not fire")
		}
	}
	if Fired(RTAAbort) != 10 || Calls(RTAAbort) != 10 {
		t.Fatalf("RTAAbort fired=%d calls=%d, want 10/10", Fired(RTAAbort), Calls(RTAAbort))
	}
}

func TestFiringPatternIsSeedDeterministic(t *testing.T) {
	pattern := func(seed int64) []bool {
		Arm(Plan{Seed: seed, RTAAbortEvery: 3})
		out := make([]bool, 200)
		for i := range out {
			out[i] = ShouldAbortRTA()
		}
		Disarm()
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical firing patterns (suspicious hash)")
	}
}

func TestRateIsRoughlyOneInN(t *testing.T) {
	Arm(Plan{Seed: 1, SamplePanicEvery: 4})
	defer Disarm()
	panics := 0
	for i := 0; i < 4000; i++ {
		func() {
			defer func() {
				if p := recover(); p != nil {
					if p != PanicValue {
						t.Fatalf("unexpected panic value %v", p)
					}
					panics++
				}
			}()
			MaybePanic()
		}()
	}
	if panics < 700 || panics > 1300 {
		t.Errorf("Every=4 fired %d/4000 times, want ≈1000", panics)
	}
}

func TestRearmResetsCounters(t *testing.T) {
	Arm(Plan{Seed: 1, RTAAbortEvery: 1})
	ShouldAbortRTA()
	Arm(Plan{Seed: 1, RTAAbortEvery: 1})
	defer Disarm()
	if Calls(RTAAbort) != 0 || Fired(RTAAbort) != 0 {
		t.Errorf("re-Arm kept counters: calls=%d fired=%d", Calls(RTAAbort), Fired(RTAAbort))
	}
}
