package core

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bounds"
	"repro/internal/gen"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/task"
)

func harmonicLightSet() task.Set {
	return task.Set{
		{Name: "a1", C: 1, T: 4}, {Name: "a2", C: 1, T: 4},
		{Name: "b1", C: 2, T: 8}, {Name: "b2", C: 2, T: 8},
		{Name: "c1", C: 4, T: 16}, {Name: "c2", C: 4, T: 16},
	}
}

func TestAnalyzeHarmonicLight(t *testing.T) {
	ts := harmonicLightSet()
	a := Analyze(ts, 2)
	if !a.Harmonic || !a.Light {
		t.Fatalf("analysis wrong: %+v", a)
	}
	if a.HarmonicChains != 1 {
		t.Errorf("chains = %d, want 1", a.HarmonicChains)
	}
	if a.BestBoundValue != 1.0 {
		t.Errorf("best bound = %g, want 1.0 (harmonic)", a.BestBoundValue)
	}
	if a.GuaranteeLight != 1.0 {
		t.Errorf("light guarantee = %g, want 1.0", a.GuaranteeLight)
	}
	if a.GuaranteeAny >= 1.0 {
		t.Errorf("general guarantee %g should be capped below 1", a.GuaranteeAny)
	}
	if a.N != 6 || a.M != 2 {
		t.Errorf("N/M = %d/%d", a.N, a.M)
	}
	if a.NormalizedU != 0.75 {
		t.Errorf("U_M = %g, want 0.75", a.NormalizedU)
	}
}

func TestPartitionPicksLightAlgorithm(t *testing.T) {
	plan, err := Partition(harmonicLightSet(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AlgorithmName != "RM-TS/light" {
		t.Errorf("algorithm = %s, want RM-TS/light", plan.AlgorithmName)
	}
	if !plan.BoundBacked {
		t.Error("U_M=0.75 under the 100% harmonic bound should be bound-backed")
	}
	rep, err := plan.Simulate(sim.Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("plan missed deadlines: %v", rep.Misses)
	}
}

func TestPartitionPicksGeneralAlgorithmForHeavySets(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 60, T: 100},
		{Name: "l1", C: 20, T: 200},
		{Name: "l2", C: 30, T: 300},
	}
	plan, err := Partition(ts, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AlgorithmName != "RM-TS" {
		t.Errorf("algorithm = %s, want RM-TS", plan.AlgorithmName)
	}
}

func TestPartitionForcedAlgorithm(t *testing.T) {
	// U_M must stay under Θ(6) ≈ 0.735 for SPA2 to pack (its threshold
	// admission cannot exceed the L&L bound — the paper's critique).
	ts := task.Set{
		{Name: "a1", C: 1, T: 4}, {Name: "a2", C: 1, T: 4},
		{Name: "b1", C: 2, T: 8}, {Name: "b2", C: 2, T: 8},
		{Name: "c1", C: 3, T: 16}, {Name: "c2", C: 3, T: 16},
	}
	plan, err := Partition(ts, 2, Options{Algorithm: partition.SPA2{}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AlgorithmName != "SPA2" {
		t.Errorf("algorithm = %s", plan.AlgorithmName)
	}
}

func TestPartitionInfeasibleReturnsError(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 9, T: 10},
		{Name: "b", C: 9, T: 10},
		{Name: "c", C: 9, T: 10},
	}
	_, err := Partition(ts, 2, Options{})
	if err == nil {
		t.Fatal("U=2.7 on M=2 produced a plan")
	}
	if !strings.Contains(err.Error(), "could not place") {
		t.Errorf("error lacks diagnostics: %v", err)
	}
}

func TestBoundTest(t *testing.T) {
	ok, bound, a := BoundTest(harmonicLightSet(), 2)
	if !ok {
		t.Errorf("harmonic light set at U_M=%.2f rejected by bound %g", a.NormalizedU, bound)
	}
	if bound != 1.0 {
		t.Errorf("bound = %g, want 1.0", bound)
	}
	// Push utilization above 1: must be rejected by bound test.
	over := task.Set{
		{Name: "x", C: 4, T: 4}, {Name: "y", C: 4, T: 4}, {Name: "z", C: 4, T: 4},
	}
	ok, _, _ = BoundTest(over, 2)
	if ok {
		t.Error("overloaded set passed bound test")
	}
}

func TestBoundTestAgreesWithPartitionOnAcceptance(t *testing.T) {
	// Soundness: whenever the bound test accepts, the planner must produce
	// a verified plan (the bound is sufficient). The converse need not
	// hold. Quantization margin as in the partition tests.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		m := 2 + r.Intn(3)
		ts, err := gen.TaskSet(r, gen.Config{TargetU: float64(m) * (0.4 + 0.3*r.Float64()), UMin: 0.05, UMax: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		ok, bound, a := BoundTest(ts, m)
		if !ok || a.NormalizedU > bound-0.02 {
			continue
		}
		if _, err := Partition(ts, m, Options{}); err != nil {
			t.Fatalf("trial %d: bound test accepted (U_M=%.4f ≤ %.4f) but planner failed: %v",
				trial, a.NormalizedU, bound, err)
		}
	}
}

func TestDefaultBoundsAllDeflatable(t *testing.T) {
	for _, b := range DefaultBounds() {
		if !b.Deflatable() {
			t.Errorf("%s in the default portfolio is not deflatable", b.Name())
		}
	}
}

func TestPlanExposesAssignment(t *testing.T) {
	plan, err := Partition(harmonicLightSet(), 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assignment() == nil || plan.Assignment().M() != 2 {
		t.Error("assignment not exposed")
	}
	if err := plan.Assignment().Validate(); err != nil {
		t.Error(err)
	}
}

func TestPartitionWithExplicitPUB(t *testing.T) {
	ts := task.Set{
		{Name: "h", C: 60, T: 100},
		{Name: "l1", C: 20, T: 200},
		{Name: "l2", C: 30, T: 300},
	}
	plan, err := Partition(ts, 2, Options{PUB: bounds.LiuLayland{}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.AlgorithmName != "RM-TS" {
		t.Errorf("algorithm = %s", plan.AlgorithmName)
	}
}

func TestPartitionEDFAlgorithmVerifiesAndSimulates(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 6, T: 10},
		{Name: "b", C: 6, T: 10},
		{Name: "c", C: 6, T: 10},
	}
	plan, err := Partition(ts, 2, Options{Algorithm: partition.EDFTS{}})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Result.Scheduler != "EDF" {
		t.Errorf("scheduler = %q", plan.Result.Scheduler)
	}
	rep, err := plan.Simulate(sim.Options{StopOnMiss: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Ok() {
		t.Fatalf("EDF plan missed: %v", rep.Misses)
	}
}

func TestAnalyzeConstrainedDisablesBounds(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 10, D: 5},
		{Name: "b", C: 2, T: 20},
	}
	a := Analyze(ts, 2)
	if a.Implicit {
		t.Error("constrained set reported implicit")
	}
	if a.GuaranteeAny != 0 || a.GuaranteeLight != 0 {
		t.Errorf("bounds not disabled: %g/%g", a.GuaranteeAny, a.GuaranteeLight)
	}
	ok, bound, _ := BoundTest(ts, 2)
	if ok || bound != 0 {
		t.Errorf("bound test accepted a constrained set: ok=%v bound=%g", ok, bound)
	}
	// The planner must still produce a verified plan via RTA.
	if _, err := Partition(ts, 1, Options{}); err != nil {
		t.Fatalf("planner failed on a trivial constrained set: %v", err)
	}
}
