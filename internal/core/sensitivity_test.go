package core

import (
	"strings"
	"testing"

	"repro/internal/partition"
	"repro/internal/task"
)

func TestSensitivityBasics(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 1, T: 10},
		{Name: "b", C: 2, T: 20},
	}
	rep, err := Sensitivity(ts, 1, partition.RMTSLight{})
	if err != nil {
		t.Fatal(err)
	}
	// U = 0.2; the set tolerates large but finite scaling on one processor.
	if rep.Global < 3 || rep.Global > 6 {
		t.Errorf("global scaling = %.3f, want ≈ 5 (U=0.2 → ~×5 capacity)", rep.Global)
	}
	for i, f := range rep.PerTask {
		if f < rep.Global {
			t.Errorf("task %d individual scaling %.3f below global %.3f", i, f, rep.Global)
		}
	}
	if !strings.Contains(rep.String(), "global critical scaling") {
		t.Error("String() lacks header")
	}
}

func TestSensitivityTightConfiguration(t *testing.T) {
	// Harmonic set at exactly 100% on one processor: no growth possible.
	ts := task.Set{
		{Name: "a", C: 2, T: 4},
		{Name: "b", C: 2, T: 8},
		{Name: "c", C: 4, T: 16},
	}
	rep, err := Sensitivity(ts, 1, partition.RMTSLight{})
	if err != nil {
		t.Fatal(err)
	}
	// Integer flooring means the first real growth happens at λ = 1.25
	// (C=4 → 5); any λ strictly below leaves the set unchanged, so the
	// reported factor converges to 1.25 from below.
	if rep.Global > 1.25 || rep.Global < 1.2 {
		t.Errorf("100%% utilization set reports global scaling %.4f, want ≈ 1.25⁻", rep.Global)
	}
}

func TestSensitivityInfeasibleInput(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 9, T: 10},
		{Name: "b", C: 9, T: 10},
	}
	if _, err := Sensitivity(ts, 1, partition.RMTSLight{}); err == nil {
		t.Error("unschedulable input accepted")
	}
	if _, err := Sensitivity(task.Set{{C: 0, T: 5}}, 1, nil); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestSensitivityDeadlineCapped(t *testing.T) {
	// A single tiny task alone: scaling is capped by C ≤ D, reported as a
	// large (effectively unbounded) factor rather than an error.
	ts := task.Set{{Name: "solo", C: 1, T: 1000}}
	rep, err := Sensitivity(ts, 1, partition.RMTSLight{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Global < 100 {
		t.Errorf("lone 0.1%% task reports scaling %.3f", rep.Global)
	}
}

func TestSensitivityPlannerDefault(t *testing.T) {
	ts := task.Set{
		{Name: "a", C: 2, T: 10},
		{Name: "b", C: 6, T: 20, D: 15},
	}
	rep, err := Sensitivity(ts, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Global <= 1 {
		t.Errorf("global scaling %.3f not above 1 for a slack-rich set", rep.Global)
	}
	if len(rep.PerTask) != 2 {
		t.Errorf("per-task length %d", len(rep.PerTask))
	}
}
