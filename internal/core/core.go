// Package core is the high-level entry point of the library: it analyzes a
// task set (utilization profile, harmonic structure, applicable parametric
// bounds), selects and runs the appropriate partitioning algorithm from the
// paper (RM-TS/light for light sets, RM-TS otherwise), independently
// verifies the result with exact response-time analysis, and can hand the
// verified plan to the discrete-event simulator.
//
// The lower-level pieces remain available for direct use:
// internal/partition for the algorithms, internal/bounds for the PUBs,
// internal/rta for the analysis, internal/sim for execution.
package core

import (
	"fmt"

	"repro/internal/bounds"
	"repro/internal/obs"
	"repro/internal/partition"
	"repro/internal/sim"
	"repro/internal/task"
)

// Analysis summarizes everything the planner derives from a task set's
// parameters before partitioning.
type Analysis struct {
	// N is the task count and M the processor count.
	N, M int
	// TotalU is U(τ); NormalizedU is U_M(τ) = U(τ)/M; MaxU the largest
	// individual utilization.
	TotalU, NormalizedU, MaxU float64
	// Theta is the Liu & Layland bound Θ(N); LightThreshold is Θ/(1+Θ);
	// RMTSCap is 2Θ/(1+Θ).
	Theta, LightThreshold, RMTSCap float64
	// Light reports whether every task is light (Definition 1).
	Light bool
	// Implicit reports whether every deadline equals its period — the
	// paper's model; the utilization-bound guarantees below only apply
	// when true. Constrained-deadline sets are still handled by the
	// RTA-based algorithms (deadline-monotonic order), whose per-instance
	// verification replaces the bound.
	Implicit bool
	// Harmonic reports whether the periods form a single harmonic chain.
	Harmonic bool
	// HarmonicChains is the minimum harmonic chain cover size K.
	HarmonicChains int
	// BestBound names the parametric bound with the largest value for this
	// set and BestBoundValue holds Λ(τ).
	BestBound string
	// BestBoundValue is the raw Λ(τ) of BestBound (uncapped).
	BestBoundValue float64
	// GuaranteeLight is the bound RM-TS/light would guarantee (Λ, valid
	// for light sets); GuaranteeAny is RM-TS's min(Λ, 2Θ/(1+Θ)).
	GuaranteeLight, GuaranteeAny float64
}

// DefaultBounds is the PUB portfolio the planner evaluates: the best
// (largest) applicable deflatable bound is used. All are period-parametric,
// so evaluating all of them is cheap.
func DefaultBounds() []bounds.PUB {
	return []bounds.PUB{
		bounds.LiuLayland{},
		bounds.HarmonicChain{Minimal: true},
		bounds.TBound{},
		bounds.RBound{},
	}
}

// Analyze computes the Analysis of a task set on m processors.
func Analyze(ts task.Set, m int) Analysis {
	sorted := ts.Clone()
	sorted.SortRM()
	n := len(sorted)
	a := Analysis{
		N:              n,
		M:              m,
		TotalU:         sorted.TotalUtilization(),
		MaxU:           sorted.MaxUtilization(),
		Theta:          bounds.LL(n),
		LightThreshold: bounds.LightThresholdFor(n),
		RMTSCap:        bounds.RMTSCapFor(n),
		Harmonic:       sorted.IsHarmonic(),
		HarmonicChains: bounds.HarmonicChainsMin(bounds.Periods(sorted)),
	}
	if m > 0 {
		a.NormalizedU = a.TotalU / float64(m)
	}
	a.Light = sorted.IsLight(a.LightThreshold)
	a.Implicit = sorted.Implicit()
	best := bounds.Max{Bounds: DefaultBounds()}
	a.BestBoundValue = best.Value(sorted)
	for _, b := range DefaultBounds() {
		if b.Value(sorted) == a.BestBoundValue {
			a.BestBound = b.Name()
			break
		}
	}
	a.GuaranteeLight = a.BestBoundValue
	a.GuaranteeAny = a.BestBoundValue
	if a.GuaranteeAny > a.RMTSCap {
		a.GuaranteeAny = a.RMTSCap
	}
	if !a.Implicit {
		// No utilization bound applies to constrained deadlines; only
		// per-instance RTA verification can accept such sets.
		a.GuaranteeLight = 0
		a.GuaranteeAny = 0
	}
	return a
}

// Options configures the planner.
type Options struct {
	// Algorithm forces a specific partitioning algorithm; nil lets the
	// planner choose (RM-TS/light for light sets, RM-TS otherwise).
	Algorithm partition.Algorithm
	// PUB overrides the bound portfolio used by RM-TS's pre-assignment
	// condition; nil uses the best of DefaultBounds.
	PUB bounds.PUB
	// SkipVerify disables the independent RTA re-verification of the
	// produced assignment (it is cheap; only skip it in tight loops that
	// verify by other means).
	SkipVerify bool
	// Trace, when non-nil, records the partitioning decisions of the
	// algorithm the planner selects (only effective when Algorithm is nil;
	// a forced Algorithm carries its own Trace field).
	Trace *obs.Trace
}

// Plan is a verified partitioning of a task set.
type Plan struct {
	// Analysis is the pre-partitioning parameter analysis.
	Analysis Analysis
	// AlgorithmName names the algorithm that produced the plan.
	AlgorithmName string
	// Result is the raw partitioning result, including the assignment.
	Result *partition.Result
	// BoundBacked reports whether the set's normalized utilization is at
	// or below the guarantee bound of the chosen algorithm — i.e. whether
	// acceptance was predictable from the utilization bound alone, before
	// running the partitioner.
	BoundBacked bool
}

// Assignment returns the plan's per-processor assignment.
func (p *Plan) Assignment() *task.Assignment { return p.Result.Assignment }

// Simulate runs the plan under the discrete-event simulator, selecting the
// scheduling policy the plan was built for (FP, or EDF for the EDF
// baselines) unless opt.Policy already says otherwise.
func (p *Plan) Simulate(opt sim.Options) (*sim.Report, error) {
	if opt.Policy == sim.PolicyFP && p.Result.Scheduler == "EDF" {
		opt.Policy = sim.PolicyEDF
	}
	return sim.Simulate(p.Result.Assignment, opt)
}

// Partition analyzes ts, selects an algorithm, partitions, and verifies.
// A non-nil error means no feasible verified plan was produced; the error
// text carries the algorithm's failure diagnostics.
func Partition(ts task.Set, m int, opt Options) (*Plan, error) {
	analysis := Analyze(ts, m)
	alg := opt.Algorithm
	if alg == nil {
		pub := opt.PUB
		if pub == nil {
			pub = bounds.Max{Bounds: DefaultBounds()}
		}
		if analysis.Light {
			alg = partition.RMTSLight{Trace: opt.Trace}
		} else {
			alg = &partition.RMTS{PUB: pub, Trace: opt.Trace}
		}
	}
	res := alg.Partition(ts, m)
	if !res.OK {
		return nil, fmt.Errorf("core: %s could not place τ%d: %s", alg.Name(), res.FailedTask, res.Reason)
	}
	if !opt.SkipVerify {
		verify := partition.Verify
		if res.Scheduler == "EDF" {
			verify = partition.VerifyEDF
		}
		if err := verify(res); err != nil {
			return nil, fmt.Errorf("core: %s produced an unverifiable plan: %w", alg.Name(), err)
		}
	}
	bound := analysis.GuaranteeAny
	if analysis.Light {
		bound = analysis.GuaranteeLight
	}
	return &Plan{
		Analysis:      analysis,
		AlgorithmName: alg.Name(),
		Result:        res,
		BoundBacked:   analysis.NormalizedU <= bound,
	}, nil
}

// BoundTest is the O(N·logN + N²) utilization-bound-only admission test the
// paper's bounds enable: it returns true when U_M(τ) is at or below the
// guarantee of the planner's algorithm choice — schedulability without
// running any partitioning. This is the "efficient schedulability analysis
// suitable for design space exploration" use case of §I.
func BoundTest(ts task.Set, m int) (ok bool, bound float64, analysis Analysis) {
	analysis = Analyze(ts, m)
	bound = analysis.GuaranteeAny
	if analysis.Light {
		bound = analysis.GuaranteeLight
	}
	return analysis.NormalizedU <= bound, bound, analysis
}
