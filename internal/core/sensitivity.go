package core

import (
	"fmt"

	"repro/internal/partition"
	"repro/internal/task"
)

// SensitivityReport quantifies how much execution-time growth a schedulable
// configuration tolerates — the design-margin question that follows every
// successful schedulability analysis.
type SensitivityReport struct {
	// Global is the largest uniform scaling factor λ such that the set
	// with every C_i ← ⌊λ·C_i⌋ still partitions (the critical scaling
	// factor / breakdown factor of the configuration).
	Global float64
	// PerTask gives, for each task of the *DM-sorted* set, the largest
	// individual scaling factor when only that task grows. Values are
	// capped at the point where C would exceed the task's deadline.
	PerTask []float64
	// Set is the DM-sorted task set the indices refer to.
	Set task.Set
}

// String renders the report compactly.
func (s *SensitivityReport) String() string {
	out := fmt.Sprintf("global critical scaling: %.4f\n", s.Global)
	for i, f := range s.PerTask {
		out += fmt.Sprintf("  %-12s ×%.4f\n", s.Set[i].Name, f)
	}
	return out
}

// sensitivityIterations bounds the bisection; 2^-20 relative precision is
// far below the integer-time quantization anyway.
const sensitivityIterations = 20

// Sensitivity computes the scaling margins of ts on m processors under the
// given algorithm (nil lets the planner choose per attempt). It requires
// the unscaled set to be schedulable.
func Sensitivity(ts task.Set, m int, alg partition.Algorithm) (*SensitivityReport, error) {
	sorted := ts.Clone()
	sorted.SortDM()
	if err := sorted.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	feasible := func(scaled task.Set) bool {
		a := alg
		if a == nil {
			if _, err := Partition(scaled, m, Options{SkipVerify: true}); err != nil {
				return false
			}
			return true
		}
		res := a.Partition(scaled, m)
		return res.OK
	}
	if !feasible(sorted) {
		return nil, fmt.Errorf("core: the unscaled set is not schedulable on %d processors", m)
	}

	scaleOne := func(idx int, f float64) task.Set {
		scaled := sorted.Clone()
		for i := range scaled {
			if idx >= 0 && i != idx {
				continue
			}
			c := task.Time(float64(scaled[i].C) * f)
			if c < scaled[i].C {
				c = scaled[i].C // scaling factors ≥ 1 only
			}
			if d := scaled[i].Deadline(); c > d {
				c = d
			}
			scaled[i].C = c
		}
		return scaled
	}
	maxScale := func(idx int) float64 {
		// Expand to an infeasible upper bound, then bisect.
		lo, hi := 1.0, 2.0
		for hi < 1024 && feasible(scaleOne(idx, hi)) {
			lo, hi = hi, hi*2
		}
		if hi >= 1024 {
			return hi // effectively unbounded (deadline caps bite first)
		}
		for iter := 0; iter < sensitivityIterations; iter++ {
			mid := (lo + hi) / 2
			if feasible(scaleOne(idx, mid)) {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo
	}

	rep := &SensitivityReport{Set: sorted, PerTask: make([]float64, len(sorted))}
	rep.Global = maxScale(-1)
	for i := range sorted {
		rep.PerTask[i] = maxScale(i)
	}
	return rep, nil
}
